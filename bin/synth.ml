(* Command-line front end: schedule and allocate DFGs from files or the
   built-in benchmark set.

     synth show   <dfg>                 inspect a graph
     synth mfs    <dfg> --cs 8          Move Frame Scheduling
     synth mfsa   <dfg> --cs 8 --style 2   mixed scheduling-allocation
     synth compare <dfg> --cs 8         MFS vs the baseline schedulers
     synth explore sweep.spec --jobs 4  Pareto sweep over a job lattice
     synth fuzz   --runs 200 --seed 0   randomized robustness campaign
     synth batch  jobs.txt --jobs 4     supervised batch over a manifest
     synth serve  --socket synth.sock   crash-safe synthesis daemon
     synth bombard --socket synth.sock  load-test a running daemon

   <dfg> is a file in the textual DFG format (see Dfg.Parser) or the name of
   a built-in example (ex1..ex6, diffeq, ewf, ...).

   Exit codes: 0 success, 2 usage, 3 bad input, 4 infeasible constraints,
   5 internal error / defects found, 6 partial batch failure (the batch ran
   to completion but some jobs failed), 7 service unavailable (daemon
   overloaded or draining), 130 interrupted. Diagnostics go to stderr, as
   text or as JSON with --json-errors. *)

open Cmdliner

let load_graph = Batch.Manifest.load_graph

let die ~json d =
  flush stdout;
  prerr_endline (if json then Diag.to_json d else "error: " ^ Diag.to_string d);
  exit (Diag.exit_code d)

let or_die ~json = function Ok v -> v | Error d -> die ~json d

(* Legacy string-error interfaces, wrapped with an explicit category. *)
let or_die_s ~json category ~code r =
  or_die ~json (Result.map_error (Diag.of_msg category ~code) r)

let apply_cse ~json g = function
  | false -> g
  | true -> or_die_s ~json Diag.Input ~code:"cse.invalid-graph" (Dfg.Cse.eliminate g)

let json_arg =
  let doc = "Report errors on stderr as JSON objects instead of text." in
  Arg.(value & flag & info [ "json-errors" ] ~doc)

let cse_arg =
  let doc = "Run common-subexpression elimination before synthesis." in
  Arg.(value & flag & info [ "cse" ] ~doc)

let graph_arg =
  let doc = "DFG file or built-in example name." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DFG" ~doc)

let cs_arg =
  let doc = "Time budget in control steps (0 = critical path)." in
  Arg.(value & opt int 0 & info [ "cs"; "steps" ] ~docv:"N" ~doc)

let two_cycle_arg =
  let doc = "Multiplication and division take two control steps." in
  Arg.(value & flag & info [ "two-cycle-mult" ] ~doc)

let pipelined_arg =
  let doc =
    "Run two-cycle multiplications on two-stage pipelined units (structural \
     pipelining)."
  in
  Arg.(value & flag & info [ "pipelined-mult" ] ~doc)

let latency_arg =
  let doc = "Functional-pipelining latency (loop folding)." in
  Arg.(value & opt (some int) None & info [ "latency" ] ~docv:"L" ~doc)

let clock_arg =
  let doc = "Clock period in ns; enables operation chaining." in
  Arg.(value & opt (some float) None & info [ "clock"; "chain" ] ~docv:"NS" ~doc)

let limits_arg =
  let doc =
    "Resource limits per FU class, e.g. --limit '*=2' --limit '+=1'. With \
     limits, MFS minimises control steps instead of units."
  in
  let parse s =
    match String.split_on_char '=' s with
    | [ c; n ] -> (
        match int_of_string_opt n with
        | Some k -> Ok (c, k)
        | None -> Error (`Msg (s ^ ": expected CLASS=COUNT")))
    | _ -> Error (`Msg (s ^ ": expected CLASS=COUNT"))
  in
  let print ppf (c, k) = Format.fprintf ppf "%s=%d" c k in
  Arg.(value & opt_all (conv (parse, print)) [] & info [ "limit" ] ~docv:"CLASS=COUNT" ~doc)

let style_arg =
  let doc = "RTL design style: 1 = unrestricted, 2 = no ALU self loop." in
  let style_conv =
    Arg.enum [ ("1", Core.Mfsa.Unrestricted); ("2", Core.Mfsa.No_self_loop) ]
  in
  Arg.(
    value
    & opt style_conv Core.Mfsa.Unrestricted
    & info [ "style" ] ~docv:"1|2" ~doc)

let verilog_arg =
  let doc = "Emit structural Verilog for the synthesised design." in
  Arg.(value & flag & info [ "verilog" ] ~doc)

let simulate_arg =
  let doc = "Check the design against the golden model on random inputs." in
  Arg.(value & flag & info [ "simulate" ] ~doc)

let vcd_arg =
  let doc =
    "Execute one iteration on small deterministic inputs and dump the \
     waveform to $(docv) (VCD, viewable in GTKWave)."
  in
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc)

let netlist_arg =
  let doc = "Print the datapath netlist as Graphviz DOT." in
  Arg.(value & flag & info [ "dot-netlist" ] ~doc)

let fsm_arg =
  let doc = "Print the controller's FSM/microcode table ($(docv): binary, \
             one-hot, gray)." in
  let enc =
    Arg.enum
      [ ("binary", Rtl.Fsm.Binary); ("one-hot", Rtl.Fsm.One_hot);
        ("gray", Rtl.Fsm.Gray) ]
  in
  Arg.(value & opt (some enc) None & info [ "fsm" ] ~docv:"ENCODING" ~doc)

let widths_arg =
  let doc =
    "Width-aware mode: run the value-range/bitwidth analysis, scale \
     per-node chaining delays, price the datapath at inferred widths and \
     prove narrowing safe against the full-width golden model."
  in
  Arg.(value & flag & info [ "widths" ] ~doc)

let ports_arg =
  let doc =
    "Override every memory bank's port count (scheduling cap and port \
     binding). Without it, the graph's own 'mem BANK ports N' declarations \
     apply (default 1)."
  in
  Arg.(value & opt (some int) None & info [ "ports" ] ~docv:"N" ~doc)

let make_library g ~two_cycle ~pipelined =
  let lib = Celllib.Ncr.for_graph g in
  if pipelined then Celllib.Ncr.pipelined_multiplier lib
  else if two_cycle then Celllib.Ncr.two_cycle_multiplier lib
  else lib

(* Range facts for width-aware commands: the value-width function feeds
   cost/Verilog/simulation, the node-delay list feeds chaining probes. *)
let width_support lib g ~widths =
  if not widths then (None, [])
  else
    let facts = Analysis.Ranges.analyze g in
    ( Some (facts, fun name -> Analysis.Ranges.width_of facts name),
      Analysis.Ranges.node_delays lib g facts )

let make_config ?ports lib ~clock ~latency =
  let cfg = { (Core.Config.of_library lib) with Core.Config.mem_ports = ports } in
  let cfg =
    match clock with
    | None -> cfg
    | Some clk ->
        { cfg with
          Core.Config.chaining =
            Some { Core.Config.prop_delay = lib.Celllib.Library.prop_delay;
                   clock = clk } }
  in
  { cfg with Core.Config.functional_latency = latency }

let effective_cs cfg g cs = if cs <= 0 then Core.Timeframe.min_cs cfg g else cs

let fault_conv =
  let parse s =
    match Harness.Fault.of_string s with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
             (s ^ ": unknown fault (corrupt-start, corrupt-col, \
                   corrupt-trace, collide-mem, skew-delay)"))
  in
  let print ppf f = Format.pp_print_string ppf (Harness.Fault.to_string f) in
  Arg.conv (parse, print)

let fu_string s =
  String.concat ", "
    (List.map
       (fun (c, k) -> Printf.sprintf "%d x %s" k c)
       (Core.Schedule.fu_counts s))

(* --- show ------------------------------------------------------------- *)

let show_cmd =
  let doc = "Inspect a DFG: listing, classes, critical path, DOT." in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print Graphviz DOT instead.")
  in
  let run spec dot json =
    let g = or_die ~json (load_graph spec) in
    if dot then print_string (Dfg.Dot.of_graph g)
    else begin
      Format.printf "%a@." Dfg.Graph.pp g;
      Format.printf "%a@." Dfg.Stats.pp (Dfg.Stats.compute g);
      let savings = Dfg.Cse.savings g in
      if savings > 0 then
        Printf.printf "note: CSE would remove %d duplicate op(s) (--cse)\n"
          savings
    end
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ graph_arg $ dot $ json_arg)

(* --- mfs -------------------------------------------------------------- *)

let mfs_cmd =
  let doc = "Move Frame Scheduling (time- or resource-constrained)." in
  let run spec cs two_cycle pipelined latency clock limits ports cse json =
    let g = or_die ~json (load_graph spec) in
    let g = apply_cse ~json g cse in
    let lib = make_library g ~two_cycle ~pipelined in
    let config = make_config ?ports lib ~clock ~latency in
    let spec_kind =
      if limits = [] then Core.Mfs.Time { cs = effective_cs config g cs }
      else Core.Mfs.Resource { limits }
    in
    let outcome = or_die ~json (Core.Mfs.run ~config g spec_kind) in
    let s = outcome.Core.Mfs.schedule in
    Format.printf "%a@." Core.Schedule.pp s;
    print_string
      (Report.Table.render_kv
         [
           ("control steps", string_of_int s.Core.Schedule.cs);
           ("functional units", fu_string s);
           ("local reschedulings", string_of_int outcome.Core.Mfs.restarts);
           ("search widenings", string_of_int outcome.Core.Mfs.widenings);
           ( "Liapunov trace",
             Printf.sprintf "monotone=%b positive=%b"
               (Core.Liapunov.Trace.non_increasing outcome.Core.Mfs.trace)
               (Core.Liapunov.Trace.positive outcome.Core.Mfs.trace) );
           ( "valid",
             match Core.Schedule.check s with
             | Ok () -> "yes"
             | Error errs -> "NO: " ^ String.concat "; " errs );
         ])
  in
  Cmd.v (Cmd.info "mfs" ~doc)
    Term.(
      const run $ graph_arg $ cs_arg $ two_cycle_arg $ pipelined_arg
      $ latency_arg $ clock_arg $ limits_arg $ ports_arg $ cse_arg $ json_arg)

(* --- mfsa ------------------------------------------------------------- *)

let mfsa_cmd =
  let doc = "Mixed scheduling-allocation: schedule, bind ALUs/REGs/MUXes." in
  let run spec cs two_cycle pipelined latency clock ports style verilog
      simulate cse widths vcd netlist fsm json =
    let g = or_die ~json (load_graph spec) in
    let g = apply_cse ~json g cse in
    let lib = make_library g ~two_cycle ~pipelined in
    let config = make_config ?ports lib ~clock ~latency in
    let wsup, node_delay = width_support lib g ~widths in
    let config = { config with Core.Config.node_delay } in
    let cs = effective_cs config g cs in
    let o = or_die ~json (Core.Mfsa.run ~config ~style ~library:lib ~cs g) in
    Format.printf "%a@." Core.Schedule.pp o.Core.Mfsa.schedule;
    Format.printf "%a@." Rtl.Datapath.pp o.Core.Mfsa.datapath;
    Format.printf "%a@." Rtl.Cost.pp o.Core.Mfsa.cost;
    (match wsup with
    | None -> ()
    | Some (_, w) ->
        Format.printf "width-aware %a@." Rtl.Cost.pp
          (Rtl.Cost.of_datapath ~widths:w lib o.Core.Mfsa.datapath));
    Format.printf "@.";
    let delay i =
      Core.Config.delay config (Dfg.Graph.node g i).Dfg.Graph.kind
    in
    let ctrl =
      or_die_s ~json Diag.Internal ~code:"synth.controller"
        (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay)
    in
    (match
       Rtl.Check.datapath
         ~style2:(style = Core.Mfsa.No_self_loop)
         ~steps_overlap:
           (Core.Grid.steps_overlap
              ~latency:config.Core.Config.functional_latency)
         o.Core.Mfsa.datapath ~delay
     with
    | Ok () -> print_endline "datapath checks: ok"
    | Error errs ->
        List.iter
          (fun e -> print_endline ("datapath check FAILED: " ^ Diag.to_string e))
          errs);
    if simulate then begin
      (match Sim.Equiv.check_random o.Core.Mfsa.datapath ctrl with
      | Ok () -> print_endline "simulation vs golden model: ok (20 random runs)"
      | Error e -> print_endline ("simulation FAILED: " ^ Diag.to_string e));
      match wsup with
      | None -> ()
      | Some (_, w) -> (
          match
            Sim.Equiv.check_narrowing ~widths:w o.Core.Mfsa.datapath ctrl
          with
          | Ok () ->
              print_endline
                "narrowing safety vs full-width model: ok (5 directed + 20 \
                 random vectors)"
          | Error e ->
              print_endline ("narrowing safety FAILED: " ^ Diag.to_string e))
    end;
    (match vcd with
    | None -> ()
    | Some path ->
        let env =
          List.mapi (fun i v -> (v, i + 1)) (Dfg.Graph.inputs g)
        in
        (match Sim.Machine.run o.Core.Mfsa.datapath ctrl ~env with
        | Error e -> print_endline ("vcd: execution failed: " ^ e)
        | Ok r -> (
            match Sim.Vcd.write_file ~path o.Core.Mfsa.datapath r with
            | Ok () -> Printf.printf "waveform written to %s\n" path
            | Error e -> print_endline ("vcd: " ^ e))));
    (match fsm with
    | Some encoding ->
        print_newline ();
        print_string (Rtl.Fsm.render ~encoding ctrl)
    | None -> ());
    if netlist then begin
      print_newline ();
      print_string (Rtl.Dot_netlist.of_datapath o.Core.Mfsa.datapath)
    end;
    if verilog then begin
      print_newline ();
      print_string
        (Rtl.Verilog.emit
           ?widths:(Option.map snd wsup)
           o.Core.Mfsa.datapath ctrl)
    end
  in
  Cmd.v (Cmd.info "mfsa" ~doc)
    Term.(
      const run $ graph_arg $ cs_arg $ two_cycle_arg $ pipelined_arg
      $ latency_arg $ clock_arg $ ports_arg $ style_arg $ verilog_arg
      $ simulate_arg $ cse_arg $ widths_arg $ vcd_arg $ netlist_arg $ fsm_arg
      $ json_arg)

(* --- compare ---------------------------------------------------------- *)

let csv_arg =
  let doc = "Emit the result table as CSV on stdout instead of aligned text." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let compare_cmd =
  let doc = "Compare MFS against list scheduling, FDS and annealing." in
  let run spec cs two_cycle pipelined latency clock limits cse csv json =
    let g = or_die ~json (load_graph spec) in
    let g = apply_cse ~json g cse in
    let lib = make_library g ~two_cycle ~pipelined in
    let config = make_config lib ~clock ~latency in
    let cs = effective_cs config g cs in
    (* Width-aware area of each scheduler's design, through the same
       column-packed binding for every row so the column compares
       schedules, not binders. "-" when the binding fails. *)
    let facts = Analysis.Ranges.analyze g in
    let wfun name = Analysis.Ranges.width_of facts name in
    let warea s =
      match Harness.Driver.colbind_datapath lib config g s with
      | Ok dp ->
          Printf.sprintf "%.0f"
            (Rtl.Cost.of_datapath ~widths:wfun lib dp).Rtl.Cost.total
      | Error _ -> "-"
    in
    let row name ?(via = "primary") result =
      match result with
      | Ok s ->
          [
            name;
            fu_string s;
            warea s;
            (match Core.Schedule.check s with Ok () -> "yes" | Error _ -> "NO");
            via;
          ]
      | Error e -> [ name; "error: " ^ e; "-"; "-"; via ]
    in
    (* The MFS row goes through the harness driver so the table shows
       whether the schedule came from MFS itself or from the degradation
       chain (list scheduling + column packing). *)
    let options =
      {
        Harness.Driver.default_options with
        Harness.Driver.cs;
        limits;
        two_cycle;
        pipelined;
        latency;
        clock;
        cse = false (* already applied above *);
      }
    in
    let mfs_row =
      let o = Harness.Driver.run ~options g in
      let via =
        match o.Harness.Driver.sched_via with
        | Harness.Driver.Primary -> "primary"
        | Harness.Driver.Fallback f -> "fallback:" ^ f
      in
      match (o.Harness.Driver.schedule, o.Harness.Driver.stopped) with
      | Some s, _ -> row "MFS" ~via (Ok s)
      | None, Some d -> row "MFS" ~via (Error (Diag.message d))
      | None, None -> row "MFS" ~via (Error "no schedule")
    in
    let baseline_rows =
      if limits = [] then
        [
          row "list" (Baselines.List_sched.time ~config g ~cs);
          row "FDS" (Baselines.Fds.run ~config g ~cs);
          row "annealing" (Baselines.Annealing.run ~config g ~cs);
        ]
      else
        [
          row "list" (Baselines.List_sched.resource ~config g ~limits);
          [ "FDS"; "n/a under resource limits"; "-"; "-"; "-" ];
          [ "annealing"; "n/a under resource limits"; "-"; "-"; "-" ];
        ]
    in
    if csv then
      print_string
        (Report.Table.to_csv
           ~header:[ "scheduler"; "units"; "widths"; "valid"; "via" ]
           (mfs_row :: baseline_rows))
    else begin
      if limits = [] then Printf.printf "time budget: %d steps\n" cs
      else
        Printf.printf "resource limits: %s\n"
          (String.concat ", "
             (List.map (fun (c, k) -> Printf.sprintf "%s=%d" c k) limits));
      print_string
        (Report.Table.render
           ~header:[ "scheduler"; "units"; "widths"; "valid"; "via" ]
           (mfs_row :: baseline_rows))
    end
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const run $ graph_arg $ cs_arg $ two_cycle_arg $ pipelined_arg
      $ latency_arg $ clock_arg $ limits_arg $ cse_arg $ csv_arg $ json_arg)

(* --- fuzz ------------------------------------------------------------- *)

let fuzz_cmd =
  let doc =
    "Randomized robustness campaign: drive random DFGs and option points \
     through the full pipeline, check cross-stage invariants, shrink any \
     failure to a minimal reproducer."
  in
  let runs_arg =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N"
           ~doc:"Number of randomized runs.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed; the whole campaign is deterministic in it.")
  in
  let max_ops_arg =
    Arg.(value & opt int 12 & info [ "max-ops" ] ~docv:"N"
           ~doc:"Largest generated DFG size.")
  in
  let inject_arg =
    Arg.(value & opt (some fault_conv) None & info [ "inject" ] ~docv:"FAULT"
           ~doc:"Inject a fault each run and require the invariants to \
                 catch it (corrupt-start, corrupt-col, corrupt-trace, \
                 skew-delay).")
  in
  let corpus_arg =
    Arg.(value & opt string "fuzz-corpus" & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Directory for shrunk failure reproducers.")
  in
  let stage_seconds_arg =
    Arg.(value & opt float 5.0 & info [ "stage-seconds" ] ~docv:"S"
           ~doc:"Wall-clock budget per pipeline stage.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Narrate each eventful run.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
           ~doc:"Fan the campaign out over $(docv) supervised worker \
                 processes (see $(b,synth batch)); summaries are \
                 aggregated in seed order and therefore identical for \
                 any worker count.")
  in
  let deadline_arg =
    Arg.(value & opt float 60.0 & info [ "deadline" ] ~docv:"S"
           ~doc:"Per-case wall-clock watchdog when --jobs > 1; a case \
                 past the deadline is SIGKILLed and reported as a \
                 timeout failure.")
  in
  let run runs seed max_ops inject corpus stage_seconds verbose jobs deadline
      json =
    let budgets =
      { Harness.Driver.default_budgets with
        Harness.Driver.stage_seconds }
    in
    let log = if verbose then prerr_endline else fun _ -> () in
    let report =
      if jobs <= 1 then
        Harness.Fuzz.campaign ?fault:inject ~budgets ~corpus_dir:corpus
          ~max_ops ~log ~runs ~seed ()
      else begin
        (* Pooled campaign: same cases, executed in forked workers under
           the batch watchdogs, re-aggregated in seed order. *)
        let generated = Harness.Fuzz.cases ~max_ops ~runs ~seed () in
        let pool_jobs =
          Batch.Jobs.fuzz_jobs ?fault:inject ~budgets ~corpus_dir:corpus
            ~campaign_seed:seed generated
        in
        Batch.Pool.install_signal_handlers ();
        let o =
          or_die ~json
            (Batch.Pool.run ~workers:jobs ~retry:Batch.Retry.default ~log
               ~deadline pool_jobs)
        in
        if o.Batch.Pool.interrupted then begin
          prerr_endline "fuzz: interrupted; workers killed";
          exit 130
        end;
        Batch.Jobs.fuzz_report o.Batch.Pool.records
      end
    in
    print_string (Harness.Fuzz.render_report report);
    if report.Harness.Fuzz.failures <> [] then
      die ~json
        (Diag.internal ~code:"fuzz.failures"
           (Printf.sprintf "%d failing run(s); reproducers under %s"
              (List.length report.Harness.Fuzz.failures)
              corpus))
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ runs_arg $ seed_arg $ max_ops_arg $ inject_arg $ corpus_arg
      $ stage_seconds_arg $ verbose_arg $ jobs_arg $ deadline_arg $ json_arg)

(* --- batch ------------------------------------------------------------- *)

let batch_cmd =
  let doc =
    "Run a manifest of synthesis jobs under a supervised worker pool: \
     each job in its own forked process behind a wall-clock SIGKILL \
     watchdog and an OCaml-heap ceiling, verdicts journalled as JSONL \
     with per-record fsync so --resume skips completed jobs after a \
     crash. Exits 6 when some jobs failed, 130 on interrupt."
  in
  let manifest_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MANIFEST"
           ~doc:"Manifest file: one job per line — a DFG file or builtin \
                 name followed by synth flags and an optional \
                 --inject FAULT (including the process faults hang and \
                 segv). '#' starts a comment.")
  in
  let jobs_arg =
    Arg.(value & opt int 4 & info [ "jobs" ] ~docv:"N"
           ~doc:"Concurrent worker processes.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH"
           ~doc:"JSONL journal of verdicts (one fsynced record per \
                 attempt); required for --resume.")
  in
  let resume_arg =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Skip jobs whose final verdict is already in the journal; \
                 Timeout/Oom attempts the retry policy had not finished \
                 restart at the next attempt.")
  in
  let deadline_arg =
    Arg.(value & opt float 60.0 & info [ "deadline" ] ~docv:"S"
           ~doc:"Per-attempt wall-clock watchdog; a worker past it is \
                 SIGKILLed and the attempt verdict is timeout.")
  in
  let retries_arg =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Re-runs allowed after a timeout/oom attempt, each with \
                 degraded options (halved stage budget, baseline \
                 engines) under a halved deadline.")
  in
  let heap_mb_arg =
    Arg.(value & opt int 512 & info [ "heap-mb" ] ~docv:"MB"
           ~doc:"OCaml-heap ceiling per worker, enforced by a Gc alarm \
                 inside the worker (verdict: oom). 0 disables it.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ]
           ~doc:"Narrate spawns, kills and verdicts on stderr.")
  in
  let stage_seconds_arg =
    Arg.(value & opt float 5.0 & info [ "stage-seconds" ] ~docv:"S"
           ~doc:"Advisory per-stage budget passed to the driver; the \
                 hard limit is --deadline.")
  in
  let hosts_arg =
    Arg.(value & opt (some string) None & info [ "hosts" ] ~docv:"ENDPOINTS"
           ~doc:"Comma-separated endpoints to bind (socket paths or \
                 tcp:PORT). Jobs are fanned out to connected synth \
                 worker processes as time-bounded leases with fencing \
                 epochs, heartbeat liveness and jittered re-lease on \
                 worker failure.")
  in
  let local_fallback_arg =
    Arg.(value & flag & info [ "local-fallback" ]
           ~doc:"With --hosts: escalate a job to in-process execution \
                 when its lease retries are exhausted or no worker is \
                 live.")
  in
  let run manifest jobs journal resume deadline retries heap_mb stage_seconds
      hosts local_fallback verbose json =
    if resume && journal = None then
      die ~json
        (Diag.usage ~code:"batch.usage" "--resume requires --journal PATH");
    let entries = or_die ~json (Batch.Manifest.parse_file manifest) in
    let budgets =
      { Harness.Driver.default_budgets with Harness.Driver.stage_seconds }
    in
    let pool_jobs =
      List.mapi (fun i e -> Batch.Jobs.of_entry ~budgets ~seed:i e) entries
    in
    let heap_words =
      if heap_mb <= 0 then None
      else Some (heap_mb * 1024 * 1024 / (Sys.word_size / 8))
    in
    let log = if verbose then prerr_endline else fun _ -> () in
    Batch.Pool.install_signal_handlers ();
    let o =
      match hosts with
      | None ->
          or_die ~json
            (Batch.Pool.run ~workers:jobs
               ~retry:(Batch.Retry.of_retries retries)
               ?journal ~resume ?heap_words ~log ~deadline pool_jobs)
      | Some hosts ->
          let endpoints =
            or_die ~json (Cluster.Endpoint.parse_list hosts)
          in
          let pairs =
            List.mapi
              (fun i (j : Batch.Pool.job) ->
                let entry = List.nth entries i in
                ( j,
                  Some (Cluster.Wire.of_entry ~stage_seconds ~seed:i entry)
                ))
              pool_jobs
          in
          let config =
            {
              Cluster.Dispatcher.default_config with
              Cluster.Dispatcher.endpoints;
              local_workers = jobs;
              heap_words;
              local_fallback;
              log;
            }
          in
          Result.map fst
            (Cluster.Dispatcher.run ~config
               ~retry:(Batch.Retry.of_retries retries)
               ?journal ~resume ~deadline pairs)
          |> or_die ~json
    in
    if o.Batch.Pool.interrupted then begin
      prerr_endline "batch: interrupted; workers killed, journal flushed";
      exit 130
    end;
    if o.Batch.Pool.resumed > 0 then
      Printf.printf "resume: %d job(s) already journalled, skipped\n"
        o.Batch.Pool.resumed;
    print_string (Batch.Jobs.summarize o.Batch.Pool.records);
    let failed =
      List.filter Batch.Jobs.record_failed o.Batch.Pool.records
    in
    if failed <> [] then
      die ~json
        (Diag.partial
           (Printf.sprintf "%d of %d job(s) failed" (List.length failed)
              (List.length o.Batch.Pool.records)))
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      const run $ manifest_arg $ jobs_arg $ journal_arg $ resume_arg
      $ deadline_arg $ retries_arg $ heap_mb_arg $ stage_seconds_arg
      $ hosts_arg $ local_fallback_arg $ verbose_arg $ json_arg)

(* --- explore ----------------------------------------------------------- *)

let explore_cmd =
  let doc =
    "Design-space exploration: expand a sweep spec (MFSA weight vectors, \
     time/resource constraints, cell-library variants, design styles, \
     engines) into a job lattice, evaluate it under the supervised batch \
     pool, and fold the results into a Pareto front over (control steps, \
     ALU area, MUX area, registers). A content-addressed result cache \
     keyed on the canonicalized DFG plus the full option vector lets \
     repeated or resumed sweeps skip every already-evaluated point. \
     Exits 6 when some points failed, 130 on interrupt."
  in
  let spec_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
           ~doc:"Sweep specification file (see Explore.Spec for the \
                 line-oriented format: graph, engine, style, weights, cs, \
                 limits, library, clock, cse, budget, inject).")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
           ~doc:"Concurrent worker processes.")
  in
  let cache_arg =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"PATH"
           ~doc:"Content-addressed result cache (JSONL, fsynced appends). \
                 Loaded before the sweep; every solved or infeasible \
                 point is appended, failures never are.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH"
           ~doc:"Pool verdict journal; required for --resume.")
  in
  let resume_arg =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Replay final verdicts from the journal instead of \
                 re-forking their workers.")
  in
  let budget_arg =
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N"
           ~doc:"Adaptive-refinement point budget; overrides the spec's \
                 $(b,budget) directive (0 disables refinement).")
  in
  let deadline_arg =
    Arg.(value & opt float 60.0 & info [ "deadline" ] ~docv:"S"
           ~doc:"Per-point wall-clock watchdog; a worker past it is \
                 SIGKILLed and the point counts as failed.")
  in
  let json_out_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the full outcome (counts + per-point records) as \
                 one JSON object on stdout.")
  in
  let dot_front_arg =
    Arg.(value & flag & info [ "dot-front" ]
           ~doc:"Print the dominance graph as Graphviz DOT: a node per \
                 solved point (front members filled), an edge from a \
                 dominating front member to each dominated point.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ]
           ~doc:"Narrate batches, spawns and verdicts on stderr.")
  in
  let hosts_arg =
    Arg.(value & opt (some string) None & info [ "hosts" ] ~docv:"ENDPOINTS"
           ~doc:"Comma-separated endpoints to bind (socket paths or \
                 tcp:PORT); lattice points are leased to connected synth \
                 worker processes with heartbeat failover.")
  in
  let local_fallback_arg =
    Arg.(value & flag & info [ "local-fallback" ]
           ~doc:"With --hosts: evaluate a point in-process when its \
                 lease retries are exhausted or no worker is live.")
  in
  let run spec_file jobs cache journal resume budget deadline csv json_out
      dot_front hosts local_fallback verbose json =
    if resume && journal = None then
      die ~json
        (Diag.usage ~code:"explore.usage" "--resume requires --journal PATH");
    let spec = or_die ~json (Explore.Spec.load spec_file) in
    let log = if verbose then prerr_endline else fun _ -> () in
    Batch.Pool.install_signal_handlers ();
    let runner =
      match hosts with
      | None -> None
      | Some hosts ->
          let endpoints =
            or_die ~json (Cluster.Endpoint.parse_list hosts)
          in
          let config =
            {
              Cluster.Dispatcher.default_config with
              Cluster.Dispatcher.endpoints;
              local_workers = jobs;
              local_fallback;
              log;
            }
          in
          Some
            (fun ~deadline jobs ->
              Result.map fst
                (Cluster.Dispatcher.run ~config ~retry:Batch.Retry.none
                   ?journal ~resume ~deadline
                   (List.map (fun (j, w) -> (j, Some w)) jobs)))
    in
    let o =
      or_die ~json
        (Explore.Engine.run ~workers:jobs ?cache ?journal ~resume ~deadline
           ?budget ?runner ~log spec)
    in
    if o.Explore.Engine.interrupted then begin
      prerr_endline "explore: interrupted; workers killed, journal flushed";
      exit 130
    end;
    if json_out then print_string (Explore.Front_report.json o ^ "\n")
    else if csv then print_string (Explore.Front_report.csv o)
    else if dot_front then print_string (Explore.Front_report.dot o)
    else begin
      print_string (Explore.Front_report.summary o);
      print_string (Explore.Front_report.table o)
    end;
    flush stdout;
    List.iter prerr_endline (Explore.Front_report.failure_lines o);
    let failures = Explore.Engine.failures o in
    if failures <> [] then
      die ~json
        (Diag.partial ~code:"explore.partial-failure"
           (Printf.sprintf "%d of %d point(s) failed" (List.length failures)
              (List.length o.Explore.Engine.evals)))
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ spec_arg $ jobs_arg $ cache_arg $ journal_arg $ resume_arg
      $ budget_arg $ deadline_arg $ csv_arg $ json_out_arg $ dot_front_arg
      $ hosts_arg $ local_fallback_arg $ verbose_arg $ json_arg)

(* --- lint ------------------------------------------------------------- *)

let lint_cmd =
  let doc =
    "Static analysis: DFG lint, feasibility bounds, register lifetimes and \
     RTL dataflow verification. Emits findings, not designs; the exit code \
     is the worst error finding's category (0 when clean)."
  in
  let json_out_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the findings as a JSON array on stdout.")
  in
  let dot_lint_arg =
    Arg.(value & flag & info [ "dot-lint" ]
           ~doc:"Print the DFG as Graphviz DOT with flagged nodes filled \
                 (red = error, amber = warning).")
  in
  let inject_arg =
    Arg.(value & opt (some fault_conv) None & info [ "inject" ] ~docv:"FAULT"
           ~doc:"Corrupt the synthesised artefacts with a seeded fault \
                 before the post passes run — demonstrates that the fault \
                 is statically detectable (corrupt-start, corrupt-col, \
                 corrupt-trace, collide-mem, skew-delay).")
  in
  let run spec cs two_cycle pipelined latency clock limits ports style inject
      json_out dot_lint cse widths json =
    (match inject with
    | Some f when Harness.Fault.is_process f ->
        die ~json
          (Diag.usage ~code:"lint.process-fault"
             (Printf.sprintf
                "--inject %s is a process fault: it takes the worker down \
                 instead of corrupting an artefact a static pass could \
                 catch. Use 'synth batch' with a manifest fault to prove \
                 containment."
                (Harness.Fault.to_string f)))
    | _ -> ());
    let g = or_die ~json (load_graph spec) in
    let g = apply_cse ~json g cse in
    let lib = make_library g ~two_cycle ~pipelined in
    let config = make_config ?ports lib ~clock ~latency in
    let time_mode = limits = [] in
    let cs = effective_cs config g cs in
    let pre, pre_times =
      if time_mode then Analysis.Runner.pre_timed ~cs config g
      else Analysis.Runner.pre_timed ~limits config g
    in
    let post_times = ref [] in
    let timed name f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      post_times := (name, (Unix.gettimeofday () -. t0) *. 1000.) :: !post_times;
      r
    in
    let bounds =
      Analysis.Feasibility.analyze
        ?cs:(if time_mode then Some cs else None)
        config g
    in
    let header =
      (if time_mode then
         Printf.sprintf "critical path: %d step(s); budget: %d"
           bounds.Analysis.Feasibility.min_steps cs
       else
         Printf.sprintf "critical path: %d step(s)"
           bounds.Analysis.Feasibility.min_steps)
      ::
      (match bounds.Analysis.Feasibility.fu_lower_bounds with
      | [] -> []
      | bs ->
          [
            "FU lower bounds: "
            ^ String.concat ", "
                (List.map (fun (c, k) -> Printf.sprintf "%s >= %d" c k) bs);
          ])
    in
    (* The post passes audit a synthesised design; an error on the input
       (e.g. an infeasible budget) stops here — MFS/MFSA never run. *)
    let post, reg_lines =
      if Analysis.Finding.errors pre <> [] then ([], [])
      else begin
        let o = or_die ~json (Core.Mfsa.run ~config ~style ~library:lib ~cs g) in
        let dp = o.Core.Mfsa.datapath in
        let delay i =
          Core.Config.delay config (Dfg.Graph.node g i).Dfg.Graph.kind
        in
        let eff_delay = ref delay in
        (* The MFS schedule carries FU columns (the corrupt-col target); the
           MFSA schedule is audited against its own register binding. *)
        let mfs_sched, mfs_trace =
          match Core.Mfs.run ~config g (Core.Mfs.Time { cs }) with
          | Ok m -> (Some m.Core.Mfs.schedule, Some m.Core.Mfs.trace)
          | Error _ -> (None, None)
        in
        let sched = ref (Option.value mfs_sched ~default:o.Core.Mfsa.schedule) in
        let trace = ref mfs_trace in
        (match inject with
        | None -> ()
        | Some Harness.Fault.Corrupt_start -> (
            match Harness.Fault.corrupt_start !sched with
            | Some s -> sched := s
            | None -> ())
        | Some Harness.Fault.Corrupt_col -> (
            match Harness.Fault.corrupt_col !sched with
            | Some s -> sched := s
            | None -> ())
        | Some Harness.Fault.Corrupt_trace -> (
            match Option.map Harness.Fault.corrupt_trace !trace with
            | Some (Some tr) -> trace := Some tr
            | _ -> ())
        | Some Harness.Fault.Collide_mem -> (
            match Harness.Fault.collide_mem !sched with
            | Some s -> sched := s
            | None -> ())
        | Some Harness.Fault.Skew_delay -> (
            match Harness.Fault.skew_delay dp ~delay with
            | Some d -> eff_delay := d
            | None -> ())
        | Some (Harness.Fault.Hang | Harness.Fault.Segv) ->
            (* Rejected above; process faults never reach the passes. *)
            ());
        let ctrl =
          or_die_s ~json Diag.Internal ~code:"synth.controller"
            (Rtl.Controller.generate dp ~delay)
        in
        (* Explicit lets: [@] evaluates right-to-left, which would
           reverse the recorded pass order. *)
        let post_sched =
          timed "post-schedule" (fun () ->
              Analysis.Runner.post_schedule ?trace:!trace !sched
              @ Analysis.Sched_lint.lifetimes ~regs:dp.Rtl.Datapath.regs
                  o.Core.Mfsa.schedule)
        in
        let post_rtl =
          timed "post-rtl" (fun () ->
              Analysis.Runner.post_rtl
                ~share_mutex:config.Core.Config.share_mutex
                ?latency:config.Core.Config.functional_latency dp ctrl
                ~delay:!eff_delay)
        in
        let fs = post_sched @ post_rtl in
        ( fs,
          [
            Printf.sprintf "registers: %d used; lower bound %d"
              dp.Rtl.Datapath.regs.Rtl.Left_edge.count
              (Analysis.Sched_lint.reg_lower_bound o.Core.Mfsa.schedule);
          ] )
      end
    in
    let fs = pre @ post in
    if dot_lint then begin
      let fill =
        List.map
          (fun (n, sev) ->
            ( n,
              match sev with
              | Diag.Error -> "#f4cccc"
              | Diag.Warning -> "#ffe599" ))
          (Analysis.Finding.flagged fs)
      in
      print_string (Dfg.Dot.of_graph ~fill g);
      print_newline ()
    end
    else if json_out then begin
      (* Report object: the findings plus per-pass wall-clock timings. *)
      let times = pre_times @ List.rev !post_times in
      Printf.printf "{\"findings\":%s,\"timings_ms\":{%s}}\n"
        (Analysis.Finding.to_json fs)
        (String.concat ","
           (List.map (fun (n, ms) -> Printf.sprintf "%S:%.3f" n ms) times))
    end
    else begin
      List.iter print_endline header;
      List.iter print_endline reg_lines;
      if widths then
        print_string (Analysis.Ranges.width_table g (Analysis.Ranges.analyze g));
      List.iter
        (fun f -> print_endline (Diag.to_string f.Analysis.Finding.diag))
        fs;
      print_endline (Analysis.Runner.summary fs)
    end;
    let code = Analysis.Finding.exit_code fs in
    if code <> 0 then exit code
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ graph_arg $ cs_arg $ two_cycle_arg $ pipelined_arg
      $ latency_arg $ clock_arg $ limits_arg $ ports_arg $ style_arg
      $ inject_arg $ json_out_arg $ dot_lint_arg $ cse_arg $ widths_arg
      $ json_arg)

(* --- compile ------------------------------------------------------------ *)

let compile_cmd =
  let doc =
    "Compile a behavioural description (.beh) to the DFG text format."
  in
  let run spec cse json =
    let g = or_die ~json (load_graph spec) in
    let g = apply_cse ~json g cse in
    print_string (Dfg.Parser.to_source g)
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ graph_arg $ cse_arg $ json_arg)

(* --- serve -------------------------------------------------------------- *)

let socket_arg =
  Arg.(value & opt string "synth.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path; a stale file is replaced.")

let serve_cmd =
  let doc =
    "Run the crash-safe synthesis daemon: length-prefixed JSON frames \
     over a Unix socket (optionally TCP on localhost), requests \
     dispatched to a supervised worker pool behind per-request deadlines \
     and heap ceilings, repeats answered from the shared content-addressed \
     result cache. Admission is bounded — overload is shed with a typed \
     serve.overloaded rejection and a retry-after hint, never an unbounded \
     queue. The cache and request journal are fsynced JSONL, so kill -9 \
     plus restart resumes warm; SIGTERM drains gracefully and exits 0."
  in
  let tcp_arg =
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
           ~doc:"Also listen on 127.0.0.1:PORT.")
  in
  let jobs_arg =
    Arg.(value & opt int 4 & info [ "jobs" ] ~docv:"N"
           ~doc:"Concurrent worker processes.")
  in
  let deadline_arg =
    Arg.(value & opt float 30.0 & info [ "deadline" ] ~docv:"S"
           ~doc:"Per-request wall-clock ceiling; a request's own deadline \
                 field may only lower it. Workers past it are SIGKILLed \
                 and the client gets a typed serve.deadline error.")
  in
  let heap_mb_arg =
    Arg.(value & opt int 512 & info [ "heap-mb" ] ~docv:"MB"
           ~doc:"OCaml-heap ceiling per worker (0 disables).")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Admission queue bound; arrivals beyond it are shed with \
                 serve.overloaded.")
  in
  let max_conns_arg =
    Arg.(value & opt int 128 & info [ "max-conns" ] ~docv:"N"
           ~doc:"Connection ceiling; excess connects get one typed \
                 rejection frame and are closed.")
  in
  let read_timeout_arg =
    Arg.(value & opt float 10.0 & info [ "read-timeout" ] ~docv:"S"
           ~doc:"Drop a connection whose partial frame makes no progress \
                 for this long (slowloris guard).")
  in
  let drain_timeout_arg =
    Arg.(value & opt float 5.0 & info [ "drain-timeout" ] ~docv:"S"
           ~doc:"On SIGTERM, wait this long for in-flight work before \
                 SIGKILLing it.")
  in
  let cache_arg =
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"PATH"
           ~doc:"Shared JSONL result cache (fsynced per entry); reloaded \
                 warm after a restart. A corrupt store is moved aside to \
                 PATH.corrupt, never fatal.")
  in
  let cache_max_arg =
    Arg.(value & opt int 0 & info [ "cache-max" ] ~docv:"N"
           ~doc:"Resident cache entries to keep (LRU eviction; in-flight \
                 keys are never evicted). 0 = unbounded.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH"
           ~doc:"JSONL request journal (one fsynced verdict per completed \
                 request).")
  in
  let max_frame_arg =
    Arg.(value & opt int Batch.Jsonl.default_max_document_bytes
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:"Wire frame / JSON document ceiling; larger frames are \
                   refused from their header alone.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ]
           ~doc:"Narrate connections, drains and store recovery on stderr.")
  in
  let run socket tcp_port jobs deadline heap_mb queue_limit max_conns
      read_timeout drain_timeout cache cache_max journal max_frame verbose
      json =
    let heap_words =
      if heap_mb <= 0 then None
      else Some (heap_mb * 1024 * 1024 / (Sys.word_size / 8))
    in
    let cfg =
      {
        (Serve.Daemon.default ~socket) with
        Serve.Daemon.tcp_port;
        workers = max 1 jobs;
        deadline;
        heap_words;
        queue_limit;
        max_conns;
        max_frame;
        read_timeout;
        drain_timeout;
        cache_path = cache;
        cache_max = (if cache_max <= 0 then None else Some cache_max);
        journal_path = journal;
        log = (if verbose then prerr_endline else fun _ -> ());
      }
    in
    or_die ~json (Serve.Daemon.run cfg)
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ deadline_arg
      $ heap_mb_arg $ queue_arg $ max_conns_arg $ read_timeout_arg
      $ drain_timeout_arg $ cache_arg $ cache_max_arg $ journal_arg
      $ max_frame_arg $ verbose_arg $ json_arg)

(* --- bombard ------------------------------------------------------------ *)

let bombard_cmd =
  let doc =
    "Load-test a running synth serve daemon: fork concurrent clients \
     firing a mixed request corpus, optionally planting faults (hanging \
     jobs, oversized frames, half-closed sockets), then assert the \
     robustness contract — every request answered with a typed response, \
     planted faults classified under their expected codes, and (for warm \
     re-runs) a minimum cache hit rate. Exits 5 when an assertion fails."
  in
  let jobs_arg =
    Arg.(value & opt int 8 & info [ "jobs" ] ~docv:"N"
           ~doc:"Concurrent client processes.")
  in
  let requests_arg =
    Arg.(value & opt int 25 & info [ "requests" ] ~docv:"N"
           ~doc:"Requests per client.")
  in
  let graph_corpus_arg =
    Arg.(value & opt string "diffeq" & info [ "graph" ] ~docv:"DFG"
           ~doc:"Corpus graph (builtin name or file).")
  in
  let hang_arg =
    Arg.(value & flag & info [ "plant-hang" ]
           ~doc:"Plant schedule requests that hang in the worker (1s \
                 request deadline); expect serve.deadline verdicts.")
  in
  let oversize_arg =
    Arg.(value & flag & info [ "plant-oversize" ]
           ~doc:"Plant frames over the daemon's limit; expect \
                 serve.frame-too-large.")
  in
  let half_close_arg =
    Arg.(value & flag & info [ "plant-half-close" ]
           ~doc:"Plant connections that shut down their send side right \
                 after the request; the response must still arrive.")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"S"
           ~doc:"Client-side wait per response.")
  in
  let hit_rate_arg =
    Arg.(value & opt (some float) None & info [ "expect-hit-rate" ]
           ~docv:"R"
           ~doc:"Assert cached/ok is at least R (warm re-run check).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Narrate on stderr.")
  in
  let run socket jobs requests graph plant_hang plant_oversize
      plant_half_close timeout expect_hit_rate verbose json =
    let cfg =
      {
        Serve.Bombard.socket;
        jobs;
        requests;
        graph;
        plant_hang;
        plant_oversize;
        plant_half_close;
        timeout;
        expect_hit_rate;
        log = (if verbose then prerr_endline else fun _ -> ());
      }
    in
    let report = or_die ~json (Serve.Bombard.run cfg) in
    print_endline (Serve.Bombard.report_to_json report);
    match report.Serve.Bombard.b_failures with
    | [] -> ()
    | failures ->
        die ~json
          (Diag.internal ~code:"serve.bombard-failed"
             (String.concat "; " failures))
  in
  Cmd.v (Cmd.info "bombard" ~doc)
    Term.(
      const run $ socket_arg $ jobs_arg $ requests_arg $ graph_corpus_arg
      $ hang_arg $ oversize_arg $ half_close_arg $ timeout_arg
      $ hit_rate_arg $ verbose_arg $ json_arg)

(* --- worker ------------------------------------------------------------ *)

let worker_cmd =
  let doc =
    "Join a batch/explore cluster as an execution host: dial the \
     dispatcher endpoint, register capacity, execute leased jobs through \
     a local supervised pool (fork isolation, deadline SIGKILL, heap \
     ceiling), heartbeat, and reconnect with jittered backoff if the \
     dispatcher restarts. Holds no durable state — a crashed worker's \
     leases are replayed elsewhere and its late results are fenced off."
  in
  let connect_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ENDPOINT"
           ~doc:"Dispatcher endpoint: a Unix socket path or tcp:PORT \
                 (as given to --hosts).")
  in
  let jobs_arg =
    Arg.(value & opt int 2 & info [ "jobs" ] ~docv:"N"
           ~doc:"Concurrent leases to execute (local pool width).")
  in
  let name_arg =
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
           ~doc:"Cluster-unique worker name (default: host-pid).")
  in
  let heap_mb_arg =
    Arg.(value & opt int 512 & info [ "heap-mb" ] ~docv:"MB"
           ~doc:"OCaml-heap ceiling per leased job; 0 disables it.")
  in
  let heartbeat_arg =
    Arg.(value & opt float 0.5 & info [ "heartbeat" ] ~docv:"S"
           ~doc:"Heartbeat interval; the dispatcher declares a worker \
                 dead after a few missed beats.")
  in
  let max_reconnects_arg =
    Arg.(value & opt int 0 & info [ "max-reconnects" ] ~docv:"N"
           ~doc:"Give up after N consecutive failed dials (exit with a \
                 typed cluster.disconnected error); 0 retries forever.")
  in
  let libraries_arg =
    Arg.(value & opt (some string) None & info [ "libraries" ] ~docv:"LIBS"
           ~doc:"Comma-separated cell-library variants this host keeps \
                 warm, advertised in the registration.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Narrate on stderr.")
  in
  let run endpoint jobs name heap_mb heartbeat max_reconnects libraries
      verbose json =
    let endpoint = or_die ~json (Cluster.Endpoint.parse endpoint) in
    let name =
      match name with
      | Some n -> n
      | None ->
          Printf.sprintf "%s-%d" (Unix.gethostname ()) (Unix.getpid ())
    in
    let heap_words =
      if heap_mb <= 0 then None
      else Some (heap_mb * 1024 * 1024 / (Sys.word_size / 8))
    in
    Batch.Pool.install_signal_handlers ();
    let cfg =
      {
        (Cluster.Worker.default_config ~endpoint ~name) with
        Cluster.Worker.capacity = jobs;
        heap_words;
        heap_mb = (if heap_mb <= 0 then None else Some heap_mb);
        heartbeat_interval = heartbeat;
        max_sessions = (if max_reconnects <= 0 then max_int
                        else max_reconnects);
        libraries =
          (match libraries with
          | None -> []
          | Some s ->
              List.filter
                (fun l -> l <> "")
                (List.map String.trim (String.split_on_char ',' s)));
        log = (if verbose then prerr_endline else fun _ -> ());
      }
    in
    or_die ~json (Cluster.Worker.run ~stop:Batch.Pool.stop_pending cfg)
  in
  Cmd.v (Cmd.info "worker" ~doc)
    Term.(
      const run $ connect_arg $ jobs_arg $ name_arg $ heap_mb_arg
      $ heartbeat_arg $ max_reconnects_arg $ libraries_arg $ verbose_arg
      $ json_arg)

(* --- chaos ------------------------------------------------------------- *)

let chaos_cmd =
  let doc =
    "Chaos-test the cluster dispatcher: run a builtin-graph workload \
     once undisturbed and once across forked synth workers with planted \
     faults (kill -9 mid-lease, optional SIGSTOP partition and \
     slow-loris worker, duplicated result frames), then assert the \
     fault-tolerance contract — every job reaches a terminal verdict \
     exactly once in the journal, verdicts and exit code match the \
     undisturbed run, a warm --resume replays zero jobs, and an \
     all-workers-dead cluster still completes via local fallback. \
     Exits 5 when a check fails."
  in
  let dir_arg =
    Arg.(value & opt string "_chaos" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Scratch directory for sockets and journals.")
  in
  let workers_arg =
    Arg.(value & opt int 3 & info [ "workers" ] ~docv:"N"
           ~doc:"Forked worker processes.")
  in
  let jobs_arg =
    Arg.(value & opt int 12 & info [ "jobs" ] ~docv:"N"
           ~doc:"Workload size (builtin graphs, one planted hang).")
  in
  let deadline_arg =
    Arg.(value & opt float 10.0 & info [ "deadline" ] ~docv:"S"
           ~doc:"Per-attempt wall-clock watchdog.")
  in
  let stage_seconds_arg =
    Arg.(value & opt float 5.0 & info [ "stage-seconds" ] ~docv:"S"
           ~doc:"Advisory per-stage budget.")
  in
  let no_kill_arg =
    Arg.(value & flag & info [ "no-kill" ]
           ~doc:"Skip the kill -9 of a worker mid-lease.")
  in
  let stop_arg =
    Arg.(value & flag & info [ "sigstop" ]
           ~doc:"SIGSTOP a worker at half-way: a half-open partition \
                 (process alive, heartbeats stopped).")
  in
  let loris_arg =
    Arg.(value & flag & info [ "slow-loris" ]
           ~doc:"Add a worker that registers and heartbeats but never \
                 finishes a lease; its leases must be reclaimed by \
                 expiry.")
  in
  let no_duplicate_arg =
    Arg.(value & flag & info [ "no-duplicate" ]
           ~doc:"Skip the worker that delivers every result twice.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Narrate on stderr.")
  in
  let json_out_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the report as one JSON object on stdout.")
  in
  let run dir workers jobs deadline stage_seconds no_kill sigstop slow_loris
      no_duplicate seed verbose json_out =
    let json = json_out in
    let cfg =
      {
        Cluster.Chaos.dir;
        workers;
        jobs;
        kill_worker = not no_kill;
        stop_worker = sigstop;
        slow_loris;
        duplicate = not no_duplicate;
        stage_seconds;
        deadline;
        seed;
        log = (if verbose then prerr_endline else fun _ -> ());
      }
    in
    let report = or_die ~json (Cluster.Chaos.run cfg) in
    if json_out then
      print_endline (Batch.Jsonl.to_string (Cluster.Chaos.report_json report))
    else Cluster.Chaos.print report print_endline;
    if not (Cluster.Chaos.passed report) then
      die ~json
        (Diag.internal ~code:"cluster.chaos-failed"
           (Printf.sprintf "%d check(s) failed"
              (List.length
                 (List.filter
                    (fun c -> not c.Cluster.Chaos.k_pass)
                    report.Cluster.Chaos.checks))))
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ dir_arg $ workers_arg $ jobs_arg $ deadline_arg
      $ stage_seconds_arg $ no_kill_arg $ stop_arg $ loris_arg
      $ no_duplicate_arg $ seed_arg $ verbose_arg $ json_out_arg)

(* --- version ----------------------------------------------------------- *)

(* Kept in sync by hand: there is no release pipeline stamping builds, and
   a stable literal keeps the cram expectation exact. *)
let version_string = "synth 0.6.0"

let version_cmd =
  let doc = "Print the tool name and version." in
  let run () = print_endline version_string in
  Cmd.v (Cmd.info "version" ~doc) Term.(const run $ const ())

let main =
  let doc = "MFS/MFSA high-level synthesis (DAC 1992 reproduction)" in
  Cmd.group (Cmd.info "synth" ~doc ~version:version_string)
    [ show_cmd; mfs_cmd; mfsa_cmd; lint_cmd; compare_cmd; explore_cmd;
      fuzz_cmd; batch_cmd; compile_cmd; serve_cmd; bombard_cmd; worker_cmd;
      chaos_cmd; version_cmd ]

let () =
  (* A vanished peer (redirected stderr, daemon client, journal sink) must
     surface as a typed EPIPE diagnostic, never a SIGPIPE kill. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Cmdliner's own exit codes for CLI misuse / internal errors are 124 and
     125; fold them into this tool's documented contract (2 = usage,
     5 = internal). *)
  match Cmd.eval main with
  | 124 -> exit 2
  | 125 -> exit 5
  | code -> exit code
