(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DAC'92, section 6), plus the runtime comparison its §1
   claims and ablations over the design choices in DESIGN.md.

   Sections (run all by default, or select on the command line):
     table1    MFS balanced schedules per example and time budget
     table2    MFSA RTL results, design styles 1 and 2
     figure1   the 2-D placement table with an operation's move
     figure2   PF/RF/FF/MF frames of a typical operation
     speed     Bechamel timings: MFS/MFSA vs list, FDS, annealing
     scaling   MFS runtime vs problem size, array kernel vs the frozen
               seed list kernel (Reference.Seed_mfs); also writes
               BENCH_scaling.json with the raw per-size measurements
     versus    MFSA vs an FDS + single-function binding flow
     ablation  Liapunov weight sweep, library and sharing ablations

   Numbers land in EXPERIMENTS.md next to the paper's; the shapes (who
   wins, by what factor, where the crossovers fall) are the deliverable. *)

let fus schedule =
  Core.Schedule.fu_counts schedule
  |> List.filter (fun (_, k) -> k > 0)
  |> List.map (fun (c, k) -> String.concat "" (List.init k (fun _ -> c)))
  |> String.concat ","

let fu_count s klass =
  Option.value ~default:0 (List.assoc_opt klass (Core.Schedule.fu_counts s))

let ok = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("bench: " ^ e);
      exit 1

(* Kernel entry points report typed diagnostics; render them for the bench. *)
let okd r = ok (Result.map_error Diag.message r)

(* --- Table 1 ----------------------------------------------------------- *)

type t1_row = {
  r_name : string;
  r_feature : string;
  r_graph : Dfg.Graph.t;
  r_config : Core.Config.t;
  r_budgets : int list;
  r_latencies : int list;  (* functional pipelining rows *)
}

let two_cycle_cfg =
  {
    Core.Config.default with
    Core.Config.delays = (function Dfg.Op.Mul | Dfg.Op.Div -> 2 | _ -> 1);
  }

let pipelined_cfg =
  {
    two_cycle_cfg with
    Core.Config.pipelined = (function Dfg.Op.Mul | Dfg.Op.Div -> true | _ -> false);
  }

let chain_cfg =
  {
    Core.Config.default with
    Core.Config.chaining =
      Some
        {
          Core.Config.prop_delay = Celllib.Ncr.default.Celllib.Library.prop_delay;
          clock = 100.;
        };
  }

let table1_rows () =
  [
    { r_name = "ex1 (tseng)"; r_feature = "1"; r_graph = Workloads.Classic.tseng ();
      r_config = Core.Config.default; r_budgets = [ 4; 5 ]; r_latencies = [] };
    { r_name = "ex2 (chained)"; r_feature = "1,C"; r_graph = Workloads.Classic.chained_sum ();
      r_config = chain_cfg; r_budgets = [ 3; 4 ]; r_latencies = [] };
    { r_name = "ex3 (ar)"; r_feature = "1,F"; r_graph = Workloads.Classic.ar_filter ();
      r_config = Core.Config.default; r_budgets = [ 13 ]; r_latencies = [ 4; 6; 8 ] };
    { r_name = "ex4 (fir16)"; r_feature = "1"; r_graph = Workloads.Classic.fir16 ();
      r_config = Core.Config.default; r_budgets = [ 5; 7; 9 ]; r_latencies = [] };
    { r_name = "ex5 (dct8)"; r_feature = "2"; r_graph = Workloads.Classic.dct8 ();
      r_config = two_cycle_cfg; r_budgets = [ 6; 8; 10 ]; r_latencies = [] };
    { r_name = "ex5 (dct8)"; r_feature = "2,S"; r_graph = Workloads.Classic.dct8 ();
      r_config = pipelined_cfg; r_budgets = [ 6; 8; 10 ]; r_latencies = [] };
    { r_name = "ex6 (ewf)"; r_feature = "2"; r_graph = Workloads.Classic.ewf ();
      r_config = two_cycle_cfg; r_budgets = [ 17; 19; 21 ]; r_latencies = [] };
    { r_name = "ex6 (ewf)"; r_feature = "2,S"; r_graph = Workloads.Classic.ewf ();
      r_config = pipelined_cfg; r_budgets = [ 17; 19; 21 ]; r_latencies = [] };
  ]

let table1 () =
  print_endline "== Table 1: MFS balanced schedules ==";
  print_endline
    "(feature column: 1/2 = cycles per multiply, C = chaining, F =\n\
     functional pipelining with latency L, S = structural pipelining)";
  let rows =
    List.concat_map
      (fun r ->
        let time_rows =
          List.map
            (fun cs ->
              match Core.Mfs.schedule ~config:r.r_config r.r_graph (Core.Mfs.Time { cs }) with
              | Ok s ->
                  [ r.r_name; r.r_feature; Printf.sprintf "T=%d" cs; fus s;
                    (match Core.Schedule.check s with Ok () -> "yes" | Error _ -> "NO") ]
              | Error e -> [ r.r_name; r.r_feature; Printf.sprintf "T=%d" cs; "error: " ^ Diag.message e; "-" ])
            r.r_budgets
        in
        let latency_rows =
          List.map
            (fun latency ->
              let config =
                { (r.r_config) with Core.Config.functional_latency = Some latency }
              in
              let cs = Core.Timeframe.min_cs config r.r_graph in
              match Core.Mfs.schedule ~config r.r_graph (Core.Mfs.Time { cs }) with
              | Ok s ->
                  [ r.r_name; r.r_feature; Printf.sprintf "L=%d" latency; fus s;
                    (match Core.Schedule.check s with Ok () -> "yes" | Error _ -> "NO") ]
              | Error e ->
                  [ r.r_name; r.r_feature; Printf.sprintf "L=%d" latency; "error: " ^ Diag.message e; "-" ])
            r.r_latencies
        in
        time_rows @ latency_rows)
      (table1_rows ())
  in
  print_string
    (Report.Table.render
       ~header:[ "example"; "feature"; "budget"; "functional units"; "valid" ]
       rows);
  print_newline ()

(* --- Table 2 ----------------------------------------------------------- *)

let mfsa_for style g cs =
  let lib = Celllib.Ncr.for_graph g in
  let config = Core.Config.of_library lib in
  okd (Core.Mfsa.run ~config ~style ~library:lib ~cs g)

let table2 () =
  print_endline "== Table 2: MFSA scheduling-allocation (styles 1 and 2) ==";
  let rows = ref [] in
  let overheads = ref [] in
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      let o1 = mfsa_for Core.Mfsa.Unrestricted g cs in
      let o2 = mfsa_for Core.Mfsa.No_self_loop g cs in
      let row style (o : Core.Mfsa.outcome) =
        [ name; Printf.sprintf "T=%d" cs; style;
          Rtl.Cost.alu_config o.Core.Mfsa.datapath;
          Printf.sprintf "%.0f" o.Core.Mfsa.cost.Rtl.Cost.total;
          string_of_int o.Core.Mfsa.cost.Rtl.Cost.n_regs;
          string_of_int o.Core.Mfsa.cost.Rtl.Cost.n_mux;
          string_of_int o.Core.Mfsa.cost.Rtl.Cost.n_mux_inputs ]
      in
      rows := !rows @ [ row "1" o1; row "2" o2 ];
      overheads :=
        (name,
         100.
         *. (o2.Core.Mfsa.cost.Rtl.Cost.total -. o1.Core.Mfsa.cost.Rtl.Cost.total)
         /. o1.Core.Mfsa.cost.Rtl.Cost.total)
        :: !overheads)
    (Workloads.Classic.all ());
  print_string
    (Report.Table.render
       ~header:[ "example"; "T"; "style"; "ALUs"; "cost um2"; "REG"; "MUX"; "MUXin" ]
       !rows);
  print_endline "style-2 overhead over style 1 (paper: 2-11%):";
  List.iter
    (fun (name, pct) -> Printf.printf "  %-12s %+.1f%%\n" name pct)
    (List.rev !overheads);
  print_newline ()

(* --- Figures ----------------------------------------------------------- *)

let figure1 () =
  print_endline "== Figure 1: placement table (diffeq, T=4, class '*') ==";
  let g = Workloads.Classic.diffeq () in
  let o = okd (Core.Mfs.run g (Core.Mfs.Time { cs = 4 })) in
  let s = o.Core.Mfs.schedule in
  let col = Option.get s.Core.Schedule.col in
  let label pos =
    List.find_map
      (fun nd ->
        let i = nd.Dfg.Graph.id in
        if
          String.equal (Dfg.Op.fu_class nd.Dfg.Graph.kind) "*"
          && col.(i) = pos.Core.Frames.col
          && s.Core.Schedule.start.(i) = pos.Core.Frames.step
        then Some nd.Dfg.Graph.name
        else None)
      (Dfg.Graph.nodes g)
  in
  print_string
    (Report.Grid_art.render_occupancy ~title:"multiplier placement table"
       ~steps:4 ~cols:(fu_count s "*") ~label);
  (* The multiplication with the longest trajectory: ALFAP corner ->
     chosen position. *)
  let gap e = e.Core.Liapunov.Trace.from_value - e.Core.Liapunov.Trace.to_value in
  (match
     List.sort
       (fun a b -> compare (gap b) (gap a))
       (List.filter
          (fun e ->
            String.equal
              (Dfg.Op.fu_class (Dfg.Graph.node g e.Core.Liapunov.Trace.op).Dfg.Graph.kind)
              "*")
          (Core.Liapunov.Trace.entries o.Core.Mfs.trace))
   with
  | e :: _ ->
      Format.printf
        "move of %s: present position %a (V=%d) -> next position %a (V=%d)@."
        (Dfg.Graph.node g e.Core.Liapunov.Trace.op).Dfg.Graph.name
        Core.Frames.pp_pos e.Core.Liapunov.Trace.from_pos
        e.Core.Liapunov.Trace.from_value Core.Frames.pp_pos
        e.Core.Liapunov.Trace.to_pos e.Core.Liapunov.Trace.to_value
  | [] -> ());
  print_newline ()

let figure2 () =
  print_endline "== Figure 2: PF / RF / FF / MF frames of a typical op ==";
  print_endline
    "(operation r with two placed predecessors; K1/K2 occupied, R =\n\
     redundant frame, F = forbidden steps, . = move frame, > = chosen)";
  let pf = Core.Frames.primary ~step_lo:1 ~step_hi:6 ~max_cols:4 in
  let rf = Core.Frames.redundant ~current:2 ~max_cols:4 ~step_lo:1 ~step_hi:6 in
  let forbidden s = s <= 2 in
  let occupied pos =
    match (pos.Core.Frames.col, pos.Core.Frames.step) with
    | 1, 2 -> Some "K1"
    | 2, 1 -> Some "K2"
    | 1, 3 -> Some "X"
    | 2, 4 -> Some "X"
    | _ -> None
  in
  let free p = occupied p = None in
  let mf = Core.Frames.move_frame ~pf ~rf ~forbidden ~free in
  let chosen = Core.Liapunov.best (Core.Liapunov.Time_constrained { n = 4 }) mf in
  print_string
    (Report.Grid_art.render_frames ~steps:6 ~cols:4 ~pf ~rf ~forbidden
       ~occupied ~chosen);
  (match chosen with
  | Some p -> Format.printf "minimum-energy position in MF: %a@." Core.Frames.pp_pos p
  | None -> ());
  print_newline ()

(* --- Speed (Bechamel) -------------------------------------------------- *)

let speed () =
  print_endline "== Runtime: MFS/MFSA vs baselines (Bechamel, ns/run) ==";
  let open Bechamel in
  let ewf = Workloads.Classic.ewf () in
  let lib = Celllib.Ncr.for_graph ewf in
  let cfg_lib = Core.Config.of_library lib in
  let big = Workloads.Random_dag.generate_exn
      ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops = 200 }
      ~seed:9 ()
  in
  let big_cs = Dfg.Bounds.critical_path big + 2 in
  let staged name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"schedulers"
      [
        staged "mfs/ewf-18" (fun () ->
            okd (Core.Mfs.schedule ewf (Core.Mfs.Time { cs = 18 })));
        staged "list/ewf-18" (fun () -> ok (Baselines.List_sched.time ewf ~cs:18));
        staged "fds/ewf-18" (fun () -> ok (Baselines.Fds.run ewf ~cs:18));
        staged "annealing/ewf-18" (fun () -> ok (Baselines.Annealing.run ewf ~cs:18));
        staged "mfsa/ewf-18" (fun () ->
            okd (Core.Mfsa.run ~config:cfg_lib ~library:lib ~cs:18 ewf));
        staged "mfs/random-200" (fun () ->
            okd (Core.Mfs.schedule big (Core.Mfs.Time { cs = big_cs })));
        staged "list/random-200" (fun () ->
            ok (Baselines.List_sched.time big ~cs:big_cs));
      ]
  in
  let benchmark_cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all benchmark_cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some [ v ] -> Printf.sprintf "%.0f" v
        | _ -> "?"
      in
      rows := [ name; ns ] :: !rows)
    results;
  print_string
    (Report.Table.render
       ~header:[ "scheduler/workload"; "time (ns/run)" ]
       (List.sort compare !rows));
  print_newline ()

(* --- Scaling: the O(l^3) worst-case claim ------------------------------ *)

(* Monotonic-enough wall clock.  [Sys.time] is CPU time and was previously
   reported under a "wall-clock" label; wall time is also what a user of the
   synthesis loop experiences. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let time_best ?(reps = 3) f =
  let rec go best k =
    if k = 0 then best else go (Float.min best (time_once f)) (k - 1)
  in
  go (time_once f) (reps - 1)

(* Scaling-bench timing: one untimed warm-up run (heap growth and cache
   warming otherwise land in the first timed rep and tilt the small tiers),
   a major collection to settle the heap, then best of [reps]. *)
let time_scaling ?(reps = 5) f =
  ignore (time_once f);
  Gc.major ();
  time_best ~reps f

(* Measurements land in BENCH_scaling.json so EXPERIMENTS.md (and the next
   session) can cite exact numbers.  Format: one object with bench metadata
   (workload generator, seed, cs rule, timing method) and a [sizes] array of
   {ops, cs, opts_hash, attempts, total_ms, kernel_ms, seed_kernel_ms,
   speedup, local_exponent}.  [attempts] is the number of placement attempts
   the run needs (restarts + 1) — a step function of the workload, not of
   the kernel — and [kernel_ms] is total_ms / attempts, the per-attempt cost
   the fitted exponent is computed over.  local_exponent is the log-log
   slope of kernel_ms between consecutive sizes and speedup =
   seed_kernel_ms / kernel_ms.  opts_hash is the content-addressed option
   key the explore cache would use for the same (graph, engine, cs) point,
   so bench rows stay joinable with sweep results across option-default
   changes. *)
let scaling_json = "BENCH_scaling.json"

let scaling_opts_hash g ~cs =
  Explore.Lattice.key ~graph:g
    {
      Explore.Lattice.index = 0;
      engine = Explore.Spec.Mfs;
      style = Core.Mfsa.Unrestricted;
      weights = Core.Mfsa.equal_weights;
      constr = Explore.Spec.Time cs;
      library = Explore.Spec.Default;
      widths = false;
      ports = None;
      clock = None;
      cse = false;
      fault = None;
    }

(* A dense geometric ladder (~1.6x per tier): the fitted exponent is a
   least-squares slope, and sparse tiers let one noisy size tilt the whole
   fit.  The exponent is fitted over the per-attempt time: a restart
   re-places everything, so the total time is (restarts + 1) x the attempt
   cost, and the restart count is a step function of the workload (0 below
   ~1000 ops, 2-3 above, 5 at 25k on this generator) that would otherwise
   alias into the slope.  Both the total and the attempt count are reported
   alongside so nothing is hidden by the normalisation. *)
let scaling_sizes =
  [ 50; 100; 200; 400; 700; 1000; 1600; 2500; 4000; 6300; 10_000; 16_000;
    25_000 ]

(* The frozen list-based oracle is measured only up to this size: its
   superlinear inner scans make larger tiers take minutes, and its purpose —
   the speedup column — is served on the shared small tiers. *)
let seed_size_cap = 400

type scaling_row = {
  m_ops : int;
  m_cs : int;
  m_hash : string;
  m_attempts : int; (* placement attempts = restarts + 1 *)
  m_t : float; (* array kernel, total seconds across all attempts *)
  m_seed : float option; (* frozen oracle, seconds; None above the cap *)
}

(* Per-attempt time — what the fitted exponent is computed over. *)
let per_attempt m = m.m_t /. float_of_int m.m_attempts

let measure_scaling sizes =
  List.map
    (fun ops ->
      let g =
        Workloads.Random_dag.generate_exn
          ~spec:{ Workloads.Random_dag.default with Workloads.Random_dag.ops }
          ~seed:17 ()
      in
      let cs = Dfg.Bounds.critical_path g + 2 in
      let attempts =
        (okd (Core.Mfs.run g (Core.Mfs.Time { cs }))).Core.Mfs.restarts + 1
      in
      let t =
        time_scaling (fun () ->
            ignore (okd (Core.Mfs.schedule g (Core.Mfs.Time { cs }))))
      in
      let t_seed =
        if ops > seed_size_cap then None
        else
          Some
            (time_scaling (fun () ->
                 ignore
                   (ok (Reference.Seed_mfs.schedule g (Core.Mfs.Time { cs })))))
      in
      { m_ops = ops; m_cs = cs; m_hash = scaling_opts_hash g ~cs;
        m_attempts = attempts; m_t = t; m_seed = t_seed })
    sizes

(* Per-pair exponent: log-log slope between consecutive sizes (None for the
   first row).  Noisy — adjacent tiers differ by small factors — so the
   headline number is [fitted_exponent], the least-squares slope of
   log(kernel_ms) against log(ops) over every size at once. *)
let pair_exponent measurements idx =
  if idx = 0 then None
  else
    let prev = List.nth measurements (idx - 1)
    and m = List.nth measurements idx in
    Some
      (log (per_attempt m /. per_attempt prev)
      /. log (float_of_int m.m_ops /. float_of_int prev.m_ops))

let fitted_exponent points =
  match points with
  | [] | [ _ ] -> None
  | _ ->
      let n = float_of_int (List.length points) in
      let xs = List.map (fun (ops, _) -> log (float_of_int ops)) points in
      let ys = List.map (fun (_, t) -> log t) points in
      let mean l = List.fold_left ( +. ) 0. l /. n in
      let xbar = mean xs and ybar = mean ys in
      let num =
        List.fold_left2
          (fun acc x y -> acc +. ((x -. xbar) *. (y -. ybar)))
          0. xs ys
      in
      let den =
        List.fold_left (fun acc x -> acc +. ((x -. xbar) ** 2.)) 0. xs
      in
      if den = 0. then None else Some (num /. den)

let scaling_fit measurements =
  fitted_exponent (List.map (fun m -> (m.m_ops, per_attempt m)) measurements)

let scaling () =
  print_endline
    "== Scaling: MFS runtime vs problem size, array vs seed list kernel ==";
  let measurements = measure_scaling scaling_sizes in
  let fit = scaling_fit measurements in
  let rows =
    List.mapi
      (fun idx m ->
        [ string_of_int m.m_ops;
          Printf.sprintf "%.2f" (m.m_t *. 1e3);
          string_of_int m.m_attempts;
          Printf.sprintf "%.2f" (per_attempt m *. 1e3);
          (match m.m_seed with
          | Some t -> Printf.sprintf "%.2f" (t *. 1e3)
          | None -> "-");
          (match m.m_seed with
          | Some t -> Printf.sprintf "%.1fx" (t /. m.m_t)
          | None -> "-");
          (match pair_exponent measurements idx with
          | None -> "-"
          | Some e -> Printf.sprintf "%.2f" e) ])
      measurements
  in
  print_string
    (Report.Table.render
       ~header:
         [ "ops"; "total (ms)"; "attempts"; "per attempt (ms)";
           "seed kernel (ms)"; "speedup"; "local exponent" ]
       rows);
  (match fit with
  | Some b -> Printf.printf "fitted exponent (least squares over all sizes): %.3f\n" b
  | None -> ());
  print_endline
    "(per attempt = total / attempts; a restart re-places every operation,\n\
     and the restart count is a workload step function, so the exponent is\n\
     fitted over the per-attempt time.  local exponent = log-log slope of\n\
     the per-attempt time between consecutive sizes, noisy by construction;\n\
     the fitted exponent is the least-squares slope over all sizes.  The\n\
     paper's bound is cubic, typical graphs sit well below it.  The seed\n\
     kernel is the frozen list-based oracle in lib/reference, measured up\n\
     to 400 ops.)";
  let oc = open_out scaling_json in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"mfs-scaling\",\n\
    \  \"workload\": \"Workloads.Random_dag.generate ~seed:17\",\n\
    \  \"cs\": \"critical_path + 2\",\n\
    \  \"timing\": \"wall clock (Unix.gettimeofday), one untimed warm-up \
     then best of 5; kernel_ms = total_ms / attempts\",\n\
    \  \"fitted_exponent\": %s,\n\
    \  \"sizes\": [\n"
    (match fit with Some b -> Printf.sprintf "%.3f" b | None -> "null");
  List.iteri
    (fun idx m ->
      Printf.fprintf oc
        "    { \"ops\": %d, \"cs\": %d, \"opts_hash\": \"%s\", \
         \"attempts\": %d, \"total_ms\": %.3f, \"kernel_ms\": %.3f, \
         \"seed_kernel_ms\": %s, \"speedup\": %s, \
         \"local_exponent\": %s }%s\n"
        m.m_ops m.m_cs m.m_hash m.m_attempts (m.m_t *. 1e3)
        (per_attempt m *. 1e3)
        (match m.m_seed with
        | Some t -> Printf.sprintf "%.3f" (t *. 1e3)
        | None -> "null")
        (match m.m_seed with
        | Some t -> Printf.sprintf "%.2f" (t /. m.m_t)
        | None -> "null")
        (match pair_exponent measurements idx with
        | None -> "null"
        | Some e -> Printf.sprintf "%.3f" e)
        (if idx = List.length measurements - 1 then "" else ","))
    measurements;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "(raw measurements written to %s)\n" scaling_json;
  print_newline ()

(* --- Gate: perf regression check against the committed baseline ---------- *)

(* Reads the committed BENCH_scaling.json (never writes it — CI checks the
   tree stays clean), re-measures the same sizes, and fails when the kernel
   regresses.  kernel_ms is the per-attempt time on both sides, so a change
   in the restart count shows up as a total_ms shift without corrupting the
   comparison.  Thresholds: a row fails when its fresh kernel_ms exceeds
   the committed one by more than 25% plus a 0.5 ms absolute slack (sub-ms
   rows would otherwise flake on scheduler jitter), and the freshly fitted
   exponent must stay at or below 1.15. *)
let gate () =
  print_endline "== Bench gate: kernel_ms and fitted exponent vs committed ==";
  let doc =
    let ic = open_in scaling_json in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match Batch.Jsonl.parse s with
    | Ok v -> v
    | Error e ->
        Printf.eprintf "bench gate: cannot parse %s: %s\n" scaling_json e;
        exit 1
  in
  let committed =
    match Batch.Jsonl.member "sizes" doc with
    | Some (Batch.Jsonl.List rows) ->
        List.filter_map
          (fun r ->
            match (Batch.Jsonl.int "ops" r, Batch.Jsonl.float "kernel_ms" r) with
            | Some ops, Some ms -> Some (ops, ms)
            | _ -> None)
          rows
    | _ ->
        Printf.eprintf "bench gate: %s has no sizes array\n" scaling_json;
        exit 1
  in
  if committed = [] then begin
    Printf.eprintf "bench gate: no usable rows in %s\n" scaling_json;
    exit 1
  end;
  let measurements = measure_scaling (List.map fst committed) in
  let fit = scaling_fit measurements in
  let failures = ref [] in
  let rows =
    List.map2
      (fun (ops, committed_ms) m ->
        let fresh_ms = per_attempt m *. 1e3 in
        let limit = (committed_ms *. 1.25) +. 0.5 in
        let ok = fresh_ms <= limit in
        if not ok then
          failures :=
            Printf.sprintf
              "ops=%d: kernel_ms %.3f exceeds committed %.3f by more than \
               25%% (+0.5ms slack)"
              ops fresh_ms committed_ms
            :: !failures;
        [ string_of_int ops;
          Printf.sprintf "%.2f" committed_ms;
          Printf.sprintf "%.2f" fresh_ms;
          (if ok then "ok" else "REGRESSED") ])
      committed measurements
  in
  print_string
    (Report.Table.render
       ~header:[ "ops"; "committed (ms)"; "fresh (ms)"; "verdict" ]
       rows);
  (match fit with
  | Some b ->
      Printf.printf "fitted exponent: %.3f (limit 1.15)\n" b;
      if b > 1.15 then
        failures :=
          Printf.sprintf "fitted exponent %.3f exceeds 1.15" b :: !failures
  | None -> failures := "could not fit an exponent" :: !failures);
  if !failures <> [] then begin
    List.iter (fun f -> Printf.eprintf "bench gate: FAIL: %s\n" f) !failures;
    exit 1
  end;
  print_endline "bench gate: pass";
  print_newline ()

(* --- Exact: the size-explosion contrast --------------------------------- *)

let exact () =
  print_endline
    "== Exact branch-and-bound vs MFS (the paper's size-explosion claim) ==";
  print_endline
    "(the paper positions MFS against exact/LP formulations: same answers\n\
     on small graphs, exponentially diverging runtime)";
  let rows =
    List.map
      (fun ops ->
        let spec =
          { Workloads.Random_dag.default with
            Workloads.Random_dag.ops; locality = 14 }
        in
        let g = Workloads.Random_dag.generate_exn ~spec ~seed:23 () in
        let cs = Dfg.Bounds.critical_path g + 3 in
        let t_mfs =
          time_best (fun () ->
              ignore (okd (Core.Mfs.schedule g (Core.Mfs.Time { cs }))))
        in
        let mfs_units =
          match Core.Mfs.schedule g (Core.Mfs.Time { cs }) with
          | Ok s ->
              List.fold_left (fun a (_, k) -> a + k) 0 (Core.Schedule.fu_counts s)
          | Error _ -> -1
        in
        let t0 = Unix.gettimeofday () in
        match Baselines.Exact.run ~node_budget:20_000_000 g ~cs with
        | Error _ ->
            [ string_of_int ops; string_of_int cs; "(budget blown)"; ">sec";
              string_of_int mfs_units; Printf.sprintf "%.2f" (t_mfs *. 1e3) ]
        | Ok o ->
            let t_exact = Unix.gettimeofday () -. t0 in
            [ string_of_int ops; string_of_int cs;
              Printf.sprintf "%.0f%s" o.Baselines.Exact.optimum
                (if o.Baselines.Exact.proven then "" else " (unproven)");
              Printf.sprintf "%.2f" (t_exact *. 1e3);
              string_of_int mfs_units;
              Printf.sprintf "%.2f" (t_mfs *. 1e3) ])
      [ 8; 12; 16; 20; 24; 28 ]
  in
  print_string
    (Report.Table.render
       ~header:
         [ "ops"; "T"; "exact units"; "exact ms"; "MFS units"; "MFS ms" ]
       rows);
  print_newline ()

(* --- Versus: MFSA against an FDS + binding flow ------------------------ *)

let single_function_cost g (s : Core.Schedule.t) lib =
  let col =
    match s.Core.Schedule.col with
    | Some c -> c
    | None ->
        Baselines.Colbind.columns s.Core.Schedule.config g
          ~start:s.Core.Schedule.start
  in
  let by_unit = Hashtbl.create 16 in
  List.iter
    (fun nd ->
      let key = (Dfg.Op.fu_class nd.Dfg.Graph.kind, col.(nd.Dfg.Graph.id)) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_unit key) in
      Hashtbl.replace by_unit key (nd.Dfg.Graph.id :: cur))
    (Dfg.Graph.nodes g);
  let assignments =
    Hashtbl.fold
      (fun (klass, _) ops acc ->
        let kind = Option.get (Dfg.Op.of_string klass) in
        (Celllib.Library.single_function lib kind, ops) :: acc)
      by_unit []
  in
  let delay i =
    Core.Config.delay s.Core.Schedule.config (Dfg.Graph.node g i).Dfg.Graph.kind
  in
  let dp =
    ok
      (Rtl.Datapath.elaborate g ~start:s.Core.Schedule.start ~delay
         ~cs:s.Core.Schedule.cs ~assignments)
  in
  (Rtl.Cost.of_datapath lib dp).Rtl.Cost.total

let versus () =
  print_endline
    "== Versus: MFSA style 1 against FDS + single-function binding ==";
  print_endline "(paper reports -4% .. +5% against published flows)";
  let rows =
    List.map
      (fun (name, g) ->
        let cs = Dfg.Bounds.critical_path g + 1 in
        let lib = Celllib.Ncr.for_graph g in
        let mfsa = mfsa_for Core.Mfsa.Unrestricted g cs in
        let fds = ok (Baselines.Fds.run g ~cs) in
        let fds_cost = single_function_cost g fds lib in
        let mfsa_cost = mfsa.Core.Mfsa.cost.Rtl.Cost.total in
        [ name;
          Printf.sprintf "%.0f" mfsa_cost;
          Printf.sprintf "%.0f" fds_cost;
          Printf.sprintf "%+.1f%%" (100. *. (mfsa_cost -. fds_cost) /. fds_cost) ])
      (Workloads.Classic.all ())
  in
  print_string
    (Report.Table.render
       ~header:[ "example"; "MFSA um2"; "FDS+bind um2"; "MFSA vs FDS" ]
       rows);
  print_newline ()

(* --- Ablations ---------------------------------------------------------- *)

let ablation () =
  print_endline "== Ablation 1: Liapunov weight sweep (EWF, T=18) ==";
  let g = Workloads.Classic.ewf () in
  let lib = Celllib.Ncr.for_graph g in
  let config = Core.Config.of_library lib in
  let sweep =
    [ ("balanced 1/1/1/1", Core.Mfsa.equal_weights);
      ("no ALU term  1/0/1/1", { Core.Mfsa.equal_weights with Core.Mfsa.w_alu = 0. });
      ("no MUX term  1/1/0/1", { Core.Mfsa.equal_weights with Core.Mfsa.w_mux = 0. });
      ("no REG term  1/1/1/0", { Core.Mfsa.equal_weights with Core.Mfsa.w_reg = 0. });
      ("REG-heavy    1/1/1/20", { Core.Mfsa.equal_weights with Core.Mfsa.w_reg = 20. }) ]
  in
  let rows =
    List.map
      (fun (label, weights) ->
        let o = okd (Core.Mfsa.run ~config ~weights ~library:lib ~cs:18 g) in
        [ label;
          Printf.sprintf "%.0f" o.Core.Mfsa.cost.Rtl.Cost.total;
          Printf.sprintf "%.0f" o.Core.Mfsa.cost.Rtl.Cost.alu_area;
          Printf.sprintf "%.0f" o.Core.Mfsa.cost.Rtl.Cost.mux_area;
          string_of_int o.Core.Mfsa.cost.Rtl.Cost.n_regs ])
      sweep
  in
  print_string
    (Report.Table.render
       ~header:[ "weights (T/ALU/MUX/REG)"; "total"; "ALU area"; "MUX area"; "REG" ]
       rows);
  print_endline "== Ablation 2: multifunction allocation on/off (tseng, T=5) ==";
  let g = Workloads.Classic.tseng () in
  let lib = Celllib.Ncr.for_graph g in
  let singles =
    { lib with
      Celllib.Library.alus =
        List.filter
          (fun a -> Celllib.Op_set.cardinal a.Celllib.Library.ops = 1)
          lib.Celllib.Library.alus }
  in
  let full = okd (Core.Mfsa.run ~library:lib ~cs:5 g) in
  let single = okd (Core.Mfsa.run ~library:singles ~cs:5 g) in
  Printf.printf
    "  full library: %.0f um2 {%s}\n  single-function only: %.0f um2 {%s}\n"
    full.Core.Mfsa.cost.Rtl.Cost.total
    (Rtl.Cost.alu_config full.Core.Mfsa.datapath)
    single.Core.Mfsa.cost.Rtl.Cost.total
    (Rtl.Cost.alu_config single.Core.Mfsa.datapath);
  print_endline "== Ablation 3: mutual-exclusion sharing on/off (cond) ==";
  let g = Workloads.Classic.cond_example () in
  let cp = Dfg.Bounds.critical_path g in
  let total s =
    List.fold_left (fun a (_, k) -> a + k) 0 (Core.Schedule.fu_counts s)
  in
  let on = okd (Core.Mfs.schedule g (Core.Mfs.Time { cs = cp })) in
  let off =
    okd
      (Core.Mfs.schedule
         ~config:{ Core.Config.default with Core.Config.share_mutex = false }
         g (Core.Mfs.Time { cs = cp }))
  in
  Printf.printf "  sharing on: %d units [%s]; sharing off: %d units [%s]\n"
    (total on) (fus on) (total off) (fus off);
  print_endline "== Ablation 4: chaining on/off (ex2) ==";
  let g = Workloads.Classic.chained_sum () in
  let plain = Dfg.Bounds.critical_path g in
  let chained = Core.Timeframe.min_cs chain_cfg g in
  Printf.printf "  minimum steps without chaining: %d; with chaining: %d\n"
    plain chained;
  print_endline "== Ablation 5: multiplexer vs bus interconnect ==";
  let rows =
    List.map
      (fun (name, g) ->
        let lib = Celllib.Ncr.for_graph g in
        let cs = Dfg.Bounds.critical_path g + 1 in
        let o = okd (Core.Mfsa.run ~library:lib ~cs g) in
        let buses = Rtl.Bus.allocate o.Core.Mfsa.datapath in
        [ name;
          Printf.sprintf "%.0f" o.Core.Mfsa.cost.Rtl.Cost.mux_area;
          string_of_int buses.Rtl.Bus.buses;
          Printf.sprintf "%.0f" (Rtl.Bus.cost buses) ])
      (Workloads.Classic.all ())
  in
  print_string
    (Report.Table.render
       ~header:[ "example"; "MUX area"; "buses"; "bus area" ]
       rows);
  print_endline
    "(wide parallel designs favour multiplexers, serial ones buses)\n"

(* --- Driver ------------------------------------------------------------ *)

let sections =
  [ ("table1", table1); ("table2", table2); ("figure1", figure1);
    ("figure2", figure2); ("speed", speed); ("scaling", scaling); ("exact", exact);
    ("versus", versus); ("ablation", ablation) ]

(* [gate] is deliberately not part of the run-everything default: it is the
   CI regression check and must not rewrite BENCH_scaling.json. *)
let extra_sections = [ ("gate", gate) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name (sections @ extra_sections) with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S (have: %s)\n" name
            (String.concat ", "
               (List.map fst (sections @ extra_sections)));
          exit 1)
    requested
