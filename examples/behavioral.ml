(* From behaviour to silicon in one file: write the HAL differential
   equation as imperative behaviour, compile it with the front end, clean
   it with CSE, and synthesise with MFSA — the complete paper pipeline.

     dune exec examples/behavioral.exe *)

let source =
  "# One Euler step of y'' + 3xy' + 3y = 0 (the HAL benchmark behaviour).\n\
   input x, y, u, dx, a;\n\
   x1 = x + dx;\n\
   u1 = u - 3 * x * u * dx - 3 * y * dx;\n\
   y1 = y + u * dx;\n\
   go = x1 < a;\n\
   if (go) {\n\
  \  next = y1 + u1;\n\
   } else {\n\
  \  next = y1 - u1;\n\
   }\n"

let or_fail = function Ok v -> v | Error e -> failwith e
let or_faild r = or_fail (Result.map_error Diag.message r)

let () =
  print_endline "behavioural source:";
  print_string source;
  print_newline ();

  let raw = or_faild (Dfg.Frontend.compile source) in
  Printf.printf "compiled: %d operations (%s)\n" (Dfg.Graph.num_nodes raw)
    (String.concat ", "
       (List.map
          (fun (c, n) -> Printf.sprintf "%d %s" n c)
          (Dfg.Graph.count_by_class raw)));

  let g = or_fail (Dfg.Cse.eliminate raw) in
  Printf.printf "after CSE: %d operations (%d duplicates removed)\n\n"
    (Dfg.Graph.num_nodes g)
    (Dfg.Graph.num_nodes raw - Dfg.Graph.num_nodes g);

  let library = Celllib.Ncr.for_graph g in
  let cs = Dfg.Bounds.critical_path g in
  let o = or_faild (Core.Mfsa.run ~library ~cs g) in
  Format.printf "MFSA at T=%d:@.%a@.%a@.@." cs Rtl.Datapath.pp
    o.Core.Mfsa.datapath Rtl.Cost.pp o.Core.Mfsa.cost;

  (* Execute: both branch outcomes on concrete inputs. *)
  let delay i =
    Core.Config.delay o.Core.Mfsa.schedule.Core.Schedule.config
      (Dfg.Graph.node g i).Dfg.Graph.kind
  in
  let ctrl = or_fail (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay) in
  List.iter
    (fun (x, a) ->
      let env =
        [ ("x", x); ("y", 5); ("u", 3); ("dx", 1); ("a", a) ]
        @ Dfg.Frontend.const_env g
      in
      match Sim.Machine.run o.Core.Mfsa.datapath ctrl ~env with
      | Error e -> failwith e
      | Ok r ->
          let value n = List.assoc_opt n r.Sim.Machine.values in
          Printf.printf
            "x=%d a=%d: go=%s, then-branch next=%s, else-branch next=%s\n" x a
            (match value "go" with Some v -> string_of_int v | None -> "-")
            (match value "next" with Some v -> string_of_int v | None -> "(skipped)")
            (match value "next_else" with
            | Some v -> string_of_int v
            | None -> "(skipped)"))
    [ (2, 10); (2, 1) ];
  match Sim.Equiv.check_random o.Core.Mfsa.datapath ctrl with
  | Ok () -> print_endline "\ngolden-model equivalence: ok"
  | Error e -> failwith (Diag.message e)
