(* Streaming execution: synthesise the biquad IIR filter once, then run the
   resulting datapath over a whole input signal, feeding the section state
   registers back between samples — the synthesised hardware doing the job
   the behaviour describes.

     dune exec examples/streaming.exe *)

let or_fail = function Ok v -> v | Error e -> failwith e
let or_faild r = or_fail (Result.map_error Diag.message r)

let () =
  let g = Workloads.Classic.biquad () in
  Printf.printf "biquad cascade: %d ops (%s), critical path %d\n\n"
    (Dfg.Graph.num_nodes g)
    (String.concat ", "
       (List.map
          (fun (c, n) -> Printf.sprintf "%d %s" n c)
          (Dfg.Graph.count_by_class g)))
    (Dfg.Bounds.critical_path g);

  let library = Celllib.Ncr.for_graph g in
  let cs = Dfg.Bounds.critical_path g + 1 in
  let o = or_faild (Core.Mfsa.run ~library ~cs g) in
  Printf.printf "synthesised at T=%d: %s, %.0f um2\n\n" cs
    (Rtl.Cost.alu_config o.Core.Mfsa.datapath)
    o.Core.Mfsa.cost.Rtl.Cost.total;

  let controller =
    or_fail (Rtl.Controller.generate o.Core.Mfsa.datapath ~delay:(fun _ -> 1))
  in

  (* Section states feed back; coefficients are constants. The first
     section is a mild low-pass-ish integer filter, the second an echo. *)
  let feedback =
    [ ("s1n1", "s11"); ("s2n1", "s21"); ("s1n2", "s12"); ("s2n2", "s22") ]
  in
  let consts =
    [ ("b01", 2); ("b11", 1); ("b21", 0); ("a11", 1); ("a21", 0);
      ("b02", 1); ("b12", 0); ("b22", 0); ("a12", 0); ("a22", 1) ]
  in
  let init = [ ("s11", 0); ("s21", 0); ("s12", 0); ("s22", 0) ] in
  let signal = [ 1; 0; 0; 2; 0; 0; 0; -1; 0; 0; 0; 0 ] in
  let stream k = [ ("xin", List.nth signal k) ] in
  let iterations = List.length signal in

  (* Cross-check the run against the iterated golden model first. *)
  (match
     Sim.Iterate.check o.Core.Mfsa.datapath controller ~feedback ~consts ~init
       ~stream ~iterations
   with
  | Ok () -> print_endline "machine vs golden model over the stream: ok"
  | Error e -> failwith e);

  let out =
    or_fail
      (Sim.Iterate.run o.Core.Mfsa.datapath controller ~feedback ~consts ~init
         ~stream ~iterations)
  in
  Printf.printf "\n%-6s %-6s %-6s\n" "k" "x[k]" "y[k]";
  List.iteri
    (fun k values ->
      Printf.printf "%-6d %-6d %-6d\n" k (List.nth signal k)
        (List.assoc "y2" values))
    out;
  Printf.printf
    "\n(%d control steps per sample; with --latency folding the initiation\n\
    \ interval drops below the critical path — see pipelined_filter.exe)\n"
    cs
