(* Quickstart: schedule and allocate the HAL differential-equation solver
   (the paper's running example class) in a dozen lines.

     dune exec examples/quickstart.exe

   Flow: build a DFG -> MFS balanced schedule -> MFSA RTL allocation ->
   FSM controller -> cycle-accurate check against the golden model. *)

let () =
  (* The behaviour: one Euler step of y'' + 3xy' + 3y = 0. *)
  let graph = Workloads.Classic.diffeq () in
  Format.printf "behaviour:@.%a@." Dfg.Graph.pp graph;

  (* 1. Time-constrained MFS: a balanced schedule in 4 control steps. *)
  let outcome =
    match Core.Mfs.run graph (Core.Mfs.Time { cs = 4 }) with
    | Ok o -> o
    | Error e -> failwith (Diag.message e)
  in
  Format.printf "MFS schedule:@.%a@." Core.Schedule.pp outcome.Core.Mfs.schedule;
  Format.printf "Liapunov trajectory monotone: %b@.@."
    (Core.Liapunov.Trace.non_increasing outcome.Core.Mfs.trace);

  (* 2. MFSA: schedule + ALU/register/mux allocation in one pass. *)
  let library = Celllib.Ncr.for_graph graph in
  let mfsa =
    match Core.Mfsa.run ~library ~cs:4 graph with
    | Ok o -> o
    | Error e -> failwith (Diag.message e)
  in
  Format.printf "RTL datapath:@.%a@." Rtl.Datapath.pp mfsa.Core.Mfsa.datapath;
  Format.printf "%a@.@." Rtl.Cost.pp mfsa.Core.Mfsa.cost;

  (* 3. Control path + end-to-end execution on concrete inputs. *)
  let delay i =
    Core.Config.delay mfsa.Core.Mfsa.schedule.Core.Schedule.config
      (Dfg.Graph.node graph i).Dfg.Graph.kind
  in
  let controller =
    match Rtl.Controller.generate mfsa.Core.Mfsa.datapath ~delay with
    | Ok c -> c
    | Error e -> failwith e
  in
  let env =
    [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 10); ("three", 3) ]
  in
  (match Sim.Machine.run mfsa.Core.Mfsa.datapath controller ~env with
  | Ok r ->
      let get name = List.assoc name r.Sim.Machine.values in
      Format.printf
        "simulated on x=2 y=5 u=3 dx=1: x1=%d y1=%d u1=%d (x1 < a) = %d@."
        (get "a1") (get "a2") (get "s2") (get "c1")
  | Error e -> failwith e);
  match Sim.Equiv.check_random mfsa.Core.Mfsa.datapath controller with
  | Ok () -> Format.printf "golden-model equivalence: ok (20 random runs)@."
  | Error e -> failwith (Diag.message e)
