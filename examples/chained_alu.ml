(* Operation chaining (paper §5.4): data-dependent additions share one
   control step when their accumulated propagation delay fits the clock
   period. Sweeping the clock shows the schedule-depth / cycle-time
   trade-off a designer actually navigates.

     dune exec examples/chained_alu.exe *)

let prop_delay = Celllib.Ncr.default.Celllib.Library.prop_delay

let () =
  let g = Workloads.Classic.chained_sum () in
  Printf.printf "chained-sum example: %d ops, unchained depth %d steps\n\n"
    (Dfg.Graph.num_nodes g)
    (Dfg.Bounds.critical_path g);
  Printf.printf "%-12s %-6s %-18s %s\n" "clock (ns)" "steps" "total time (ns)"
    "schedule";
  List.iter
    (fun clock ->
      let config =
        {
          Core.Config.default with
          Core.Config.chaining = Some { Core.Config.prop_delay; clock };
        }
      in
      let cs = Core.Timeframe.min_cs config g in
      match Core.Mfs.run ~config g (Core.Mfs.Time { cs }) with
      | Error e -> Printf.printf "%-12.0f error: %s\n" clock (Diag.message e)
      | Ok o ->
          let s = o.Core.Mfs.schedule in
          let per_step =
            List.init cs (fun t ->
                let step = t + 1 in
                List.filter_map
                  (fun nd ->
                    if s.Core.Schedule.start.(nd.Dfg.Graph.id) = step then
                      Some nd.Dfg.Graph.name
                    else None)
                  (Dfg.Graph.nodes g)
                |> String.concat "+")
          in
          Printf.printf "%-12.0f %-6d %-18.0f %s\n" clock cs
            (clock *. float_of_int cs)
            (String.concat " | " per_step))
    [ 45.; 100.; 145.; 200. ];
  print_newline ();
  (* Chaining changes the registers too: same-step consumers need none. *)
  let chained_cfg =
    {
      Core.Config.default with
      Core.Config.chaining = Some { Core.Config.prop_delay; clock = 100. };
    }
  in
  List.iter
    (fun (label, config) ->
      let cs = Core.Timeframe.min_cs config g in
      match Core.Mfs.run ~config g (Core.Mfs.Time { cs }) with
      | Error e -> failwith (Diag.message e)
      | Ok o ->
          let s = o.Core.Mfs.schedule in
          let ivs =
            Rtl.Lifetime.intervals g ~start:s.Core.Schedule.start
              ~delay:(fun _ -> 1) ~cs
          in
          Printf.printf "%s: %d registers (left edge)\n" label
            (Rtl.Left_edge.allocate ivs).Rtl.Left_edge.count)
    [ ("unchained", Core.Config.default); ("chained @ 100ns", chained_cfg) ]
