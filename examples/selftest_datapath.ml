(* Design style 2 (paper §4.2): RTL without self loops around ALUs, the
   structure SYNTEST needs for self-testable datapaths. An operation never
   shares an ALU with one of its DFG predecessors/successors, so no ALU
   output can feed its own input through a register.

     dune exec examples/selftest_datapath.exe *)

let synthesise style g cs =
  let library = Celllib.Ncr.for_graph g in
  match Core.Mfsa.run ~style ~library ~cs g with
  | Ok o -> o
  | Error e -> failwith (Diag.message e)

let describe label (o : Core.Mfsa.outcome) =
  Printf.printf "%s\n  ALUs: %s\n  cost: %.0f um2, %d REG, %d MUX (%d inputs)\n"
    label
    (Rtl.Cost.alu_config o.Core.Mfsa.datapath)
    o.Core.Mfsa.cost.Rtl.Cost.total o.Core.Mfsa.cost.Rtl.Cost.n_regs
    o.Core.Mfsa.cost.Rtl.Cost.n_mux o.Core.Mfsa.cost.Rtl.Cost.n_mux_inputs;
  let loops = Rtl.Datapath.self_loop_alus o.Core.Mfsa.datapath in
  Printf.printf "  ALUs with self loops: %s\n"
    (if loops = [] then "none"
     else String.concat ", " (List.map string_of_int loops))

let () =
  let g = Workloads.Classic.ewf () in
  let cs = Dfg.Bounds.critical_path g + 1 in
  Printf.printf "elliptic wave filter, %d ops, T=%d\n\n"
    (Dfg.Graph.num_nodes g) cs;
  let s1 = synthesise Core.Mfsa.Unrestricted g cs in
  let s2 = synthesise Core.Mfsa.No_self_loop g cs in
  describe "style 1 (unrestricted):" s1;
  describe "style 2 (self-testable, no ALU self loop):" s2;
  let c1 = s1.Core.Mfsa.cost.Rtl.Cost.total
  and c2 = s2.Core.Mfsa.cost.Rtl.Cost.total in
  Printf.printf "\ntestability overhead: %+.1f%% (paper band: 2-11%%)\n"
    (100. *. (c2 -. c1) /. c1);
  (* Both styles must still compute the behaviour. *)
  List.iter
    (fun (label, o) ->
      let delay i =
        Core.Config.delay o.Core.Mfsa.schedule.Core.Schedule.config
          (Dfg.Graph.node g i).Dfg.Graph.kind
      in
      match Rtl.Controller.generate o.Core.Mfsa.datapath ~delay with
      | Error e -> failwith e
      | Ok ctrl -> (
          match Sim.Equiv.check_random o.Core.Mfsa.datapath ctrl with
          | Ok () -> Printf.printf "%s: functional check ok\n" label
          | Error e -> failwith (label ^ ": " ^ Diag.message e)))
    [ ("style 1", s1); ("style 2", s2) ]
