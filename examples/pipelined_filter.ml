(* Functional pipelining / loop folding (paper §5.5.2) on the AR
   lattice-ladder filter: the filter body is a loop executed once per
   sample, and folding overlaps successive samples with initiation
   interval L.

     dune exec examples/pipelined_filter.exe *)

let schedule_with latency =
  let graph = Workloads.Classic.ar_filter () in
  let config =
    { Core.Config.default with Core.Config.functional_latency = latency }
  in
  let cs = Core.Timeframe.min_cs config graph in
  match Core.Mfs.run ~config graph (Core.Mfs.Time { cs }) with
  | Ok o -> (graph, config, cs, o.Core.Mfs.schedule)
  | Error e -> failwith (Diag.message e)

let units s =
  Core.Schedule.fu_counts s
  |> List.map (fun (c, k) -> Printf.sprintf "%d x %s" k c)
  |> String.concat ", "

let () =
  let graph, _, cs0, unpiped = schedule_with None in
  Printf.printf "AR lattice-ladder filter: %d operations (%s)\n"
    (Dfg.Graph.num_nodes graph)
    (String.concat ", "
       (List.map
          (fun (c, n) -> Printf.sprintf "%d %s" n c)
          (Dfg.Graph.count_by_class graph)));
  Printf.printf "unpipelined: one sample every %d steps, units: %s\n\n" cs0
    (units unpiped);
  List.iter
    (fun latency ->
      let _, _, cs, s = schedule_with (Some latency) in
      Printf.printf
        "latency L=%d: one sample every %d steps (%.2fx throughput), units: %s\n"
        latency latency
        (Core.Pipeline.speedup ~cs:cs0 ~latency)
        (units s);
      (* Folded occupancy: how the multiplications spread over the L slots. *)
      let profile = Core.Pipeline.folded_profile s ~latency in
      let mults = List.assoc "*" profile in
      Printf.printf "  multiplier load per folded slot: %s\n"
        (String.concat " "
           (Array.to_list (Array.map string_of_int mults)));
      ignore cs)
    [ 8; 6; 4 ];
  (* The paper's §5.5.2 construction: two instances side by side confirm the
     folded schedule's resource picture. *)
  let doubled =
    match Core.Pipeline.double graph with
    | Ok g -> g
    | Error e -> failwith (Diag.message e)
  in
  Printf.printf
    "\nDFG-doubling check (5.5.2): doubled graph has %d ops, same depth %d\n"
    (Dfg.Graph.num_nodes doubled)
    (Dfg.Bounds.critical_path doubled)
