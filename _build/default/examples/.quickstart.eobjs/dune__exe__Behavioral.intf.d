examples/behavioral.mli:
