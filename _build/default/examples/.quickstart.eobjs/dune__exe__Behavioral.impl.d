examples/behavioral.ml: Celllib Core Dfg Format List Printf Rtl Sim String
