examples/pipelined_filter.ml: Array Core Dfg List Printf String Workloads
