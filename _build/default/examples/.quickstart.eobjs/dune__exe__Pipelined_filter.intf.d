examples/pipelined_filter.mli:
