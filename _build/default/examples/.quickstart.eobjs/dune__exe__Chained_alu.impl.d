examples/chained_alu.ml: Array Celllib Core Dfg List Printf Rtl String Workloads
