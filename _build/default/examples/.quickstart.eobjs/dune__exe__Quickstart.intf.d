examples/quickstart.mli:
