examples/selftest_datapath.mli:
