examples/streaming.ml: Celllib Core Dfg List Printf Rtl Sim String Workloads
