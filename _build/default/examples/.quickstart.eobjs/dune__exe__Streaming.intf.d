examples/streaming.mli:
