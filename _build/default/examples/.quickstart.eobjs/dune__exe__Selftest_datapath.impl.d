examples/selftest_datapath.ml: Celllib Core Dfg List Printf Rtl Sim String Workloads
