examples/quickstart.ml: Celllib Core Dfg Format List Rtl Sim Workloads
