examples/chained_alu.mli:
