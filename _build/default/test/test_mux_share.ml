let test name f = Alcotest.test_case name `Quick f

let row ?(comm = true) l r =
  { Rtl.Mux_share.left = l; right = Some r; commutative = comm }

let unary l = { Rtl.Mux_share.left = l; right = None; commutative = false }

let sharing_basics () =
  (* (a+b) and (c+a): orienting the second as (c, a)^swap -> (a, c) shares
     port 1, giving |L1|+|L2| = 1 + 2 = 3 instead of 4. *)
  let t = Rtl.Mux_share.assign [ row "a" "b"; row "c" "a" ] in
  Alcotest.(check int) "size 3" 3 (Rtl.Mux_share.size t)

let noncommutative_fixed () =
  (* (a-b) and (b-a) cannot be reoriented: all four sources appear. *)
  let t =
    Rtl.Mux_share.assign [ row ~comm:false "a" "b"; row ~comm:false "b" "a" ]
  in
  Alcotest.(check int) "size 4" 4 (Rtl.Mux_share.size t);
  Alcotest.(check (list bool)) "no swaps" [ false; false ] t.Rtl.Mux_share.swapped

let unary_rows () =
  let t = Rtl.Mux_share.assign [ unary "a"; unary "b"; unary "a" ] in
  Alcotest.(check (list string)) "L1 dedups" [ "a"; "b" ] t.Rtl.Mux_share.l1;
  Alcotest.(check (list string)) "L2 empty" [] t.Rtl.Mux_share.l2

let identical_rows_collapse () =
  let t = Rtl.Mux_share.assign [ row "x" "y"; row "x" "y"; row "x" "y" ] in
  Alcotest.(check int) "one source per port" 2 (Rtl.Mux_share.size t)

let empty_assignment () =
  let t = Rtl.Mux_share.assign [] in
  Alcotest.(check int) "size 0" 0 (Rtl.Mux_share.size t)

let cost_computation () =
  let mux_cost r = if r <= 1 then 0. else float_of_int (100 * r) in
  let t = Rtl.Mux_share.assign [ row ~comm:false "a" "b"; row ~comm:false "c" "d" ] in
  (* Two ports with fan-in 2 each. *)
  Alcotest.(check (float 1e-9)) "cost" 400. (Rtl.Mux_share.cost ~mux_cost t);
  let single = Rtl.Mux_share.assign [ row "a" "b" ] in
  Alcotest.(check (float 1e-9)) "fan-in 1 ports are free" 0.
    (Rtl.Mux_share.cost ~mux_cost single)

let paper_example () =
  (* Commutative mix where greedy orientation matters: the exhaustive search
     must find the 4-source arrangement. *)
  let rows = [ row "a" "b"; row "b" "a"; row "c" "a"; row "b" "c" ] in
  let t = Rtl.Mux_share.assign rows in
  Alcotest.(check bool) "at most 5 sources" true (Rtl.Mux_share.size t <= 5)

let rows_gen =
  let tag = QCheck2.Gen.map (Printf.sprintf "s%d") (QCheck2.Gen.int_bound 4) in
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 7)
    (QCheck2.Gen.map
       (fun (l, r, comm) ->
         { Rtl.Mux_share.left = l; right = Some r; commutative = comm })
       QCheck2.Gen.(triple tag tag bool))

let exhaustive_beats_naive =
  Helpers.qcheck ~count:200 "sharing never exceeds the unshared size"
    rows_gen
    (fun rows ->
      let t = Rtl.Mux_share.assign rows in
      let naive =
        let distinct l = List.length (List.sort_uniq compare l) in
        distinct (List.map (fun r -> r.Rtl.Mux_share.left) rows)
        + distinct
            (List.filter_map (fun r -> r.Rtl.Mux_share.right) rows)
      in
      Rtl.Mux_share.size t <= naive)

let swap_list_consistent =
  Helpers.qcheck ~count:200 "swapped has one entry per row and only for commutative"
    rows_gen
    (fun rows ->
      let t = Rtl.Mux_share.assign rows in
      List.length t.Rtl.Mux_share.swapped = List.length rows
      && List.for_all2
           (fun r sw -> (not sw) || r.Rtl.Mux_share.commutative)
           rows t.Rtl.Mux_share.swapped)

let assignment_covers_sources =
  Helpers.qcheck ~count:200 "every oriented operand appears in its port list"
    rows_gen
    (fun rows ->
      let t = Rtl.Mux_share.assign rows in
      List.for_all2
        (fun r sw ->
          match r.Rtl.Mux_share.right with
          | None -> List.mem r.Rtl.Mux_share.left t.Rtl.Mux_share.l1
          | Some right ->
              let a, b =
                if sw then (right, r.Rtl.Mux_share.left)
                else (r.Rtl.Mux_share.left, right)
              in
              List.mem a t.Rtl.Mux_share.l1 && List.mem b t.Rtl.Mux_share.l2)
        rows t.Rtl.Mux_share.swapped)

let greedy_path_reasonable () =
  (* More than 10 commutative rows exercises the greedy branch. *)
  let rows =
    List.init 14 (fun i -> row (Printf.sprintf "a%d" (i mod 3)) "common")
  in
  let t = Rtl.Mux_share.assign rows in
  (* Greedy keeps 'common' on one port and the three a* on the other. *)
  Alcotest.(check bool) "greedy shares" true (Rtl.Mux_share.size t <= 4)

let suite =
  [
    test "orientation enables sharing" sharing_basics;
    test "non-commutative rows keep orientation" noncommutative_fixed;
    test "unary rows use port 1" unary_rows;
    test "identical rows collapse" identical_rows_collapse;
    test "empty row set" empty_assignment;
    test "mux cost per port" cost_computation;
    test "mixed example stays small" paper_example;
    exhaustive_beats_naive;
    swap_list_consistent;
    assignment_covers_sources;
    test "greedy path shares" greedy_path_reasonable;
  ]
