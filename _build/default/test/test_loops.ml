let test name f = Alcotest.test_case name `Quick f

(* Parent body: pre-processing, a loop placeholder, post-processing. *)
let parent_body () =
  Helpers.graph_exn ~inputs:[ "a"; "b" ]
    [
      Helpers.op "pre" Dfg.Op.Add [ "a"; "b" ];
      Helpers.op "inner" Dfg.Op.Mov [ "pre" ];
      Helpers.op "post" Dfg.Op.Sub [ "inner"; "b" ];
    ]

let inner_body () =
  Helpers.graph_exn ~inputs:[ "p"; "q" ]
    [
      Helpers.op "w1" Dfg.Op.Mul [ "p"; "q" ];
      Helpers.op "w2" Dfg.Op.Add [ "w1"; "q" ];
    ]

let expand_basics () =
  let g = parent_body () in
  let expanded =
    Helpers.check_ok "expand"
      (Core.Loops.expand_placeholder g ~name:"inner" ~cycles:3)
  in
  Alcotest.(check int) "two extra nodes" (Dfg.Graph.num_nodes g + 2)
    (Dfg.Graph.num_nodes expanded);
  (* Consumers still read "inner"; the chain feeds it. *)
  let post = Option.get (Dfg.Graph.find expanded "post") in
  Alcotest.(check bool) "post reads inner" true
    (List.mem "inner" post.Dfg.Graph.args);
  Alcotest.(check bool) "chain link 1 exists" true
    (Dfg.Graph.find expanded "inner__1" <> None);
  (* The expansion adds 2 steps to the critical path. *)
  Alcotest.(check int) "critical path stretched"
    (Dfg.Bounds.critical_path g + 2)
    (Dfg.Bounds.critical_path expanded)

let expand_single_cycle_is_same_depth () =
  let g = parent_body () in
  let expanded =
    Helpers.check_ok "expand"
      (Core.Loops.expand_placeholder g ~name:"inner" ~cycles:1)
  in
  Alcotest.(check int) "same node count" (Dfg.Graph.num_nodes g)
    (Dfg.Graph.num_nodes expanded)

let expand_errors () =
  let g = parent_body () in
  ignore
    (Helpers.check_err "unknown placeholder"
       (Core.Loops.expand_placeholder g ~name:"nope" ~cycles:2));
  ignore
    (Helpers.check_err "bad budget"
       (Core.Loops.expand_placeholder g ~name:"inner" ~cycles:0))

let nested_scheduling () =
  let tree =
    {
      Core.Loops.body = parent_body ();
      budget = 6;
      children =
        [ ("inner", { Core.Loops.body = inner_body (); budget = 2; children = [] }) ];
    }
  in
  let s = Helpers.check_ok "nested" (Core.Loops.schedule_nested tree) in
  Helpers.check_schedule s.Core.Loops.loop_schedule;
  Alcotest.(check int) "outer steps" 6 (Core.Loops.total_steps s);
  let inner = List.assoc "inner" s.Core.Loops.loop_children in
  Helpers.check_schedule inner.Core.Loops.loop_schedule;
  Alcotest.(check int) "inner budget" 2
    inner.Core.Loops.loop_schedule.Core.Schedule.cs

let nested_two_levels () =
  let leaf = { Core.Loops.body = inner_body (); budget = 2; children = [] } in
  let mid_body =
    Helpers.graph_exn ~inputs:[ "m" ]
      [
        Helpers.op "leafer" Dfg.Op.Mov [ "m" ];
        Helpers.op "madd" Dfg.Op.Add [ "leafer"; "m" ];
      ]
  in
  let mid =
    { Core.Loops.body = mid_body; budget = 4; children = [ ("leafer", leaf) ] }
  in
  let top =
    {
      Core.Loops.body = parent_body ();
      budget = 8;
      children = [ ("inner", mid) ];
    }
  in
  let s = Helpers.check_ok "two levels" (Core.Loops.schedule_nested top) in
  Alcotest.(check int) "top horizon" 8 (Core.Loops.total_steps s);
  let mid_s = List.assoc "inner" s.Core.Loops.loop_children in
  Alcotest.(check int) "middle has its child" 1
    (List.length mid_s.Core.Loops.loop_children)

let nested_allocation () =
  let library =
    Celllib.Library.generated [ Dfg.Op.Add; Dfg.Op.Sub; Dfg.Op.Mul; Dfg.Op.Mov ]
  in
  let tree =
    {
      Core.Loops.body = parent_body ();
      budget = 6;
      children =
        [ ("inner", { Core.Loops.body = inner_body (); budget = 2; children = [] }) ];
    }
  in
  let a =
    Helpers.check_ok "allocate" (Core.Loops.allocate_nested ~library tree)
  in
  Helpers.check_schedule a.Core.Loops.alloc_outcome.Core.Mfsa.schedule;
  let inner = List.assoc "inner" a.Core.Loops.alloc_children in
  Helpers.check_schedule inner.Core.Loops.alloc_outcome.Core.Mfsa.schedule;
  (* Each level owns a datapath; the total cost covers both. *)
  Alcotest.(check bool) "total covers both levels" true
    (Core.Loops.total_cost a
    > a.Core.Loops.alloc_outcome.Core.Mfsa.cost.Rtl.Cost.total);
  (* The inner loop's datapath knows nothing about the parent's ops. *)
  Alcotest.(check bool) "inner datapath is small" true
    (List.length inner.Core.Loops.alloc_outcome.Core.Mfsa.datapath.Rtl.Datapath.alus
    <= 2)

let budget_too_small () =
  let tree =
    {
      Core.Loops.body = parent_body ();
      budget = 3;
      children =
        [ ("inner", { Core.Loops.body = inner_body (); budget = 4; children = [] }) ];
    }
  in
  (* Inner chain of 4 plus pre/post needs 6 > 3: the error names the path. *)
  let msg = Helpers.check_err "tight parent" (Core.Loops.schedule_nested tree) in
  Alcotest.(check bool) "path in message" true (Helpers.contains ~sub:"top" msg)

let iteration_control () =
  let g = inner_body () in
  let g' =
    Helpers.check_ok "control"
      (Core.Loops.add_iteration_control g ~counter:"i" ~bound:"n")
  in
  Alcotest.(check int) "two ops added" (Dfg.Graph.num_nodes g + 2)
    (Dfg.Graph.num_nodes g');
  let inc = Option.get (Dfg.Graph.find g' "i__next") in
  Alcotest.(check bool) "increment is an add" true
    (inc.Dfg.Graph.kind = Dfg.Op.Add);
  let test_op = Option.get (Dfg.Graph.find g' "i__continue") in
  Alcotest.(check bool) "test is a comparison" true
    (test_op.Dfg.Graph.kind = Dfg.Op.Lt);
  (* The controlled body schedules against a local budget like any DFG. *)
  let o = Helpers.mfs_time g' (Dfg.Bounds.critical_path g') in
  Helpers.check_schedule o.Core.Mfs.schedule;
  (* Semantics: i=3, n=10 -> continue. *)
  let env = [ ("p", 2); ("q", 3); ("i", 3); ("n", 10); ("c1", 1) ] in
  let v = Helpers.check_ok "eval" (Sim.Eval.run g' env) in
  Alcotest.(check (option int)) "i+1" (Some 4) (Sim.Eval.value v "i__next");
  Alcotest.(check (option int)) "continue" (Some 1)
    (Sim.Eval.value v "i__continue")

let iteration_control_clash () =
  let g = inner_body () in
  ignore
    (Helpers.check_err "counter clashes with node"
       (Core.Loops.add_iteration_control g ~counter:"w1" ~bound:"n"))

let suite =
  [
    test "placeholder expansion" expand_basics;
    test "iteration-control ops (5.2)" iteration_control;
    test "iteration-control name clash" iteration_control_clash;
    test "single-cycle expansion is identity-sized" expand_single_cycle_is_same_depth;
    test "expansion errors" expand_errors;
    test "nested scheduling" nested_scheduling;
    test "two levels of nesting" nested_two_levels;
    test "nested allocation (5.2)" nested_allocation;
    test "parent budget too small" budget_too_small;
  ]
