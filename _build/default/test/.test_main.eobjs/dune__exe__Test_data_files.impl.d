test/test_data_files.ml: Alcotest Celllib Core Dfg Filename Helpers List Option Sim Sys
