test/test_frontend.ml: Alcotest Celllib Core Dfg Helpers List Option Printf Rtl Sim
