test/test_pipeline.ml: Alcotest Array Core Dfg Helpers List Option Workloads
