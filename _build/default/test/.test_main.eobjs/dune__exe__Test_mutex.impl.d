test/test_mutex.ml: Alcotest Dfg Helpers List Option Sim Workloads
