test/test_celllib.ml: Alcotest Celllib Dfg List Option Workloads
