test/test_stats.ml: Alcotest Dfg Format Helpers Workloads
