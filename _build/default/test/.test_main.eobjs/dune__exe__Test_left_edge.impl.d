test/test_left_edge.ml: Alcotest Helpers List Printf QCheck2 Rtl
