test/test_loops.ml: Alcotest Celllib Core Dfg Helpers List Option Rtl Sim
