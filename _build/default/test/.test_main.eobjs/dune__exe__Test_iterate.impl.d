test/test_iterate.ml: Alcotest Celllib Core Dfg Helpers List Rtl Sim Workloads
