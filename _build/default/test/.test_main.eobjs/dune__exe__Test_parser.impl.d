test/test_parser.ml: Alcotest Dfg Helpers List Option Workloads
