test/test_liapunov.ml: Alcotest Core Helpers List Option QCheck2
