test/helpers.ml: Alcotest Core Dfg List Option QCheck2 QCheck_alcotest String Workloads
