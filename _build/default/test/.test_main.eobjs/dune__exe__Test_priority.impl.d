test/test_priority.ml: Alcotest Array Core Dfg Hashtbl Helpers List Option Printf Workloads
