test/test_reproduction.ml: Alcotest Baselines Celllib Core Dfg Helpers List Option Printf Rtl Sys Workloads
