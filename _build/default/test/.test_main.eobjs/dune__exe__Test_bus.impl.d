test/test_bus.ml: Alcotest Array Celllib Core Dfg Helpers List Rtl String Workloads
