test/test_cse.ml: Alcotest Dfg Helpers List Option Sim Workloads
