test/test_vcd.ml: Alcotest Array Celllib Core Filename Helpers In_channel List Rtl Sim Sys Workloads
