test/test_schedule.ml: Alcotest Array Core Dfg Format Helpers List Option Workloads
