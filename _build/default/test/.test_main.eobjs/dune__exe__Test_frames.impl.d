test/test_frames.ml: Alcotest Core Helpers List QCheck2
