test/test_lifetime.ml: Alcotest Array Dfg Helpers List Option QCheck2 Rtl Workloads
