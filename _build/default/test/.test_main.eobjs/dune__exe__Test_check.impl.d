test/test_check.ml: Alcotest Array Celllib Dfg Helpers List Option Rtl String Workloads
