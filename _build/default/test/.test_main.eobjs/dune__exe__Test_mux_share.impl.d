test/test_mux_share.ml: Alcotest Helpers List Printf QCheck2 Rtl
