test/test_datapath.ml: Alcotest Array Celllib Dfg Helpers List Rtl
