test/test_exact.ml: Alcotest Baselines Core Dfg Helpers List Printf Workloads
