test/test_robustness.ml: Alcotest Baselines Celllib Core Dfg Format Helpers List Option Printf Rtl Sim Workloads
