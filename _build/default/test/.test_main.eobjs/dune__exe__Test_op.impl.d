test/test_op.ml: Alcotest Dfg Helpers List Printf QCheck2 String
