test/test_graph.ml: Alcotest Dfg Hashtbl Helpers List Option Workloads
