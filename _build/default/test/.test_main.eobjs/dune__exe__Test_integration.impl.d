test/test_integration.ml: Alcotest Array Celllib Core Dfg Filename Hashtbl Helpers List Option Out_channel Rtl Sim String Sys Workloads
