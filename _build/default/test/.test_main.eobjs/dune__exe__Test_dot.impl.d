test/test_dot.ml: Alcotest Dfg Format Helpers List Workloads
