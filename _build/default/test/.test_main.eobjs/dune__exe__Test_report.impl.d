test/test_report.ml: Alcotest Core Helpers List Report String
