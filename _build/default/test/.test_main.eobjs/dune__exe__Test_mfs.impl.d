test/test_mfs.ml: Alcotest Array Celllib Core Dfg Helpers List Option Printf Workloads
