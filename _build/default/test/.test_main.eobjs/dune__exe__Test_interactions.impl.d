test/test_interactions.ml: Alcotest Celllib Core Dfg Helpers List Option Printf Rtl Sim Workloads
