test/test_sim.ml: Alcotest Celllib Core Dfg Helpers List Option Rtl Sim Workloads
