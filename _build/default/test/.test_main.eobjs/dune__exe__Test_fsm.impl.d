test/test_fsm.ml: Alcotest Celllib Core Helpers List Printf Rtl String Workloads
