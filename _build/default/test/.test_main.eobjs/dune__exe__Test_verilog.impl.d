test/test_verilog.ml: Alcotest Celllib Core Dfg Helpers List Option Rtl Workloads
