test/test_mfsa.ml: Alcotest Celllib Core Dfg Helpers List Option Rtl Sim String Workloads
