test/test_workloads.ml: Alcotest Dfg Helpers List Option QCheck2 Sim Workloads
