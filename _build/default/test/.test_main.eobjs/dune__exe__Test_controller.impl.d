test/test_controller.ml: Alcotest Celllib Core Dfg Helpers List Option Rtl Workloads
