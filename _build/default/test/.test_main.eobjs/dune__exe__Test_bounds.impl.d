test/test_bounds.ml: Alcotest Array Dfg Helpers List Option Workloads
