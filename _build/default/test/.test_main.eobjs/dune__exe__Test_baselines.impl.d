test/test_baselines.ml: Alcotest Array Baselines Core Dfg Helpers List Workloads
