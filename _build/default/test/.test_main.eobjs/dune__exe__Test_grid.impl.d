test/test_grid.ml: Alcotest Core Helpers List QCheck2
