let test name f = Alcotest.test_case name `Quick f

let table_layout () =
  let out =
    Report.Table.render
      ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check bool) "header first" true
        (Helpers.contains ~sub:"name" header);
      Alcotest.(check bool) "rule dashes" true (Helpers.contains ~sub:"---" rule)
  | _ -> Alcotest.fail "too few lines");
  Alcotest.(check bool) "rows present" true (Helpers.contains ~sub:"alpha" out)

let table_pads_rows () =
  let out = Report.Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "short row tolerated" true (Helpers.contains ~sub:"x" out)

let table_alignment () =
  let out =
    Report.Table.render
      ~aligns:[ Report.Table.Left; Report.Table.Right ]
      ~header:[ "k"; "num" ]
      [ [ "a"; "5" ] ]
  in
  (* Right-aligned 5 under a 3-wide column ends the cell. *)
  Alcotest.(check bool) "right aligned" true (Helpers.contains ~sub:"  5" out)

let kv_block () =
  let out = Report.Table.render_kv [ ("alpha", "1"); ("b", "2") ] in
  Alcotest.(check bool) "key present" true (Helpers.contains ~sub:"alpha : 1" out);
  Alcotest.(check bool) "padded key" true (Helpers.contains ~sub:"b     : 2" out)

let frames_art () =
  let pf = Core.Frames.primary ~step_lo:1 ~step_hi:6 ~max_cols:4 in
  let rf = Core.Frames.redundant ~current:2 ~max_cols:4 ~step_lo:1 ~step_hi:6 in
  let out =
    Report.Grid_art.render_frames ~steps:6 ~cols:4 ~pf ~rf
      ~forbidden:(fun s -> s <= 2)
      ~occupied:(fun p ->
        if p.Core.Frames.col = 1 && p.Core.Frames.step = 2 then Some "K1"
        else None)
      ~chosen:(Some { Core.Frames.col = 1; step = 3 })
  in
  Alcotest.(check bool) "occupied label" true (Helpers.contains ~sub:"K1" out);
  Alcotest.(check bool) "redundant marker" true (Helpers.contains ~sub:"R" out);
  Alcotest.(check bool) "forbidden marker" true (Helpers.contains ~sub:"F" out);
  Alcotest.(check bool) "chosen marker" true (Helpers.contains ~sub:">" out);
  Alcotest.(check bool) "move-frame dot" true (Helpers.contains ~sub:"." out);
  Alcotest.(check int) "one line per step + header" 7
    (List.length (String.split_on_char '\n' (String.trim out)))

let occupancy_art () =
  let out =
    Report.Grid_art.render_occupancy ~title:"demo" ~steps:2 ~cols:2
      ~label:(fun p ->
        if p.Core.Frames.col = 1 && p.Core.Frames.step = 1 then Some "m1"
        else None)
  in
  Alcotest.(check bool) "title" true (Helpers.contains ~sub:"demo" out);
  Alcotest.(check bool) "label" true (Helpers.contains ~sub:"m1" out);
  Alcotest.(check bool) "column header" true (Helpers.contains ~sub:"fu2" out)

let suite =
  [
    test "table layout" table_layout;
    test "table pads short rows" table_pads_rows;
    test "table alignment" table_alignment;
    test "key-value block" kv_block;
    test "frame art markers" frames_art;
    test "occupancy art" occupancy_art;
  ]
