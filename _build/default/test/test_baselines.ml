let test name f = Alcotest.test_case name `Quick f

let priority_is_critical_path () =
  let g = Helpers.chain4 () in
  let prio = Baselines.List_sched.priority Core.Config.default g in
  Alcotest.(check int) "head of chain" 4 (prio 0);
  Alcotest.(check int) "tail of chain" 1 (prio 3)

let list_rc_respects_limits () =
  let g = Workloads.Classic.diffeq () in
  let limits = [ ("*", 1); ("+", 1); ("-", 1); ("<", 1) ] in
  let s = Helpers.check_ok "list rc" (Baselines.List_sched.resource g ~limits) in
  Helpers.check_schedule s;
  List.iter
    (fun (c, u) ->
      Alcotest.(check bool) (c ^ " within limit") true (Helpers.fu_count s c <= u))
    limits;
  Alcotest.(check int) "serial multiplier makespan" 7 (Core.Schedule.makespan s)

let list_rc_bad_limits () =
  let g = Workloads.Classic.diffeq () in
  ignore
    (Helpers.check_err "zero units"
       (Baselines.List_sched.resource g ~limits:[ ("*", 0) ]))

let list_time_meets_budget () =
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      let s = Helpers.check_ok (name ^ " list tc") (Baselines.List_sched.time g ~cs) in
      Helpers.check_schedule s;
      Alcotest.(check bool) (name ^ " within budget") true
        (Core.Schedule.makespan s <= cs))
    (Workloads.Classic.all ())

let fds_valid_on_classics () =
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      let s = Helpers.check_ok (name ^ " fds") (Baselines.Fds.run g ~cs) in
      Helpers.check_schedule s;
      Alcotest.(check bool) (name ^ " within budget") true
        (Core.Schedule.makespan s <= cs))
    (Workloads.Classic.all ())

let fds_balances_diffeq () =
  let g = Workloads.Classic.diffeq () in
  let s = Helpers.check_ok "fds" (Baselines.Fds.run g ~cs:4) in
  (* FDS's flagship result: two multipliers on diffeq at T=4. *)
  Alcotest.(check int) "two multipliers" 2 (Helpers.fu_count s "*")

let fds_distribution () =
  let g = Helpers.diamond () in
  let b = Helpers.check_ok "bounds" (Dfg.Bounds.compute g ~cs:3) in
  let dg = Baselines.Fds.distribution Core.Config.default g b "*" in
  (* Two mults, frames {1,2} each: DG(1) = DG(2) = 1.0. *)
  Alcotest.(check (float 1e-9)) "step 1 load" 1.0 dg.(1);
  Alcotest.(check (float 1e-9)) "step 2 load" 1.0 dg.(2);
  let sum = Array.fold_left ( +. ) 0. dg in
  Alcotest.(check (float 1e-9)) "total mass = op count" 2.0 sum

let annealing_valid_and_deterministic () =
  let g = Workloads.Classic.ar_filter () in
  let cs = Dfg.Bounds.critical_path g + 2 in
  let s1 = Helpers.check_ok "sa" (Baselines.Annealing.run g ~cs) in
  let s2 = Helpers.check_ok "sa" (Baselines.Annealing.run g ~cs) in
  Helpers.check_schedule s1;
  Alcotest.(check bool) "deterministic" true
    (s1.Core.Schedule.start = s2.Core.Schedule.start)

let annealing_improves_on_asap () =
  let g = Workloads.Classic.ewf () in
  let cs = Dfg.Bounds.critical_path g + 2 in
  let cfg = Core.Config.default in
  let b = Helpers.check_ok "bounds" (Dfg.Bounds.compute g ~cs) in
  let asap_cost =
    Baselines.Annealing.cost cfg g ~start:b.Dfg.Bounds.asap ~cs
  in
  let s = Helpers.check_ok "sa" (Baselines.Annealing.run g ~cs) in
  let sa_cost = Baselines.Annealing.cost cfg g ~start:s.Core.Schedule.start ~cs in
  Alcotest.(check bool) "no worse than ASAP" true (sa_cost <= asap_cost)

let mfs_never_beaten_on_classics () =
  (* The paper's claim is speed at equal quality; check MFS's unit totals
     are never worse than list scheduling's. *)
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      let total s =
        List.fold_left (fun a (_, k) -> a + k) 0 (Core.Schedule.fu_counts s)
      in
      let mfs = (Helpers.mfs_time g cs).Core.Mfs.schedule in
      let lst = Helpers.check_ok "list" (Baselines.List_sched.time g ~cs) in
      Alcotest.(check bool)
        (name ^ ": MFS <= list scheduling units")
        true
        (total mfs <= total lst))
    (Workloads.Classic.all ())

let colbind_valid_random =
  Helpers.qcheck ~count:60 "column binding yields valid schedules"
    (Helpers.dag_gen ())
    (fun g ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      match Baselines.List_sched.time g ~cs with
      | Error _ -> false
      | Ok s -> Core.Schedule.check s = Ok ())

let rc_random_within_limits =
  Helpers.qcheck ~count:60 "list RC respects limits on random DAGs"
    (Helpers.dag_gen ())
    (fun g ->
      let limits = List.map (fun (c, _) -> (c, 2)) (Dfg.Graph.count_by_class g) in
      match Baselines.List_sched.resource g ~limits with
      | Error _ -> false
      | Ok s ->
          Core.Schedule.check s = Ok ()
          && List.for_all (fun (c, u) -> Helpers.fu_count s c <= u) limits)

let suite =
  [
    test "priority is the critical-path length" priority_is_critical_path;
    test "list RC respects limits" list_rc_respects_limits;
    test "list RC rejects zero units" list_rc_bad_limits;
    test "list TC meets budgets" list_time_meets_budget;
    test "FDS valid on classics" fds_valid_on_classics;
    test "FDS balances diffeq to 2 multipliers" fds_balances_diffeq;
    test "FDS distribution graphs" fds_distribution;
    test "annealing valid and deterministic" annealing_valid_and_deterministic;
    test "annealing no worse than ASAP" annealing_improves_on_asap;
    test "MFS units never worse than list scheduling" mfs_never_beaten_on_classics;
    colbind_valid_random;
    rc_random_within_limits;
  ]
