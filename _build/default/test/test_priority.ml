let test name f = Alcotest.test_case name `Quick f

let cfg = Core.Config.default

let order_of g cs =
  let b = Helpers.check_ok "bounds" (Dfg.Bounds.compute g ~cs) in
  Core.Priority.order cfg g b

let mobility_priority () =
  (* chain4 within cs=6: chain ops have mobility 2; a lone op mobility 5. *)
  let g =
    Helpers.graph_exn ~inputs:[ "x"; "y" ]
      [
        Helpers.op "c1" Dfg.Op.Add [ "x"; "y" ];
        Helpers.op "c2" Dfg.Op.Add [ "c1"; "y" ];
        Helpers.op "free" Dfg.Op.Add [ "x"; "y" ];
      ]
  in
  let b = Helpers.check_ok "bounds" (Dfg.Bounds.compute g ~cs:4) in
  let order = Core.Priority.order cfg g b in
  let idx name =
    let id = (Option.get (Dfg.Graph.find g name)).Dfg.Graph.id in
    let rec find k = function
      | [] -> Alcotest.failf "%s not in order" name
      | x :: rest -> if x = id then k else find (k + 1) rest
    in
    find 0 order
  in
  (* c1 (alap 3... within cs=4 chain of 2: c1 alap=3, mobility 2) vs free
     (alap 4, mobility 3): c1 first by alap. *)
  Alcotest.(check bool) "c1 before free" true (idx "c1" < idx "free");
  Alcotest.(check bool) "c1 before c2" true (idx "c1" < idx "c2")

let deps_respected_on_classics () =
  List.iter
    (fun (name, g) ->
      let cs = Dfg.Bounds.critical_path g + 2 in
      let order = order_of g cs in
      let position = Hashtbl.create 32 in
      List.iteri (fun idx i -> Hashtbl.replace position i idx) order;
      List.iter
        (fun nd ->
          List.iter
            (fun p ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: pred %d before %d" name p nd.Dfg.Graph.id)
                true
                (Hashtbl.find position p < Hashtbl.find position nd.Dfg.Graph.id))
            (Dfg.Graph.preds g nd.Dfg.Graph.id))
        (Dfg.Graph.nodes g))
    (Workloads.Classic.all ())

let multicycle_reversal () =
  (* Two 2-cycle mults with the same ALAP and mobility difference 1 < 2:
     priority reverses — the MORE mobile one goes first (§5.3). *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "early" Dfg.Op.Add [ "a"; "b" ];
        Helpers.op "m_tight" Dfg.Op.Mul [ "early"; "b" ];
        Helpers.op "m_loose" Dfg.Op.Mul [ "a"; "b" ];
        Helpers.op "join" Dfg.Op.Add [ "m_tight"; "m_loose" ];
      ]
  in
  let config =
    { cfg with Core.Config.delays = (function Dfg.Op.Mul -> 2 | _ -> 1) }
  in
  let b =
    Helpers.check_ok "bounds"
      (Dfg.Bounds.compute ~delays:(Core.Config.delay config) g ~cs:5)
  in
  let tight = (Option.get (Dfg.Graph.find g "m_tight")).Dfg.Graph.id in
  let loose = (Option.get (Dfg.Graph.find g "m_loose")).Dfg.Graph.id in
  (* alap(m_tight) = alap(m_loose) = 3; asap 2 vs 1, mobilities 1 vs 2. *)
  Alcotest.(check int) "same alap" b.Dfg.Bounds.alap.(tight)
    b.Dfg.Bounds.alap.(loose);
  Alcotest.(check int) "tight mobility" 1 (Dfg.Bounds.mobility b tight);
  Alcotest.(check int) "loose mobility" 2 (Dfg.Bounds.mobility b loose);
  let order = Core.Priority.order config g b in
  let idx id =
    let rec find k = function
      | [] -> -1
      | x :: rest -> if x = id then k else find (k + 1) rest
    in
    find 0 order
  in
  Alcotest.(check bool) "reversed: more mobile first" true
    (idx loose < idx tight)

let single_cycle_no_reversal () =
  (* Same shape, 1-cycle ops: standard rule, less mobile first. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "early" Dfg.Op.Add [ "a"; "b" ];
        Helpers.op "m_tight" Dfg.Op.Mul [ "early"; "b" ];
        Helpers.op "m_loose" Dfg.Op.Mul [ "a"; "b" ];
        Helpers.op "join" Dfg.Op.Add [ "m_tight"; "m_loose" ];
      ]
  in
  let b = Helpers.check_ok "bounds" (Dfg.Bounds.compute g ~cs:4) in
  let tight = (Option.get (Dfg.Graph.find g "m_tight")).Dfg.Graph.id in
  let loose = (Option.get (Dfg.Graph.find g "m_loose")).Dfg.Graph.id in
  let order = Core.Priority.order cfg g b in
  let idx id =
    let rec find k = function
      | [] -> -1
      | x :: rest -> if x = id then k else find (k + 1) rest
    in
    find 0 order
  in
  Alcotest.(check bool) "standard: less mobile first" true
    (idx tight < idx loose)

let linear_extension_random =
  Helpers.qcheck ~count:80 "priority order is a linear extension"
    (Helpers.dag_gen ())
    (fun g ->
      let cs = Dfg.Bounds.critical_path g + 1 in
      match Dfg.Bounds.compute g ~cs with
      | Error _ -> false
      | Ok b ->
          let order = Core.Priority.order cfg g b in
          let position = Hashtbl.create 32 in
          List.iteri (fun idx i -> Hashtbl.replace position i idx) order;
          List.length order = Dfg.Graph.num_nodes g
          && List.for_all
               (fun nd ->
                 List.for_all
                   (fun p ->
                     Hashtbl.find position p
                     < Hashtbl.find position nd.Dfg.Graph.id)
                   (Dfg.Graph.preds g nd.Dfg.Graph.id))
               (Dfg.Graph.nodes g))

let suite =
  [
    test "mobility drives priority" mobility_priority;
    test "dependencies respected on classics" deps_respected_on_classics;
    test "multi-cycle mobility reversal (5.3)" multicycle_reversal;
    test "no reversal for single-cycle ops" single_cycle_no_reversal;
    linear_extension_random;
  ]
