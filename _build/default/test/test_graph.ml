let test name f = Alcotest.test_case name `Quick f
let op = Helpers.op

let build_ok () =
  let g = Helpers.diamond () in
  Alcotest.(check int) "nodes" 3 (Dfg.Graph.num_nodes g);
  Alcotest.(check (list string)) "inputs" [ "a"; "b"; "c"; "d" ]
    (Dfg.Graph.inputs g)

let duplicate_name () =
  let r =
    Dfg.Graph.of_ops ~inputs:[ "a" ]
      [ op "n" Dfg.Op.Neg [ "a" ]; op "n" Dfg.Op.Neg [ "a" ] ]
  in
  ignore (Helpers.check_err "duplicate node name" r)

let input_clash () =
  let r =
    Dfg.Graph.of_ops ~inputs:[ "a" ] [ op "a" Dfg.Op.Neg [ "a" ] ]
  in
  ignore (Helpers.check_err "node named like input" r)

let unknown_ref () =
  let msg =
    Helpers.check_err "unknown operand"
      (Dfg.Graph.of_ops ~inputs:[ "a" ] [ op "n" Dfg.Op.Add [ "a"; "zz" ] ])
  in
  Alcotest.(check bool) "mentions zz" true (Helpers.contains ~sub:"zz" msg)

let arity_mismatch () =
  ignore
    (Helpers.check_err "too few operands"
       (Dfg.Graph.of_ops ~inputs:[ "a" ] [ op "n" Dfg.Op.Add [ "a" ] ]))

let cycle_detected () =
  let r =
    Dfg.Graph.of_ops ~inputs:[ "a" ]
      [ op "x" Dfg.Op.Add [ "a"; "y" ]; op "y" Dfg.Op.Add [ "x"; "a" ] ]
  in
  let msg = Helpers.check_err "cycle" r in
  Alcotest.(check string) "cycle message" "cycle in DFG" msg

let self_cycle () =
  ignore
    (Helpers.check_err "self cycle"
       (Dfg.Graph.of_ops ~inputs:[ "a" ] [ op "x" Dfg.Op.Add [ "x"; "a" ] ]))

let unknown_guard () =
  ignore
    (Helpers.check_err "unknown guard"
       (Dfg.Graph.of_ops ~inputs:[ "a" ]
          [ ("n", Dfg.Op.Neg, [ "a" ], [ ("nope", true) ]) ]))

let preds_succs () =
  let g = Helpers.diamond () in
  let s = Option.get (Dfg.Graph.find g "s") in
  let m1 = Option.get (Dfg.Graph.find g "m1") in
  Alcotest.(check (list int)) "preds of s" [ 0; 1 ]
    (Dfg.Graph.preds g s.Dfg.Graph.id);
  Alcotest.(check (list int)) "succs of m1" [ s.Dfg.Graph.id ]
    (Dfg.Graph.succs g m1.Dfg.Graph.id)

let guard_is_pred () =
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        op "c" Dfg.Op.Lt [ "a"; "b" ];
        ("t", Dfg.Op.Add, [ "a"; "b" ], [ ("c", true) ]);
      ]
  in
  let c = Option.get (Dfg.Graph.find g "c") in
  let t = Option.get (Dfg.Graph.find g "t") in
  Alcotest.(check bool) "guard is a predecessor" true
    (List.mem c.Dfg.Graph.id (Dfg.Graph.preds g t.Dfg.Graph.id))

let cross_branch_read_rejected () =
  (* A value defined in one branch consumed in the other (or outside the
     conditional) has no execution under which it is defined. *)
  let mk consumer_guards =
    Dfg.Graph.of_ops ~inputs:[ "a"; "b" ]
      [
        op "c" Dfg.Op.Lt [ "a"; "b" ];
        ("t", Dfg.Op.Add, [ "a"; "b" ], [ ("c", true) ]);
        ("u", Dfg.Op.Neg, [ "t" ], consumer_guards);
      ]
  in
  let msg = Helpers.check_err "other branch" (mk [ ("c", false) ]) in
  Alcotest.(check bool) "scoping error named" true
    (Helpers.contains ~sub:"guard scoping" msg);
  ignore (Helpers.check_err "unconditional consumer" (mk []));
  (* Same arm is fine; a more deeply guarded consumer is fine too. *)
  (match mk [ ("c", true) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "same-arm read rejected: %s" e)

let sinks () =
  let g = Helpers.diamond () in
  let s = Option.get (Dfg.Graph.find g "s") in
  Alcotest.(check (list int)) "single sink" [ s.Dfg.Graph.id ]
    (Dfg.Graph.sinks g)

let count_by_class () =
  let g = Helpers.diamond () in
  Alcotest.(check (list (pair string int)))
    "counts" [ ("*", 2); ("+", 1) ]
    (Dfg.Graph.count_by_class g)

let mutually_exclusive () =
  let g = Workloads.Classic.cond_example () in
  let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
  Alcotest.(check bool) "t1/t2 exclusive" true
    (Dfg.Graph.mutually_exclusive g (id "t1") (id "t2"));
  Alcotest.(check bool) "t1/t3 same arm" false
    (Dfg.Graph.mutually_exclusive g (id "t1") (id "t3"));
  Alcotest.(check bool) "t1/c1 unguarded" false
    (Dfg.Graph.mutually_exclusive g (id "t1") (id "c1"));
  Alcotest.(check bool) "not self-exclusive" false
    (Dfg.Graph.mutually_exclusive g (id "t1") (id "t1"))

let node_out_of_range () =
  let g = Helpers.diamond () in
  Alcotest.check_raises "id 99"
    (Invalid_argument "Graph.node: id 99 out of range") (fun () ->
      ignore (Dfg.Graph.node g 99))

let topo_is_linear_extension =
  Helpers.qcheck ~count:60 "topological order puts preds first"
    (Helpers.dag_gen ())
    (fun g ->
      let order = Dfg.Graph.topological g in
      let position = Hashtbl.create 32 in
      List.iteri (fun idx i -> Hashtbl.replace position i idx) order;
      List.for_all
        (fun nd ->
          let i = nd.Dfg.Graph.id in
          List.for_all
            (fun p -> Hashtbl.find position p < Hashtbl.find position i)
            (Dfg.Graph.preds g i))
        (Dfg.Graph.nodes g))

let preds_succs_inverse =
  Helpers.qcheck ~count:60 "preds and succs are inverse relations"
    (Helpers.dag_gen ())
    (fun g ->
      List.for_all
        (fun nd ->
          let i = nd.Dfg.Graph.id in
          List.for_all (fun p -> List.mem i (Dfg.Graph.succs g p))
            (Dfg.Graph.preds g i)
          && List.for_all (fun s -> List.mem i (Dfg.Graph.preds g s))
               (Dfg.Graph.succs g i))
        (Dfg.Graph.nodes g))

let suite =
  [
    test "builder accepts a valid graph" build_ok;
    test "duplicate names rejected" duplicate_name;
    test "node shadowing an input rejected" input_clash;
    test "unknown operand rejected with name" unknown_ref;
    test "arity mismatch rejected" arity_mismatch;
    test "cycle detected" cycle_detected;
    test "self-cycle detected" self_cycle;
    test "unknown guard rejected" unknown_guard;
    test "preds and succs" preds_succs;
    test "guard condition is a predecessor" guard_is_pred;
    test "cross-branch reads rejected" cross_branch_read_rejected;
    test "sinks" sinks;
    test "count_by_class in appearance order" count_by_class;
    test "mutual exclusion from guards" mutually_exclusive;
    test "node id range checked" node_out_of_range;
    topo_is_linear_extension;
    preds_succs_inverse;
  ]
