let test name f = Alcotest.test_case name `Quick f

let diamond_frames () =
  let g = Helpers.diamond () in
  let b = Helpers.check_ok "bounds" (Dfg.Bounds.compute g ~cs:3) in
  let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
  Alcotest.(check int) "m1 asap" 1 b.Dfg.Bounds.asap.(id "m1");
  Alcotest.(check int) "m1 alap" 2 b.Dfg.Bounds.alap.(id "m1");
  Alcotest.(check int) "s asap" 2 b.Dfg.Bounds.asap.(id "s");
  Alcotest.(check int) "s alap" 3 b.Dfg.Bounds.alap.(id "s");
  Alcotest.(check int) "m1 mobility" 1 (Dfg.Bounds.mobility b (id "m1"))

let critical_paths () =
  Alcotest.(check int) "diamond" 2 (Dfg.Bounds.critical_path (Helpers.diamond ()));
  Alcotest.(check int) "chain4" 4 (Dfg.Bounds.critical_path (Helpers.chain4 ()));
  Alcotest.(check int) "diffeq" 4
    (Dfg.Bounds.critical_path (Workloads.Classic.diffeq ()));
  Alcotest.(check int) "ewf" 13
    (Dfg.Bounds.critical_path (Workloads.Classic.ewf ()))

let multicycle_critical_path () =
  let delays = function Dfg.Op.Mul -> 2 | _ -> 1 in
  Alcotest.(check int) "diamond with 2-cycle mult" 3
    (Dfg.Bounds.critical_path ~delays (Helpers.diamond ()));
  Alcotest.(check int) "diffeq with 2-cycle mult" 6
    (Dfg.Bounds.critical_path ~delays (Workloads.Classic.diffeq ()))

let infeasible_budget () =
  let msg =
    Helpers.check_err "cs below critical path"
      (Dfg.Bounds.compute (Helpers.chain4 ()) ~cs:3)
  in
  Alcotest.(check bool) "mentions critical path" true
    (Helpers.contains ~sub:"critical path" msg)

let zero_budget () =
  ignore (Helpers.check_err "cs=0" (Dfg.Bounds.compute (Helpers.diamond ()) ~cs:0))

let concurrency_profile () =
  let g = Helpers.diamond () in
  let b = Helpers.check_ok "bounds" (Dfg.Bounds.compute g ~cs:2) in
  let conc = Dfg.Bounds.concurrency g ~start:b.Dfg.Bounds.asap ~cs:2 in
  Alcotest.(check (option int)) "two mults at step 1" (Some 2)
    (List.assoc_opt "*" conc);
  Alcotest.(check (option int)) "one add" (Some 1) (List.assoc_opt "+" conc)

let multicycle_concurrency () =
  (* Two 2-cycle mults starting at steps 1 and 2 overlap at step 2. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "m1" Dfg.Op.Mul [ "a"; "b" ];
        Helpers.op "m2" Dfg.Op.Mul [ "a"; "b" ];
      ]
  in
  let delays = function Dfg.Op.Mul -> 2 | _ -> 1 in
  let conc =
    Dfg.Bounds.concurrency ~delays g ~start:[| 1; 2 |] ~cs:3
  in
  Alcotest.(check (option int)) "overlap counted" (Some 2)
    (List.assoc_opt "*" conc)

let prop_delay = function
  | Dfg.Op.Add | Dfg.Op.Sub -> 40.
  | Dfg.Op.Mul -> 80.
  | _ -> 10.

let chained_pairs () =
  (* chain4 with clock 100: two 40ns adds chain per step -> 2 steps. *)
  let g = Helpers.chain4 () in
  let cp =
    Helpers.check_ok "chained cp"
      (Dfg.Bounds.chained_critical_path ~prop_delay ~clock:100. g)
  in
  Alcotest.(check int) "two per step" 2 cp;
  let cp3 =
    Helpers.check_ok "chained cp wide clock"
      (Dfg.Bounds.chained_critical_path ~prop_delay ~clock:160. g)
  in
  Alcotest.(check int) "four per step" 1 cp3

let chaining_without_slack () =
  (* Clock fitting exactly one add: chaining degenerates to plain ASAP. *)
  let g = Helpers.chain4 () in
  let cp =
    Helpers.check_ok "tight clock"
      (Dfg.Bounds.chained_critical_path ~prop_delay ~clock:45. g)
  in
  Alcotest.(check int) "no chaining possible" 4 cp

let op_slower_than_clock () =
  let g = Helpers.diamond () in
  let msg =
    Helpers.check_err "mult slower than clock"
      (Dfg.Bounds.chained_critical_path ~prop_delay ~clock:50. g)
  in
  Alcotest.(check bool) "names the op" true (Helpers.contains ~sub:"m" msg)

let chained_bounds_feasible () =
  let g = Workloads.Classic.chained_sum () in
  let ch =
    Helpers.check_ok "chained bounds"
      (Dfg.Bounds.compute_chained ~prop_delay ~clock:100. g ~cs:4)
  in
  Array.iteri
    (fun i (a, _) ->
      let l, _ = ch.Dfg.Bounds.ch_alap.(i) in
      Alcotest.(check bool) "asap <= alap" true (a <= l))
    ch.Dfg.Bounds.ch_asap

let frames_valid_on_random =
  Helpers.qcheck ~count:60 "asap <= alap within critical-path budget"
    (Helpers.dag_gen ())
    (fun g ->
      let cs = Dfg.Bounds.critical_path g in
      match Dfg.Bounds.compute g ~cs with
      | Error _ -> false
      | Ok b ->
          List.for_all
            (fun nd ->
              let i = nd.Dfg.Graph.id in
              b.Dfg.Bounds.asap.(i) <= b.Dfg.Bounds.alap.(i))
            (Dfg.Graph.nodes g))

let mobility_grows_with_budget =
  Helpers.qcheck ~count:60 "mobility weakly grows with the budget"
    (Helpers.dag_gen ())
    (fun g ->
      let cs = Dfg.Bounds.critical_path g in
      match (Dfg.Bounds.compute g ~cs, Dfg.Bounds.compute g ~cs:(cs + 3)) with
      | Ok b1, Ok b2 ->
          List.for_all
            (fun nd ->
              Dfg.Bounds.mobility b1 nd.Dfg.Graph.id
              <= Dfg.Bounds.mobility b2 nd.Dfg.Graph.id)
            (Dfg.Graph.nodes g)
      | _ -> false)

let suite =
  [
    test "diamond time frames" diamond_frames;
    test "critical paths of known graphs" critical_paths;
    test "multi-cycle critical path" multicycle_critical_path;
    test "infeasible budget reported" infeasible_budget;
    test "zero budget rejected" zero_budget;
    test "concurrency profile" concurrency_profile;
    test "multi-cycle ops overlap in concurrency" multicycle_concurrency;
    test "chaining packs two adds per step" chained_pairs;
    test "tight clock disables chaining" chaining_without_slack;
    test "op slower than clock rejected" op_slower_than_clock;
    test "chained frames are consistent" chained_bounds_feasible;
    frames_valid_on_random;
    mobility_grows_with_budget;
  ]
