let test name f = Alcotest.test_case name `Quick f

let unit_delay _ = 1
let alu kinds = Celllib.Library.make_alu kinds

let elaborate_diamond () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1 ]);
             (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  Alcotest.(check int) "three ALUs" 3 (List.length dp.Rtl.Datapath.alus);
  Alcotest.(check int) "alu_of m1" 0 dp.Rtl.Datapath.alu_of.(0);
  (* m1/m2 latch into registers read by the adder. *)
  let srcs = List.assoc 2 dp.Rtl.Datapath.operand_sources in
  List.iter
    (fun s ->
      match s with
      | Rtl.Datapath.From_reg _ -> ()
      | _ -> Alcotest.fail "adder operands should come from registers")
    srcs

let chained_source () =
  let g = Helpers.chain4 () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2; 2 |] ~delay:unit_delay
         ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Add ], [ 0; 2 ]); (alu [ Dfg.Op.Add ], [ 1; 3 ]) ])
  in
  (* c2 consumes c1 in the same step: must read the ALU output wire. *)
  let c2_srcs = List.assoc 1 dp.Rtl.Datapath.operand_sources in
  Alcotest.(check bool) "first operand chained" true
    (match c2_srcs with Rtl.Datapath.From_alu 0 :: _ -> true | _ -> false)

let missing_node_rejected () =
  let g = Helpers.diamond () in
  let msg =
    Helpers.check_err "missing node"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:[ (alu [ Dfg.Op.Mul ], [ 0; 1 ]) ])
  in
  Alcotest.(check bool) "says missing" true (Helpers.contains ~sub:"missing" msg)

let duplicate_node_rejected () =
  let g = Helpers.diamond () in
  ignore
    (Helpers.check_err "duplicate"
       (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
          ~assignments:
            [ (alu [ Dfg.Op.Mul ], [ 0; 1 ]);
              (alu [ Dfg.Op.Mul; Dfg.Op.Add ], [ 1; 2 ]) ]))

let incapable_alu_rejected () =
  let g = Helpers.diamond () in
  let msg =
    Helpers.check_err "incapable"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Add ], [ 0; 1; 2 ]) ])
  in
  Alcotest.(check bool) "mentions the ALU" true (Helpers.contains ~sub:"mul" msg)

let unknown_id_rejected () =
  let g = Helpers.diamond () in
  ignore
    (Helpers.check_err "unknown id"
       (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
          ~assignments:[ (alu [ Dfg.Op.Mul; Dfg.Op.Add ], [ 0; 1; 2; 9 ]) ]))

let self_loop_detection () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul; Dfg.Op.Add ], [ 0; 2 ]);
             (alu [ Dfg.Op.Mul ], [ 1 ]) ])
  in
  (* m1 (id 0) feeds s (id 2) and they share ALU 0. *)
  Alcotest.(check (list int)) "self loop on ALU 0" [ 0 ]
    (Rtl.Datapath.self_loop_alus dp)

let interconnect_sharing_via_registers () =
  (* Two consumers of the same value read the same register: one mux input. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b" ]
      [
        Helpers.op "x" Dfg.Op.Add [ "a"; "b" ];
        Helpers.op "u" Dfg.Op.Mul [ "x"; "a" ];
        Helpers.op "v" Dfg.Op.Mul [ "x"; "b" ];
      ]
  in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 2; 3 |] ~delay:unit_delay ~cs:3
         ~assignments:
           [ (alu [ Dfg.Op.Add ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1; 2 ]) ])
  in
  let mult = List.nth dp.Rtl.Datapath.alus 1 in
  (* Both mults read x from the same register: port 1 has one source. *)
  Alcotest.(check int) "port 1 shares the register line" 1
    (List.length mult.Rtl.Datapath.a_share.Rtl.Mux_share.l1)

let mux_counting () =
  (* Two ops on one ALU with four distinct operands: two 2-input muxes. *)
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b"; "c"; "d" ]
      [
        Helpers.op "x" Dfg.Op.Sub [ "a"; "b" ];
        Helpers.op "y" Dfg.Op.Sub [ "c"; "d" ];
      ]
  in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:[ (alu [ Dfg.Op.Sub ], [ 0; 1 ]) ])
  in
  Alcotest.(check int) "two muxes" 2 (Rtl.Datapath.mux_count dp);
  Alcotest.(check int) "four inputs" 4 (Rtl.Datapath.mux_inputs dp);
  (* A single-op ALU needs no mux at all. *)
  let dp1 =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Sub ], [ 0 ]); (alu [ Dfg.Op.Sub ], [ 1 ]) ])
  in
  Alcotest.(check int) "no muxes" 0 (Rtl.Datapath.mux_count dp1)

let dot_netlist () =
  let g = Helpers.diamond () in
  let dp =
    Helpers.check_ok "elaborate"
      (Rtl.Datapath.elaborate g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
         ~assignments:
           [ (alu [ Dfg.Op.Mul ], [ 0 ]); (alu [ Dfg.Op.Mul ], [ 1 ]);
             (alu [ Dfg.Op.Add ], [ 2 ]) ])
  in
  let dot = Rtl.Dot_netlist.of_datapath ~name:"demo" dp in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (Helpers.contains ~sub dot))
    [ "digraph demo"; "alu0"; "reg0"; "->"; "shape=record" ];
  (* The adder reads two registers: both edges drawn once. *)
  Alcotest.(check int) "reg->alu2 edges" 2
    (Helpers.count_occurrences ~sub:"-> alu2;" dot)

let suite =
  [
    test "diamond elaborates" elaborate_diamond;
    test "DOT netlist rendering" dot_netlist;
    test "chained operand reads the ALU wire" chained_source;
    test "missing node rejected" missing_node_rejected;
    test "duplicate assignment rejected" duplicate_node_rejected;
    test "incapable ALU rejected" incapable_alu_rejected;
    test "unknown node id rejected" unknown_id_rejected;
    test "self loops detected" self_loop_detection;
    test "register lines shared across consumers" interconnect_sharing_via_registers;
    test "mux counting" mux_counting;
  ]
