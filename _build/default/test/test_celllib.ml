let test name f = Alcotest.test_case name `Quick f

let merging_is_cheaper () =
  (* The property Table 2 depends on: a multifunction ALU costs less than
     the separate single-function units it replaces. *)
  let addsub = Celllib.Library.make_alu [ Dfg.Op.Add; Dfg.Op.Sub ] in
  let add = Celllib.Library.make_alu [ Dfg.Op.Add ] in
  let sub = Celllib.Library.make_alu [ Dfg.Op.Sub ] in
  Alcotest.(check bool) "(+-) < (+) + (-)" true
    (addsub.Celllib.Library.area
    < add.Celllib.Library.area +. sub.Celllib.Library.area);
  Alcotest.(check bool) "(+-) > (+)" true
    (addsub.Celllib.Library.area > add.Celllib.Library.area)

let multiplier_dwarfs_adder () =
  let mul = Celllib.Library.make_alu [ Dfg.Op.Mul ] in
  let add = Celllib.Library.make_alu [ Dfg.Op.Add ] in
  Alcotest.(check bool) "order of magnitude" true
    (mul.Celllib.Library.area > 4. *. add.Celllib.Library.area)

let alu_naming () =
  let a = Celllib.Library.make_alu [ Dfg.Op.Sub; Dfg.Op.Add ] in
  Alcotest.(check string) "sorted symbols" "(+-)" a.Celllib.Library.aname;
  let p = Celllib.Library.make_alu ~stages:2 [ Dfg.Op.Mul ] in
  Alcotest.(check string) "pipeline suffix" "(*)/p2" p.Celllib.Library.aname

let pipelined_cost () =
  let plain = Celllib.Library.make_alu [ Dfg.Op.Mul ] in
  let piped = Celllib.Library.make_alu ~stages:2 [ Dfg.Op.Mul ] in
  Alcotest.(check bool) "stages cost area" true
    (piped.Celllib.Library.area > plain.Celllib.Library.area)

let mux_cost_shape () =
  let lib = Celllib.Ncr.default in
  Alcotest.(check (float 1e-9)) "fan-in 1 is a wire" 0.
    (lib.Celllib.Library.mux_cost 1);
  Alcotest.(check bool) "monotone" true
    (lib.Celllib.Library.mux_cost 2 < lib.Celllib.Library.mux_cost 3
    && lib.Celllib.Library.mux_cost 3 < lib.Celllib.Library.mux_cost 8);
  (* Non-linear: the log2 select-tree term. *)
  let marginal r =
    lib.Celllib.Library.mux_cost (r + 1) -. lib.Celllib.Library.mux_cost r
  in
  Alcotest.(check bool) "non-linear jumps" true (marginal 2 > marginal 3)

let candidates_sorted () =
  let lib = Celllib.Ncr.for_graph (Workloads.Classic.diffeq ()) in
  let cands = Celllib.Library.candidates lib Dfg.Op.Add in
  Alcotest.(check bool) "non-empty" true (cands <> []);
  Alcotest.(check bool) "all capable" true
    (List.for_all
       (fun a -> Celllib.Op_set.mem Dfg.Op.Add a.Celllib.Library.ops)
       cands);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Celllib.Library.area <= b.Celllib.Library.area && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "cheapest first" true (sorted cands)

let single_function_lookup () =
  let lib = Celllib.Ncr.for_graph (Workloads.Classic.diffeq ()) in
  let a = Celllib.Library.single_function lib Dfg.Op.Mul in
  Alcotest.(check bool) "exactly mul" true
    (Celllib.Op_set.equal a.Celllib.Library.ops (Celllib.Op_set.singleton Dfg.Op.Mul));
  (* Falls back to make_alu when absent from the library. *)
  let empty = Celllib.Library.restrict lib [] in
  let fb = Celllib.Library.single_function empty Dfg.Op.Div in
  Alcotest.(check bool) "fallback capable" true
    (Celllib.Op_set.mem Dfg.Op.Div fb.Celllib.Library.ops)

let restrict_filters () =
  let lib = Celllib.Ncr.for_graph (Workloads.Classic.diffeq ()) in
  let only_addsub = Celllib.Library.restrict lib [ Dfg.Op.Add; Dfg.Op.Sub ] in
  Alcotest.(check bool) "no multiplier kinds" true
    (List.for_all
       (fun a -> not (Celllib.Op_set.mem Dfg.Op.Mul a.Celllib.Library.ops))
       only_addsub.Celllib.Library.alus);
  Alcotest.(check bool) "addsub kinds remain" true
    (Celllib.Library.candidates only_addsub Dfg.Op.Add <> [])

let heavy_combos_limited () =
  (* Generated libraries never pair a multiplier with 3 other functions. *)
  let lib = Celllib.Ncr.default in
  List.iter
    (fun a ->
      if Celllib.Op_set.mem Dfg.Op.Mul a.Celllib.Library.ops then
        Alcotest.(check bool)
          (a.Celllib.Library.aname ^ " small")
          true
          (Celllib.Op_set.cardinal a.Celllib.Library.ops <= 2))
    lib.Celllib.Library.alus

let for_graph_covers () =
  let g = Workloads.Classic.tseng () in
  let lib = Celllib.Ncr.for_graph g in
  List.iter
    (fun (c, _) ->
      let kind = Option.get (Dfg.Op.of_string c) in
      Alcotest.(check bool) (c ^ " covered") true
        (Celllib.Library.candidates lib kind <> []))
    (Dfg.Graph.count_by_class g)

let two_cycle_and_pipelined () =
  let lib = Celllib.Ncr.for_graph (Workloads.Classic.diffeq ()) in
  let two = Celllib.Ncr.two_cycle_multiplier lib in
  Alcotest.(check int) "mult takes 2" 2 (two.Celllib.Library.cycles Dfg.Op.Mul);
  Alcotest.(check int) "add takes 1" 1 (two.Celllib.Library.cycles Dfg.Op.Add);
  let piped = Celllib.Ncr.pipelined_multiplier lib in
  Alcotest.(check bool) "mult units are staged" true
    (List.for_all
       (fun a -> a.Celllib.Library.stages > 1)
       (Celllib.Library.candidates piped Dfg.Op.Mul))

let max_bounds () =
  let lib = Celllib.Ncr.for_graph (Workloads.Classic.diffeq ()) in
  Alcotest.(check bool) "max alu area positive" true
    (Celllib.Library.max_alu_area lib > 0.);
  Alcotest.(check bool) "max mux marginal positive" true
    (Celllib.Library.max_mux_marginal lib > 0.)

let op_set_name () =
  let s = Celllib.Op_set.of_list [ Dfg.Op.Sub; Dfg.Op.Add; Dfg.Op.Mul ] in
  Alcotest.(check string) "canonical name" "(+-*)" (Celllib.Op_set.name s)

let suite =
  [
    test "merging is cheaper than separate units" merging_is_cheaper;
    test "multiplier dwarfs adder" multiplier_dwarfs_adder;
    test "ALU naming" alu_naming;
    test "pipeline stages cost area" pipelined_cost;
    test "mux cost shape" mux_cost_shape;
    test "candidates sorted by area" candidates_sorted;
    test "single-function lookup and fallback" single_function_lookup;
    test "restrict filters kinds" restrict_filters;
    test "heavy units combine narrowly" heavy_combos_limited;
    test "for_graph covers the graph" for_graph_covers;
    test "two-cycle and pipelined variants" two_cycle_and_pipelined;
    test "cost bounds positive" max_bounds;
    test "op-set naming" op_set_name;
  ]
