let test name f = Alcotest.test_case name `Quick f
let op = Helpers.op

let cond_graph () = Workloads.Classic.cond_example ()

let shared_detected () =
  let g = cond_graph () in
  let pairs = Dfg.Mutex.shared_pairs g in
  (* t1 = add a c @ c1 and t2 = add a c @ !c1 compute the same value. *)
  Alcotest.(check int) "one shared pair" 1 (List.length pairs);
  let keep, drop = List.hd pairs in
  Alcotest.(check string) "keeps t1" "t1" (Dfg.Graph.node g keep).Dfg.Graph.name;
  Alcotest.(check string) "drops t2" "t2" (Dfg.Graph.node g drop).Dfg.Graph.name

let commutative_shared () =
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b"; "p" ]
      [
        op "c" Dfg.Op.Ne [ "p"; "a" ];
        ("x", Dfg.Op.Add, [ "a"; "b" ], [ ("c", true) ]);
        ("y", Dfg.Op.Add, [ "b"; "a" ], [ ("c", false) ]);
      ]
  in
  Alcotest.(check int) "operand order ignored for add" 1
    (List.length (Dfg.Mutex.shared_pairs g))

let noncommutative_not_shared () =
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b"; "p" ]
      [
        op "c" Dfg.Op.Ne [ "p"; "a" ];
        ("x", Dfg.Op.Sub, [ "a"; "b" ], [ ("c", true) ]);
        ("y", Dfg.Op.Sub, [ "b"; "a" ], [ ("c", false) ]);
      ]
  in
  Alcotest.(check int) "sub operand order matters" 0
    (List.length (Dfg.Mutex.shared_pairs g))

let same_branch_not_shared () =
  let g =
    Helpers.graph_exn ~inputs:[ "a"; "b"; "p" ]
      [
        op "c" Dfg.Op.Ne [ "p"; "a" ];
        ("x", Dfg.Op.Add, [ "a"; "b" ], [ ("c", true) ]);
        ("y", Dfg.Op.Add, [ "a"; "b" ], [ ("c", true) ]);
      ]
  in
  (* Same computation but same branch: plain CSE, not branch sharing. *)
  Alcotest.(check int) "same-arm duplicates not merged" 0
    (List.length (Dfg.Mutex.shared_pairs g))

let merge_rewires () =
  let g = cond_graph () in
  let merged = Helpers.check_ok "merge" (Dfg.Mutex.merge_shared g) in
  Alcotest.(check int) "one node fewer" (Dfg.Graph.num_nodes g - 1)
    (Dfg.Graph.num_nodes merged);
  Alcotest.(check bool) "t2 gone" true (Dfg.Graph.find merged "t2" = None);
  (* t4/t5 consumed t2 and must now read t1. *)
  let t4 = Option.get (Dfg.Graph.find merged "t4") in
  Alcotest.(check bool) "t4 reads t1" true
    (List.mem "t1" t4.Dfg.Graph.args);
  (* The merged op runs in both branches: its guards become unconditional. *)
  let t1 = Option.get (Dfg.Graph.find merged "t1") in
  Alcotest.(check int) "merged op unguarded" 0 (List.length t1.Dfg.Graph.guards)

let merge_keeps_semantics () =
  let g = cond_graph () in
  let merged = Helpers.check_ok "merge" (Dfg.Mutex.merge_shared g) in
  let env = [ ("a", 3); ("b", 9); ("c", 4) ] in
  let v_orig = Helpers.check_ok "eval orig" (Sim.Eval.run g env) in
  let v_merged = Helpers.check_ok "eval merged" (Sim.Eval.run merged env) in
  List.iter
    (fun name ->
      match (Sim.Eval.value v_orig name, Sim.Eval.value v_merged name) with
      | Some a, Some b -> Alcotest.(check int) (name ^ " preserved") a b
      | _ -> Alcotest.failf "value %s missing after merge" name)
    [ "c1"; "t1"; "t3"; "t4"; "t5" ]

let merge_without_sharing_is_identity () =
  let g = Helpers.diamond () in
  let merged = Helpers.check_ok "merge" (Dfg.Mutex.merge_shared g) in
  Alcotest.(check int) "same size" (Dfg.Graph.num_nodes g)
    (Dfg.Graph.num_nodes merged)

let suite =
  [
    test "shared ops across branches detected" shared_detected;
    test "commutative operand order ignored" commutative_shared;
    test "non-commutative operand order respected" noncommutative_not_shared;
    test "same-branch duplicates not merged" same_branch_not_shared;
    test "merge rewires consumers and clears guards" merge_rewires;
    test "merge preserves dataflow semantics" merge_keeps_semantics;
    test "merge is identity without sharing" merge_without_sharing_is_identity;
  ]
