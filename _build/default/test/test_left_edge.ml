let test name f = Alcotest.test_case name `Quick f

let iv v b d = { Rtl.Lifetime.value = v; birth = b; death = d }

let iv_list_gen =
  QCheck2.Gen.(
    list_size (int_range 0 25)
      (map
         (fun (b, len) -> (b, b + len))
         (pair (int_range 0 12) (int_range 0 5))))
  |> QCheck2.Gen.map
       (List.mapi (fun i (b, d) -> iv (Printf.sprintf "v%d" i) b d))

let simple_packing () =
  (* a:[0,1] b:[2,3] share; c:[1,2] needs its own. *)
  let a = Rtl.Left_edge.allocate [ iv "a" 0 1; iv "b" 2 3; iv "c" 1 2 ] in
  Alcotest.(check int) "two registers" 2 a.Rtl.Left_edge.count;
  Alcotest.(check (option int)) "a and b share"
    (Rtl.Left_edge.register_of a "a")
    (Rtl.Left_edge.register_of a "b");
  Alcotest.(check bool) "c separate" true
    (Rtl.Left_edge.register_of a "c" <> Rtl.Left_edge.register_of a "a")

let unstored_values_skipped () =
  let a = Rtl.Left_edge.allocate [ iv "dead" 3 2; iv "live" 0 0 ] in
  Alcotest.(check int) "one register" 1 a.Rtl.Left_edge.count;
  Alcotest.(check (option int)) "dead value unassigned" None
    (Rtl.Left_edge.register_of a "dead")

let values_of_roundtrip () =
  let a = Rtl.Left_edge.allocate [ iv "a" 0 1; iv "b" 2 3 ] in
  Alcotest.(check (list string)) "reg 0 holds both" [ "a"; "b" ]
    (Rtl.Left_edge.values_of a 0)

let empty_allocation () =
  let a = Rtl.Left_edge.allocate [] in
  Alcotest.(check int) "no registers" 0 a.Rtl.Left_edge.count

let deterministic () =
  let ivs = [ iv "x" 0 2; iv "y" 0 2; iv "z" 3 4 ] in
  let a = Rtl.Left_edge.allocate ivs and b = Rtl.Left_edge.allocate ivs in
  Alcotest.(check bool) "same result" true
    (a.Rtl.Left_edge.reg_of = b.Rtl.Left_edge.reg_of)

let optimal_count =
  Helpers.qcheck ~count:200 "left edge uses exactly max-overlap registers"
    iv_list_gen
    (fun ivs ->
      (Rtl.Left_edge.allocate ivs).Rtl.Left_edge.count
      = Rtl.Lifetime.max_overlap ivs)

let no_clashes =
  Helpers.qcheck ~count:200 "no overlapping values share a register"
    iv_list_gen
    (fun ivs ->
      let a = Rtl.Left_edge.allocate ivs in
      let stored =
        List.filter
          (fun iv -> Rtl.Left_edge.register_of a iv.Rtl.Lifetime.value <> None)
          ivs
      in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              x.Rtl.Lifetime.value = y.Rtl.Lifetime.value
              || Rtl.Left_edge.register_of a x.Rtl.Lifetime.value
                 <> Rtl.Left_edge.register_of a y.Rtl.Lifetime.value
              || not (Rtl.Lifetime.overlap x y))
            stored)
        stored)

let all_stored_assigned =
  Helpers.qcheck ~count:200 "every register-needing value gets a register"
    iv_list_gen
    (fun ivs ->
      let a = Rtl.Left_edge.allocate ivs in
      List.for_all
        (fun iv ->
          (not (Rtl.Lifetime.needs_register iv))
          || Rtl.Left_edge.register_of a iv.Rtl.Lifetime.value <> None)
        ivs)

let suite =
  [
    test "simple packing" simple_packing;
    test "unstored values skipped" unstored_values_skipped;
    test "values_of lists pack order" values_of_roundtrip;
    test "empty allocation" empty_allocation;
    test "deterministic" deterministic;
    optimal_count;
    no_clashes;
    all_stored_assigned;
  ]
