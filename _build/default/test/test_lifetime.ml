let test name f = Alcotest.test_case name `Quick f

let unit_delay _ = 1

let interval ivs name =
  match List.find_opt (fun iv -> iv.Rtl.Lifetime.value = name) ivs with
  | Some iv -> iv
  | None -> Alcotest.failf "no interval for %s" name

let diamond_lifetimes () =
  let g = Helpers.diamond () in
  (* m1,m2 at step 1; s at step 2. *)
  let ivs =
    Rtl.Lifetime.intervals g ~start:[| 1; 1; 2 |] ~delay:unit_delay ~cs:2
  in
  let m1 = interval ivs "m1" in
  Alcotest.(check int) "m1 born at boundary 1" 1 m1.Rtl.Lifetime.birth;
  Alcotest.(check int) "m1 dies before step 2" 1 m1.Rtl.Lifetime.death;
  Alcotest.(check bool) "m1 stored" true (Rtl.Lifetime.needs_register m1);
  let s = interval ivs "s" in
  Alcotest.(check int) "s held to the end" 2 s.Rtl.Lifetime.death;
  let a = interval ivs "a" in
  Alcotest.(check int) "input a born at 0" 0 a.Rtl.Lifetime.birth;
  Alcotest.(check int) "input a read in step 1" 0 a.Rtl.Lifetime.death

let chained_value_needs_no_register () =
  let g = Helpers.chain4 () in
  (* c1 and c2 share step 1 (chained), c3/c4 in step 2. *)
  let ivs =
    Rtl.Lifetime.intervals g ~start:[| 1; 1; 2; 2 |] ~delay:unit_delay ~cs:2
  in
  let c1 = interval ivs "c1" in
  Alcotest.(check bool) "c1 consumed in its own step" false
    (Rtl.Lifetime.needs_register c1);
  let c2 = interval ivs "c2" in
  Alcotest.(check bool) "c2 crosses into step 2" true
    (Rtl.Lifetime.needs_register c2)

let multicycle_birth () =
  let g = Helpers.diamond () in
  let delay i = if i <= 1 then 2 else 1 in
  (* mults start at 1, finish at 2; add at step 3. *)
  let ivs = Rtl.Lifetime.intervals g ~start:[| 1; 1; 3 |] ~delay ~cs:3 in
  Alcotest.(check int) "m1 born at its finish boundary" 2
    (interval ivs "m1").Rtl.Lifetime.birth

let inputs_excluded () =
  let g = Helpers.diamond () in
  let ivs =
    Rtl.Lifetime.intervals ~include_inputs:false g ~start:[| 1; 1; 2 |]
      ~delay:unit_delay ~cs:2
  in
  Alcotest.(check bool) "no input intervals" true
    (List.for_all
       (fun iv -> not (List.mem iv.Rtl.Lifetime.value (Dfg.Graph.inputs g)))
       ivs)

let outputs_released () =
  let g = Helpers.diamond () in
  let ivs =
    Rtl.Lifetime.intervals ~hold_outputs:false g ~start:[| 1; 1; 2 |]
      ~delay:unit_delay ~cs:2
  in
  Alcotest.(check bool) "sink value unstored" false
    (Rtl.Lifetime.needs_register (interval ivs "s"))

let guard_keeps_condition_alive () =
  let g = Workloads.Classic.cond_example () in
  let id n = (Option.get (Dfg.Graph.find g n)).Dfg.Graph.id in
  let n = Dfg.Graph.num_nodes g in
  let start = Array.make n 0 in
  start.(id "c1") <- 1;
  start.(id "t1") <- 2;
  start.(id "t2") <- 2;
  start.(id "t3") <- 3;
  start.(id "t4") <- 4;
  start.(id "t5") <- 4;
  let ivs = Rtl.Lifetime.intervals g ~start ~delay:unit_delay ~cs:4 in
  (* c1 guards t4/t5 at step 4, so it must live to boundary 3. *)
  Alcotest.(check int) "c1 alive for late guards" 3
    (interval ivs "c1").Rtl.Lifetime.death

let overlap_cases () =
  let iv v b d = { Rtl.Lifetime.value = v; birth = b; death = d } in
  Alcotest.(check bool) "overlapping" true
    (Rtl.Lifetime.overlap (iv "a" 1 3) (iv "b" 3 5));
  Alcotest.(check bool) "disjoint" false
    (Rtl.Lifetime.overlap (iv "a" 1 2) (iv "b" 3 5));
  Alcotest.(check bool) "nested" true
    (Rtl.Lifetime.overlap (iv "a" 1 9) (iv "b" 3 4))

let max_overlap_counts () =
  let iv v b d = { Rtl.Lifetime.value = v; birth = b; death = d } in
  Alcotest.(check int) "three live at boundary 3" 3
    (Rtl.Lifetime.max_overlap [ iv "a" 1 3; iv "b" 2 4; iv "c" 3 3; iv "d" 5 6 ]);
  Alcotest.(check int) "empty" 0 (Rtl.Lifetime.max_overlap []);
  (* Dead-on-arrival values (birth > death) are not counted. *)
  Alcotest.(check int) "unstored values ignored" 1
    (Rtl.Lifetime.max_overlap [ iv "a" 2 1; iv "b" 1 1 ])

let overlap_symmetric =
  let iv_gen =
    QCheck2.Gen.map
      (fun (b, len) -> { Rtl.Lifetime.value = "v"; birth = b; death = b + len })
      QCheck2.Gen.(pair (int_range 0 10) (int_range 0 6))
  in
  Helpers.qcheck ~count:200 "overlap is symmetric"
    QCheck2.Gen.(pair iv_gen iv_gen)
    (fun (a, b) -> Rtl.Lifetime.overlap a b = Rtl.Lifetime.overlap b a)

let suite =
  [
    test "diamond lifetimes" diamond_lifetimes;
    test "chained values need no register" chained_value_needs_no_register;
    test "multi-cycle values born at finish" multicycle_birth;
    test "inputs can be excluded" inputs_excluded;
    test "outputs can be released" outputs_released;
    test "guard keeps its condition alive" guard_keeps_condition_alive;
    test "overlap cases" overlap_cases;
    test "max_overlap" max_overlap_counts;
    overlap_symmetric;
  ]
