(** Graphviz rendering of a synthesised datapath: ALUs (with their bound
    operations), registers (with the values they hold over time), primary
    inputs, and the mux-input connections between them. Chained ALU-to-ALU
    wires are drawn dashed. *)

val of_datapath : ?name:string -> Datapath.t -> string
