type micro = {
  m_step : int;
  m_latch_step : int;
  m_node : int;
  m_alu : int;
  m_sources : Datapath.source list;
  m_dest : int option;
  m_guards : (string * bool) list;
}

type t = {
  steps : int;
  micros : micro list;
  input_loads : (string * int) list;
}

(* Chaining depth: number of same-step producer hops feeding the node. *)
let rec chain_depth g start memo i =
  match Hashtbl.find_opt memo i with
  | Some d -> d
  | None ->
      let d =
        List.fold_left
          (fun acc p ->
            if start.(p) = start.(i) then
              max acc (1 + chain_depth g start memo p)
            else acc)
          0 (Dfg.Graph.preds g i)
      in
      Hashtbl.replace memo i d;
      d

let generate (dp : Datapath.t) ~delay =
  let g = dp.Datapath.graph in
  let memo = Hashtbl.create 16 in
  let micros =
    List.map
      (fun nd ->
        let i = nd.Dfg.Graph.id in
        {
          m_step = dp.Datapath.start.(i);
          m_latch_step = dp.Datapath.start.(i) + delay i - 1;
          m_node = i;
          m_alu = dp.Datapath.alu_of.(i);
          m_sources = List.assoc i dp.Datapath.operand_sources;
          m_dest = Left_edge.register_of dp.Datapath.regs nd.Dfg.Graph.name;
          m_guards = nd.Dfg.Graph.guards;
        })
      (Dfg.Graph.nodes g)
  in
  let micros =
    List.sort
      (fun a b ->
        let c = compare a.m_step b.m_step in
        if c <> 0 then c
        else
          let c =
            compare
              (chain_depth g dp.Datapath.start memo a.m_node)
              (chain_depth g dp.Datapath.start memo b.m_node)
          in
          if c <> 0 then c else compare a.m_node b.m_node)
      micros
  in
  let input_loads =
    List.filter_map
      (fun v ->
        Option.map (fun r -> (v, r)) (Left_edge.register_of dp.Datapath.regs v))
      (Dfg.Graph.inputs g)
  in
  Ok { steps = dp.Datapath.cs; micros; input_loads }

let pp ppf t =
  Format.fprintf ppf "@[<v>controller: %d states@," t.steps;
  List.iter
    (fun (v, r) -> Format.fprintf ppf "  load reg%d <= %s@," r v)
    t.input_loads;
  List.iter
    (fun m ->
      Format.fprintf ppf "  s%d: alu%d node%d <- [%s]%s%s@," m.m_step m.m_alu
        m.m_node
        (String.concat ";" (List.map Datapath.source_tag m.m_sources))
        (match m.m_dest with
        | Some r -> Printf.sprintf " -> reg%d" r
        | None -> " -> (chained)")
        (match m.m_guards with
        | [] -> ""
        | gs ->
            " if "
            ^ String.concat ","
                (List.map (fun (c, a) -> (if a then "" else "!") ^ c) gs)))
    t.micros;
  Format.fprintf ppf "@]"
