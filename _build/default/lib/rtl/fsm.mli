(** Finite-state-machine realisation of a controller: state encodings and
    the microcode ROM view — the "control path design" step the paper's
    introduction pairs with datapath synthesis.

    The controller is a simple counter FSM (state k -> k+1); what varies is
    the state register encoding and the decoded control word per state. *)

type encoding = Binary | One_hot | Gray

val state_bits : encoding -> steps:int -> int
(** Width of the state register. *)

val encode : encoding -> steps:int -> int -> string
(** Code word (as a bit string, MSB first) of a 1-based state.
    @raise Invalid_argument when the state is out of range. *)

type rom_row = {
  rom_state : int;
  rom_loads : int list;  (** Registers latched at this state's edge. *)
  rom_selects : (int * int) list;
      (** Per ALU active in this state: (alu, executing node). *)
}

val rom : Controller.t -> rom_row list
(** One row per state, in order — the control word listing a microcode ROM
    would store (guard conditions still gate the loads at run time). *)

val render : ?encoding:encoding -> Controller.t -> string
(** Human-readable FSM table: encoded state, ALU activity, register loads. *)
