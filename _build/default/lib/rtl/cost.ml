type breakdown = {
  alu_area : float;
  mux_area : float;
  reg_area : float;
  total : float;
  n_alus : int;
  n_regs : int;
  n_mux : int;
  n_mux_inputs : int;
}

let of_datapath lib dp =
  let alu_area =
    List.fold_left
      (fun acc a -> acc +. a.Datapath.a_kind.Celllib.Library.area)
      0. dp.Datapath.alus
  in
  let mux_area =
    List.fold_left
      (fun acc a ->
        acc
        +. Mux_share.cost ~mux_cost:lib.Celllib.Library.mux_cost
             a.Datapath.a_share)
      0. dp.Datapath.alus
  in
  let n_regs = dp.Datapath.regs.Left_edge.count in
  let reg_area = float_of_int n_regs *. lib.Celllib.Library.reg_cost in
  {
    alu_area;
    mux_area;
    reg_area;
    total = alu_area +. mux_area +. reg_area;
    n_alus = List.length dp.Datapath.alus;
    n_regs;
    n_mux = Datapath.mux_count dp;
    n_mux_inputs = Datapath.mux_inputs dp;
  }

let alu_config dp =
  let tally = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun a ->
      let name = a.Datapath.a_kind.Celllib.Library.aname in
      (match Hashtbl.find_opt tally name with
      | None ->
          order := name :: !order;
          Hashtbl.replace tally name 1
      | Some k -> Hashtbl.replace tally name (k + 1)))
    dp.Datapath.alus;
  List.rev !order
  |> List.map (fun name ->
         let k = Hashtbl.find tally name in
         if k = 1 then name else Printf.sprintf "%d%s" k name)
  |> String.concat "; "

let pp ppf b =
  Format.fprintf ppf
    "total %.0f um2 (ALU %.0f, MUX %.0f, REG %.0f); %d ALUs, %d REGs, %d \
     MUXes/%d inputs"
    b.total b.alu_area b.mux_area b.reg_area b.n_alus b.n_regs b.n_mux
    b.n_mux_inputs
