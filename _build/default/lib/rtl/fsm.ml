type encoding = Binary | One_hot | Gray

let rec bits_needed n = if n <= 2 then 1 else 1 + bits_needed ((n + 1) / 2)

let state_bits enc ~steps =
  match enc with
  | Binary | Gray -> bits_needed steps
  | One_hot -> steps

let binary_string width v =
  String.init width (fun i ->
      if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let encode enc ~steps state =
  if state < 1 || state > steps then
    invalid_arg (Printf.sprintf "Fsm.encode: state %d outside 1..%d" state steps);
  match enc with
  | Binary -> binary_string (state_bits enc ~steps) (state - 1)
  | Gray ->
      let v = state - 1 in
      binary_string (state_bits enc ~steps) (v lxor (v lsr 1))
  | One_hot ->
      String.init steps (fun i -> if i = steps - state then '1' else '0')

type rom_row = {
  rom_state : int;
  rom_loads : int list;
  rom_selects : (int * int) list;
}

let rom (ctrl : Controller.t) =
  List.init ctrl.Controller.steps (fun idx ->
      let state = idx + 1 in
      let loads =
        List.filter_map
          (fun m ->
            if m.Controller.m_latch_step = state then m.Controller.m_dest
            else None)
          ctrl.Controller.micros
        |> List.sort_uniq compare
      in
      let selects =
        List.filter_map
          (fun m ->
            if m.Controller.m_step = state then
              Some (m.Controller.m_alu, m.Controller.m_node)
            else None)
          ctrl.Controller.micros
        |> List.sort compare
      in
      { rom_state = state; rom_loads = loads; rom_selects = selects })

let render ?(encoding = Binary) ctrl =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "FSM: %d states, %s encoding, %d state bits\n" ctrl.Controller.steps
    (match encoding with
    | Binary -> "binary"
    | One_hot -> "one-hot"
    | Gray -> "gray")
    (state_bits encoding ~steps:ctrl.Controller.steps);
  List.iter
    (fun row ->
      add "  %s  s%-2d  alu:[%s]  load:[%s]\n"
        (encode encoding ~steps:ctrl.Controller.steps row.rom_state)
        row.rom_state
        (String.concat " "
           (List.map
              (fun (a, n) -> Printf.sprintf "%d<-n%d" a n)
              row.rom_selects))
        (String.concat " " (List.map (Printf.sprintf "r%d") row.rom_loads)))
    (rom ctrl);
  Buffer.contents buf
