type t = {
  reg_of : (string * int) list;
  count : int;
}

let allocate ivs =
  let sorted =
    List.filter Lifetime.needs_register ivs
    |> List.sort (fun a b ->
           let c = compare a.Lifetime.birth b.Lifetime.birth in
           if c <> 0 then c
           else
             let c = compare a.Lifetime.death b.Lifetime.death in
             if c <> 0 then c
             else String.compare a.Lifetime.value b.Lifetime.value)
  in
  (* last_death.(r) = death boundary of the most recent value in register r *)
  let last_death = ref [||] in
  let count = ref 0 in
  let assign iv =
    let rec find r =
      if r >= !count then begin
        last_death := Array.append !last_death [| iv.Lifetime.death |];
        incr count;
        r
      end
      else if !last_death.(r) < iv.Lifetime.birth then begin
        !last_death.(r) <- iv.Lifetime.death;
        r
      end
      else find (r + 1)
    in
    find 0
  in
  let reg_of = List.map (fun iv -> (iv.Lifetime.value, assign iv)) sorted in
  { reg_of; count = !count }

let register_of t v = List.assoc_opt v t.reg_of

let values_of t r =
  List.filter_map (fun (v, r') -> if r = r' then Some v else None) t.reg_of
