lib/rtl/cost.ml: Celllib Datapath Format Hashtbl Left_edge List Mux_share Printf String
