lib/rtl/datapath.ml: Array Celllib Dfg Format Left_edge Lifetime List Mux_share Printf String
