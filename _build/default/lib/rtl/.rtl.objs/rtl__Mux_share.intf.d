lib/rtl/mux_share.mli:
