lib/rtl/fsm.mli: Controller
