lib/rtl/lifetime.ml: Array Dfg Hashtbl List Option
