lib/rtl/bus.ml: Array Datapath List Printf
