lib/rtl/dot_netlist.mli: Datapath
