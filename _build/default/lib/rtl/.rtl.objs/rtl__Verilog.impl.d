lib/rtl/verilog.ml: Buffer Celllib Controller Datapath Dfg Left_edge List Printf String
