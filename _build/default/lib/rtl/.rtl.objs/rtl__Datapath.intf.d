lib/rtl/datapath.mli: Celllib Dfg Format Left_edge Mux_share
