lib/rtl/fsm.ml: Buffer Controller List Printf String
