lib/rtl/left_edge.ml: Array Lifetime List String
