lib/rtl/controller.ml: Array Datapath Dfg Format Hashtbl Left_edge List Option Printf String
