lib/rtl/controller.mli: Datapath Format
