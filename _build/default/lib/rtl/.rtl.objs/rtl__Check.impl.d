lib/rtl/check.ml: Array Celllib Datapath Dfg Left_edge Lifetime List Option Printf
