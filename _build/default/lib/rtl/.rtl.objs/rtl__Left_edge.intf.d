lib/rtl/left_edge.mli: Lifetime
