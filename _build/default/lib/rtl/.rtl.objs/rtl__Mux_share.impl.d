lib/rtl/mux_share.ml: List Option
