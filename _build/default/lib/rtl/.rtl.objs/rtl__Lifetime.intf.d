lib/rtl/lifetime.mli: Dfg
