lib/rtl/dot_netlist.ml: Array Buffer Celllib Datapath Dfg Hashtbl Left_edge List Printf String
