lib/rtl/cost.mli: Celllib Datapath Format
