lib/rtl/verilog.mli: Controller Datapath
