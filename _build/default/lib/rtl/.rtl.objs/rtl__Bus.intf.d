lib/rtl/bus.mli: Datapath
