(** Control-path generation: the FSM that sequences a datapath through its
    control steps (the "control path design" step of behavioural synthesis,
    paper §1).

    Each state issues one micro-order per operation starting in that step:
    which ALU computes, which sources feed its ports, which register latches
    the result at the step's closing edge, and under which guard the order is
    enabled at all. *)

type micro = {
  m_step : int;  (** FSM state (= control step), 1-based. *)
  m_latch_step : int;
      (** State whose closing edge latches the result — the finish step of a
          multi-cycle operation. *)
  m_node : int;  (** DFG node id executed. *)
  m_alu : int;  (** ALU instance id. *)
  m_sources : Datapath.source list;  (** Operand sources, in operand order. *)
  m_dest : int option;
      (** Register latching the result at the {e finish} step's edge;
          [None] when every consumer chains inside the producing step. *)
  m_guards : (string * bool) list;  (** Enabling condition values. *)
}

type t = {
  steps : int;  (** Number of FSM states. *)
  micros : micro list;  (** Sorted by step, then by chaining depth. *)
  input_loads : (string * int) list;
      (** Registers to preload with primary inputs before state 1. *)
}

val generate : Datapath.t -> delay:(int -> int) -> (t, string) result
(** Derive the controller from an elaborated datapath. Micro-orders within a
    step are emitted in chaining order (producers before same-step
    consumers), which the simulator relies on. *)

val pp : Format.formatter -> t -> unit
