(** Input-signal sharing on the two multiplexers feeding an ALU
    (paper §5.6).

    Given the operations bound to one ALU, build the two source lists
    [L1]/[L2] (one per ALU input port) so that [|L1| + |L2|] is minimal:
    non-commutative operations are placed first with fixed orientation, then
    each commutative operation picks the orientation that adds the fewest
    new sources. For small sets the search is exhaustive, making the result
    exactly optimal; the greedy pass handles bigger sets.

    Sources are opaque tags: value names, or coarser tags after interconnect
    sharing (§5.7) maps several values carried on one physical line to one
    tag. *)

type op_inputs = {
  left : string;  (** First operand's source tag. *)
  right : string option;  (** Second operand; [None] for unary operations. *)
  commutative : bool;
}

type t = {
  l1 : string list;  (** Distinct sources on port 1, in first-use order. *)
  l2 : string list;  (** Distinct sources on port 2. *)
  swapped : bool list;
      (** Per input row: whether the operands were exchanged. *)
}

val assign : ?exhaustive_limit:int -> op_inputs list -> t
(** Minimise [|l1| + |l2|] — exactly when at most [exhaustive_limit]
    (default 10) rows are commutative, greedily beyond. Callers on a hot
    path (MFSA evaluates this inside its candidate loop) pass a smaller
    limit. *)

val size : t -> int
(** [|l1| + |l2|]. *)

val cost : mux_cost:(int -> float) -> t -> float
(** Area of the two multiplexers under the library's fan-in cost table. *)
