(** Register allocation by the left-edge / activity-selection greedy
    (paper §5.8, following REAL [19]).

    Intervals are sorted by birth; each is packed into the first register
    whose previous occupant dies before the new value is born. The result
    uses exactly {!Lifetime.max_overlap} registers — optimal for interval
    graphs. *)

type t = {
  reg_of : (string * int) list;
      (** Register id (0-based) per stored value; values that never cross a
          boundary are absent. *)
  count : int;  (** Number of registers used. *)
}

val allocate : Lifetime.interval list -> t

val register_of : t -> string -> int option

val values_of : t -> int -> string list
(** Values sharing the given register, in packing order. *)
