(** Structural Verilog-style export of a synthesised design, for inspection
    and hand-off to downstream tools. The emitted text is self-contained
    (datapath module + FSM controller) and is exercised by golden tests; it
    is not round-tripped through a Verilog simulator in this repository. *)

val emit : ?module_name:string -> Datapath.t -> Controller.t -> string
