type op_inputs = {
  left : string;
  right : string option;
  commutative : bool;
}

type t = {
  l1 : string list;
  l2 : string list;
  swapped : bool list;
}

let add_unique l x = if List.mem x l then l else l @ [ x ]

let apply_orientation rows orient =
  let rec go l1 l2 acc rows orient =
    match rows with
    | [] -> { l1; l2; swapped = List.rev acc }
    | row :: rest -> (
        match row.right with
        | None -> go (add_unique l1 row.left) l2 (false :: acc) rest orient
        | Some r ->
            let swap, orient' =
              if row.commutative then
                match orient with
                | b :: tl -> (b, tl)
                | [] -> (false, [])
              else (false, orient)
            in
            let a, b = if swap then (r, row.left) else (row.left, r) in
            go (add_unique l1 a) (add_unique l2 b) (swap :: acc) rest orient')
  in
  go [] [] [] rows orient

let size t = List.length t.l1 + List.length t.l2

let commutative_count rows =
  List.length (List.filter (fun r -> r.commutative && r.right <> None) rows)

let exhaustive rows k =
  let best = ref None in
  let rec enum orient remaining =
    if remaining = 0 then begin
      let cand = apply_orientation rows (List.rev orient) in
      match !best with
      | Some b when size b <= size cand -> ()
      | _ -> best := Some cand
    end
    else begin
      enum (false :: orient) (remaining - 1);
      enum (true :: orient) (remaining - 1)
    end
  in
  enum [] k;
  Option.get !best

(* Greedy: decide each commutative row in sequence, preferring the
   orientation that adds fewer new sources to the running lists. *)
let greedy rows =
  let l1 = ref [] and l2 = ref [] and swaps = ref [] in
  let added l x = if List.mem x !l then 0 else 1 in
  List.iter
    (fun row ->
      match row.right with
      | None ->
          l1 := add_unique !l1 row.left;
          swaps := false :: !swaps
      | Some r ->
          let cost_keep = added l1 row.left + added l2 r in
          let cost_swap = added l1 r + added l2 row.left in
          let swap = row.commutative && cost_swap < cost_keep in
          let a, b = if swap then (r, row.left) else (row.left, r) in
          l1 := add_unique !l1 a;
          l2 := add_unique !l2 b;
          swaps := swap :: !swaps)
    rows;
  { l1 = !l1; l2 = !l2; swapped = List.rev !swaps }

let assign ?(exhaustive_limit = 10) rows =
  let k = commutative_count rows in
  if k <= exhaustive_limit then exhaustive rows k else greedy rows

let cost ~mux_cost t =
  mux_cost (List.length t.l1) +. mux_cost (List.length t.l2)
