(** Value lifetimes over a schedule, in {e register-boundary} units.

    Boundary [t] is the clock edge between control steps [t] and [t+1]. A
    value produced by an operation finishing in step [f] is latched at
    boundary [f]; a consumer starting in step [s] reads it across boundaries
    [f .. s-1]. A value whose consumers all chain combinationally inside the
    producing step never crosses a boundary and needs no register. *)

type interval = {
  value : string;  (** Value name (node name or primary input). *)
  birth : int;  (** First boundary at which the value must be latched. *)
  death : int;  (** Last boundary at which it is still needed. *)
}
(** The value occupies a register exactly when [birth <= death]. *)

val needs_register : interval -> bool

val intervals :
  ?include_inputs:bool -> ?hold_outputs:bool -> Dfg.Graph.t ->
  start:int array -> delay:(int -> int) -> cs:int -> interval list
(** Lifetimes of every value under the given schedule. Primary inputs
    (included by default) are born at boundary 0; values produced by sink
    operations die at boundary [cs] when [hold_outputs] (default) — the
    environment reads results at the end of the iteration. *)

val overlap : interval -> interval -> bool
(** Whether two register-needing intervals share a boundary (cannot share a
    register). *)

val max_overlap : interval list -> int
(** Peak number of simultaneously-live values — the lower bound on register
    count, met exactly by {!Left_edge.allocate}. *)
