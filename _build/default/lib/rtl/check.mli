(** Structural validation of elaborated datapaths, used by tests and by the
    CLI after every MFSA run. *)

val datapath :
  ?style2:bool -> ?share_mutex:bool -> Datapath.t -> delay:(int -> int) ->
  (unit, string list) result
(** Checks:
    - every ALU instance executes at most one operation per step (operations
      occupy [delay] consecutive steps; mutually-exclusive operations may
      overlap when [share_mutex], default true);
    - every operation's kind is within its ALU's capability set;
    - register sharing is sound: no two values with overlapping lifetimes in
      one register;
    - with [style2], no ALU holds an operation together with a direct DFG
      predecessor or successor. *)
