let cell_width = 5

let fit s =
  if String.length s >= cell_width then String.sub s 0 (cell_width - 1) ^ " "
  else s ^ String.make (cell_width - String.length s) ' '

let header cols =
  fit ""
  ^ String.concat ""
      (List.init cols (fun c -> fit (Printf.sprintf "fu%d" (c + 1))))

let render_frames ~steps ~cols ~pf ~rf ~forbidden ~occupied ~chosen =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header cols);
  Buffer.add_char buf '\n';
  for s = 1 to steps do
    Buffer.add_string buf (fit (Printf.sprintf "s%d" s));
    for c = 1 to cols do
      let pos = { Core.Frames.col = c; step = s } in
      let cell =
        match occupied pos with
        | Some label -> label
        | None ->
            if chosen = Some pos then ">"
            else if not (Core.Frames.rect_mem pf pos) then ""
            else if Core.Frames.rect_mem rf pos then "R"
            else if forbidden s then "F"
            else "."
      in
      Buffer.add_string buf (fit cell)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render_occupancy ~title ~steps ~label ~cols =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (header cols);
  Buffer.add_char buf '\n';
  for s = 1 to steps do
    Buffer.add_string buf (fit (Printf.sprintf "s%d" s));
    for c = 1 to cols do
      let pos = { Core.Frames.col = c; step = s } in
      Buffer.add_string buf
        (fit (Option.value ~default:"." (label pos)))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
