lib/report/grid_art.ml: Buffer Core List Option Printf String
