lib/report/grid_art.mli: Core
