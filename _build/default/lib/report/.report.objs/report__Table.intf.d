lib/report/table.mli:
