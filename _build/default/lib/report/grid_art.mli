(** ASCII rendering of the 2-D placement table — reproduces the paper's
    Figure 1 (present/next position of an operation) and Figure 2 (PF, RF,
    FF and MF frames of a typical operation). *)

val render_frames :
  steps:int -> cols:int -> pf:Core.Frames.rect -> rf:Core.Frames.rect ->
  forbidden:(int -> bool) -> occupied:(Core.Frames.pos -> string option) ->
  chosen:Core.Frames.pos option -> string
(** One character cell per position: occupied positions show their label's
    first letters, [R] redundant frame, [F] forbidden frame, [.] move-frame
    positions (inside PF, outside RF/FF, free), [>] the chosen position,
    blank outside the primary frame. *)

val render_occupancy :
  title:string -> steps:int -> label:(Core.Frames.pos -> string option) ->
  cols:int -> string
(** Plain placement table: rows are control steps, columns FU instances. *)
