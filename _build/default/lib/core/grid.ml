type placement = { op : int; col : int; step : int; span : int }

type t = {
  horizon : int;
  mutable ncols : int;
  mutable items : placement list;  (* most recent first *)
}

let create ~steps ~cols = { horizon = steps; ncols = max 0 cols; items = [] }
let steps t = t.horizon
let cols t = t.ncols
let ensure_cols t n = if n > t.ncols then t.ncols <- n

let place t ~op ~col ~step ~span =
  if col < 1 || col > t.ncols then
    invalid_arg (Printf.sprintf "Grid.place: column %d outside 1..%d" col t.ncols);
  if step < 1 || step + span - 1 > t.horizon then
    invalid_arg
      (Printf.sprintf "Grid.place: steps %d..%d outside 1..%d" step
         (step + span - 1) t.horizon);
  t.items <- { op; col; step; span } :: t.items

let clear t = t.items <- []

(* Do step ranges [a, a+sa-1] and [b, b+sb-1] share a cell, folding steps
   modulo [latency] when functional pipelining is active?  Spans are small
   (operation cycle counts), so direct enumeration is fine. *)
let steps_overlap ~latency a sa b sb =
  match latency with
  | None -> a < b + sb && b < a + sa
  | Some l ->
      let norm x = ((x - 1) mod l + l) mod l in
      let cells_a = List.init sa (fun i -> norm (a + i)) in
      let cells_b = List.init sb (fun i -> norm (b + i)) in
      List.exists (fun c -> List.mem c cells_b) cells_a

let conflicts t ~latency ~col ~step ~span =
  List.filter_map
    (fun p ->
      if p.col = col && steps_overlap ~latency p.step p.span step span then
        Some p.op
      else None)
    t.items

let free t ~exclusive ~latency ~op ~span (pos : Frames.pos) =
  let occ =
    conflicts t ~latency ~col:pos.Frames.col ~step:pos.Frames.step ~span
  in
  List.for_all (fun other -> exclusive op other) occ

let occupants t ~col ~step =
  List.filter_map
    (fun p ->
      if p.col = col && step >= p.step && step < p.step + p.span then
        Some p.op
      else None)
    t.items

let used_cols t = List.fold_left (fun acc p -> max acc p.col) 0 t.items

let placements t =
  List.rev_map (fun p -> (p.op, p.col, p.step, p.span)) t.items
