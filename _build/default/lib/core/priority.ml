let mobility = Dfg.Bounds.mobility

(* Earliest point at which the operands can be ready, used as the final
   tie-breaker: "the operation with earlier predecessors (in terms of
   control steps) will get higher priority". *)
let readiness cfg g bounds i =
  List.fold_left
    (fun acc p ->
      let pd = Config.delay cfg (Dfg.Graph.node g p).Dfg.Graph.kind in
      max acc (bounds.Dfg.Bounds.asap.(p) + pd))
    1 (Dfg.Graph.preds g i)

let order cfg g bounds =
  let delay i = Config.delay cfg (Dfg.Graph.node g i).Dfg.Graph.kind in
  let compare_mobility i j =
    let mi = mobility bounds i and mj = mobility bounds j in
    let di = delay i and dj = delay j in
    (* §5.3: between two multi-cycle operations whose mobilities differ by
       less than their cycle count, the more mobile one goes first. *)
    if di > 1 && dj > 1 && abs (mi - mj) < min di dj then compare mj mi
    else compare mi mj
  in
  let compare_ops i j =
    let c = compare bounds.Dfg.Bounds.alap.(i) bounds.Dfg.Bounds.alap.(j) in
    if c <> 0 then c
    else
      let c = compare_mobility i j in
      if c <> 0 then c
      else
        let c =
          compare (readiness cfg g bounds i) (readiness cfg g bounds j)
        in
        if c <> 0 then c else compare i j
  in
  (* Emit the highest-priority READY node each round. Plain sorting is not
     enough: under chaining a predecessor can share its successor's ALAP
     step, so (alap, mobility) alone is not a linear extension. *)
  let n = Dfg.Graph.num_nodes g in
  let pending = Array.map List.length (Array.init n (Dfg.Graph.preds g)) in
  let emitted = Array.make n false in
  let rec emit acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if (not emitted.(i)) && pending.(i) = 0 then
          if !best < 0 || compare_ops i !best < 0 then best := i
      done;
      let i = !best in
      emitted.(i) <- true;
      List.iter (fun s -> pending.(s) <- pending.(s) - 1) (Dfg.Graph.succs g i);
      emit (i :: acc) (remaining - 1)
    end
  in
  emit [] n
