(** Operation priorities (paper §3.2 step 2 and the multi-cycle rules of
    §5.3).

    Operations are scheduled in ALAP control-step order; within a step,
    smaller mobility means higher priority. For two multi-cycle operations
    whose mobility difference is smaller than their cycle count the rule is
    reversed (the more mobile operation gets priority, §5.3), and remaining
    ties go to the operation whose predecessors finish earlier. *)

val mobility : Dfg.Bounds.t -> int -> int
(** [alap - asap], re-exported for convenience. *)

val order : Config.t -> Dfg.Graph.t -> Dfg.Bounds.t -> int list
(** Node ids in scheduling order (highest priority first). The order is a
    linear extension of the data-dependency partial order: predecessors
    always appear before their successors. *)
