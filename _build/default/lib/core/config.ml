type chaining = {
  prop_delay : Dfg.Op.kind -> float;
  clock : float;
}

type t = {
  delays : Dfg.Op.kind -> int;
  pipelined : Dfg.Op.kind -> bool;
  chaining : chaining option;
  functional_latency : int option;
  share_mutex : bool;
}

let default =
  {
    delays = (fun _ -> 1);
    pipelined = (fun _ -> false);
    chaining = None;
    functional_latency = None;
    share_mutex = true;
  }

let of_library lib =
  {
    default with
    delays = lib.Celllib.Library.cycles;
    pipelined =
      (fun kind ->
        match Celllib.Library.candidates lib kind with
        | [] -> false
        | cands -> List.for_all (fun a -> a.Celllib.Library.stages > 1) cands);
  }

let delay t kind = max 1 (t.delays kind)
let span t kind = if t.pipelined kind then 1 else delay t kind
