(** Configuration-aware time frames: picks plain or chaining-aware ASAP/ALAP
    depending on the options. Shared by MFS, MFSA and the baselines. *)

val step_admissible :
  Config.t -> Dfg.Graph.t -> start:int array -> offset:float array -> int ->
  int -> float option
(** [step_admissible cfg g ~start ~offset i s] decides whether operation [i]
    may start in step [s] given its already-placed predecessors, honouring
    multi-cycle finishes and — under chaining — intra-step offsets. Returns
    the operation's own start offset within the step, or [None]. *)

val bounds : Config.t -> Dfg.Graph.t -> cs:int -> (Dfg.Bounds.t, string) result
(** Frames within [cs] steps; under chaining the step components of the
    chained frames. *)

val min_cs : Config.t -> Dfg.Graph.t -> int
(** Smallest feasible time budget under the configuration. *)
