(** Nested-loop scheduling (paper §5.2).

    "For nested loops, the operations of the inner most loop are scheduled
    and allocated first, relative to the local time constraint. When this is
    done, the entire loop is treated as a single operation with an execution
    time that is equal to the loop's local time constraint."

    A loop body may contain {e placeholder} nodes (kind {!Dfg.Op.Mov})
    standing for child loops. Scheduling proceeds bottom-up: each child is
    scheduled against its own budget, then its placeholder is expanded into
    a chain of [budget] single-cycle pseudo-operations (the paper's §5.3
    reading of a k-cycle operation), and the parent is scheduled. *)

type tree = {
  body : Dfg.Graph.t;
  budget : int;  (** Local time constraint, in control steps. *)
  children : (string * tree) list;
      (** Child loops, keyed by the placeholder node name in [body]. *)
}

type scheduled = {
  loop_schedule : Schedule.t;
      (** Schedule of the (expanded) loop body; placeholder chains appear as
          class ["mov"] pseudo-operations. *)
  loop_children : (string * scheduled) list;
}

val add_iteration_control :
  Dfg.Graph.t -> counter:string -> bound:string -> (Dfg.Graph.t, string) result
(** §5.2: "This can be done by adding two more operations (addition and
    comparison or increment and comparison) into the DFG corresponding to
    the body of the loop." Adds inputs [counter]/[bound] (if missing), the
    increment [counter__next = counter + c1] and the continuation test
    [counter__continue = counter__next < bound], so the loop body carries
    its own iteration control when scheduled against the local budget.
    Errors when either name collides with an existing node. *)

val expand_placeholder :
  Dfg.Graph.t -> name:string -> cycles:int -> (Dfg.Graph.t, string) result
(** Replace node [name] with a chain of [cycles] unit-delay pseudo-ops
    ([name__1] .. [name__cycles-1], final link keeping [name] so consumers
    stay wired). Errors when [name] is missing or [cycles < 1]. *)

val schedule_nested :
  ?config:Config.t -> tree -> (scheduled, string) result
(** Bottom-up nested scheduling; each level runs time-constrained MFS
    against its own budget. Errors bubble up with the loop path prefixed. *)

type allocated = {
  alloc_outcome : Mfsa.outcome;
      (** Datapath of the (expanded) loop body; the placeholder chains
          occupy Mov-capable units standing for the child controllers. *)
  alloc_children : (string * allocated) list;
}

val allocate_nested :
  ?config:Config.t -> ?style:Mfsa.style -> library:Celllib.Library.t ->
  tree -> (allocated, string) result
(** §5.2 in full: "the operations of the inner most loop are scheduled and
    allocated first" — every level runs MFSA against its own budget, so
    each loop gets its own datapath; a parent sees a child only as the
    placeholder chain's time. *)

val total_cost : allocated -> float
(** Sum of the datapath areas over all loop levels. *)

val total_steps : scheduled -> int
(** Steps of one outermost iteration (child iterations occupy their
    placeholder chains inside the parent budget, so they are already
    counted). *)
