type pos = { col : int; step : int }

type rect = { col_lo : int; col_hi : int; step_lo : int; step_hi : int }

let empty_rect = { col_lo = 1; col_hi = 0; step_lo = 1; step_hi = 0 }

let rect_is_empty r = r.col_lo > r.col_hi || r.step_lo > r.step_hi

let rect_mem r p =
  p.col >= r.col_lo && p.col <= r.col_hi && p.step >= r.step_lo
  && p.step <= r.step_hi

let rect_positions r =
  if rect_is_empty r then []
  else
    List.concat
      (List.init
         (r.step_hi - r.step_lo + 1)
         (fun i ->
           let step = r.step_lo + i in
           List.init
             (r.col_hi - r.col_lo + 1)
             (fun j -> { col = r.col_lo + j; step })))

let primary ~step_lo ~step_hi ~max_cols =
  { col_lo = 1; col_hi = max_cols; step_lo; step_hi }

let redundant ~current ~max_cols ~step_lo ~step_hi =
  { col_lo = current + 1; col_hi = max_cols; step_lo; step_hi }

let move_frame_set ~pf ~rf ~forbidden =
  List.filter
    (fun p -> (not (rect_mem rf p)) && not (forbidden p.step))
    (rect_positions pf)

let move_frame ~pf ~rf ~forbidden ~free =
  List.filter free (move_frame_set ~pf ~rf ~forbidden)

let pp_pos ppf p = Format.fprintf ppf "(fu%d,s%d)" p.col p.step

let pp_rect ppf r =
  if rect_is_empty r then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf "[fu%d..%d]x[s%d..%d]" r.col_lo r.col_hi r.step_lo
      r.step_hi
