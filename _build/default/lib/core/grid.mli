(** Occupancy of the 2-D placement table for one FU type (paper Fig. 1).

    A placement occupies [span] consecutive steps of one column (one step for
    operations running on pipelined units, which only block their issue
    slot). Two placements may share cells when the operations are mutually
    exclusive (§5.1). Under functional pipelining with latency [L], steps
    congruent modulo [L] conflict because successive loop instances overlap
    (§5.5.2). *)

type t

val create : steps:int -> cols:int -> t

val steps : t -> int
val cols : t -> int

val ensure_cols : t -> int -> unit
(** Grow the table to at least the given number of columns. *)

val place : t -> op:int -> col:int -> step:int -> span:int -> unit
(** Record a placement. Steps beyond the horizon are an error.
    @raise Invalid_argument on out-of-range coordinates. *)

val clear : t -> unit
(** Remove every placement (used by local rescheduling restarts). *)

val conflicts :
  t -> latency:int option -> col:int -> step:int -> span:int -> int list
(** Ops already occupying any cell the candidate placement would use, with
    cells compared modulo [latency] when given. *)

val free :
  t -> exclusive:(int -> int -> bool) -> latency:int option ->
  op:int -> span:int -> Frames.pos -> bool
(** Whether the candidate placement at [pos] causes no conflict (any
    occupant must be mutually exclusive with [op]). *)

val occupants : t -> col:int -> step:int -> int list
(** Ops occupying a cell (without modulo folding). *)

val used_cols : t -> int
(** Highest column index holding at least one placement; 0 when empty. *)

val placements : t -> (int * int * int * int) list
(** All placements as [(op, col, step, span)], in placement order. *)
