lib/core/mfs.mli: Config Dfg Liapunov Schedule
