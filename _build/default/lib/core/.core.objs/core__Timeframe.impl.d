lib/core/timeframe.ml: Array Config Dfg Float List
