lib/core/mfsa.mli: Celllib Config Dfg Rtl Schedule
