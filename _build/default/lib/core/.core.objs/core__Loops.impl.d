lib/core/loops.ml: Dfg List Mfs Mfsa Printf Result Rtl Schedule
