lib/core/config.mli: Celllib Dfg
