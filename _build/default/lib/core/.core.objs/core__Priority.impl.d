lib/core/priority.ml: Array Config Dfg List
