lib/core/liapunov.mli: Frames
