lib/core/pipeline.ml: Array Config Dfg List Option Printf Schedule String
