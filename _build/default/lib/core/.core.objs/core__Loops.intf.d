lib/core/loops.mli: Celllib Config Dfg Mfsa Schedule
