lib/core/config.ml: Celllib Dfg List
