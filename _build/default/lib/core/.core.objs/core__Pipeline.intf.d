lib/core/pipeline.mli: Config Dfg Schedule
