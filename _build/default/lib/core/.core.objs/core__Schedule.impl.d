lib/core/schedule.ml: Array Config Dfg Format List Printf String
