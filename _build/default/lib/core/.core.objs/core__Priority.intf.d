lib/core/priority.mli: Config Dfg
