lib/core/liapunov.ml: Frames List
