lib/core/timeframe.mli: Config Dfg
