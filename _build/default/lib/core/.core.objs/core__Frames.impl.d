lib/core/frames.ml: Format List
