lib/core/grid.mli: Frames
