lib/core/mfsa.ml: Array Celllib Config Dfg Float Hashtbl List Option Printf Priority Rtl Schedule String Timeframe
