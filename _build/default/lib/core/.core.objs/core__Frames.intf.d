lib/core/frames.mli: Format
