lib/core/schedule.mli: Config Dfg Format
