lib/core/grid.ml: Frames List Printf
