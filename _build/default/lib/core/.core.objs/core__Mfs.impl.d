lib/core/mfs.ml: Array Config Dfg Frames Grid Hashtbl Liapunov List Option Printf Priority Result Schedule Timeframe
