lib/workloads/classic.ml: Dfg Fun List Printf
