lib/workloads/prng.ml: Int64 List
