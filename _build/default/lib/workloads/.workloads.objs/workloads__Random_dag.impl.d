lib/workloads/random_dag.ml: Array Dfg List Printf Prng
