lib/workloads/random_dag.mli: Dfg
