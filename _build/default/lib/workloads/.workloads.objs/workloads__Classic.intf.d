lib/workloads/classic.mli: Dfg
