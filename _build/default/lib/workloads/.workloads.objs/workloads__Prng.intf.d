lib/workloads/prng.mli:
