(** Deterministic splitmix64 PRNG, so random workloads and property-test
    inputs are reproducible across runs and machines (no dependence on the
    stdlib Random state). *)

type t

val create : int -> t
(** Seeded generator. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1]. [bound] must be
    positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val bool : t -> bool
