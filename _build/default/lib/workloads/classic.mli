(** The six "design examples from the literature" (paper §6).

    The paper does not name its examples; the op alphabets and time budgets
    of Table 1 match the standard HLS benchmark set of the era, which we use
    here (see DESIGN.md §3 for the substitution note). Each value is a
    freshly built, validated DFG. *)

val tseng : unit -> Dfg.Graph.t
(** Example 1 — FACET/Tseng-style example over the [* + - = & |] alphabet:
    T=4 needs two adders, T=5 one unit of each kind. *)

val chained_sum : unit -> Dfg.Graph.t
(** Example 2 — pure [+ -] chains; with a clock period fitting two ALU
    delays, chaining compresses the schedule (feature "C"). *)

val diffeq : unit -> Dfg.Graph.t
(** The HAL differential-equation solver (y'' + 3xy' + 3y = 0 inner loop):
    6 [*], 2 [+], 2 [-], 1 [<]; critical path 4. Used by the examples and
    the MFSA experiments. *)

val facet : unit -> Dfg.Graph.t
(** FACET-style mixed arithmetic/logic graph over [+ - & |] with short
    logic delays — a second chaining workload. *)

val ar_filter : unit -> Dfg.Graph.t
(** Example 3 — AR lattice-ladder filter (4 sections): 13 [*], 8 [+],
    4 [-]; the loop body used for functional pipelining. *)

val fir16 : unit -> Dfg.Graph.t
(** Example 4 — 16-tap FIR filter: 16 [*], 15 [+] in a balanced adder
    tree. *)

val dct8 : unit -> Dfg.Graph.t
(** Example 5 — 8-point DCT butterfly network: 12 [*], mixed [+]/[-];
    two-cycle multiplication, structural pipelining. *)

val ewf : unit -> Dfg.Graph.t
(** Example 6 — fifth-order elliptic-wave-filter-shaped graph: 26 [+],
    8 [*], critical path 17 — the classic EWF profile (T = 17/19/21 rows of
    Table 1). *)

val biquad : unit -> Dfg.Graph.t
(** Two direct-form-II-transposed IIR biquad sections in cascade: 10 [*],
    4 [+], 4 [-] — an extra workload beyond the paper's six, for wider
    test coverage. *)

val cond_example : unit -> Dfg.Graph.t
(** A small if-then-else DFG with operations shared between the two branches
    — exercises mutual exclusion (§5.1) and {!Dfg.Mutex.merge_shared}. *)

val all : unit -> (string * Dfg.Graph.t) list
(** The six Table-1/Table-2 examples, keyed ["ex1" .. "ex6"]. *)

val by_name : string -> Dfg.Graph.t option
(** Lookup by key ("ex1".."ex6", "tseng", "chained", "diffeq", "facet",
    "ar", "fir16", "dct8", "ewf", "cond"). *)
