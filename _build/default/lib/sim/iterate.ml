type feedback = (string * string) list

let validate_feedback g ~feedback ~init =
  let bad_out =
    List.find_opt (fun (out, _) -> Dfg.Graph.find g out = None) feedback
  in
  let bad_in =
    List.find_opt
      (fun (_, inp) -> not (List.mem inp (Dfg.Graph.inputs g)))
      feedback
  in
  match (bad_out, bad_in) with
  | Some (out, _), _ -> Error (Printf.sprintf "feedback source %S is not a node" out)
  | _, Some (_, inp) -> Error (Printf.sprintf "feedback target %S is not an input" inp)
  | None, None ->
      let missing =
        List.find_opt (fun (_, inp) -> List.assoc_opt inp init = None) feedback
      in
      (match missing with
      | Some (_, inp) ->
          Error (Printf.sprintf "feedback input %S has no initial value" inp)
      | None -> Ok ())

let drive ~step_one g ~feedback ~consts ~init ~stream ~iterations =
  match validate_feedback g ~feedback ~init with
  | Error _ as e -> e
  | Ok () ->
      let rec go k state acc =
        if k >= iterations then Ok (List.rev acc)
        else
          let env = stream k @ state @ consts in
          match step_one ~env with
          | Error e -> Error (Printf.sprintf "iteration %d: %s" k e)
          | Ok values ->
              let next_state =
                List.map
                  (fun (out, inp) ->
                    match List.assoc_opt out values with
                    | Some v -> (inp, v)
                    | None ->
                        (* The feedback source was on an untaken branch:
                           hold the previous state value. *)
                        (inp, List.assoc inp state))
                  feedback
              in
              go (k + 1) next_state (values :: acc)
      in
      go 0 init []

let run dp ctrl ~feedback ~consts ~init ~stream ~iterations =
  drive
    ~step_one:(fun ~env ->
      Result.map (fun r -> r.Machine.values) (Machine.run dp ctrl ~env))
    dp.Rtl.Datapath.graph ~feedback ~consts ~init ~stream ~iterations

let reference g ~feedback ~consts ~init ~stream ~iterations =
  drive
    ~step_one:(fun ~env ->
      match Eval.run g env with
      | Error _ as e -> e
      | Ok values ->
          (* Keep only active nodes, mirroring the machine's behaviour. *)
          Ok
            (List.filter_map
               (fun nd ->
                 if Eval.active g ~values nd.Dfg.Graph.id then
                   Option.map
                     (fun v -> (nd.Dfg.Graph.name, v))
                     (Eval.value values nd.Dfg.Graph.name)
                 else None)
               (Dfg.Graph.nodes g)))
    g ~feedback ~consts ~init ~stream ~iterations

let check dp ctrl ~feedback ~consts ~init ~stream ~iterations =
  let g = dp.Rtl.Datapath.graph in
  match
    ( reference g ~feedback ~consts ~init ~stream ~iterations,
      run dp ctrl ~feedback ~consts ~init ~stream ~iterations )
  with
  | Error e, _ -> Error ("golden model: " ^ e)
  | _, Error e -> Error ("machine: " ^ e)
  | Ok golden, Ok measured ->
      let rec compare_iters k = function
        | [], [] -> Ok ()
        | gv :: grest, mv :: mrest ->
            let bad =
              List.find_opt
                (fun (name, v) -> List.assoc_opt name mv <> Some v)
                gv
            in
            (match bad with
            | Some (name, v) ->
                Error
                  (Printf.sprintf
                     "iteration %d: %s expected %d, machine computed %s" k name
                     v
                     (match List.assoc_opt name mv with
                     | Some x -> string_of_int x
                     | None -> "nothing"))
            | None -> compare_iters (k + 1) (grest, mrest))
        | _ -> Error "iteration count mismatch (internal)"
      in
      compare_iters 0 (golden, measured)
