(** Multi-iteration execution: run a synthesised loop body over a stream of
    samples, feeding designated outputs back into inputs between iterations
    — a filter processing a signal, which is what the paper's DSP behaviours
    (AR lattice, elliptic wave filter, biquads) are for.

    Iteration [k] reads fresh per-sample inputs from [stream k], constant
    inputs from [consts], and state inputs from the previous iteration's
    fed-back outputs. *)

type feedback = (string * string) list
(** [(output_value, input_name)]: after each iteration, the value computed
    for [output_value] becomes the next iteration's [input_name]. *)

val run :
  Rtl.Datapath.t -> Rtl.Controller.t -> feedback:feedback ->
  consts:Eval.env -> init:Eval.env -> stream:(int -> Eval.env) ->
  iterations:int -> ((string * int) list list, string) result
(** Values of every executed node, one list per iteration. [init] gives the
    state inputs' first-iteration values. Errors: machine failures, or a
    feedback entry naming an unknown value/input. *)

val reference :
  Dfg.Graph.t -> feedback:feedback -> consts:Eval.env -> init:Eval.env ->
  stream:(int -> Eval.env) -> iterations:int ->
  ((string * int) list list, string) result
(** The same iteration driven by the golden-model evaluator. *)

val check :
  Rtl.Datapath.t -> Rtl.Controller.t -> feedback:feedback ->
  consts:Eval.env -> init:Eval.env -> stream:(int -> Eval.env) ->
  iterations:int -> (unit, string) result
(** Machine vs golden model over the whole stream, comparing every active
    node of every iteration. *)
