(* VCD identifiers: printable ASCII starting at '!'. *)
let ident k = Printf.sprintf "%c%c" (Char.chr (33 + (k mod 90))) (Char.chr (33 + (k / 90)))

let binary_of_int width v =
  String.init width (fun i ->
      if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let width = 32

let emit ?(design_name = "design") dp (r : Machine.run_result) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_regs = Array.length r.Machine.final_regs in
  let alus = List.map (fun a -> a.Rtl.Datapath.a_id) dp.Rtl.Datapath.alus in
  let state_id = ident 0 in
  let reg_id k = ident (1 + k) in
  let alu_id a = ident (1 + n_regs + a) in
  add "$date reproduction run $end\n";
  add "$version mfs-synth simulator $end\n";
  add "$timescale 1 ns $end\n";
  add "$scope module %s $end\n" design_name;
  add "$var wire 8 %s state $end\n" state_id;
  for k = 0 to n_regs - 1 do
    add "$var reg %d %s reg_%d [%d:0] $end\n" width (reg_id k) k (width - 1)
  done;
  List.iter
    (fun a -> add "$var wire %d %s alu_out_%d [%d:0] $end\n" width (alu_id a) a (width - 1))
    alus;
  add "$upscope $end\n$enddefinitions $end\n";
  (* Initial values: everything undefined. *)
  add "#0\n$dumpvars\nb%s %s\n" (binary_of_int 8 0) state_id;
  for k = 0 to n_regs - 1 do
    add "bx %s\n" (reg_id k)
  done;
  List.iter (fun a -> add "bx %s\n" (alu_id a)) alus;
  add "$end\n";
  let prev_regs = Array.make n_regs None in
  let prev_wires = ref [] in
  List.iter
    (fun snap ->
      add "#%d\n" snap.Machine.snap_step;
      add "b%s %s\n" (binary_of_int 8 snap.Machine.snap_step) state_id;
      Array.iteri
        (fun k v ->
          if v <> prev_regs.(k) then begin
            (match v with
            | Some x -> add "b%s %s\n" (binary_of_int width x) (reg_id k)
            | None -> add "bx %s\n" (reg_id k));
            prev_regs.(k) <- v
          end)
        snap.Machine.snap_regs;
      (* ALU wires are per-step combinational values. *)
      List.iter
        (fun a ->
          let now = List.assoc_opt a snap.Machine.snap_wires in
          let before = List.assoc_opt a !prev_wires in
          if now <> before then
            match now with
            | Some x -> add "b%s %s\n" (binary_of_int width x) (alu_id a)
            | None -> add "bx %s\n" (alu_id a))
        alus;
      prev_wires := snap.Machine.snap_wires)
    r.Machine.trace;
  add "#%d\n" (List.length r.Machine.trace + 1);
  Buffer.contents buf

let write_file ~path ?design_name dp r =
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (emit ?design_name dp r))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
