lib/sim/equiv.ml: Dfg Eval Int64 List Machine Option Printf Rtl String
