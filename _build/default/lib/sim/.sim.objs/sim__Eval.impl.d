lib/sim/eval.ml: Dfg Hashtbl List Printf
