lib/sim/eval.mli: Dfg
