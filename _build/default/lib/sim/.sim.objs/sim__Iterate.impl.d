lib/sim/iterate.ml: Dfg Eval List Machine Option Printf Result Rtl
