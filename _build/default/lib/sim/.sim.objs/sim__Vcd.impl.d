lib/sim/vcd.ml: Array Buffer Char List Machine Out_channel Printf Rtl String
