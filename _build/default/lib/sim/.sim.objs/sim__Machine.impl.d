lib/sim/machine.ml: Array Dfg Hashtbl List Option Printf Rtl
