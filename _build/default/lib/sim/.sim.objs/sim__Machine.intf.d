lib/sim/machine.mli: Eval Rtl
