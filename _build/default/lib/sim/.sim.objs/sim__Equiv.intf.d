lib/sim/equiv.mli: Eval Rtl
