lib/sim/iterate.mli: Dfg Eval Rtl
