lib/sim/vcd.mli: Machine Rtl
