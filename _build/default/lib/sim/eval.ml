type env = (string * int) list

let run g env =
  let values = Hashtbl.create 64 in
  let missing = ref None in
  List.iter
    (fun v ->
      match List.assoc_opt v env with
      | Some x -> Hashtbl.replace values v x
      | None -> if !missing = None then missing := Some v)
    (Dfg.Graph.inputs g);
  match !missing with
  | Some v -> Error (Printf.sprintf "input %S missing from environment" v)
  | None ->
      List.iter
        (fun i ->
          let nd = Dfg.Graph.node g i in
          let args =
            List.map (fun a -> Hashtbl.find values a) nd.Dfg.Graph.args
          in
          Hashtbl.replace values nd.Dfg.Graph.name
            (Dfg.Op.eval nd.Dfg.Graph.kind args))
        (Dfg.Graph.topological g);
      Ok
        (List.map
           (fun nd -> (nd.Dfg.Graph.name, Hashtbl.find values nd.Dfg.Graph.name))
           (Dfg.Graph.nodes g)
        @ env)

let value values name = List.assoc_opt name values

let active g ~values i =
  List.for_all
    (fun (c, arm) ->
      match List.assoc_opt c values with
      | None -> false
      | Some v -> (v <> 0) = arm)
    (Dfg.Graph.node g i).Dfg.Graph.guards
