(** Value-change-dump (VCD) export of a machine run — open the synthesised
    design's execution in GTKWave or any waveform viewer.

    One timescale unit per control step; signals: the FSM state counter,
    every register, and every ALU output wire (shown as [x] in steps where
    the unit is idle). *)

val emit :
  ?design_name:string -> Rtl.Datapath.t -> Machine.run_result -> string
(** Render the recorded trace as VCD text. *)

val write_file :
  path:string -> ?design_name:string -> Rtl.Datapath.t -> Machine.run_result ->
  (unit, string) result
