(** Reference evaluation of a DFG on concrete integer inputs — the golden
    model the RTL machine is checked against. *)

type env = (string * int) list
(** Values of the primary inputs. *)

val run : Dfg.Graph.t -> env -> ((string * int) list, string) result
(** Every node's value under pure dataflow semantics (guards ignored: a
    value is computed whether or not its branch is taken). Errors when an
    input is missing from the environment. *)

val value : (string * int) list -> string -> int option

val active : Dfg.Graph.t -> values:(string * int) list -> int -> bool
(** Whether the node's guards are all satisfied: condition value non-zero
    for a [true] arm, zero for a [false] arm. *)
