type alu_kind = {
  aname : string;
  ops : Op_set.t;
  area : float;
  stages : int;
}

type t = {
  alus : alu_kind list;
  mux_cost : int -> float;
  reg_cost : float;
  cycles : Dfg.Op.kind -> int;
  prop_delay : Dfg.Op.kind -> float;
}

(* Per-capability functional area (µm², loosely NCR-scaled: a multiplier is
   an order of magnitude bigger than an adder). *)
let capability_area : Dfg.Op.kind -> float = function
  | Mul -> 12500.
  | Div -> 14500.
  | Mod -> 14500.
  | Add -> 1800.
  | Sub -> 1950.
  | Shl | Shr -> 1500.
  | Lt | Le | Gt | Ge -> 950.
  | Eq | Ne -> 800.
  | And | Or | Xor -> 620.
  | Not | Neg -> 400.
  | Mov -> 250.

let alu_overhead = 800.
let merge_discount = 0.55

let make_alu ?(stages = 1) kinds =
  let ops = Op_set.of_list kinds in
  let areas = List.map capability_area (Op_set.elements ops) in
  let biggest = List.fold_left max 0. areas in
  let total = List.fold_left ( +. ) 0. areas in
  let area = alu_overhead +. biggest +. (merge_discount *. (total -. biggest)) in
  (* A pipelined unit pays register stages. *)
  let area = area +. (float_of_int (stages - 1) *. 500.) in
  let aname =
    if stages > 1 then Printf.sprintf "%s/p%d" (Op_set.name ops) stages
    else Op_set.name ops
  in
  { aname; ops; area; stages }

let candidates lib kind =
  List.filter (fun a -> Op_set.mem kind a.ops) lib.alus
  |> List.sort (fun a b -> compare a.area b.area)

let single_function lib kind =
  let singles =
    List.filter
      (fun a -> Op_set.equal a.ops (Op_set.singleton kind))
      lib.alus
  in
  match List.sort (fun a b -> compare a.area b.area) singles with
  | a :: _ -> a
  | [] -> make_alu [ kind ]

let max_alu_area lib =
  List.fold_left (fun acc a -> max acc a.area) 0. lib.alus

let max_mux_marginal lib =
  let best = ref 0. in
  for r = 1 to 32 do
    best := max !best (lib.mux_cost (r + 1) -. lib.mux_cost r)
  done;
  !best

let restrict lib kinds =
  let allowed = Op_set.of_list kinds in
  { lib with
    alus = List.filter (fun a -> Op_set.subset a.ops allowed) lib.alus }

let default_mux_cost r =
  if r <= 1 then 0.
  else
    let log2 =
      let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
      go 0 r
    in
    120. +. (140. *. float_of_int r) +. (60. *. float_of_int log2)

let default_reg_cost = 650.

let default_cycles : Dfg.Op.kind -> int = fun _ -> 1

let default_prop_delay : Dfg.Op.kind -> float = function
  | Mul | Div | Mod -> 80.
  | Add | Sub -> 40.
  | Shl | Shr -> 25.
  | Lt | Le | Gt | Ge | Eq | Ne -> 30.
  | And | Or | Xor | Not | Neg | Mov -> 12.

let heavy = function Dfg.Op.Mul | Div | Mod -> true | _ -> false

(* All subsets of [universe] of size <= max_ops, with heavy units combined
   with at most one light kind. *)
let combos ~max_ops universe =
  let rec subsets k = function
    | [] -> [ [] ]
    | _ when k = 0 -> [ [] ]
    | x :: rest ->
        let without = subsets k rest in
        let with_x = List.map (fun s -> x :: s) (subsets (k - 1) rest) in
        with_x @ without
  in
  subsets max_ops universe
  |> List.filter (fun s ->
         s <> []
         &&
         let heavies = List.filter heavy s in
         match heavies with
         | [] -> true
         | [ _ ] -> List.length s <= 2
         | _ -> false)

let generated ?(max_ops = 4) ?(mux_cost = default_mux_cost)
    ?(reg_cost = default_reg_cost) ?(cycles = default_cycles)
    ?(prop_delay = default_prop_delay) universe =
  let universe = List.sort_uniq compare universe in
  let alus = List.map make_alu (combos ~max_ops universe) in
  { alus; mux_cost; reg_cost; cycles; prop_delay }

let pp_alu ppf a = Format.fprintf ppf "%s:%.0fum2" a.aname a.area
