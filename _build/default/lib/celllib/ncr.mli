(** Default library standing in for the NCR ASIC data book [21].

    The real book is proprietary and long out of print; this synthetic
    instance keeps the properties Table 2 depends on: multifunction merging
    is cheaper than separate units, MUX cost grows non-linearly with fan-in,
    registers have a fixed area, and a multiplier dwarfs an adder. *)

val default : Library.t
(** Generated combinations (up to 4 light functions per ALU, heavy units
    combine with at most one other kind) over all operation kinds, with the
    default MUX/REG cost tables, unit cycle counts and chaining delays. *)

val for_graph : ?max_ops:int -> Dfg.Graph.t -> Library.t
(** {!default} restricted to the operation kinds the graph actually uses —
    the practical configuration for MFSA runs. *)

val two_cycle_multiplier : Library.t -> Library.t
(** Same library but multiplication (and division) take two control steps —
    the "2" rows of Table 1. *)

val pipelined_multiplier : Library.t -> Library.t
(** Two-cycle multiplication on two-stage pipelined units accepting one
    operation per cycle — structural pipelining ("S" rows of Table 1). *)
