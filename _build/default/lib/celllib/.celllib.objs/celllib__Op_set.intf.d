lib/celllib/op_set.mli: Dfg Set
