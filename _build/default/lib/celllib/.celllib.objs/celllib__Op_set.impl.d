lib/celllib/op_set.ml: Dfg List Set String
