lib/celllib/library.mli: Dfg Format Op_set
