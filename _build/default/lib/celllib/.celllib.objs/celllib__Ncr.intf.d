lib/celllib/ncr.mli: Dfg Library
