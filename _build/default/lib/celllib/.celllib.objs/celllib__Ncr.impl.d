lib/celllib/ncr.ml: Dfg Library List Op_set
