lib/celllib/library.ml: Dfg Format List Op_set Printf
