include Set.Make (struct
  type t = Dfg.Op.kind

  let compare = compare
end)

let name s =
  "(" ^ String.concat "" (List.map Dfg.Op.symbol (elements s)) ^ ")"
