let default = Library.generated Dfg.Op.all

let for_graph ?max_ops g =
  let kinds =
    List.sort_uniq compare
      (List.map (fun nd -> nd.Dfg.Graph.kind) (Dfg.Graph.nodes g))
  in
  match max_ops with
  | None -> Library.generated kinds
  | Some m -> Library.generated ~max_ops:m kinds

let heavy = function Dfg.Op.Mul | Div | Mod -> true | _ -> false

let two_cycle_multiplier lib =
  { lib with
    Library.cycles = (fun k -> if heavy k then 2 else lib.Library.cycles k) }

let pipelined_multiplier lib =
  let lib = two_cycle_multiplier lib in
  { lib with
    Library.alus =
      List.map
        (fun a ->
          if Op_set.exists heavy a.Library.ops then
            { a with Library.stages = 2;
              aname = a.Library.aname ^ "/p2";
              area = a.Library.area +. 500. }
          else a)
        lib.Library.alus }
