(** Sets of operation kinds (the capability set of an ALU). *)

include Set.S with type elt = Dfg.Op.kind

val name : t -> string
(** Table-2 style display name: the concatenated symbols in parentheses,
    e.g. ["(+-)"], ["(*+)"] . *)
