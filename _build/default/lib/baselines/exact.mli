(** Exact time-constrained scheduler by branch and bound.

    Finds a schedule within [cs] steps minimising the total number of
    functional units (optionally weighted per class by unit area). This is
    the "size explosion" class of methods the paper positions MFS against
    (§1: linear-programming formulations [3][9][10][11]): exact, but
    exponential — usable to a few dozen operations, and exactly what is
    needed to measure MFS's optimality gap and to reproduce the paper's
    runtime contrast.

    Supports multi-cycle operations; chaining and mutual-exclusion sharing
    are not modelled (the bound is therefore conservative for guarded
    graphs). *)

type outcome = {
  schedule : Core.Schedule.t;
  optimum : float;
      (** Best objective value found; minimal exactly when [proven]. *)
  explored : int;  (** Search nodes visited (size-explosion witness). *)
  proven : bool;
      (** Whether the search completed within the node budget — only then
          is [optimum] a certified minimum. *)
}

val run :
  ?config:Core.Config.t -> ?unit_weight:(string -> float) ->
  ?node_budget:int -> Dfg.Graph.t -> cs:int -> (outcome, string) result
(** [unit_weight] defaults to 1 per unit (minimise the unit count);
    [node_budget] (default 5 million) aborts runaway searches with an
    error rather than hanging. *)

val min_units : ?config:Core.Config.t -> Dfg.Graph.t -> cs:int -> (int, string) result
(** Just the proven-minimal total unit count. *)
