(** Simulated-annealing scheduler (the stochastic baseline the paper
    contrasts with: "probabilistic exploration and tuning problems in some
    energy-based approaches such as annealing", §1 and [8]).

    State: a start-step assignment within the ASAP/ALAP frames. Moves pick
    an operation and shift it one step inside its dependency-respecting
    window. Cost: per-class unit counts weighted by unit area, plus the
    register lower bound. Deterministic: fixed seed, geometric cooling. *)

type params = {
  seed : int;
  initial_temp : float;
  cooling : float;  (** Geometric factor per sweep, in (0,1). *)
  sweeps : int;  (** Each sweep attempts [ops] moves. *)
}

val default_params : params
(** seed 1, T0 = 50, cooling 0.95, 150 sweeps. *)

val cost :
  ?unit_area:(string -> float) -> Core.Config.t -> Dfg.Graph.t ->
  start:int array -> cs:int -> float
(** The annealer's objective on a given assignment (exposed for tests). *)

val run :
  ?config:Core.Config.t -> ?params:params ->
  ?unit_area:(string -> float) -> Dfg.Graph.t -> cs:int ->
  (Core.Schedule.t, string) result
