(** Force-directed scheduling (Paulin & Knight, HAL [6]) — the
    time-constrained baseline the paper's Table 2 comparison references.

    Each unscheduled operation is distributed uniformly over its time frame;
    per-class distribution graphs sum those probabilities per step. The
    algorithm repeatedly commits the (operation, step) assignment with the
    lowest total force — self force plus the force change induced in direct
    predecessors/successors whose frames shrink — then recomputes frames. *)

val distribution :
  Core.Config.t -> Dfg.Graph.t -> Dfg.Bounds.t -> string ->
  float array
(** Distribution graph of one FU class over steps 1..cs (index 0 unused). *)

val run :
  ?config:Core.Config.t -> Dfg.Graph.t -> cs:int ->
  (Core.Schedule.t, string) result
(** Schedule within [cs] steps, minimising peak per-class concurrency. *)
