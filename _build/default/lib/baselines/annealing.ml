type params = {
  seed : int;
  initial_temp : float;
  cooling : float;
  sweeps : int;
}

let default_params =
  { seed = 1; initial_temp = 50.0; cooling = 0.95; sweeps = 150 }

(* Local splitmix so runs do not depend on stdlib Random state. *)
type rng = { mutable s : int64 }

let rand_next r =
  let open Int64 in
  r.s <- add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let rand_int r bound = Int64.to_int (Int64.shift_right_logical (rand_next r) 2) mod bound
let rand_float r = Int64.to_float (Int64.shift_right_logical (rand_next r) 11) /. 9007199254740992.0

let default_unit_area klass =
  Celllib.Library.(make_alu [ Option.value ~default:Dfg.Op.Add (Dfg.Op.of_string klass) ]).Celllib.Library.area

let cost ?(unit_area = default_unit_area) cfg g ~start ~cs =
  let counts =
    Dfg.Bounds.concurrency ~delays:(Core.Config.delay cfg) g ~start ~cs
  in
  let units =
    List.fold_left (fun acc (c, k) -> acc +. (unit_area c *. float_of_int k)) 0. counts
  in
  let ivs =
    Rtl.Lifetime.intervals g ~start
      ~delay:(fun i ->
        Core.Config.delay cfg (Dfg.Graph.node g i).Dfg.Graph.kind)
      ~cs
  in
  units +. (650.0 *. float_of_int (Rtl.Lifetime.max_overlap ivs))

(* Dependency-respecting window for moving op [i] while others stay put. *)
let window cfg g bounds ~start i =
  let delay j = Core.Config.delay cfg (Dfg.Graph.node g j).Dfg.Graph.kind in
  let lo =
    List.fold_left
      (fun acc p -> max acc (start.(p) + delay p))
      bounds.Dfg.Bounds.asap.(i) (Dfg.Graph.preds g i)
  in
  let hi =
    List.fold_left
      (fun acc s -> min acc (start.(s) - delay i))
      bounds.Dfg.Bounds.alap.(i) (Dfg.Graph.succs g i)
  in
  (lo, hi)

let run ?(config = Core.Config.default) ?(params = default_params)
    ?unit_area g ~cs =
  if Dfg.Graph.num_nodes g = 0 then Error "annealing: empty graph"
  else
    match Core.Timeframe.bounds config g ~cs with
    | Error _ as e -> e
    | Ok bounds ->
        let n = Dfg.Graph.num_nodes g in
        let start = Array.copy bounds.Dfg.Bounds.asap in
        let rng = { s = Int64.of_int params.seed } in
        let current = ref (cost ?unit_area config g ~start ~cs) in
        let best = ref !current in
        let best_start = ref (Array.copy start) in
        let temp = ref params.initial_temp in
        for _sweep = 1 to params.sweeps do
          for _m = 1 to n do
            let i = rand_int rng n in
            let lo, hi = window config g bounds ~start i in
            if hi > lo then begin
              let old = start.(i) in
              let candidate = lo + rand_int rng (hi - lo + 1) in
              if candidate <> old then begin
                start.(i) <- candidate;
                let next = cost ?unit_area config g ~start ~cs in
                let accept =
                  next <= !current
                  || rand_float rng < exp ((!current -. next) /. !temp)
                in
                if accept then begin
                  current := next;
                  if next < !best then begin
                    best := next;
                    best_start := Array.copy start
                  end
                end
                else start.(i) <- old
              end
            end
          done;
          temp := !temp *. params.cooling
        done;
        let start = !best_start in
        let col = Colbind.columns config g ~start in
        Ok (Core.Schedule.make ~col ~config ~cs g start)
