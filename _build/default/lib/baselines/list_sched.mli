(** List scheduling baselines (the class of algorithms MFS is compared
    against, paper §1: Slicer [4] and conditional deferment [3]).

    Priority is the delay-weighted longest path to a sink (critical-path
    priority); ready operations are issued in priority order onto free
    units. *)

val priority : Core.Config.t -> Dfg.Graph.t -> int -> int
(** Longest delay-weighted path from the node to any sink (inclusive). *)

val resource :
  ?config:Core.Config.t -> Dfg.Graph.t -> limits:(string * int) list ->
  (Core.Schedule.t, string) result
(** Resource-constrained: minimise steps with at most [limits] units per
    class (classes absent from [limits] get one unit). *)

val time :
  ?config:Core.Config.t -> Dfg.Graph.t -> cs:int ->
  (Core.Schedule.t, string) result
(** Time-constrained by conditional deferment: start from the uniform
    lower bound [ceil(N_c/cs)] units per class and raise the limit of
    whichever class first misses a deadline, until the budget is met. *)
