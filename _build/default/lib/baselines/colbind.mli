(** FU-instance binding for schedulers that only pick control steps: packs
    each class's execution intervals onto unit columns with the left-edge
    greedy, so baseline schedules carry the same [col] structure MFS
    produces and go through the same {!Core.Schedule.check}. *)

val columns : Core.Config.t -> Dfg.Graph.t -> start:int array -> int array
(** 1-based column per node; mutually-exclusive operations may share a
    column cell when the configuration allows it, and functional-latency
    folding is honoured. *)
