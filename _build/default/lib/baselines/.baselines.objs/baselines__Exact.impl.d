lib/baselines/exact.ml: Array Colbind Core Dfg Hashtbl List
