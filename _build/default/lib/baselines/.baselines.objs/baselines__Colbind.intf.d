lib/baselines/colbind.mli: Core Dfg
