lib/baselines/fds.ml: Array Colbind Core Dfg List Option String
