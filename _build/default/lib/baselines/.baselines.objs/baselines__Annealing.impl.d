lib/baselines/annealing.ml: Array Celllib Colbind Core Dfg Int64 List Option Rtl
