lib/baselines/fds.mli: Core Dfg
