lib/baselines/exact.mli: Core Dfg
