lib/baselines/list_sched.mli: Core Dfg
