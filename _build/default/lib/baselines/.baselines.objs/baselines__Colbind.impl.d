lib/baselines/colbind.ml: Array Core Dfg List String
