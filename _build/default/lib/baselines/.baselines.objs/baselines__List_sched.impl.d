lib/baselines/list_sched.ml: Array Colbind Core Dfg Hashtbl List Option Printf
