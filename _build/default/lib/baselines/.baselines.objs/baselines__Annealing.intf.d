lib/baselines/annealing.mli: Core Dfg
