(** Textual DFG format, so workloads can live in data files and the CLI can
    operate on user designs.

    Grammar (one declaration per line; [#] starts a comment):
    {v
    input  <name> <name> ...
    <name> = <op> <arg> [<arg>] [@ <guard> ...]
    v}
    where [<op>] is an {!Op.kind} mnemonic or symbol ([mul] or [*]), and a
    guard is a condition value name, prefixed with [!] for the false arm.
    Example:
    {v
    input x dx three
    m1 = * three x
    s1 = + m1 dx @ !c
    v} *)

val parse : string -> (Graph.t, string) result
(** Parse a whole source text. Errors are prefixed with the line number. *)

val parse_file : string -> (Graph.t, string) result
(** Read and parse a file; I/O failures are returned as [Error]. *)

val to_source : Graph.t -> string
(** Render a graph back to the textual format; [parse (to_source g)]
    reconstructs an identical graph. *)
