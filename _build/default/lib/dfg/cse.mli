(** Common-subexpression elimination.

    The classic benchmarks deliberately repeat work (HAL's diff-eq computes
    [u*dx] twice); real front ends also produce duplicates. CSE merges
    nodes computing the same value in compatible conditional contexts,
    complementing {!Mutex.merge_shared} (which merges across
    mutually-exclusive branches). *)

val eliminate : Graph.t -> (Graph.t, string) result
(** Merge nodes with the same kind and operands (order-insensitive for
    commutative kinds) whose guard sets are equal, keeping the
    lowest-id node and rewiring consumers. Runs to a fixpoint, so chains
    of duplicates collapse. *)

val savings : Graph.t -> int
(** Number of operations CSE would remove. *)
