(** Conditional-branch preprocessing (paper §5.1).

    Operations appearing identically in mutually-exclusive branches of a
    conditional are redundant: "we remove all of the operations which are
    shared between branches except one of them". *)

val shared_pairs : Graph.t -> (int * int) list
(** Pairs [(keep, drop)] of mutually-exclusive nodes computing the same
    value: same kind and same multiset of operands (order-insensitive for
    commutative kinds). The kept node is the one with the smaller id. *)

val merge_shared : Graph.t -> (Graph.t, string) result
(** Rebuild the graph with each [drop] node removed; consumers of the dropped
    value are rewired to the kept one, whose guards become the intersection
    of the two guard sets (the computation is common to both branches). *)
