lib/dfg/bounds.mli: Graph Op
