lib/dfg/parser.ml: Buffer Graph In_channel List Op Printf String
