lib/dfg/frontend.ml: Graph In_channel List Op Option Printf String
