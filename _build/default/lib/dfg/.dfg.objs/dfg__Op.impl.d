lib/dfg/op.ml: Format List Printf String
