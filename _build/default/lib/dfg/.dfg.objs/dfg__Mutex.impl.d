lib/dfg/mutex.ml: Graph Hashtbl List Op String
