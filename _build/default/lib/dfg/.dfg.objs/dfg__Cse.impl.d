lib/dfg/cse.ml: Graph Hashtbl List Op String
