lib/dfg/dot.ml: Array Graph List Op Printf String
