lib/dfg/bounds.ml: Array Graph Hashtbl List Op Printf
