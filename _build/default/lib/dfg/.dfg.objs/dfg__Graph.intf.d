lib/dfg/graph.mli: Format Op
