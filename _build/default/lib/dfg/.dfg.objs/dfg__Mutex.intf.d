lib/dfg/mutex.mli: Graph
