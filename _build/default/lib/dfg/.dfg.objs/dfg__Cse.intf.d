lib/dfg/cse.mli: Graph
