lib/dfg/parser.mli: Graph
