lib/dfg/stats.ml: Array Bounds Format Graph List Printf String
