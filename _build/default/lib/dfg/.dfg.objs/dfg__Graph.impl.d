lib/dfg/graph.ml: Array Format Hashtbl List Op Option Printf Queue String
