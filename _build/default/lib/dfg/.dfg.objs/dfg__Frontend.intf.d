lib/dfg/frontend.mli: Graph
