let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let parse_guard w =
  if String.length w > 1 && w.[0] = '!' then
    (String.sub w 1 (String.length w - 1), false)
  else (w, true)

let rec split_at_sign acc = function
  | [] -> (List.rev acc, [])
  | "@" :: rest -> (List.rev acc, rest)
  | w :: rest -> split_at_sign (w :: acc) rest

let parse src =
  let b = Graph.Builder.create () in
  let lines = String.split_on_char '\n' src in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec go lineno = function
    | [] -> Graph.Builder.build b
    | line :: rest -> (
        let words = split_words (strip_comment line) in
        match words with
        | [] -> go (lineno + 1) rest
        | "input" :: names ->
            if names = [] then err lineno "input declaration without names"
            else begin
              List.iter (Graph.Builder.add_input b) names;
              go (lineno + 1) rest
            end
        | name :: "=" :: op :: tail -> (
            match Op.of_string op with
            | None -> err lineno (Printf.sprintf "unknown operation %S" op)
            | Some kind ->
                let args, guard_words = split_at_sign [] tail in
                let guards = List.map parse_guard guard_words in
                Graph.Builder.add_op ~guards b ~name kind args;
                go (lineno + 1) rest)
        | w :: _ ->
            err lineno (Printf.sprintf "cannot parse declaration near %S" w))
  in
  go 1 lines

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> parse src
  | exception Sys_error msg -> Error msg

let to_source g =
  let buf = Buffer.create 256 in
  (match Graph.inputs g with
  | [] -> ()
  | ins -> Buffer.add_string buf ("input " ^ String.concat " " ins ^ "\n"));
  List.iter
    (fun nd ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s %s" nd.Graph.name
           (Op.to_string nd.Graph.kind)
           (String.concat " " nd.Graph.args));
      (match nd.Graph.guards with
      | [] -> ()
      | gs ->
          Buffer.add_string buf " @ ";
          Buffer.add_string buf
            (String.concat " "
               (List.map (fun (c, arm) -> (if arm then "" else "!") ^ c) gs)));
      Buffer.add_char buf '\n')
    (Graph.nodes g);
  Buffer.contents buf
