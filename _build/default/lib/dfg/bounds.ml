type delays = Op.kind -> int

let unit_delays (_ : Op.kind) = 1

type t = { asap : int array; alap : int array; cs : int }

let delay_of delays nd = max 1 (delays nd.Graph.kind)

let asap_schedule ~delays g =
  let n = Graph.num_nodes g in
  let asap = Array.make n 1 in
  List.iter
    (fun i ->
      let earliest =
        List.fold_left
          (fun acc p ->
            let pd = delay_of delays (Graph.node g p) in
            max acc (asap.(p) + pd))
          1 (Graph.preds g i)
      in
      asap.(i) <- earliest)
    (Graph.topological g);
  asap

let critical_path ?(delays = unit_delays) g =
  let asap = asap_schedule ~delays g in
  let finish i =
    asap.(i) + delay_of delays (Graph.node g i) - 1
  in
  List.fold_left (fun acc i -> max acc (finish i)) 0 (Graph.topological g)

let compute ?(delays = unit_delays) g ~cs =
  if cs < 1 then Error (Printf.sprintf "time budget %d < 1" cs)
  else
    let n = Graph.num_nodes g in
    let asap = asap_schedule ~delays g in
    let alap = Array.make n 1 in
    let order = List.rev (Graph.topological g) in
    let infeasible = ref None in
    List.iter
      (fun i ->
        let d = delay_of delays (Graph.node g i) in
        let latest =
          match Graph.succs g i with
          | [] -> cs - d + 1
          | ss -> List.fold_left (fun acc s -> min acc (alap.(s) - d)) max_int ss
        in
        alap.(i) <- latest;
        if latest < asap.(i) && !infeasible = None then
          infeasible := Some (Graph.node g i).name)
      order;
    match !infeasible with
    | Some name ->
        Error
          (Printf.sprintf
             "infeasible: operation %S cannot fit in %d control steps \
              (critical path is %d)"
             name cs (critical_path ~delays g))
    | None -> Ok { asap; alap; cs }

let mobility t i = t.alap.(i) - t.asap.(i)

let concurrency ?(delays = unit_delays) g ~start ~cs =
  let classes = Graph.classes g in
  let profile = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace profile c (Array.make (cs + 1) 0)) classes;
  List.iter
    (fun nd ->
      let c = Op.fu_class nd.Graph.kind in
      let arr = Hashtbl.find profile c in
      let d = delay_of delays nd in
      for s = start.(nd.Graph.id) to min cs (start.(nd.Graph.id) + d - 1) do
        if s >= 1 then arr.(s) <- arr.(s) + 1
      done)
    (Graph.nodes g);
  List.map
    (fun c ->
      let arr = Hashtbl.find profile c in
      (c, Array.fold_left max 0 arr))
    classes

(* Chaining: each value carries (step, ready-offset). An op can start in the
   predecessor's step at the predecessor's finish offset when its own
   propagation delay still fits before the clock edge; otherwise it starts at
   offset 0 of the next step. *)

type chained = {
  ch_asap : (int * float) array;
  ch_alap : (int * float) array;
  ch_cs : int;
}

let eps = 1e-9

let check_fits ~prop_delay ~clock g =
  let offender =
    List.find_opt
      (fun nd -> prop_delay nd.Graph.kind > clock +. eps)
      (Graph.nodes g)
  in
  match offender with
  | Some nd ->
      Error
        (Printf.sprintf
           "operation %S (%s) has delay %.2f ns > clock period %.2f ns"
           nd.Graph.name
           (Op.to_string nd.Graph.kind)
           (prop_delay nd.Graph.kind) clock)
  | None -> Ok ()

let chained_asap ~prop_delay ~clock g =
  let n = Graph.num_nodes g in
  let start = Array.make n (1, 0.0) in
  List.iter
    (fun i ->
      let nd = Graph.node g i in
      let d = prop_delay nd.Graph.kind in
      (* Ready time of the latest-arriving operand, as (step, offset). *)
      let step, off =
        List.fold_left
          (fun (bs, bo) p ->
            let ps, po = start.(p) in
            let pd = prop_delay (Graph.node g p).Graph.kind in
            let fs, fo = (ps, po +. pd) in
            if fs > bs || (fs = bs && fo > bo) then (fs, fo) else (bs, bo))
          (1, 0.0) (Graph.preds g i)
      in
      if off +. d <= clock +. eps then start.(i) <- (step, off)
      else start.(i) <- (step + 1, 0.0))
    (Graph.topological g);
  start

let chained_critical_path ~prop_delay ~clock g =
  match check_fits ~prop_delay ~clock g with
  | Error _ as e -> e
  | Ok () ->
      let start = chained_asap ~prop_delay ~clock g in
      Ok (Array.fold_left (fun acc (s, _) -> max acc s) 0 start)

let compute_chained ~prop_delay ~clock g ~cs =
  match check_fits ~prop_delay ~clock g with
  | Error _ as e -> e
  | Ok () ->
      let n = Graph.num_nodes g in
      let ch_asap = chained_asap ~prop_delay ~clock g in
      (* Backward pass: latest (step, start offset) such that every successor
         still meets its own latest start. *)
      let ch_alap = Array.make n (cs, 0.0) in
      let infeasible = ref None in
      List.iter
        (fun i ->
          let nd = Graph.node g i in
          let d = prop_delay nd.Graph.kind in
          let latest =
            match Graph.succs g i with
            | [] -> (cs, clock -. d)
            | ss ->
                List.fold_left
                  (fun (bs, bo) s ->
                    let ls, lo = ch_alap.(s) in
                    (* Finish no later than the successor's latest start:
                       either chain within the successor's step, or complete
                       by the end of the previous step. *)
                    let cand_chain = (ls, lo -. d) in
                    let cand_prev = (ls - 1, clock -. d) in
                    let cand =
                      if snd cand_chain >= -.eps then cand_chain else cand_prev
                    in
                    if fst cand < bs || (fst cand = bs && snd cand < bo) then
                      cand
                    else (bs, bo))
                  (max_int, infinity) ss
          in
          ch_alap.(i) <- latest;
          let as_, ao = ch_asap.(i) in
          let ls, lo = latest in
          if (ls < as_ || (ls = as_ && lo < ao -. eps)) && !infeasible = None
          then infeasible := Some nd.Graph.name)
        (List.rev (Graph.topological g));
      (match !infeasible with
      | Some name ->
          Error
            (Printf.sprintf
               "infeasible under chaining: operation %S cannot fit in %d steps"
               name cs)
      | None -> Ok { ch_asap; ch_alap; ch_cs = cs })
