let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let node_lines g =
  List.map
    (fun nd ->
      Printf.sprintf "  %s [label=\"%s: %s\"];" nd.Graph.name
        (escape nd.Graph.name)
        (escape (Op.symbol nd.Graph.kind)))
    (Graph.nodes g)

let edge_lines g =
  List.concat_map
    (fun nd ->
      List.filter_map
        (fun arg ->
          match Graph.find g arg with
          | Some src -> Some (Printf.sprintf "  %s -> %s;" src.Graph.name nd.Graph.name)
          | None -> Some (Printf.sprintf "  %s -> %s;" arg nd.Graph.name))
        nd.Graph.args)
    (Graph.nodes g)

let input_lines g =
  List.map
    (fun i -> Printf.sprintf "  %s [shape=box];" i)
    (Graph.inputs g)

let of_graph ?(name = "dfg") g =
  String.concat "\n"
    (("digraph " ^ name ^ " {") :: input_lines g @ node_lines g @ edge_lines g
     @ [ "}" ])

let of_schedule ?(name = "schedule") g ~start =
  let cs = Array.fold_left max 0 start in
  let ranks =
    List.init cs (fun t ->
        let step = t + 1 in
        let members =
          List.filter (fun nd -> start.(nd.Graph.id) = step) (Graph.nodes g)
        in
        Printf.sprintf "  { rank=same; %s }"
          (String.concat " " (List.map (fun nd -> nd.Graph.name) members)))
  in
  String.concat "\n"
    (("digraph " ^ name ^ " {")
     :: input_lines g @ node_lines g @ edge_lines g @ ranks @ [ "}" ])
