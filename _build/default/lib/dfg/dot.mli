(** Graphviz export, for inspecting benchmark DFGs and schedules. *)

val of_graph : ?name:string -> Graph.t -> string
(** DOT source with one node per operation (labelled [name: symbol]) and one
    edge per data dependency. Primary inputs are drawn as plain boxes. *)

val of_schedule : ?name:string -> Graph.t -> start:int array -> string
(** Same, with nodes ranked by their scheduled control step. *)
