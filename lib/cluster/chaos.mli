(** Chaos harness for the cluster: plant real process faults under a
    real dispatcher and assert the invariants the design claims.

    The experiment, in one [run]:

    + an undisturbed single-host baseline run (ground truth);
    + a cluster run over forked [Worker] processes with planted faults —
      SIGKILL of a worker mid-lease, optionally a SIGSTOP half-open
      partition (heartbeats stop, process lingers), a slow-loris worker
      that registers and heartbeats but never finishes a lease, and a
      worker that delivers every result twice;
    + a warm [--resume] replay of the chaotic journal;
    + an all-remotes-dead run (endpoint bound, nobody dials) exercising
      local fallback.

    Checks: every job reaches a terminal verdict, exactly one final
    record per job in the journal, verdicts / failure counts / printed
    summary byte-identical to the baseline (chaos must not change the
    exit code), failover and fencing counters actually moved, the warm
    resume re-runs zero jobs and appends nothing, and the dead-cluster
    run completes in-process. *)

type config = {
  dir : string;  (** Scratch directory (sockets, journals). *)
  workers : int;
  jobs : int;
  kill_worker : bool;  (** SIGKILL worker 0 after 2 completions. *)
  stop_worker : bool;  (** SIGSTOP worker 1 at half-way. *)
  slow_loris : bool;
  duplicate : bool;  (** Last worker sends every result twice. *)
  stage_seconds : float;
  deadline : float;
  seed : int;
  log : string -> unit;
}

val default_config : dir:string -> config

type check = { k_name : string; k_pass : bool; k_detail : string }

type report = {
  checks : check list;
  baseline_seconds : float;
  chaos_seconds : float;
  local_runs : int;
  remote_runs : int;
  fenced : int;
  releases : int;
  worker_deaths : int;
}

val passed : report -> bool
val report_json : report -> Batch.Jsonl.t

val print : report -> (string -> unit) -> unit
(** One PASS/FAIL line per check plus a counters line. *)

val run : config -> (report, Diag.t) result
(** [Error] only for environment problems (cannot bind, malformed
    workload); failed checks are data in the report. *)
