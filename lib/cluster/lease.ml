module Retry = Batch.Retry
module Jsonl = Batch.Jsonl

type config = {
  retry : Retry.policy;
  grace : float;
  heartbeat_window : float;
  warmup : float;
}

let default_config =
  {
    retry = Retry.backoff ~max_attempts:4 ~base_delay:0.05 ~max_delay:2.0 ();
    grace = 2.0;
    heartbeat_window = 3.0;
    warmup = 1.0;
  }

type wstate = {
  w_name : string;
  mutable w_capacity : int;
  mutable w_inflight : int;
  mutable w_last_seen : float;
  mutable w_libraries : string list;
  mutable w_alive : bool;
  mutable w_leased_total : int;
}

type phase =
  | Queued
  | Leased of { lw : string; l_expires : float }
  | Local
  | Finished

type entry = {
  e_id : string;
  e_order : int;
  mutable e_attempt : int;
  mutable e_deadline : float;
  mutable e_remote : bool;
  mutable e_phase : phase;
  mutable e_epoch : int;
  mutable e_tries : int;
  mutable e_prev_delay : float;
  mutable e_not_before : float;
}

type action =
  | Grant of {
      a_worker : string;
      a_job : string;
      a_epoch : int;
      a_attempt : int;
      a_deadline : float;
    }
  | Rescind of { a_worker : string; a_job : string; a_epoch : int }
  | Run_local of { a_job : string; a_attempt : int; a_deadline : float }
  | Expire of string

type t = {
  cfg : config;
  rng : Random.State.t;
  jobs : (string, entry) Hashtbl.t;
  mutable order : entry list;  (* reverse submission order *)
  workers : (string, wstate) Hashtbl.t;
  started : float;
  mutable seq : int;
  mutable fenced : int;
  mutable releases : int;
  mutable worker_deaths : int;
}

let create ?(seed = 0) ?(config = default_config) ~now () =
  {
    cfg = config;
    rng = Random.State.make [| seed; 0x1ea5e |];
    jobs = Hashtbl.create 64;
    order = [];
    workers = Hashtbl.create 8;
    started = now;
    seq = 0;
    fenced = 0;
    releases = 0;
    worker_deaths = 0;
  }

let fenced t = t.fenced
let releases t = t.releases
let worker_deaths t = t.worker_deaths

let pending t =
  Hashtbl.fold
    (fun _ e n -> if e.e_phase = Finished then n else n + 1)
    t.jobs 0

let submit t ~now ~id ~attempt ~deadline ~remote =
  match Hashtbl.find_opt t.jobs id with
  | Some e ->
      (* Resubmission: the verdict-level retry ladder re-runs the job
         (degraded) — a fresh attempt with a fresh transport budget. *)
      e.e_attempt <- attempt;
      e.e_deadline <- deadline;
      e.e_remote <- remote;
      e.e_phase <- Queued;
      e.e_tries <- 0;
      e.e_prev_delay <- 0.;
      e.e_not_before <- now
  | None ->
      let e =
        {
          e_id = id;
          e_order = t.seq;
          e_attempt = attempt;
          e_deadline = deadline;
          e_remote = remote;
          e_phase = Queued;
          e_epoch = 0;
          e_tries = 0;
          e_prev_delay = 0.;
          e_not_before = now;
        }
      in
      t.seq <- t.seq + 1;
      Hashtbl.replace t.jobs id e;
      t.order <- e :: t.order

let register t ~now ~name ~capacity ~libraries =
  Hashtbl.replace t.workers name
    {
      w_name = name;
      w_capacity = max 1 capacity;
      w_inflight = 0;
      w_last_seen = now;
      w_libraries = libraries;
      w_alive = true;
      w_leased_total = 0;
    }

let heartbeat t ~now ~name =
  match Hashtbl.find_opt t.workers name with
  | Some w -> w.w_last_seen <- now
  | None -> ()

(* Put a lost lease back in the queue under decorrelated-jitter backoff;
   the stale epoch keeps any late result a discard. *)
let requeue t ~now e =
  t.releases <- t.releases + 1;
  e.e_tries <- e.e_tries + 1;
  let delay = Retry.next_delay t.cfg.retry ~rng:t.rng ~prev:e.e_prev_delay in
  e.e_prev_delay <- delay;
  e.e_not_before <- now +. delay;
  e.e_phase <- Queued

let drop_worker t ~now name =
  match Hashtbl.find_opt t.workers name with
  | Some w when w.w_alive ->
      w.w_alive <- false;
      w.w_inflight <- 0;
      t.worker_deaths <- t.worker_deaths + 1;
      Hashtbl.iter
        (fun _ e ->
          match e.e_phase with
          | Leased { lw; _ } when lw = name -> requeue t ~now e
          | _ -> ())
        t.jobs;
      true
  | _ -> false

let disconnect t ~now ~name = ignore (drop_worker t ~now name)

let result t ~worker ~job ~epoch =
  match Hashtbl.find_opt t.jobs job with
  | None -> `Unknown
  | Some e -> (
      match e.e_phase with
      | Leased { lw; _ } when lw = worker && epoch = e.e_epoch ->
          e.e_phase <- Finished;
          (match Hashtbl.find_opt t.workers worker with
          | Some w when w.w_alive && w.w_inflight > 0 ->
              w.w_inflight <- w.w_inflight - 1
          | _ -> ());
          `Accept
      | Finished | Leased _ | Queued | Local ->
          t.fenced <- t.fenced + 1;
          `Stale)

let local_done t ~job =
  match Hashtbl.find_opt t.jobs job with
  | Some e when e.e_phase = Local -> e.e_phase <- Finished
  | _ -> ()

let alive_workers t =
  Hashtbl.fold (fun _ w acc -> if w.w_alive then w :: acc else acc) t.workers []

(* Most free capacity first; ties by name so scheduling is stable. *)
let pick_worker ws =
  let free w = w.w_capacity - w.w_inflight in
  List.fold_left
    (fun best w ->
      if free w <= 0 then best
      else
        match best with
        | None -> Some w
        | Some b ->
            if
              free w > free b
              || (free w = free b && String.compare w.w_name b.w_name < 0)
            then Some w
            else best)
    None ws

let tick t ~now ~local_ok =
  let actions = ref [] in
  let emit a = actions := a :: !actions in
  (* 1. Heartbeat liveness: a silent worker's leases fail over. *)
  Hashtbl.iter
    (fun name w ->
      if w.w_alive && now -. w.w_last_seen > t.cfg.heartbeat_window then
        if drop_worker t ~now name then emit (Expire name))
    t.workers;
  (* 2. Lease expiry: revoke and fail over (slow-loris worker — alive on
     the heartbeat plane, dead on the work plane). *)
  Hashtbl.iter
    (fun _ e ->
      match e.e_phase with
      | Leased { lw; l_expires } when now > l_expires ->
          let epoch = e.e_epoch in
          (match Hashtbl.find_opt t.workers lw with
          | Some w when w.w_alive ->
              if w.w_inflight > 0 then w.w_inflight <- w.w_inflight - 1;
              emit (Rescind { a_worker = lw; a_job = e.e_id; a_epoch = epoch })
          | _ -> ());
          requeue t ~now e
      | _ -> ())
    t.jobs;
  (* 3. Assignment, submission order. *)
  let warm = now -. t.started >= t.cfg.warmup in
  let ws = alive_workers t in
  List.iter
    (fun e ->
      if e.e_phase = Queued && now >= e.e_not_before then begin
        let go_local () =
          if local_ok then begin
            e.e_phase <- Local;
            emit
              (Run_local
                 {
                   a_job = e.e_id;
                   a_attempt = e.e_attempt;
                   a_deadline = e.e_deadline;
                 })
          end
        in
        if not e.e_remote then go_local ()
        else if Retry.exhausted t.cfg.retry ~attempt:e.e_tries && local_ok
        then go_local ()
        else
          match pick_worker ws with
          | Some w ->
              w.w_inflight <- w.w_inflight + 1;
              w.w_leased_total <- w.w_leased_total + 1;
              e.e_epoch <- e.e_epoch + 1;
              e.e_phase <-
                Leased
                  {
                    lw = w.w_name;
                    l_expires = now +. e.e_deadline +. t.cfg.grace;
                  };
              emit
                (Grant
                   {
                     a_worker = w.w_name;
                     a_job = e.e_id;
                     a_epoch = e.e_epoch;
                     a_attempt = e.e_attempt;
                     a_deadline = e.e_deadline;
                   })
          | None ->
              (* Every remote down (or none ever joined): degrade to
                 single-host execution once past warmup. *)
              if ws = [] && warm then go_local ()
      end)
    (List.rev t.order);
  List.rev !actions

let epoch_of t ~job =
  match Hashtbl.find_opt t.jobs job with
  | Some e -> Some e.e_epoch
  | None -> None

let attempt_of t ~job =
  match Hashtbl.find_opt t.jobs job with
  | Some e -> Some e.e_attempt
  | None -> None

let workers_json t ~now =
  Hashtbl.fold (fun _ w acc -> w :: acc) t.workers []
  |> List.sort (fun a b -> String.compare a.w_name b.w_name)
  |> List.map (fun w ->
         Jsonl.Obj
           [
             ("name", Jsonl.String w.w_name);
             ("alive", Jsonl.Bool w.w_alive);
             ("capacity", Jsonl.Int w.w_capacity);
             ("inflight", Jsonl.Int w.w_inflight);
             ("leased_total", Jsonl.Int w.w_leased_total);
             ("last_seen_age", Jsonl.Float (Float.max 0. (now -. w.w_last_seen)));
             ( "libraries",
               Jsonl.List
                 (List.map (fun l -> Jsonl.String l) w.w_libraries) );
           ])
