(** The [synth worker] engine: dial a dispatcher, register, execute
    leases through a local {!Batch.Pool}, heartbeat, and survive
    dispatcher restarts by reconnecting under the shared backoff policy.

    Crash-only by construction: the worker holds no durable state. Every
    lease it loses (its own crash, a revocation, a dropped connection)
    is the dispatcher's to replay; any result it delivers late or twice
    is fenced off by the lease epoch. *)

type config = {
  endpoint : Endpoint.t;
  name : string;  (** Cluster-unique; re-registration supersedes. *)
  capacity : int;  (** Concurrent leases (local pool width). *)
  heap_words : int option;  (** Per-job heap ceiling. *)
  heap_mb : int option;  (** Advertised in the registration. *)
  heartbeat_interval : float;
  reconnect : Batch.Retry.policy;
      (** Dial/redial schedule, shared shape with {!Serve.Client}. *)
  max_sessions : int;
      (** Consecutive failed dials before [cluster.disconnected];
          [max_int] = reconnect forever. *)
  libraries : string list;  (** Advertised warm cell-library variants. *)
  duplicate_results : bool;
      (** Chaos hook: send every result twice (fencing exercise). *)
  max_frame : int;
  log : string -> unit;
}

val default_config : endpoint:Endpoint.t -> name:string -> config

val run : ?stop:(unit -> bool) -> config -> (unit, Diag.t) result
(** Blocks until [stop ()] turns true ([Ok ()]) or the dial budget is
    exhausted ([cluster.disconnected]). A lost connection kills all
    in-flight lease attempts (their results would only be fenced
    discards) and redials with a fresh budget. *)
