module P = Serve.Protocol
module Frame = Serve.Frame
module Pool = Batch.Pool
module Journal = Batch.Journal
module Retry = Batch.Retry
module Jsonl = Batch.Jsonl
module Verdict = Batch.Verdict

type config = {
  endpoints : Endpoint.t list;
  local_workers : int;
  heap_words : int option;
  lease : Lease.config;
  local_fallback : bool;
  max_frame : int;
  log : string -> unit;
}

let default_config =
  {
    endpoints = [];
    local_workers = 1;
    heap_words = None;
    lease = Lease.default_config;
    local_fallback = true;
    max_frame = Jsonl.default_max_document_bytes;
    log = (fun (_ : string) -> ());
  }

(* Same crash-only connection idiom as the serve daemon: nonblocking
   reads through a frame decoder, writes buffered and flushed
   opportunistically, a vanished peer closes the connection. *)
type conn = {
  c_fd : Unix.file_descr;
  c_dec : Frame.decoder;
  mutable c_out : string;
  mutable c_name : string option;  (* set by a register frame *)
  mutable c_alive : bool;
}

let close_conn c =
  if c.c_alive then begin
    c.c_alive <- false;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let flush_conn c =
  if c.c_alive && c.c_out <> "" then begin
    let b = Bytes.unsafe_of_string c.c_out in
    let rec go off =
      if off >= Bytes.length b then off
      else
        match Unix.write c.c_fd b off (Bytes.length b - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            off
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (_, _, _) ->
            close_conn c;
            Bytes.length b
    in
    let off = go 0 in
    if c.c_alive then
      c.c_out <-
        (if off >= String.length c.c_out then ""
         else String.sub c.c_out off (String.length c.c_out - off))
  end

let enqueue c payload =
  if c.c_alive then begin
    c.c_out <- c.c_out ^ Frame.encode payload;
    flush_conn c
  end

type t = {
  cfg : config;
  table : Lease.t;
  pool : Pool.t;
  listeners : Unix.file_descr list;
  mutable conns : conn list;
  jobs : (string, Pool.job * Jsonl.t option) Hashtbl.t;
  mutable local_runs : int;
  mutable remote_runs : int;
  mutable finished : int;
}

let local_ok t = t.cfg.local_fallback || t.cfg.endpoints = []

let create ?(config = default_config) () =
  let rec bind acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match Endpoint.listen e with
        | Ok fd -> bind (fd :: acc) rest
        | Error d ->
            List.iter (fun fd -> try Unix.close fd with _ -> ()) acc;
            Error d)
  in
  match bind [] config.endpoints with
  | Error d -> Error d
  | Ok listeners ->
      Ok
        {
          cfg = config;
          table =
            Lease.create ~config:config.lease ~now:(Unix.gettimeofday ()) ();
          pool =
            Pool.create ~workers:config.local_workers
              ?heap_words:config.heap_words ();
          listeners;
          conns = [];
          jobs = Hashtbl.create 64;
          local_runs = 0;
          remote_runs = 0;
          finished = 0;
        }

let submit t ?(attempt = 1) ?wire ~deadline job =
  Hashtbl.replace t.jobs job.Pool.id (job, wire);
  let remote = wire <> None && t.listeners <> [] in
  Lease.submit t.table ~now:(Unix.gettimeofday ()) ~id:job.Pool.id ~attempt
    ~deadline ~remote

let pending t = Lease.pending t.table
let local_runs t = t.local_runs
let remote_runs t = t.remote_runs
let completed t = t.finished
let fenced t = Lease.fenced t.table
let releases t = Lease.releases t.table
let worker_deaths t = Lease.worker_deaths t.table

let fds t =
  t.listeners
  @ List.filter_map (fun c -> if c.c_alive then Some c.c_fd else None) t.conns
  @ Pool.worker_fds t.pool

let stats_json t ~now =
  Jsonl.Obj
    [
      ("pending", Jsonl.Int (pending t));
      ("completed", Jsonl.Int t.finished);
      ("local_runs", Jsonl.Int t.local_runs);
      ("remote_runs", Jsonl.Int t.remote_runs);
      ("fenced", Jsonl.Int (fenced t));
      ("releases", Jsonl.Int (releases t));
      ("worker_deaths", Jsonl.Int (worker_deaths t));
      ("workers", Jsonl.List (Lease.workers_json t.table ~now));
    ]

let accept_conns t =
  List.iter
    (fun lfd ->
      let rec loop () =
        match Unix.accept ~cloexec:true lfd with
        | fd, _ ->
            Unix.set_nonblock fd;
            t.conns <-
              {
                c_fd = fd;
                c_dec = Frame.decoder ~max_frame:t.cfg.max_frame ();
                c_out = "";
                c_name = None;
                c_alive = true;
              }
              :: t.conns;
            loop ()
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error (_, _, _) -> ()
      in
      loop ())
    t.listeners

let find_conn t name =
  List.find_opt
    (fun c -> c.c_alive && c.c_name = Some name)
    t.conns

let handle_control t c (env : P.envelope) ~now =
  match env.P.request with
  | P.Ping ->
      enqueue c
        (P.ok_response ~id:env.P.req_id (Jsonl.Obj [ ("pong", Jsonl.Bool true) ]))
  | P.Health | P.Stats ->
      enqueue c (P.ok_response ~id:env.P.req_id (stats_json t ~now))
  | _ ->
      enqueue c
        (P.error_response ~id:env.P.req_id
           (Diag.input ~code:"cluster.unsupported"
              "dispatcher socket accepts worker frames and ping/health/stats only"))

(* Returns the completions produced by accepted remote results. *)
let handle_payload t c payload ~now =
  match P.parse_cluster_msg ~max_bytes:t.cfg.max_frame payload with
  | Error d ->
      t.cfg.log (Diag.to_string d);
      enqueue c (P.error_response ~id:"?" d);
      []
  | Ok (P.Control env) ->
      handle_control t c env ~now;
      []
  | Ok (P.Worker (P.Register r)) ->
      (* A reconnecting worker re-registers under the same name; the
         fresh registration supersedes the dead connection's state. *)
      (match find_conn t r.P.g_worker with
      | Some old when old != c -> close_conn old
      | _ -> ());
      c.c_name <- Some r.P.g_worker;
      Lease.register t.table ~now ~name:r.P.g_worker
        ~capacity:r.P.g_capacity ~libraries:r.P.g_libraries;
      t.cfg.log (Printf.sprintf "cluster: worker %s registered (capacity %d)"
                   r.P.g_worker r.P.g_capacity);
      enqueue c
        (P.ok_response ~id:"register"
           (Jsonl.Obj [ ("worker", Jsonl.String r.P.g_worker) ]));
      []
  | Ok (P.Worker (P.Heartbeat { h_worker; _ })) ->
      Lease.heartbeat t.table ~now ~name:h_worker;
      []
  | Ok
      (P.Worker
        (P.Lease_result { u_job; u_epoch; u_attempt; u_seconds; u_verdict }))
    -> (
      let worker = Option.value ~default:"?" c.c_name in
      match Lease.result t.table ~worker ~job:u_job ~epoch:u_epoch with
      | `Accept -> (
          match Hashtbl.find_opt t.jobs u_job with
          | Some (job, _) ->
              t.remote_runs <- t.remote_runs + 1;
              [
                {
                  Pool.c_job = job;
                  c_attempt = u_attempt;
                  c_verdict = u_verdict;
                  c_seconds = u_seconds;
                };
              ]
          | None -> [])
      | `Stale | `Unknown ->
          t.cfg.log
            (Printf.sprintf "cluster: fenced result for %s (epoch %d from %s)"
               u_job u_epoch worker);
          [])

let read_conn t c ~now =
  if not c.c_alive then []
  else
    let buf = Bytes.create 65536 in
    let rec drain acc =
      match Unix.read c.c_fd buf 0 (Bytes.length buf) with
      | 0 ->
          (* Peer gone: requeue its leases under the backoff policy. *)
          (match c.c_name with
          | Some name -> Lease.disconnect t.table ~now ~name
          | None -> ());
          close_conn c;
          acc
      | n -> (
          match Frame.feed c.c_dec (Bytes.sub_string buf 0 n) with
          | Error d ->
              t.cfg.log (Diag.to_string d);
              (match c.c_name with
              | Some name -> Lease.disconnect t.table ~now ~name
              | None -> ());
              close_conn c;
              acc
          | Ok payloads ->
              drain
                (acc
                @ List.concat_map
                    (fun p -> handle_payload t c p ~now)
                    payloads))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          acc
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain acc
      | exception Unix.Unix_error (_, _, _) ->
          (match c.c_name with
          | Some name -> Lease.disconnect t.table ~now ~name
          | None -> ());
          close_conn c;
          acc
    in
    drain []

let apply_action t ~now = function
  | Lease.Grant { a_worker; a_job; a_epoch; a_attempt; a_deadline } -> (
      match (find_conn t a_worker, Hashtbl.find_opt t.jobs a_job) with
      | Some c, Some (_, Some wire) ->
          enqueue c
            (P.lease_msg ~job:a_job ~epoch:a_epoch ~attempt:a_attempt
               ~deadline:a_deadline wire)
      | _ ->
          (* Connection raced away between tick and send: treat as a
             disconnect so the lease fails over instead of hanging. *)
          Lease.disconnect t.table ~now ~name:a_worker)
  | Lease.Rescind { a_worker; a_job; a_epoch } -> (
      t.cfg.log
        (Printf.sprintf "cluster: lease on %s expired at %s (epoch %d)"
           a_job a_worker a_epoch);
      match find_conn t a_worker with
      | Some c -> enqueue c (P.revoke_msg ~job:a_job ~epoch:a_epoch)
      | None -> ())
  | Lease.Run_local { a_job; a_attempt; a_deadline } -> (
      match Hashtbl.find_opt t.jobs a_job with
      | Some (job, _) ->
          t.local_runs <- t.local_runs + 1;
          Pool.submit t.pool ~attempt:a_attempt ~deadline:a_deadline job
      | None -> ())
  | Lease.Expire name -> (
      t.cfg.log (Printf.sprintf "cluster: worker %s missed heartbeats" name);
      match find_conn t name with Some c -> close_conn c | None -> ())

let step t =
  let now = Unix.gettimeofday () in
  accept_conns t;
  let remote =
    List.concat_map (fun c -> read_conn t c ~now) t.conns
  in
  List.iter (apply_action t ~now) (Lease.tick t.table ~now ~local_ok:(local_ok t));
  let local = Pool.step t.pool in
  List.iter (fun c -> Lease.local_done t.table ~job:c.Pool.c_job.Pool.id) local;
  List.iter flush_conn t.conns;
  t.conns <- List.filter (fun c -> c.c_alive) t.conns;
  let completions = remote @ local in
  t.finished <- t.finished + List.length completions;
  completions

let shutdown t =
  List.iter (fun c -> close_conn c) t.conns;
  t.conns <- [];
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  List.iter Endpoint.unlink t.cfg.endpoints;
  ignore (Pool.kill_all t.pool)

let run ?(config = default_config) ?(retry = Retry.default) ?journal
    ?(resume = false) ?(tick = fun (_ : t) -> ()) ~deadline jobs =
  Pool.clear_stop ();
  let previous =
    if resume then
      match journal with None -> Ok [] | Some path -> Journal.load path
    else Ok []
  in
  match previous with
  | Error d -> Error d
  | Ok previous -> (
      match create ~config () with
      | Error d -> Error d
      | Ok t ->
          let log = config.log in
          let finals = Journal.finals previous in
          let lasts = Journal.last_attempts previous in
          let writer = Option.map Journal.open_writer journal in
          let results : (string, Journal.record) Hashtbl.t =
            Hashtbl.create (List.length jobs)
          in
          let resumed = ref 0 in
          List.iter
            (fun ((j : Pool.job), wire) ->
              match Hashtbl.find_opt finals j.Pool.id with
              | Some r ->
                  incr resumed;
                  Hashtbl.replace results j.Pool.id r;
                  log
                    (Printf.sprintf "%s: resumed (%s)" j.Pool.descr
                       (Verdict.describe r.Journal.verdict))
              | None ->
                  let attempt =
                    match Hashtbl.find_opt lasts j.Pool.id with
                    | Some r -> r.Journal.attempt + 1
                    | None -> 1
                  in
                  submit t ~attempt ?wire
                    ~deadline:(Retry.deadline retry ~attempt deadline) j)
            jobs;
          let journal_record r =
            Option.iter
              (fun w ->
                match Journal.append w r with
                | Ok () -> ()
                | Error d -> log (Diag.to_string d))
              writer
          in
          let finish (c : Pool.completion) =
            let final =
              not (Retry.should_retry retry ~attempt:c.Pool.c_attempt
                     c.Pool.c_verdict)
            in
            let record =
              {
                Journal.id = c.Pool.c_job.Pool.id;
                seed = c.Pool.c_job.Pool.seed;
                descr = c.Pool.c_job.Pool.descr;
                attempt = c.Pool.c_attempt;
                final;
                verdict = c.Pool.c_verdict;
                seconds = c.Pool.c_seconds;
              }
            in
            journal_record record;
            if final then begin
              Hashtbl.replace results c.Pool.c_job.Pool.id record;
              log
                (Printf.sprintf "%s: %s (%.1fs%s)" c.Pool.c_job.Pool.descr
                   (Verdict.describe c.Pool.c_verdict) c.Pool.c_seconds
                   (if c.Pool.c_attempt > 1 then ", retry" else ""))
            end
            else begin
              log
                (Printf.sprintf "%s: %s (%.1fs) — retrying degraded"
                   c.Pool.c_job.Pool.descr
                   (Verdict.describe c.Pool.c_verdict) c.Pool.c_seconds);
              let attempt = c.Pool.c_attempt + 1 in
              let wire =
                match Hashtbl.find_opt t.jobs c.Pool.c_job.Pool.id with
                | Some (_, w) -> w
                | None -> None
              in
              submit t ~attempt ?wire
                ~deadline:(Retry.deadline retry ~attempt deadline)
                c.Pool.c_job
            end
          in
          let interrupted = ref false in
          let rec supervise () =
            if Pool.stop_pending () && not !interrupted then
              (* In-flight attempts (local and leased) stay unrecorded,
                 so a resume re-runs them from their last journalled
                 attempt — the same discipline as Pool.run. *)
              interrupted := true
            else if pending t > 0 then begin
              tick t;
              let completions = step t in
              List.iter finish completions;
              (if completions = [] then
                 match Unix.select (fds t) [] [] 0.05 with
                 | _ -> ()
                 | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                 | exception Unix.Unix_error (Unix.EBADF, _, _) -> ());
              supervise ()
            end
          in
          supervise ();
          shutdown t;
          Option.iter Journal.close writer;
          let records =
            List.filter_map
              (fun ((j : Pool.job), _) ->
                Hashtbl.find_opt results j.Pool.id)
              jobs
          in
          Ok
            ( { Pool.records; resumed = !resumed; interrupted = !interrupted },
              t ))
