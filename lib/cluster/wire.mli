(** Serializable job descriptions — the payload of a lease.

    A {!Batch.Pool.job}'s closure cannot cross a socket, so every
    distributable job family has a wire form the worker rebuilds locally:

    - [manifest]: the re-parseable manifest line ({!Batch.Manifest.descr}
      round-trips through {!Batch.Manifest.parse_line}) plus the advisory
      stage budget and submission seed. Rebuilding with
      {!Batch.Jobs.of_entry} reproduces the {e same} content-addressed
      job id, so the dispatcher's journal and the worker agree on
      identity. Manifest lines naming graph {e files} (rather than
      builtins) require those files on the worker host.
    - [explore]: the canonicalized DFG source plus the lattice point
      ({!Explore.Lattice.wire}), rebuilt with
      {!Explore.Lattice.job_of_wire} — again id-stable because the key
      digests the canonical source.

    Fuzz jobs have no wire form (their closures capture in-process RNG
    state); the dispatcher runs wire-less jobs in its local pool. *)

val of_entry :
  stage_seconds:float -> seed:int -> Batch.Manifest.entry -> Batch.Jsonl.t

val to_job : Batch.Jsonl.t -> (Batch.Pool.job, Diag.t) result
(** Worker side: rebuild the pool job ([cluster.bad-wire] on a malformed
    or unknown-family document). *)
