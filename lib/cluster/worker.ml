module P = Serve.Protocol
module Frame = Serve.Frame
module Pool = Batch.Pool
module Retry = Batch.Retry
module Jsonl = Batch.Jsonl
module Verdict = Batch.Verdict

type config = {
  endpoint : Endpoint.t;
  name : string;
  capacity : int;
  heap_words : int option;
  heap_mb : int option;
  heartbeat_interval : float;
  reconnect : Retry.policy;
  max_sessions : int;
      (** Consecutive failed dials tolerated before giving up;
          [max_int] reconnects forever. *)
  libraries : string list;
  duplicate_results : bool;
      (** Chaos hook: deliver every result frame twice, exercising the
          dispatcher's fencing discard. *)
  max_frame : int;
  log : string -> unit;
}

let default_config ~endpoint ~name =
  {
    endpoint;
    name;
    capacity = 1;
    heap_words = None;
    heap_mb = None;
    heartbeat_interval = 0.5;
    reconnect = Retry.backoff ~max_attempts:6 ~base_delay:0.1 ~max_delay:2.0 ();
    max_sessions = max_int;
    libraries = [];
    duplicate_results = false;
    max_frame = Jsonl.default_max_document_bytes;
    log = (fun (_ : string) -> ());
  }

type session = {
  s_fd : Unix.file_descr;
  s_dec : Frame.decoder;
  mutable s_out : string;
  mutable s_alive : bool;
}

let close_session s =
  if s.s_alive then begin
    s.s_alive <- false;
    try Unix.close s.s_fd with Unix.Unix_error _ -> ()
  end

let flush_session s =
  if s.s_alive && s.s_out <> "" then begin
    let b = Bytes.unsafe_of_string s.s_out in
    let rec go off =
      if off >= Bytes.length b then off
      else
        match Unix.write s.s_fd b off (Bytes.length b - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            off
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (_, _, _) ->
            close_session s;
            Bytes.length b
    in
    let off = go 0 in
    if s.s_alive then
      s.s_out <-
        (if off >= String.length s.s_out then ""
         else String.sub s.s_out off (String.length s.s_out - off))
  end

let enqueue s payload =
  if s.s_alive then begin
    s.s_out <- s.s_out ^ Frame.encode payload;
    flush_session s
  end

(* One connected session: register, then execute leases until the
   dispatcher goes away or [stop] fires. Returns [`Stopped] or
   [`Disconnected]. *)
let session cfg ~stop ~pool s =
  (* job id -> (fencing epoch, verdict attempt) for in-flight leases. *)
  let leases : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  enqueue s
    (P.register_msg ~worker:cfg.name ~capacity:cfg.capacity
       ?heap_mb:cfg.heap_mb ~libraries:cfg.libraries ());
  let send_result ~job ~epoch ~attempt ~seconds verdict =
    let payload = P.result_msg ~job ~epoch ~attempt ~seconds verdict in
    enqueue s payload;
    if cfg.duplicate_results then enqueue s payload
  in
  let handle_payload payload =
    match P.parse_downstream ~max_bytes:cfg.max_frame payload with
    | Error d ->
        cfg.log (Diag.to_string d);
        close_session s
    | Ok (P.Ack _) -> ()
    | Ok (P.Revoke { v_job; v_epoch }) -> (
        match Hashtbl.find_opt leases v_job with
        | Some (epoch, _) when epoch = v_epoch ->
            Hashtbl.remove leases v_job;
            ignore (Pool.kill_job pool v_job)
        | _ -> ())
    | Ok (P.Lease { l_job; l_epoch; l_attempt; l_deadline; l_wire }) -> (
        match Wire.to_job l_wire with
        | Error d ->
            cfg.log (Diag.to_string d);
            send_result ~job:l_job ~epoch:l_epoch ~attempt:l_attempt
              ~seconds:0. (Verdict.Rejected d)
        | Ok job ->
            if job.Pool.id <> l_job then
              (* The dispatcher and this host disagree on the job's
                 content digest — e.g. a manifest line naming a graph
                 file this host does not have. Refuse loudly rather
                 than journal a verdict under the wrong identity. *)
              send_result ~job:l_job ~epoch:l_epoch ~attempt:l_attempt
                ~seconds:0.
                (Verdict.Rejected
                   (Diag.input ~code:"cluster.bad-wire"
                      (Printf.sprintf
                         "wire job rebuilt with id %s, lease names %s"
                         job.Pool.id l_job)))
            else begin
              (match Hashtbl.find_opt leases l_job with
              | Some _ -> ignore (Pool.kill_job pool l_job)
              | None -> ());
              Hashtbl.replace leases l_job (l_epoch, l_attempt);
              Pool.submit pool ~attempt:l_attempt ~deadline:l_deadline job
            end)
  in
  let buf = Bytes.create 65536 in
  let read_socket () =
    let rec drain () =
      match Unix.read s.s_fd buf 0 (Bytes.length buf) with
      | 0 -> close_session s
      | n -> (
          match Frame.feed s.s_dec (Bytes.sub_string buf 0 n) with
          | Error d ->
              cfg.log (Diag.to_string d);
              close_session s
          | Ok payloads ->
              List.iter handle_payload payloads;
              if s.s_alive then drain ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      | exception Unix.Unix_error (_, _, _) -> close_session s
    in
    drain ()
  in
  let last_heartbeat = ref (Unix.gettimeofday ()) in
  let rec loop () =
    if stop () then `Stopped
    else if not s.s_alive then `Disconnected
    else begin
      (match
         Unix.select (s.s_fd :: Pool.worker_fds pool) [] [] 0.05
       with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ());
      read_socket ();
      List.iter
        (fun (c : Pool.completion) ->
          match Hashtbl.find_opt leases c.Pool.c_job.Pool.id with
          | Some (epoch, _) ->
              Hashtbl.remove leases c.Pool.c_job.Pool.id;
              send_result ~job:c.Pool.c_job.Pool.id ~epoch
                ~attempt:c.Pool.c_attempt ~seconds:c.Pool.c_seconds
                c.Pool.c_verdict
          | None -> ())
        (Pool.step pool);
      let now = Unix.gettimeofday () in
      if now -. !last_heartbeat >= cfg.heartbeat_interval then begin
        last_heartbeat := now;
        enqueue s
          (P.heartbeat_msg ~worker:cfg.name ~inflight:(Pool.load pool))
      end;
      flush_session s;
      loop ()
    end
  in
  let outcome = loop () in
  close_session s;
  (* Leases die with the session: the dispatcher has already (or will)
     requeue them elsewhere; finishing them here would only produce
     fenced discards. *)
  ignore (Pool.kill_all pool);
  Hashtbl.reset leases;
  outcome

let run ?(stop = fun () -> false) cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let pool =
    Pool.create ~workers:(max 1 cfg.capacity) ?heap_words:cfg.heap_words ()
  in
  let rng = Random.State.make_self_init () in
  let rec connect_loop ~failures ~prev_delay =
    if stop () then Ok ()
    else if failures >= cfg.max_sessions then
      Error
        (Diag.input ~code:"cluster.disconnected"
           (Printf.sprintf
              "worker %s: gave up dialing %s after %d attempt(s)" cfg.name
              (Endpoint.describe cfg.endpoint)
              failures))
    else
      match Endpoint.connect ~backoff:cfg.reconnect cfg.endpoint with
      | Error d ->
          cfg.log (Diag.to_string d);
          let delay = Retry.next_delay cfg.reconnect ~rng ~prev:prev_delay in
          let rec sleep left =
            if left > 0. && not (stop ()) then begin
              (match Unix.select [] [] [] (Float.min left 0.1) with
              | _ -> ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
              sleep (left -. 0.1)
            end
          in
          sleep delay;
          connect_loop ~failures:(failures + 1) ~prev_delay:delay
      | Ok client ->
          let fd = Serve.Client.fd client in
          Unix.set_nonblock fd;
          let s =
            {
              s_fd = fd;
              s_dec = Frame.decoder ~max_frame:cfg.max_frame ();
              s_out = "";
              s_alive = true;
            }
          in
          cfg.log
            (Printf.sprintf "worker %s: connected to %s" cfg.name
               (Endpoint.describe cfg.endpoint));
          (match session cfg ~stop ~pool s with
          | `Stopped -> Ok ()
          | `Disconnected ->
              cfg.log
                (Printf.sprintf "worker %s: dispatcher went away, redialing"
                   cfg.name);
              (* A dispatcher restart is survivable: redial with a fresh
                 failure budget. *)
              connect_loop ~failures:0 ~prev_delay:0.)
  in
  let result = connect_loop ~failures:0 ~prev_delay:0. in
  ignore (Pool.kill_all pool);
  result
