type t = Unix_path of string | Tcp of int

let describe = function
  | Unix_path p -> p
  | Tcp port -> Printf.sprintf "tcp:%d" port

let parse s =
  let s = String.trim s in
  if s = "" then
    Error (Diag.usage ~code:"cluster.endpoint" "empty endpoint")
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
    | Some port when port > 0 && port < 65536 -> Ok (Tcp port)
    | _ ->
        Error
          (Diag.usage ~code:"cluster.endpoint"
             (Printf.sprintf "%s: want tcp:PORT with 0 < PORT < 65536" s))
  else Ok (Unix_path s)

let parse_list s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match parse part with
        | Ok e -> go (e :: acc) rest
        | Error d -> Error d)
  in
  go []
    (List.filter
       (fun p -> String.trim p <> "")
       (String.split_on_char ',' s))

let bind_error what err =
  Diag.input ~code:"cluster.bind"
    (Printf.sprintf "cannot listen on %s: %s" what (Unix.error_message err))

let listen t =
  match t with
  | Unix_path path -> (
      match
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.set_nonblock fd;
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        fd
      with
      | fd -> Ok fd
      | exception Unix.Unix_error (err, _, _) -> Error (bind_error path err))
  | Tcp port -> (
      match
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.set_nonblock fd;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        fd
      with
      | fd -> Ok fd
      | exception Unix.Unix_error (err, _, _) ->
          Error (bind_error (describe t) err))

let connect ?timeout ?backoff = function
  | Unix_path path -> Serve.Client.connect ?timeout ?backoff path
  | Tcp port -> Serve.Client.connect_tcp ?timeout ?backoff ~port ()

let unlink = function
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
