module Jsonl = Batch.Jsonl

let bad msg = Diag.input ~code:"cluster.bad-wire" msg

let of_entry ~stage_seconds ~seed (e : Batch.Manifest.entry) =
  Jsonl.Obj
    [
      ("family", Jsonl.String "manifest");
      ("line", Jsonl.String (Batch.Manifest.descr e));
      ("stage_seconds", Jsonl.Float stage_seconds);
      ("seed", Jsonl.Int seed);
    ]

let manifest_job doc =
  let line = Option.value ~default:"" (Jsonl.str "line" doc) in
  let stage_seconds =
    Option.value ~default:5.0 (Jsonl.float "stage_seconds" doc)
  in
  let seed = Option.value ~default:0 (Jsonl.int "seed" doc) in
  if line = "" then Error (bad "manifest wire job is missing its line")
  else
    match Batch.Manifest.parse_line ~file:"<lease>" ~line:1 line with
    | Error d -> Error d
    | Ok None -> Error (bad "manifest wire job line is blank")
    | Ok (Some entry) ->
        let budgets =
          {
            Harness.Driver.default_budgets with
            Harness.Driver.stage_seconds;
          }
        in
        Ok (Batch.Jobs.of_entry ~budgets ~seed entry)

let to_job doc =
  match Jsonl.str "family" doc with
  | Some "manifest" -> manifest_job doc
  | Some "explore" ->
      Result.map_error bad (Explore.Lattice.job_of_wire doc)
  | Some other -> Error (bad (Printf.sprintf "unknown job family %S" other))
  | None -> Error (bad "wire job has no family")
