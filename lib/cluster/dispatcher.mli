(** Lease-based multi-host job dispatcher.

    The cluster face of {!Batch.Pool}: the same incremental
    submit/step/fds interface and the same [run] driver (journal, resume,
    verdict-level retry, SIGINT discipline), but jobs carrying a wire
    form ([Cluster.Wire]) are fanned out to remote [synth worker]
    processes as time-bounded leases. The {!Lease} table supplies the
    fault tolerance: fencing epochs, heartbeat liveness, lease expiry,
    decorrelated-jitter re-lease, and escalation to in-process execution
    when every remote is down (gated by [local_fallback]).

    With no endpoints configured the dispatcher degenerates to a plain
    local pool run — [synth batch] without [--hosts] goes through
    {!Batch.Pool.run} directly; this module only enters the picture when
    a cluster is asked for. *)

type config = {
  endpoints : Endpoint.t list;  (** Listeners workers dial into. *)
  local_workers : int;  (** Local pool width (fallback + wire-less jobs). *)
  heap_words : int option;
  lease : Lease.config;
  local_fallback : bool;
      (** Allow escalation to in-process execution. Forced on when
          [endpoints = []]. *)
  max_frame : int;
  log : string -> unit;
}

val default_config : config

type t

val create : ?config:config -> unit -> (t, Diag.t) result
(** Bind the listeners ([cluster.bind] on failure). *)

val submit :
  t -> ?attempt:int -> ?wire:Batch.Jsonl.t -> deadline:float ->
  Batch.Pool.job -> unit
(** Jobs without a [wire] form (or when no endpoint is bound) run in the
    local pool only. *)

val step : t -> Batch.Pool.completion list
(** One supervision tick: accept/read worker connections, apply lease
    actions (grants, revocations, local fallbacks, expiries), drive the
    local pool. Remote results arrive as ordinary completions — only
    fencing-accepted ones; stale deliveries are discarded and counted. *)

val fds : t -> Unix.file_descr list
(** Listeners + worker connections + local pool pipes, for [select]. *)

val pending : t -> int

val shutdown : t -> unit
(** Close listeners and connections, unlink Unix socket paths, SIGKILL
    the local pool. *)

(** {2 Introspection} (the [health]/[stats] surface and chaos probes) *)

val completed : t -> int
val local_runs : t -> int
val remote_runs : t -> int

val fenced : t -> int
(** Results discarded by the fencing epoch check. *)

val releases : t -> int
(** Leases lost to worker death/expiry and requeued. *)

val worker_deaths : t -> int
val stats_json : t -> now:float -> Batch.Jsonl.t

(** {2 Batch driver} *)

val run :
  ?config:config ->
  ?retry:Batch.Retry.policy ->
  ?journal:string ->
  ?resume:bool ->
  ?tick:(t -> unit) ->
  deadline:float ->
  (Batch.Pool.job * Batch.Jsonl.t option) list ->
  (Batch.Pool.outcome * t, Diag.t) result
(** Mirror of {!Batch.Pool.run} over (job, wire) pairs: journalled
    exactly once per accepted verdict, resumable ([~resume] skips jobs
    with final records, byte-identically replaying their outcomes),
    interruptible via {!Batch.Pool.request_stop}. [retry] is the
    {e verdict-level} policy (Timeout/Oom → degraded re-run); transport
    failovers live in [config.lease.retry] and never consume verdict
    attempts. [tick] runs once per supervision iteration — the chaos
    harness's fault-injection hook. The returned [t] is already shut
    down; it remains valid for the introspection counters. *)
