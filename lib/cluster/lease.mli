(** Lease table: the dispatcher's fault-tolerance state machine.

    Pure bookkeeping — no sockets, no clocks of its own. The dispatcher
    feeds it events ([register]/[heartbeat]/[disconnect]/[result]) and
    calls {!tick} with the current time; it returns the actions to
    perform (grant a lease, rescind one, run locally, expire a worker).
    Keeping it I/O-free makes every failover property unit-testable.

    Fencing: each grant bumps the job's epoch. A result is accepted only
    if the job is still leased to that worker at that epoch — anything
    else (duplicate delivery, a revoked worker finishing late, a replay)
    is counted in {!fenced} and discarded, never double-journaled.

    Failover ladder for a remote job: re-lease with decorrelated-jitter
    backoff after each lost lease; once the transport-retry budget is
    exhausted (or no live worker remains past warmup), fall back to
    in-process execution when the dispatcher allows it. Transport tries
    are deliberately separate from the verdict-level [attempt] counter —
    a worker crash is not evidence the job itself misbehaves. *)

type config = {
  retry : Batch.Retry.policy;
      (** Transport-level re-lease schedule (tries, base/ceiling delay). *)
  grace : float;
      (** Seconds past the job deadline before a lease is rescinded. Must
          exceed the worker's own kill window so a genuine timeout comes
          back as a Timeout verdict rather than a lost lease. *)
  heartbeat_window : float;
      (** Seconds of heartbeat silence before a worker is declared dead. *)
  warmup : float;
      (** Seconds after creation during which an empty worker table does
          not yet trigger local fallback (workers are still dialing in). *)
}

val default_config : config

type t

type action =
  | Grant of {
      a_worker : string;
      a_job : string;
      a_epoch : int;
      a_attempt : int;
      a_deadline : float;
    }
  | Rescind of { a_worker : string; a_job : string; a_epoch : int }
  | Run_local of { a_job : string; a_attempt : int; a_deadline : float }
  | Expire of string  (** Worker missed its heartbeat window; drop it. *)

val create : ?seed:int -> ?config:config -> now:float -> unit -> t

val submit :
  t -> now:float -> id:string -> attempt:int -> deadline:float ->
  remote:bool -> unit
(** Add a job (or resubmit it for a fresh verdict-level attempt, which
    resets its transport-try budget). [remote:false] jobs only ever run
    locally — e.g. fuzz jobs with no wire form. *)

val register :
  t -> now:float -> name:string -> capacity:int -> libraries:string list ->
  unit
(** A (re-)registration replaces any previous state under that name. *)

val heartbeat : t -> now:float -> name:string -> unit

val disconnect : t -> now:float -> name:string -> unit
(** Connection lost: mark the worker dead and requeue its leases. *)

val result :
  t -> worker:string -> job:string -> epoch:int ->
  [ `Accept | `Stale | `Unknown ]
(** [`Accept] transitions the job to finished — journal it. [`Stale] is
    a fenced discard (wrong epoch, wrong worker, or already finished). *)

val local_done : t -> job:string -> unit
(** The local pool finished a job handed out via [Run_local]. *)

val tick : t -> now:float -> local_ok:bool -> action list
(** Sweep liveness and lease expiry, then assign queued jobs. [local_ok]
    gates the in-process fallback (both the all-remotes-dead path and
    the tries-exhausted escalation). *)

val pending : t -> int
(** Jobs not yet finished. *)

val epoch_of : t -> job:string -> int option
val attempt_of : t -> job:string -> int option

val fenced : t -> int
(** Results discarded by the fencing check. *)

val releases : t -> int
(** Leases lost to worker death or expiry and requeued. *)

val worker_deaths : t -> int

val workers_json : t -> now:float -> Batch.Jsonl.t list
(** Connected-worker table for [health]/[stats]. *)
