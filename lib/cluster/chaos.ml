module Pool = Batch.Pool
module Jobs = Batch.Jobs
module Journal = Batch.Journal
module Retry = Batch.Retry
module Jsonl = Batch.Jsonl

type config = {
  dir : string;
  workers : int;
  jobs : int;
  kill_worker : bool;
  stop_worker : bool;
  slow_loris : bool;
  duplicate : bool;
  stage_seconds : float;
  deadline : float;
  seed : int;
  log : string -> unit;
}

let default_config ~dir =
  {
    dir;
    workers = 3;
    jobs = 12;
    kill_worker = true;
    stop_worker = false;
    slow_loris = false;
    duplicate = true;
    stage_seconds = 5.0;
    deadline = 10.0;
    seed = 0;
    log = (fun (_ : string) -> ());
  }

type check = { k_name : string; k_pass : bool; k_detail : string }

type report = {
  checks : check list;
  baseline_seconds : float;
  chaos_seconds : float;
  local_runs : int;
  remote_runs : int;
  fenced : int;
  releases : int;
  worker_deaths : int;
}

let passed r = List.for_all (fun c -> c.k_pass) r.checks

let report_json r =
  Jsonl.Obj
    [
      ( "checks",
        Jsonl.List
          (List.map
             (fun c ->
               Jsonl.Obj
                 [
                   ("name", Jsonl.String c.k_name);
                   ("pass", Jsonl.Bool c.k_pass);
                   ("detail", Jsonl.String c.k_detail);
                 ])
             r.checks) );
      ("passed", Jsonl.Bool (passed r));
      ("baseline_seconds", Jsonl.Float r.baseline_seconds);
      ("chaos_seconds", Jsonl.Float r.chaos_seconds);
      ("local_runs", Jsonl.Int r.local_runs);
      ("remote_runs", Jsonl.Int r.remote_runs);
      ("fenced", Jsonl.Int r.fenced);
      ("releases", Jsonl.Int r.releases);
      ("worker_deaths", Jsonl.Int r.worker_deaths);
    ]

let print r out =
  List.iter
    (fun c ->
      out
        (Printf.sprintf "%s %-22s %s"
           (if c.k_pass then "PASS" else "FAIL")
           c.k_name c.k_detail))
    r.checks;
  out
    (Printf.sprintf
       "runs: baseline %.1fs, chaos %.1fs; %d remote, %d local, %d fenced, \
        %d releases, %d worker deaths"
       r.baseline_seconds r.chaos_seconds r.remote_runs r.local_runs r.fenced
       r.releases r.worker_deaths)

(* --- Workload ----------------------------------------------------------- *)

(* Small builtin graphs only: nothing on disk, so dispatcher and forked
   workers agree on every job's content digest with no shared files.
   Base control-step counts are feasible for each graph, so the healthy
   workload is all-clean and any verdict drift under chaos is loud. *)
let specs =
  [|
    ("diffeq", 4); ("ewf", 20); ("tseng", 6); ("ex2", 8); ("facet", 6);
    ("chained", 8);
  |]

let manifest_lines cfg =
  List.init cfg.jobs (fun i ->
      if i = cfg.jobs - 1 then
        (* One planted hang: exercises the worker-side deadline kill and
           the verdict-level degraded retry — in both runs, so parity
           still holds. It is also the workload's one slow job, so the
           total-outage fault below is guaranteed to land mid-lease. *)
        "diffeq --cs 4 --inject hang"
      else
        (* Job ids are content digests of the manifest line, so every
           line must be unique or jobs collapse into one: bump the step
           budget by how many times this spec has already appeared
           (looser budgets stay feasible — only tighter ones reject). *)
        let spec, cs = specs.((cfg.seed + i) mod Array.length specs) in
        Printf.sprintf "%s --cs %d" spec (cs + (i / Array.length specs)))

let build_jobs cfg =
  let budgets =
    {
      Harness.Driver.default_budgets with
      Harness.Driver.stage_seconds = cfg.stage_seconds;
    }
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Batch.Manifest.parse_line ~file:"<chaos>" ~line:(i + 1) line with
        | Error d -> Error d
        | Ok None -> go (i + 1) acc rest
        | Ok (Some entry) ->
            let job = Jobs.of_entry ~budgets ~seed:i entry in
            let wire =
              Wire.of_entry ~stage_seconds:cfg.stage_seconds ~seed:i entry
            in
            go (i + 1) ((job, wire) :: acc) rest)
  in
  go 0 [] (manifest_lines cfg)

(* --- Fault planting ----------------------------------------------------- *)

let fork_worker cfg ~endpoint ~index =
  match Unix.fork () with
  | 0 ->
      (* Own process group, so SIGKILLing the worker also reaps the
         pool children it forked — no orphaned hang jobs spinning on. *)
      (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
      let code =
        try
          let wcfg =
            {
              (Worker.default_config ~endpoint
                 ~name:(Printf.sprintf "w%d" index))
              with
              Worker.capacity = 2;
              heartbeat_interval = 0.15;
              duplicate_results = cfg.duplicate && index = cfg.workers - 1;
              reconnect =
                Retry.backoff ~max_attempts:8 ~base_delay:0.05
                  ~max_delay:0.5 ();
              max_sessions = 50;
            }
          in
          match Worker.run wcfg with Ok () -> 0 | Error _ -> 1
        with _ -> 1
      in
      Unix._exit code
  | pid -> pid

(* A worker that heartbeats convincingly but never finishes a lease:
   the dispatcher must reclaim its leases by expiry, not liveness. *)
let fork_slow_loris ~endpoint =
  match Unix.fork () with
  | 0 ->
      (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
      (try
         match Endpoint.connect ~timeout:5.0 endpoint with
         | Error _ -> ()
         | Ok client ->
             let send payload =
               ignore (Serve.Client.send client payload)
             in
             send
               (Serve.Protocol.register_msg ~worker:"loris" ~capacity:1
                  ~libraries:[] ());
             let rec beat () =
               send
                 (Serve.Protocol.heartbeat_msg ~worker:"loris" ~inflight:0);
               ignore (Unix.select [] [] [] 0.15);
               beat ()
             in
             beat ()
       with _ -> ());
      Unix._exit 0
  | pid -> pid

(* Kill the whole process group: the worker plus any pool children it
   had in flight when the fault landed. *)
let kill_group pid signal =
  (try Unix.kill (-pid) signal with Unix.Unix_error _ -> ());
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap pids =
  List.iter
    (fun pid ->
      kill_group pid Sys.sigcont;
      kill_group pid Sys.sigkill;
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    pids

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  with Sys_error _ -> None

(* --- The experiment ----------------------------------------------------- *)

let lease_config =
  {
    Lease.retry = Retry.backoff ~max_attempts:4 ~base_delay:0.05 ~max_delay:0.4 ();
    grace = 3.0;
    heartbeat_window = 1.0;
    warmup = 1.5;
  }

let retry = Retry.default

let run cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (try Unix.mkdir cfg.dir 0o755 with Unix.Unix_error _ -> ());
  match build_jobs cfg with
  | Error d -> Error d
  | Ok jobs -> (
      let total = List.length jobs in
      let baseline_journal = Filename.concat cfg.dir "baseline.jsonl" in
      let chaos_journal = Filename.concat cfg.dir "chaos.jsonl" in
      List.iter
        (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
        [ baseline_journal; chaos_journal ];
      (* 1. Undisturbed single-host run — ground truth. *)
      cfg.log "chaos: baseline (local) run";
      let t0 = Unix.gettimeofday () in
      let baseline =
        Dispatcher.run
          ~config:
            {
              Dispatcher.default_config with
              Dispatcher.local_workers = 2;
              log = cfg.log;
            }
          ~retry ~journal:baseline_journal ~deadline:cfg.deadline
          (List.map (fun (j, _) -> (j, None)) jobs)
      in
      let baseline_seconds = Unix.gettimeofday () -. t0 in
      match baseline with
      | Error d -> Error d
      | Ok (base_o, _) -> (
          (* 2. Chaotic cluster run: real workers, planted faults. *)
          let endpoint =
            Endpoint.Unix_path (Filename.concat cfg.dir "chaos.sock")
          in
          let victims = ref [] in
          let pids =
            List.init cfg.workers (fun i ->
                fork_worker cfg ~endpoint ~index:i)
          in
          let pids =
            if cfg.slow_loris then pids @ [ fork_slow_loris ~endpoint ]
            else pids
          in
          let worker_pids = pids in
          let killed = ref false in
          let stopped = ref false in
          let outage = ref false in
          let tick t =
            let done_ = Dispatcher.completed t in
            if cfg.kill_worker && (not !killed) && done_ >= 2 then begin
              killed := true;
              match worker_pids with
              | pid :: _ ->
                  cfg.log "chaos: SIGKILL worker w0 mid-run";
                  victims := pid :: !victims;
                  kill_group pid Sys.sigkill
              | [] -> ()
            end;
            (if
               cfg.stop_worker && (not !stopped) && cfg.workers > 1
               && done_ >= total / 2
             then begin
               stopped := true;
               match worker_pids with
               | _ :: pid :: _ ->
                   cfg.log "chaos: SIGSTOP worker w1 (half-open partition)";
                   victims := pid :: !victims;
                   kill_group pid Sys.sigstop
               | _ -> ()
             end);
            (* Total outage once only the slow job remains: whoever holds
               its lease dies mid-lease, and the batch can only finish
               through failover into the local pool. *)
            if
              cfg.kill_worker && (not !outage)
              && Dispatcher.remote_runs t > 0
              && Dispatcher.pending t <= 1
            then begin
              outage := true;
              cfg.log "chaos: SIGKILL every worker (total outage)";
              List.iter
                (fun pid ->
                  if not (List.mem pid !victims) then begin
                    victims := pid :: !victims;
                    kill_group pid Sys.sigkill
                  end)
                worker_pids
            end
          in
          cfg.log "chaos: cluster run with planted faults";
          let t1 = Unix.gettimeofday () in
          let chaotic =
            Dispatcher.run
              ~config:
                {
                  Dispatcher.default_config with
                  Dispatcher.endpoints = [ endpoint ];
                  local_workers = 2;
                  lease = lease_config;
                  local_fallback = true;
                  log = cfg.log;
                }
              ~retry ~journal:chaos_journal ~tick ~deadline:cfg.deadline
              (List.map (fun (j, w) -> (j, Some w)) jobs)
          in
          let chaos_seconds = Unix.gettimeofday () -. t1 in
          reap pids;
          match chaotic with
          | Error d -> Error d
          | Ok (chaos_o, t) -> (
              let journal_before = read_file chaos_journal in
              (* 3. Warm resume: must replay the journal, run nothing. *)
              let resumed =
                Dispatcher.run
                  ~config:
                    { Dispatcher.default_config with Dispatcher.log = cfg.log }
                  ~retry ~journal:chaos_journal ~resume:true
                  ~deadline:cfg.deadline
                  (List.map (fun (j, _) -> (j, None)) jobs)
              in
              match resumed with
              | Error d -> Error d
              | Ok (resume_o, _) ->
                  let journal_after = read_file chaos_journal in
                  (* 4. All remotes dead: endpoint bound, nobody dials —
                     local fallback must still finish the batch. *)
                  let fb_endpoint =
                    Endpoint.Unix_path (Filename.concat cfg.dir "dead.sock")
                  in
                  let fb_jobs =
                    match jobs with
                    | a :: b :: _ -> [ a; b ]
                    | rest -> rest
                  in
                  let fallback =
                    Dispatcher.run
                      ~config:
                        {
                          Dispatcher.default_config with
                          Dispatcher.endpoints = [ fb_endpoint ];
                          local_workers = 2;
                          lease =
                            { lease_config with Lease.warmup = 0.2 };
                          local_fallback = true;
                          log = cfg.log;
                        }
                      ~retry ~deadline:cfg.deadline
                      (List.map (fun (j, w) -> (j, Some w)) fb_jobs)
                  in
                  let check k_name k_pass k_detail =
                    { k_name; k_pass; k_detail }
                  in
                  let chaos_records_all =
                    match Journal.load chaos_journal with
                    | Ok rs -> rs
                    | Error _ -> []
                  in
                  let final_counts = Hashtbl.create 32 in
                  List.iter
                    (fun (r : Journal.record) ->
                      if r.Journal.final then
                        Hashtbl.replace final_counts r.Journal.id
                          (1
                          + Option.value ~default:0
                              (Hashtbl.find_opt final_counts r.Journal.id)))
                    chaos_records_all;
                  let dup_finals =
                    Hashtbl.fold
                      (fun _ n acc -> if n > 1 then acc + 1 else acc)
                      final_counts 0
                  in
                  let baseline_failed =
                    List.length
                      (List.filter Jobs.record_failed base_o.Pool.records)
                  in
                  let chaos_failed =
                    List.length
                      (List.filter Jobs.record_failed chaos_o.Pool.records)
                  in
                  let checks =
                    [
                      check "all-jobs-terminal"
                        (List.length chaos_o.Pool.records = total)
                        (Printf.sprintf "%d/%d final verdicts"
                           (List.length chaos_o.Pool.records)
                           total);
                      check "exactly-once-journal" (dup_finals = 0)
                        (Printf.sprintf
                           "%d job(s) with duplicate final records"
                           dup_finals);
                      check "verdict-parity"
                        (Journal.equivalent base_o.Pool.records
                           chaos_o.Pool.records)
                        "chaotic verdicts match the undisturbed run";
                      check "exit-code-parity"
                        (baseline_failed = chaos_failed)
                        (Printf.sprintf "failed: baseline %d, chaos %d"
                           baseline_failed chaos_failed);
                      check "summary-parity"
                        (Jobs.summarize base_o.Pool.records
                        = Jobs.summarize chaos_o.Pool.records)
                        "batch summaries byte-identical";
                      check "remote-execution"
                        (Dispatcher.remote_runs t > 0)
                        (Printf.sprintf "%d job(s) ran on workers"
                           (Dispatcher.remote_runs t));
                    ]
                    @ (if cfg.kill_worker || cfg.stop_worker || cfg.slow_loris
                       then
                         [
                           check "failover"
                             (Dispatcher.releases t > 0)
                             (Printf.sprintf
                                "%d lease(s) reclaimed and re-run"
                                (Dispatcher.releases t));
                         ]
                       else [])
                    @ (if cfg.duplicate then
                         [
                           check "fencing"
                             (Dispatcher.fenced t > 0)
                             (Printf.sprintf
                                "%d duplicate result(s) discarded"
                                (Dispatcher.fenced t));
                         ]
                       else [])
                    @ [
                        check "resume-replays-all"
                          (resume_o.Pool.resumed = total)
                          (Printf.sprintf "%d/%d resumed without re-running"
                             resume_o.Pool.resumed total);
                        check "resume-journal-untouched"
                          (journal_before = journal_after
                          && journal_before <> None)
                          "warm resume appended nothing";
                      ]
                    @ [
                        (match fallback with
                        | Error d ->
                            check "local-fallback" false (Diag.to_string d)
                        | Ok (fb_o, fb_t) ->
                            check "local-fallback"
                              (List.length fb_o.Pool.records
                               = List.length fb_jobs
                              && Dispatcher.local_runs fb_t
                                 = List.length fb_jobs)
                              (Printf.sprintf
                                 "%d job(s) completed in-process with no \
                                  live worker"
                                 (Dispatcher.local_runs fb_t)));
                      ]
                  in
                  Ok
                    {
                      checks;
                      baseline_seconds;
                      chaos_seconds;
                      local_runs = Dispatcher.local_runs t;
                      remote_runs = Dispatcher.remote_runs t;
                      fenced = Dispatcher.fenced t;
                      releases = Dispatcher.releases t;
                      worker_deaths = Dispatcher.worker_deaths t;
                    })))
