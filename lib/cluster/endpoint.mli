(** Cluster endpoints: where a dispatcher listens and a worker dials.

    The textual form is either a Unix-domain socket path or [tcp:PORT]
    (loopback); [--hosts] takes a comma-separated list. *)

type t = Unix_path of string | Tcp of int

val parse : string -> (t, Diag.t) result
(** [cluster.endpoint] usage error on malformed input. *)

val parse_list : string -> (t list, Diag.t) result
(** Comma-separated endpoints; empty segments are skipped. *)

val describe : t -> string

val listen : t -> (Unix.file_descr, Diag.t) result
(** Bind a non-blocking listener ([cluster.bind] on failure). A stale
    Unix socket file is unlinked first — crash-only restarts. *)

val connect :
  ?timeout:float -> ?backoff:Batch.Retry.policy -> t ->
  (Serve.Client.t, Diag.t) result
(** Dial the endpoint through {!Serve.Client}'s backoff connect. *)

val unlink : t -> unit
(** Remove a Unix socket file on shutdown (no-op for TCP). *)
