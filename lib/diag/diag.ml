type severity = Error | Warning

type category = Usage | Input | Infeasible | Internal | Partial | Unavailable

type span = { line : int; col : int; end_line : int; end_col : int }

type t = {
  code : string;
  category : category;
  severity : severity;
  message : string;
  span : span option;
  file : string option;
}

let point ~line ~col = { line; col; end_line = line; end_col = col + 1 }

let span_of_word ~line ~col word =
  { line; col; end_line = line; end_col = col + max 1 (String.length word) }

let make ?(severity = Error) ?span ?file category ~code message =
  { code; category; severity; message; span; file }

let usage ?span ?file ~code message = make ?span ?file Usage ~code message
let input ?span ?file ~code message = make ?span ?file Input ~code message
let infeasible ?(code = "infeasible") message = make Infeasible ~code message
let internal ?(code = "internal") message = make Internal ~code message
let partial ?(code = "batch.partial-failure") message = make Partial ~code message

let unavailable ?(code = "serve.overloaded") message =
  make Unavailable ~code message

let inputf ?span ?file ~code fmt =
  Printf.ksprintf (fun s -> input ?span ?file ~code s) fmt

let with_file file d =
  match d.file with Some _ -> d | None -> { d with file = Some file }

let message d = d.message

let exit_code d =
  match d.category with
  | Usage -> 2
  | Input -> 3
  | Infeasible -> 4
  | Internal -> 5
  | Partial -> 6
  | Unavailable -> 7

let category_name = function
  | Usage -> "usage"
  | Input -> "input"
  | Infeasible -> "infeasible"
  | Internal -> "internal"
  | Partial -> "partial"
  | Unavailable -> "unavailable"

let category_of_name = function
  | "usage" -> Some Usage
  | "input" -> Some Input
  | "infeasible" -> Some Infeasible
  | "internal" -> Some Internal
  | "partial" -> Some Partial
  | "unavailable" -> Some Unavailable
  | _ -> None

let severity_name = function Error -> "error" | Warning -> "warning"

let is_bug d = d.category = Internal

let location d =
  match (d.file, d.span) with
  | None, None -> ""
  | Some f, None -> f ^ ": "
  | None, Some sp -> Printf.sprintf "%d:%d: " sp.line sp.col
  | Some f, Some sp -> Printf.sprintf "%s:%d:%d: " f sp.line sp.col

let to_string d =
  Printf.sprintf "%s[%s] %s%s" (severity_name d.severity) d.code (location d)
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

(* Minimal JSON emission: the only non-scalar values are strings, which we
   escape by hand to avoid a json dependency. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let to_json d =
  let buf = Buffer.create 128 in
  let field name value =
    Buffer.add_string buf (Printf.sprintf "%S:%s," name value)
  in
  Buffer.add_char buf '{';
  field "code" (Printf.sprintf "\"%s\"" (json_escape d.code));
  field "category" (Printf.sprintf "\"%s\"" (category_name d.category));
  field "severity" (Printf.sprintf "\"%s\"" (severity_name d.severity));
  (match d.file with
  | Some f -> field "file" (Printf.sprintf "\"%s\"" (json_escape f))
  | None -> ());
  (match d.span with
  | Some sp ->
      field "span"
        (Printf.sprintf
           "{\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d}" sp.line
           sp.col sp.end_line sp.end_col)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "\"message\":\"%s\"}" (json_escape d.message));
  Buffer.contents buf

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"

let of_msg category ~code message = make category ~code message
