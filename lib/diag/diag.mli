(** Typed diagnostics for the synthesis pipeline.

    Library code reports failures as values of {!t} instead of bare strings,
    [failwith] or [exit]: a stable machine-readable [code], a [category]
    that fixes the process exit code, a severity, a human message and an
    optional source span. The CLI renders them as text or JSON
    ([--json-errors]); the fuzz harness classifies them to tell expected
    infeasibility apart from internal defects. *)

type severity = Error | Warning

type category =
  | Usage  (** Bad command line; exit code 2. *)
  | Input  (** Malformed or missing user input; exit code 3. *)
  | Infeasible
      (** Well-formed problem with no solution under the given constraints
          (time budget below the critical path, unit caps too tight);
          exit code 4. *)
  | Internal
      (** A bug: exhausted internal budgets, broken invariants; exit
          code 5. *)
  | Partial
      (** A batch ran to completion but some jobs failed (timed out,
          exceeded the heap ceiling, crashed, or reported violations)
          while others completed; exit code 6. *)
  | Unavailable
      (** A transient service condition: the daemon shed the request under
          load or is draining. Not the client's fault and not a bug —
          retry later (responses carry a retry-after hint); exit code 7. *)

(** Half-open source region; columns are 1-based, [end_col] points one past
    the last character. A point span has [end_line = line] and
    [end_col = col + 1]. *)
type span = { line : int; col : int; end_line : int; end_col : int }

type t = {
  code : string;  (** Stable dotted identifier, e.g. ["parse.unknown-op"]. *)
  category : category;
  severity : severity;
  message : string;
  span : span option;
  file : string option;
}

val point : line:int -> col:int -> span
(** Span covering a single character. *)

val span_of_word : line:int -> col:int -> string -> span
(** Span covering [word] starting at [line:col]. *)

val make :
  ?severity:severity -> ?span:span -> ?file:string -> category ->
  code:string -> string -> t

val usage : ?span:span -> ?file:string -> code:string -> string -> t
val input : ?span:span -> ?file:string -> code:string -> string -> t
val infeasible : ?code:string -> string -> t
val internal : ?code:string -> string -> t
val partial : ?code:string -> string -> t
val unavailable : ?code:string -> string -> t

val inputf :
  ?span:span -> ?file:string -> code:string ->
  ('a, unit, string, t) format4 -> 'a

val with_file : string -> t -> t
(** Attach the originating file name (kept if already set). *)

val message : t -> string

val exit_code : t -> int
(** 2 = usage, 3 = input, 4 = infeasible, 5 = internal, 6 = partial
    batch failure, 7 = transient service unavailability. *)

val category_name : category -> string

val category_of_name : string -> category option
(** Inverse of {!category_name}; used when diagnostics are read back
    from a batch journal. *)

val is_bug : t -> bool
(** [true] only for {!Internal} diagnostics — the ones the fuzz harness
    counts as defects. *)

val to_string : t -> string
(** One-line human rendering:
    ["error[parse.unknown-op] foo.dfg:3:5: unknown operation \"fma\""]. *)

val pp : Format.formatter -> t -> unit

val json_string : string -> string
(** Quote and escape a string as a JSON literal — shared by the few callers
    that wrap diagnostics in richer JSON documents. *)

val to_json : t -> string
(** One JSON object with [code], [category], [severity], [message] and,
    when present, [file] and [span] fields. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects. *)

val of_msg : category -> code:string -> string -> t
(** Wrap a legacy string error, no span. *)
