(** Memory-bank resource model.

    Arrays live in banks; a bank serves at most [ports] accesses per
    control step. Scheduling treats each port as a pseudo functional
    unit of class ["mem:BANK"] ({!Dfg.Graph.mem_class}), so port
    conflicts fold into the same Forbidden-Frame calculus as ALU
    conflicts. The cost model prices the macro here, separately from
    the per-capability ALU areas. *)

type t = {
  ports : int;  (** Simultaneous accesses per control step. *)
  read_latency : int;  (** Load latency in control steps. *)
  write_latency : int;  (** Store latency in control steps. *)
}

val default : t
(** Single-port, one-cycle reads and writes. *)

val with_ports : t -> int -> t
(** Same bank with a different port count.
    @raise Invalid_argument when [ports < 1]. *)

val latency : t -> Dfg.Op.kind -> int
(** Access latency of a memory kind.
    @raise Invalid_argument on a non-memory kind. *)

val area : t -> words:int -> float
(** Macro area (µm²): decoder/sense base + per-word bit cells + a
    per-port surcharge (extra ports replicate word lines and sense
    amplifiers).
    @raise Invalid_argument when [words < 1]. *)

val pp : Format.formatter -> t -> unit
