(* Memory-bank resource model. A bank is a RAM macro with a fixed number
   of access ports; scheduling treats each port as a pseudo functional
   unit of class "mem:BANK", and the cost model prices the macro with
   this module instead of the per-capability ALU areas. *)

type t = {
  ports : int;
  read_latency : int;
  write_latency : int;
}

let default = { ports = 1; read_latency = 1; write_latency = 1 }

let with_ports t ports =
  if ports < 1 then invalid_arg "Bank.with_ports: ports must be positive";
  { t with ports }

let latency t = function
  | Dfg.Op.Load -> t.read_latency
  | Dfg.Op.Store -> t.write_latency
  | k ->
      invalid_arg
        (Printf.sprintf "Bank.latency: %s is not a memory access"
           (Dfg.Op.to_string k))

(* Area of the macro itself (µm², same loose NCR scale as the ALU
   library): a fixed decoder/sense base, a per-word bit-cell row, and a
   per-port surcharge — every extra port roughly replicates the word
   lines and sense amplifiers, hence the steep slope. *)
let base_area = 2200.
let word_area = 110.
let port_area = 1450.

let area t ~words =
  if words < 1 then invalid_arg "Bank.area: words must be positive";
  base_area
  +. (word_area *. float_of_int words)
  +. (port_area *. float_of_int t.ports)

let pp ppf t =
  Format.fprintf ppf "bank: %d port(s), rd %d cy, wr %d cy" t.ports
    t.read_latency t.write_latency
