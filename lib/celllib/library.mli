(** Cell-library substrate.

    MFSA selects (possibly multifunction) ALUs from a user-supplied cell
    library and optimises total datapath area: ALUs + multiplexers +
    registers (paper §4). The paper priced designs with the NCR ASIC data
    book; that book being unavailable, {!Ncr} provides a synthetic library
    with the same structure — see DESIGN.md §3 for the substitution note. *)

type alu_kind = {
  aname : string;  (** Display name, e.g. ["(+-)"], matching Table 2 style. *)
  ops : Op_set.t;  (** Operation kinds the unit implements. *)
  area : float;  (** Area in µm². *)
  stages : int;
      (** Pipeline stages; 1 = combinational/unpipelined. A pipelined unit
          accepts a new operation every cycle (structural pipelining). *)
}

type t = {
  alus : alu_kind list;  (** Available ALU kinds. *)
  mux_cost : int -> float;
      (** Area of an [r]-input 1-output multiplexer; 0 for [r <= 1].
          Non-linear in [r], as the paper notes for real libraries. *)
  reg_cost : float;  (** Area of one register. *)
  cycles : Dfg.Op.kind -> int;  (** Execution time in control steps. *)
  prop_delay : Dfg.Op.kind -> float;  (** Propagation delay in ns (chaining). *)
}

val make_alu : ?stages:int -> Dfg.Op.kind list -> alu_kind
(** Build an ALU kind with the default area model: a fixed overhead plus the
    cost of the most expensive capability plus a discounted sum of the
    remaining capabilities — so merging operations into one ALU is cheaper
    than instantiating separate units, which is what makes simultaneous
    scheduling-allocation worthwhile. *)

val candidates : t -> Dfg.Op.kind -> alu_kind list
(** ALU kinds able to execute the given operation, cheapest first. *)

val single_function : t -> Dfg.Op.kind -> alu_kind
(** The single-function unit for a kind (used by MFS and the baselines).
    Falls back to {!make_alu} if the library lists no such unit. *)

val max_alu_area : t -> float
(** Largest ALU area in the library — bounds the paper's [f_ALU] term. *)

val max_mux_marginal : t -> float
(** Largest marginal cost of adding one multiplexer input, sampled over
    fan-ins 1..32 — bounds the paper's [f_MUX] term. *)

val restrict : t -> Dfg.Op.kind list -> t
(** Keep only ALU kinds whose every capability lies in the given set.
    Mirrors the paper's "cell library ... may be restricted to some specific
    types". *)

val generated :
  ?max_ops:int -> ?mux_cost:(int -> float) -> ?reg_cost:float ->
  ?cycles:(Dfg.Op.kind -> int) -> ?prop_delay:(Dfg.Op.kind -> float) ->
  Dfg.Op.kind list -> t
(** Library containing every non-empty combination of at most [max_ops]
    (default 4) kinds from the given universe, costed by {!make_alu};
    multiplication and division only combine with at most one other kind
    (full crossbars of heavy units are unrealistic). *)

val pp_alu : Format.formatter -> alu_kind -> unit

(** {2 Width-parametric scaling}

    The base library prices every unit at the full machine word.
    [Analysis.Ranges] infers per-value bit widths; these scalers price a
    unit instantiated at a narrower width. All factors are exactly [1.0]
    at {!word_width} bits, so unannotated designs cost what they always
    did; floors keep narrow units from becoming free. *)

val word_width : int
(** The machine word, in bits (32). *)

val area_factor : Dfg.Op.kind -> width:int -> float
(** Area multiplier at [width] bits: ~quadratic for multiply/divide,
    ~linear otherwise. Clamped to [1..word_width]. *)

val delay_factor : Dfg.Op.kind -> width:int -> float
(** Propagation-delay multiplier at [width] bits (linear with a
    kind-dependent floor — carry chains shorten, wiring does not). *)

val scaled_capability_area : Dfg.Op.kind -> width:int -> float

val scaled_alu_area : alu_kind -> width:int -> float
(** {!make_alu}'s area model with every capability priced at [width]
    bits; the fixed overhead is width-independent and pipeline-stage
    registers scale linearly. *)

val scaled_prop_delay : t -> Dfg.Op.kind -> width:int -> float

val scaled_reg_cost : t -> width:int -> float
(** One register storing a [width]-bit value. *)
