type alu_kind = {
  aname : string;
  ops : Op_set.t;
  area : float;
  stages : int;
}

type t = {
  alus : alu_kind list;
  mux_cost : int -> float;
  reg_cost : float;
  cycles : Dfg.Op.kind -> int;
  prop_delay : Dfg.Op.kind -> float;
}

(* Per-capability functional area (µm², loosely NCR-scaled: a multiplier is
   an order of magnitude bigger than an adder). *)
let capability_area : Dfg.Op.kind -> float = function
  | Mul -> 12500.
  | Div -> 14500.
  | Mod -> 14500.
  | Add -> 1800.
  | Sub -> 1950.
  | Shl | Shr -> 1500.
  | Lt | Le | Gt | Ge -> 950.
  | Eq | Ne -> 800.
  | And | Or | Xor -> 620.
  | Not | Neg -> 400.
  | Mov -> 250.
  (* Access-port control logic (address decode + data steering); the bank
     macro itself is priced by [Bank.area], not per capability. *)
  | Load | Store -> 520.

let alu_overhead = 800.
let merge_discount = 0.55

let make_alu ?(stages = 1) kinds =
  let ops = Op_set.of_list kinds in
  let areas = List.map capability_area (Op_set.elements ops) in
  let biggest = List.fold_left max 0. areas in
  let total = List.fold_left ( +. ) 0. areas in
  let area = alu_overhead +. biggest +. (merge_discount *. (total -. biggest)) in
  (* A pipelined unit pays register stages. *)
  let area = area +. (float_of_int (stages - 1) *. 500.) in
  let aname =
    if stages > 1 then Printf.sprintf "%s/p%d" (Op_set.name ops) stages
    else Op_set.name ops
  in
  { aname; ops; area; stages }

let candidates lib kind =
  List.filter (fun a -> Op_set.mem kind a.ops) lib.alus
  |> List.sort (fun a b -> compare a.area b.area)

let single_function lib kind =
  let singles =
    List.filter
      (fun a -> Op_set.equal a.ops (Op_set.singleton kind))
      lib.alus
  in
  match List.sort (fun a b -> compare a.area b.area) singles with
  | a :: _ -> a
  | [] -> make_alu [ kind ]

let max_alu_area lib =
  List.fold_left (fun acc a -> max acc a.area) 0. lib.alus

let max_mux_marginal lib =
  let best = ref 0. in
  for r = 1 to 32 do
    best := max !best (lib.mux_cost (r + 1) -. lib.mux_cost r)
  done;
  !best

let restrict lib kinds =
  let allowed = Op_set.of_list kinds in
  { lib with
    alus = List.filter (fun a -> Op_set.subset a.ops allowed) lib.alus }

let default_mux_cost r =
  if r <= 1 then 0.
  else
    let log2 =
      let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
      go 0 r
    in
    120. +. (140. *. float_of_int r) +. (60. *. float_of_int log2)

let default_reg_cost = 650.

let default_cycles : Dfg.Op.kind -> int = fun _ -> 1

let default_prop_delay : Dfg.Op.kind -> float = function
  | Mul | Div | Mod -> 80.
  | Add | Sub -> 40.
  | Shl | Shr -> 25.
  | Lt | Le | Gt | Ge | Eq | Ne -> 30.
  | And | Or | Xor | Not | Neg | Mov -> 12.
  | Load | Store -> 45.

let heavy = function Dfg.Op.Mul | Div | Mod -> true | _ -> false

(* All subsets of [universe] of size <= max_ops, with heavy units combined
   with at most one light kind. *)
let combos ~max_ops universe =
  let rec subsets k = function
    | [] -> [ [] ]
    | _ when k = 0 -> [ [] ]
    | x :: rest ->
        let without = subsets k rest in
        let with_x = List.map (fun s -> x :: s) (subsets (k - 1) rest) in
        with_x @ without
  in
  subsets max_ops universe
  |> List.filter (fun s ->
         s <> []
         &&
         let heavies = List.filter heavy s in
         match heavies with
         | [] -> true
         | [ _ ] -> List.length s <= 2
         | _ -> false)

let generated ?(max_ops = 4) ?(mux_cost = default_mux_cost)
    ?(reg_cost = default_reg_cost) ?(cycles = default_cycles)
    ?(prop_delay = default_prop_delay) universe =
  (* Memory accesses run on bank ports, never on ALUs: they contribute no
     combinational unit to the library. *)
  let universe =
    List.sort_uniq compare (List.filter (fun k -> not (Dfg.Op.is_mem k)) universe)
  in
  let alus = List.map make_alu (combos ~max_ops universe) in
  { alus; mux_cost; reg_cost; cycles; prop_delay }

let pp_alu ppf a = Format.fprintf ppf "%s:%.0fum2" a.aname a.area

(* ---- Width-parametric scaling -------------------------------------- *)

let word_width = 32

(* Fraction of a full-word operator needed at [width] bits. Array
   multipliers and dividers scale ~quadratically with operand width;
   adders, shifters and bitwise logic scale ~linearly. A fixed floor
   keeps narrow units from becoming free (control, wiring, drivers), and
   the factor is exactly 1.0 at the full word so unannotated designs cost
   what they always did. *)
let width_fraction w =
  let w = max 1 (min word_width w) in
  float_of_int w /. float_of_int word_width

let area_factor kind ~width =
  let f = width_fraction width in
  match kind with
  | Dfg.Op.Mul | Div | Mod -> 0.10 +. (0.90 *. f *. f)
  | _ -> 0.15 +. (0.85 *. f)

let delay_factor kind ~width =
  let f = width_fraction width in
  match kind with
  | Dfg.Op.Mul | Div | Mod -> 0.20 +. (0.80 *. f)
  | Add | Sub | Lt | Le | Gt | Ge | Eq | Ne -> 0.30 +. (0.70 *. f)
  | Shl | Shr -> 0.50 +. (0.50 *. f)
  | And | Or | Xor | Not | Neg | Mov -> 0.70 +. (0.30 *. f)
  (* Bank access time is dominated by the word line, not the data width. *)
  | Load | Store -> 0.85 +. (0.15 *. f)

let scaled_capability_area kind ~width =
  capability_area kind *. area_factor kind ~width

(* Mirror of [make_alu] with every capability priced at [width] bits.
   Overhead is width-independent; pipeline stage registers scale like
   registers (linearly). *)
let scaled_alu_area a ~width =
  let areas =
    List.map
      (fun k -> scaled_capability_area k ~width)
      (Op_set.elements a.ops)
  in
  let biggest = List.fold_left max 0. areas in
  let total = List.fold_left ( +. ) 0. areas in
  let area = alu_overhead +. biggest +. (merge_discount *. (total -. biggest)) in
  area
  +. float_of_int (a.stages - 1) *. 500.
     *. (0.15 +. (0.85 *. width_fraction width))

let scaled_prop_delay lib kind ~width =
  lib.prop_delay kind *. delay_factor kind ~width

let scaled_reg_cost lib ~width =
  lib.reg_cost *. (0.15 +. (0.85 *. width_fraction width))
