type align = Left | Right

let pad align width s =
  let fill = width - String.length s in
  if fill <= 0 then s
  else
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length h) rows)
      header
  in
  let aligns =
    match aligns with
    | Some l when List.length l = ncols -> l
    | _ -> List.init ncols (fun _ -> Left)
  in
  let line cells =
    String.concat "  "
      (List.mapi
         (fun c cell -> pad (List.nth aligns c) (List.nth widths c) cell)
         cells)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: rule :: List.map line rows) ^ "\n"

(* RFC-4180-style quoting: a field containing a comma, quote or line
   break is wrapped in double quotes with embedded quotes doubled. *)
let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quote then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv ?header rows =
  let line cells = String.concat "," (List.map csv_field cells) in
  let all = match header with None -> rows | Some h -> h :: rows in
  String.concat "\n" (List.map line all) ^ "\n"

let render_kv pairs =
  let w =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  String.concat "\n"
    (List.map (fun (k, v) -> Printf.sprintf "%s : %s" (pad Left w k) v) pairs)
  ^ "\n"
