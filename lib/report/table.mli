(** ASCII table rendering for the bench harness and the CLI (the repo's
    Table 1 / Table 2 outputs). *)

type align = Left | Right

val render :
  ?aligns:align list -> header:string list -> string list list -> string
(** Fixed-width table with a header rule. Rows shorter than the header are
    padded with empty cells; [aligns] defaults to all-left. *)

val to_csv : ?header:string list -> string list list -> string
(** The same rows as CSV (RFC-4180 quoting: fields containing commas,
    quotes or line breaks are double-quoted with quotes doubled). Used by
    [synth explore --csv] and [synth compare --csv]. *)

val render_kv : (string * string) list -> string
(** Two-column key/value block. *)
