(** Frozen seed move-frame scheduler: the original placement-list grid with
    eager move-frame materialisation, kept unoptimised as a behavioural
    oracle.  [run]/[schedule] mirror [Core.Mfs.run]/[Core.Mfs.schedule] and
    must produce identical outcomes (same starts, columns, makespan and
    Liapunov trace) — the equivalence property test and the scaling
    benchmark both rely on that. *)

val run :
  ?config:Core.Config.t ->
  ?max_units:(string * int) list ->
  Dfg.Graph.t ->
  Core.Mfs.spec ->
  (Core.Mfs.outcome, string) result

val schedule :
  ?config:Core.Config.t ->
  ?max_units:(string * int) list ->
  Dfg.Graph.t ->
  Core.Mfs.spec ->
  (Core.Schedule.t, string) result
