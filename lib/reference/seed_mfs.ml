(* Frozen copy of the seed (pre-array-kernel) move-frame scheduler, kept as
   a behavioural oracle for the optimised [Core.Mfs] / [Core.Grid] pair.

   The occupancy grid here is the original placement-list representation
   (O(placements) probes) and the move frame is materialised eagerly before
   [Core.Liapunov.best] picks the minimum-energy position, exactly as in the
   seed.  Only the restart/widening statistics follow the current split
   semantics so [outcome] values compare field-for-field against the live
   scheduler.  Do not optimise this module — its value is that it does not
   change. *)

(* The seed list-backed occupancy grid. *)
module List_grid = struct
  type placement = { op : int; col : int; step : int; span : int }

  type t = {
    horizon : int;
    mutable ncols : int;
    mutable items : placement list; (* most recent first *)
  }

  let create ~steps ~cols = { horizon = steps; ncols = max 0 cols; items = [] }

  let place t ~op ~col ~step ~span =
    if col < 1 || col > t.ncols then
      invalid_arg
        (Printf.sprintf "Grid.place: column %d outside 1..%d" col t.ncols);
    if step < 1 || step + span - 1 > t.horizon then
      invalid_arg
        (Printf.sprintf "Grid.place: steps %d..%d outside 1..%d" step
           (step + span - 1) t.horizon);
    t.items <- { op; col; step; span } :: t.items

  let conflicts t ~latency ~col ~step ~span =
    List.filter_map
      (fun p ->
        if
          p.col = col
          && Core.Grid.steps_overlap ~latency p.step p.span step span
        then Some p.op
        else None)
      t.items

  let free t ~exclusive ~latency ~op ~span (pos : Core.Frames.pos) =
    let occ =
      conflicts t ~latency ~col:pos.Core.Frames.col ~step:pos.Core.Frames.step
        ~span
    in
    List.for_all (fun other -> exclusive op other) occ
end

exception Need_more_units of string
exception Unit_limit of string

let lookup assoc key = List.assoc_opt key assoc
let effective_bounds = Core.Timeframe.bounds
let min_cs = Core.Timeframe.min_cs
let step_admissible = Core.Timeframe.step_admissible

type state = {
  grids : (string, List_grid.t) Hashtbl.t;
  start : int array;
  col : int array;
  offset : float array;
}

let attempt cfg g bounds order ~objective ~max_j ~current ~trace =
  let n = Dfg.Graph.num_nodes g in
  let cs = bounds.Dfg.Bounds.cs in
  let st =
    {
      grids = Hashtbl.create 8;
      start = Array.make n 0;
      col = Array.make n 0;
      offset = Array.make n 0.0;
    }
  in
  List.iter
    (fun c ->
      Hashtbl.replace st.grids c
        (List_grid.create ~steps:cs ~cols:(Hashtbl.find max_j c)))
    (Dfg.Graph.classes g);
  let exclusive i j =
    cfg.Core.Config.share_mutex && Dfg.Graph.mutually_exclusive g i j
  in
  let latency = cfg.Core.Config.functional_latency in
  List.iter
    (fun i ->
      let nd = Dfg.Graph.node g i in
      let c = Dfg.Graph.node_class g nd in
      let grid = Hashtbl.find st.grids c in
      let sp = Core.Config.span cfg nd.Dfg.Graph.kind in
      let offsets_at = Hashtbl.create 4 in
      let forbidden s =
        match
          step_admissible cfg g ~start:st.start ~offset:st.offset i s
        with
        | Some off ->
            Hashtbl.replace offsets_at s off;
            false
        | None -> true
      in
      let pf =
        Core.Frames.primary ~step_lo:bounds.Dfg.Bounds.asap.(i)
          ~step_hi:bounds.Dfg.Bounds.alap.(i)
          ~max_cols:(Hashtbl.find max_j c)
      in
      let rf =
        Core.Frames.redundant ~current:(Hashtbl.find current c)
          ~max_cols:(Hashtbl.find max_j c)
          ~step_lo:bounds.Dfg.Bounds.asap.(i)
          ~step_hi:bounds.Dfg.Bounds.alap.(i)
      in
      let free = List_grid.free grid ~exclusive ~latency ~op:i ~span:sp in
      let candidates = Core.Frames.move_frame ~pf ~rf ~forbidden ~free in
      match Core.Liapunov.best objective candidates with
      | None -> raise (Need_more_units c)
      | Some pos ->
          let from_pos =
            List.fold_left
              (fun acc p ->
                if
                  Core.Liapunov.value objective p
                  > Core.Liapunov.value objective acc
                then p
                else acc)
              pos candidates
          in
          Core.Liapunov.Trace.record trace objective ~op:i ~from_pos
            ~to_pos:pos;
          List_grid.place grid ~op:i ~col:pos.Core.Frames.col
            ~step:pos.Core.Frames.step ~span:sp;
          st.start.(i) <- pos.Core.Frames.step;
          st.col.(i) <- pos.Core.Frames.col;
          st.offset.(i) <-
            (match Hashtbl.find_opt offsets_at pos.Core.Frames.step with
            | Some off -> off
            | None -> 0.0))
    order;
  st

let initial_counts cfg g bounds ~user_limits ~cs =
  let classes = Dfg.Graph.classes g in
  let counts = Dfg.Graph.count_by_class g in
  let conc_of start =
    Dfg.Bounds.concurrency ~delays:(Core.Config.delay cfg) g ~start ~cs
  in
  let asap_conc = conc_of bounds.Dfg.Bounds.asap in
  let alap_conc = conc_of bounds.Dfg.Bounds.alap in
  let cs_effective =
    match cfg.Core.Config.functional_latency with
    | Some l -> min l cs
    | None -> cs
  in
  let current = Hashtbl.create 8 in
  let max_j = Hashtbl.create 8 in
  let user_limited = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let n_c = Option.value ~default:0 (lookup counts c) in
      let init = max 1 ((n_c + cs_effective - 1) / cs_effective) in
      let upper =
        match lookup user_limits c with
        | Some u ->
            Hashtbl.replace user_limited c true;
            u
        | None ->
            Hashtbl.replace user_limited c false;
            max init
              (max
                 (Option.value ~default:1 (lookup asap_conc c))
                 (Option.value ~default:1 (lookup alap_conc c)))
      in
      Hashtbl.replace current c (min init upper);
      Hashtbl.replace max_j c (max 1 upper))
    classes;
  (current, max_j, user_limited)

let total_ops g = Dfg.Graph.num_nodes g

(* The seed computes the final configuration's Liapunov value the obvious
   way — a full fold over every placement — serving as the oracle for the
   kernel's incrementally maintained total. *)
let config_energy objective st g =
  Core.Liapunov.total objective
    (List.map
       (fun nd ->
         let i = nd.Dfg.Graph.id in
         { Core.Frames.col = st.col.(i); step = st.start.(i) })
       (Dfg.Graph.nodes g))

let run_time cfg g ~cs ~user_limits =
  match effective_bounds cfg g ~cs with
  | Error _ as e -> e
  | Ok bounds ->
      let order = Core.Priority.order cfg g bounds in
      let current, max_j, user_limited =
        initial_counts cfg g bounds ~user_limits ~cs
      in
      let trace = Core.Liapunov.Trace.create () in
      let restarts = ref 0 in
      let widenings = ref 0 in
      let budget = ref ((2 * total_ops g) + 8) in
      let rec loop () =
        let n_energy = Hashtbl.fold (fun _ v acc -> max v acc) max_j 1 in
        let objective = Core.Liapunov.Time_constrained { n = n_energy } in
        match attempt cfg g bounds order ~objective ~max_j ~current ~trace with
        | st ->
            let schedule =
              Core.Schedule.make ~col:st.col ~offset:st.offset ~config:cfg ~cs
                g st.start
            in
            Ok
              {
                Core.Mfs.schedule;
                objective;
                trace;
                restarts = !restarts;
                widenings = !widenings;
                energy = config_energy objective st g;
              }
        | exception Need_more_units c ->
            decr budget;
            if !budget <= 0 then
              Error "MFS: rescheduling budget exhausted (internal)"
            else begin
              incr restarts;
              let cur = Hashtbl.find current c in
              if cur < Hashtbl.find max_j c then
                Hashtbl.replace current c (cur + 1)
              else if Hashtbl.find user_limited c then raise (Unit_limit c)
              else begin
                incr widenings;
                Hashtbl.replace max_j c (Hashtbl.find max_j c + 1);
                Hashtbl.replace current c (cur + 1)
              end;
              loop ()
            end
      in
      (try loop () with
      | Unit_limit c ->
          Error
            (Printf.sprintf
               "MFS: cannot meet time budget %d with the given limit on %s \
                units"
               cs c))

let run_resource cfg g ~limits =
  let lo = min_cs cfg g in
  let hi =
    List.fold_left
      (fun acc nd -> acc + Core.Config.delay cfg nd.Dfg.Graph.kind)
      1 (Dfg.Graph.nodes g)
  in
  let restarts = ref 0 in
  let rec search cs =
    if cs > hi then
      Error "MFS: resource-constrained search exceeded the serial horizon"
    else
      match effective_bounds cfg g ~cs with
      | Error _ -> search (cs + 1)
      | Ok bounds -> (
          let order = Core.Priority.order cfg g bounds in
          let current = Hashtbl.create 8 in
          let max_j = Hashtbl.create 8 in
          List.iter
            (fun c ->
              let u = Option.value ~default:max_int (lookup limits c) in
              let u =
                if u = max_int then
                  Option.value ~default:1
                    (lookup (Dfg.Graph.count_by_class g) c)
                else u
              in
              Hashtbl.replace current c (max 1 u);
              Hashtbl.replace max_j c (max 1 u))
            (Dfg.Graph.classes g);
          let trace = Core.Liapunov.Trace.create () in
          let objective = Core.Liapunov.Resource_constrained { cs } in
          match
            attempt cfg g bounds order ~objective ~max_j ~current ~trace
          with
          | st ->
              let schedule =
                Core.Schedule.make ~col:st.col ~offset:st.offset ~config:cfg
                  ~cs g st.start
              in
              let makespan = Core.Schedule.makespan schedule in
              let schedule = { schedule with Core.Schedule.cs = makespan } in
              Ok
                {
                  Core.Mfs.schedule;
                  objective;
                  trace;
                  restarts = !restarts;
                  widenings = cs - lo;
                  energy = config_energy objective st g;
                }
          | exception Need_more_units _ ->
              incr restarts;
              search (cs + 1))
  in
  search lo

let run ?(config = Core.Config.default) ?(max_units = []) g spec =
  if Dfg.Graph.num_nodes g = 0 then Error "MFS: empty graph"
  else
    match spec with
    | Core.Mfs.Time { cs } -> run_time config g ~cs ~user_limits:max_units
    | Core.Mfs.Resource { limits } -> run_resource config g ~limits

let schedule ?config ?max_units g spec =
  Result.map
    (fun o -> o.Core.Mfs.schedule)
    (run ?config ?max_units g spec)
