(** Staged pipeline driver with graceful degradation, shared by the fuzz
    campaign and the CLI.

    Stages: CSE → schedule (MFS) → fault injection → cross-stage
    invariants → bind (MFSA) → datapath checks → controller → simulation
    vs the golden model. Each stage is wall-clock timed against a budget;
    an internal failure in a kernel stage is recorded as a violation and
    the stage degrades to a baseline ({!Baselines.List_sched} + column
    packing for MFS, column-packed single-function binding for MFSA), so
    one defect never hides what the rest of the pipeline would have
    found. Expected rejections — infeasible budgets, malformed input —
    stop the run with [stopped] set and are not violations. *)

type options = {
  cs : int;  (** Time budget; [<= 0] means the critical-path minimum. *)
  limits : (string * int) list;
      (** Resource-constrained MFS when non-empty. *)
  two_cycle : bool;
  pipelined : bool;
  latency : int option;
  clock : float option;
  style2 : bool;
  cse : bool;
  widths : bool;
      (** Width-aware mode: run [Analysis.Ranges], feed width-scaled
          per-node delays to the chaining probes, and add a
          narrowing-safety simulation stage ([Sim.Equiv.check_narrowing])
          after the random-equivalence stage. *)
  baseline_only : bool;
      (** Skip the MFS/MFSA primaries and run the degradation chain
          directly (list scheduling + column packing, column-packed
          single-function binding). Used by the batch {!Retry} policy to
          re-run a timed-out job on cheaper engines; [sched_via] /
          [bind_via] report [Fallback] without recording a violation. *)
}

val default_options : options

val options_to_flags : options -> string
(** Render as [synth] command-line flags, for reproducer corpus entries. *)

type budgets = {
  stage_seconds : float;
      (** Wall-clock budget per stage. {b Advisory}: the driver measures
          each stage {e after it returns} and merely sets
          {!stage_report.over_budget} post-hoc — a stage stuck in an
          infinite loop is never preempted in-process. Hard enforcement
          is the batch layer's job: run the driver under {!Batch.Pool},
          whose per-job wall-clock watchdog SIGKILLs the worker at its
          deadline (verdict [Timeout]). *)
  sim_runs : int;  (** Fuel for the random-equivalence stage. *)
}

val default_budgets : budgets

type via = Primary | Fallback of string

type stage_report = {
  stage : string;
  seconds : float;
  over_budget : bool;
      (** Post-hoc record that [seconds] exceeded
          {!budgets.stage_seconds}; nothing was interrupted. See the
          advisory note on {!budgets}. *)
  note : string;
}

type outcome = {
  schedule : Core.Schedule.t option;
  sched_via : via;
  bind_via : via option;  (** [None] when binding was never reached. *)
  stopped : Diag.t option;
      (** Expected early stop (infeasible / bad input); never a bug. *)
  violations : Diag.t list;
      (** Internal diagnostics and invariant breaches — the defects. *)
  fault_applied : bool;
  stages : stage_report list;  (** In execution order. *)
}

val run :
  ?fault:Fault.t -> ?budgets:budgets -> ?options:options -> Dfg.Graph.t ->
  outcome
(** Drive one graph through the pipeline. Never raises by design; the
    fuzz layer still guards against escapes and classifies them as
    crashes. *)

val colbind_datapath :
  Celllib.Library.t -> Core.Config.t -> Dfg.Graph.t -> Core.Schedule.t ->
  (Rtl.Datapath.t, string) result
(** The MFSA fallback binding, exposed for tests: every (class, column)
    pair of the schedule becomes one single-function ALU instance. *)
