type options = {
  cs : int;
  limits : (string * int) list;
  two_cycle : bool;
  pipelined : bool;
  latency : int option;
  clock : float option;
  style2 : bool;
  cse : bool;
  widths : bool;
  baseline_only : bool;
}

let default_options =
  {
    cs = 0;
    limits = [];
    two_cycle = false;
    pipelined = false;
    latency = None;
    clock = None;
    style2 = false;
    cse = false;
    widths = false;
    baseline_only = false;
  }

let options_to_flags o =
  let b flag on acc = if on then flag :: acc else acc in
  []
  |> b "--baseline-only" o.baseline_only
  |> b "--widths" o.widths
  |> b "--cse" o.cse
  |> b "--two-cycle-mult" o.two_cycle
  |> b "--pipelined-mult" o.pipelined
  |> b "--style 2" o.style2
  |> (fun acc ->
       match o.clock with
       | None -> acc
       | Some c -> Printf.sprintf "--clock %g" c :: acc)
  |> (fun acc ->
       match o.latency with
       | None -> acc
       | Some l -> Printf.sprintf "--latency %d" l :: acc)
  |> (fun acc ->
       List.fold_left
         (fun acc (c, k) -> Printf.sprintf "--limit '%s=%d'" c k :: acc)
         acc o.limits)
  |> (fun acc -> if o.cs > 0 then Printf.sprintf "--cs %d" o.cs :: acc else acc)
  |> String.concat " "

type budgets = { stage_seconds : float; sim_runs : int }

let default_budgets = { stage_seconds = 5.0; sim_runs = 5 }

type via = Primary | Fallback of string

type stage_report = {
  stage : string;
  seconds : float;
  over_budget : bool;
  note : string;
}

type outcome = {
  schedule : Core.Schedule.t option;
  sched_via : via;
  bind_via : via option;
  stopped : Diag.t option;
  violations : Diag.t list;
  fault_applied : bool;
  stages : stage_report list;
}

(* Wall-clock per stage; CPU time is a lie under contention and the budget
   is meant to catch hangs-in-the-making, not cycles. *)
let now () = Unix.gettimeofday ()

let make_library g ~two_cycle ~pipelined =
  let lib = Celllib.Ncr.for_graph g in
  if pipelined then Celllib.Ncr.pipelined_multiplier lib
  else if two_cycle then Celllib.Ncr.two_cycle_multiplier lib
  else lib

let make_config lib ~clock ~latency =
  let cfg = Core.Config.of_library lib in
  let cfg =
    match clock with
    | None -> cfg
    | Some clk ->
        {
          cfg with
          Core.Config.chaining =
            Some
              {
                Core.Config.prop_delay = lib.Celllib.Library.prop_delay;
                clock = clk;
              };
        }
  in
  { cfg with Core.Config.functional_latency = latency }

(* Column-packed binding from a schedule's FU columns, for the MFSA
   fallback: every (class, column) pair becomes one single-function ALU
   instance. [fu_class] is injective per kind here, so each group is
   kind-homogeneous. *)
let colbind_datapath lib config g s =
  let col =
    match s.Core.Schedule.col with
    | Some c -> c
    | None -> Baselines.Colbind.columns config g ~start:s.Core.Schedule.start
  in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun nd ->
      let key = (nd.Dfg.Graph.kind, col.(nd.Dfg.Graph.id)) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (nd.Dfg.Graph.id :: prev))
    (Dfg.Graph.nodes g);
  let assignments =
    Hashtbl.fold
      (fun (kind, _) ids acc ->
        (Celllib.Library.single_function lib kind, List.rev ids) :: acc)
      groups []
  in
  let delay i =
    Core.Config.delay config (Dfg.Graph.node g i).Dfg.Graph.kind
  in
  Rtl.Datapath.elaborate g ~start:s.Core.Schedule.start ~delay
    ~cs:s.Core.Schedule.cs ~assignments

let run ?fault ?(budgets = default_budgets) ?(options = default_options) g0 =
  let stages = ref [] in
  let violations = ref [] in
  let fault_applied = ref false in
  let violate d = violations := d :: !violations in
  let timed name ?(note = "") f =
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    stages :=
      {
        stage = name;
        seconds = dt;
        over_budget = dt > budgets.stage_seconds;
        note;
      }
      :: !stages;
    r
  in
  let annotate note =
    match !stages with
    | s :: rest -> stages := { s with note } :: rest
    | [] -> ()
  in
  let finish ?schedule ?(sched_via = Primary) ?bind_via ?stopped () =
    {
      schedule;
      sched_via;
      bind_via;
      stopped;
      violations = List.rev !violations;
      fault_applied = !fault_applied;
      stages = List.rev !stages;
    }
  in
  (* --- CSE (optional); a rejection of a builder-valid graph is a CSE
     defect, noted and survived by continuing with the original graph. *)
  let g =
    if not options.cse then g0
    else
      timed "cse" (fun () ->
          match Dfg.Cse.eliminate g0 with
          | Ok g -> g
          | Error msg ->
              violate
                (Diag.internal ~code:"harness.cse"
                   ("CSE failed on a valid graph: " ^ msg));
              g0)
  in
  let lib = make_library g ~two_cycle:options.two_cycle ~pipelined:options.pipelined in
  let config = make_config lib ~clock:options.clock ~latency:options.latency in
  (* Width-aware runs compute the range facts once; they feed the chaining
     probes (per-node delays) and the narrowing-safety simulation below. *)
  let facts = if options.widths then Some (Analysis.Ranges.analyze g) else None in
  let config =
    match facts with
    | None -> config
    | Some f ->
        { config with
          Core.Config.node_delay = Analysis.Ranges.node_delays lib g f }
  in
  let cs =
    if options.cs <= 0 then Core.Timeframe.min_cs config g else options.cs
  in
  (* --- Static pre-gate: DFG lint + feasibility bounds. An error finding on
     the input stops the run before any scheduler time is spent; in
     resource-constrained mode no step budget binds, so only the unit caps
     are checked. *)
  let pre_stop =
    timed "lint-pre" (fun () ->
        let fs =
          if options.limits = [] then Analysis.Runner.pre ~cs config g
          else Analysis.Runner.pre ~limits:options.limits config g
        in
        Analysis.Runner.stop_diag fs)
  in
  match pre_stop with
  | Some d -> finish ~stopped:d ()
  | None ->
  (* --- Schedule: MFS, degrading to list scheduling + left-edge column
     packing when MFS hits an internal wall (the defect is still counted —
     degradation keeps the campaign going, it does not launder bugs). *)
  let spec =
    if options.limits = [] then Core.Mfs.Time { cs }
    else Core.Mfs.Resource { limits = options.limits }
  in
  let baseline_schedule () =
    let fb =
      if options.limits = [] then Baselines.List_sched.time ~config g ~cs
      else Baselines.List_sched.resource ~config g ~limits:options.limits
    in
    match fb with
    | Ok s ->
        let col =
          Baselines.Colbind.columns config g ~start:s.Core.Schedule.start
        in
        `Fallback { s with Core.Schedule.col = Some col }
    | Error msg ->
        `Stop
          (Diag.infeasible ~code:"harness.fallback-schedule"
             ("list-scheduling fallback also failed: " ^ msg))
  in
  let sched_result =
    timed "schedule" (fun () ->
        if options.baseline_only then baseline_schedule ()
        else
          match Core.Mfs.run ~config g spec with
          | Ok o -> `Primary (o.Core.Mfs.schedule, o.Core.Mfs.trace)
          | Error d when Diag.is_bug d ->
              violate d;
              baseline_schedule ()
          | Error d -> `Stop d)
  in
  match sched_result with
  | `Stop d -> finish ~stopped:d ()
  | (`Primary _ | `Fallback _) as r ->
      let pristine, trace, sched_via =
        match r with
        | `Primary (s, tr) -> (s, Some tr, Primary)
        | `Fallback s ->
            annotate
              (if options.baseline_only then
                 "baseline engines forced (list scheduling + column packing)"
               else "MFS degraded to list scheduling + column packing");
            (s, None, Fallback "list_sched+colbind")
      in
      (* --- Inject (optional): corrupt the artifact the fault targets. *)
      let sched = ref pristine in
      let trace = ref trace in
      timed "inject" (fun () ->
          match fault with
          | None -> ()
          | Some Fault.Corrupt_start -> (
              match Fault.corrupt_start !sched with
              | Some s ->
                  sched := s;
                  fault_applied := true
              | None -> ())
          | Some Fault.Corrupt_col -> (
              match Fault.corrupt_col !sched with
              | Some s ->
                  sched := s;
                  fault_applied := true
              | None -> ())
          | Some Fault.Corrupt_trace -> (
              match Option.map Fault.corrupt_trace !trace with
              | Some (Some tr) ->
                  trace := Some tr;
                  fault_applied := true
              | _ -> ())
          | Some Fault.Collide_mem -> (
              match Fault.collide_mem !sched with
              | Some s ->
                  sched := s;
                  fault_applied := true
              | None -> ())
          | Some Fault.Skew_delay -> ()
          | Some Fault.Hang ->
              (* A process fault: the pipeline never returns from here.
                 Only the batch pool's wall-clock SIGKILL ends the run —
                 the per-stage budget below is advisory and would merely
                 have recorded the overrun post-hoc. *)
              fault_applied := true;
              Fault.hang ()
          | Some Fault.Segv ->
              fault_applied := true;
              Fault.segv ());
      (* --- Invariants: schedule validity and Liapunov stability. *)
      timed "invariants" (fun () ->
          (match Core.Schedule.check_diag !sched with
          | Ok () -> ()
          | Error d -> violate d);
          match !trace with
          | None -> ()
          | Some tr ->
              if not (Core.Liapunov.Trace.non_increasing tr) then
                violate
                  (Diag.internal ~code:"harness.trace-monotone"
                     "Liapunov trace is not monotone non-increasing");
              if not (Core.Liapunov.Trace.positive tr) then
                violate
                  (Diag.internal ~code:"harness.trace-positive"
                     "Liapunov trace has a non-positive energy"));
      (* --- Bind: MFSA, degrading to the schedule's own columns bound as
         single-function units when MFSA hits an internal wall. *)
      let style =
        if options.style2 then Core.Mfsa.No_self_loop
        else Core.Mfsa.Unrestricted
      in
      let baseline_bind () =
        match colbind_datapath lib config g pristine with
        | Ok dp -> `Fallback dp
        | Error msg ->
            `Stop
              (Diag.internal ~code:"harness.fallback-bind"
                 ("column-packed binding fallback failed: " ^ msg))
      in
      let bind_result =
        timed "bind" (fun () ->
            if options.baseline_only then baseline_bind ()
            else
              match Core.Mfsa.run ~config ~style ~library:lib ~cs g with
              | Ok o -> `Primary o.Core.Mfsa.datapath
              | Error d when Diag.is_bug d ->
                  violate d;
                  baseline_bind ()
              | Error d -> `Stop d)
      in
      match bind_result with
      | `Stop d ->
          if Diag.is_bug d then begin
            violate d;
            finish ~schedule:!sched ~sched_via ()
          end
          else finish ~schedule:!sched ~sched_via ~stopped:d ()
      | (`Primary _ | `Fallback _) as b ->
          let dp, bind_via =
            match b with
            | `Primary dp -> (dp, Primary)
            | `Fallback dp ->
                annotate
                  (if options.baseline_only then
                     "baseline engines forced (column-packed binding)"
                   else
                     "MFSA degraded to column-packed single-function binding");
                (dp, Fallback "colbind")
          in
          let delay i =
            Core.Config.delay config (Dfg.Graph.node g i).Dfg.Graph.kind
          in
          (* --- Datapath checks, with the skew fault applied to the delay
             model the checker (and the static RTL lint below) sees. *)
          let eff_delay =
            match fault with
            | Some Fault.Skew_delay -> (
                match Fault.skew_delay dp ~delay with
                | Some d ->
                    fault_applied := true;
                    d
                | None -> delay)
            | _ -> delay
          in
          timed "check" (fun () ->
              match
                Rtl.Check.datapath ~style2:options.style2
                  ~steps_overlap:
                    (Core.Grid.steps_overlap
                       ~latency:config.Core.Config.functional_latency)
                  dp ~delay:eff_delay
              with
              | Ok () -> ()
              | Error ds -> List.iter violate ds);
          (* --- Controller + simulation vs the golden model. *)
          let ctrl =
            timed "controller" (fun () ->
                match Rtl.Controller.generate dp ~delay with
                | Ok c -> Some c
                | Error msg ->
                    violate
                      (Diag.internal ~code:"harness.controller"
                         ("controller generation failed: " ^ msg));
                    None)
          in
          (* --- Static post-gate: schedule, lifetime, trace and RTL
             dataflow audits; error findings count as violations. *)
          timed "lint-post" (fun () ->
              let fs =
                Analysis.Runner.post_schedule ?trace:!trace !sched
                @
                match ctrl with
                | Some c ->
                    Analysis.Runner.post_rtl
                      ~share_mutex:config.Core.Config.share_mutex
                      ?latency:config.Core.Config.functional_latency dp c
                      ~delay:eff_delay
                | None -> []
              in
              List.iter
                (fun f -> violate f.Analysis.Finding.diag)
                (Analysis.Finding.errors fs));
          (match ctrl with
          | None -> ()
          | Some ctrl ->
              timed "sim" (fun () ->
                  match
                    Sim.Equiv.check_random ~runs:budgets.sim_runs dp ctrl
                  with
                  | Ok () -> ()
                  | Error d -> violate d);
              (* --- Narrowing safety: the width-truncated machine must stay
                 bit-exact against the full-width golden model. *)
              match facts with
              | None -> ()
              | Some f ->
                  timed "narrowing" (fun () ->
                      match
                        Sim.Equiv.check_narrowing ~runs:budgets.sim_runs
                          ~widths:(fun n -> Analysis.Ranges.width_of f n)
                          dp ctrl
                      with
                      | Ok () -> ()
                      | Error d -> violate d));
          finish ~schedule:!sched ~sched_via ~bind_via ()
