type t =
  | Corrupt_start
  | Corrupt_col
  | Corrupt_trace
  | Collide_mem
  | Skew_delay
  | Hang
  | Segv

(* [Collide_mem] is deliberately absent: it only applies to graphs with
   memory accesses, and the fuzz campaigns iterate [all] over array-free
   workloads where it would always report "not applicable". *)
let all = [ Corrupt_start; Corrupt_col; Corrupt_trace; Skew_delay ]
let process = [ Hang; Segv ]
let is_process = function Hang | Segv -> true | _ -> false

let to_string = function
  | Corrupt_start -> "corrupt-start"
  | Corrupt_col -> "corrupt-col"
  | Corrupt_trace -> "corrupt-trace"
  | Collide_mem -> "collide-mem"
  | Skew_delay -> "skew-delay"
  | Hang -> "hang"
  | Segv -> "segv"

let of_string = function
  | "corrupt-start" -> Some Corrupt_start
  | "corrupt-col" -> Some Corrupt_col
  | "corrupt-trace" -> Some Corrupt_trace
  | "collide-mem" -> Some Collide_mem
  | "skew-delay" -> Some Skew_delay
  | "hang" -> Some Hang
  | "segv" -> Some Segv
  | _ -> None

let hang () =
  let rec spin n = spin (Sys.opaque_identity (n + 1)) in
  spin 0

let segv () =
  Unix.kill (Unix.getpid ()) Sys.sigsegv;
  (* The runtime intercepts SIGSEGV for stack-overflow detection; should
     the signal somehow be swallowed, die loudly anyway. *)
  Unix.kill (Unix.getpid ()) Sys.sigabrt;
  assert false

let corrupt_start s =
  let n = Dfg.Graph.num_nodes s.Core.Schedule.graph in
  if n = 0 then None
  else begin
    (* Push the last operation past the horizon: [finish > cs] is flagged
       by {!Core.Schedule.check} under every option combination (chaining
       and latency folding never relax the horizon). *)
    let start = Array.copy s.Core.Schedule.start in
    start.(n - 1) <- s.Core.Schedule.cs + 1;
    Some { s with Core.Schedule.start }
  end

let corrupt_col s =
  match s.Core.Schedule.col with
  | None -> None
  | Some col ->
      let g = s.Core.Schedule.graph in
      let n = Dfg.Graph.num_nodes g in
      if n = 0 then None
      else begin
        let col = Array.copy col in
        (* Prefer a genuine FU conflict: two same-class ops issued in the
           same step, not mutually exclusive, forced onto one column. *)
        let kind i = (Dfg.Graph.node g i).Dfg.Graph.kind in
        let conflict = ref None in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if
              !conflict = None
              && String.equal
                   (Dfg.Op.fu_class (kind i))
                   (Dfg.Op.fu_class (kind j))
              && s.Core.Schedule.start.(i) = s.Core.Schedule.start.(j)
              && col.(i) <> col.(j)
              && not (Dfg.Graph.mutually_exclusive g i j)
            then conflict := Some (i, j)
          done
        done;
        (match !conflict with
        | Some (i, j) -> col.(j) <- col.(i)
        | None ->
            (* Fall back to an out-of-range binding, also always caught. *)
            col.(n - 1) <- 0);
        Some { s with Core.Schedule.col = Some col }
      end

let collide_mem s =
  let g = s.Core.Schedule.graph in
  (* Two loads of one bank at distinct steps: loads carry no address edges
     between each other, so folding one onto the other breaks only the
     bank's port capacity, never precedence or the horizon. *)
  let loads =
    List.filter
      (fun nd -> nd.Dfg.Graph.kind = Dfg.Op.Load)
      (Dfg.Graph.nodes g)
  in
  let rec pick = function
    | [] -> None
    | nd :: rest -> (
        match
          List.find_opt
            (fun nd' ->
              String.equal
                (Dfg.Graph.node_class g nd)
                (Dfg.Graph.node_class g nd')
              && s.Core.Schedule.start.(nd.Dfg.Graph.id)
                 <> s.Core.Schedule.start.(nd'.Dfg.Graph.id))
            rest
        with
        | Some nd' -> Some (nd.Dfg.Graph.id, nd'.Dfg.Graph.id)
        | None -> pick rest)
  in
  match pick loads with
  | None -> None
  | Some (i, j) ->
      let start = Array.copy s.Core.Schedule.start in
      start.(j) <- start.(i);
      Some { s with Core.Schedule.start }

let corrupt_trace tr =
  match Core.Liapunov.Trace.entries tr with
  | [] -> None
  | e :: rest ->
      (* An energy-increasing first move breaks the monotone-decrease
         Liapunov property the harness asserts on every trace. *)
      let e' =
        { e with Core.Liapunov.Trace.to_value = e.Core.Liapunov.Trace.from_value + 1 }
      in
      Some (Core.Liapunov.Trace.of_entries (e' :: rest))

let skew_delay dp ~delay =
  (* Find an operation whose ALU-mate starts the step after it finishes:
     lengthening the victim's occupancy by one step then provably overlaps
     the mate on the shared instance. *)
  let g = dp.Rtl.Datapath.graph in
  let victim = ref None in
  List.iter
    (fun a ->
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if
                !victim = None && i <> j
                && dp.Rtl.Datapath.start.(j)
                   = dp.Rtl.Datapath.start.(i) + delay i
                && not (Dfg.Graph.mutually_exclusive g i j)
                && a.Rtl.Datapath.a_kind.Celllib.Library.stages = 1
              then victim := Some i)
            a.Rtl.Datapath.a_ops)
        a.Rtl.Datapath.a_ops)
    dp.Rtl.Datapath.alus;
  match !victim with
  | None -> None
  | Some v -> Some (fun i -> delay i + if i = v then 1 else 0)
