type case = {
  inputs : string list;
  rows : (string * Dfg.Op.kind * string list * (string * bool) list) list;
  options : Driver.options;
}

let graph_of_case case = Dfg.Graph.of_ops ~inputs:case.inputs case.rows

let case_of_graph options g =
  {
    inputs = Dfg.Graph.inputs g;
    rows =
      List.map
        (fun nd ->
          ( nd.Dfg.Graph.name,
            nd.Dfg.Graph.kind,
            nd.Dfg.Graph.args,
            nd.Dfg.Graph.guards ))
        (Dfg.Graph.nodes g);
    options;
  }

let case_size case = List.length case.rows

(* --- Failure classification ------------------------------------------- *)

(* Stable key: same key = same failure for the shrinker's oracle. Exception
   payloads (messages, node names) vary as the case shrinks, so the key
   keeps only the constructor / diagnostic code. *)
let exn_key e =
  let s = Printexc.to_string e in
  match String.index_opt s '(' with
  | Some i -> String.trim (String.sub s 0 i)
  | None -> s

type verdict =
  | Clean of Driver.outcome
  | Stopped of Diag.t  (** Expected infeasibility / bad input. *)
  | Skipped  (** Fault injection not applicable to this case. *)
  | Failed of string * string  (** Classification key, human detail. *)

let run_case ?fault ~budgets case =
  match graph_of_case case with
  | Error msg -> Failed ("crash:invalid-case", msg)
  | Ok g -> (
      match Driver.run ?fault ~budgets ~options:case.options g with
      | exception e -> Failed ("crash:" ^ exn_key e, Printexc.to_string e)
      | o -> (
          match o.Driver.violations with
          | d :: _ ->
              Failed ("violation:" ^ d.Diag.code, Diag.to_string d)
          | [] -> (
              match (fault, o.Driver.stopped) with
              | Some f, None when not o.Driver.fault_applied ->
                  ignore f;
                  Skipped
              | Some f, None ->
                  Failed
                    ( "missed:" ^ Fault.to_string f,
                      "fault injected but no invariant fired" )
              | Some _, Some _ -> Skipped
              | None, Some d -> Stopped d
              | None, None -> Clean o)))

(* --- Shrinking --------------------------------------------------------- *)

(* Remove one row, patching references: operands naming the removed value
   are rewired to the first primary input (always present), guards on it
   are dropped. The result stays builder-valid, so the oracle re-runs the
   very pipeline that failed. *)
let remove_row case name =
  let replacement = List.hd case.inputs in
  let rows =
    List.filter_map
      (fun (n, kind, args, guards) ->
        if String.equal n name then None
        else
          Some
            ( n,
              kind,
              List.map (fun a -> if String.equal a name then replacement else a) args,
              List.filter (fun (c, _) -> not (String.equal c name)) guards ))
      case.rows
  in
  { case with rows }

let option_simplifications =
  [
    ("cse", fun o -> { o with Driver.cse = false });
    ("two_cycle", fun o -> { o with Driver.two_cycle = false });
    ("pipelined", fun o -> { o with Driver.pipelined = false });
    ("latency", fun o -> { o with Driver.latency = None });
    ("clock", fun o -> { o with Driver.clock = None });
    ("style2", fun o -> { o with Driver.style2 = false });
    ("limits", fun o -> { o with Driver.limits = [] });
    ("cs", fun o -> { o with Driver.cs = 0 });
  ]

let shrink ~oracle ~max_attempts case =
  let attempts = ref 0 in
  let try_case c =
    incr attempts;
    !attempts <= max_attempts && oracle c
  in
  let rec drop_rows case =
    let smaller =
      List.find_map
        (fun (n, _, _, _) ->
          if List.length case.rows <= 1 then None
          else
            let c = remove_row case n in
            if try_case c then Some c else None)
        case.rows
    in
    match smaller with Some c -> drop_rows c | None -> case
  in
  let simplify_options case =
    List.fold_left
      (fun case (_, f) ->
        let o = f case.options in
        if o = case.options then case
        else
          let c = { case with options = o } in
          if try_case c then c else case)
      case option_simplifications
  in
  (* Options first (cheap wins often unlock row removals), then rows, then
     a second options pass over the smaller case. *)
  case |> simplify_options |> drop_rows |> simplify_options

(* --- Corpus ------------------------------------------------------------ *)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '-')
    s

let write_reproducer ~dir ~seed ~kind ?fault case =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (Printf.sprintf "%s-seed%d.dfg" (sanitize kind) seed) in
  let body =
    match graph_of_case case with
    | Ok g -> Dfg.Parser.to_source g
    | Error _ ->
        (* Shrunk cases are builder-valid by construction; render raw rows
           as a last resort so the reproducer is never lost. *)
        String.concat "\n"
          (("input " ^ String.concat " " case.inputs)
          :: List.map
               (fun (n, k, args, _) ->
                 Printf.sprintf "%s = %s %s" n (Dfg.Op.to_string k)
                   (String.concat " " args))
               case.rows)
        ^ "\n"
  in
  let flags = Driver.options_to_flags case.options in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "# synth fuzz reproducer\n# failure: %s\n# seed: %d\n"
        kind seed;
      (match fault with
      | Some f -> Printf.fprintf oc "# fault: %s\n" (Fault.to_string f)
      | None -> ());
      Printf.fprintf oc "# flags: %s\n" (if flags = "" then "(none)" else flags);
      output_string oc body);
  path

(* --- Random campaign --------------------------------------------------- *)

let kind_universe =
  [ Dfg.Op.Add; Dfg.Op.Sub; Dfg.Op.Mul; Dfg.Op.And; Dfg.Op.Or; Dfg.Op.Lt;
    Dfg.Op.Eq; Dfg.Op.Mov ]

let sample_spec rng ~max_ops =
  let n_kinds = 1 + Workloads.Prng.int rng (List.length kind_universe) in
  let kinds =
    List.filteri (fun i _ -> i < n_kinds)
      (List.sort
         (fun _ _ -> if Workloads.Prng.bool rng then 1 else -1)
         kind_universe)
  in
  {
    Workloads.Random_dag.ops = 1 + Workloads.Prng.int rng max_ops;
    kinds;
    inputs = 1 + Workloads.Prng.int rng 4;
    locality = 2 + Workloads.Prng.int rng 9;
    guard_prob =
      (if Workloads.Prng.int rng 4 = 0 then 0.3 else 0.0);
  }

let sample_options rng g =
  let cp = Dfg.Bounds.critical_path g in
  let cs =
    match Workloads.Prng.int rng 6 with
    | 0 | 1 | 2 -> 0 (* critical-path minimum *)
    | 3 -> cp + 1 + Workloads.Prng.int rng 3
    | 4 -> max 1 (cp - 1) (* often infeasible on purpose *)
    | _ -> cp + 5
  in
  let limits =
    if Workloads.Prng.int rng 4 = 0 then
      List.filteri
        (fun i _ -> i < 2)
        (List.map
           (fun (c, _) -> (c, 1 + Workloads.Prng.int rng 2))
           (Dfg.Graph.count_by_class g))
    else []
  in
  {
    Driver.cs;
    limits;
    two_cycle = Workloads.Prng.int rng 4 = 0;
    pipelined = Workloads.Prng.int rng 8 = 0;
    latency =
      (if Workloads.Prng.int rng 8 = 0 then Some (2 + Workloads.Prng.int rng 3)
       else None);
    clock =
      (match Workloads.Prng.int rng 6 with
      | 0 -> Some 100.0
      | 1 -> Some 40.0
      | _ -> None);
    style2 = Workloads.Prng.int rng 4 = 0;
    cse = Workloads.Prng.int rng 3 = 0;
    widths = Workloads.Prng.int rng 4 = 0;
    baseline_only = false;
  }

type failure = {
  f_kind : string;
  f_seed : int;
  f_detail : string;
  f_size : int;  (** Operations left in the shrunk reproducer. *)
  f_file : string option;  (** Corpus path, when a corpus dir was given. *)
}

type report = {
  runs : int;
  clean : int;
  infeasible : int;
  degraded : int;
  skipped : int;
  failures : failure list;
}

(* --- Deterministic case generation ------------------------------------- *)

(* The whole campaign's randomness lives here: spec and options are drawn
   from one sequential PRNG, so the case list is a pure function of
   (seed, runs, max_ops) and can be generated up front — in the parent —
   while the cases themselves execute on a worker pool in any order. *)

type generated = { g_run : int; g_seed : int; g_case : (case, Diag.t) result }

let cases ?(max_ops = 12) ~runs ~seed () =
  let rng = Workloads.Prng.create seed in
  List.init runs (fun i ->
      let run = i + 1 in
      let case_seed = (seed * 1_000_003) + run in
      let spec = sample_spec rng ~max_ops in
      let g_case =
        match Workloads.Random_dag.generate ~spec ~seed:case_seed () with
        | Error d -> Error d
        | Ok g ->
            (* Options are drawn only for generable specs, matching the
               historical draw order. *)
            let options = sample_options rng g in
            Ok (case_of_graph options g)
      in
      { g_run = run; g_seed = case_seed; g_case })

(* --- Per-case execution ------------------------------------------------ *)

type classified =
  | C_clean of { c_degraded : bool }
  | C_stopped of string  (** Diagnostic code of the expected stop. *)
  | C_skipped
  | C_failed of failure

let execute ?fault ?(budgets = Driver.default_budgets) ?corpus_dir g =
  match g.g_case with
  | Error d ->
      C_failed
        { f_kind = "crash:generator"; f_seed = g.g_seed;
          f_detail = Diag.to_string d; f_size = 0; f_file = None }
  | Ok case -> (
      match run_case ?fault ~budgets case with
      | Clean o ->
          C_clean
            {
              c_degraded =
                o.Driver.sched_via <> Driver.Primary
                || o.Driver.bind_via <> Some Driver.Primary;
            }
      | Stopped d -> C_stopped d.Diag.code
      | Skipped -> C_skipped
      | Failed (kind, detail) ->
          let oracle c =
            match run_case ?fault ~budgets c with
            | Failed (k, _) -> String.equal k kind
            | _ -> false
          in
          let small = shrink ~oracle ~max_attempts:300 case in
          let f_file =
            Option.map
              (fun dir ->
                write_reproducer ~dir ~seed:g.g_seed ~kind ?fault small)
              corpus_dir
          in
          C_failed
            { f_kind = kind; f_seed = g.g_seed; f_detail = detail;
              f_size = case_size small; f_file })

(* --- Aggregation ------------------------------------------------------- *)

(* Fold classifications in run order. The pool hands them back keyed by
   seed, so summaries are identical whether the campaign ran on 1 worker
   or 8 — completion order never leaks into the report. *)
let report_of_classified classified =
  let clean = ref 0
  and infeasible = ref 0
  and degraded = ref 0
  and skipped = ref 0
  and failures = ref []
  and runs = ref 0 in
  List.iter
    (fun c ->
      incr runs;
      match c with
      | C_clean { c_degraded } ->
          incr clean;
          if c_degraded then incr degraded
      | C_stopped _ -> incr infeasible
      | C_skipped -> incr skipped
      | C_failed f -> failures := f :: !failures)
    classified;
  {
    runs = !runs;
    clean = !clean;
    infeasible = !infeasible;
    degraded = !degraded;
    skipped = !skipped;
    failures = List.rev !failures;
  }

let campaign ?fault ?(budgets = Driver.default_budgets) ?corpus_dir
    ?(max_ops = 12) ?(log = fun (_ : string) -> ()) ~runs ~seed () =
  let classified =
    List.map
      (fun g ->
        let c = execute ?fault ~budgets ?corpus_dir g in
        (match c with
        | C_stopped code ->
            log
              (Printf.sprintf "run %d: stopped (%s) — expected" g.g_run code)
        | C_failed f when f.f_kind <> "crash:generator" ->
            log (Printf.sprintf "run %d: %s — shrunk to %d op(s)" g.g_run
                   f.f_kind f.f_size)
        | _ -> ());
        c)
      (cases ~max_ops ~runs ~seed ())
  in
  report_of_classified classified

let render_report r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "fuzz: %d run(s) — %d clean (%d degraded), %d infeasible, %d skipped, \
     %d failure(s)\n"
    r.runs r.clean r.degraded r.infeasible r.skipped
    (List.length r.failures);
  List.iter
    (fun f ->
      Printf.bprintf buf "  FAIL %s (seed %d, %d op(s)): %s\n" f.f_kind
        f.f_seed f.f_size f.f_detail;
      match f.f_file with
      | Some p -> Printf.bprintf buf "       reproducer: %s\n" p
      | None -> ())
    r.failures;
  Buffer.contents buf
