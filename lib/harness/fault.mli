(** Seeded fault injection for the fuzz harness: deliberate corruptions of
    intermediate pipeline artifacts, used to prove the cross-stage
    invariants actually fire. Each injector returns [None] when the
    artifact offers no place to plant its fault (e.g. no trace on a
    fallback schedule), so campaigns can tell "not applicable" apart from
    "injected but missed". *)

type t =
  | Corrupt_start  (** Push an operation past the schedule horizon. *)
  | Corrupt_col
      (** Merge two concurrent same-class operations onto one FU column
          (or bind out of range when no such pair exists). *)
  | Corrupt_trace  (** Make the first Liapunov move energy-increasing. *)
  | Skew_delay
      (** Lengthen one operation's occupancy as seen by the datapath
          checker, creating an ALU overlap. *)

val all : t list
val to_string : t -> string
val of_string : string -> t option

val corrupt_start : Core.Schedule.t -> Core.Schedule.t option
val corrupt_col : Core.Schedule.t -> Core.Schedule.t option
val corrupt_trace : Core.Liapunov.Trace.t -> Core.Liapunov.Trace.t option

val skew_delay :
  Rtl.Datapath.t -> delay:(int -> int) -> (int -> int) option
(** A skewed delay function to hand {!Rtl.Check.datapath}; [None] when no
    ALU has back-to-back occupants to overlap. *)
