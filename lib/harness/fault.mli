(** Seeded fault injection for the fuzz harness and the batch layer.

    Two families:

    - {b Artifact corruptions} ({!all}) — deliberate corruptions of
      intermediate pipeline artifacts, used to prove the cross-stage
      invariants actually fire. Each injector returns [None] when the
      artifact offers no place to plant its fault (e.g. no trace on a
      fallback schedule), so campaigns can tell "not applicable" apart
      from "injected but missed".
    - {b Process faults} ({!process}) — [Hang] and [Segv] take the whole
      worker process down (or never return). No invariant can catch
      them; they exist to prove the batch pool's watchdogs and crash
      containment work end-to-end. Injecting them outside a supervised
      worker hangs or kills the calling process — that is the point. *)

type t =
  | Corrupt_start  (** Push an operation past the schedule horizon. *)
  | Corrupt_col
      (** Merge two concurrent same-class operations onto one FU column
          (or bind out of range when no such pair exists). *)
  | Corrupt_trace  (** Make the first Liapunov move energy-increasing. *)
  | Collide_mem
      (** Fold one memory load onto a same-bank load's step, oversubscribing
          the bank's ports without disturbing precedence. Only applicable to
          graphs with at least two loads of one bank at distinct steps, so it
          is excluded from {!all} (the fuzz workloads are array-free). *)
  | Skew_delay
      (** Lengthen one operation's occupancy as seen by the datapath
          checker, creating an ALU overlap. *)
  | Hang
      (** Spin forever inside the pipeline — only the batch watchdog's
          SIGKILL ends it. *)
  | Segv  (** Die of a genuine SIGSEGV inside the pipeline. *)

val all : t list
(** The artifact corruptions — every fault an invariant can catch.
    Process faults are deliberately excluded: iterate {!process} under a
    supervised pool instead. *)

val process : t list
(** [[Hang; Segv]]. *)

val is_process : t -> bool

val to_string : t -> string
val of_string : string -> t option

val corrupt_start : Core.Schedule.t -> Core.Schedule.t option
val corrupt_col : Core.Schedule.t -> Core.Schedule.t option
val corrupt_trace : Core.Liapunov.Trace.t -> Core.Liapunov.Trace.t option

val collide_mem : Core.Schedule.t -> Core.Schedule.t option
(** [None] when no bank has two loads scheduled at distinct steps. *)

val skew_delay :
  Rtl.Datapath.t -> delay:(int -> int) -> (int -> int) option
(** A skewed delay function to hand {!Rtl.Check.datapath}; [None] when no
    ALU has back-to-back occupants to overlap. *)

val hang : unit -> 'a
(** Never returns: a CPU-burning loop the compiler cannot elide. *)

val segv : unit -> 'a
(** Never returns: raises SIGSEGV in the current process (falls back to
    SIGABRT should the runtime swallow it). *)
