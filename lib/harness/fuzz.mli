(** Randomized robustness campaigns over the synthesis pipeline.

    Each run draws a DAG from {!Workloads.Random_dag} and a point of the
    option space (budgets, limits, chaining clock, functional latency,
    multiplier models, design style, CSE), drives it through
    {!Driver.run}, and classifies the result: clean, expected
    infeasibility, degraded-but-clean, or a failure (crash, invariant
    violation, or a missed injected fault). Failures are shrunk to a
    minimal reproducer and, when a corpus directory is given, written as
    a [.dfg] file whose header comments carry the [synth] flags.

    Everything is deterministic in [seed] — reruns reproduce byte-for-byte
    the same campaign. *)

type case = {
  inputs : string list;
  rows : (string * Dfg.Op.kind * string list * (string * bool) list) list;
  options : Driver.options;
}

val graph_of_case : case -> (Dfg.Graph.t, string) result
val case_of_graph : Driver.options -> Dfg.Graph.t -> case
val case_size : case -> int

type verdict =
  | Clean of Driver.outcome
  | Stopped of Diag.t  (** Expected infeasibility / bad input. *)
  | Skipped  (** Fault injection not applicable to this case. *)
  | Failed of string * string  (** Classification key, human detail. *)

val run_case : ?fault:Fault.t -> budgets:Driver.budgets -> case -> verdict

val shrink :
  oracle:(case -> bool) -> max_attempts:int -> case -> case
(** Greedy minimisation: drop rows (patching references so the case stays
    valid) and simplify options, keeping every step the oracle accepts. *)

val write_reproducer :
  dir:string -> seed:int -> kind:string -> ?fault:Fault.t -> case -> string
(** Write the case to [dir/<kind>-seed<N>.dfg] (creating [dir]) and
    return the path. *)

type failure = {
  f_kind : string;  (** Stable classification key. *)
  f_seed : int;
  f_detail : string;
  f_case : case;  (** Shrunk reproducer. *)
  f_file : string option;  (** Corpus path, when a corpus dir was given. *)
}

type report = {
  runs : int;
  clean : int;
  infeasible : int;
  degraded : int;  (** Clean runs that needed a fallback stage. *)
  skipped : int;
  failures : failure list;
}

val campaign :
  ?fault:Fault.t -> ?budgets:Driver.budgets -> ?corpus_dir:string ->
  ?max_ops:int -> ?log:(string -> unit) -> runs:int -> seed:int -> unit ->
  report

val render_report : report -> string
