(** Randomized robustness campaigns over the synthesis pipeline.

    Each run draws a DAG from {!Workloads.Random_dag} and a point of the
    option space (budgets, limits, chaining clock, functional latency,
    multiplier models, design style, CSE), drives it through
    {!Driver.run}, and classifies the result: clean, expected
    infeasibility, degraded-but-clean, or a failure (crash, invariant
    violation, or a missed injected fault). Failures are shrunk to a
    minimal reproducer and, when a corpus directory is given, written as
    a [.dfg] file whose header comments carry the [synth] flags.

    Everything is deterministic in [seed] — reruns reproduce byte-for-byte
    the same campaign. *)

type case = {
  inputs : string list;
  rows : (string * Dfg.Op.kind * string list * (string * bool) list) list;
  options : Driver.options;
}

val graph_of_case : case -> (Dfg.Graph.t, string) result
val case_of_graph : Driver.options -> Dfg.Graph.t -> case
val case_size : case -> int

type verdict =
  | Clean of Driver.outcome
  | Stopped of Diag.t  (** Expected infeasibility / bad input. *)
  | Skipped  (** Fault injection not applicable to this case. *)
  | Failed of string * string  (** Classification key, human detail. *)

val run_case : ?fault:Fault.t -> budgets:Driver.budgets -> case -> verdict

val shrink :
  oracle:(case -> bool) -> max_attempts:int -> case -> case
(** Greedy minimisation: drop rows (patching references so the case stays
    valid) and simplify options, keeping every step the oracle accepts. *)

val write_reproducer :
  dir:string -> seed:int -> kind:string -> ?fault:Fault.t -> case -> string
(** Write the case to [dir/<kind>-seed<N>.dfg] (creating [dir]) and
    return the path. *)

type failure = {
  f_kind : string;  (** Stable classification key. *)
  f_seed : int;
  f_detail : string;
  f_size : int;
      (** Operations left in the shrunk reproducer (the case itself lives
          in the corpus file when one was written). *)
  f_file : string option;  (** Corpus path, when a corpus dir was given. *)
}

type report = {
  runs : int;
  clean : int;
  infeasible : int;
  degraded : int;  (** Clean runs that needed a fallback stage. *)
  skipped : int;
  failures : failure list;
}

(** {2 Decomposed campaign}

    A campaign is [cases] (all the randomness, drawn sequentially up
    front) → [execute] per case (deterministic in the case and its seed;
    safe to fan out over {!Batch.Pool} workers) → [report_of_classified]
    (aggregation in run order, so the summary is independent of worker
    completion order). {!campaign} is the sequential composition. *)

type generated = {
  g_run : int;  (** 1-based run index. *)
  g_seed : int;  (** Per-case seed, also the journal ordering key. *)
  g_case : (case, Diag.t) result;
      (** [Error] when the DAG generator itself rejected the spec — a
          campaign failure, classified as [crash:generator]. *)
}

val cases : ?max_ops:int -> runs:int -> seed:int -> unit -> generated list

type classified =
  | C_clean of { c_degraded : bool }
  | C_stopped of string  (** Diagnostic code of the expected stop. *)
  | C_skipped
  | C_failed of failure

val execute :
  ?fault:Fault.t -> ?budgets:Driver.budgets -> ?corpus_dir:string ->
  generated -> classified
(** Run, classify, shrink failures, write the corpus reproducer. *)

val report_of_classified : classified list -> report
(** Fold in run order; [runs] is the list length. *)

val campaign :
  ?fault:Fault.t -> ?budgets:Driver.budgets -> ?corpus_dir:string ->
  ?max_ops:int -> ?log:(string -> unit) -> runs:int -> seed:int -> unit ->
  report

val render_report : report -> string
