(** Value-range and bitwidth abstract interpretation over the DFG.

    A sound forward analysis on a product domain of {e intervals} and
    {e known bits}, seeded from the graph's [range]/[width] declarations
    ({!Dfg.Graph.ranges}, {!Dfg.Graph.declared_widths}). Unannotated
    inputs start at top — never wrong, only imprecise — so on a plain
    graph the analysis infers nothing and flags nothing.

    Loop-carried inputs (an input [x] paired with a node [x ^ "__next"],
    the {!Core.Loops.add_iteration_control} convention) are iterated to a
    fixpoint with widening; everything else converges in one topological
    pass, so the analysis is near-linear in the number of operations.

    From the fixpoint each value gets a minimal signed two's-complement
    bit width; {!check} turns the facts into [width.*] findings, and the
    width/delay helpers feed the width-aware cost model
    ({!Celllib.Library.scaled_alu_area}, [Core.Config.node_delay]). *)

type interval = { lo : int; hi : int }
(** Inclusive; never empty. Top is [[min_int, max_int]], which also
    soundly covers OCaml's wrap-on-overflow concrete semantics. *)

type bits = { bzero : int; bone : int }
(** Bit masks: [bzero] marks bits known to be 0, [bone] bits known to be
    1. Disjoint; both 0 = nothing known. *)

type fact = { itv : interval; kb : bits }
(** A value conforms to a fact when it lies in the interval {e and}
    matches both masks. *)

type t
(** Analysis result: a fact per value (inputs and nodes). *)

val top : fact
val exact : int -> fact
val of_interval : int -> int -> fact

val of_width : int -> fact
(** All values representable in the given signed width. *)

val contains : fact -> int -> bool
val leq : fact -> fact -> bool

val join : fact -> fact -> fact
(** Least upper bound (interval hull, mask intersection). *)

val widen : fact -> fact -> fact
(** [widen old next]: jump growing interval bounds to top, intersect
    masks — guarantees termination of the loop-carried fixpoint. *)

val transfer : Dfg.Op.kind -> fact list -> fact
(** Abstract transfer of one operation; over-approximates
    {!Dfg.Op.eval}, including its total-function edge cases (division by
    zero yields 0, out-of-range shifts yield 0) and OCaml's wrapping
    arithmetic. Raises [Invalid_argument] on an arity mismatch, like
    [Op.eval]. *)

val min_width : fact -> int
(** Minimal signed two's-complement width holding every conforming
    value, in [1..63]; [>= Celllib.Library.word_width] means "full
    width" to every consumer. *)

val analyze : Dfg.Graph.t -> t

val fact_of : t -> string -> fact
(** Fact for a value name; [top] for unknown names. *)

val width_of : t -> string -> int
(** [min_width (fact_of t name)]. *)

val op_width : t -> Dfg.Graph.node -> int
(** Width the operation itself needs: max over its result and operands,
    capped at {!Celllib.Library.word_width}. *)

val passes : t -> int
(** Topological passes the fixpoint took (1 on loop-free graphs). *)

val check : Dfg.Graph.t -> Finding.t list
(** The [width.*] lint family:
    - [width.overflow] (error): the inferred fact of a width-annotated
      value lies entirely outside the declared representable range —
      every execution overflows.
    - [width.truncation] (warning): the inferred fact exceeds the
      declared width, so overflow cannot be ruled out.
    - [width.unreachable-arm] (warning): a guard condition is provably
      always or never zero, so one arm never executes.
    - [width.constant-result] (warning): an operation with at least one
      non-constant operand provably always produces the same value.

    Unannotated graphs yield no findings. *)

val node_delays :
  Celllib.Library.t -> Dfg.Graph.t -> t -> (string * float) list
(** Per-node width-scaled propagation delays
    ({!Celllib.Library.scaled_prop_delay} at {!op_width}), listing only
    nodes that are provably faster than the full-width delay. Feeds
    [Core.Config.node_delay] so chaining probes see narrow adders. *)

val width_table : Dfg.Graph.t -> t -> string
(** Human-readable per-value range/width table ([synth lint --widths]). *)
