let internal ?nodes ~code fmt = Finding.error ?nodes Diag.Internal ~code fmt

let schedule (s : Core.Schedule.t) =
  let g = s.Core.Schedule.graph in
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let name i = (Dfg.Graph.node g i).Dfg.Graph.name in
  let kind i = (Dfg.Graph.node g i).Dfg.Graph.kind in
  let klass i = Dfg.Graph.node_class g (Dfg.Graph.node g i) in
  let delay i = Core.Config.delay s.Core.Schedule.config (kind i) in
  let span i = Core.Config.span s.Core.Schedule.config (kind i) in
  let finish i = s.Core.Schedule.start.(i) + delay i - 1 in
  let n = Dfg.Graph.num_nodes g in
  for i = 0 to n - 1 do
    if s.Core.Schedule.start.(i) < 1 then
      add
        (internal ~nodes:[ name i ] ~code:"lint.sched-start"
           "op %s starts at step %d < 1" (name i) s.Core.Schedule.start.(i));
    if finish i > s.Core.Schedule.cs then
      add
        (internal ~nodes:[ name i ] ~code:"lint.sched-horizon"
           "op %s finishes at step %d past the %d-step horizon" (name i)
           (finish i) s.Core.Schedule.cs);
    List.iter
      (fun p ->
        let ok =
          s.Core.Schedule.start.(i) >= s.Core.Schedule.start.(p) + delay p
          || Core.Schedule.chain_allowed s p i
        in
        if not ok then
          add
            (internal
               ~nodes:[ name i; name p ]
               ~code:"lint.sched-precedence"
               "op %s (start %d) reads %s before it finishes (step %d)"
               (name i) s.Core.Schedule.start.(i) (name p) (finish p)))
      (Dfg.Graph.preds g i)
  done;
  (match s.Core.Schedule.col with
  | None -> ()
  | Some col ->
      let latency = s.Core.Schedule.config.Core.Config.functional_latency in
      let exclusive i j =
        s.Core.Schedule.config.Core.Config.share_mutex
        && Dfg.Graph.mutually_exclusive g i j
      in
      for i = 0 to n - 1 do
        if col.(i) < 1 then
          add
            (internal ~nodes:[ name i ] ~code:"lint.sched-col"
               "op %s is bound to column %d < 1" (name i) col.(i));
        for j = i + 1 to n - 1 do
          if
            String.equal (klass i) (klass j)
            && col.(i) = col.(j)
            && Core.Grid.steps_overlap ~latency s.Core.Schedule.start.(i)
                 (span i) s.Core.Schedule.start.(j) (span j)
            && not (exclusive i j)
          then
            add
              (internal
                 ~nodes:[ name i; name j ]
                 ~code:"lint.fu-conflict"
                 "ops %s and %s occupy %s unit %d in the same step" (name i)
                 (name j) (klass i) col.(i))
        done
      done);
  (* Post-schedule memory audit: re-derive a first-fit port binding per
     bank. Needing more concurrent ports than the bank offers means the
     scheduler let simultaneous accesses exceed the physical interface —
     an internal defect, not an input problem. *)
  let latency = s.Core.Schedule.config.Core.Config.functional_latency in
  let exclusive i j =
    s.Core.Schedule.config.Core.Config.share_mutex
    && Dfg.Graph.mutually_exclusive g i j
  in
  List.iter
    (fun bank ->
      let ports = Core.Config.bank_ports s.Core.Schedule.config g bank in
      let accesses =
        List.filter_map
          (fun nd ->
            if
              Dfg.Op.is_mem nd.Dfg.Graph.kind
              && String.equal
                   (Dfg.Graph.node_class g nd)
                   (Dfg.Graph.mem_class bank)
            then Some nd.Dfg.Graph.id
            else None)
          (Dfg.Graph.nodes g)
        |> List.sort (fun i j ->
               compare
                 (s.Core.Schedule.start.(i), i)
                 (s.Core.Schedule.start.(j), j))
      in
      let needed =
        List.length
          (List.fold_left
             (fun bound i ->
               let fits p =
                 List.for_all
                   (fun j ->
                     exclusive i j
                     || not
                          (Core.Grid.steps_overlap ~latency
                             s.Core.Schedule.start.(i) (span i)
                             s.Core.Schedule.start.(j) (span j)))
                   p
               in
               let rec insert = function
                 | [] -> [ [ i ] ]
                 | p :: rest ->
                     if fits p then (i :: p) :: rest else p :: insert rest
               in
               insert bound)
             [] accesses)
      in
      if needed > ports then
        add
          (internal ~code:"mem.bank-conflict"
             "bank %s needs %d concurrent port(s) in this schedule but \
              offers %d"
             bank needed ports))
    (Dfg.Graph.bank_names g);
  List.rev !fs

let value_intervals (s : Core.Schedule.t) =
  let g = s.Core.Schedule.graph in
  let delay i =
    Core.Config.delay s.Core.Schedule.config
      (Dfg.Graph.node g i).Dfg.Graph.kind
  in
  Rtl.Lifetime.intervals g ~start:s.Core.Schedule.start ~delay
    ~cs:s.Core.Schedule.cs

let reg_lower_bound s = Rtl.Lifetime.max_overlap (value_intervals s)

let lifetimes ?regs (s : Core.Schedule.t) =
  let ivs = value_intervals s in
  let fs = ref [] in
  let add f = fs := f :: !fs in
  List.iter
    (fun iv ->
      (* A value born past the final boundary (e.g. a corrupted start step)
         is out of range even when nothing reads it afterwards. *)
      if
        iv.Rtl.Lifetime.birth > s.Core.Schedule.cs
        || Rtl.Lifetime.needs_register iv
           && (iv.Rtl.Lifetime.birth < 0
              || iv.Rtl.Lifetime.death > s.Core.Schedule.cs)
      then
        add
          (internal
             ~nodes:[ iv.Rtl.Lifetime.value ]
             ~code:"lint.lifetime-horizon"
             "value %s is live across boundaries %d..%d, outside the \
              %d-step horizon"
             iv.Rtl.Lifetime.value iv.Rtl.Lifetime.birth iv.Rtl.Lifetime.death
             s.Core.Schedule.cs))
    ivs;
  (match regs with
  | None -> ()
  | Some regs ->
      let stored =
        List.filter
          (fun iv -> Rtl.Left_edge.register_of regs iv.Rtl.Lifetime.value <> None)
          ivs
      in
      let rec pairs = function
        | [] -> ()
        | iv :: rest ->
            List.iter
              (fun iv' ->
                let r = Rtl.Left_edge.register_of regs iv.Rtl.Lifetime.value in
                if
                  r = Rtl.Left_edge.register_of regs iv'.Rtl.Lifetime.value
                  && Rtl.Lifetime.overlap iv iv'
                then
                  add
                    (internal
                       ~nodes:
                         [ iv.Rtl.Lifetime.value; iv'.Rtl.Lifetime.value ]
                       ~code:"lint.reg-lifetime-clash"
                       "values %s and %s share reg%d while both are live"
                       iv.Rtl.Lifetime.value iv'.Rtl.Lifetime.value
                       (Option.value ~default:(-1) r)))
              rest;
            pairs rest
      in
      pairs stored;
      let bound = Rtl.Lifetime.max_overlap ivs in
      if regs.Rtl.Left_edge.count > bound then
        add
          (Finding.warning Diag.Internal ~code:"lint.reg-overallocated"
             "binding uses %d register(s) where %d suffice"
             regs.Rtl.Left_edge.count bound));
  List.rev !fs

let trace tr =
  let fs = ref [] in
  if not (Core.Liapunov.Trace.non_increasing tr) then
    fs :=
      internal ~code:"lint.trace-monotone"
        "Liapunov energy increases along the move trace"
      :: !fs;
  if not (Core.Liapunov.Trace.positive tr) then
    fs :=
      internal ~code:"lint.trace-positive"
        "Liapunov trace reaches a non-positive energy" :: !fs;
  List.rev !fs
