type t = { diag : Diag.t; nodes : string list }

let make ?(nodes = []) diag = { diag; nodes }

let error ?nodes category ~code fmt =
  Printf.ksprintf (fun s -> make ?nodes (Diag.make category ~code s)) fmt

let warning ?nodes category ~code fmt =
  Printf.ksprintf
    (fun s -> make ?nodes (Diag.make ~severity:Diag.Warning category ~code s))
    fmt

let diags fs = List.map (fun f -> f.diag) fs
let errors fs = List.filter (fun f -> f.diag.Diag.severity = Diag.Error) fs
let warnings fs = List.filter (fun f -> f.diag.Diag.severity = Diag.Warning) fs

let flagged fs =
  List.fold_left
    (fun acc f ->
      List.fold_left
        (fun acc n ->
          match List.assoc_opt n acc with
          | Some Diag.Error -> acc
          | Some Diag.Warning when f.diag.Diag.severity = Diag.Warning -> acc
          | Some Diag.Warning -> (n, Diag.Error) :: List.remove_assoc n acc
          | None -> (n, f.diag.Diag.severity) :: acc)
        acc f.nodes)
    [] fs
  |> List.rev

let exit_code fs =
  List.fold_left (fun acc f -> max acc (Diag.exit_code f.diag)) 0 (errors fs)

let render fs = String.concat "\n" (List.map (fun f -> Diag.to_string f.diag) fs)

let to_json fs =
  let one f =
    Printf.sprintf "{\"nodes\":[%s],\"diag\":%s}"
      (String.concat "," (List.map Diag.json_string f.nodes))
      (Diag.to_json f.diag)
  in
  "[" ^ String.concat "," (List.map one fs) ^ "]"
