let is_arith = function
  | Dfg.Op.Add | Sub | Mul | Div | Mod | Shl | Shr | Neg -> true
  | And | Or | Xor | Not | Lt | Le | Gt | Ge | Eq | Ne | Mov
  | Load | Store -> false

(* Kahn's algorithm; [Graph.topological] assumes acyclicity, so the cycle
   check re-derives the order from scratch. *)
let cycle_nodes g =
  let n = Dfg.Graph.num_nodes g in
  let indeg = Array.make n 0 in
  for i = 0 to n - 1 do
    indeg.(i) <- List.length (Dfg.Graph.preds g i)
  done;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      (Dfg.Graph.succs g i)
  done;
  if !seen = n then []
  else
    List.filteri (fun i _ -> indeg.(i) > 0) (List.init n Fun.id)

(* ancestors.(i) holds the transitive data predecessors of node i as a
   boolean row — cheap enough for lint-sized graphs and exact. *)
let ancestor_rows g =
  let n = Dfg.Graph.num_nodes g in
  let rows = Array.init n (fun _ -> Bytes.make n '\000') in
  List.iter
    (fun i ->
      List.iter
        (fun p ->
          Bytes.set rows.(i) p '\001';
          Bytes.iteri
            (fun k b -> if b = '\001' then Bytes.set rows.(i) k '\001')
            rows.(p))
        (Dfg.Graph.preds g i))
    (Dfg.Graph.topological g);
  fun i j -> Bytes.get rows.(i) j = '\001'

let check ?config g =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let name i = (Dfg.Graph.node g i).Dfg.Graph.name in
  (match cycle_nodes g with
  | [] -> ()
  | cyc ->
      add
        (Finding.error ~nodes:(List.map name cyc) Diag.Input ~code:"lint.cycle"
           "combinational cycle through %s"
           (String.concat ", " (List.map name cyc))));
  (* Uses: operands and guard conditions. *)
  let used = Hashtbl.create 16 in
  List.iter
    (fun nd ->
      List.iter (fun a -> Hashtbl.replace used a ()) nd.Dfg.Graph.args;
      List.iter (fun (c, _) -> Hashtbl.replace used c ()) nd.Dfg.Graph.guards)
    (Dfg.Graph.nodes g);
  List.iter
    (fun inp ->
      if not (Hashtbl.mem used inp) then
        add
          (Finding.warning ~nodes:[ inp ] Diag.Input ~code:"lint.dead-input"
             "primary input %S is never read" inp))
    (Dfg.Graph.inputs g);
  let sink_ids = Dfg.Graph.sinks g in
  List.iter
    (fun nd ->
      let is_sink = List.mem nd.Dfg.Graph.id sink_ids in
      (* A store's effect is the memory write; its pass-through value is a
         convenience and address edges give it successors anyway. *)
      if
        (not is_sink)
        && nd.Dfg.Graph.kind <> Dfg.Op.Store
        && not (Hashtbl.mem used nd.Dfg.Graph.name)
      then
        add
          (Finding.warning ~nodes:[ nd.Dfg.Graph.name ] Diag.Input
             ~code:"lint.dead-value" "value %S is computed but never read"
             nd.Dfg.Graph.name))
    (Dfg.Graph.nodes g);
  (* Guard hygiene per node. *)
  List.iter
    (fun nd ->
      let gs = nd.Dfg.Graph.guards in
      let conds = List.sort_uniq compare (List.map fst gs) in
      List.iter
        (fun c ->
          if List.mem (c, true) gs && List.mem (c, false) gs then
            add
              (Finding.error ~nodes:[ nd.Dfg.Graph.name; c ] Diag.Input
                 ~code:"lint.contradictory-guards"
                 "operation %S can never execute: guarded on both %s and !%s"
                 nd.Dfg.Graph.name c c))
        conds;
      let rec dups = function
        | [] -> ()
        | x :: rest ->
            if List.mem x rest then
              add
                (Finding.warning ~nodes:[ nd.Dfg.Graph.name ] Diag.Input
                   ~code:"lint.duplicate-guard"
                   "operation %S lists guard (%s, %b) twice" nd.Dfg.Graph.name
                   (fst x) (snd x));
            dups (List.filter (fun y -> y <> x) rest)
      in
      dups gs;
      List.iter
        (fun (c, _) ->
          match Dfg.Graph.find g c with
          | Some p when is_arith p.Dfg.Graph.kind ->
              add
                (Finding.warning ~nodes:[ nd.Dfg.Graph.name; c ] Diag.Input
                   ~code:"lint.guard-arith"
                   "condition %S guarding %S is produced by arithmetic %s, \
                    not a comparison or logic operation"
                   c nd.Dfg.Graph.name
                   (Dfg.Op.to_string p.Dfg.Graph.kind))
          | _ -> ())
        gs)
    (Dfg.Graph.nodes g);
  (* Mutex misuse: exclusive-looking operations on one data path both
     execute in any run that reaches the consumer. Unreachable through the
     Builder (guard-scoping forbids cross-branch reads); defence in depth
     for graphs assembled elsewhere. *)
  let n = Dfg.Graph.num_nodes g in
  if n > 1 then begin
    let is_ancestor = ancestor_rows g in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if
          Dfg.Graph.mutually_exclusive g i j
          && (is_ancestor i j || is_ancestor j i)
        then
          add
            (Finding.error ~nodes:[ name i; name j ] Diag.Input
               ~code:"lint.mutex-misuse"
               "%s and %s look mutually exclusive but lie on one data path"
               (name i) (name j))
      done
    done
  end;
  (* Chaining clock sanity: a 1-cycle op whose own propagation delay
     exceeds the period can never be placed, chained or not. *)
  (match config with
  | Some
      ({ Core.Config.chaining = Some { Core.Config.prop_delay; clock }; _ } as
       cfg) ->
      List.iter
        (fun nd ->
          let k = nd.Dfg.Graph.kind in
          let d = Core.Config.node_prop cfg prop_delay nd in
          if Core.Config.delay cfg k = 1 && d > clock +. 1e-9 then
            add
              (Finding.error ~nodes:[ nd.Dfg.Graph.name ] Diag.Infeasible
                 ~code:"lint.chain-clock"
                 "operation %S (%s) needs %.1f ns but the clock period is \
                  %.1f ns"
                 nd.Dfg.Graph.name
                 (Dfg.Op.to_string k)
                 d clock))
        (Dfg.Graph.nodes g)
  | _ -> ());
  List.rev !fs

let rec loop_tree ?config ?(path = []) tree =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let where =
    match path with
    | [] -> "outer loop"
    | p -> "loop " ^ String.concat "/" (List.rev p)
  in
  if tree.Core.Loops.budget < 1 then
    add
      (Finding.error Diag.Input ~code:"lint.loop-budget"
         "%s has a non-positive time budget (%d)" where tree.Core.Loops.budget);
  (* Placeholder discipline, then feasibility of the expanded body. *)
  let expanded =
    List.fold_left
      (fun body (ph, child) ->
        match Dfg.Graph.find tree.Core.Loops.body ph with
        | None ->
            add
              (Finding.error ~nodes:[ ph ] Diag.Input
                 ~code:"lint.loop-placeholder"
                 "%s names child placeholder %S but the body has no such \
                  operation"
                 where ph);
            body
        | Some nd when nd.Dfg.Graph.kind <> Dfg.Op.Mov ->
            add
              (Finding.error ~nodes:[ ph ] Diag.Input
                 ~code:"lint.loop-placeholder"
                 "%s placeholder %S must be a mov, not %s" where ph
                 (Dfg.Op.to_string nd.Dfg.Graph.kind));
            body
        | Some _ -> (
            match body with
            | None -> None
            | Some b -> (
                match
                  Core.Loops.expand_placeholder b ~name:ph
                    ~cycles:(max 1 child.Core.Loops.budget)
                with
                | Ok b' -> Some b'
                | Error _ -> None)))
      (Some tree.Core.Loops.body) tree.Core.Loops.children
  in
  (match expanded with
  | Some body when tree.Core.Loops.budget >= 1 ->
      let cfg = Option.value config ~default:Core.Config.default in
      let need = Core.Timeframe.min_cs cfg body in
      if need > tree.Core.Loops.budget then
        add
          (Finding.error Diag.Infeasible ~code:"lint.loop-budget"
             "%s needs at least %d step(s) but its local budget is %d" where
             need tree.Core.Loops.budget)
  | _ -> ());
  List.iter
    (fun (ph, child) -> fs := List.rev_append (loop_tree ?config ~path:(ph :: path) child) !fs)
    tree.Core.Loops.children;
  List.rev !fs

let loop_tree ?config tree = loop_tree ?config ~path:[] tree
