(** Static-analysis findings: a typed diagnostic plus the DFG nodes it
    implicates, so renderers (and the [--dot-lint] overlay) can point back
    into the graph. *)

type t = {
  diag : Diag.t;
  nodes : string list;  (** Implicated node/value names, possibly empty. *)
}

val make : ?nodes:string list -> Diag.t -> t

val error :
  ?nodes:string list -> Diag.category -> code:string ->
  ('a, unit, string, t) format4 -> 'a
(** Error-severity finding with a printf-style message. *)

val warning :
  ?nodes:string list -> Diag.category -> code:string ->
  ('a, unit, string, t) format4 -> 'a

val diags : t list -> Diag.t list

val errors : t list -> t list
(** Error-severity findings only. *)

val warnings : t list -> t list

val flagged : t list -> (string * Diag.severity) list
(** Node name -> worst severity over all findings naming it. *)

val exit_code : t list -> int
(** 0 when no error-severity finding; otherwise the worst category's exit
    code (internal 5 > infeasible 4 > input 3 > usage 2). *)

val render : t list -> string
(** One {!Diag.to_string} line per finding. Empty string on []. *)

val to_json : t list -> string
(** JSON array; each element wraps the diagnostic with its [nodes] list:
    [{"nodes":["a"],"diag":{...}}]. *)
