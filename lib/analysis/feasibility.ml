type t = {
  min_steps : int;
  class_cells : (string * int) list;
  fu_lower_bounds : (string * int) list;
}

(* Horizon available to one FU column: the step budget, folded to the
   functional-pipelining latency (steps congruent mod L conflict, so a
   column offers at most L distinct cells). *)
let horizon config ~cs =
  match (cs, config.Core.Config.functional_latency) with
  | None, None -> None
  | Some c, None -> Some c
  | None, Some l -> Some l
  | Some c, Some l -> Some (min c l)

let class_cells config g =
  List.fold_left
    (fun acc nd ->
      (* Guarded operations may be mutually exclusive with others of their
         class and stack on one unit; only unguarded ones provably occupy
         cells exclusively. *)
      if nd.Dfg.Graph.guards <> [] then acc
      else
        let c = Dfg.Graph.node_class g nd in
        let sp =
          let sp = Core.Config.span config nd.Dfg.Graph.kind in
          (* Folded modulo the latency, a span covers at most L distinct
             cells — counting more would overestimate and reject feasible
             instances. *)
          match config.Core.Config.functional_latency with
          | Some l -> min sp l
          | None -> sp
        in
        match List.assoc_opt c acc with
        | Some k -> (c, k + sp) :: List.remove_assoc c acc
        | None -> (c, sp) :: acc)
    [] (Dfg.Graph.nodes g)
  |> List.rev

let analyze ?cs config g =
  let min_steps = Core.Timeframe.min_cs config g in
  let cells = class_cells config g in
  let fu_lower_bounds =
    match horizon config ~cs with
    | None -> []
    | Some h when h < 1 -> []
    | Some h -> List.map (fun (c, w) -> (c, (w + h - 1) / h)) cells
  in
  { min_steps; class_cells = cells; fu_lower_bounds }

let check ?cs ?(limits = []) config g =
  if Dfg.Graph.num_nodes g = 0 then
    [
      Finding.error Diag.Input ~code:"lint.empty-graph"
        "the graph has no operations to schedule";
    ]
  else begin
    let b = analyze ?cs config g in
    let fs = ref [] in
    let add f = fs := f :: !fs in
    (match cs with
    | Some c when c < b.min_steps ->
        add
          (Finding.error Diag.Infeasible ~code:"lint.infeasible-budget"
             "no schedule fits %d control step(s): the critical path needs %d"
             c b.min_steps)
    | _ -> ());
    List.iter
      (fun (c, k) ->
        if List.mem_assoc c (Dfg.Graph.count_by_class g) then
          if k < 1 then
            add
              (Finding.error Diag.Infeasible ~code:"lint.infeasible-units"
                 "class %s is capped at %d unit(s) but the graph uses it" c k)
          else
            match List.assoc_opt c b.fu_lower_bounds with
            | Some need when k < need ->
                let cells = List.assoc c b.class_cells in
                let h = Option.get (horizon config ~cs) in
                add
                  (Finding.error Diag.Infeasible ~code:"lint.infeasible-units"
                     "class %s needs at least %d unit(s): %d occupied \
                      step-cell(s) in a %d-step horizon, but the cap is %d"
                     c need cells h k)
            | _ -> ())
      limits;
    (* Bank ports are implicit hard caps: a bank with p ports serves at
       most p accesses per step, so ceil(cells / ports) steps is a lower
       bound on any schedule touching it. *)
    (match horizon config ~cs with
    | Some h when h >= 1 ->
        List.iter
          (fun (c, ports) ->
            match List.assoc_opt c b.class_cells with
            | Some cells when ports >= 1 && (cells + ports - 1) / ports > h ->
                add
                  (Finding.error Diag.Infeasible ~code:"mem.infeasible-ports"
                     "bank %s needs at least %d step(s) for %d access(es) \
                      through %d port(s), but the horizon is %d"
                     (Dfg.Graph.bank_of_class c)
                     ((cells + ports - 1) / ports)
                     cells ports h)
            | Some _ when ports < 1 ->
                add
                  (Finding.error Diag.Infeasible ~code:"mem.infeasible-ports"
                     "bank %s offers %d port(s) but the graph accesses it"
                     (Dfg.Graph.bank_of_class c) ports)
            | _ -> ())
          (Core.Config.mem_limits config g)
    | _ -> ());
    List.rev !fs
  end
