(** Static lint over the input data-flow graph, before any scheduling.

    Codes emitted ([Input] category unless noted):

    - [lint.cycle] — combinational cycle among the operations (unreachable
      through {!Dfg.Graph.Builder}, kept as defence in depth for graphs
      deserialised by other paths);
    - [lint.dead-input] (warning) — a declared primary input no operation
      reads;
    - [lint.dead-value] (warning) — a non-sink value no operation reads
      (computed then dropped);
    - [lint.contradictory-guards] — one operation guarded on both arms of
      the same condition, so it can never execute;
    - [lint.duplicate-guard] (warning) — the same (condition, arm) pair
      listed twice on one operation;
    - [lint.mutex-misuse] — two operations whose guard sets disagree (hence
      treated as mutually exclusive and allowed to share an FU) lie on one
      data path, so both {e do} execute in runs reaching the consumer;
    - [lint.guard-arith] (warning) — a guard condition produced by an
      arithmetic operation rather than a comparison/logic one;
    - [lint.chain-clock] ([Infeasible]) — a single-cycle operation whose
      propagation delay alone exceeds the clock period, so no chaining (or
      placement) can ever fit it;
    - [lint.loop-placeholder] — a loop tree names a placeholder that is
      missing from the body or is not a [mov];
    - [lint.loop-budget] ([Infeasible]) — a loop body (with child
      placeholders expanded to their budgets) cannot fit its local time
      constraint. *)

val check : ?config:Core.Config.t -> Dfg.Graph.t -> Finding.t list
(** All graph-level findings. [config] enables the chaining clock check. *)

val loop_tree : ?config:Core.Config.t -> Core.Loops.tree -> Finding.t list
(** Loop-nesting findings over a whole tree, outermost first; nested loop
    findings carry the placeholder path in their message. *)
