(* Value-range & bitwidth abstract interpretation. See ranges.mli for the
   domain contract and DESIGN.md §15 for the soundness argument.

   Soundness hinges on matching Op.eval's *actual* semantics: native
   OCaml ints that wrap on overflow, division by zero yielding 0,
   out-of-range shifts yielding 0. Interval arithmetic therefore never
   saturates silently — any endpoint computation that would overflow
   makes the whole interval top, because the concrete wrapped result can
   land anywhere. *)

type interval = { lo : int; hi : int }
type bits = { bzero : int; bone : int }
type fact = { itv : interval; kb : bits }

let top_itv = { lo = min_int; hi = max_int }
let top_kb = { bzero = 0; bone = 0 }
let top = { itv = top_itv; kb = top_kb }

(* ---- Lattice plumbing ---------------------------------------------- *)

let meet_itv a b = { lo = max a.lo b.lo; hi = min a.hi b.hi }

(* Masks implied by an interval: non-negative values know their high
   zero bits, negative values know their sign bit. *)
let kb_of_itv { lo; hi } =
  if lo >= 0 then begin
    let m = ref 0 in
    while !m < hi do
      m := (!m lsl 1) lor 1
    done;
    { bzero = lnot !m; bone = 0 }
  end
  else if hi < 0 then { bzero = 0; bone = min_int }
  else top_kb

(* Interval implied by the masks — only meaningful when the sign bit
   (bit 62 = [min_int] as a mask) is known. *)
let itv_of_kb kb =
  if kb.bzero land min_int <> 0 || kb.bone land min_int <> 0 then
    let unknown = lnot (kb.bzero lor kb.bone) in
    Some { lo = kb.bone; hi = kb.bone lor unknown }
  else None

(* Mutual interval<->bits refinement. Both components over-approximate
   the value set independently, so on an (unreachable-code) contradiction
   we keep the unrefined component — still sound. *)
let normalize f =
  let kb =
    let k = kb_of_itv f.itv in
    let m = { bzero = f.kb.bzero lor k.bzero; bone = f.kb.bone lor k.bone } in
    if m.bzero land m.bone <> 0 then f.kb else m
  in
  let itv =
    match itv_of_kb kb with
    | None -> f.itv
    | Some i ->
        let m = meet_itv f.itv i in
        if m.lo > m.hi then f.itv else m
  in
  { itv; kb }

let exact v =
  { itv = { lo = v; hi = v }; kb = { bzero = lnot v; bone = v } }

let of_interval lo hi =
  if lo > hi then invalid_arg "Ranges.of_interval: empty interval";
  normalize { itv = { lo; hi }; kb = top_kb }

let width_bounds w =
  if w >= 63 then (min_int, max_int)
  else (-(1 lsl (w - 1)), (1 lsl (w - 1)) - 1)

let of_width w =
  let lo, hi = width_bounds w in
  of_interval lo hi

let contains f v =
  f.itv.lo <= v && v <= f.itv.hi
  && v land f.kb.bzero = 0
  && lnot v land f.kb.bone = 0

let leq a b =
  b.itv.lo <= a.itv.lo && a.itv.hi <= b.itv.hi
  && b.kb.bzero land lnot a.kb.bzero = 0
  && b.kb.bone land lnot a.kb.bone = 0

let join a b =
  {
    itv = { lo = min a.itv.lo b.itv.lo; hi = max a.itv.hi b.itv.hi };
    kb =
      { bzero = a.kb.bzero land b.kb.bzero;
        bone = a.kb.bone land b.kb.bone };
  }

let widen old next =
  {
    itv =
      { lo = (if next.itv.lo < old.itv.lo then min_int else old.itv.lo);
        hi = (if next.itv.hi > old.itv.hi then max_int else old.itv.hi) };
    kb =
      { bzero = old.kb.bzero land next.kb.bzero;
        bone = old.kb.bone land next.kb.bone };
  }

let min_width f =
  let rec go w =
    if w >= 63 then 63
    else
      let lo_w, hi_w = width_bounds w in
      if f.itv.lo >= lo_w && f.itv.hi <= hi_w then w else go (w + 1)
  in
  go 1

(* ---- Overflow-checked arithmetic ----------------------------------- *)

let add_ov a b =
  let s = a + b in
  if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then None
  else Some s

let neg_ov a = if a = min_int then None else Some (-a)
let sub_ov a b = match neg_ov b with None -> None | Some nb -> add_ov a nb

let mul_ov a b =
  if a = 0 || b = 0 then Some 0
  else if a = 1 then Some b
  else if b = 1 then Some a
  else if a = -1 then neg_ov b
  else if b = -1 then neg_ov a
  else
    (* |b| >= 2, so the divide-back test is exact (any wrap displaces the
       product by k * 2^62 > |b|). *)
    let p = a * b in
    if p / b = a then Some p else None

let abs_sat x = if x = min_int then max_int else abs x

(* ---- Interval transfers -------------------------------------------- *)

let t_add a b =
  match (add_ov a.lo b.lo, add_ov a.hi b.hi) with
  | Some lo, Some hi -> { lo; hi }
  | _ -> top_itv

let t_sub a b =
  match (sub_ov a.lo b.hi, sub_ov a.hi b.lo) with
  | Some lo, Some hi -> { lo; hi }
  | _ -> top_itv

let t_neg a =
  match (neg_ov a.hi, neg_ov a.lo) with
  | Some lo, Some hi -> { lo; hi }
  | _ -> top_itv

let hull = function
  | [] -> top_itv
  | v :: vs ->
      List.fold_left
        (fun acc x -> { lo = min acc.lo x; hi = max acc.hi x })
        { lo = v; hi = v } vs

let t_mul a b =
  let corners =
    [ mul_ov a.lo b.lo; mul_ov a.lo b.hi; mul_ov a.hi b.lo; mul_ov a.hi b.hi ]
  in
  if List.mem None corners then top_itv
  else hull (List.filter_map Fun.id corners)

(* Quotient extremes over the operand box occur at numerator endpoints
   combined with divisor endpoints or the smallest-magnitude divisors
   (+-1); a divisor range containing 0 contributes the result 0. *)
let t_div a b =
  let divisors =
    List.sort_uniq compare
      (List.filter (fun d -> d <> 0 && d >= b.lo && d <= b.hi)
         [ b.lo; b.hi; 1; -1 ])
  in
  let q =
    List.concat_map
      (fun d ->
        List.map
          (fun n -> if n = min_int && d = -1 then None else Some (n / d))
          [ a.lo; a.hi ])
      divisors
  in
  let q = if b.lo <= 0 && b.hi >= 0 then Some 0 :: q else q in
  if q = [] then { lo = 0; hi = 0 }
  else if List.mem None q then top_itv
  else hull (List.filter_map Fun.id q)

let t_mod a b =
  let m = max (abs_sat b.lo) (abs_sat b.hi) in
  if m = 0 then { lo = 0; hi = 0 }
  else
    let k = min (m - 1) (max (abs_sat a.lo) (abs_sat a.hi)) in
    { lo = (if a.lo >= 0 then 0 else -k);
      hi = (if a.hi <= 0 then 0 else k) }

let t_shl a b =
  if b.lo = b.hi then
    let c = b.lo in
    if c < 0 || c > 62 then { lo = 0; hi = 0 }
    else if c > 61 then top_itv
    else t_mul a { lo = 1 lsl c; hi = 1 lsl c }
  else top_itv

let t_shr a b =
  if b.lo = b.hi then
    let c = b.lo in
    if c < 0 || c > 62 then { lo = 0; hi = 0 }
    else { lo = a.lo asr c; hi = a.hi asr c }
  else if a.lo >= 0 && b.lo >= 0 then
    (* Right shifts of a non-negative value only shrink it; shifts past
       62 bits yield 0, also within the hull. *)
    { lo = 0; hi = a.hi asr min b.lo 62 }
  else top_itv

(* ---- Known-bits transfers ------------------------------------------ *)

let trailing_known kb =
  let known = kb.bzero lor kb.bone in
  let rec go i =
    if i >= 63 then 63
    else if (known lsr i) land 1 = 1 then go (i + 1)
    else i
  in
  go 0

(* Low bits of +, -, *, neg depend only on the operands' low bits:
   carries propagate strictly upward. *)
let kb_lowbits op a b =
  let t = min (trailing_known a) (trailing_known b) in
  if t = 0 then top_kb
  else
    let m = if t >= 62 then max_int else (1 lsl t) - 1 in
    let v = op (a.bone land m) (b.bone land m) land m in
    { bzero = lnot v land m; bone = v }

let kb_and a b = { bzero = a.bzero lor b.bzero; bone = a.bone land b.bone }
let kb_or a b = { bzero = a.bzero land b.bzero; bone = a.bone lor b.bone }

let kb_xor a b =
  let known = (a.bzero lor a.bone) land (b.bzero lor b.bone) in
  let v = (a.bone lxor b.bone) land known in
  { bzero = known land lnot v; bone = v }

let kb_not a = { bzero = a.bone; bone = a.bzero }

let kb_shl a c =
  { bzero = (a.bzero lsl c) lor ((1 lsl c) - 1); bone = a.bone lsl c }

(* asr on the masks sign-extends exactly the knowledge we have about the
   sign bit: known sign replicates, unknown sign stays unknown. *)
let kb_shr a c = { bzero = a.bzero asr c; bone = a.bone asr c }

(* ---- Operation transfer -------------------------------------------- *)

let decide = function
  | Some true -> exact 1
  | Some false -> exact 0
  | None -> of_interval 0 1

let kb_disagree a b =
  a.kb.bone land b.kb.bzero <> 0 || b.kb.bone land a.kb.bzero <> 0

let transfer kind fs =
  let f2 () =
    match fs with
    | [ a; b ] -> (a, b)
    | _ ->
        invalid_arg
          (Printf.sprintf "Ranges.transfer: %s expects 2 operands, got %d"
             (Dfg.Op.to_string kind) (List.length fs))
  in
  let f1 () =
    match fs with
    | [ a ] -> a
    | _ ->
        invalid_arg
          (Printf.sprintf "Ranges.transfer: %s expects 1 operand, got %d"
             (Dfg.Op.to_string kind) (List.length fs))
  in
  let r =
    match kind with
    | Dfg.Op.Add ->
        let a, b = f2 () in
        { itv = t_add a.itv b.itv; kb = kb_lowbits ( + ) a.kb b.kb }
    | Sub ->
        let a, b = f2 () in
        { itv = t_sub a.itv b.itv; kb = kb_lowbits ( - ) a.kb b.kb }
    | Mul ->
        let a, b = f2 () in
        { itv = t_mul a.itv b.itv; kb = kb_lowbits ( * ) a.kb b.kb }
    | Div ->
        let a, b = f2 () in
        { itv = t_div a.itv b.itv; kb = top_kb }
    | Mod ->
        let a, b = f2 () in
        { itv = t_mod a.itv b.itv; kb = top_kb }
    | And ->
        let a, b = f2 () in
        let hi_bound =
          match (a.itv.lo >= 0, b.itv.lo >= 0) with
          | true, true -> { lo = 0; hi = min a.itv.hi b.itv.hi }
          | true, false -> { lo = 0; hi = a.itv.hi }
          | false, true -> { lo = 0; hi = b.itv.hi }
          | false, false -> top_itv
        in
        { itv = hi_bound; kb = kb_and a.kb b.kb }
    | Or ->
        let a, b = f2 () in
        let itv =
          if a.itv.lo >= 0 && b.itv.lo >= 0 then
            { lo = max a.itv.lo b.itv.lo; hi = max_int }
          else top_itv
        in
        { itv; kb = kb_or a.kb b.kb }
    | Xor ->
        let a, b = f2 () in
        { itv = top_itv; kb = kb_xor a.kb b.kb }
    | Not ->
        let a = f1 () in
        { itv = { lo = lnot a.itv.hi; hi = lnot a.itv.lo }; kb = kb_not a.kb }
    | Neg ->
        let a = f1 () in
        { itv = t_neg a.itv; kb = kb_lowbits (fun x _ -> -x) a.kb a.kb }
    | Lt ->
        let a, b = f2 () in
        decide
          (if a.itv.hi < b.itv.lo then Some true
           else if a.itv.lo >= b.itv.hi then Some false
           else None)
    | Le ->
        let a, b = f2 () in
        decide
          (if a.itv.hi <= b.itv.lo then Some true
           else if a.itv.lo > b.itv.hi then Some false
           else None)
    | Gt ->
        let a, b = f2 () in
        decide
          (if a.itv.lo > b.itv.hi then Some true
           else if a.itv.hi <= b.itv.lo then Some false
           else None)
    | Ge ->
        let a, b = f2 () in
        decide
          (if a.itv.lo >= b.itv.hi then Some true
           else if a.itv.hi < b.itv.lo then Some false
           else None)
    | Eq ->
        let a, b = f2 () in
        decide
          (if a.itv.lo = a.itv.hi && b.itv.lo = b.itv.hi
              && a.itv.lo = b.itv.lo
           then Some true
           else if a.itv.hi < b.itv.lo || b.itv.hi < a.itv.lo
                   || kb_disagree a b
           then Some false
           else None)
    | Ne ->
        let a, b = f2 () in
        decide
          (if a.itv.lo = a.itv.hi && b.itv.lo = b.itv.hi
              && a.itv.lo = b.itv.lo
           then Some false
           else if a.itv.hi < b.itv.lo || b.itv.hi < a.itv.lo
                   || kb_disagree a b
           then Some true
           else None)
    | Shl ->
        let a, b = f2 () in
        let kb =
          if b.itv.lo = b.itv.hi && b.itv.lo >= 0 && b.itv.lo <= 61 then
            kb_shl a.kb b.itv.lo
          else top_kb
        in
        { itv = t_shl a.itv b.itv; kb }
    | Shr ->
        let a, b = f2 () in
        let kb =
          if b.itv.lo = b.itv.hi && b.itv.lo >= 0 && b.itv.lo <= 62 then
            kb_shr a.kb b.itv.lo
          else top_kb
        in
        { itv = t_shr a.itv b.itv; kb }
    | Mov -> f1 ()
    | Load ->
        (* The evaluator reads whatever was stored (or the zero fill), so
           nothing narrower than top is sound without tracking per-array
           contents. *)
        { itv = top_itv; kb = top_kb }
    | Store -> (
        (* The produced value is the stored data, passed through. *)
        match fs with
        | [ _arr; _idx; d ] -> d
        | _ ->
            invalid_arg
              (Printf.sprintf "Ranges.transfer: st expects 3 operands, got %d"
                 (List.length fs)))
  in
  normalize r

(* ---- Fixpoint ------------------------------------------------------- *)

type t = {
  graph : Dfg.Graph.t;
  tbl : (string, fact) Hashtbl.t;
  n_passes : int;
}

let meet_seed base extra =
  let itv = meet_itv base.itv extra.itv in
  if itv.lo > itv.hi then base
  else
    normalize
      { itv;
        kb =
          { bzero = base.kb.bzero lor extra.kb.bzero;
            bone = base.kb.bone lor extra.kb.bone } }

let seed_input g name =
  let f = top in
  let f =
    match Dfg.Graph.declared_width g name with
    | Some w -> meet_seed f (of_width w)
    | None -> f
  in
  match Dfg.Graph.range_of g name with
  | Some (lo, hi) -> meet_seed f (of_interval lo hi)
  | None -> f

let max_passes = 16

let analyze g =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun n -> Hashtbl.replace tbl n (seed_input g n))
    (Dfg.Graph.inputs g);
  let order = Dfg.Graph.topological g in
  let fact_of_name n = Option.value ~default:top (Hashtbl.find_opt tbl n) in
  let one_pass () =
    List.iter
      (fun i ->
        let nd = Dfg.Graph.node g i in
        let args = List.map fact_of_name nd.Dfg.Graph.args in
        Hashtbl.replace tbl nd.Dfg.Graph.name
          (transfer nd.Dfg.Graph.kind args))
      order
  in
  one_pass ();
  let passes = ref 1 in
  (* Loop-carried inputs: input [x] paired with node [x ^ "__next"]
     (Core.Loops.add_iteration_control). Each round folds the back edge
     into the input's seed; widening after a couple of rounds bounds the
     iteration count independently of loop trip counts. *)
  let carried =
    List.filter_map
      (fun x ->
        if Dfg.Graph.find g (x ^ "__next") <> None then
          Some (x, x ^ "__next")
        else None)
      (Dfg.Graph.inputs g)
  in
  if carried <> [] then begin
    let continue_ = ref true in
    while !continue_ && !passes < max_passes do
      let changed = ref false in
      List.iter
        (fun (x, nx) ->
          let cur = fact_of_name x in
          let incoming = join cur (fact_of_name nx) in
          let next = if !passes >= 3 then widen cur incoming else incoming in
          if not (leq next cur) then begin
            Hashtbl.replace tbl x next;
            changed := true
          end)
        carried;
      if !changed then begin
        one_pass ();
        incr passes
      end
      else continue_ := false
    done;
    if !continue_ && !passes >= max_passes then begin
      (* Safety net: force the carried inputs to top and settle. *)
      List.iter (fun (x, _) -> Hashtbl.replace tbl x top) carried;
      one_pass ();
      incr passes
    end
  end;
  { graph = g; tbl; n_passes = !passes }

let fact_of t name = Option.value ~default:top (Hashtbl.find_opt t.tbl name)
let width_of t name = min_width (fact_of t name)
let passes t = t.n_passes

let op_width t nd =
  let ws =
    width_of t nd.Dfg.Graph.name
    :: List.map (width_of t) nd.Dfg.Graph.args
  in
  min Celllib.Library.word_width (List.fold_left max 1 ws)

(* ---- Findings ------------------------------------------------------- *)

let check g =
  if
    Dfg.Graph.ranges g = []
    && Dfg.Graph.declared_widths g = []
    && Dfg.Graph.arrays g = []
  then []
  else begin
    let r = analyze g in
    let acc = ref [] in
    let add f = acc := f :: !acc in
    (* Declared widths on operations are narrowing contracts. On inputs
       they are seeds — already honoured by construction. *)
    List.iter
      (fun (name, w) ->
        match Dfg.Graph.find g name with
        | None -> ()
        | Some _ ->
            let f = fact_of r name in
            let lo_w, hi_w = width_bounds w in
            if f.itv.lo > hi_w || f.itv.hi < lo_w then
              add
                (Finding.error ~nodes:[ name ] Diag.Internal
                   ~code:"width.overflow"
                   "value %S provably overflows its declared %d-bit width: \
                    every value in the inferred range [%d, %d] is outside \
                    [%d, %d]"
                   name w f.itv.lo f.itv.hi lo_w hi_w)
            else if f.itv.lo < lo_w || f.itv.hi > hi_w then
              add
                (Finding.warning ~nodes:[ name ] Diag.Input
                   ~code:"width.truncation"
                   "value %S may overflow its declared %d-bit width: \
                    inferred range [%d, %d] exceeds [%d, %d]"
                   name w f.itv.lo f.itv.hi lo_w hi_w))
      (Dfg.Graph.declared_widths g);
    List.iter
      (fun nd ->
        List.iter
          (fun (c, arm) ->
            let f = fact_of r c in
            let never_zero =
              f.itv.lo > 0 || f.itv.hi < 0 || f.kb.bone <> 0
            in
            let always_zero = f.itv.lo = 0 && f.itv.hi = 0 in
            if (arm && always_zero) || ((not arm) && never_zero) then
              add
                (Finding.warning
                   ~nodes:[ nd.Dfg.Graph.name; c ]
                   Diag.Input ~code:"width.unreachable-arm"
                   "operation %S is guarded on %s%S, but %S is provably %s \
                    — the arm never executes"
                   nd.Dfg.Graph.name
                   (if arm then "" else "!")
                   c c
                   (if always_zero then "zero" else "non-zero")))
          nd.Dfg.Graph.guards)
      (Dfg.Graph.nodes g);
    List.iter
      (fun nd ->
        if nd.Dfg.Graph.kind <> Dfg.Op.Mov then begin
          let f = fact_of r nd.Dfg.Graph.name in
          if f.itv.lo = f.itv.hi then
            let has_varying_arg =
              List.exists
                (fun a ->
                  let fa = fact_of r a in
                  fa.itv.lo <> fa.itv.hi)
                nd.Dfg.Graph.args
            in
            if has_varying_arg then
              add
                (Finding.warning ~nodes:[ nd.Dfg.Graph.name ] Diag.Input
                   ~code:"width.constant-result"
                   "operation %S always produces %d despite non-constant \
                    operand(s) — it can be replaced by a constant"
                   nd.Dfg.Graph.name f.itv.lo)
        end)
      (Dfg.Graph.nodes g);
    (* Memory index bounds: an access whose inferred index interval lies
       entirely outside [0, size-1] never touches the array (reads 0,
       drops the write) — certainly a bug. A bounded interval that only
       sticks out partially may still go out of bounds on some input. *)
    List.iter
      (fun nd ->
        match (nd.Dfg.Graph.kind, nd.Dfg.Graph.args) with
        | (Dfg.Op.Load | Dfg.Op.Store), arr :: idx :: _ -> (
            match Dfg.Graph.array_of g arr with
            | None -> ()
            | Some a ->
                let size = a.Dfg.Graph.a_size in
                let f = fact_of r idx in
                if f.itv.lo >= size || f.itv.hi < 0 then
                  add
                    (Finding.error
                       ~nodes:[ nd.Dfg.Graph.name; idx ]
                       Diag.Input ~code:"mem.index-out-of-bounds"
                       "access %S indexes %S[%s] outside 0..%d: the index \
                        range is [%d, %d]"
                       nd.Dfg.Graph.name arr idx (size - 1) f.itv.lo f.itv.hi)
                else if
                  (not (leq top f)) && (f.itv.lo < 0 || f.itv.hi >= size)
                then
                  add
                    (Finding.warning
                       ~nodes:[ nd.Dfg.Graph.name; idx ]
                       Diag.Input ~code:"mem.index-may-overflow"
                       "access %S may index %S[%s] outside 0..%d: the index \
                        range is [%d, %d]"
                       nd.Dfg.Graph.name arr idx (size - 1) f.itv.lo f.itv.hi))
        | _ -> ())
      (Dfg.Graph.nodes g);
    List.rev !acc
  end

(* ---- Width-aware consumers ------------------------------------------ *)

let node_delays lib g r =
  List.filter_map
    (fun nd ->
      let w = op_width r nd in
      if w >= Celllib.Library.word_width then None
      else
        let d =
          Celllib.Library.scaled_prop_delay lib nd.Dfg.Graph.kind ~width:w
        in
        if d < lib.Celllib.Library.prop_delay nd.Dfg.Graph.kind then
          Some (nd.Dfg.Graph.name, d)
        else None)
    (Dfg.Graph.nodes g)

let width_table g r =
  let buf = Buffer.create 256 in
  let line name =
    let f = fact_of r name in
    let w = min_width f in
    let range =
      if f.itv.lo = min_int && f.itv.hi = max_int then "(top)"
      else Printf.sprintf "[%d, %d]" f.itv.lo f.itv.hi
    in
    let declared =
      match Dfg.Graph.declared_width g name with
      | Some dw -> Printf.sprintf "  (declared %d)" dw
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  %-16s %-24s %2d bit(s)%s\n" name range
         (min w Celllib.Library.word_width)
         declared)
  in
  Buffer.add_string buf
    (Printf.sprintf "value widths (%d pass(es)):\n" r.n_passes);
  List.iter line (Dfg.Graph.inputs g);
  List.iter (fun nd -> line nd.Dfg.Graph.name) (Dfg.Graph.nodes g);
  Buffer.contents buf
