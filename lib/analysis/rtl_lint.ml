let internal ?nodes ~code fmt = Finding.error ?nodes Diag.Internal ~code fmt

let check ?bus ?(share_mutex = true) ?latency dp ctrl ~delay =
  let g = dp.Rtl.Datapath.graph in
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let name i = (Dfg.Graph.node g i).Dfg.Graph.name in
  let start i = dp.Rtl.Datapath.start.(i) in
  let finish i = start i + delay i - 1 in
  let exclusive i j = Dfg.Graph.mutually_exclusive g i j in
  let micros = Array.of_list ctrl.Rtl.Controller.micros in
  (* Micro-order coverage: exactly one issue per node, in its start step. *)
  let micro_of = Hashtbl.create 16 in
  Array.iteri
    (fun idx m ->
      let i = m.Rtl.Controller.m_node in
      if Hashtbl.mem micro_of i then
        add
          (internal ~nodes:[ name i ] ~code:"lint.micro-order"
             "node %s is issued by more than one micro-order" (name i))
      else Hashtbl.add micro_of i (idx, m))
    micros;
  List.iter
    (fun nd ->
      let i = nd.Dfg.Graph.id in
      match Hashtbl.find_opt micro_of i with
      | None ->
          add
            (internal ~nodes:[ name i ] ~code:"lint.micro-order"
               "node %s has no micro-order" (name i))
      | Some (_, m) ->
          if m.Rtl.Controller.m_step <> start i then
            add
              (internal ~nodes:[ name i ] ~code:"lint.micro-order"
                 "node %s is issued in step %d but scheduled at step %d"
                 (name i) m.Rtl.Controller.m_step (start i));
          (* The latch edge the controller recorded must be the finish step
             under the authoritative delay model. *)
          if m.Rtl.Controller.m_latch_step <> finish i then
            add
              (internal ~nodes:[ name i ] ~code:"lint.latch-mismatch"
                 "node %s latches at edge %d but finishes at step %d under \
                  the delay model"
                 (name i) m.Rtl.Controller.m_latch_step (finish i));
          let declared = m.Rtl.Controller.m_dest in
          let allocated =
            Rtl.Left_edge.register_of dp.Rtl.Datapath.regs (name i)
          in
          if declared <> allocated then
            add
              (internal ~nodes:[ name i ] ~code:"lint.latch-mismatch"
                 "node %s latches into %s but the allocation stores it in %s"
                 (name i)
                 (match declared with
                 | Some r -> Printf.sprintf "reg%d" r
                 | None -> "no register")
                 (match allocated with
                 | Some r -> Printf.sprintf "reg%d" r
                 | None -> "no register")))
    (Dfg.Graph.nodes g);
  (* ALU occupancy under the authoritative delay model. *)
  List.iter
    (fun a ->
      let span i =
        if a.Rtl.Datapath.a_kind.Celllib.Library.stages > 1 then 1
        else delay i
      in
      let rec pairs = function
        | [] -> ()
        | i :: rest ->
            List.iter
              (fun j ->
                if
                  Core.Grid.steps_overlap ~latency (start i) (span i)
                    (start j) (span j)
                  && not (share_mutex && exclusive i j)
                then
                  add
                    (internal
                       ~nodes:[ name i; name j ]
                       ~code:"lint.alu-conflict"
                       "ALU %d runs %s and %s in overlapping steps"
                       a.Rtl.Datapath.a_id (name i) (name j)))
              rest;
            pairs rest
      in
      pairs a.Rtl.Datapath.a_ops)
    dp.Rtl.Datapath.alus;
  (* Bank-port occupancy: a port serves one access at a time. *)
  List.iter
    (fun m ->
      let rec pairs = function
        | [] -> ()
        | i :: rest ->
            List.iter
              (fun j ->
                if
                  Core.Grid.steps_overlap ~latency (start i) (delay i)
                    (start j) (delay j)
                  && not (share_mutex && exclusive i j)
                then
                  add
                    (internal
                       ~nodes:[ name i; name j ]
                       ~code:"mem.port-conflict"
                       "bank %s port %d runs %s and %s in overlapping steps"
                       m.Rtl.Datapath.m_bank m.Rtl.Datapath.m_port (name i)
                       (name j)))
              rest;
            pairs rest
      in
      pairs m.Rtl.Datapath.m_ops)
    dp.Rtl.Datapath.mems;
  (* Reaching definitions: every operand and guard of every micro-order. *)
  let clobbers ~reg ~from_edge ~upto_edge ~reader ~stored =
    (* Another micro latching into [reg] on an edge in (from_edge, upto_edge]
       kills the stored value before its last read. *)
    Array.iter
      (fun m' ->
        let j = m'.Rtl.Controller.m_node in
        if
          j <> stored
          && m'.Rtl.Controller.m_dest = Some reg
          && m'.Rtl.Controller.m_latch_step > from_edge
          && m'.Rtl.Controller.m_latch_step <= upto_edge
          && (not (exclusive j reader))
          && (stored < 0 || not (exclusive j stored))
        then
          add
            (internal
               ~nodes:[ name j; name reader ]
               ~code:"lint.reg-clobbered"
               "%s overwrites reg%d at edge %d before %s reads it at step %d"
               (name j) reg m'.Rtl.Controller.m_latch_step (name reader)
               (upto_edge + 1)))
      micros
  in
  Array.iteri
    (fun idx m ->
      let i = m.Rtl.Controller.m_node in
      let nd = Dfg.Graph.node g i in
      let s = m.Rtl.Controller.m_step in
      let args = nd.Dfg.Graph.args in
      if List.length m.Rtl.Controller.m_sources <> List.length args then
        add
          (internal ~nodes:[ name i ] ~code:"lint.operand-route"
             "node %s has %d operand(s) but %d source(s)" (name i)
             (List.length args)
             (List.length m.Rtl.Controller.m_sources))
      else
        List.iteri
          (fun k src ->
            let arg = List.nth args k in
            match (Dfg.Graph.find g arg, src) with
            | None, Rtl.Datapath.From_input v ->
                if not (String.equal v arg) then
                  add
                    (internal ~nodes:[ name i ] ~code:"lint.operand-route"
                       "operand %d of %s should read input %S, source says %S"
                       k (name i) arg v)
            | None, Rtl.Datapath.From_reg r -> (
                match List.assoc_opt arg ctrl.Rtl.Controller.input_loads with
                | Some r' when r' = r ->
                    clobbers ~reg:r ~from_edge:0 ~upto_edge:(s - 1) ~reader:i
                      ~stored:(-1)
                | Some r' ->
                    add
                      (internal ~nodes:[ name i ] ~code:"lint.operand-route"
                         "operand %d of %s reads reg%d but input %S is \
                          loaded into reg%d"
                         k (name i) r arg r')
                | None ->
                    add
                      (internal ~nodes:[ name i ] ~code:"lint.operand-route"
                         "operand %d of %s reads reg%d but input %S is never \
                          loaded"
                         k (name i) r arg))
            | None, Rtl.Datapath.From_alu a ->
                add
                  (internal ~nodes:[ name i ] ~code:"lint.operand-route"
                     "operand %d of %s chains from ALU %d but %S is a \
                      primary input"
                     k (name i) a arg)
            | Some p, Rtl.Datapath.From_reg r -> (
                let pid = p.Dfg.Graph.id in
                match
                  Rtl.Left_edge.register_of dp.Rtl.Datapath.regs arg
                with
                | Some r' when r' = r ->
                    if finish pid > s - 1 then
                      add
                        (internal
                           ~nodes:[ name i; name pid ]
                           ~code:"lint.operand-not-ready"
                           "%s reads %s from reg%d at step %d but it only \
                            latches at edge %d"
                           (name i) arg r s (finish pid))
                    else
                      clobbers ~reg:r ~from_edge:(finish pid)
                        ~upto_edge:(s - 1) ~reader:i ~stored:pid
                | Some r' ->
                    add
                      (internal
                         ~nodes:[ name i; name pid ]
                         ~code:"lint.operand-route"
                         "operand %d of %s reads reg%d but %s is stored in \
                          reg%d"
                         k (name i) r arg r')
                | None ->
                    add
                      (internal
                         ~nodes:[ name i; name pid ]
                         ~code:"lint.operand-route"
                         "operand %d of %s reads reg%d but %s is never \
                          registered"
                         k (name i) r arg))
            | Some p, Rtl.Datapath.From_alu a ->
                let pid = p.Dfg.Graph.id in
                if dp.Rtl.Datapath.alu_of.(pid) <> a then
                  add
                    (internal
                       ~nodes:[ name i; name pid ]
                       ~code:"lint.operand-route"
                       "operand %d of %s chains from ALU %d but %s runs on \
                        ALU %d"
                       k (name i) a arg dp.Rtl.Datapath.alu_of.(pid))
                else if start pid <> s || delay pid <> 1 then
                  add
                    (internal
                       ~nodes:[ name i; name pid ]
                       ~code:"lint.operand-not-ready"
                       "%s chains %s inside step %d but %s runs in steps \
                        %d..%d"
                       (name i) arg s arg (start pid) (finish pid))
                else begin
                  match Hashtbl.find_opt micro_of pid with
                  | Some (pidx, _) when pidx >= idx ->
                      add
                        (internal
                           ~nodes:[ name i; name pid ]
                           ~code:"lint.chain-order"
                           "chained producer %s is sequenced after consumer \
                            %s in step %d"
                           (name pid) (name i) s)
                  | _ -> ()
                end
            | Some p, Rtl.Datapath.From_input v ->
                add
                  (internal
                     ~nodes:[ name i; name p.Dfg.Graph.id ]
                     ~code:"lint.operand-route"
                     "operand %d of %s reads input %S but %s is computed by \
                      %s"
                     k (name i) v arg (name p.Dfg.Graph.id))
            | None, Rtl.Datapath.From_mem a ->
                if not (String.equal a arg) then
                  add
                    (internal ~nodes:[ name i ] ~code:"lint.operand-route"
                       "operand %d of %s should access array %S, source says \
                        %S"
                       k (name i) arg a)
            | Some p, Rtl.Datapath.From_mem a ->
                add
                  (internal
                     ~nodes:[ name i; name p.Dfg.Graph.id ]
                     ~code:"lint.operand-route"
                     "operand %d of %s accesses array %S but %s is computed \
                      by %s"
                     k (name i) a arg (name p.Dfg.Graph.id)))
          m.Rtl.Controller.m_sources;
      (* Guard conditions must be computed before (or earlier in) step s. *)
      List.iter
        (fun (c, _) ->
          match Dfg.Graph.find g c with
          | None -> () (* primary-input condition, always available *)
          | Some pc ->
              let pid = pc.Dfg.Graph.id in
              let same_step_ok =
                start pid = s
                &&
                match Hashtbl.find_opt micro_of pid with
                | Some (pidx, _) -> pidx < idx
                | None -> false
              in
              if not (finish pid <= s - 1 || same_step_ok) then
                add
                  (internal
                     ~nodes:[ name i; name pid ]
                     ~code:"lint.operand-not-ready"
                     "guard %S of %s is not computed before step %d" c
                     (name i) s))
        m.Rtl.Controller.m_guards)
    micros;
  (* Two non-exclusive latches into one register at one edge race. *)
  Array.iteri
    (fun idx m ->
      match m.Rtl.Controller.m_dest with
      | None -> ()
      | Some r ->
          Array.iteri
            (fun idx' m' ->
              if
                idx' > idx
                && m'.Rtl.Controller.m_dest = Some r
                && m'.Rtl.Controller.m_latch_step
                   = m.Rtl.Controller.m_latch_step
                && not
                     (exclusive m.Rtl.Controller.m_node
                        m'.Rtl.Controller.m_node)
              then
                add
                  (internal
                     ~nodes:
                       [
                         name m.Rtl.Controller.m_node;
                         name m'.Rtl.Controller.m_node;
                       ]
                     ~code:"lint.reg-write-conflict"
                     "%s and %s both latch into reg%d at edge %d"
                     (name m.Rtl.Controller.m_node)
                     (name m'.Rtl.Controller.m_node)
                     r m.Rtl.Controller.m_latch_step))
            micros)
    micros;
  (* Declared mux paths must carry every operand's source tag. *)
  List.iter
    (fun a ->
      let share = a.Rtl.Datapath.a_share in
      let known =
        share.Rtl.Mux_share.l1 @ share.Rtl.Mux_share.l2
      in
      List.iter
        (fun i ->
          match List.assoc_opt i dp.Rtl.Datapath.operand_sources with
          | None -> ()
          | Some srcs ->
              List.iter
                (fun src ->
                  let tag = Rtl.Datapath.source_tag src in
                  if not (List.mem tag known) then
                    add
                      (internal ~nodes:[ name i ] ~code:"lint.mux-route"
                         "source %s of %s is missing from ALU %d's \
                          multiplexer inputs"
                         tag (name i) a.Rtl.Datapath.a_id))
                srcs)
        a.Rtl.Datapath.a_ops)
    dp.Rtl.Datapath.alus;
  (* Bus races: two same-step transfers on one bus. *)
  let bus = match bus with Some b -> b | None -> Rtl.Bus.allocate dp in
  List.iter
    (fun d ->
      let code =
        if d.Diag.code = "bus.conflict" then "lint.bus-conflict"
        else "lint.bus-range"
      in
      add (Finding.make (Diag.make Diag.Internal ~code d.Diag.message)))
    (Rtl.Bus.check_diags bus);
  List.rev !fs
