(** Static analysis over a produced schedule: validity, register lifetimes
    and the Liapunov trace. All findings are [Internal] — a pipeline that
    emits an invalid schedule is buggy, the input is not to blame.

    Codes: [lint.sched-start], [lint.sched-horizon] (catches
    [corrupt-start]), [lint.sched-precedence], [lint.sched-col],
    [lint.fu-conflict] (catches [corrupt-col]); [lint.lifetime-horizon],
    [lint.reg-lifetime-clash], [lint.reg-overallocated] (warning);
    [lint.trace-monotone] (catches [corrupt-trace]), [lint.trace-positive]. *)

val schedule : Core.Schedule.t -> Finding.t list
(** Re-derivation of {!Core.Schedule.check_diags} as findings with node
    attribution: start/horizon ranges, precedence under chaining, column
    ranges and FU-instance conflicts under modulo-latency folding and
    mutex sharing. *)

val lifetimes : ?regs:Rtl.Left_edge.t -> Core.Schedule.t -> Finding.t list
(** Live ranges of every value under the schedule. Flags values latched
    outside the horizon; with [regs] (an MFSA binding {e for this same
    schedule}) also flags same-register lifetime clashes and warns when the
    allocation uses more registers than the max-overlap lower bound. *)

val reg_lower_bound : Core.Schedule.t -> int
(** Peak number of simultaneously-live values — no correct binding for
    this schedule uses fewer registers. *)

val trace : Core.Liapunov.Trace.t -> Finding.t list
(** Liapunov stability: every move's energy is positive and non-increasing. *)
