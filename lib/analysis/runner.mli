(** Entry points bundling the five analysis passes for the CLI and the
    harness gates.

    [pre] runs on the input DFG before any scheduling (DFG lint +
    feasibility bounds + range/width analysis); [post_schedule] and
    [post_rtl] audit pipeline artefacts. *)

val pre :
  ?cs:int -> ?limits:(string * int) list -> Core.Config.t -> Dfg.Graph.t ->
  Finding.t list

val pre_timed :
  ?cs:int -> ?limits:(string * int) list -> Core.Config.t -> Dfg.Graph.t ->
  Finding.t list * (string * float) list
(** {!pre} plus per-pass wall-clock timings in milliseconds, in run order
    ([dfg-lint], [feasibility], [widths]) — the [synth lint --json]
    report's [timings_ms] object. *)

val post_schedule :
  ?regs:Rtl.Left_edge.t -> ?trace:Core.Liapunov.Trace.t -> Core.Schedule.t ->
  Finding.t list

val post_rtl :
  ?bus:Rtl.Bus.t -> ?share_mutex:bool -> ?latency:int -> Rtl.Datapath.t ->
  Rtl.Controller.t -> delay:(int -> int) -> Finding.t list

val stop_diag : Finding.t list -> Diag.t option
(** The first error-severity finding's diagnostic, preferring [Infeasible]
    over [Input] — what a pipeline driver should stop with. [None] when no
    error findings. *)

val summary : Finding.t list -> string
(** ["lint: clean"] or ["lint: %d error(s), %d warning(s)"]. *)
