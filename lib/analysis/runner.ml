let pre_timed ?cs ?limits config g =
  let timings = ref [] in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    timings := (name, (Unix.gettimeofday () -. t0) *. 1000.) :: !timings;
    r
  in
  (* Explicit lets: [@] evaluates right-to-left, which would reverse the
     recorded pass order. *)
  let lint = timed "dfg-lint" (fun () -> Dfg_lint.check ~config g) in
  let feas = timed "feasibility" (fun () -> Feasibility.check ?cs ?limits config g) in
  let rng = timed "widths" (fun () -> Ranges.check g) in
  (lint @ feas @ rng, List.rev !timings)

let pre ?cs ?limits config g = fst (pre_timed ?cs ?limits config g)

let post_schedule ?regs ?trace s =
  Sched_lint.schedule s
  @ Sched_lint.lifetimes ?regs s
  @ match trace with None -> [] | Some tr -> Sched_lint.trace tr

let post_rtl = Rtl_lint.check

let stop_diag fs =
  let errs = Finding.errors fs in
  let pick cat =
    List.find_opt (fun f -> f.Finding.diag.Diag.category = cat) errs
  in
  match (pick Diag.Infeasible, errs) with
  | Some f, _ -> Some f.Finding.diag
  | None, f :: _ -> Some f.Finding.diag
  | None, [] -> None

let summary fs =
  let e = List.length (Finding.errors fs)
  and w = List.length (Finding.warnings fs) in
  if e = 0 && w = 0 then "lint: clean"
  else Printf.sprintf "lint: %d error(s), %d warning(s)" e w
