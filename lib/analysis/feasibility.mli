(** Feasibility bounds: reject doomed instances before MFS/MFSA spends any
    scheduler time on them (the "exit 4, not a timeout" gate).

    Both bounds are {e sound}: they reject only instances no scheduler can
    solve, so the fuzz campaign's clean runs stay clean.

    - [lint.empty-graph] ([Input]) — nothing to schedule;
    - [lint.infeasible-budget] ([Infeasible]) — the (chaining-aware)
      critical path exceeds the control-step budget;
    - [lint.infeasible-units] ([Infeasible]) — a unit cap is non-positive,
      or below the occupancy lower bound [ceil(cells / horizon)] where
      [cells] sums the FU spans of the class's {e unguarded} operations
      (guarded ones might share units via mutual exclusion) and [horizon]
      is the step budget folded to the functional-pipelining latency. *)

type t = {
  min_steps : int;  (** Chaining-aware critical path (>= 1). *)
  class_cells : (string * int) list;
      (** Occupied grid cells per FU class over unguarded operations. *)
  fu_lower_bounds : (string * int) list;
      (** Minimum unit count per class for the given horizon; empty when no
          step budget bounds the horizon. *)
}

val analyze : ?cs:int -> Core.Config.t -> Dfg.Graph.t -> t

val check :
  ?cs:int -> ?limits:(string * int) list -> Core.Config.t -> Dfg.Graph.t ->
  Finding.t list
(** [cs] is the time budget (omit in resource-constrained mode); [limits]
    are per-class unit caps as accepted by [synth --limit]. *)
