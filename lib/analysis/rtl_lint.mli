(** RTL dataflow verification: reaching definitions over the elaborated
    netlist plus controller, proving every ALU operand is routed from its
    producer through the declared path, and that no two transfers race on
    one bus. All findings are [Internal].

    Codes:

    - [lint.micro-order] — a node with no (or several) micro-orders, or a
      micro issued in a step other than the node's start step;
    - [lint.latch-mismatch] — a micro's latch edge differs from its finish
      step under the delay model, or its destination register differs from
      the allocation (catches [skew-delay]);
    - [lint.alu-conflict] — two operations occupy one ALU in overlapping
      (modulo-latency) step ranges without being mutually exclusive;
    - [lint.operand-route] — an operand's declared source does not carry
      the producer's value (wrong register, wrong ALU, wrong input);
    - [lint.operand-not-ready] — a register read before the producer's
      latch edge, or a chained read of a value not produced combinationally
      in the same step;
    - [lint.chain-order] — a same-step chained producer sequenced after its
      consumer in the micro-order list (the wire would read stale data);
    - [lint.reg-clobbered] — another operation overwrites a register
      between a value's latch edge and its last read;
    - [lint.reg-write-conflict] — two non-exclusive micro-orders latch into
      one register at the same clock edge;
    - [lint.mux-route] — an operand's source tag is absent from the ALU's
      shared multiplexer source lists;
    - [lint.bus-range] / [lint.bus-conflict] — a transfer outside the bus
      range, or two same-step transfers on one bus. *)

val check :
  ?bus:Rtl.Bus.t -> ?share_mutex:bool -> ?latency:int -> Rtl.Datapath.t ->
  Rtl.Controller.t -> delay:(int -> int) -> Finding.t list
(** [delay] is the authoritative delay model (the cell library's view);
    disagreements between it and the controller's recorded latch edges are
    findings. [bus] defaults to a fresh {!Rtl.Bus.allocate}; [share_mutex]
    (default true) and [latency] mirror the scheduling configuration. *)
