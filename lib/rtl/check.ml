let datapath ?(style2 = false) ?(share_mutex = true) ?steps_overlap dp ~delay =
  (* Occupancy-overlap semantics are injectable so a scheduler using
     modulo-latency folding (functional pipelining) can validate with the
     same predicate it scheduled with; the default is the plain range
     intersection. *)
  let steps_overlap =
    match steps_overlap with
    | Some f -> f
    | None -> fun a sa b sb -> a < b + sb && b < a + sa
  in
  let g = dp.Datapath.graph in
  let errs = ref [] in
  let add ~code fmt =
    Printf.ksprintf
      (fun s -> errs := Diag.internal ~code s :: !errs)
      fmt
  in
  let name i = (Dfg.Graph.node g i).Dfg.Graph.name in
  (* ALU occupancy and capability. *)
  List.iter
    (fun a ->
      List.iter
        (fun i ->
          let kind = (Dfg.Graph.node g i).Dfg.Graph.kind in
          if not (Celllib.Op_set.mem kind a.Datapath.a_kind.Celllib.Library.ops)
          then
            add ~code:"check.alu-capability"
              "ALU %d (%s) cannot execute %s" a.Datapath.a_id
              a.Datapath.a_kind.Celllib.Library.aname (name i))
        a.Datapath.a_ops;
      let rec pairs = function
        | [] -> ()
        | i :: rest ->
            List.iter
              (fun j ->
                let si = dp.Datapath.start.(i)
                and sj = dp.Datapath.start.(j) in
                (* A pipelined unit frees its issue slot after one step. *)
                let spi =
                  if a.Datapath.a_kind.Celllib.Library.stages > 1 then 1
                  else delay i
                and spj =
                  if a.Datapath.a_kind.Celllib.Library.stages > 1 then 1
                  else delay j
                in
                let overlap = steps_overlap si spi sj spj in
                let excl =
                  share_mutex && Dfg.Graph.mutually_exclusive g i j
                in
                if overlap && not excl then
                  add ~code:"check.alu-overlap"
                    "ALU %d executes %s and %s simultaneously"
                    a.Datapath.a_id (name i) (name j))
              rest;
            pairs rest
      in
      pairs a.Datapath.a_ops)
    dp.Datapath.alus;
  (* Register sharing soundness. *)
  let ivs =
    Lifetime.intervals g ~start:dp.Datapath.start ~delay ~cs:dp.Datapath.cs
  in
  let stored =
    List.filter
      (fun iv ->
        Left_edge.register_of dp.Datapath.regs iv.Lifetime.value <> None)
      ivs
  in
  let rec reg_pairs = function
    | [] -> ()
    | iv :: rest ->
        List.iter
          (fun iv' ->
            let r = Left_edge.register_of dp.Datapath.regs iv.Lifetime.value in
            let r' =
              Left_edge.register_of dp.Datapath.regs iv'.Lifetime.value
            in
            if r = r' && Lifetime.overlap iv iv' then
              add ~code:"check.reg-clash"
                "register clash: %s and %s overlap in reg%d"
                iv.Lifetime.value iv'.Lifetime.value
                (Option.value ~default:(-1) r))
          rest;
        reg_pairs rest
  in
  reg_pairs stored;
  if style2 then
    List.iter
      (fun a ->
        add ~code:"check.style2" "style-2 violation: ALU %d has a self loop" a)
      (Datapath.self_loop_alus dp);
  match !errs with [] -> Ok () | l -> Error (List.rev l)
