let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let source_expr = function
  | Datapath.From_reg r -> Printf.sprintf "reg_%d" r
  | Datapath.From_alu a -> Printf.sprintf "alu_out_%d" a
  | Datapath.From_input v -> sanitize v
  | Datapath.From_mem a -> "mem_" ^ sanitize a

let emit ?(module_name = "design") ?widths dp ctrl =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let g = dp.Datapath.graph in
  (* Bus width per value name, capped at the machine word: the range
     analysis reports up to 63 bits, but the datapath is a 32-bit machine
     and a value needing more than the word is simply a full-width bus. *)
  let width_of name =
    match widths with
    | None -> 32
    | Some w -> max 1 (min 32 (w name))
  in
  let widest names = List.fold_left (fun acc v -> max acc (width_of v)) 1 names in
  let alu_width a =
    widest
      (List.map (fun i -> (Dfg.Graph.node g i).Dfg.Graph.name) a.Datapath.a_ops)
  in
  let inputs = List.map sanitize (Dfg.Graph.inputs g) in
  add "module %s(clk, rst%s%s);\n" (sanitize module_name)
    (if inputs = [] then "" else ", ")
    (String.concat ", " inputs);
  add "  input clk, rst;\n";
  List.iter2
    (fun raw i -> add "  input [%d:0] %s;\n" (width_of raw - 1) i)
    (Dfg.Graph.inputs g) inputs;
  add "  // %d control steps, %d ALUs, %d registers\n" ctrl.Controller.steps
    (List.length dp.Datapath.alus)
    dp.Datapath.regs.Left_edge.count;
  List.iter
    (fun (a : Dfg.Graph.array_decl) ->
      add "  reg [31:0] mem_%s [0:%d]; // bank %s\n" (sanitize a.Dfg.Graph.a_name)
        (a.Dfg.Graph.a_size - 1) a.Dfg.Graph.a_bank)
    (Dfg.Graph.arrays g);
  add "  reg [%d:0] state;\n"
    (let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
     bits ctrl.Controller.steps - 1);
  for r = 0 to dp.Datapath.regs.Left_edge.count - 1 do
    let vals = Left_edge.values_of dp.Datapath.regs r in
    add "  reg [%d:0] reg_%d; // holds: %s\n"
      (widest vals - 1)
      r
      (String.concat ", " vals)
  done;
  List.iter
    (fun a ->
      add "  wire [%d:0] alu_out_%d; // %s ops: %s\n"
        (alu_width a - 1)
        a.Datapath.a_id a.Datapath.a_kind.Celllib.Library.aname
        (String.concat ","
           (List.map
              (fun i -> (Dfg.Graph.node g i).Dfg.Graph.name)
              a.Datapath.a_ops)))
    dp.Datapath.alus;
  List.iter
    (fun (mp : Datapath.mem_port) ->
      add "  wire [31:0] alu_out_%d; // bank %s port %d: %s\n"
        mp.Datapath.m_id mp.Datapath.m_bank mp.Datapath.m_port
        (String.concat ","
           (List.map
              (fun i -> (Dfg.Graph.node g i).Dfg.Graph.name)
              mp.Datapath.m_ops)))
    dp.Datapath.mems;
  let guard_expr gs =
    String.concat ""
      (List.map
         (fun (c, arm) ->
           Printf.sprintf " && (%s%s != 0)"
             (if arm then "" else "!")
             (sanitize c))
         gs)
  in
  add "  always @(posedge clk) begin\n";
  add "    if (rst) begin\n      state <= 1;\n";
  List.iter
    (fun (v, r) -> add "      reg_%d <= %s;\n" r (sanitize v))
    ctrl.Controller.input_loads;
  add "    end else begin\n";
  add "      state <= (state == %d) ? %d : state + 1;\n" ctrl.Controller.steps
    ctrl.Controller.steps;
  List.iter
    (fun m ->
      match m.Controller.m_dest with
      | None -> ()
      | Some dest ->
          let nd = Dfg.Graph.node g m.Controller.m_node in
          add "      if (state == %d%s) reg_%d <= alu_out_%d; // %s\n"
            m.Controller.m_latch_step
            (guard_expr m.Controller.m_guards)
            dest m.Controller.m_alu nd.Dfg.Graph.name)
    ctrl.Controller.micros;
  (* Memory writes commit on the store's latch edge, like registers. *)
  List.iter
    (fun m ->
      let nd = Dfg.Graph.node g m.Controller.m_node in
      if nd.Dfg.Graph.kind = Dfg.Op.Store then
        match m.Controller.m_sources with
        | [ Datapath.From_mem a; idx; data ] ->
            add "      if (state == %d%s) mem_%s[%s] <= %s; // %s\n"
              m.Controller.m_latch_step
              (guard_expr m.Controller.m_guards)
              (sanitize a) (source_expr idx) (source_expr data)
              nd.Dfg.Graph.name
        | _ -> ())
    ctrl.Controller.micros;
  add "    end\n  end\n";
  (* Combinational ALU outputs: a per-state operand selection. *)
  List.iter
    (fun a ->
      let cases =
        List.filter
          (fun m -> m.Controller.m_alu = a.Datapath.a_id)
          ctrl.Controller.micros
      in
      add "  assign alu_out_%d =\n" a.Datapath.a_id;
      List.iter
        (fun m ->
          let nd = Dfg.Graph.node g m.Controller.m_node in
          let expr =
            match (m.Controller.m_sources, nd.Dfg.Graph.kind) with
            | [ x ], k ->
                Printf.sprintf "(%s %s)" (Dfg.Op.symbol k) (source_expr x)
            | [ x; y ], k ->
                Printf.sprintf "(%s %s %s)" (source_expr x) (Dfg.Op.symbol k)
                  (source_expr y)
            | _ -> Printf.sprintf "%d'hx" (alu_width a)
          in
          add "    (state == %d) ? %s : // %s\n" m.Controller.m_step expr
            nd.Dfg.Graph.name)
        cases;
      add "    %d'hx;\n" (alu_width a))
    dp.Datapath.alus;
  (* Bank-port outputs: a load reads its array asynchronously; a store's
     port output is the written data, so chained consumers of either work
     like chained ALU reads. *)
  List.iter
    (fun (mp : Datapath.mem_port) ->
      let cases =
        List.filter
          (fun mi -> mi.Controller.m_alu = mp.Datapath.m_id)
          ctrl.Controller.micros
      in
      add "  assign alu_out_%d =\n" mp.Datapath.m_id;
      List.iter
        (fun mi ->
          let nd = Dfg.Graph.node g mi.Controller.m_node in
          let expr =
            match (mi.Controller.m_sources, nd.Dfg.Graph.kind) with
            | [ Datapath.From_mem a; idx ], Dfg.Op.Load ->
                Printf.sprintf "mem_%s[%s]" (sanitize a) (source_expr idx)
            | [ Datapath.From_mem _; _; data ], Dfg.Op.Store ->
                source_expr data
            | _ -> "32'hx"
          in
          add "    (state == %d) ? %s : // %s\n" mi.Controller.m_step expr
            nd.Dfg.Graph.name)
        cases;
      add "    32'hx;\n")
    dp.Datapath.mems;
  add "endmodule\n";
  Buffer.contents buf
