let esc s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let of_datapath ?(name = "datapath") (dp : Datapath.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let g = dp.Datapath.graph in
  add "digraph %s {\n  rankdir=LR;\n" name;
  List.iter
    (fun a ->
      add "  alu%d [shape=record,label=\"{%s|%s}\"];\n" a.Datapath.a_id
        (esc a.Datapath.a_kind.Celllib.Library.aname)
        (esc
           (String.concat "\\n"
              (List.map
                 (fun i -> (Dfg.Graph.node g i).Dfg.Graph.name)
                 a.Datapath.a_ops))))
    dp.Datapath.alus;
  for r = 0 to dp.Datapath.regs.Left_edge.count - 1 do
    add "  reg%d [shape=box,label=\"reg%d\\n%s\"];\n" r r
      (esc (String.concat "," (Left_edge.values_of dp.Datapath.regs r)))
  done;
  (* Connections: per node, each operand source feeds the node's ALU. *)
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (node, sources) ->
      let dst = dp.Datapath.alu_of.(node) in
      List.iter
        (fun src ->
          let line =
            match src with
            | Datapath.From_reg r -> Printf.sprintf "  reg%d -> alu%d;\n" r dst
            | Datapath.From_alu a ->
                Printf.sprintf "  alu%d -> alu%d [style=dashed];\n" a dst
            | Datapath.From_input v ->
                Printf.sprintf "  in_%s -> alu%d;\n" v dst
            | Datapath.From_mem a ->
                Printf.sprintf "  mem_%s -> alu%d [dir=both];\n" a dst
          in
          if not (Hashtbl.mem seen line) then begin
            Hashtbl.replace seen line ();
            (match src with
            | Datapath.From_input v ->
                let decl = Printf.sprintf "  in_%s [shape=plaintext];\n" v in
                if not (Hashtbl.mem seen decl) then begin
                  Hashtbl.replace seen decl ();
                  Buffer.add_string buf decl
                end
            | Datapath.From_mem a ->
                let decl = Printf.sprintf "  mem_%s [shape=box3d];\n" a in
                if not (Hashtbl.mem seen decl) then begin
                  Hashtbl.replace seen decl ();
                  Buffer.add_string buf decl
                end
            | _ -> ());
            Buffer.add_string buf line
          end)
        sources)
    dp.Datapath.operand_sources;
  (* ALU outputs into the registers that latch their values. *)
  List.iter
    (fun nd ->
      let i = nd.Dfg.Graph.id in
      match Left_edge.register_of dp.Datapath.regs nd.Dfg.Graph.name with
      | Some r ->
          let line =
            Printf.sprintf "  alu%d -> reg%d;\n" dp.Datapath.alu_of.(i) r
          in
          if not (Hashtbl.mem seen line) then begin
            Hashtbl.replace seen line ();
            Buffer.add_string buf line
          end
      | None -> ())
    (Dfg.Graph.nodes g);
  add "}\n";
  Buffer.contents buf
