type source =
  | From_reg of int
  | From_alu of int
  | From_input of string
  | From_mem of string

type alu = {
  a_id : int;
  a_kind : Celllib.Library.alu_kind;
  a_ops : int list;
  a_share : Mux_share.t;
}

type mem_port = {
  m_id : int;
  m_bank : string;
  m_port : int;
  m_ops : int list;
}

type t = {
  graph : Dfg.Graph.t;
  start : int array;
  cs : int;
  alus : alu list;
  alu_of : int array;
  regs : Left_edge.t;
  mems : mem_port list;
  operand_sources : (int * source list) list;
}

let source_tag = function
  | From_reg r -> Printf.sprintf "reg%d" r
  | From_alu a -> Printf.sprintf "alu%d" a
  | From_input v -> Printf.sprintf "in:%s" v
  | From_mem a -> Printf.sprintf "mem:%s" a

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let validate_assignments g assignments =
  let n = Dfg.Graph.num_nodes g in
  let seen = Array.make n 0 in
  let rec check_each = function
    | [] -> Ok ()
    | (kind, ops) :: rest ->
        let rec check_ops = function
          | [] -> check_each rest
          | i :: more ->
              if i < 0 || i >= n then
                Error (Printf.sprintf "assignment references unknown node %d" i)
              else begin
                seen.(i) <- seen.(i) + 1;
                let nd = Dfg.Graph.node g i in
                if Dfg.Op.is_mem nd.Dfg.Graph.kind then
                  Error
                    (Printf.sprintf
                       "memory access %s runs on a bank port, not ALU %s"
                       nd.Dfg.Graph.name kind.Celllib.Library.aname)
                else if
                  not (Celllib.Op_set.mem nd.Dfg.Graph.kind kind.Celllib.Library.ops)
                then
                  Error
                    (Printf.sprintf "op %s (%s) assigned to incapable ALU %s"
                       nd.Dfg.Graph.name
                       (Dfg.Op.to_string nd.Dfg.Graph.kind)
                       kind.Celllib.Library.aname)
                else check_ops more
              end
        in
        check_ops ops
  in
  let* () = check_each assignments in
  let missing = ref None and dup = ref None in
  Array.iteri
    (fun i c ->
      (* Memory accesses are bound to bank ports by [elaborate] itself, so
         their absence from the ALU assignment is the expected state. *)
      if
        c = 0 && !missing = None
        && not (Dfg.Op.is_mem (Dfg.Graph.node g i).Dfg.Graph.kind)
      then missing := Some i
      else if c > 1 && !dup = None then dup := Some i)
    seen;
  match (!missing, !dup) with
  | Some i, _ ->
      Error
        (Printf.sprintf "node %s missing from the ALU assignment"
           (Dfg.Graph.node g i).Dfg.Graph.name)
  | _, Some i ->
      Error
        (Printf.sprintf "node %s assigned to several ALUs"
           (Dfg.Graph.node g i).Dfg.Graph.name)
  | None, None -> Ok ()

let elaborate ?(include_inputs = true) g ~start ~delay ~cs ~assignments =
  let* () = validate_assignments g assignments in
  let n = Dfg.Graph.num_nodes g in
  let ivs = Lifetime.intervals ~include_inputs g ~start ~delay ~cs in
  let regs = Left_edge.allocate ivs in
  let alu_of = Array.make n (-1) in
  List.iteri
    (fun a (_, ops) -> List.iter (fun i -> alu_of.(i) <- a) ops)
    assignments;
  (* Bank-port binding: first-fit per bank in start order, so accesses
     share a port exactly when their occupancy intervals are disjoint.
     Port instances get pseudo-unit ids continuing after the ALU ids —
     chained reads tag as [alu<id>] and reuse the wire machinery. *)
  let mem_nodes =
    List.filter (fun nd -> Dfg.Op.is_mem nd.Dfg.Graph.kind) (Dfg.Graph.nodes g)
  in
  let* mems =
    match
      List.find_opt (fun nd -> Dfg.Graph.node_bank g nd = None) mem_nodes
    with
    | Some nd ->
        Error
          (Printf.sprintf "memory access %s names no declared array"
             nd.Dfg.Graph.name)
    | None ->
        let banks =
          List.sort_uniq String.compare
            (List.filter_map (Dfg.Graph.node_bank g) mem_nodes)
        in
        let bind_bank ops =
          let ops =
            List.sort
              (fun i j ->
                let c = compare start.(i) start.(j) in
                if c <> 0 then c else compare i j)
              ops
          in
          let overlap i j =
            start.(i) + delay i - 1 >= start.(j)
            && start.(j) + delay j - 1 >= start.(i)
          in
          let ports = ref ([] : int list list) in
          List.iter
            (fun i ->
              let rec insert = function
                | [] -> [ [ i ] ]
                | p :: rest ->
                    if List.for_all (fun j -> not (overlap i j)) p then
                      (i :: p) :: rest
                    else p :: insert rest
              in
              ports := insert !ports)
            ops;
          List.map List.rev !ports
        in
        let next = ref (List.length assignments) in
        Ok
          (List.concat_map
             (fun b ->
               let ops =
                 List.filter_map
                   (fun nd ->
                     if Dfg.Graph.node_bank g nd = Some b then
                       Some nd.Dfg.Graph.id
                     else None)
                   mem_nodes
               in
               List.mapi
                 (fun k port_ops ->
                   let id = !next in
                   incr next;
                   { m_id = id; m_bank = b; m_port = k; m_ops = port_ops })
                 (bind_bank ops))
             banks)
  in
  List.iter
    (fun m -> List.iter (fun i -> alu_of.(i) <- m.m_id) m.m_ops)
    mems;
  (* A value is read from a register when latched before the consumer's
     step, or chained straight from the producing ALU inside the step. *)
  let resolve consumer arg =
    match Dfg.Graph.find g arg with
    | None -> (
        (* primary input *)
        match Left_edge.register_of regs arg with
        | Some r -> Ok (From_reg r)
        | None -> Ok (From_input arg))
    | Some producer ->
        let p = producer.Dfg.Graph.id in
        let finish = start.(p) + delay p - 1 in
        if finish < start.(consumer) then
          match Left_edge.register_of regs arg with
          | Some r -> Ok (From_reg r)
          | None ->
              Error
                (Printf.sprintf "value %s crosses a boundary but has no register"
                   arg)
        else Ok (From_alu alu_of.(p))
  in
  let rec resolve_all acc = function
    | [] -> Ok (List.rev acc)
    | nd :: rest ->
        let rec operands srcs = function
          | [] -> Ok (List.rev srcs)
          | arg :: more -> (
              match resolve nd.Dfg.Graph.id arg with
              | Ok s -> operands (s :: srcs) more
              | Error _ as e -> e)
        in
        (* A memory access names its array first; the array is the bank
           interface, not a routed value. *)
        let direct, prefix =
          if Dfg.Op.is_mem nd.Dfg.Graph.kind then
            match nd.Dfg.Graph.args with
            | arr :: more -> (more, [ From_mem arr ])
            | [] -> ([], [])
          else (nd.Dfg.Graph.args, [])
        in
        (match operands [] direct with
        | Ok srcs -> resolve_all ((nd.Dfg.Graph.id, prefix @ srcs) :: acc) rest
        | Error _ as e -> e)
  in
  let* operand_sources = resolve_all [] (Dfg.Graph.nodes g) in
  let alus =
    List.mapi
      (fun a (kind, ops) ->
        let ops = List.sort (fun i j -> compare start.(i) start.(j)) ops in
        let rows =
          List.map
            (fun i ->
              let nd = Dfg.Graph.node g i in
              let srcs = List.assoc i operand_sources in
              match srcs with
              | [ x ] ->
                  { Mux_share.left = source_tag x; right = None;
                    commutative = false }
              | [ x; y ] ->
                  { Mux_share.left = source_tag x;
                    right = Some (source_tag y);
                    commutative = Dfg.Op.is_commutative nd.Dfg.Graph.kind }
              | _ -> assert false (* arities validated at graph build *))
            ops
        in
        { a_id = a; a_kind = kind; a_ops = ops; a_share = Mux_share.assign rows })
      assignments
  in
  Ok { graph = g; start; cs; alus; alu_of; regs; mems; operand_sources }

let self_loop_alus t =
  List.filter_map
    (fun a ->
      let members = a.a_ops in
      let has_neighbor i =
        List.exists
          (fun j ->
            j <> i
            && (List.mem j (Dfg.Graph.preds t.graph i)
               || List.mem j (Dfg.Graph.succs t.graph i)))
          members
      in
      if List.exists has_neighbor members then Some a.a_id else None)
    t.alus

let port_fanins t =
  List.concat_map
    (fun a ->
      [ List.length a.a_share.Mux_share.l1; List.length a.a_share.Mux_share.l2 ])
    t.alus

let mux_count t = List.length (List.filter (fun f -> f >= 2) (port_fanins t))

let mux_inputs t =
  List.fold_left
    (fun acc f -> if f >= 2 then acc + f else acc)
    0 (port_fanins t)

let pp ppf t =
  Format.fprintf ppf "@[<v>datapath: %d ALUs, %d registers, %d MUXes (%d inputs)@,"
    (List.length t.alus) t.regs.Left_edge.count (mux_count t) (mux_inputs t);
  List.iter
    (fun a ->
      Format.fprintf ppf "  %s <- {%s}  L1=[%s] L2=[%s]@,"
        a.a_kind.Celllib.Library.aname
        (String.concat ","
           (List.map
              (fun i -> (Dfg.Graph.node t.graph i).Dfg.Graph.name)
              a.a_ops))
        (String.concat ";" a.a_share.Mux_share.l1)
        (String.concat ";" a.a_share.Mux_share.l2))
    t.alus;
  List.iter
    (fun m ->
      Format.fprintf ppf "  mem %s.p%d <- {%s}@," m.m_bank m.m_port
        (String.concat ","
           (List.map
              (fun i -> (Dfg.Graph.node t.graph i).Dfg.Graph.name)
              m.m_ops)))
    t.mems;
  for r = 0 to t.regs.Left_edge.count - 1 do
    Format.fprintf ppf "  reg%d <- {%s}@," r
      (String.concat "," (Left_edge.values_of t.regs r))
  done;
  Format.fprintf ppf "@]"
