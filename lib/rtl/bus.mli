(** Bus-based interconnect (the paper's "optimizing multiplexers (or
    buses)", §4.1): instead of two private multiplexers per ALU, operands
    travel over a small set of shared buses; the number of buses is the peak
    number of simultaneous register/input-to-ALU transfers in any control
    step (chained ALU-to-ALU operands stay on direct wires).

    This gives the designer the classic MUX-vs-bus trade-off: few busy
    steps favour buses, wide parallel steps favour multiplexers. *)

type transfer = {
  t_node : int;  (** Consuming operation. *)
  t_operand : int;  (** Operand index (0-based). *)
  t_step : int;  (** Control step of the read. *)
  t_bus : int;  (** Assigned bus (0-based). *)
  t_source : Datapath.source;
}

type t = {
  buses : int;  (** Buses needed: the peak per-step transfer count. *)
  transfers : transfer list;
  per_step : int array;  (** Transfer count per step (index 1..cs). *)
}

val allocate : Datapath.t -> t
(** Assign every non-chained operand read to a bus, round-robin within each
    step. Two transfers in one step never share a bus. *)

val cost : ?bus_area:float -> ?tap_area:float -> t -> float
(** Interconnect area: [buses * bus_area] plus one tap per distinct
    (source, bus) connection. Defaults: 900 and 60 µm². *)

val check_diags : t -> Diag.t list
(** No two same-step transfers share a bus ([bus.conflict]), and every bus
    index is within range ([bus.range]) — the invariant tests rely on.
    Typed internal diagnostics. *)

val check : t -> (unit, string list) result
(** Thin string projection of {!check_diags} for legacy callers. *)
