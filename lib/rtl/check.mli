(** Structural validation of elaborated datapaths, used by tests and by the
    CLI after every MFSA run. Violations are [Internal] diagnostics (codes
    [check.alu-capability], [check.alu-overlap], [check.reg-clash],
    [check.style2]): a datapath our own pipeline produced should never fail
    these. *)

val datapath :
  ?style2:bool -> ?share_mutex:bool ->
  ?steps_overlap:(int -> int -> int -> int -> bool) ->
  Datapath.t -> delay:(int -> int) -> (unit, Diag.t list) result
(** Checks:
    - every ALU instance executes at most one operation per step (operations
      occupy [delay] consecutive steps; mutually-exclusive operations may
      overlap when [share_mutex], default true). [steps_overlap start span
      start' span'] overrides the occupancy-overlap predicate — pass
      [Core.Grid.steps_overlap ~latency] to validate a functionally
      pipelined schedule with the scheduler's own modulo-folded semantics;
      the default is the plain step-range intersection;
    - every operation's kind is within its ALU's capability set;
    - register sharing is sound: no two values with overlapping lifetimes in
      one register;
    - with [style2], no ALU holds an operation together with a direct DFG
      predecessor or successor. *)
