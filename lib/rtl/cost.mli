(** Datapath area accounting (the paper's "overall cost of RTL designs in
    micron square based on a NCR library"). *)

type breakdown = {
  alu_area : float;
  mux_area : float;
  reg_area : float;
  mem_area : float;
      (** Memory-bank macros ({!Celllib.Bank.area}), at the port counts the
          binding uses; 0 on designs without arrays. *)
  total : float;
  n_alus : int;
  n_regs : int;
  n_mux : int;  (** Multiplexers with fan-in >= 2. *)
  n_mux_inputs : int;  (** Their total data inputs (Table 2's MUXin). *)
  n_mem_ports : int;  (** Bank ports in use across all banks. *)
}

val of_datapath :
  ?widths:(string -> int) -> Celllib.Library.t -> Datapath.t -> breakdown
(** [widths] maps a value name to its inferred bit width
    ({!Analysis.Ranges.width_table}); when given, ALUs are priced at the
    widest operation they execute and registers at the widest value they
    hold, via the {!Celllib.Library} width scalers. Omitted, every unit is
    priced at the full machine word as before. *)

val alu_config : Datapath.t -> string
(** Table-2 style ALU column, e.g. ["2(+-); (*)"] — instance counts per ALU
    kind. *)

val pp : Format.formatter -> breakdown -> unit
