type transfer = {
  t_node : int;
  t_operand : int;
  t_step : int;
  t_bus : int;
  t_source : Datapath.source;
}

type t = {
  buses : int;
  transfers : transfer list;
  per_step : int array;
}

let allocate (dp : Datapath.t) =
  let cs = dp.Datapath.cs in
  let per_step = Array.make (cs + 1) 0 in
  let transfers =
    List.concat_map
      (fun (node, sources) ->
        let step = dp.Datapath.start.(node) in
        List.mapi (fun operand src -> (node, operand, step, src)) sources)
      dp.Datapath.operand_sources
    |> List.filter_map (fun (node, operand, step, src) ->
           match src with
           | Datapath.From_alu _ -> None (* chained: a direct wire *)
           | Datapath.From_mem _ -> None (* bank interface: dedicated wiring *)
           | Datapath.From_reg _ | Datapath.From_input _ ->
               let bus = per_step.(step) in
               per_step.(step) <- bus + 1;
               Some { t_node = node; t_operand = operand; t_step = step;
                      t_bus = bus; t_source = src })
  in
  { buses = Array.fold_left max 0 per_step; transfers; per_step }

let cost ?(bus_area = 900.) ?(tap_area = 60.) t =
  let taps =
    List.sort_uniq compare
      (List.map (fun tr -> (Datapath.source_tag tr.t_source, tr.t_bus)) t.transfers)
  in
  (float_of_int t.buses *. bus_area)
  +. (float_of_int (List.length taps) *. tap_area)

let check_diags t =
  let errs = ref [] in
  let add ~code fmt =
    Printf.ksprintf (fun s -> errs := Diag.internal ~code s :: !errs) fmt
  in
  List.iteri
    (fun i tr ->
      if tr.t_bus < 0 || tr.t_bus >= max 1 t.buses then
        add ~code:"bus.range" "transfer %d uses bus %d outside 0..%d" i
          tr.t_bus (t.buses - 1);
      List.iteri
        (fun j tr' ->
          if
            j > i && tr.t_step = tr'.t_step && tr.t_bus = tr'.t_bus
          then
            add ~code:"bus.conflict" "transfers %d and %d share bus %d in step %d"
              i j tr.t_bus tr.t_step)
        t.transfers)
    t.transfers;
  List.rev !errs

let check t =
  match check_diags t with
  | [] -> Ok ()
  | ds -> Error (List.map Diag.message ds)
