(** Structural Verilog-style export of a synthesised design, for inspection
    and hand-off to downstream tools. The emitted text is self-contained
    (datapath module + FSM controller) and is exercised by golden tests; it
    is not round-tripped through a Verilog simulator in this repository. *)

val emit :
  ?module_name:string -> ?widths:(string -> int) ->
  Datapath.t -> Controller.t -> string
(** [widths] maps a value name to its inferred bit width; declarations then
    size each input, register and ALU output bus at the widest value it
    carries (capped at the 32-bit machine word). Omitted, every bus is
    [[31:0]] as before. *)
