type breakdown = {
  alu_area : float;
  mux_area : float;
  reg_area : float;
  mem_area : float;
  total : float;
  n_alus : int;
  n_regs : int;
  n_mux : int;
  n_mux_inputs : int;
  n_mem_ports : int;
}

let of_datapath ?widths lib dp =
  (* With [widths], each ALU is priced at the widest value it computes and
     each register at the widest value it latches; the mux tree carries
     control-sized selects and is left at the library price. A width at or
     above the machine word falls back to the library's own figure, so
     custom libraries keep their exact areas when nothing narrows. *)
  let alu_area_of a =
    let full = a.Datapath.a_kind.Celllib.Library.area in
    match widths with
    | None -> full
    | Some w ->
        (* A unit must be as wide as any value it consumes or produces. *)
        let width =
          List.fold_left
            (fun acc i ->
              let nd = Dfg.Graph.node dp.Datapath.graph i in
              List.fold_left
                (fun acc v -> max acc (w v))
                (max acc (w nd.Dfg.Graph.name))
                nd.Dfg.Graph.args)
            1 a.Datapath.a_ops
        in
        if width >= Celllib.Library.word_width then full
        else Celllib.Library.scaled_alu_area a.Datapath.a_kind ~width
  in
  let alu_area =
    List.fold_left (fun acc a -> acc +. alu_area_of a) 0. dp.Datapath.alus
  in
  let mux_area =
    List.fold_left
      (fun acc a ->
        acc
        +. Mux_share.cost ~mux_cost:lib.Celllib.Library.mux_cost
             a.Datapath.a_share)
      0. dp.Datapath.alus
  in
  let n_regs = dp.Datapath.regs.Left_edge.count in
  let reg_area =
    match widths with
    | None -> float_of_int n_regs *. lib.Celllib.Library.reg_cost
    | Some w ->
        let rec go acc r =
          if r >= n_regs then acc
          else
            let width =
              List.fold_left
                (fun acc v -> max acc (w v))
                1
                (Left_edge.values_of dp.Datapath.regs r)
            in
            go (acc +. Celllib.Library.scaled_reg_cost lib ~width) (r + 1)
        in
        go 0. 0
  in
  (* Memory macros: one RAM per bank, priced by [Bank.area] at the port
     count the binding actually uses and the bank's total word count. *)
  let mem_area, n_mem_ports =
    let banks =
      List.sort_uniq compare
        (List.map (fun m -> m.Datapath.m_bank) dp.Datapath.mems)
    in
    List.fold_left
      (fun (area, nports) b ->
        let ports =
          List.length
            (List.filter
               (fun m -> String.equal m.Datapath.m_bank b)
               dp.Datapath.mems)
        in
        let words =
          List.fold_left
            (fun acc (a : Dfg.Graph.array_decl) ->
              if String.equal a.Dfg.Graph.a_bank b then
                acc + a.Dfg.Graph.a_size
              else acc)
            0
            (Dfg.Graph.arrays dp.Datapath.graph)
        in
        let bank = Celllib.Bank.with_ports Celllib.Bank.default ports in
        (area +. Celllib.Bank.area bank ~words:(max 1 words), nports + ports))
      (0., 0) banks
  in
  {
    alu_area;
    mux_area;
    reg_area;
    mem_area;
    total = alu_area +. mux_area +. reg_area +. mem_area;
    n_alus = List.length dp.Datapath.alus;
    n_regs;
    n_mux = Datapath.mux_count dp;
    n_mux_inputs = Datapath.mux_inputs dp;
    n_mem_ports;
  }

let alu_config dp =
  let tally = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun a ->
      let name = a.Datapath.a_kind.Celllib.Library.aname in
      (match Hashtbl.find_opt tally name with
      | None ->
          order := name :: !order;
          Hashtbl.replace tally name 1
      | Some k -> Hashtbl.replace tally name (k + 1)))
    dp.Datapath.alus;
  List.rev !order
  |> List.map (fun name ->
         let k = Hashtbl.find tally name in
         if k = 1 then name else Printf.sprintf "%d%s" k name)
  |> String.concat "; "

let pp ppf b =
  (* The MEM clause only appears on designs that touch memory, so the
     printed form of register-only designs is byte-identical to before. *)
  if b.n_mem_ports = 0 then
    Format.fprintf ppf
      "total %.0f um2 (ALU %.0f, MUX %.0f, REG %.0f); %d ALUs, %d REGs, %d \
       MUXes/%d inputs"
      b.total b.alu_area b.mux_area b.reg_area b.n_alus b.n_regs b.n_mux
      b.n_mux_inputs
  else
    Format.fprintf ppf
      "total %.0f um2 (ALU %.0f, MUX %.0f, REG %.0f, MEM %.0f); %d ALUs, %d \
       REGs, %d MUXes/%d inputs, %d mem port(s)"
      b.total b.alu_area b.mux_area b.reg_area b.mem_area b.n_alus b.n_regs
      b.n_mux b.n_mux_inputs b.n_mem_ports
