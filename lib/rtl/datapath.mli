(** RTL datapath netlists: the output of mixed scheduling-allocation.

    A datapath instantiates ALUs from the cell library, registers produced by
    left-edge allocation, and the two multiplexers in front of every ALU.
    Interconnect sharing (paper §5.7) falls out of source tagging: every
    value read from register [r] enters a multiplexer through the single tag
    [reg r], and every value chained combinationally out of ALU [a] through
    the tag [alu a] — so values sharing a physical line share one mux
    input. *)

type source =
  | From_reg of int  (** Latched value, read from a register. *)
  | From_alu of int  (** Same-step chained value, read from an ALU output. *)
  | From_input of string
      (** Primary input wired directly (only when input registering is
          disabled). *)
  | From_mem of string
      (** The array a memory access reads or writes — the bank interface
          itself, not a routed data value. Always a memory op's first
          source. *)

type alu = {
  a_id : int;
  a_kind : Celllib.Library.alu_kind;
  a_ops : int list;  (** Node ids executed on this instance, by start step. *)
  a_share : Mux_share.t;  (** Port source lists after sharing. *)
}

type mem_port = {
  m_id : int;
      (** Pseudo-unit id, continuing after the ALU ids, so chained reads
          out of a port reuse the [alu<id>] wire tags. *)
  m_bank : string;
  m_port : int;  (** Port index within the bank, from 0. *)
  m_ops : int list;  (** Accesses bound to this port, by start step. *)
}

type t = {
  graph : Dfg.Graph.t;
  start : int array;
  cs : int;
  alus : alu list;
  alu_of : int array;
      (** ALU instance per node id; a memory access holds its bank port's
          pseudo-unit id. *)
  regs : Left_edge.t;  (** Register allocation over value lifetimes. *)
  mems : mem_port list;
      (** Bank ports in use, bound first-fit from the schedule. *)
  operand_sources : (int * source list) list;
      (** Resolved operand sources per node, in operand order. *)
}

val elaborate :
  ?include_inputs:bool -> Dfg.Graph.t -> start:int array ->
  delay:(int -> int) -> cs:int ->
  assignments:(Celllib.Library.alu_kind * int list) list ->
  (t, string) result
(** Build the netlist from a schedule and an op→ALU assignment. Errors when
    an assignment references an unknown node, omits or duplicates a node, or
    puts an operation on a unit that cannot execute it. *)

val source_tag : source -> string
(** Stable tag used for multiplexer input sharing. *)

val self_loop_alus : t -> int list
(** ALUs holding an operation together with one of its direct DFG
    predecessors or successors — forbidden under design style 2
    (self-testable structures, §4.2). *)

val mux_count : t -> int
(** Number of multiplexers actually needed (ports with fan-in >= 2). *)

val mux_inputs : t -> int
(** Total data inputs over those multiplexers (Table 2's MUXin). *)

val pp : Format.formatter -> t -> unit
