type interval = { value : string; birth : int; death : int }

let needs_register iv = iv.birth <= iv.death

let intervals ?(include_inputs = true) ?(hold_outputs = true) g ~start ~delay
    ~cs =
  let consumers = Hashtbl.create 32 in
  List.iter
    (fun nd ->
      let use arg =
        let cur = Option.value ~default:[] (Hashtbl.find_opt consumers arg) in
        Hashtbl.replace consumers arg (nd.Dfg.Graph.id :: cur)
      in
      List.iter use nd.Dfg.Graph.args;
      (* The controller reads guard conditions at the guarded op's step. *)
      List.iter (fun (c, _) -> use c) nd.Dfg.Graph.guards)
    (Dfg.Graph.nodes g);
  let death_of ?(hold = hold_outputs) ~birth value =
    let uses = Option.value ~default:[] (Hashtbl.find_opt consumers value) in
    let last_use =
      List.fold_left (fun acc i -> max acc (start.(i) - 1)) (birth - 1) uses
    in
    if uses = [] && hold then cs else last_use
  in
  let input_intervals =
    if include_inputs then
      List.map
        (fun v -> { value = v; birth = 0; death = death_of ~birth:0 v })
        (Dfg.Graph.inputs g)
    else []
  in
  let node_intervals =
    List.map
      (fun nd ->
        let i = nd.Dfg.Graph.id in
        let birth = start.(i) + delay i - 1 in
        (* A store's architectural output is the memory content; its
           pass-through value only needs a register when actually read. *)
        let hold = hold_outputs && nd.Dfg.Graph.kind <> Dfg.Op.Store in
        { value = nd.Dfg.Graph.name; birth;
          death = death_of ~hold ~birth nd.Dfg.Graph.name })
      (Dfg.Graph.nodes g)
  in
  input_intervals @ node_intervals

let overlap a b = a.birth <= b.death && b.birth <= a.death

let max_overlap ivs =
  let live = List.filter needs_register ivs in
  let boundaries =
    List.concat_map (fun iv -> [ iv.birth; iv.death ]) live
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc t ->
      let n =
        List.length (List.filter (fun iv -> iv.birth <= t && t <= iv.death) live)
      in
      max acc n)
    0 boundaries
