type t = {
  ops : int;
  inputs : int;
  edges : int;
  depth : int;
  level_width : int;
  avg_fanout : float;
  guarded : int;
  by_class : (string * int) list;
  parallelism : float;
}

let compute g =
  let ops = Graph.num_nodes g in
  let edges =
    List.fold_left (fun acc nd -> acc + List.length (Graph.preds g nd.Graph.id))
      0 (Graph.nodes g)
  in
  let depth = max 1 (Bounds.critical_path g) in
  let width =
    match Bounds.compute g ~cs:depth with
    | Error _ -> ops
    | Ok b ->
        let per_level = Array.make (depth + 1) 0 in
        Array.iter
          (fun s -> if s >= 1 && s <= depth then per_level.(s) <- per_level.(s) + 1)
          b.Bounds.asap;
        Array.fold_left max 0 per_level
  in
  let guarded =
    List.length (List.filter (fun nd -> nd.Graph.guards <> []) (Graph.nodes g))
  in
  {
    ops;
    inputs = List.length (Graph.inputs g);
    edges;
    depth;
    level_width = width;
    avg_fanout =
      (if ops = 0 then 0. else float_of_int edges /. float_of_int ops);
    guarded;
    by_class = Graph.count_by_class g;
    parallelism = float_of_int ops /. float_of_int depth;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d ops over %d inputs, %d edges@,\
     depth %d, level_width %d, parallelism %.2f, fanout %.2f@,\
     %d guarded op(s)@,\
     classes: %s@]"
    t.ops t.inputs t.edges t.depth t.level_width t.parallelism t.avg_fanout
    t.guarded
    (String.concat ", "
       (List.map (fun (c, n) -> Printf.sprintf "%d %s" n c) t.by_class))
