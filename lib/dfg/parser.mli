(** Textual DFG format, so workloads can live in data files and the CLI can
    operate on user designs.

    Grammar (one declaration per line; [#] starts a comment):
    {v
    input  <name> <name> ...
    range  <value> <lo> <hi>
    width  <value> <bits>
    <name> = <op> <arg> [<arg>] [@ <guard> ...]
    v}
    where [<op>] is an {!Op.kind} mnemonic or symbol ([mul] or [*]), and a
    guard is a condition value name, prefixed with [!] for the false arm.
    [range]/[width] lines annotate a declared value for the range analysis
    ({!Graph.Builder.declare_range}, {!Graph.Builder.declare_width}) and may
    appear before or after the value's declaration.
    Lines may end in LF or CRLF. Example:
    {v
    input x dx three
    range x -128 127
    m1 = * three x
    s1 = + m1 dx @ !c
    width s1 16
    v}

    Rejections are typed diagnostics: word-level errors (unknown operation,
    arity mismatch, unresolved operand, duplicate definition) carry a
    line/column span pointing at the offending word; whole-graph errors
    (cycles, guard scoping) are span-less. *)

val parse : string -> (Graph.t, Diag.t) result

val parse_file : string -> (Graph.t, Diag.t) result
(** Like {!parse}; diagnostics carry the file name, and an unreadable file
    is an [io.read] input diagnostic. *)

val to_source : Graph.t -> string
(** Render a graph back to the textual format; [parse (to_source g)]
    reconstructs an identical graph. *)
