let operand_key kind args =
  if Op.is_commutative kind then List.sort String.compare args else args

let same_computation a b =
  a.Graph.kind = b.Graph.kind
  (* Never merge memory accesses: address dependences order them. *)
  && not (Op.is_mem a.Graph.kind)
  && operand_key a.Graph.kind a.Graph.args = operand_key b.Graph.kind b.Graph.args

let shared_pairs g =
  let n = Graph.num_nodes g in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        Graph.mutually_exclusive g i j
        && same_computation (Graph.node g i) (Graph.node g j)
      then pairs := (i, j) :: !pairs
    done
  done;
  List.rev !pairs

let guard_intersection ga gb =
  List.filter (fun (c, arm) -> List.exists (fun (c', arm') ->
      String.equal c c' && arm = arm') gb) ga

let merge_shared g =
  let pairs = shared_pairs g in
  (* Union-find by successive substitution: drop -> keep, following chains. *)
  let redirect = Hashtbl.create 8 in
  List.iter
    (fun (keep, drop) ->
      if not (Hashtbl.mem redirect drop) then Hashtbl.replace redirect drop keep)
    pairs;
  let rec resolve i =
    match Hashtbl.find_opt redirect i with
    | Some j when j <> i -> resolve j
    | _ -> i
  in
  let rename name =
    match Graph.find g name with
    | None -> name
    | Some nd -> (Graph.node g (resolve nd.Graph.id)).Graph.name
  in
  let b = Graph.Builder.create () in
  List.iter (Graph.Builder.add_input b) (Graph.inputs g);
  Graph.Builder.import_memory b ~from:g;
  List.iter
    (fun nd ->
      let i = nd.Graph.id in
      if resolve i = i then begin
        (* Guards: intersect with every node merged into this one. *)
        let merged_guards =
          List.fold_left
            (fun acc (_, drop) ->
              if resolve drop = i then
                guard_intersection acc (Graph.node g drop).Graph.guards
              else acc)
            nd.Graph.guards pairs
        in
        Graph.Builder.add_op ~guards:merged_guards b ~name:nd.Graph.name
          nd.Graph.kind
          (List.map rename nd.Graph.args)
      end)
    (Graph.nodes g);
  Result.map (Graph.copy_annotations ~from:g) (Graph.Builder.build b)
