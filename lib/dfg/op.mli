(** Operation kinds appearing in behavioural data-flow graphs.

    The set covers the operators used by the six DAC-era benchmark examples:
    arithmetic ([*], [+], [-], [/]), logic ([&], [|], [^], [~]), comparisons
    ([<], [<=], [>], [>=], [=], [<>]), shifts and data movement. *)

type kind =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Not
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Shl
  | Shr
  | Neg
  | Mov
  | Load  (** Array read: [v = ld A i]. *)
  | Store  (** Array write: [v = st A i x]; the value is [x] passed through. *)

val all : kind list
(** Every kind, in declaration order. *)

val to_string : kind -> string
(** Lower-case mnemonic, e.g. ["add"]; inverse of {!of_string}. *)

val of_string : string -> kind option
(** Parse a mnemonic or an operator symbol such as ["+"] or ["<="] . *)

val symbol : kind -> string
(** Operator symbol used in reports, e.g. ["*"] for {!Mul}. *)

val arity : kind -> int
(** Number of operands: 1 for {!Not}, {!Neg}, {!Mov}; 2 for {!Load}
    (array, index); 3 for {!Store} (array, index, data); 2 otherwise. *)

val is_mem : kind -> bool
(** Whether the kind is a memory access ({!Load} or {!Store}). Memory
    accesses occupy bank ports, not ALUs, and their first operand names a
    declared array rather than a value. *)

val is_commutative : kind -> bool
(** Whether operand order is irrelevant — drives multiplexer input sharing. *)

val fu_class : kind -> string
(** Single-function FU type implementing the kind, keyed by its symbol.
    In MFS every kind maps to its own functional-unit type (the paper's
    scheduling phase assumes single-function operators). *)

val eval : kind -> int list -> int
(** Integer semantics used by the simulator substrate. Comparisons return
    0/1; division by zero yields 0 (a total model keeps property tests
    simple and is irrelevant to scheduling).

    @raise Invalid_argument if the operand count differs from {!arity}, or
    for {!Load}/{!Store}, which need memory state the pure evaluator does
    not carry (the simulators special-case them). *)

val pp : Format.formatter -> kind -> unit
(** Prints the {!symbol}. *)
