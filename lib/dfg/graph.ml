type node = {
  id : int;
  name : string;
  kind : Op.kind;
  args : string list;
  guards : (string * bool) list;
}

type array_decl = { a_name : string; a_size : int; a_bank : string }
type bank_decl = { b_name : string; b_ports : int }

type t = {
  node_arr : node array;
  pred_arr : int list array;
  succ_arr : int list array;
  input_list : string list;
  index : (string, int) Hashtbl.t;
  range_list : (string * (int * int)) list;
  width_list : (string * int) list;
  array_list : array_decl list;
  bank_list : bank_decl list;
}

module Builder = struct
  type pending = {
    p_name : string;
    p_kind : Op.kind;
    p_args : string list;
    p_guards : (string * bool) list;
  }

  type t = {
    mutable rev_inputs : string list;
    mutable rev_ops : pending list;
    mutable rev_ranges : (string * (int * int)) list;
    mutable rev_widths : (string * int) list;
    mutable rev_arrays : array_decl list;
    mutable rev_banks : bank_decl list;
  }

  let create () =
    { rev_inputs = []; rev_ops = []; rev_ranges = []; rev_widths = [];
      rev_arrays = []; rev_banks = [] }

  let add_input b name =
    if not (List.mem name b.rev_inputs) then
      b.rev_inputs <- name :: b.rev_inputs

  let declare_range b name (lo, hi) =
    b.rev_ranges <- (name, (lo, hi)) :: List.remove_assoc name b.rev_ranges

  let declare_width b name w =
    b.rev_widths <- (name, w) :: List.remove_assoc name b.rev_widths

  (* An array lives in a bank (defaulting to a private bank of its own
     name); the bank's port count caps simultaneous accesses per step. *)
  let declare_array ?bank b ~name ~size =
    let a_bank = Option.value ~default:name bank in
    b.rev_arrays <- { a_name = name; a_size = size; a_bank } :: b.rev_arrays

  let declare_bank b ~name ~ports =
    b.rev_banks <- { b_name = name; b_ports = ports } :: b.rev_banks

  let add_op ?(guards = []) b ~name kind args =
    b.rev_ops <-
      { p_name = name; p_kind = kind; p_args = args; p_guards = guards }
      :: b.rev_ops

  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

  let check_unique inputs arrays ops =
    let seen = Hashtbl.create 64 in
    let rec go kind_of = function
      | [] -> Ok ()
      | name :: rest ->
          if Hashtbl.mem seen name then
            Error (Printf.sprintf "duplicate value name %S" name)
          else begin
            Hashtbl.add seen name ();
            go kind_of rest
          end
    in
    let* () = go "input" inputs in
    (* Arrays share the value namespace: an operand position holds either
       a value name or (first operand of a memory access only) an array. *)
    let* () = go "array" (List.map (fun a -> a.a_name) arrays) in
    go "node" (List.map (fun p -> p.p_name) ops)

  let check_mem arrays banks ops =
    let rec go_a = function
      | [] -> Ok ()
      | a :: rest ->
          if a.a_size < 1 then
            Error
              (Printf.sprintf "array %S has non-positive size %d" a.a_name
                 a.a_size)
          else go_a rest
    in
    let rec go_b seen = function
      | [] -> Ok ()
      | b :: rest ->
          if List.mem b.b_name seen then
            Error (Printf.sprintf "duplicate bank declaration %S" b.b_name)
          else if b.b_ports < 1 then
            Error
              (Printf.sprintf "bank %S has non-positive port count %d"
                 b.b_name b.b_ports)
          else go_b (b.b_name :: seen) rest
    in
    let is_array n = List.exists (fun a -> String.equal a.a_name n) arrays in
    let rec go_ops = function
      | [] -> Ok ()
      | p :: rest -> (
          match (Op.is_mem p.p_kind, p.p_args) with
          | true, arr :: _ when not (is_array arr) ->
              Error
                (Printf.sprintf
                   "node %S: %s expects a declared array first, got %S"
                   p.p_name (Op.to_string p.p_kind) arr)
          | true, _ ->
              let offender =
                List.find_opt is_array
                  (List.tl p.p_args @ List.map fst p.p_guards)
              in
              (match offender with
              | Some arr ->
                  Error
                    (Printf.sprintf
                       "node %S uses array %S as a plain value" p.p_name arr)
              | None -> go_ops rest)
          | false, args ->
              let offender =
                List.find_opt is_array (args @ List.map fst p.p_guards)
              in
              (match offender with
              | Some arr ->
                  Error
                    (Printf.sprintf
                       "node %S uses array %S as a plain value" p.p_name arr)
              | None -> go_ops rest))
    in
    let* () = go_a arrays in
    let* () = go_b [] banks in
    go_ops ops

  let check_arities ops =
    let rec go = function
      | [] -> Ok ()
      | p :: rest ->
          let expected = Op.arity p.p_kind in
          let got = List.length p.p_args in
          if expected <> got then
            Error
              (Printf.sprintf "node %S: %s expects %d operand(s), got %d"
                 p.p_name (Op.to_string p.p_kind) expected got)
          else go rest
    in
    go ops

  (* A value is defined exactly when its guards hold, so every consumer
     must be at least as restricted as the producer: guards(producer)
     must be a subset of guards(consumer). This rejects cross-branch
     reads (a then-branch value consumed in the else branch or in
     unconditional code), which have no execution under which they are
     well defined. *)
  let check_guard_scoping ops =
    let guards_of = Hashtbl.create 32 in
    List.iter (fun p -> Hashtbl.replace guards_of p.p_name p.p_guards) ops;
    let subset a b =
      List.for_all (fun (c, arm) ->
          List.exists (fun (c', arm') -> String.equal c c' && arm = arm') b)
        a
    in
    let rec go = function
      | [] -> Ok ()
      | p :: rest ->
          let sources =
            p.p_args @ List.map fst p.p_guards
          in
          let offender =
            List.find_opt
              (fun src ->
                match Hashtbl.find_opt guards_of src with
                | Some src_guards -> not (subset src_guards p.p_guards)
                | None -> false (* primary input: always defined *))
              sources
          in
          (match offender with
          | Some src ->
              Error
                (Printf.sprintf
                   "node %S reads %S, which is only defined on another \
                    branch (guard scoping)"
                   p.p_name src)
          | None -> go rest)
    in
    go ops

  let check_refs inputs arrays ops =
    let known = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace known n ()) inputs;
    List.iter (fun (a : array_decl) -> Hashtbl.replace known a.a_name ()) arrays;
    List.iter (fun p -> Hashtbl.replace known p.p_name ()) ops;
    let rec go = function
      | [] -> Ok ()
      | p :: rest ->
          let missing =
            List.filter (fun a -> not (Hashtbl.mem known a)) p.p_args
            @ List.filter_map
                (fun (c, _) -> if Hashtbl.mem known c then None else Some c)
                p.p_guards
          in
          (match missing with
          | [] -> go rest
          | m :: _ ->
              Error
                (Printf.sprintf "node %S references unknown value %S" p.p_name m))
    in
    go ops

  (* Kahn's algorithm over operand edges; detects cycles. *)
  let topo_ids num_nodes pred_arr succ_arr =
    let indeg = Array.map List.length pred_arr in
    let queue = Queue.create () in
    Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
    let order = ref [] in
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      incr count;
      order := i :: !order;
      List.iter
        (fun s ->
          indeg.(s) <- indeg.(s) - 1;
          if indeg.(s) = 0 then Queue.add s queue)
        succ_arr.(i)
    done;
    if !count = num_nodes then Ok (List.rev !order) else Error "cycle in DFG"

  (* Annotations may name inputs or nodes; ranges must be non-empty and
     widths representable (1..64 bits — the word itself is 32, wider
     declarations are legal no-ops for forward compatibility). *)
  let check_annotations inputs ops ranges widths =
    let known = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace known n ()) inputs;
    List.iter (fun p -> Hashtbl.replace known p.p_name ()) ops;
    let rec go_r = function
      | [] -> Ok ()
      | (name, (lo, hi)) :: rest ->
          if not (Hashtbl.mem known name) then
            Error (Printf.sprintf "range declared for unknown value %S" name)
          else if lo > hi then
            Error
              (Printf.sprintf "range for %S is empty (%d > %d)" name lo hi)
          else go_r rest
    in
    let rec go_w = function
      | [] -> Ok ()
      | (name, w) :: rest ->
          if not (Hashtbl.mem known name) then
            Error (Printf.sprintf "width declared for unknown value %S" name)
          else if w < 1 || w > 64 then
            Error
              (Printf.sprintf "width for %S out of range (%d bits)" name w)
          else go_w rest
    in
    let* () = go_r ranges in
    go_w widths

  let build b =
    let inputs = List.rev b.rev_inputs in
    let ops = List.rev b.rev_ops in
    let ranges = List.rev b.rev_ranges in
    let widths = List.rev b.rev_widths in
    let arrays = List.rev b.rev_arrays in
    let banks = List.rev b.rev_banks in
    let* () = check_unique inputs arrays ops in
    let* () = check_arities ops in
    let* () = check_mem arrays banks ops in
    let* () = check_refs inputs arrays ops in
    let* () = check_guard_scoping ops in
    let* () = check_annotations inputs ops ranges widths in
    let n = List.length ops in
    let index = Hashtbl.create (2 * n) in
    List.iteri (fun i p -> Hashtbl.replace index p.p_name i) ops;
    let node_arr =
      Array.of_list
        (List.mapi
           (fun i p ->
             { id = i; name = p.p_name; kind = p.p_kind; args = p.p_args;
               guards = p.p_guards })
           ops)
    in
    let pred_arr = Array.make n [] in
    let succ_arr = Array.make n [] in
    Array.iter
      (fun nd ->
        (* Guard conditions are implicit predecessors: the controller must
           know the condition before it can enable the operation. *)
        let ps =
          List.filter_map (fun a -> Hashtbl.find_opt index a) nd.args
          @ List.filter_map (fun (c, _) -> Hashtbl.find_opt index c) nd.guards
        in
        let ps = List.sort_uniq compare ps in
        pred_arr.(nd.id) <- ps;
        List.iter (fun p -> succ_arr.(p) <- nd.id :: succ_arr.(p)) ps)
      node_arr;
    (* Address-dependence edges serialize accesses to one array in program
       order: a load depends on the latest preceding store (read-after-
       write); a store depends on that store (write-after-write) and on
       every load since it (write-after-read). Loads between two stores
       stay unordered, so they can still issue in parallel across ports.
       Program order is definition order, so every edge points forward —
       these edges can never create a cycle. *)
    List.iter
      (fun (a : array_decl) ->
        let last_store = ref None in
        let loads_since = ref [] in
        let add_edge p s =
          if not (List.mem p pred_arr.(s)) then begin
            pred_arr.(s) <- List.sort_uniq compare (p :: pred_arr.(s));
            succ_arr.(p) <- List.sort_uniq compare (s :: succ_arr.(p))
          end
        in
        Array.iter
          (fun nd ->
            match (nd.kind, nd.args) with
            | Op.Load, arr :: _ when String.equal arr a.a_name ->
                Option.iter (fun p -> add_edge p nd.id) !last_store;
                loads_since := nd.id :: !loads_since
            | Op.Store, arr :: _ when String.equal arr a.a_name ->
                Option.iter (fun p -> add_edge p nd.id) !last_store;
                List.iter (fun p -> add_edge p nd.id) !loads_since;
                last_store := Some nd.id;
                loads_since := []
            | _ -> ())
          node_arr)
      arrays;
    let* _order = topo_ids n pred_arr succ_arr in
    Ok
      { node_arr; pred_arr; succ_arr; input_list = inputs; index;
        range_list = ranges; width_list = widths; array_list = arrays;
        bank_list = banks }

  let import_memory b ~from =
    List.iter
      (fun (a : array_decl) ->
        declare_array ~bank:a.a_bank b ~name:a.a_name ~size:a.a_size)
      from.array_list;
    List.iter
      (fun (bk : bank_decl) -> declare_bank b ~name:bk.b_name ~ports:bk.b_ports)
      from.bank_list
end

let of_ops ~inputs rows =
  let b = Builder.create () in
  List.iter (Builder.add_input b) inputs;
  List.iter
    (fun (name, kind, args, guards) -> Builder.add_op ~guards b ~name kind args)
    rows;
  Builder.build b

let num_nodes g = Array.length g.node_arr

let node g i =
  if i < 0 || i >= num_nodes g then
    invalid_arg (Printf.sprintf "Graph.node: id %d out of range" i);
  g.node_arr.(i)

let nodes g = Array.to_list g.node_arr
let find g name = Option.map (fun i -> g.node_arr.(i)) (Hashtbl.find_opt g.index name)
let inputs g = g.input_list
let ranges g = g.range_list
let declared_widths g = g.width_list
let range_of g name = List.assoc_opt name g.range_list
let declared_width g name = List.assoc_opt name g.width_list
let arrays g = g.array_list
let banks g = g.bank_list

let array_of g name =
  List.find_opt (fun a -> String.equal a.a_name name) g.array_list

(* Banks may be declared implicitly by an array's [bank] clause; an
   undeclared bank has one port. *)
let bank_names g =
  List.sort_uniq String.compare
    (List.map (fun (b : bank_decl) -> b.b_name) g.bank_list
    @ List.map (fun a -> a.a_bank) g.array_list)

let bank_ports g name =
  match List.find_opt (fun b -> String.equal b.b_name name) g.bank_list with
  | Some b -> b.b_ports
  | None -> 1

let mem_class bank = "mem:" ^ bank

let is_mem_class c =
  String.length c > 4 && String.equal (String.sub c 0 4) "mem:"

let bank_of_class c = if is_mem_class c then String.sub c 4 (String.length c - 4) else c

(* The bank whose port the access occupies; total on well-formed graphs
   ([Builder.build] guarantees a memory op's first operand is a declared
   array). *)
let node_bank g nd =
  if not (Op.is_mem nd.kind) then None
  else
    match nd.args with
    | arr :: _ -> Option.map (fun a -> a.a_bank) (array_of g arr)
    | [] -> None

let node_class g nd =
  match node_bank g nd with
  | Some bank -> mem_class bank
  | None -> Op.fu_class nd.kind

let copy_annotations ~from g =
  let keep name =
    Hashtbl.mem g.index name || List.mem name g.input_list
  in
  let merge old extra =
    old @ List.filter (fun (n, _) -> not (List.mem_assoc n old)) extra
  in
  {
    g with
    range_list =
      merge g.range_list (List.filter (fun (n, _) -> keep n) from.range_list);
    width_list =
      merge g.width_list (List.filter (fun (n, _) -> keep n) from.width_list);
  }
let preds g i = g.pred_arr.(i)
let succs g i = g.succ_arr.(i)

let topological g =
  match
    Builder.topo_ids (num_nodes g) g.pred_arr g.succ_arr
  with
  | Ok order -> order
  | Error _ -> assert false (* acyclicity established at build time *)

let sinks g =
  List.filter_map
    (fun nd -> if g.succ_arr.(nd.id) = [] then Some nd.id else None)
    (nodes g)

let classes g =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc nd ->
      let c = node_class g nd in
      if Hashtbl.mem seen c then acc
      else begin
        Hashtbl.add seen c ();
        c :: acc
      end)
    [] g.node_arr
  |> List.rev

let count_by_class g =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun nd ->
      let c = node_class g nd in
      let cur = Option.value ~default:0 (Hashtbl.find_opt counts c) in
      Hashtbl.replace counts c (cur + 1))
    g.node_arr;
  List.map (fun c -> (c, Hashtbl.find counts c)) (classes g)

let mutually_exclusive g i j =
  i <> j
  &&
  let gi = (node g i).guards and gj = (node g j).guards in
  List.exists
    (fun (c, arm) ->
      List.exists (fun (c', arm') -> String.equal c c' && arm <> arm') gj)
    gi

let pp ppf g =
  Format.fprintf ppf "@[<v>inputs: %s@,"
    (String.concat " " g.input_list);
  Array.iter
    (fun nd ->
      let guard_s =
        match nd.guards with
        | [] -> ""
        | gs ->
            " @ "
            ^ String.concat ","
                (List.map
                   (fun (c, arm) -> (if arm then "" else "!") ^ c)
                   gs)
      in
      Format.fprintf ppf "%s = %s %s%s@," nd.name
        (Op.to_string nd.kind)
        (String.concat " " nd.args)
        guard_s)
    g.node_arr;
  Format.fprintf ppf "@]"
