(** Structural statistics of a DFG — used by the CLI and handy when judging
    how hard a graph is to schedule. *)

type t = {
  ops : int;
  inputs : int;
  edges : int;  (** Data-dependency edges (guard edges included). *)
  depth : int;  (** Unit-delay critical path. *)
  level_width : int;
      (** Peak number of operations per ASAP level — a measure of available
          parallelism, {e not} a bitwidth (bit widths live in
          [Analysis.Ranges]). *)
  avg_fanout : float;  (** Mean successors per operation. *)
  guarded : int;  (** Operations under at least one guard. *)
  by_class : (string * int) list;
  parallelism : float;  (** [ops / depth] — the speedup ceiling. *)
}

val compute : Graph.t -> t

val pp : Format.formatter -> t -> unit
