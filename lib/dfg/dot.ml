let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

(* Every identifier is emitted quoted: node names may contain operator
   symbols, digits-first spellings or DOT keywords, none of which are valid
   bare DOT IDs. *)
let ident s = "\"" ^ escape s ^ "\""

let attrs_of ~fill name =
  match List.assoc_opt name fill with
  | Some color -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" (escape color)
  | None -> ""

let node_lines ~fill g =
  List.map
    (fun nd ->
      Printf.sprintf "  %s [label=\"%s: %s\"%s];" (ident nd.Graph.name)
        (escape nd.Graph.name)
        (escape (Op.symbol nd.Graph.kind))
        (attrs_of ~fill nd.Graph.name))
    (Graph.nodes g)

let edge_lines g =
  List.concat_map
    (fun nd ->
      List.map
        (fun arg ->
          let src =
            match Graph.find g arg with
            | Some src -> src.Graph.name
            | None -> arg
          in
          Printf.sprintf "  %s -> %s;" (ident src) (ident nd.Graph.name))
        nd.Graph.args)
    (Graph.nodes g)

let input_lines ~fill g =
  List.map
    (fun i -> Printf.sprintf "  %s [shape=box%s];" (ident i) (attrs_of ~fill i))
    (Graph.inputs g)

let of_graph ?(name = "dfg") ?(fill = []) g =
  String.concat "\n"
    (("digraph " ^ ident name ^ " {")
     :: input_lines ~fill g @ node_lines ~fill g @ edge_lines g
     @ [ "}" ])

let of_schedule ?(name = "schedule") ?(fill = []) g ~start =
  let cs = Array.fold_left max 0 start in
  let ranks =
    List.init cs (fun t ->
        let step = t + 1 in
        let members =
          List.filter (fun nd -> start.(nd.Graph.id) = step) (Graph.nodes g)
        in
        Printf.sprintf "  { rank=same; %s }"
          (String.concat " "
             (List.map (fun nd -> ident nd.Graph.name) members)))
  in
  String.concat "\n"
    (("digraph " ^ ident name ^ " {")
     :: input_lines ~fill g @ node_lines ~fill g @ edge_lines g @ ranks
     @ [ "}" ])
