(* Line-oriented DFG reader. Words are tracked with their source columns so
   every rejection carries a real span; lines are normalised for CRLF
   endings before splitting, so Windows-edited files parse identically. *)

type word = { w : string; col : int }

let is_space c = c = ' ' || c = '\t'

(* Words of [line] with their 1-based start columns; comments stripped. *)
let split_words line =
  let line =
    match String.index_opt line '#' with
    | None -> line
    | Some i -> String.sub line 0 i
  in
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if is_space line.[i] then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && not (is_space line.[!j]) do incr j done;
      go !j ({ w = String.sub line i (!j - i); col = i + 1 } :: acc)
    end
  in
  go 0 []

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_guard w =
  if String.length w > 1 && w.[0] = '!' then
    (String.sub w 1 (String.length w - 1), false)
  else (w, true)

let rec split_at_sign acc = function
  | [] -> (List.rev acc, [])
  | { w = "@"; _ } :: rest -> (List.rev acc, rest)
  | w :: rest -> split_at_sign (w :: acc) rest

type row = {
  r_name : word;
  r_kind : Op.kind;
  r_args : word list;
  r_guards : (word * bool) list;
  r_line : int;
}

let err ~line word ~code fmt =
  Printf.ksprintf
    (fun s ->
      Error (Diag.input ~span:(Diag.span_of_word ~line ~col:word.col word.w) ~code s))
    fmt

type annot =
  | A_range of word * int * int
  | A_width of word * int
  | A_array of word * int * string option
  | A_bank of word * int

let parse src =
  let lines = List.map strip_cr (String.split_on_char '\n' src) in
  (* First pass: collect declarations, with spans. *)
  let rec collect lineno inputs rows annots = function
    | [] -> Ok (List.rev inputs, List.rev rows, List.rev annots)
    | line :: rest -> (
        match split_words line with
        | [] -> collect (lineno + 1) inputs rows annots rest
        | { w = "input"; col } :: names ->
            if names = [] then
              err ~line:lineno { w = "input"; col } ~code:"parse.empty-input"
                "input declaration without names"
            else
              collect (lineno + 1)
                (List.rev_append
                   (List.map (fun n -> (n, lineno)) names)
                   inputs)
                rows annots rest
        | { w = "array"; _ } :: name :: size :: bank_tail
          when bank_tail = []
               || (match bank_tail with
                  | [ { w = "bank"; _ }; _ ] -> true
                  | _ -> false) -> (
            let bank =
              match bank_tail with [ _; b ] -> Some b.w | _ -> None
            in
            match int_of_string_opt size.w with
            | Some n when n >= 1 ->
                collect (lineno + 1) inputs rows
                  ((A_array (name, n, bank), lineno) :: annots)
                  rest
            | Some n ->
                err ~line:lineno size ~code:"parse.bad-array"
                  "array %S needs a positive size, got %d" name.w n
            | None ->
                err ~line:lineno size ~code:"parse.bad-array"
                  "array size must be an integer")
        | { w = "array"; col } :: _ ->
            err ~line:lineno { w = "array"; col } ~code:"parse.bad-array"
              "expected: array <name> <size> [bank <bank>]"
        | { w = "mem"; _ } :: name :: { w = "ports"; _ } :: ports :: [] -> (
            match int_of_string_opt ports.w with
            | Some n when n >= 1 ->
                collect (lineno + 1) inputs rows
                  ((A_bank (name, n), lineno) :: annots)
                  rest
            | Some n ->
                err ~line:lineno ports ~code:"parse.bad-mem"
                  "bank %S needs a positive port count, got %d" name.w n
            | None ->
                err ~line:lineno ports ~code:"parse.bad-mem"
                  "port count must be an integer")
        | { w = "mem"; col } :: _ ->
            err ~line:lineno { w = "mem"; col } ~code:"parse.bad-mem"
              "expected: mem <bank> ports <n>"
        | { w = "range"; _ } :: name :: lo :: hi :: [] -> (
            match (int_of_string_opt lo.w, int_of_string_opt hi.w) with
            | Some lo_v, Some hi_v when lo_v <= hi_v ->
                collect (lineno + 1) inputs rows
                  ((A_range (name, lo_v, hi_v), lineno) :: annots)
                  rest
            | Some lo_v, Some hi_v ->
                err ~line:lineno name ~code:"parse.bad-range"
                  "range for %S is empty (%d > %d)" name.w lo_v hi_v
            | _ ->
                err ~line:lineno lo ~code:"parse.bad-range"
                  "range bounds must be integers")
        | { w = "range"; col } :: _ ->
            err ~line:lineno { w = "range"; col } ~code:"parse.bad-range"
              "expected: range <value> <lo> <hi>"
        | { w = "width"; _ } :: name :: bits :: [] -> (
            match int_of_string_opt bits.w with
            | Some w_v when w_v >= 1 && w_v <= 64 ->
                collect (lineno + 1) inputs rows
                  ((A_width (name, w_v), lineno) :: annots)
                  rest
            | Some w_v ->
                err ~line:lineno bits ~code:"parse.bad-width"
                  "width must be 1..64 bits, got %d" w_v
            | None ->
                err ~line:lineno bits ~code:"parse.bad-width"
                  "width must be an integer")
        | { w = "width"; col } :: _ ->
            err ~line:lineno { w = "width"; col } ~code:"parse.bad-width"
              "expected: width <value> <bits>"
        | name :: { w = "="; _ } :: op :: tail -> (
            match Op.of_string op.w with
            | None ->
                err ~line:lineno op ~code:"parse.unknown-op"
                  "unknown operation %S" op.w
            | Some kind ->
                let args, guard_words = split_at_sign [] tail in
                let guards =
                  List.map
                    (fun gw ->
                      let name, arm = parse_guard gw.w in
                      ( { w = name; col = (gw.col + if arm then 0 else 1) },
                        arm ))
                    guard_words
                in
                collect (lineno + 1) inputs
                  ({ r_name = name; r_kind = kind; r_args = args;
                     r_guards = guards; r_line = lineno }
                  :: rows)
                  annots rest)
        | w :: _ ->
            err ~line:lineno w ~code:"parse.bad-declaration"
              "cannot parse declaration near %S" w.w)
  in
  match collect 1 [] [] [] lines with
  | Error _ as e -> e
  | Ok (inputs, rows, annots) -> (
      (* Second pass: span-carrying validation of names, operand references
         and arities. Operand references may be forward, so they resolve
         against the full set of declared names. *)
      let defined = Hashtbl.create 32 in
      List.iter (fun (n, _) -> Hashtbl.replace defined n.w ()) inputs;
      List.iter (fun r -> Hashtbl.replace defined r.r_name.w ()) rows;
      let array_names = Hashtbl.create 8 in
      List.iter
        (fun (a, _) ->
          match a with
          | A_array (n, _, _) -> Hashtbl.replace array_names n.w ()
          | A_range _ | A_width _ | A_bank _ -> ())
        annots;
      let seen = Hashtbl.create 32 in
      List.iter (fun (n, _) -> Hashtbl.replace seen n.w `Input) inputs;
      (* Array names share the value namespace; bank names have their own. *)
      let rec check_decls bank_seen = function
        | [] -> Ok ()
        | (A_array (n, _, _), line) :: rest ->
            if Hashtbl.mem seen n.w then
              err ~line n ~code:"parse.duplicate-name"
                "value %S is defined twice" n.w
            else begin
              Hashtbl.replace seen n.w `Array;
              check_decls bank_seen rest
            end
        | (A_bank (n, _), line) :: rest ->
            if List.mem n.w bank_seen then
              err ~line n ~code:"parse.duplicate-name"
                "bank %S is declared twice" n.w
            else check_decls (n.w :: bank_seen) rest
        | ((A_range _ | A_width _), _) :: rest -> check_decls bank_seen rest
      in
      let check_row r =
        (match Hashtbl.find_opt seen r.r_name.w with
        | Some _ ->
            err ~line:r.r_line r.r_name ~code:"parse.duplicate-name"
              "value %S is defined twice" r.r_name.w
        | None ->
            Hashtbl.replace seen r.r_name.w `Op;
            Ok ())
        |> function
        | Error _ as e -> e
        | Ok () -> (
            let expected = Op.arity r.r_kind in
            if List.length r.r_args <> expected then
              err ~line:r.r_line r.r_name ~code:"parse.arity"
                "operation %s takes %d operand(s), got %d"
                (Op.to_string r.r_kind) expected (List.length r.r_args)
            else
              (* A memory access names a declared array first; everywhere
                 else an array name is not a value. *)
              let value_args =
                if Op.is_mem r.r_kind then List.tl r.r_args else r.r_args
              in
              let arr_check =
                match (Op.is_mem r.r_kind, r.r_args) with
                | true, a :: _ when not (Hashtbl.mem array_names a.w) ->
                    err ~line:r.r_line a ~code:"parse.unknown-array"
                      "%s expects a declared array, got %S"
                      (Op.to_string r.r_kind) a.w
                | _ -> Ok ()
              in
              match arr_check with
              | Error _ as e -> e
              | Ok () -> (
                  let bad_ref =
                    List.find_opt
                      (fun a ->
                        Hashtbl.mem array_names a.w
                        || not (Hashtbl.mem defined a.w))
                      (value_args @ List.map fst r.r_guards)
                  in
                  match bad_ref with
                  | Some a when Hashtbl.mem array_names a.w ->
                      err ~line:r.r_line a ~code:"parse.array-as-value"
                        "array %S cannot be used as a plain value" a.w
                  | Some a ->
                      err ~line:r.r_line a ~code:"parse.unknown-value"
                        "operand %S names no input or operation" a.w
                  | None -> Ok ()))
      in
      let rec check = function
        | [] -> Ok ()
        | r :: rest -> ( match check_row r with Ok () -> check rest | e -> e)
      in
      let rec check_annots = function
        | [] -> Ok ()
        | ((A_array _ | A_bank _), _) :: rest -> check_annots rest
        | (a, line) :: rest ->
            let name =
              match a with
              | A_range (n, _, _) | A_width (n, _) -> n
              | A_array _ | A_bank _ -> assert false
            in
            if not (Hashtbl.mem defined name.w) then
              err ~line name ~code:"parse.unknown-value"
                "annotation names no input or operation: %S" name.w
            else check_annots rest
      in
      match
        match check_decls [] annots with
        | Error _ as e -> e
        | Ok () -> (
            match check rows with
            | Error _ as e -> e
            | Ok () -> check_annots annots)
      with
      | Error _ as e -> e
      | Ok () -> (
          let b = Graph.Builder.create () in
          List.iter (fun (n, _) -> Graph.Builder.add_input b n.w) inputs;
          List.iter
            (fun r ->
              Graph.Builder.add_op
                ~guards:(List.map (fun (gw, arm) -> (gw.w, arm)) r.r_guards)
                b ~name:r.r_name.w r.r_kind
                (List.map (fun a -> a.w) r.r_args))
            rows;
          List.iter
            (fun (a, _) ->
              match a with
              | A_range (n, lo, hi) -> Graph.Builder.declare_range b n.w (lo, hi)
              | A_width (n, w) -> Graph.Builder.declare_width b n.w w
              | A_array (n, size, bank) ->
                  Graph.Builder.declare_array ?bank b ~name:n.w ~size
              | A_bank (n, ports) -> Graph.Builder.declare_bank b ~name:n.w ~ports)
            annots;
          (* Whole-graph properties (cycles, guard scoping) have no single
             source position. *)
          match Graph.Builder.build b with
          | Ok g -> Ok g
          | Error msg -> Error (Diag.input ~code:"parse.invalid-graph" msg)))

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> Result.map_error (Diag.with_file path) (parse src)
  | exception Sys_error msg -> Error (Diag.input ~code:"io.read" msg)

let to_source g =
  let buf = Buffer.create 256 in
  (match Graph.inputs g with
  | [] -> ()
  | ins -> Buffer.add_string buf ("input " ^ String.concat " " ins ^ "\n"));
  List.iter
    (fun (bk : Graph.bank_decl) ->
      Buffer.add_string buf
        (Printf.sprintf "mem %s ports %d\n" bk.Graph.b_name bk.Graph.b_ports))
    (Graph.banks g);
  List.iter
    (fun (a : Graph.array_decl) ->
      Buffer.add_string buf
        (if String.equal a.Graph.a_bank a.Graph.a_name then
           Printf.sprintf "array %s %d\n" a.Graph.a_name a.Graph.a_size
         else
           Printf.sprintf "array %s %d bank %s\n" a.Graph.a_name
             a.Graph.a_size a.Graph.a_bank))
    (Graph.arrays g);
  List.iter
    (fun nd ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s %s" nd.Graph.name
           (Op.to_string nd.Graph.kind)
           (String.concat " " nd.Graph.args));
      (match nd.Graph.guards with
      | [] -> ()
      | gs ->
          Buffer.add_string buf " @ ";
          Buffer.add_string buf
            (String.concat " "
               (List.map (fun (c, arm) -> (if arm then "" else "!") ^ c) gs)));
      Buffer.add_char buf '\n')
    (Graph.nodes g);
  List.iter
    (fun (v, (lo, hi)) ->
      Buffer.add_string buf (Printf.sprintf "range %s %d %d\n" v lo hi))
    (Graph.ranges g);
  List.iter
    (fun (v, w) ->
      Buffer.add_string buf (Printf.sprintf "width %s %d\n" v w))
    (Graph.declared_widths g);
  Buffer.contents buf
