let operand_key kind args =
  if Op.is_commutative kind then List.sort String.compare args else args

let guard_key guards =
  List.sort compare guards

let node_key resolve nd =
  ( nd.Graph.kind,
    operand_key nd.Graph.kind (List.map resolve nd.Graph.args),
    guard_key (List.map (fun (c, a) -> (resolve c, a)) nd.Graph.guards) )

(* One pass: group by (kind, operands, guards) after resolving through the
   pending redirections, keep the first of each group. *)
let eliminate_once g =
  let redirect = Hashtbl.create 8 in
  let resolve name =
    let rec go n = match Hashtbl.find_opt redirect n with Some n' -> go n' | None -> n in
    go name
  in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun nd ->
      (* Memory accesses are never merged: two textually equal loads may
         read different values when a store sits between them, and stores
         are effects, not expressions. *)
      if not (Op.is_mem nd.Graph.kind) then begin
        let key = node_key resolve nd in
        match Hashtbl.find_opt seen key with
        | Some keeper -> Hashtbl.replace redirect nd.Graph.name keeper
        | None -> Hashtbl.replace seen key nd.Graph.name
      end)
    (Graph.nodes g);
  if Hashtbl.length redirect = 0 then Ok g
  else begin
    let b = Graph.Builder.create () in
    List.iter (Graph.Builder.add_input b) (Graph.inputs g);
    Graph.Builder.import_memory b ~from:g;
    List.iter
      (fun nd ->
        if not (Hashtbl.mem redirect nd.Graph.name) then
          Graph.Builder.add_op b
            ~guards:(List.map (fun (c, a) -> (resolve c, a)) nd.Graph.guards)
            ~name:nd.Graph.name nd.Graph.kind
            (List.map resolve nd.Graph.args))
      (Graph.nodes g);
    Result.map (Graph.copy_annotations ~from:g) (Graph.Builder.build b)
  end

(* Iterate to a fixpoint: forward references can hide duplicates from a
   single pass. Each round removes at least one node, so this ends. *)
let rec eliminate g =
  match eliminate_once g with
  | Error _ as e -> e
  | Ok g' -> if Graph.num_nodes g' = Graph.num_nodes g then Ok g' else eliminate g'

let savings g =
  match eliminate g with
  | Ok g' -> Graph.num_nodes g - Graph.num_nodes g'
  | Error _ -> 0
