(** Graphviz export, for inspecting benchmark DFGs and schedules.

    Identifiers are always quoted (and quotes escaped), so graphs whose node
    names carry operator symbols or DOT keywords still emit valid DOT. *)

val of_graph :
  ?name:string -> ?fill:(string * string) list -> Graph.t -> string
(** DOT source with one node per operation (labelled [name: symbol]) and one
    edge per data dependency. Primary inputs are drawn as plain boxes.
    [fill] maps node/input names to fill colours — the [--dot-lint] overlay
    highlighting flagged nodes. *)

val of_schedule :
  ?name:string -> ?fill:(string * string) list -> Graph.t ->
  start:int array -> string
(** Same, with nodes ranked by their scheduled control step. *)
