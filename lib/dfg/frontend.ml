(* Lexer -> recursive-descent parser (precedence climbing) -> elaboration
   into Graph.Builder, with guards accumulated along conditional blocks.
   Every token carries its line/column, so rejections are typed diagnostics
   with a real source span. *)

type pos = { pl : int; pc : int }

type token =
  | Ident of string
  | Number of int
  | Sym of string  (* operators and punctuation *)
  | Kw_input
  | Kw_if
  | Kw_else

type located = { tok : token; at : pos }

exception Fail of Diag.t

let fail_at ?(code = "beh.syntax") at fmt =
  Printf.ksprintf
    (fun s ->
      raise (Fail (Diag.input ~code ~span:(Diag.point ~line:at.pl ~col:at.pc) s)))
    fmt

let fail_eof ?(code = "beh.syntax") fmt =
  Printf.ksprintf (fun s -> raise (Fail (Diag.input ~code s))) fmt

(* --- lexing ------------------------------------------------------------ *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  let pos_of k = { pl = !line; pc = k - !bol + 1 } in
  let push ~at:k tok = toks := { tok; at = pos_of k } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' || (c = '/' && !i + 1 < n && src.[!i + 1] = '/') then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do incr j done;
      push ~at:!i (Number (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      (match word with
      | "input" -> push ~at:!i Kw_input
      | "if" -> push ~at:!i Kw_if
      | "else" -> push ~at:!i Kw_else
      | _ -> push ~at:!i (Ident word));
      i := !j
    end
    else begin
      let two =
        if !i + 1 < n then String.sub src !i 2 else ""
      in
      match two with
      | "<=" | ">=" | "==" | "!=" | "<<" | ">>" ->
          push ~at:!i (Sym two);
          i := !i + 2
      | _ -> (
          match c with
          | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '<' | '>'
          | '=' | '(' | ')' | '{' | '}' | ';' | ',' ->
              push ~at:!i (Sym (String.make 1 c));
              incr i
          | _ -> fail_at (pos_of !i) "unexpected character %C" c)
    end
  done;
  List.rev !toks

(* --- parsing ------------------------------------------------------------ *)

type expr =
  | Var of string * pos
  | Const of int * pos
  | Unop of Op.kind * expr * pos
  | Binop of Op.kind * expr * expr * pos

type stmt =
  | Input of string list * pos
  | Assign of string * expr * pos
  | If of expr * stmt list * stmt list * pos

type stream = { mutable rest : located list }

let peek s = match s.rest with [] -> None | t :: _ -> Some t
let advance s = match s.rest with [] -> () | _ :: r -> s.rest <- r

let expect_sym s sym =
  match peek s with
  | Some { tok = Sym x; _ } when x = sym -> advance s
  | Some { at; _ } -> fail_at at "expected %S" sym
  | None -> fail_eof "unexpected end of input, expected %S" sym


(* Binary operator table: (symbol, kind, precedence); all left-assoc. *)
let binops =
  [ ("|", Op.Or, 1); ("^", Op.Xor, 2); ("&", Op.And, 3);
    ("<", Op.Lt, 4); ("<=", Op.Le, 4); (">", Op.Gt, 4); (">=", Op.Ge, 4);
    ("==", Op.Eq, 4); ("!=", Op.Ne, 4);
    ("<<", Op.Shl, 5); (">>", Op.Shr, 5);
    ("+", Op.Add, 6); ("-", Op.Sub, 6);
    ("*", Op.Mul, 7); ("/", Op.Div, 7); ("%", Op.Mod, 7) ]

let rec parse_primary s =
  match peek s with
  | Some { tok = Number v; at } ->
      advance s;
      Const (v, at)
  | Some { tok = Ident name; at } ->
      advance s;
      Var (name, at)
  | Some { tok = Sym "("; _ } ->
      advance s;
      let e = parse_expr s 0 in
      expect_sym s ")";
      e
  | Some { tok = Sym "-"; at } ->
      advance s;
      Unop (Op.Neg, parse_primary s, at)
  | Some { tok = Sym "~"; at } ->
      advance s;
      Unop (Op.Not, parse_primary s, at)
  | Some { at; _ } -> fail_at at "expected an expression"
  | None -> fail_eof "unexpected end of input in expression"

and parse_expr s min_prec =
  let lhs = ref (parse_primary s) in
  let continue_ = ref true in
  while !continue_ do
    match peek s with
    | Some { tok = Sym sym; at } -> (
        match List.find_opt (fun (x, _, _) -> x = sym) binops with
        | Some (_, kind, prec) when prec >= min_prec ->
            advance s;
            let rhs = parse_expr s (prec + 1) in
            lhs := Binop (kind, !lhs, rhs, at)
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

let rec parse_stmts s stop_at_brace =
  let out = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match peek s with
    | None -> continue_ := false
    | Some { tok = Sym "}"; _ } when stop_at_brace -> continue_ := false
    | Some { tok = Kw_input; at } ->
        advance s;
        let rec names acc =
          match peek s with
          | Some { tok = Ident n; _ } -> (
              advance s;
              match peek s with
              | Some { tok = Sym ","; _ } ->
                  advance s;
                  names (n :: acc)
              | _ -> List.rev (n :: acc))
          | Some { at; _ } -> fail_at at "expected an input name"
          | None -> fail_eof "unexpected end of input declaration"
        in
        let ns = names [] in
        expect_sym s ";";
        out := Input (ns, at) :: !out
    | Some { tok = Kw_if; at } ->
        advance s;
        expect_sym s "(";
        let cond = parse_expr s 0 in
        expect_sym s ")";
        expect_sym s "{";
        let then_branch = parse_stmts s true in
        expect_sym s "}";
        let else_branch =
          match peek s with
          | Some { tok = Kw_else; _ } ->
              advance s;
              expect_sym s "{";
              let b = parse_stmts s true in
              expect_sym s "}";
              b
          | _ -> []
        in
        out := If (cond, then_branch, else_branch, at) :: !out
    | Some { tok = Ident name; at } -> (
        advance s;
        match peek s with
        | Some { tok = Sym "="; _ } ->
            advance s;
            let e = parse_expr s 0 in
            expect_sym s ";";
            out := Assign (name, e, at) :: !out
        | Some { at; _ } -> fail_at at "expected '=' after %S" name
        | None -> fail_eof "unexpected end after %S" name)
    | Some { at; _ } -> fail_at at "expected a statement"
  done;
  List.rev !out

(* --- elaboration -------------------------------------------------------- *)

type env = {
  builder : Graph.Builder.t;
  mutable defined : string list;  (* inputs + assigned names + temps *)
  mutable consts : int list;
  mutable fresh : int;
}

let define env name at =
  if List.mem name env.defined then
    fail_at ~code:"beh.reassigned" at "name %S assigned twice" name
  else env.defined <- name :: env.defined

let temp env =
  let name = Printf.sprintf "_t%d" env.fresh in
  env.fresh <- env.fresh + 1;
  env.defined <- name :: env.defined;
  name

let const_name v =
  if v >= 0 then Printf.sprintf "c%d" v else Printf.sprintf "cm%d" (-v)

let ensure_const env v =
  if not (List.mem v env.consts) then begin
    env.consts <- v :: env.consts;
    Graph.Builder.add_input env.builder (const_name v);
    (* Constants have an exact value; seed the range analysis with the
       singleton so .beh programs narrow without annotations. *)
    Graph.Builder.declare_range env.builder (const_name v) (v, v);
    env.defined <- const_name v :: env.defined
  end;
  const_name v

(* Lower an expression to a value name; [name_hint] claims the top node. *)
let rec lower env guards ?name_hint e =
  match e with
  | Const (v, _) -> ensure_const env v
  | Var (name, at) ->
      if not (List.mem name env.defined) then
        fail_at ~code:"beh.undefined" at "name %S is not defined here" name
      else if name_hint = None then name
      else begin
        (* x = y; materialise as a move so the assigned name exists. *)
        let out = Option.get name_hint in
        Graph.Builder.add_op ~guards env.builder ~name:out Op.Mov [ name ];
        out
      end
  | Unop (kind, sub, _) ->
      let arg = lower env guards sub in
      let out = match name_hint with Some n -> n | None -> temp env in
      Graph.Builder.add_op ~guards env.builder ~name:out kind [ arg ];
      out
  | Binop (kind, a, b, _) ->
      let va = lower env guards a in
      let vb = lower env guards b in
      let out = match name_hint with Some n -> n | None -> temp env in
      Graph.Builder.add_op ~guards env.builder ~name:out kind [ va; vb ];
      out

let rec elaborate env guards stmts =
  List.iter
    (fun stmt ->
      match stmt with
      | Input (names, at) ->
          if guards <> [] then
            fail_at ~code:"beh.input-in-if" at
              "inputs cannot be declared inside if"
          else
            List.iter
              (fun n ->
                define env n at;
                Graph.Builder.add_input env.builder n)
              names
      | Assign (name, e, at) ->
          define env name at;
          (* [define] first so self-reference is caught as a cycle later;
             remove-then-lower keeps "not defined here" errors precise. *)
          env.defined <- List.filter (fun x -> x <> name) env.defined;
          let _ = lower env guards ~name_hint:name e in
          env.defined <- name :: env.defined
      | If (cond, then_b, else_b, _) ->
          let cond_name = lower env guards cond in
          elaborate env (guards @ [ (cond_name, true) ]) then_b;
          (* Same-named assignments in the two branches must not collide:
             suffix everything the else branch defines, including the
             branch's own references to those names. *)
          let names = assigned_names else_b in
          let rename_else = List.map (rename_stmt names "_else") else_b in
          elaborate env (guards @ [ (cond_name, false) ]) rename_else)
    stmts

and assigned_names stmts =
  List.concat_map
    (function
      | Assign (n, _, _) -> [ n ]
      | If (_, t, e, _) -> assigned_names t @ assigned_names e
      | Input _ -> [])
    stmts

and rename_expr names suffix = function
  | Var (n, at) when List.mem n names -> Var (n ^ suffix, at)
  | (Var _ | Const _) as e -> e
  | Unop (k, e, at) -> Unop (k, rename_expr names suffix e, at)
  | Binop (k, a, b, at) ->
      Binop (k, rename_expr names suffix a, rename_expr names suffix b, at)

and rename_stmt names suffix = function
  | Assign (name, e, at) ->
      Assign
        ( (if List.mem name names then name ^ suffix else name),
          rename_expr names suffix e,
          at )
  | If (c, t, e, at) ->
      If
        ( rename_expr names suffix c,
          List.map (rename_stmt names suffix) t,
          List.map (rename_stmt names suffix) e,
          at )
  | Input _ as s -> s

let compile src =
  match lex src with
  | exception Fail d -> Error d
  | toks -> (
      let s = { rest = toks } in
      match parse_stmts s false with
      | exception Fail d -> Error d
      | stmts -> (
          let env =
            { builder = Graph.Builder.create (); defined = []; consts = [];
              fresh = 0 }
          in
          match elaborate env [] stmts with
          | exception Fail d -> Error d
          | () ->
              Result.map_error
                (Diag.input ~code:"beh.invalid-graph")
                (Graph.Builder.build env.builder)))

let compile_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> Result.map_error (Diag.with_file path) (compile src)
  | exception Sys_error msg -> Error (Diag.input ~code:"io.read" msg)

let const_env g =
  List.filter_map
    (fun name ->
      let n = String.length name in
      if n >= 2 && name.[0] = 'c' && name.[1] = 'm' then
        Option.map (fun v -> (name, -v)) (int_of_string_opt (String.sub name 2 (n - 2)))
      else if n >= 2 && name.[0] = 'c' then
        Option.map (fun v -> (name, v)) (int_of_string_opt (String.sub name 1 (n - 1)))
      else None)
    (Graph.inputs g)
