type kind =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Not
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Shl
  | Shr
  | Neg
  | Mov
  | Load
  | Store

let all =
  [ Add; Sub; Mul; Div; Mod; And; Or; Xor; Not;
    Lt; Le; Gt; Ge; Eq; Ne; Shl; Shr; Neg; Mov; Load; Store ]

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Not -> "not"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"
  | Ne -> "ne"
  | Shl -> "shl"
  | Shr -> "shr"
  | Neg -> "neg"
  | Mov -> "mov"
  | Load -> "load"
  | Store -> "store"

let symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Not -> "~"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "<>"
  | Shl -> "<<"
  | Shr -> ">>"
  | Neg -> "neg"
  | Mov -> "mov"
  | Load -> "ld"
  | Store -> "st"

let of_string s =
  let rec find = function
    | [] -> None
    | k :: rest ->
        if String.equal (to_string k) s || String.equal (symbol k) s then Some k
        else find rest
  in
  find all

let arity = function
  | Not | Neg | Mov -> 1
  | Add | Sub | Mul | Div | Mod | And | Or | Xor
  | Lt | Le | Gt | Ge | Eq | Ne | Shl | Shr -> 2
  | Load -> 2 (* array, index *)
  | Store -> 3 (* array, index, data *)

let is_mem = function Load | Store -> true | _ -> false

let is_commutative = function
  | Add | Mul | And | Or | Xor | Eq | Ne -> true
  | Sub | Div | Mod | Not | Lt | Le | Gt | Ge | Shl | Shr | Neg | Mov
  | Load | Store -> false

let fu_class k = symbol k

let bool_int b = if b then 1 else 0

let eval k args =
  let binary f =
    match args with
    | [ a; b ] -> f a b
    | _ ->
        invalid_arg
          (Printf.sprintf "Op.eval: %s expects 2 operands, got %d"
             (to_string k) (List.length args))
  in
  let unary f =
    match args with
    | [ a ] -> f a
    | _ ->
        invalid_arg
          (Printf.sprintf "Op.eval: %s expects 1 operand, got %d"
             (to_string k) (List.length args))
  in
  match k with
  | Add -> binary ( + )
  | Sub -> binary ( - )
  | Mul -> binary ( * )
  | Div -> binary (fun a b -> if b = 0 then 0 else a / b)
  | Mod -> binary (fun a b -> if b = 0 then 0 else a mod b)
  | And -> binary ( land )
  | Or -> binary ( lor )
  | Xor -> binary ( lxor )
  | Not -> unary lnot
  | Lt -> binary (fun a b -> bool_int (a < b))
  | Le -> binary (fun a b -> bool_int (a <= b))
  | Gt -> binary (fun a b -> bool_int (a > b))
  | Ge -> binary (fun a b -> bool_int (a >= b))
  | Eq -> binary (fun a b -> bool_int (a = b))
  | Ne -> binary (fun a b -> bool_int (a <> b))
  | Shl -> binary (fun a b -> if b < 0 || b > 62 then 0 else a lsl b)
  | Shr -> binary (fun a b -> if b < 0 || b > 62 then 0 else a asr b)
  | Neg -> unary (fun a -> -a)
  | Mov -> unary (fun a -> a)
  | Load | Store ->
      (* Memory accesses read/update array state the pure evaluator does not
         carry; the simulators special-case them before reaching here. *)
      invalid_arg
        (Printf.sprintf "Op.eval: %s needs memory state" (to_string k))

let pp ppf k = Format.pp_print_string ppf (symbol k)
