(** ASAP/ALAP time frames, mobilities and concurrency profiles (paper §3.2
    step 1 and §5.4's chaining-aware variant).

    Control steps are 1-based, matching the paper's placement tables. An
    operation with delay [d] scheduled at step [s] occupies steps
    [s .. s+d-1]; its result is available from step [s+d] on. *)

type delays = Op.kind -> int
(** Cycle count per operation kind (>= 1). *)

val unit_delays : delays
(** Every operation takes one control step. *)

type t = {
  asap : int array;  (** Earliest start step per node id. *)
  alap : int array;  (** Latest start step per node id. *)
  cs : int;  (** The time budget the frames were computed against. *)
}

val compute : ?delays:delays -> Graph.t -> cs:int -> (t, string) result
(** Time frames within [cs] control steps. [Error] when the critical path
    exceeds [cs]. *)

val critical_path : ?delays:delays -> Graph.t -> int
(** Smallest feasible number of control steps (length of the longest
    delay-weighted path). 0 for the empty graph. *)

val mobility : t -> int -> int
(** [alap - asap] of a node — the paper's mob[Oi]. *)

val concurrency : ?delays:delays -> Graph.t -> start:int array -> cs:int ->
  (string * int) list
(** Peak number of simultaneously-active operations per FU class when every
    node [i] starts at [start.(i)]. Used to derive the default [max_j]
    resource upper bounds from the ASAP and ALAP schedules. *)

(** {1 Chaining}

    With chaining (paper §5.4), several data-dependent combinational
    operations may share one control step provided their accumulated
    propagation delay fits in the clock period [clock]. Frames then track a
    start step plus an intra-step time offset. *)

type chained = {
  ch_asap : (int * float) array;  (** (step, start offset in ns) per node. *)
  ch_alap : (int * float) array;
  ch_cs : int;
}

val compute_chained :
  ?delays:delays -> ?node_prop:(Graph.node -> float option) ->
  prop_delay:(Op.kind -> float) -> clock:float ->
  Graph.t -> cs:int -> (chained, string) result
(** Chaining-aware frames. Each 1-cycle operation must individually fit in
    the clock period; [Error] otherwise, or when the chained critical path
    exceeds [cs]. With [delays], multi-cycle operations occupy their full
    span and never chain — their edges register the value, available at
    offset 0 of the following step. [node_prop] overrides the per-kind
    propagation delay for individual nodes (width-scaled delays). *)

val chained_critical_path :
  ?delays:delays -> ?node_prop:(Graph.node -> float option) ->
  prop_delay:(Op.kind -> float) -> clock:float ->
  Graph.t -> (int, string) result
(** Minimum step count with chaining (and multi-cycle [delays]). *)
