type delays = Op.kind -> int

let unit_delays (_ : Op.kind) = 1

type t = { asap : int array; alap : int array; cs : int }

let delay_of delays nd = max 1 (delays nd.Graph.kind)

let asap_schedule ~delays g =
  let n = Graph.num_nodes g in
  let asap = Array.make n 1 in
  List.iter
    (fun i ->
      let earliest =
        List.fold_left
          (fun acc p ->
            let pd = delay_of delays (Graph.node g p) in
            max acc (asap.(p) + pd))
          1 (Graph.preds g i)
      in
      asap.(i) <- earliest)
    (Graph.topological g);
  asap

let critical_path ?(delays = unit_delays) g =
  let asap = asap_schedule ~delays g in
  let finish i =
    asap.(i) + delay_of delays (Graph.node g i) - 1
  in
  List.fold_left (fun acc i -> max acc (finish i)) 0 (Graph.topological g)

let compute ?(delays = unit_delays) g ~cs =
  if cs < 1 then Error (Printf.sprintf "time budget %d < 1" cs)
  else
    let n = Graph.num_nodes g in
    let asap = asap_schedule ~delays g in
    let alap = Array.make n 1 in
    let order = List.rev (Graph.topological g) in
    let infeasible = ref None in
    List.iter
      (fun i ->
        let d = delay_of delays (Graph.node g i) in
        let latest =
          match Graph.succs g i with
          | [] -> cs - d + 1
          | ss -> List.fold_left (fun acc s -> min acc (alap.(s) - d)) max_int ss
        in
        alap.(i) <- latest;
        if latest < asap.(i) && !infeasible = None then
          infeasible := Some (Graph.node g i).name)
      order;
    match !infeasible with
    | Some name ->
        Error
          (Printf.sprintf
             "infeasible: operation %S cannot fit in %d control steps \
              (critical path is %d)"
             name cs (critical_path ~delays g))
    | None -> Ok { asap; alap; cs }

let mobility t i = t.alap.(i) - t.asap.(i)

let concurrency ?(delays = unit_delays) g ~start ~cs =
  let classes = Graph.classes g in
  let profile = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace profile c (Array.make (cs + 1) 0)) classes;
  List.iter
    (fun nd ->
      let c = Graph.node_class g nd in
      let arr = Hashtbl.find profile c in
      let d = delay_of delays nd in
      for s = start.(nd.Graph.id) to min cs (start.(nd.Graph.id) + d - 1) do
        if s >= 1 then arr.(s) <- arr.(s) + 1
      done)
    (Graph.nodes g);
  List.map
    (fun c ->
      let arr = Hashtbl.find profile c in
      (c, Array.fold_left max 0 arr))
    classes

(* Chaining: each value carries (step, ready-offset). An op can start in the
   predecessor's step at the predecessor's finish offset when its own
   propagation delay still fits before the clock edge; otherwise it starts at
   offset 0 of the next step. *)

type chained = {
  ch_asap : (int * float) array;
  ch_alap : (int * float) array;
  ch_cs : int;
}

let eps = 1e-9

(* Per-node propagation delays: [node_prop] overrides the per-kind
   [prop_delay] (width-scaled delays from the range analysis). *)
let no_override (_ : Graph.node) : float option = None

let pd_of node_prop prop_delay nd =
  match node_prop nd with
  | Some d -> d
  | None -> prop_delay nd.Graph.kind

let check_fits ?(delays = unit_delays) ?(node_prop = no_override) ~prop_delay
    ~clock g =
  let pd = pd_of node_prop prop_delay in
  (* Multi-cycle operations span several clock periods by design; the
     single-period fit requirement applies to combinational (1-cycle)
     operations only. *)
  let offender =
    List.find_opt
      (fun nd -> delay_of delays nd = 1 && pd nd > clock +. eps)
      (Graph.nodes g)
  in
  match offender with
  | Some nd ->
      Error
        (Printf.sprintf
           "operation %S (%s) has delay %.2f ns > clock period %.2f ns"
           nd.Graph.name
           (Op.to_string nd.Graph.kind)
           (pd nd) clock)
  | None -> Ok ()

let chained_asap ?(delays = unit_delays) ?(node_prop = no_override)
    ~prop_delay ~clock g =
  let pd = pd_of node_prop prop_delay in
  let n = Graph.num_nodes g in
  let start = Array.make n (1, 0.0) in
  List.iter
    (fun i ->
      let nd = Graph.node g i in
      let d = pd nd in
      let di = delay_of delays nd in
      (* Ready time of the latest-arriving operand, as (step, offset). An
         edge chains only between two 1-cycle operations; a multi-cycle
         producer (or consumer) registers the value, making it available at
         offset 0 of the step after the producer finishes. *)
      let step, off =
        List.fold_left
          (fun (bs, bo) p ->
            let ps, po = start.(p) in
            let pnd = Graph.node g p in
            let p_delay = pd pnd in
            let pdi = delay_of delays pnd in
            let fs, fo =
              if pdi = 1 && di = 1 then (ps, po +. p_delay)
              else (ps + pdi, 0.0)
            in
            if fs > bs || (fs = bs && fo > bo) then (fs, fo) else (bs, bo))
          (1, 0.0) (Graph.preds g i)
      in
      if di = 1 && off +. d <= clock +. eps then start.(i) <- (step, off)
      else if off <= eps then start.(i) <- (step, 0.0)
      else start.(i) <- (step + 1, 0.0))
    (Graph.topological g);
  start

let chained_critical_path ?(delays = unit_delays) ?(node_prop = no_override)
    ~prop_delay ~clock g =
  match check_fits ~delays ~node_prop ~prop_delay ~clock g with
  | Error _ as e -> e
  | Ok () ->
      let start = chained_asap ~delays ~node_prop ~prop_delay ~clock g in
      let finish i (s, _) = s + delay_of delays (Graph.node g i) - 1 in
      let cp = ref 0 in
      Array.iteri (fun i pos -> cp := max !cp (finish i pos)) start;
      Ok !cp

let compute_chained ?(delays = unit_delays) ?(node_prop = no_override)
    ~prop_delay ~clock g ~cs =
  match check_fits ~delays ~node_prop ~prop_delay ~clock g with
  | Error _ as e -> e
  | Ok () ->
      let pd = pd_of node_prop prop_delay in
      let n = Graph.num_nodes g in
      let ch_asap = chained_asap ~delays ~node_prop ~prop_delay ~clock g in
      (* Backward pass: latest (step, start offset) such that every successor
         still meets its own latest start. *)
      let ch_alap = Array.make n (cs, 0.0) in
      let infeasible = ref None in
      List.iter
        (fun i ->
          let nd = Graph.node g i in
          let d = pd nd in
          let di = delay_of delays nd in
          let latest =
            match Graph.succs g i with
            | [] ->
                (cs - di + 1, if di = 1 then clock -. d else 0.0)
            | ss ->
                List.fold_left
                  (fun (bs, bo) s ->
                    let ls, lo = ch_alap.(s) in
                    let ds = delay_of delays (Graph.node g s) in
                    (* Finish no later than the successor's latest start:
                       chain within the successor's step (1-cycle pair
                       only), or complete by the end of the step before the
                       successor starts — [di] steps earlier for a
                       multi-cycle producer. *)
                    let cand =
                      if di = 1 && ds = 1 then begin
                        let cand_chain = (ls, lo -. d) in
                        let cand_prev = (ls - 1, clock -. d) in
                        if snd cand_chain >= -.eps then cand_chain
                        else cand_prev
                      end
                      else if di = 1 then (ls - 1, clock -. d)
                      else (ls - di, 0.0)
                    in
                    if fst cand < bs || (fst cand = bs && snd cand < bo) then
                      cand
                    else (bs, bo))
                  (max_int, infinity) ss
          in
          ch_alap.(i) <- latest;
          let as_, ao = ch_asap.(i) in
          let ls, lo = latest in
          if (ls < as_ || (ls = as_ && lo < ao -. eps)) && !infeasible = None
          then infeasible := Some nd.Graph.name)
        (List.rev (Graph.topological g));
      (match !infeasible with
      | Some name ->
          Error
            (Printf.sprintf
               "infeasible under chaining: operation %S cannot fit in %d steps"
               name cs)
      | None -> Ok { ch_asap; ch_alap; ch_cs = cs })
