(** Behavioural front end: compiles a small imperative description into a
    DFG (high-level synthesis starts from behaviour, §1).

    Language:
    {v
    input x, y, u, dx, a;
    m  = 3 * x * u;            # expressions with C-like precedence
    y1 = y + u * dx;
    ok = y1 < a;
    if (ok) {
      z = y1 + m;              # guarded by ok = true
    } else {
      z = y1 - m;              # guarded by ok = false; merged name z_else
    }
    v}

    - Statements end with [;]; [#] and [//] start comments.
    - Operators (loosest to tightest): [|], [^], [&], comparisons
      ([< <= > >= == !=]), shifts ([<< >>]), [+ -], [* / %], unary [- ~].
    - Integer literals become implicit constant inputs named [c<value>]
      (e.g. [3] reads input [c3]); the environment returned by
      {!const_env} binds them for simulation.
    - [if (cond) { ... } else { ... }] guards the assignments of each block
      with the condition value; nested conditionals accumulate guards. A
      name assigned in both branches yields two nodes — the then-branch
      keeps the name, the else-branch gets the suffix [_else] — which
      {!Dfg.Mutex.merge_shared} can later reconcile when the computations
      coincide.
    - Reassigning a name is an error (single-assignment form), as is
      reading an undefined name.

    Compound expressions introduce temporaries named [_t0], [_t1], ... *)

val compile : string -> (Graph.t, Diag.t) result
(** Compile a behavioural source text. Diagnostics carry a line/column
    span. *)

val compile_file : string -> (Graph.t, Diag.t) result
(** Like {!compile}; diagnostics carry the file name, and an unreadable
    file is an [io.read] input diagnostic. *)

val const_env : Graph.t -> (string * int) list
(** Bindings for the implicit constant inputs ([("c3", 3)], ...) — prepend
    to simulation environments. *)
