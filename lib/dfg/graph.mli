(** Data-flow graphs (DFGs).

    A DFG is a DAG of operations. Each operation produces exactly one value,
    named after the node; operands refer to primary inputs or to other nodes
    by name. Nodes may carry {e guards} — (condition-signal, arm) pairs — so
    that operations on different branches of a conditional can be recognised
    as mutually exclusive (paper §5.1).

    Graphs are immutable once built; construction goes through {!Builder},
    which validates names, arities, guard references and acyclicity. *)

type node = {
  id : int;  (** Dense index in [0 .. num_nodes-1], topological-friendly. *)
  name : string;  (** Unique node name; also the name of the produced value. *)
  kind : Op.kind;
  args : string list;  (** Operand value names (primary inputs or node names). *)
  guards : (string * bool) list;
      (** Conditional context: [(c, arm)] means the op executes only when
          condition value [c] is non-zero iff [arm]. *)
}

type array_decl = {
  a_name : string;  (** Array name; shares the value namespace. *)
  a_size : int;  (** Number of words, indexed [0 .. a_size-1]. *)
  a_bank : string;  (** Memory bank holding the array (default: own name). *)
}

type bank_decl = {
  b_name : string;
  b_ports : int;  (** Simultaneous accesses the bank serves per step. *)
}

type t

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_input : t -> string -> unit
  (** Declare a primary input value. Duplicate declarations are idempotent. *)

  val add_op :
    ?guards:(string * bool) list -> t -> name:string -> Op.kind ->
    string list -> unit
  (** Add an operation producing value [name]. Operand references may be
      forward: resolution happens in {!build}. *)

  val declare_range : t -> string -> int * int -> unit
  (** Declare that value [name] always lies in [[lo, hi]]. On a primary
      input this is an assumption seeding the range analysis; on a node it
      is redundant documentation (inference is authoritative). Later
      declarations for the same name replace earlier ones. *)

  val declare_width : t -> string -> int -> unit
  (** Declare a signed two's-complement bit width for a value. On an input
      it seeds the range [[-2^(w-1), 2^(w-1)-1]]; on a node it is a
      narrowing contract checked for provable overflow by
      [Analysis.Ranges]. *)

  val declare_array : ?bank:string -> t -> name:string -> size:int -> unit
  (** Declare an array of [size] words living in [bank] (default: a
      private bank named after the array). Array names share the value
      namespace but may only appear as the first operand of a memory
      access. Accesses to one array gain address-dependence edges in
      program order: load-after-store, store-after-store and
      store-after-load; loads between two stores stay unordered. *)

  val declare_bank : t -> name:string -> ports:int -> unit
  (** Declare a memory bank with [ports] access ports. Banks referenced
      by an array but never declared default to one port. *)

  val import_memory : t -> from:graph -> unit
  (** Re-declare every array and bank of [from] into the builder. Graph
      rewriters (CSE, mutex encoding) use this so memory declarations
      survive a rebuild. *)

  val build : t -> (graph, string) result
  (** Validate and freeze: unique names, known operand/guard references,
      arity match, acyclicity, and guard scoping — a value is defined
      exactly when its guards hold, so a producer's guards must be a subset
      of every consumer's (no cross-branch reads). Errors carry a
      human-readable reason. *)
end

val of_ops :
  inputs:string list ->
  (string * Op.kind * string list * (string * bool) list) list ->
  (t, string) result
(** Convenience one-shot constructor: [(name, kind, args, guards)] rows. *)

val num_nodes : t -> int

val node : t -> int -> node
(** @raise Invalid_argument on an out-of-range id. *)

val nodes : t -> node list
(** All nodes in id order. *)

val find : t -> string -> node option
(** Look a node up by name. *)

val inputs : t -> string list
(** Declared primary inputs, in declaration order. *)

val ranges : t -> (string * (int * int)) list
(** Declared value ranges, in declaration order (see
    {!Builder.declare_range}). *)

val declared_widths : t -> (string * int) list
(** Declared bit widths, in declaration order (see
    {!Builder.declare_width}). *)

val range_of : t -> string -> (int * int) option
val declared_width : t -> string -> int option

val arrays : t -> array_decl list
(** Declared arrays, in declaration order. *)

val banks : t -> bank_decl list
(** Explicitly declared banks, in declaration order. *)

val array_of : t -> string -> array_decl option
(** Look an array up by name. *)

val bank_names : t -> string list
(** Every bank name in use — declared or implied by an array — sorted. *)

val bank_ports : t -> string -> int
(** Declared port count of a bank; 1 when the bank was never declared. *)

val mem_class : string -> string
(** Resource-class name of a bank's ports, ["mem:BANK"]. Memory accesses
    compete for these pseudo-FU classes instead of ALU classes. *)

val is_mem_class : string -> bool
(** Whether a resource-class name denotes bank ports ({!mem_class}). *)

val bank_of_class : string -> string
(** Inverse of {!mem_class}; identity on non-memory class names. *)

val node_bank : t -> node -> string option
(** The bank a memory access occupies, [None] for compute nodes. *)

val node_class : t -> node -> string
(** Resource class of a node: {!Op.fu_class} for compute nodes,
    {!mem_class} of the accessed array's bank for loads and stores. *)

val copy_annotations : from:t -> t -> t
(** Carry range/width declarations from [from] onto a rewritten graph,
    dropping entries whose value no longer exists and keeping any
    declarations already present on the target. Used by graph rewriters
    (CSE, loop expansion, mutex encoding) so annotations survive. *)

val preds : t -> int -> int list
(** Data predecessors: nodes whose value this node consumes as an operand
    {e or} as a guard condition (the controller must know the condition
    before it can enable the operation). *)

val succs : t -> int -> int list
(** Data successors. *)

val topological : t -> int list
(** A topological order of node ids (predecessors first). *)

val sinks : t -> int list
(** Nodes without successors — the DFG outputs. *)

val count_by_class : t -> (string * int) list
(** Number of operations per single-function FU class ({!Op.fu_class}),
    ordered by first appearance. *)

val classes : t -> string list
(** FU classes present, ordered by first appearance. *)

val mutually_exclusive : t -> int -> int -> bool
(** [mutually_exclusive g i j] holds when the guard sets of [i] and [j]
    disagree on some condition: the two operations can never execute in the
    same run, hence may share an FU instance and a control step. *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing, one node per line. *)
