(** Data-flow graphs (DFGs).

    A DFG is a DAG of operations. Each operation produces exactly one value,
    named after the node; operands refer to primary inputs or to other nodes
    by name. Nodes may carry {e guards} — (condition-signal, arm) pairs — so
    that operations on different branches of a conditional can be recognised
    as mutually exclusive (paper §5.1).

    Graphs are immutable once built; construction goes through {!Builder},
    which validates names, arities, guard references and acyclicity. *)

type node = {
  id : int;  (** Dense index in [0 .. num_nodes-1], topological-friendly. *)
  name : string;  (** Unique node name; also the name of the produced value. *)
  kind : Op.kind;
  args : string list;  (** Operand value names (primary inputs or node names). *)
  guards : (string * bool) list;
      (** Conditional context: [(c, arm)] means the op executes only when
          condition value [c] is non-zero iff [arm]. *)
}

type t

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_input : t -> string -> unit
  (** Declare a primary input value. Duplicate declarations are idempotent. *)

  val add_op :
    ?guards:(string * bool) list -> t -> name:string -> Op.kind ->
    string list -> unit
  (** Add an operation producing value [name]. Operand references may be
      forward: resolution happens in {!build}. *)

  val declare_range : t -> string -> int * int -> unit
  (** Declare that value [name] always lies in [[lo, hi]]. On a primary
      input this is an assumption seeding the range analysis; on a node it
      is redundant documentation (inference is authoritative). Later
      declarations for the same name replace earlier ones. *)

  val declare_width : t -> string -> int -> unit
  (** Declare a signed two's-complement bit width for a value. On an input
      it seeds the range [[-2^(w-1), 2^(w-1)-1]]; on a node it is a
      narrowing contract checked for provable overflow by
      [Analysis.Ranges]. *)

  val build : t -> (graph, string) result
  (** Validate and freeze: unique names, known operand/guard references,
      arity match, acyclicity, and guard scoping — a value is defined
      exactly when its guards hold, so a producer's guards must be a subset
      of every consumer's (no cross-branch reads). Errors carry a
      human-readable reason. *)
end

val of_ops :
  inputs:string list ->
  (string * Op.kind * string list * (string * bool) list) list ->
  (t, string) result
(** Convenience one-shot constructor: [(name, kind, args, guards)] rows. *)

val num_nodes : t -> int

val node : t -> int -> node
(** @raise Invalid_argument on an out-of-range id. *)

val nodes : t -> node list
(** All nodes in id order. *)

val find : t -> string -> node option
(** Look a node up by name. *)

val inputs : t -> string list
(** Declared primary inputs, in declaration order. *)

val ranges : t -> (string * (int * int)) list
(** Declared value ranges, in declaration order (see
    {!Builder.declare_range}). *)

val declared_widths : t -> (string * int) list
(** Declared bit widths, in declaration order (see
    {!Builder.declare_width}). *)

val range_of : t -> string -> (int * int) option
val declared_width : t -> string -> int option

val copy_annotations : from:t -> t -> t
(** Carry range/width declarations from [from] onto a rewritten graph,
    dropping entries whose value no longer exists and keeping any
    declarations already present on the target. Used by graph rewriters
    (CSE, loop expansion, mutex encoding) so annotations survive. *)

val preds : t -> int -> int list
(** Data predecessors: nodes whose value this node consumes as an operand
    {e or} as a guard condition (the controller must know the condition
    before it can enable the operation). *)

val succs : t -> int -> int list
(** Data successors. *)

val topological : t -> int list
(** A topological order of node ids (predecessors first). *)

val sinks : t -> int list
(** Nodes without successors — the DFG outputs. *)

val count_by_class : t -> (string * int) list
(** Number of operations per single-function FU class ({!Op.fu_class}),
    ordered by first appearance. *)

val classes : t -> string list
(** FU classes present, ordered by first appearance. *)

val mutually_exclusive : t -> int -> int -> bool
(** [mutually_exclusive g i j] holds when the guard sets of [i] and [j]
    disagree on some condition: the two operations can never execute in the
    same run, hence may share an FU instance and a control step. *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing, one node per line. *)
