let frame_probability bounds ~fixed i =
  match fixed.(i) with
  | Some s -> fun t -> if t = s then 1.0 else 0.0
  | None ->
      let lo = bounds.Dfg.Bounds.asap.(i) and hi = bounds.Dfg.Bounds.alap.(i) in
      let w = 1.0 /. float_of_int (hi - lo + 1) in
      fun t -> if t >= lo && t <= hi then w else 0.0

let distribution_internal cfg g bounds ~fixed klass =
  let cs = bounds.Dfg.Bounds.cs in
  let dg = Array.make (cs + 2) 0.0 in
  List.iter
    (fun nd ->
      let i = nd.Dfg.Graph.id in
      if String.equal (Dfg.Graph.node_class g nd) klass then begin
        let p = frame_probability bounds ~fixed i in
        let d = Core.Config.span cfg nd.Dfg.Graph.kind in
        (* A d-cycle operation starting at t loads steps t .. t+d-1. *)
        for t = 1 to cs do
          let pt = p t in
          if pt > 0.0 then
            for k = 0 to d - 1 do
              if t + k <= cs then dg.(t + k) <- dg.(t + k) +. pt
            done
        done
      end)
    (Dfg.Graph.nodes g);
  dg

let distribution cfg g bounds klass =
  let fixed = Array.make (Dfg.Graph.num_nodes g) None in
  Array.sub (distribution_internal cfg g bounds ~fixed klass) 0
    (bounds.Dfg.Bounds.cs + 1)

(* Recompute frames honouring fixed assignments, by temporarily treating a
   fixed op as having asap = alap = its step. *)
let refreshed_bounds cfg g ~cs ~fixed =
  let delay i = Core.Config.delay cfg (Dfg.Graph.node g i).Dfg.Graph.kind in
  let n = Dfg.Graph.num_nodes g in
  let asap = Array.make n 1 and alap = Array.make n cs in
  let ok = ref true in
  List.iter
    (fun i ->
      let lo =
        List.fold_left
          (fun acc p -> max acc (asap.(p) + delay p))
          1 (Dfg.Graph.preds g i)
      in
      asap.(i) <- (match fixed.(i) with Some s -> s | None -> lo);
      if asap.(i) < lo then ok := false)
    (Dfg.Graph.topological g);
  List.iter
    (fun i ->
      let hi =
        match Dfg.Graph.succs g i with
        | [] -> cs - delay i + 1
        | ss ->
            List.fold_left (fun acc s -> min acc (alap.(s) - delay i)) max_int ss
      in
      alap.(i) <- (match fixed.(i) with Some s -> s | None -> hi);
      if alap.(i) > hi || alap.(i) < asap.(i) then ok := false)
    (List.rev (Dfg.Graph.topological g));
  if !ok then Some { Dfg.Bounds.asap; alap; cs } else None

let self_force cfg g bounds ~fixed i s =
  let klass = Dfg.Graph.node_class g (Dfg.Graph.node g i) in
  let dg = distribution_internal cfg g bounds ~fixed klass in
  let p = frame_probability bounds ~fixed i in
  let d = Core.Config.span cfg (Dfg.Graph.node g i).Dfg.Graph.kind in
  let cs = bounds.Dfg.Bounds.cs in
  let force = ref 0.0 in
  for t = 1 to cs do
    let delta =
      (if t >= s && t <= s + d - 1 then 1.0 else 0.0)
      -. (let rec load k acc =
            if k >= d then acc
            else load (k + 1) (acc +. if t - k >= 1 then p (t - k) else 0.0)
          in
          load 0 0.0)
    in
    if delta <> 0.0 then force := !force +. (dg.(t) *. delta)
  done;
  !force

let run ?(config = Core.Config.default) g ~cs =
  if Dfg.Graph.num_nodes g = 0 then Error "FDS: empty graph"
  else
    match Core.Timeframe.bounds config g ~cs with
    | Error _ as e -> e
    | Ok bounds0 ->
        let n = Dfg.Graph.num_nodes g in
        let fixed = Array.make n None in
        let bounds = ref bounds0 in
        let remaining = ref n in
        let failed = ref None in
        while !remaining > 0 && !failed = None do
          (* Lowest total force over every unscheduled op and frame step. *)
          let best = ref None in
          for i = 0 to n - 1 do
            if fixed.(i) = None then
              for s = !bounds.Dfg.Bounds.asap.(i)
                  to !bounds.Dfg.Bounds.alap.(i) do
                (* Self force against the current distribution graphs, then a
                   tentative fix to score the frame pressure induced on
                   direct neighbours. *)
                let f = self_force config g !bounds ~fixed i s in
                fixed.(i) <- Some s;
                (match refreshed_bounds config g ~cs ~fixed with
                | None -> ()
                | Some b' ->
                    let neighbor_force =
                      List.fold_left
                        (fun acc j ->
                          let shrink =
                            float_of_int
                              ((!bounds).Dfg.Bounds.alap.(j)
                              - (!bounds).Dfg.Bounds.asap.(j)
                              - (b'.Dfg.Bounds.alap.(j) - b'.Dfg.Bounds.asap.(j)))
                          in
                          acc +. (0.1 *. shrink))
                        0.0
                        (Dfg.Graph.preds g i @ Dfg.Graph.succs g i)
                    in
                    let total = f +. neighbor_force in
                    match !best with
                    | Some (bf, _, _) when bf <= total -> ()
                    | _ -> best := Some (total, i, s));
                fixed.(i) <- None
              done
          done;
          match !best with
          | None -> failed := Some "FDS: no feasible assignment found"
          | Some (_, i, s) -> (
              fixed.(i) <- Some s;
              decr remaining;
              match refreshed_bounds config g ~cs ~fixed with
              | Some b -> bounds := b
              | None -> failed := Some "FDS: frames collapsed (internal)")
        done;
        (match !failed with
        | Some e -> Error e
        | None ->
            let start = Array.map (fun f -> Option.get f) fixed in
            let col = Colbind.columns config g ~start in
            Ok (Core.Schedule.make ~col ~config ~cs g start))
