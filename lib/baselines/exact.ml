type outcome = {
  schedule : Core.Schedule.t;
  optimum : float;
  explored : int;
  proven : bool;
}

exception Budget_exhausted

(* Branch and bound over start-step assignments in topological order.

   The partial cost is the units already implied by the placed prefix:
   sum over classes of (weight * peak concurrency so far). Since adding
   operations can only raise peaks, the partial cost is a valid lower bound
   and dominated branches are cut. A second bound adds, per class, the
   floor ceil(remaining_c / cs) for classes not yet provisioned. *)
let run ?(config = Core.Config.default) ?(unit_weight = fun _ -> 1.)
    ?(node_budget = 5_000_000) g ~cs =
  if Dfg.Graph.num_nodes g = 0 then Error "exact: empty graph"
  else
    match Core.Timeframe.bounds config g ~cs with
    | Error _ as e -> e
    | Ok bounds ->
        let n = Dfg.Graph.num_nodes g in
        let klass i = Dfg.Graph.node_class g (Dfg.Graph.node g i) in
        let delay i =
          Core.Config.delay config (Dfg.Graph.node g i).Dfg.Graph.kind
        in
        let span i = Core.Config.span config (Dfg.Graph.node g i).Dfg.Graph.kind in
        let classes = Dfg.Graph.classes g in
        let class_index = Hashtbl.create 8 in
        List.iteri (fun idx c -> Hashtbl.replace class_index c idx) classes;
        let nclasses = List.length classes in
        (* usage.(c * (cs+2) + t): ops of class c active in step t. *)
        let usage = Array.make (nclasses * (cs + 2)) 0 in
        let peaks = Array.make nclasses 0 in
        let remaining = Array.make nclasses 0 in
        List.iter
          (fun nd ->
            let c = Hashtbl.find class_index (klass nd.Dfg.Graph.id) in
            remaining.(c) <- remaining.(c) + 1)
          (Dfg.Graph.nodes g);
        let weight_arr =
          Array.of_list (List.map unit_weight classes)
        in
        let order = Dfg.Graph.topological g in
        let start = Array.make n 0 in
        let best_cost = ref infinity in
        let best_start = ref None in
        let explored = ref 0 in
        let partial_cost () =
          let acc = ref 0. in
          Array.iteri
            (fun c p ->
              let floor_c =
                if remaining.(c) = 0 then 0
                else (remaining.(c) + cs - 1) / cs
              in
              acc := !acc +. (weight_arr.(c) *. float_of_int (max p floor_c)))
            peaks;
          !acc
        in
        let rec branch = function
          | [] ->
              let cost = partial_cost () in
              if cost < !best_cost then begin
                best_cost := cost;
                best_start := Some (Array.copy start)
              end
          | i :: rest ->
              incr explored;
              if !explored > node_budget then raise Budget_exhausted;
              let c = Hashtbl.find class_index (klass i) in
              let lo =
                List.fold_left
                  (fun acc p -> max acc (start.(p) + delay p))
                  bounds.Dfg.Bounds.asap.(i) (Dfg.Graph.preds g i)
              in
              remaining.(c) <- remaining.(c) - 1;
              for s = lo to bounds.Dfg.Bounds.alap.(i) do
                (* Place: bump usage over the span, track the peak. *)
                let saved_peak = peaks.(c) in
                for t = s to s + span i - 1 do
                  let cell = (c * (cs + 2)) + t in
                  usage.(cell) <- usage.(cell) + 1;
                  if usage.(cell) > peaks.(c) then peaks.(c) <- usage.(cell)
                done;
                start.(i) <- s;
                if partial_cost () < !best_cost then branch rest;
                for t = s to s + span i - 1 do
                  let cell = (c * (cs + 2)) + t in
                  usage.(cell) <- usage.(cell) - 1
                done;
                peaks.(c) <- saved_peak
              done;
              remaining.(c) <- remaining.(c) + 1
        in
        let proven =
          match branch order with
          | () -> true
          | exception Budget_exhausted -> false
        in
        (match !best_start with
        | None ->
            Error
              (if !explored > node_budget then
                 "exact: node budget exhausted before any solution"
               else "exact: no feasible schedule (internal)")
        | Some s ->
            let col = Colbind.columns config g ~start:s in
            Ok
              {
                schedule = Core.Schedule.make ~col ~config ~cs g s;
                optimum = !best_cost;
                explored = !explored;
                proven;
              })

let min_units ?config g ~cs =
  match run ?config g ~cs with
  | Error _ as e -> e
  | Ok o when o.proven -> Ok (int_of_float (o.optimum +. 0.5))
  | Ok _ -> Error "exact: node budget exhausted before proving optimality"
