let columns cfg g ~start =
  let n = Dfg.Graph.num_nodes g in
  let col = Array.make n 0 in
  let latency = cfg.Core.Config.functional_latency in
  let exclusive i j =
    cfg.Core.Config.share_mutex && Dfg.Graph.mutually_exclusive g i j
  in
  let span i = Core.Config.span cfg (Dfg.Graph.node g i).Dfg.Graph.kind in
  let overlap i j =
    Core.Grid.steps_overlap ~latency start.(i) (span i) start.(j) (span j)
  in
  List.iter
    (fun c ->
      let members =
        List.filter
          (fun nd -> String.equal (Dfg.Graph.node_class g nd) c)
          (Dfg.Graph.nodes g)
        |> List.map (fun nd -> nd.Dfg.Graph.id)
        |> List.sort (fun i j ->
               let cmp = compare start.(i) start.(j) in
               if cmp <> 0 then cmp else compare i j)
      in
      (* columns.(k) = ops already packed on column k+1 *)
      let packed = ref [] in
      List.iter
        (fun i ->
          let rec place k = function
            | [] ->
                packed := !packed @ [ [ i ] ];
                col.(i) <- k + 1
            | occupants :: rest ->
                if
                  List.for_all
                    (fun j -> exclusive i j || not (overlap i j))
                    occupants
                then begin
                  packed :=
                    List.mapi
                      (fun k' o -> if k' = k then i :: o else o)
                      !packed;
                  col.(i) <- k + 1
                end
                else place (k + 1) rest
          in
          place 0 !packed)
        members)
    (Dfg.Graph.classes g);
  col
