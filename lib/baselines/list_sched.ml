let priority cfg g =
  let n = Dfg.Graph.num_nodes g in
  let memo = Array.make n (-1) in
  let delay i = Core.Config.delay cfg (Dfg.Graph.node g i).Dfg.Graph.kind in
  List.iter
    (fun i ->
      let below =
        List.fold_left (fun acc s -> max acc memo.(s)) 0 (Dfg.Graph.succs g i)
      in
      memo.(i) <- delay i + below)
    (List.rev (Dfg.Graph.topological g));
  fun i -> memo.(i)

(* One resource-constrained pass; returns the start array. *)
let run_rc cfg g ~units =
  let n = Dfg.Graph.num_nodes g in
  let prio = priority cfg g in
  let delay i = Core.Config.delay cfg (Dfg.Graph.node g i).Dfg.Graph.kind in
  let span i = Core.Config.span cfg (Dfg.Graph.node g i).Dfg.Graph.kind in
  let klass i = Dfg.Graph.node_class g (Dfg.Graph.node g i) in
  let start = Array.make n 0 in
  let unplaced = ref (Dfg.Graph.num_nodes g) in
  (* busy.(c) tracks (op, until_step) pairs per class (span occupancy). *)
  let busy = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace busy c []) (Dfg.Graph.classes g);
  let step = ref 0 in
  while !unplaced > 0 do
    incr step;
    let s = !step in
    (* Free units whose occupation ended. *)
    List.iter
      (fun c ->
        Hashtbl.replace busy c
          (List.filter (fun (_, until) -> until >= s) (Hashtbl.find busy c)))
      (Dfg.Graph.classes g);
    let ready =
      List.filter
        (fun nd ->
          let i = nd.Dfg.Graph.id in
          start.(i) = 0
          && List.for_all
               (fun p -> start.(p) > 0 && start.(p) + delay p <= s)
               (Dfg.Graph.preds g i))
        (Dfg.Graph.nodes g)
      |> List.map (fun nd -> nd.Dfg.Graph.id)
      |> List.sort (fun i j ->
             let c = compare (prio j) (prio i) in
             if c <> 0 then c else compare i j)
    in
    List.iter
      (fun i ->
        let c = klass i in
        let in_use = Hashtbl.find busy c in
        let cap = Option.value ~default:1 (List.assoc_opt c units) in
        if List.length in_use < cap then begin
          start.(i) <- s;
          decr unplaced;
          Hashtbl.replace busy c ((i, s + span i - 1) :: in_use)
        end)
      ready
  done;
  start

let finish_schedule cfg g start =
  let cs =
    List.fold_left
      (fun acc nd ->
        max acc
          (start.(nd.Dfg.Graph.id)
          + Core.Config.delay cfg nd.Dfg.Graph.kind
          - 1))
      1 (Dfg.Graph.nodes g)
  in
  let col = Colbind.columns cfg g ~start in
  Core.Schedule.make ~col ~config:cfg ~cs g start

let resource ?(config = Core.Config.default) g ~limits =
  if Dfg.Graph.num_nodes g = 0 then Error "list scheduling: empty graph"
  else begin
    let bad =
      List.find_opt (fun (_, u) -> u < 1) limits
    in
    match bad with
    | Some (c, u) ->
        Error (Printf.sprintf "list scheduling: %d units of %s" u c)
    | None ->
        let start = run_rc config g ~units:limits in
        Ok (finish_schedule config g start)
  end

let time ?(config = Core.Config.default) g ~cs =
  if Dfg.Graph.num_nodes g = 0 then Error "list scheduling: empty graph"
  else
    match Core.Timeframe.bounds config g ~cs with
    | Error _ as e -> e
    | Ok bounds ->
        let classes = Dfg.Graph.classes g in
        let units = Hashtbl.create 8 in
        List.iter
          (fun (c, n_c) ->
            Hashtbl.replace units c (max 1 ((n_c + cs - 1) / cs)))
          (Dfg.Graph.count_by_class g);
        (* Deferment loop: raise the limit of the class that misses its
           deadline; each round adds one unit somewhere, so it ends. *)
        let rec refine budget =
          let limit_list =
            List.map (fun c -> (c, Hashtbl.find units c)) classes
          in
          let start = run_rc config g ~units:limit_list in
          let offender =
            List.find_opt
              (fun nd ->
                start.(nd.Dfg.Graph.id) > bounds.Dfg.Bounds.alap.(nd.Dfg.Graph.id))
              (Dfg.Graph.nodes g)
          in
          match offender with
          | None -> Ok (finish_schedule config g start)
          | Some nd ->
              if budget <= 0 then
                Error "list scheduling: deferment budget exhausted"
              else begin
                let c = Dfg.Graph.node_class g nd in
                Hashtbl.replace units c (Hashtbl.find units c + 1);
                refine (budget - 1)
              end
        in
        refine (Dfg.Graph.num_nodes g + 8)
