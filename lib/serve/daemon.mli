(** The crash-safe synthesis daemon behind [synth serve].

    One single-threaded [select] loop owns everything: the Unix-domain
    listener (plus an optional localhost TCP listener), every client
    connection, and the {!Batch.Pool}'s worker pipes. Requests arrive as
    length-prefixed JSON frames ({!Frame}, {!Protocol}); synthesis work
    runs in forked pool workers under the pool's wall-clock SIGKILL and
    heap-ceiling watchdogs, so a hanging or crashing job burns one
    worker slot for one deadline — never the daemon.

    Robustness posture, in one paragraph: admission is bounded (the
    {!Admission} queue is the only queue — arrivals beyond it are shed
    with [serve.overloaded] plus a retry-after hint); identical in-flight
    requests coalesce on their content key and are answered together;
    reads are guarded by a max-frame check and a mid-frame timeout
    (slowloris); writes are EPIPE-safe and buffered per connection; and
    the design is {e crash-only} — both durable artifacts (the shared
    {!Explore.Cache} JSONL store and the request {!Batch.Journal}) are
    fsynced per line, so recovery from [kill -9] is just a restart: the
    cache reloads warm and repeated requests answer without re-running.
    A store that fails to parse at startup is moved aside to
    [PATH.corrupt] and the daemon starts cold rather than refusing to
    start. SIGTERM/SIGINT begin a graceful drain: listeners close,
    queued and in-flight work finishes (bounded by [drain_timeout], then
    SIGKILL), every waiter gets a response, buffers flush, exit 0. *)

type config = {
  socket : string;  (** Unix-domain socket path; stale files are replaced. *)
  tcp_port : int option;  (** Extra listener on 127.0.0.1:port. *)
  workers : int;  (** Pool slots — the concurrency ceiling. *)
  deadline : float;
      (** Per-request wall-clock ceiling, seconds. A request's own
          [deadline] field may only lower it. *)
  heap_words : int option;  (** Worker heap ceiling ({!Batch.Pool}). *)
  queue_limit : int;  (** Admission queue bound; beyond it, shed. *)
  max_conns : int;
      (** Connection ceiling; excess connects get one [serve.overloaded]
          frame and an immediate close. *)
  max_frame : int;  (** Wire frame / JSON document byte ceiling. *)
  read_timeout : float;
      (** Seconds a partial frame may sit without progress before the
          connection is dropped. *)
  drain_timeout : float;
      (** Seconds a drain waits for in-flight work before SIGKILL. *)
  cache_path : string option;  (** Shared result cache (JSONL). *)
  cache_max : int option;  (** Resident-entry cap ({!Explore.Cache}). *)
  journal_path : string option;  (** Request journal (JSONL). *)
  log : string -> unit;
}

val default : socket:string -> config
(** 4 workers, 30s deadline, queue 64, 128 conns, 1 MiB frames, 10s read
    timeout, 5s drain, no TCP, no stores, silent log. *)

val run : ?ready:(unit -> unit) -> config -> (unit, Diag.t) result
(** Serve until SIGTERM/SIGINT, then drain and return [Ok ()] (the CLI
    exits 0). [ready] fires once after the listeners are bound. Errors
    are reserved for startup problems (unbindable socket); per-request
    failures are responses, not exits. *)
