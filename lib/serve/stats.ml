module Jsonl = Batch.Jsonl

type t = {
  started : float;
  by_op : (string, int) Hashtbl.t;
  mutable done_ : int;
  mutable rejected : int;
  mutable timeout : int;
  mutable oom : int;
  mutable crashed : int;
  mutable ok : int;
  mutable error : int;
  mutable lib_hits : int;
  mutable lib_misses : int;
}

let create () =
  {
    started = Unix.gettimeofday ();
    by_op = Hashtbl.create 8;
    done_ = 0;
    rejected = 0;
    timeout = 0;
    oom = 0;
    crashed = 0;
    ok = 0;
    error = 0;
    lib_hits = 0;
    lib_misses = 0;
  }

let note_request t op =
  Hashtbl.replace t.by_op op
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_op op))

let note_verdict t = function
  | Batch.Verdict.Done _ -> t.done_ <- t.done_ + 1
  | Batch.Verdict.Rejected _ -> t.rejected <- t.rejected + 1
  | Batch.Verdict.Timeout -> t.timeout <- t.timeout + 1
  | Batch.Verdict.Oom -> t.oom <- t.oom + 1
  | Batch.Verdict.Crashed _ -> t.crashed <- t.crashed + 1

let note_ok t = t.ok <- t.ok + 1
let note_error t = t.error <- t.error + 1
let note_lib_hit t = t.lib_hits <- t.lib_hits + 1
let note_lib_miss t = t.lib_misses <- t.lib_misses + 1

let to_json t ~queue_depth ~in_flight ~connections ~shed ~workers ~cache
    ~lib_entries =
  let ops =
    Hashtbl.fold (fun op n acc -> (op, Jsonl.Int n) :: acc) t.by_op []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let c = cache in
  let lookups = c.Explore.Cache.hits + c.Explore.Cache.misses in
  let hit_rate =
    if lookups = 0 then 0.
    else float_of_int c.Explore.Cache.hits /. float_of_int lookups
  in
  Jsonl.Obj
    [
      ("uptime", Jsonl.Float (Unix.gettimeofday () -. t.started));
      ("requests", Jsonl.Obj ops);
      ( "verdicts",
        Jsonl.Obj
          [
            ("done", Jsonl.Int t.done_);
            ("rejected", Jsonl.Int t.rejected);
            ("timeout", Jsonl.Int t.timeout);
            ("oom", Jsonl.Int t.oom);
            ("crashed", Jsonl.Int t.crashed);
          ] );
      ("responses_ok", Jsonl.Int t.ok);
      ("responses_error", Jsonl.Int t.error);
      ("queue_depth", Jsonl.Int queue_depth);
      ("workers", Jsonl.List workers);
      ("in_flight", Jsonl.Int in_flight);
      ("connections", Jsonl.Int connections);
      ("shed", Jsonl.Int shed);
      ( "cache",
        Jsonl.Obj
          [
            ("entries", Jsonl.Int c.Explore.Cache.entries);
            ( "max_entries",
              match c.Explore.Cache.max_entries with
              | None -> Jsonl.Null
              | Some n -> Jsonl.Int n );
            ("hits", Jsonl.Int c.Explore.Cache.hits);
            ("misses", Jsonl.Int c.Explore.Cache.misses);
            ("evictions", Jsonl.Int c.Explore.Cache.evictions);
            ("hit_rate", Jsonl.Float hit_rate);
          ] );
      ( "library_cache",
        Jsonl.Obj
          [
            ("entries", Jsonl.Int lib_entries);
            ("hits", Jsonl.Int t.lib_hits);
            ("misses", Jsonl.Int t.lib_misses);
          ] );
    ]
