(** [synth bombard]: a load-test client for the daemon.

    Forks [jobs] concurrent client processes, each firing [requests]
    requests from a deterministic mixed corpus (schedule points cycling
    over a few option vectors — so keys repeat and the cache and
    coalescing paths are exercised — plus lint and ping traffic), with
    planted faults on request:

    - {b hang}: schedule requests carrying [inject hang] and a 1s
      deadline — must come back as typed [serve.deadline] errors, never
      hang the daemon;
    - {b oversize}: frames over the daemon's limit on fresh connections
      — must come back as [serve.frame-too-large] before the connection
      closes;
    - {b half-close}: requests whose connection shuts down its send side
      immediately after the frame — the response must still arrive.

    The aggregated report asserts the robustness contract: zero
    transport failures (every request got a typed response), the planted
    faults produced exactly their expected codes, and — for warm re-runs
    — a minimum cache hit rate. [b_failures] lists every violated
    assertion; empty means the soak passed. *)

type config = {
  socket : string;
  jobs : int;  (** Concurrent client processes. *)
  requests : int;  (** Requests per client. *)
  graph : string;  (** Corpus graph (builtin name or file). *)
  plant_hang : bool;
  plant_oversize : bool;
  plant_half_close : bool;
  timeout : float;  (** Client-side per-response wait. *)
  expect_hit_rate : float option;
      (** Assert cached/ok ≥ this (warm re-run check). *)
  log : string -> unit;
}

val default : socket:string -> config
(** 8 jobs × 25 requests over [diffeq], all faults off, 30s waits. *)

type report = {
  b_sent : int;
  b_ok : int;
  b_cached : int;
  b_errors : (string * int) list;  (** Typed-error responses by code. *)
  b_io_failures : int;  (** Transport-level failures — must be zero. *)
  b_failures : string list;  (** Violated assertions; empty = pass. *)
}

val run : config -> (report, Diag.t) result
(** [Error] only when the campaign cannot run at all (fork failure);
    per-request trouble is data in the report. *)

val report_to_json : report -> string
