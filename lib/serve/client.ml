module Jsonl = Batch.Jsonl

type t = { c_fd : Unix.file_descr }

let fd t = t.c_fd
let close t = try Unix.close t.c_fd with Unix.Unix_error _ -> ()

let connect_error what err =
  Diag.input ~code:"serve.connect"
    (Printf.sprintf "cannot connect to %s: %s" what (Unix.error_message err))

(* Retry briefly on the races a crash-only daemon makes routine: the
   socket file exists before listen, or not yet at all after a restart. *)
let connect_addr ?(timeout = 5.) what domain addr =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec attempt () =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok { c_fd = fd }
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () < deadline then begin
          ignore (Unix.select [] [] [] 0.05);
          attempt ()
        end
        else Error (connect_error what err)
  in
  attempt ()

let connect ?timeout path =
  connect_addr ?timeout path Unix.PF_UNIX (Unix.ADDR_UNIX path)

let connect_tcp ?timeout ~port () =
  connect_addr ?timeout
    (Printf.sprintf "127.0.0.1:%d" port)
    Unix.PF_INET
    (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let build ~op ~id fields =
  Jsonl.to_string
    (Jsonl.Obj
       (("op", Jsonl.String op) :: ("id", Jsonl.String id) :: fields))

let send t payload = Frame.send t.c_fd payload

let recv ?max_frame ?(timeout = 30.) t =
  match Frame.recv ?max_frame ~timeout t.c_fd with
  | Error d -> Error d
  | Ok None -> Ok None
  | Ok (Some payload) ->
      Result.map Option.some (Protocol.parse_response ?max_bytes:max_frame payload)

let request ?timeout t payload =
  match send t payload with
  | Error d -> Error d
  | Ok () -> (
      match recv ?timeout t with
      | Error d -> Error d
      | Ok (Some r) -> Ok r
      | Ok None ->
          Error
            (Diag.input ~code:"serve.io"
               "daemon closed the connection before responding"))
