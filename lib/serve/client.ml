module Jsonl = Batch.Jsonl

type t = { c_fd : Unix.file_descr }

let fd t = t.c_fd
let close t = try Unix.close t.c_fd with Unix.Unix_error _ -> ()

let connect_error what ~attempts err =
  Diag.input ~code:"serve.connect"
    (Printf.sprintf "cannot connect to %s after %d attempt%s: %s" what
       attempts
       (if attempts = 1 then "" else "s")
       (Unix.error_message err))

(* Retry on the races a crash-only daemon makes routine — the socket
   file exists before listen, or not yet at all after a restart — pacing
   the attempts with the shared decorrelated-jitter backoff policy so a
   herd of clients hitting a restarting daemon spreads back out. *)
let connect_addr ?(timeout = 5.) ?(backoff = Batch.Retry.backoff ()) what
    domain addr =
  let deadline = Unix.gettimeofday () +. timeout in
  let rng = Random.State.make_self_init () in
  let rec attempt n prev_delay =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok { c_fd = fd }
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if
          Batch.Retry.exhausted backoff ~attempt:n
          || Unix.gettimeofday () >= deadline
        then Error (connect_error what ~attempts:n err)
        else begin
          let delay = Batch.Retry.next_delay backoff ~rng ~prev:prev_delay in
          let delay =
            Float.min delay (Float.max 0.01 (deadline -. Unix.gettimeofday ()))
          in
          (match Unix.select [] [] [] delay with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          attempt (n + 1) delay
        end
  in
  attempt 1 0.

let connect ?timeout ?backoff path =
  connect_addr ?timeout ?backoff path Unix.PF_UNIX (Unix.ADDR_UNIX path)

let connect_tcp ?timeout ?backoff ~port () =
  connect_addr ?timeout ?backoff
    (Printf.sprintf "127.0.0.1:%d" port)
    Unix.PF_INET
    (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let build ~op ~id fields =
  Jsonl.to_string
    (Jsonl.Obj
       (("op", Jsonl.String op) :: ("id", Jsonl.String id) :: fields))

let send t payload = Frame.send t.c_fd payload

let recv ?max_frame ?(timeout = 30.) t =
  match Frame.recv ?max_frame ~timeout t.c_fd with
  | Error d -> Error d
  | Ok None -> Ok None
  | Ok (Some payload) ->
      Result.map Option.some (Protocol.parse_response ?max_bytes:max_frame payload)

let request ?timeout t payload =
  match send t payload with
  | Error d -> Error d
  | Ok () -> (
      match recv ?timeout t with
      | Error d -> Error d
      | Ok (Some r) -> Ok r
      | Ok None ->
          Error
            (Diag.input ~code:"serve.io"
               "daemon closed the connection before responding"))
