(** Length-prefixed wire framing for the synthesis daemon.

    One frame = a 4-byte big-endian payload length followed by that many
    bytes of JSON ({!Batch.Jsonl} documents on both directions). The
    explicit length makes two denial vectors cheap to refuse {e before}
    any parsing: an oversized frame is rejected from its header alone
    ([serve.frame-too-large]), and a connection that dribbles a partial
    frame forever is cut by the daemon's read timeout — the decoder
    exposes {!has_partial} so the timeout only applies mid-frame.

    The blocking helpers ({!send}, {!recv}) serve the client side; the
    daemon feeds its own non-blocking reads through a {!decoder}. All IO
    errors — EPIPE on a vanished peer included — surface as typed
    [serve.io] diagnostics, never as uncaught [Unix_error]s (the process
    must also ignore SIGPIPE; [synth] does so at startup). *)

val header_bytes : int
(** 4. *)

val encode : string -> string
(** Payload to wire bytes (header + payload). *)

(** {2 Incremental decoding} *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] defaults to {!Batch.Jsonl.default_max_document_bytes}. *)

val feed : decoder -> string -> (string list, Diag.t) result
(** Append received bytes; return the payloads of every frame completed
    by them, in order. [Error] ([serve.frame-too-large]) means the peer
    announced a frame over [max_frame] (or a negative length): the
    connection is poisoned and must be closed, since the stream can no
    longer be re-synchronized. *)

val has_partial : decoder -> bool
(** Bytes of an incomplete frame are pending — the read-timeout arming
    condition. *)

(** {2 Blocking IO (client side)} *)

val write_all : Unix.file_descr -> string -> (unit, Diag.t) result
(** EINTR-restarted full write; any other error (EPIPE, ECONNRESET…) is
    a typed [serve.io] error. *)

val send : Unix.file_descr -> string -> (unit, Diag.t) result
(** [write_all] of [encode]. *)

val recv :
  ?max_frame:int -> ?timeout:float -> Unix.file_descr ->
  (string option, Diag.t) result
(** Block until one whole frame arrives ([Ok (Some payload)]), the peer
    closes cleanly between frames ([Ok None]), the peer closes mid-frame
    ([serve.io]), [timeout] elapses ([serve.timeout]) or a frame breaks
    [max_frame]. *)
