module Jsonl = Batch.Jsonl
module Spec = Explore.Spec

type graph_source = Inline of string | Named of string

type sched_options = {
  engine : Spec.engine;
  style : Core.Mfsa.style;
  weights : Core.Mfsa.weights;
  constr : Spec.constraint_;
  library : Spec.library_variant;
  clock : float option;
  cse : bool;
  fault : Harness.Fault.t option;
}

let default_options =
  {
    engine = Spec.Mfsa;
    style = Core.Mfsa.Unrestricted;
    weights = Core.Mfsa.equal_weights;
    constr = Spec.Time 0;
    library = Spec.Default;
    clock = None;
    cse = false;
    fault = None;
  }

type request =
  | Schedule of { source : graph_source; opts : sched_options }
  | Reschedule of {
      base : graph_source;
      edited : graph_source;
      deltas : Core.Mfs.delta list;
      cs : int;
    }
  | Lint of { source : graph_source; clock : float option }
  | Explore of { spec_text : string }
  | Health
  | Stats
  | Ping

type envelope = {
  req_id : string;
  req_deadline : float option;
  request : request;
}

let request_op_name = function
  | Schedule _ -> "schedule"
  | Reschedule _ -> "reschedule"
  | Lint _ -> "lint"
  | Explore _ -> "explore"
  | Health -> "health"
  | Stats -> "stats"
  | Ping -> "ping"

(* --- Request parsing ---------------------------------------------------- *)

let bad msg = Diag.input ~code:"serve.bad-request" msg
let badf fmt = Printf.ksprintf bad fmt

let ( let* ) = Result.bind

let graph_source doc =
  match (Jsonl.str "graph" doc, Jsonl.str "spec" doc) with
  | Some src, None -> Ok (Inline src)
  | None, Some name -> Ok (Named name)
  | Some _, Some _ -> Error (bad "give either \"graph\" or \"spec\", not both")
  | None, None -> Error (bad "missing \"graph\" (inline source) or \"spec\"")

let parse_limits s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (badf "malformed limit %S (want CLASS=N)" part)
        | Some i -> (
            let cls = String.trim (String.sub part 0 i) in
            let n =
              String.trim (String.sub part (i + 1) (String.length part - i - 1))
            in
            match int_of_string_opt n with
            | Some n when n > 0 && cls <> "" -> go ((cls, n) :: acc) rest
            | _ -> Error (badf "malformed limit %S (want CLASS=N)" part)))
  in
  go [] parts

let parse_constr doc =
  match (Jsonl.int "cs" doc, Jsonl.str "limits" doc) with
  | Some _, Some _ -> Error (bad "give either \"cs\" or \"limits\", not both")
  | None, Some s -> Result.map (fun l -> Spec.Resource l) (parse_limits s)
  | Some cs, None when cs >= 0 -> Ok (Spec.Time cs)
  | Some cs, None -> Error (badf "negative \"cs\" %d" cs)
  | None, None -> Ok (Spec.Time 0)

let parse_options doc =
  let* engine =
    match Jsonl.str "engine" doc with
    | None -> Ok default_options.engine
    | Some s -> (
        match Spec.engine_of_name s with
        | Some e -> Ok e
        | None -> Error (badf "unknown engine %S" s))
  in
  let* style =
    match Jsonl.int "style" doc with
    | None -> Ok default_options.style
    | Some 1 -> Ok Core.Mfsa.Unrestricted
    | Some 2 -> Ok Core.Mfsa.No_self_loop
    | Some n -> Error (badf "unknown style %d (want 1 or 2)" n)
  in
  let* weights =
    match Jsonl.str "weights" doc with
    | None -> Ok default_options.weights
    | Some s -> (
        match Spec.weights_of_name s with
        | Some w -> Ok w
        | None -> Error (badf "malformed weights %S (want T/A/M/R)" s))
  in
  let* constr = parse_constr doc in
  let* library =
    match Jsonl.str "library" doc with
    | None -> Ok default_options.library
    | Some s -> (
        match Spec.library_of_name s with
        | Some l -> Ok l
        | None -> Error (badf "unknown library %S" s))
  in
  let* clock =
    match Jsonl.member "clock" doc with
    | None -> Ok None
    | Some v -> (
        match Jsonl.to_float v with
        | Some c when c > 0. -> Ok (Some c)
        | _ -> Error (bad "\"clock\" must be a positive period in ns"))
  in
  let* cse =
    match Jsonl.member "cse" doc with
    | None -> Ok false
    | Some (Jsonl.Bool b) -> Ok b
    | Some _ -> Error (bad "\"cse\" must be a boolean")
  in
  let* fault =
    match Jsonl.str "inject" doc with
    | None -> Ok None
    | Some s -> (
        match Harness.Fault.of_string s with
        | Some f when Harness.Fault.is_process f -> Ok (Some f)
        | Some _ ->
            Error (badf "inject %S: only process faults (hang/segv) here" s)
        | None -> Error (badf "unknown fault %S" s))
  in
  Ok { engine; style; weights; constr; library; clock; cse; fault }

let parse_deltas doc =
  match Jsonl.member "deltas" doc with
  | None | Some (Jsonl.List []) -> Ok []
  | Some (Jsonl.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match (Jsonl.str "kind" item, Jsonl.str "node" item) with
            | Some kind, Some node -> (
                match kind with
                | "added" -> go (Core.Mfs.Op_added node :: acc) rest
                | "removed" -> go (Core.Mfs.Op_removed node :: acc) rest
                | "changed" -> go (Core.Mfs.Op_changed node :: acc) rest
                | k -> Error (badf "unknown delta kind %S" k))
            | _ -> Error (bad "each delta needs \"kind\" and \"node\""))
      in
      go [] items
  | Some _ -> Error (bad "\"deltas\" must be a list")

let parse_request_doc doc =
  let req_id = Option.value ~default:"" (Jsonl.str "id" doc) in
  let* req_deadline =
    match Jsonl.member "deadline" doc with
    | None -> Ok None
    | Some v -> (
        match Jsonl.to_float v with
        | Some d when d > 0. -> Ok (Some d)
        | _ -> Error (bad "\"deadline\" must be positive seconds"))
  in
  let* request =
    match Jsonl.str "op" doc with
    | None -> Error (bad "missing \"op\"")
    | Some "ping" -> Ok Ping
    | Some "health" -> Ok Health
    | Some "stats" -> Ok Stats
    | Some "schedule" ->
        let* source = graph_source doc in
        let* opts = parse_options doc in
        Ok (Schedule { source; opts })
    | Some "lint" ->
        let* source = graph_source doc in
        let* clock =
          match Jsonl.member "clock" doc with
          | None -> Ok None
          | Some v -> (
              match Jsonl.to_float v with
              | Some c when c > 0. -> Ok (Some c)
              | _ -> Error (bad "\"clock\" must be a positive period in ns"))
        in
        Ok (Lint { source; clock })
    | Some "explore" -> (
        match Jsonl.str "spec_text" doc with
        | Some spec_text when String.trim spec_text <> "" ->
            Ok (Explore { spec_text })
        | _ -> Error (bad "explore needs a non-empty \"spec_text\""))
    | Some "reschedule" -> (
        let* base =
          match Jsonl.str "base" doc with
          | Some s -> Ok (Inline s)
          | None -> Error (bad "reschedule needs \"base\" (pre-edit source)")
        in
        let* edited =
          match Jsonl.str "graph" doc with
          | Some s -> Ok (Inline s)
          | None -> Error (bad "reschedule needs \"graph\" (edited source)")
        in
        let* deltas = parse_deltas doc in
        match Jsonl.int "cs" doc with
        | Some cs when cs >= 0 ->
            Ok (Reschedule { base; edited; deltas; cs })
        | Some cs -> Error (badf "negative \"cs\" %d" cs)
        | None -> Ok (Reschedule { base; edited; deltas; cs = 0 }))
    | Some op -> Error (badf "unknown op %S" op)
  in
  Ok { req_id; req_deadline; request }

let parse_request ?max_bytes payload =
  let* doc = Jsonl.parse_bounded ?max_bytes payload in
  parse_request_doc doc

(* --- Responses ---------------------------------------------------------- *)

let ok_response ~id ?(cached = false) payload =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("id", Jsonl.String id);
         ("status", Jsonl.String "ok");
         ("cached", Jsonl.Bool cached);
         ("payload", payload);
       ])

let error_response ~id ?retry_after d =
  Jsonl.to_string
    (Jsonl.Obj
       ([
          ("id", Jsonl.String id);
          ("status", Jsonl.String "error");
          ("diag", Batch.Verdict.diag_to_json d);
        ]
       @
       match retry_after with
       | None -> []
       | Some s -> [ ("retry_after", Jsonl.Float s) ]))

type response = {
  r_id : string;
  r_ok : bool;
  r_cached : bool;
  r_retry_after : float option;
  r_payload : Jsonl.t option;
  r_diag : Diag.t option;
}

let parse_response_doc doc =
  let r_id = Option.value ~default:"" (Jsonl.str "id" doc) in
  match Jsonl.str "status" doc with
  | Some "ok" ->
      Ok
        {
          r_id;
          r_ok = true;
          r_cached =
            (match Jsonl.member "cached" doc with
            | Some (Jsonl.Bool b) -> b
            | _ -> false);
          r_retry_after = None;
          r_payload = Jsonl.member "payload" doc;
          r_diag = None;
        }
  | Some "error" -> (
      match Jsonl.member "diag" doc with
      | None -> Error (bad "error response missing \"diag\"")
      | Some d -> (
          match Batch.Verdict.diag_of_json d with
          | Error msg -> Error (bad ("unparsable diag: " ^ msg))
          | Ok d ->
              Ok
                {
                  r_id;
                  r_ok = false;
                  r_cached = false;
                  r_retry_after = Jsonl.float "retry_after" doc;
                  r_payload = None;
                  r_diag = Some d;
                }))
  | _ -> Error (bad "response missing \"status\"")

let parse_response ?max_bytes payload =
  let* doc = Jsonl.parse_bounded ?max_bytes payload in
  parse_response_doc doc

(* --- Worker plane -------------------------------------------------------- *)

type registration = {
  g_worker : string;
  g_capacity : int;
  g_heap_mb : int option;
  g_libraries : string list;
}

type worker_msg =
  | Register of registration
  | Heartbeat of { h_worker : string; h_inflight : int }
  | Lease_result of {
      u_job : string;
      u_epoch : int;
      u_attempt : int;
      u_seconds : float;
      u_verdict : Batch.Verdict.t;
    }

type cluster_msg = Worker of worker_msg | Control of envelope

let register_msg ~worker ~capacity ?heap_mb ~libraries () =
  Jsonl.to_string
    (Jsonl.Obj
       ([
          ("op", Jsonl.String "register");
          ("worker", Jsonl.String worker);
          ("capacity", Jsonl.Int capacity);
          ( "libraries",
            Jsonl.List (List.map (fun l -> Jsonl.String l) libraries) );
        ]
       @
       match heap_mb with
       | None -> []
       | Some mb -> [ ("heap_mb", Jsonl.Int mb) ]))

let heartbeat_msg ~worker ~inflight =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("op", Jsonl.String "heartbeat");
         ("worker", Jsonl.String worker);
         ("inflight", Jsonl.Int inflight);
       ])

let result_msg ~job ~epoch ~attempt ~seconds verdict =
  Jsonl.to_string
    (Jsonl.Obj
       ([
          ("op", Jsonl.String "result");
          ("job", Jsonl.String job);
          ("epoch", Jsonl.Int epoch);
          ("attempt", Jsonl.Int attempt);
          ("seconds", Jsonl.Float seconds);
        ]
       @ Batch.Verdict.to_fields verdict))

let parse_worker_msg_doc doc op =
  let worker () =
    match Jsonl.str "worker" doc with
    | Some w when w <> "" -> Ok w
    | _ -> Error (badf "%s needs a non-empty \"worker\"" op)
  in
  match op with
  | "register" ->
      let* g_worker = worker () in
      let* g_capacity =
        match Jsonl.int "capacity" doc with
        | Some n when n > 0 -> Ok n
        | _ -> Error (bad "register needs a positive \"capacity\"")
      in
      let g_heap_mb = Jsonl.int "heap_mb" doc in
      let g_libraries =
        match Jsonl.member "libraries" doc with
        | Some (Jsonl.List l) ->
            List.filter_map
              (function Jsonl.String s -> Some s | _ -> None)
              l
        | _ -> []
      in
      Ok (Register { g_worker; g_capacity; g_heap_mb; g_libraries })
  | "heartbeat" ->
      let* h_worker = worker () in
      let h_inflight = Option.value ~default:0 (Jsonl.int "inflight" doc) in
      Ok (Heartbeat { h_worker; h_inflight })
  | "result" -> (
      let* u_job =
        match Jsonl.str "job" doc with
        | Some j when j <> "" -> Ok j
        | _ -> Error (bad "result needs a non-empty \"job\"")
      in
      let* u_epoch =
        match Jsonl.int "epoch" doc with
        | Some e when e >= 0 -> Ok e
        | _ -> Error (bad "result needs a non-negative \"epoch\"")
      in
      let u_attempt = Option.value ~default:1 (Jsonl.int "attempt" doc) in
      let u_seconds = Option.value ~default:0. (Jsonl.float "seconds" doc) in
      match Batch.Verdict.of_fields doc with
      | Ok u_verdict ->
          Ok (Lease_result { u_job; u_epoch; u_attempt; u_seconds; u_verdict })
      | Error msg -> Error (badf "result verdict: %s" msg))
  | _ -> Error (badf "unknown worker op %S" op)

let parse_cluster_msg ?max_bytes payload =
  let* doc = Jsonl.parse_bounded ?max_bytes payload in
  match Jsonl.str "op" doc with
  | Some (("register" | "heartbeat" | "result") as op) ->
      Result.map (fun m -> Worker m) (parse_worker_msg_doc doc op)
  | _ -> Result.map (fun e -> Control e) (parse_request_doc doc)

type downstream =
  | Lease of {
      l_job : string;
      l_epoch : int;
      l_attempt : int;
      l_deadline : float;
      l_wire : Jsonl.t;
    }
  | Revoke of { v_job : string; v_epoch : int }
  | Ack of response

let lease_msg ~job ~epoch ~attempt ~deadline wire =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("op", Jsonl.String "lease");
         ("job", Jsonl.String job);
         ("epoch", Jsonl.Int epoch);
         ("attempt", Jsonl.Int attempt);
         ("deadline", Jsonl.Float deadline);
         ("wire", wire);
       ])

let revoke_msg ~job ~epoch =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("op", Jsonl.String "revoke");
         ("job", Jsonl.String job);
         ("epoch", Jsonl.Int epoch);
       ])

let parse_downstream ?max_bytes payload =
  let* doc = Jsonl.parse_bounded ?max_bytes payload in
  let job_epoch op =
    let* job =
      match Jsonl.str "job" doc with
      | Some j when j <> "" -> Ok j
      | _ -> Error (badf "%s needs a non-empty \"job\"" op)
    in
    let* epoch =
      match Jsonl.int "epoch" doc with
      | Some e when e >= 0 -> Ok e
      | _ -> Error (badf "%s needs a non-negative \"epoch\"" op)
    in
    Ok (job, epoch)
  in
  match Jsonl.str "op" doc with
  | Some "lease" ->
      let* l_job, l_epoch = job_epoch "lease" in
      let l_attempt = Option.value ~default:1 (Jsonl.int "attempt" doc) in
      let* l_deadline =
        match Jsonl.float "deadline" doc with
        | Some d when d > 0. -> Ok d
        | _ -> Error (bad "lease needs a positive \"deadline\"")
      in
      let* l_wire =
        match Jsonl.member "wire" doc with
        | Some w -> Ok w
        | None -> Error (bad "lease needs a \"wire\" job description")
      in
      Ok (Lease { l_job; l_epoch; l_attempt; l_deadline; l_wire })
  | Some "revoke" ->
      let* v_job, v_epoch = job_epoch "revoke" in
      Ok (Revoke { v_job; v_epoch })
  | _ -> Result.map (fun r -> Ack r) (parse_response_doc doc)
