module Jsonl = Batch.Jsonl
module Spec = Explore.Spec

type graph_source = Inline of string | Named of string

type sched_options = {
  engine : Spec.engine;
  style : Core.Mfsa.style;
  weights : Core.Mfsa.weights;
  constr : Spec.constraint_;
  library : Spec.library_variant;
  clock : float option;
  cse : bool;
  fault : Harness.Fault.t option;
}

let default_options =
  {
    engine = Spec.Mfsa;
    style = Core.Mfsa.Unrestricted;
    weights = Core.Mfsa.equal_weights;
    constr = Spec.Time 0;
    library = Spec.Default;
    clock = None;
    cse = false;
    fault = None;
  }

type request =
  | Schedule of { source : graph_source; opts : sched_options }
  | Reschedule of {
      base : graph_source;
      edited : graph_source;
      deltas : Core.Mfs.delta list;
      cs : int;
    }
  | Lint of { source : graph_source; clock : float option }
  | Explore of { spec_text : string }
  | Health
  | Stats
  | Ping

type envelope = {
  req_id : string;
  req_deadline : float option;
  request : request;
}

let request_op_name = function
  | Schedule _ -> "schedule"
  | Reschedule _ -> "reschedule"
  | Lint _ -> "lint"
  | Explore _ -> "explore"
  | Health -> "health"
  | Stats -> "stats"
  | Ping -> "ping"

(* --- Request parsing ---------------------------------------------------- *)

let bad msg = Diag.input ~code:"serve.bad-request" msg
let badf fmt = Printf.ksprintf bad fmt

let ( let* ) = Result.bind

let graph_source doc =
  match (Jsonl.str "graph" doc, Jsonl.str "spec" doc) with
  | Some src, None -> Ok (Inline src)
  | None, Some name -> Ok (Named name)
  | Some _, Some _ -> Error (bad "give either \"graph\" or \"spec\", not both")
  | None, None -> Error (bad "missing \"graph\" (inline source) or \"spec\"")

let parse_limits s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (badf "malformed limit %S (want CLASS=N)" part)
        | Some i -> (
            let cls = String.trim (String.sub part 0 i) in
            let n =
              String.trim (String.sub part (i + 1) (String.length part - i - 1))
            in
            match int_of_string_opt n with
            | Some n when n > 0 && cls <> "" -> go ((cls, n) :: acc) rest
            | _ -> Error (badf "malformed limit %S (want CLASS=N)" part)))
  in
  go [] parts

let parse_constr doc =
  match (Jsonl.int "cs" doc, Jsonl.str "limits" doc) with
  | Some _, Some _ -> Error (bad "give either \"cs\" or \"limits\", not both")
  | None, Some s -> Result.map (fun l -> Spec.Resource l) (parse_limits s)
  | Some cs, None when cs >= 0 -> Ok (Spec.Time cs)
  | Some cs, None -> Error (badf "negative \"cs\" %d" cs)
  | None, None -> Ok (Spec.Time 0)

let parse_options doc =
  let* engine =
    match Jsonl.str "engine" doc with
    | None -> Ok default_options.engine
    | Some s -> (
        match Spec.engine_of_name s with
        | Some e -> Ok e
        | None -> Error (badf "unknown engine %S" s))
  in
  let* style =
    match Jsonl.int "style" doc with
    | None -> Ok default_options.style
    | Some 1 -> Ok Core.Mfsa.Unrestricted
    | Some 2 -> Ok Core.Mfsa.No_self_loop
    | Some n -> Error (badf "unknown style %d (want 1 or 2)" n)
  in
  let* weights =
    match Jsonl.str "weights" doc with
    | None -> Ok default_options.weights
    | Some s -> (
        match Spec.weights_of_name s with
        | Some w -> Ok w
        | None -> Error (badf "malformed weights %S (want T/A/M/R)" s))
  in
  let* constr = parse_constr doc in
  let* library =
    match Jsonl.str "library" doc with
    | None -> Ok default_options.library
    | Some s -> (
        match Spec.library_of_name s with
        | Some l -> Ok l
        | None -> Error (badf "unknown library %S" s))
  in
  let* clock =
    match Jsonl.member "clock" doc with
    | None -> Ok None
    | Some v -> (
        match Jsonl.to_float v with
        | Some c when c > 0. -> Ok (Some c)
        | _ -> Error (bad "\"clock\" must be a positive period in ns"))
  in
  let* cse =
    match Jsonl.member "cse" doc with
    | None -> Ok false
    | Some (Jsonl.Bool b) -> Ok b
    | Some _ -> Error (bad "\"cse\" must be a boolean")
  in
  let* fault =
    match Jsonl.str "inject" doc with
    | None -> Ok None
    | Some s -> (
        match Harness.Fault.of_string s with
        | Some f when Harness.Fault.is_process f -> Ok (Some f)
        | Some _ ->
            Error (badf "inject %S: only process faults (hang/segv) here" s)
        | None -> Error (badf "unknown fault %S" s))
  in
  Ok { engine; style; weights; constr; library; clock; cse; fault }

let parse_deltas doc =
  match Jsonl.member "deltas" doc with
  | None | Some (Jsonl.List []) -> Ok []
  | Some (Jsonl.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match (Jsonl.str "kind" item, Jsonl.str "node" item) with
            | Some kind, Some node -> (
                match kind with
                | "added" -> go (Core.Mfs.Op_added node :: acc) rest
                | "removed" -> go (Core.Mfs.Op_removed node :: acc) rest
                | "changed" -> go (Core.Mfs.Op_changed node :: acc) rest
                | k -> Error (badf "unknown delta kind %S" k))
            | _ -> Error (bad "each delta needs \"kind\" and \"node\""))
      in
      go [] items
  | Some _ -> Error (bad "\"deltas\" must be a list")

let parse_request ?max_bytes payload =
  let* doc = Jsonl.parse_bounded ?max_bytes payload in
  let req_id = Option.value ~default:"" (Jsonl.str "id" doc) in
  let* req_deadline =
    match Jsonl.member "deadline" doc with
    | None -> Ok None
    | Some v -> (
        match Jsonl.to_float v with
        | Some d when d > 0. -> Ok (Some d)
        | _ -> Error (bad "\"deadline\" must be positive seconds"))
  in
  let* request =
    match Jsonl.str "op" doc with
    | None -> Error (bad "missing \"op\"")
    | Some "ping" -> Ok Ping
    | Some "health" -> Ok Health
    | Some "stats" -> Ok Stats
    | Some "schedule" ->
        let* source = graph_source doc in
        let* opts = parse_options doc in
        Ok (Schedule { source; opts })
    | Some "lint" ->
        let* source = graph_source doc in
        let* clock =
          match Jsonl.member "clock" doc with
          | None -> Ok None
          | Some v -> (
              match Jsonl.to_float v with
              | Some c when c > 0. -> Ok (Some c)
              | _ -> Error (bad "\"clock\" must be a positive period in ns"))
        in
        Ok (Lint { source; clock })
    | Some "explore" -> (
        match Jsonl.str "spec_text" doc with
        | Some spec_text when String.trim spec_text <> "" ->
            Ok (Explore { spec_text })
        | _ -> Error (bad "explore needs a non-empty \"spec_text\""))
    | Some "reschedule" -> (
        let* base =
          match Jsonl.str "base" doc with
          | Some s -> Ok (Inline s)
          | None -> Error (bad "reschedule needs \"base\" (pre-edit source)")
        in
        let* edited =
          match Jsonl.str "graph" doc with
          | Some s -> Ok (Inline s)
          | None -> Error (bad "reschedule needs \"graph\" (edited source)")
        in
        let* deltas = parse_deltas doc in
        match Jsonl.int "cs" doc with
        | Some cs when cs >= 0 ->
            Ok (Reschedule { base; edited; deltas; cs })
        | Some cs -> Error (badf "negative \"cs\" %d" cs)
        | None -> Ok (Reschedule { base; edited; deltas; cs = 0 }))
    | Some op -> Error (badf "unknown op %S" op)
  in
  Ok { req_id; req_deadline; request }

(* --- Responses ---------------------------------------------------------- *)

let ok_response ~id ?(cached = false) payload =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("id", Jsonl.String id);
         ("status", Jsonl.String "ok");
         ("cached", Jsonl.Bool cached);
         ("payload", payload);
       ])

let error_response ~id ?retry_after d =
  Jsonl.to_string
    (Jsonl.Obj
       ([
          ("id", Jsonl.String id);
          ("status", Jsonl.String "error");
          ("diag", Batch.Verdict.diag_to_json d);
        ]
       @
       match retry_after with
       | None -> []
       | Some s -> [ ("retry_after", Jsonl.Float s) ]))

type response = {
  r_id : string;
  r_ok : bool;
  r_cached : bool;
  r_retry_after : float option;
  r_payload : Jsonl.t option;
  r_diag : Diag.t option;
}

let parse_response ?max_bytes payload =
  let* doc = Jsonl.parse_bounded ?max_bytes payload in
  let r_id = Option.value ~default:"" (Jsonl.str "id" doc) in
  match Jsonl.str "status" doc with
  | Some "ok" ->
      Ok
        {
          r_id;
          r_ok = true;
          r_cached =
            (match Jsonl.member "cached" doc with
            | Some (Jsonl.Bool b) -> b
            | _ -> false);
          r_retry_after = None;
          r_payload = Jsonl.member "payload" doc;
          r_diag = None;
        }
  | Some "error" -> (
      match Jsonl.member "diag" doc with
      | None -> Error (bad "error response missing \"diag\"")
      | Some d -> (
          match Batch.Verdict.diag_of_json d with
          | Error msg -> Error (bad ("unparsable diag: " ^ msg))
          | Ok d ->
              Ok
                {
                  r_id;
                  r_ok = false;
                  r_cached = false;
                  r_retry_after = Jsonl.float "retry_after" doc;
                  r_payload = None;
                  r_diag = Some d;
                }))
  | _ -> Error (bad "response missing \"status\"")
