module Jsonl = Batch.Jsonl

type config = {
  socket : string;
  jobs : int;
  requests : int;
  graph : string;
  plant_hang : bool;
  plant_oversize : bool;
  plant_half_close : bool;
  timeout : float;
  expect_hit_rate : float option;
  log : string -> unit;
}

let default ~socket =
  {
    socket;
    jobs = 8;
    requests = 25;
    graph = "diffeq";
    plant_hang = false;
    plant_oversize = false;
    plant_half_close = false;
    timeout = 30.;
    expect_hit_rate = None;
    log = (fun (_ : string) -> ());
  }

type report = {
  b_sent : int;
  b_ok : int;
  b_cached : int;
  b_errors : (string * int) list;
  b_io_failures : int;
  b_failures : string list;
}

(* --- One client's tally ------------------------------------------------- *)

type tally = {
  mutable sent : int;
  mutable ok : int;
  mutable cached : int;
  mutable io : int;
  errors : (string, int) Hashtbl.t;
}

let tally () =
  { sent = 0; ok = 0; cached = 0; io = 0; errors = Hashtbl.create 8 }

let count_error t code =
  Hashtbl.replace t.errors code
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.errors code))

let count_response t = function
  | Error (_ : Diag.t) -> t.io <- t.io + 1
  | Ok (r : Protocol.response) ->
      if r.Protocol.r_ok then begin
        t.ok <- t.ok + 1;
        if r.Protocol.r_cached then t.cached <- t.cached + 1
      end
      else
        count_error t
          (match r.Protocol.r_diag with
          | Some d -> d.Diag.code
          | None -> "unknown")

let tally_to_json t =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("sent", Jsonl.Int t.sent);
         ("ok", Jsonl.Int t.ok);
         ("cached", Jsonl.Int t.cached);
         ("io", Jsonl.Int t.io);
         ( "errors",
           Jsonl.Obj
             (Hashtbl.fold
                (fun code n acc -> (code, Jsonl.Int n) :: acc)
                t.errors []) );
       ])

(* --- The corpus --------------------------------------------------------- *)

let weights_cycle = [| "1/1/1/1"; "1/1/1/20"; "2/1/1/1" |]

let schedule_payload cfg ~id ~seq ~inject ~deadline =
  let fields =
    [
      ("spec", Jsonl.String cfg.graph);
      ("cs", Jsonl.Int 0);
      ("weights", Jsonl.String weights_cycle.(seq mod 3));
      ("style", Jsonl.Int (1 + (seq / 3 mod 2)));
    ]
    @ (match inject with
      | None -> []
      | Some f -> [ ("inject", Jsonl.String f) ])
    @
    match deadline with
    | None -> []
    | Some d -> [ ("deadline", Jsonl.Float d) ]
  in
  Client.build ~op:"schedule" ~id fields

(* A fresh connection per planted fault, so a poisoned stream (oversize)
   or a half-closed socket never perturbs the client's main session. *)
let on_fresh_conn cfg t f =
  match Client.connect cfg.socket with
  | Error _ -> t.io <- t.io + 1
  | Ok c ->
      f c;
      Client.close c

let fire_oversize cfg t =
  on_fresh_conn cfg t (fun c ->
      t.sent <- t.sent + 1;
      let huge = String.make (Jsonl.default_max_document_bytes + 1) 'x' in
      match Client.send c huge with
      | Error _ ->
          (* The daemon may reset before the write completes; that still
             proves the frame was refused. *)
          count_error t "serve.frame-too-large"
      | Ok () -> (
          match Client.recv ~timeout:cfg.timeout c with
          | Ok (Some r) -> count_response t (Ok r)
          | Ok None -> count_error t "serve.frame-too-large"
          | Error _ -> count_error t "serve.frame-too-large"))

let fire_half_close cfg t ~id ~seq =
  on_fresh_conn cfg t (fun c ->
      t.sent <- t.sent + 1;
      let payload = schedule_payload cfg ~id ~seq ~inject:None ~deadline:None in
      match Client.send c payload with
      | Error _ -> t.io <- t.io + 1
      | Ok () -> (
          (try Unix.shutdown (Client.fd c) Unix.SHUTDOWN_SEND
           with Unix.Unix_error _ -> ());
          match Client.recv ~timeout:cfg.timeout c with
          | Ok (Some r) -> count_response t (Ok r)
          | Ok None | Error _ -> t.io <- t.io + 1))

let run_client cfg ~index =
  let t = tally () in
  match Client.connect cfg.socket with
  | Error _ ->
      t.io <- t.io + cfg.requests;
      t.sent <- t.sent + cfg.requests;
      t
  | Ok c ->
      for j = 0 to cfg.requests - 1 do
        let seq = (index * cfg.requests) + j in
        let id = Printf.sprintf "c%d-%d" index j in
        if cfg.plant_oversize && j mod 11 = 5 then fire_oversize cfg t
        else if cfg.plant_half_close && j mod 13 = 9 then
          fire_half_close cfg t ~id ~seq
        else if cfg.plant_hang && j mod 7 = 3 then begin
          t.sent <- t.sent + 1;
          count_response t
            (Client.request ~timeout:cfg.timeout c
               (schedule_payload cfg ~id ~seq ~inject:(Some "hang")
                  ~deadline:(Some 1.0)))
        end
        else if j mod 17 = 1 then begin
          t.sent <- t.sent + 1;
          count_response t
            (Client.request ~timeout:cfg.timeout c
               (Client.build ~op:"ping" ~id []))
        end
        else if j mod 5 = 4 then begin
          t.sent <- t.sent + 1;
          count_response t
            (Client.request ~timeout:cfg.timeout c
               (Client.build ~op:"lint" ~id
                  [ ("spec", Jsonl.String cfg.graph) ]))
        end
        else begin
          t.sent <- t.sent + 1;
          count_response t
            (Client.request ~timeout:cfg.timeout c
               (schedule_payload cfg ~id ~seq ~inject:None ~deadline:None))
        end
      done;
      Client.close c;
      t

(* --- Fork/aggregate ----------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go 0

let read_all fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> Buffer.contents buf
  in
  go ()

let run cfg =
  let jobs = max 1 cfg.jobs in
  let spawn index =
    let rfd, wfd = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        (try Unix.close rfd with Unix.Unix_error _ -> ());
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        let t = run_client cfg ~index in
        write_all wfd (tally_to_json t);
        (try Unix.close wfd with Unix.Unix_error _ -> ());
        Unix._exit 0
    | pid ->
        Unix.close wfd;
        (pid, rfd)
    | exception Unix.Unix_error (err, _, _) ->
        Unix.close rfd;
        Unix.close wfd;
        raise (Unix.Unix_error (err, "fork", ""))
  in
  match List.init jobs spawn with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Diag.internal ~code:"serve.bombard"
           ("cannot fork load clients: " ^ Unix.error_message err))
  | children ->
      let agg = tally () in
      List.iter
        (fun (pid, rfd) ->
          let body = read_all rfd in
          (try Unix.close rfd with Unix.Unix_error _ -> ());
          let rec wait () =
            match Unix.waitpid [] pid with
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          in
          wait ();
          match Jsonl.parse body with
          | Error _ -> agg.io <- agg.io + cfg.requests
          | Ok doc ->
              agg.sent <-
                (agg.sent + Option.value ~default:0 (Jsonl.int "sent" doc));
              agg.ok <- agg.ok + Option.value ~default:0 (Jsonl.int "ok" doc);
              agg.cached <-
                (agg.cached + Option.value ~default:0 (Jsonl.int "cached" doc));
              agg.io <- agg.io + Option.value ~default:0 (Jsonl.int "io" doc);
              (match Jsonl.member "errors" doc with
              | Some (Jsonl.Obj fields) ->
                  List.iter
                    (fun (code, v) ->
                      match Jsonl.to_int v with
                      | Some n ->
                          Hashtbl.replace agg.errors code
                            (n
                            + Option.value ~default:0
                                (Hashtbl.find_opt agg.errors code))
                      | None -> ())
                    fields
              | _ -> ()))
        children;
      let errors =
        Hashtbl.fold (fun code n acc -> (code, n) :: acc) agg.errors []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
      if agg.io > 0 then
        fail "%d transport failure(s): some requests got no typed response"
          agg.io;
      if agg.ok = 0 then fail "no request succeeded";
      let error_count code =
        Option.value ~default:0 (List.assoc_opt code errors)
      in
      if cfg.plant_hang && error_count "serve.deadline" = 0 then
        fail "planted hangs produced no serve.deadline verdicts";
      if cfg.plant_oversize && error_count "serve.frame-too-large" = 0 then
        fail "planted oversize frames produced no serve.frame-too-large";
      (match cfg.expect_hit_rate with
      | None -> ()
      | Some want ->
          let got = float_of_int agg.cached /. float_of_int (max 1 agg.ok) in
          if got < want then
            fail "cache hit rate %.2f below the expected %.2f" got want);
      Ok
        {
          b_sent = agg.sent;
          b_ok = agg.ok;
          b_cached = agg.cached;
          b_errors = errors;
          b_io_failures = agg.io;
          b_failures = List.rev !failures;
        }

let report_to_json r =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("sent", Jsonl.Int r.b_sent);
         ("ok", Jsonl.Int r.b_ok);
         ("cached", Jsonl.Int r.b_cached);
         ( "errors",
           Jsonl.Obj (List.map (fun (c, n) -> (c, Jsonl.Int n)) r.b_errors) );
         ("io_failures", Jsonl.Int r.b_io_failures);
         ( "failures",
           Jsonl.List (List.map (fun m -> Jsonl.String m) r.b_failures) );
         ("passed", Jsonl.Bool (r.b_failures = []));
       ])
