(** Typed request/response envelopes for the synthesis daemon.

    Every frame payload is one {!Batch.Jsonl} object. Requests carry an
    ["op"], a client-chosen ["id"] (echoed verbatim in the response so
    clients may pipeline), and op-specific fields:

    {v
    {"op":"schedule","id":"1","graph":"...dfg source...","cs":4,
     "engine":"mfsa","style":2,"weights":"1/1/1/20","library":"default",
     "clock":100,"cse":true}
    {"op":"reschedule","id":"2","base":"...","graph":"...",
     "deltas":[{"kind":"changed","node":"n3"}],"cs":8}
    {"op":"lint","id":"3","spec":"diffeq"}
    {"op":"explore","id":"4","spec_text":"graph ewf\nengine mfsa mfs\n"}
    {"op":"health","id":"5"}   {"op":"stats","id":"6"}  {"op":"ping","id":"7"}
    v}

    A graph comes either inline (["graph"], DFG source) or by name
    (["spec"], a file path or builtin resolved with
    {!Batch.Manifest.load_graph}); ["inject"] plants a process fault
    ([hang] / [segv]) for containment testing. Responses echo the id and
    either [{"status":"ok","cached":BOOL,"payload":…}] or
    [{"status":"error","diag":{…},"retry_after":SECONDS?}] — the [diag]
    object round-trips a {!Diag.t}, so clients get the same typed codes
    and exit-code mapping as the CLI. *)

type graph_source =
  | Inline of string  (** DFG source text. *)
  | Named of string  (** File path or builtin example name. *)

type sched_options = {
  engine : Explore.Spec.engine;
  style : Core.Mfsa.style;
  weights : Core.Mfsa.weights;
  constr : Explore.Spec.constraint_;
  library : Explore.Spec.library_variant;
  clock : float option;
  cse : bool;
  fault : Harness.Fault.t option;
}

val default_options : sched_options
(** MFSA, style 1, equal weights, critical-path time budget, default
    library — the same defaults as a bare [synth mfsa] run. *)

type request =
  | Schedule of { source : graph_source; opts : sched_options }
  | Reschedule of {
      base : graph_source;
      edited : graph_source;
      deltas : Core.Mfs.delta list;
      cs : int;
    }
  | Lint of { source : graph_source; clock : float option }
  | Explore of { spec_text : string }
  | Health
  | Stats
  | Ping

type envelope = {
  req_id : string;
  req_deadline : float option;
      (** Client-requested wall-clock budget (seconds); the daemon clamps
          it to its own per-request ceiling. *)
  request : request;
}

val parse_request : ?max_bytes:int -> string -> (envelope, Diag.t) result
(** Parse one frame payload. Errors are typed: [batch.frame-too-large]
    over the byte ceiling, [batch.jsonl] for malformed JSON,
    [serve.bad-request] for a well-formed document that is not a valid
    request. *)

val request_op_name : request -> string

(** {2 Responses} *)

val ok_response : id:string -> ?cached:bool -> Batch.Jsonl.t -> string
val error_response : id:string -> ?retry_after:float -> Diag.t -> string

type response = {
  r_id : string;
  r_ok : bool;
  r_cached : bool;
  r_retry_after : float option;
  r_payload : Batch.Jsonl.t option;  (** Present when [r_ok]. *)
  r_diag : Diag.t option;  (** Present when not [r_ok]. *)
}

val parse_response : ?max_bytes:int -> string -> (response, Diag.t) result
