(** Typed request/response envelopes for the synthesis daemon.

    Every frame payload is one {!Batch.Jsonl} object. Requests carry an
    ["op"], a client-chosen ["id"] (echoed verbatim in the response so
    clients may pipeline), and op-specific fields:

    {v
    {"op":"schedule","id":"1","graph":"...dfg source...","cs":4,
     "engine":"mfsa","style":2,"weights":"1/1/1/20","library":"default",
     "clock":100,"cse":true}
    {"op":"reschedule","id":"2","base":"...","graph":"...",
     "deltas":[{"kind":"changed","node":"n3"}],"cs":8}
    {"op":"lint","id":"3","spec":"diffeq"}
    {"op":"explore","id":"4","spec_text":"graph ewf\nengine mfsa mfs\n"}
    {"op":"health","id":"5"}   {"op":"stats","id":"6"}  {"op":"ping","id":"7"}
    v}

    A graph comes either inline (["graph"], DFG source) or by name
    (["spec"], a file path or builtin resolved with
    {!Batch.Manifest.load_graph}); ["inject"] plants a process fault
    ([hang] / [segv]) for containment testing. Responses echo the id and
    either [{"status":"ok","cached":BOOL,"payload":…}] or
    [{"status":"error","diag":{…},"retry_after":SECONDS?}] — the [diag]
    object round-trips a {!Diag.t}, so clients get the same typed codes
    and exit-code mapping as the CLI. *)

type graph_source =
  | Inline of string  (** DFG source text. *)
  | Named of string  (** File path or builtin example name. *)

type sched_options = {
  engine : Explore.Spec.engine;
  style : Core.Mfsa.style;
  weights : Core.Mfsa.weights;
  constr : Explore.Spec.constraint_;
  library : Explore.Spec.library_variant;
  clock : float option;
  cse : bool;
  fault : Harness.Fault.t option;
}

val default_options : sched_options
(** MFSA, style 1, equal weights, critical-path time budget, default
    library — the same defaults as a bare [synth mfsa] run. *)

type request =
  | Schedule of { source : graph_source; opts : sched_options }
  | Reschedule of {
      base : graph_source;
      edited : graph_source;
      deltas : Core.Mfs.delta list;
      cs : int;
    }
  | Lint of { source : graph_source; clock : float option }
  | Explore of { spec_text : string }
  | Health
  | Stats
  | Ping

type envelope = {
  req_id : string;
  req_deadline : float option;
      (** Client-requested wall-clock budget (seconds); the daemon clamps
          it to its own per-request ceiling. *)
  request : request;
}

val parse_request : ?max_bytes:int -> string -> (envelope, Diag.t) result
(** Parse one frame payload. Errors are typed: [batch.frame-too-large]
    over the byte ceiling, [batch.jsonl] for malformed JSON,
    [serve.bad-request] for a well-formed document that is not a valid
    request. *)

val request_op_name : request -> string

(** {2 Responses} *)

val ok_response : id:string -> ?cached:bool -> Batch.Jsonl.t -> string
val error_response : id:string -> ?retry_after:float -> Diag.t -> string

type response = {
  r_id : string;
  r_ok : bool;
  r_cached : bool;
  r_retry_after : float option;
  r_payload : Batch.Jsonl.t option;  (** Present when [r_ok]. *)
  r_diag : Diag.t option;  (** Present when not [r_ok]. *)
}

val parse_response : ?max_bytes:int -> string -> (response, Diag.t) result

(** {2 Worker plane}

    Envelopes for the cluster distribution layer ({!Cluster.Dispatcher}
    / [synth worker]), carried over the same {!Frame} stream. Workers
    send [register] / [heartbeat] / [result]; the dispatcher sends
    [lease] / [revoke] and plain {!ok_response} acks. A lease names a
    job id, a per-attempt deadline and a {e fencing epoch}; a result is
    only accepted when its epoch matches the job's current lease, so a
    revoked worker's late result is a discard, never a double-write. *)

type registration = {
  g_worker : string;  (** Self-chosen worker name (unique per cluster). *)
  g_capacity : int;  (** Concurrent leases the worker will execute. *)
  g_heap_mb : int option;  (** Worker-side heap ceiling, advertised. *)
  g_libraries : string list;
      (** Cell-library variants the worker keeps warm. *)
}

type worker_msg =
  | Register of registration
  | Heartbeat of { h_worker : string; h_inflight : int }
  | Lease_result of {
      u_job : string;
      u_epoch : int;  (** Fencing epoch copied from the lease. *)
      u_attempt : int;
      u_seconds : float;
      u_verdict : Batch.Verdict.t;
    }

type cluster_msg =
  | Worker of worker_msg
  | Control of envelope  (** ping/health/stats on the dispatcher socket. *)

val parse_cluster_msg : ?max_bytes:int -> string -> (cluster_msg, Diag.t) result
(** Dispatcher-side parse: worker ops first, any other op through
    {!parse_request}. Same typed errors as {!parse_request}. *)

val register_msg :
  worker:string -> capacity:int -> ?heap_mb:int -> libraries:string list ->
  unit -> string

val heartbeat_msg : worker:string -> inflight:int -> string

val result_msg :
  job:string -> epoch:int -> attempt:int -> seconds:float ->
  Batch.Verdict.t -> string
(** Verdict fields spliced via {!Batch.Verdict.to_fields}. *)

type downstream =
  | Lease of {
      l_job : string;
      l_epoch : int;
      l_attempt : int;  (** Verdict attempt; >1 runs the degraded closure. *)
      l_deadline : float;  (** Per-attempt wall-clock budget, seconds. *)
      l_wire : Batch.Jsonl.t;  (** Serialized job (see [Cluster.Wire]). *)
    }
  | Revoke of { v_job : string; v_epoch : int }
  | Ack of response  (** Plain response frames (register ack). *)

val lease_msg :
  job:string -> epoch:int -> attempt:int -> deadline:float ->
  Batch.Jsonl.t -> string

val revoke_msg : job:string -> epoch:int -> string

val parse_downstream : ?max_bytes:int -> string -> (downstream, Diag.t) result
(** Worker-side parse of dispatcher frames. *)
