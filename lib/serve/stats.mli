(** Daemon request/verdict counters behind the [stats] endpoint. *)

type t

val create : unit -> t
(** Stamps the start time (uptime baseline). *)

val note_request : t -> string -> unit
(** Count one arrival under its op name. *)

val note_verdict : t -> Batch.Verdict.t -> unit
(** Count one pool completion by verdict class
    (done/rejected/timeout/oom/crashed). *)

val note_ok : t -> unit
(** Count one successful inline (non-pool) response. *)

val note_error : t -> unit
(** Count one typed-error response (bad request, draining, shed…). *)

val note_lib_hit : t -> unit
val note_lib_miss : t -> unit
(** Count one warm cell-library cache lookup (hit / rebuild). *)

val to_json :
  t ->
  queue_depth:int ->
  in_flight:int ->
  connections:int ->
  shed:int ->
  workers:Batch.Jsonl.t list ->
  cache:Explore.Cache.stats ->
  lib_entries:int ->
  Batch.Jsonl.t
(** One stats snapshot: uptime, per-op and per-verdict counters, load
    and cache counters with the derived hit rate, plus the
    connected-worker table ([workers], one object per registered remote
    worker — empty for a plain single-host daemon) so load generators
    and the chaos harness can assert cluster state without parsing
    logs. *)
