let header_bytes = 4

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (header_bytes + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.to_string b

(* --- Incremental decoding ---------------------------------------------- *)

type decoder = { max_frame : int; mutable pending : string }

let decoder ?(max_frame = Batch.Jsonl.default_max_document_bytes) () =
  { max_frame; pending = "" }

let has_partial d = String.length d.pending > 0

let feed d chunk =
  if chunk <> "" then d.pending <- d.pending ^ chunk;
  let rec pop acc =
    let len = String.length d.pending in
    if len < header_bytes then Ok (List.rev acc)
    else begin
      let n = Int32.to_int (String.get_int32_be d.pending 0) in
      if n < 0 || n > d.max_frame then
        Error
          (Diag.input ~code:"serve.frame-too-large"
             (Printf.sprintf "frame header announces %d bytes; the limit is %d"
                n d.max_frame))
      else if len < header_bytes + n then Ok (List.rev acc)
      else begin
        let payload = String.sub d.pending header_bytes n in
        d.pending <-
          String.sub d.pending (header_bytes + n) (len - header_bytes - n);
        pop (payload :: acc)
      end
    end
  in
  pop []

(* --- Blocking IO -------------------------------------------------------- *)

let io_error err =
  Diag.input ~code:"serve.io"
    (Printf.sprintf "socket IO failed: %s" (Unix.error_message err))

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off >= Bytes.length b then Ok ()
    else
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (err, _, _) -> Error (io_error err)
  in
  go 0

let send fd payload = write_all fd (encode payload)

let recv ?max_frame ?timeout fd =
  let d = decoder ?max_frame () in
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  let chunk = Bytes.create 65536 in
  let rec wait_readable () =
    let budget =
      match deadline with
      | None -> 1.0
      | Some dl -> dl -. Unix.gettimeofday ()
    in
    if budget <= 0. then `Timeout
    else
      match Unix.select [ fd ] [] [] (Float.min budget 1.0) with
      | [], _, _ -> wait_readable ()
      | _ :: _, _, _ -> `Readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable ()
  in
  let rec loop () =
    match wait_readable () with
    | `Timeout ->
        Error
          (Diag.input ~code:"serve.timeout"
             "timed out waiting for a response frame")
    | `Readable -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            if has_partial d then
              Error
                (Diag.input ~code:"serve.io"
                   "peer closed the connection mid-frame")
            else Ok None
        | n -> (
            match feed d (Bytes.sub_string chunk 0 n) with
            | Error e -> Error e
            | Ok (payload :: _) -> Ok (Some payload)
            | Ok [] -> loop ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error (err, _, _) -> Error (io_error err))
  in
  loop ()
