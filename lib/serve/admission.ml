type 'a t = {
  limit : int;
  q : 'a Queue.t;
  mutable shed : int;
  mutable ewma : float;  (* seconds per request *)
}

let create ~limit =
  { limit = max 1 limit; q = Queue.create (); shed = 0; ewma = 1.0 }

let depth t = Queue.length t.q
let shed_count t = t.shed
let avg_service t = t.ewma

let note_service t seconds =
  if Float.is_finite seconds && seconds >= 0. then
    t.ewma <- (0.8 *. t.ewma) +. (0.2 *. seconds)

let try_admit t ~in_flight ~workers x =
  if Queue.length t.q >= t.limit then begin
    t.shed <- t.shed + 1;
    let eta =
      float_of_int (Queue.length t.q + in_flight + 1)
      *. t.ewma
      /. float_of_int (max 1 workers)
    in
    `Shed (Float.max 0.5 (Float.min 60. eta))
  end
  else begin
    Queue.add x t.q;
    `Admitted
  end

let pop t = Queue.take_opt t.q
