module Jsonl = Batch.Jsonl
module Pool = Batch.Pool
module Journal = Batch.Journal
module Cache = Explore.Cache
module Lattice = Explore.Lattice
module P = Protocol

type config = {
  socket : string;
  tcp_port : int option;
  workers : int;
  deadline : float;
  heap_words : int option;
  queue_limit : int;
  max_conns : int;
  max_frame : int;
  read_timeout : float;
  drain_timeout : float;
  cache_path : string option;
  cache_max : int option;
  journal_path : string option;
  log : string -> unit;
}

let default ~socket =
  {
    socket;
    tcp_port = None;
    workers = 4;
    deadline = 30.;
    heap_words = None;
    queue_limit = 64;
    max_conns = 128;
    max_frame = Jsonl.default_max_document_bytes;
    read_timeout = 10.;
    drain_timeout = 5.;
    cache_path = None;
    cache_max = None;
    journal_path = None;
    log = (fun (_ : string) -> ());
  }

(* Single-domain process: a ref written from the signal handler and
   polled by the loop, same discipline as Batch.Pool. *)
let drain_requested = ref false

(* --- Connections -------------------------------------------------------- *)

type conn = {
  c_fd : Unix.file_descr;
  c_dec : Frame.decoder;
  mutable c_out : string;  (* bytes accepted but not yet written *)
  mutable c_last_read : float;
  mutable c_eof : bool;  (* peer half-closed; finish writes, then close *)
  mutable c_outstanding : int;  (* responses owed by in-flight work *)
  mutable c_alive : bool;
}

let close_conn c =
  if c.c_alive then begin
    c.c_alive <- false;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

(* Nonblocking flush; a vanished peer (EPIPE, ECONNRESET) just closes the
   connection — SIGPIPE is ignored process-wide. *)
let flush_conn c =
  if c.c_alive && c.c_out <> "" then begin
    let b = Bytes.unsafe_of_string c.c_out in
    let rec go off =
      if off >= Bytes.length b then off
      else
        match Unix.write c.c_fd b off (Bytes.length b - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            off
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (_, _, _) ->
            close_conn c;
            Bytes.length b
    in
    let off = go 0 in
    if c.c_alive then
      c.c_out <-
        (if off >= String.length c.c_out then ""
         else String.sub c.c_out off (String.length c.c_out - off))
  end

(* --- Daemon state ------------------------------------------------------- *)

type waiter = { w_conn : conn; w_id : string }

type cache_as = No_cache | Cache_point of string  (* entry descr *)

type inflight = { mutable waiters : waiter list; cache_as : cache_as }

type state = {
  cfg : config;
  pool : Pool.t;
  adm : (Pool.job * float) Admission.t;
  cache : Cache.t;
  cache_writer : Cache.writer option;
  journal : Journal.writer option;
  stats : Stats.t;
  mutable conns : conn list;
  inflight : (string, inflight) Hashtbl.t;  (* job id -> *)
  graphs : (string, Dfg.Graph.t) Hashtbl.t;  (* parsed-DFG memo *)
  libs : (string, Celllib.Library.t) Hashtbl.t;  (* warm cell-library memo *)
  mutable draining : bool;
  mutable drain_at : float;
}

let respond st c payload =
  if c.c_alive then begin
    c.c_out <- c.c_out ^ Frame.encode payload;
    flush_conn c
  end;
  ignore st

let respond_ok st c s =
  Stats.note_ok st.stats;
  respond st c s

let respond_error st c s =
  Stats.note_error st.stats;
  respond st c s

(* --- Graph resolution --------------------------------------------------- *)

let resolve_graph st source ~cse =
  let tag =
    (match source with
    | P.Inline s -> "inline|" ^ s
    | P.Named n -> "named|" ^ n)
    ^ if cse then "|cse" else ""
  in
  let memo_key = Batch.Jobs.digest tag in
  match Hashtbl.find_opt st.graphs memo_key with
  | Some g -> Ok g
  | None ->
      let parsed =
        match source with
        | P.Inline s -> Dfg.Parser.parse s
        | P.Named n -> Batch.Manifest.load_graph n
      in
      let parsed =
        if cse then
          Result.bind parsed (fun g ->
              Result.map_error
                (Diag.of_msg Diag.Input ~code:"cse.invalid-graph")
                (Dfg.Cse.eliminate g))
        else parsed
      in
      Result.map
        (fun g ->
          if Hashtbl.length st.graphs > 128 then Hashtbl.reset st.graphs;
          Hashtbl.replace st.graphs memo_key g;
          g)
        parsed

(* Warm cell-library cache: building the per-graph NCR library walks the
   whole graph, and a daemon serves the same few graphs over and over.
   Keyed by graph identity plus the library variant so two-cycle /
   pipelined libraries get their own slots. *)
let library_for st graph variant =
  let key =
    Batch.Jobs.digest
      (Dfg.Parser.to_source graph ^ "|" ^ Explore.Spec.library_name variant)
  in
  match Hashtbl.find_opt st.libs key with
  | Some lib ->
      Stats.note_lib_hit st.stats;
      lib
  | None ->
      Stats.note_lib_miss st.stats;
      let lib =
        match variant with
        | Explore.Spec.Default -> Celllib.Ncr.for_graph graph
        | Explore.Spec.Two_cycle ->
            Celllib.Ncr.two_cycle_multiplier (Celllib.Ncr.for_graph graph)
        | Explore.Spec.Pipelined ->
            Celllib.Ncr.pipelined_multiplier (Celllib.Ncr.for_graph graph)
      in
      if Hashtbl.length st.libs > 128 then Hashtbl.reset st.libs;
      Hashtbl.replace st.libs key lib;
      lib

(* --- Verdicts to responses ---------------------------------------------- *)

let verdict_response ~id = function
  | Batch.Verdict.Done payload -> (
      match Jsonl.parse payload with
      | Ok doc -> P.ok_response ~id doc
      | Error _ ->
          P.error_response ~id
            (Diag.internal ~code:"serve.bad-payload"
               "worker returned an unparsable payload"))
  | Batch.Verdict.Rejected d -> P.error_response ~id d
  | Batch.Verdict.Timeout ->
      P.error_response ~id
        (Diag.partial ~code:"serve.deadline"
           "request exceeded its wall-clock deadline and was killed")
  | Batch.Verdict.Oom ->
      P.error_response ~id
        (Diag.partial ~code:"serve.heap-ceiling"
           "request exceeded the worker heap ceiling")
  | Batch.Verdict.Crashed _ as v ->
      P.error_response ~id
        (Diag.internal ~code:"serve.worker-crashed"
           ("worker " ^ Batch.Verdict.describe v))

(* --- Request handling --------------------------------------------------- *)

let cached_entry_response ~id (e : Cache.entry) =
  match e.Cache.outcome with
  | Cache.Metrics m -> P.ok_response ~id ~cached:true (Lattice.metrics_to_json m)
  | Cache.Infeasible code ->
      P.error_response ~id
        (Diag.of_msg Diag.Infeasible ~code "point is infeasible (cached)")

(* Enqueue one pool-bound request, coalescing on the job id: a second
   request for work already queued or running just joins its waiters. *)
let enqueue st conn ~id ~cache_as ~deadline job =
  let w = { w_conn = conn; w_id = id } in
  match Hashtbl.find_opt st.inflight job.Pool.id with
  | Some infl ->
      infl.waiters <- w :: infl.waiters;
      conn.c_outstanding <- conn.c_outstanding + 1
  | None ->
      if st.draining then
        respond_error st conn
          (P.error_response ~id
             (Diag.unavailable ~code:"serve.draining"
                "daemon is draining; retry against a fresh instance"))
      else begin
        match
          Admission.try_admit st.adm
            ~in_flight:(Pool.in_flight st.pool)
            ~workers:st.cfg.workers (job, deadline)
        with
        | `Shed retry_after ->
            respond_error st conn
              (P.error_response ~id ~retry_after
                 (Diag.unavailable ~code:"serve.overloaded"
                    (Printf.sprintf
                       "queue is full (%d deep); retry in ~%.1fs"
                       (Admission.depth st.adm) retry_after)))
        | `Admitted ->
            Hashtbl.replace st.inflight job.Pool.id
              { waiters = [ w ]; cache_as };
            conn.c_outstanding <- conn.c_outstanding + 1;
            Cache.pin st.cache job.Pool.id
      end

let effective_deadline st (env : P.envelope) =
  match env.P.req_deadline with
  | Some d -> Float.min d st.cfg.deadline
  | None -> st.cfg.deadline

let handle_lint st conn ~id source clock =
  match resolve_graph st source ~cse:false with
  | Error d -> respond_error st conn (P.error_response ~id d)
  | Ok graph ->
      let lib = library_for st graph Explore.Spec.Default in
      let config = Core.Config.of_library lib in
      let config =
        match clock with
        | None -> config
        | Some clk ->
            {
              config with
              Core.Config.chaining =
                Some
                  {
                    Core.Config.prop_delay = lib.Celllib.Library.prop_delay;
                    clock = clk;
                  };
            }
      in
      let findings = Analysis.Dfg_lint.check ~config graph in
      let errors = Analysis.Finding.errors findings in
      let warnings = Analysis.Finding.warnings findings in
      let finding_json severity (f : Analysis.Finding.t) =
        Jsonl.Obj
          [
            ("severity", Jsonl.String severity);
            ("code", Jsonl.String f.Analysis.Finding.diag.Diag.code);
            ("message", Jsonl.String f.Analysis.Finding.diag.Diag.message);
            ( "nodes",
              Jsonl.List
                (List.map (fun n -> Jsonl.String n) f.Analysis.Finding.nodes)
            );
          ]
      in
      respond_ok st conn
        (P.ok_response ~id
           (Jsonl.Obj
              [
                ("errors", Jsonl.Int (List.length errors));
                ("warnings", Jsonl.Int (List.length warnings));
                ( "findings",
                  Jsonl.List
                    (List.map (finding_json "error") errors
                    @ List.map (finding_json "warning") warnings) );
              ]))

let reschedule_job ~job_id ~base ~edited ~deltas ~cs =
  let ( let* ) = Result.bind in
  Batch.Jobs.generic ~id:job_id ~seed:0 ~descr:"reschedule" (fun () ->
      let* base_g = Dfg.Parser.parse base in
      let* edited_g = Dfg.Parser.parse edited in
      let spec = Core.Mfs.Time { cs } in
      let* old = Core.Mfs.run base_g spec in
      let* out, stats = Core.Mfs.reschedule ~old edited_g deltas spec in
      Ok
        (Jsonl.Obj
           [
             ("status", Jsonl.String "ok");
             ( "csteps",
               Jsonl.Int out.Core.Mfs.schedule.Core.Schedule.cs );
             ("replaced", Jsonl.Int stats.Core.Mfs.replaced);
             ("kept", Jsonl.Int stats.Core.Mfs.kept);
             ("fell_back", Jsonl.Bool stats.Core.Mfs.fell_back);
             ("restarts", Jsonl.Int out.Core.Mfs.restarts);
           ]))

let explore_job ~job_id ~spec_text ~cache_path ~deadline =
  let ( let* ) = Result.bind in
  Batch.Jobs.generic ~id:job_id ~seed:0 ~descr:"explore" (fun () ->
      let* spec = Explore.Spec.parse ~file:"<request>" spec_text in
      let* o = Explore.Engine.run ~workers:1 ?cache:cache_path ~deadline spec in
      let front = Explore.Engine.front o in
      Ok
        (Jsonl.Obj
           [
             ("status", Jsonl.String "ok");
             ( "points",
               Jsonl.Int
                 (o.Explore.Engine.seed_points
                 + o.Explore.Engine.refined_points) );
             ("evaluated", Jsonl.Int o.Explore.Engine.fresh);
             ("cache_hits", Jsonl.Int o.Explore.Engine.cache_hits);
             ("front", Jsonl.Int (List.length front));
             ("interrupted", Jsonl.Bool o.Explore.Engine.interrupted);
           ]))

let handle_request st conn (env : P.envelope) =
  let id = env.P.req_id in
  Stats.note_request st.stats (P.request_op_name env.P.request);
  match env.P.request with
  | P.Ping ->
      respond_ok st conn (P.ok_response ~id (Jsonl.Obj [ ("pong", Jsonl.Bool true) ]))
  | P.Health ->
      let c = Cache.stats st.cache in
      respond_ok st conn
        (P.ok_response ~id
           (Jsonl.Obj
              [
                ( "status",
                  Jsonl.String (if st.draining then "draining" else "ok") );
                ("pid", Jsonl.Int (Unix.getpid ()));
                ("queue_depth", Jsonl.Int (Admission.depth st.adm));
                ("in_flight", Jsonl.Int (Pool.in_flight st.pool));
                ("connections", Jsonl.Int (List.length st.conns));
                ("workers", Jsonl.Int 0);
                ( "cache",
                  Jsonl.Obj
                    [
                      ("hits", Jsonl.Int c.Cache.hits);
                      ("misses", Jsonl.Int c.Cache.misses);
                      ("evictions", Jsonl.Int c.Cache.evictions);
                    ] );
              ]))
  | P.Stats ->
      respond_ok st conn
        (P.ok_response ~id
           (Stats.to_json st.stats
              ~queue_depth:(Admission.depth st.adm)
              ~in_flight:(Pool.in_flight st.pool)
              ~connections:(List.length st.conns)
              ~shed:(Admission.shed_count st.adm)
              ~workers:[]
              ~cache:(Cache.stats st.cache)
              ~lib_entries:(Hashtbl.length st.libs)))
  | P.Lint { source; clock } -> handle_lint st conn ~id source clock
  | P.Schedule { source; opts } -> (
      match resolve_graph st source ~cse:opts.P.cse with
      | Error d -> respond_error st conn (P.error_response ~id d)
      | Ok graph -> (
          let point =
            {
              Lattice.index = 0;
              engine = opts.P.engine;
              style = opts.P.style;
              weights = opts.P.weights;
              constr = opts.P.constr;
              library = opts.P.library;
              widths = false;
              ports = None;
              clock = opts.P.clock;
              cse = opts.P.cse;
              fault = opts.P.fault;
            }
          in
          let key = Lattice.key ~graph point in
          match Cache.find st.cache key with
          | Some entry ->
              Stats.note_ok st.stats;
              respond st conn (cached_entry_response ~id entry)
          | None ->
              enqueue st conn ~id
                ~cache_as:(Cache_point (Lattice.descr point))
                ~deadline:(effective_deadline st env)
                (Lattice.job ~graph point)))
  | P.Reschedule { base; edited; deltas; cs } ->
      let src = function P.Inline s -> s | P.Named n -> "named|" ^ n in
      let delta_name = function
        | Core.Mfs.Op_added n -> "a:" ^ n
        | Core.Mfs.Op_removed n -> "r:" ^ n
        | Core.Mfs.Op_changed n -> "c:" ^ n
      in
      let job_id =
        Batch.Jobs.digest
          (String.concat "|"
             ([ "reschedule"; src base; src edited; string_of_int cs ]
             @ List.map delta_name deltas))
      in
      enqueue st conn ~id ~cache_as:No_cache
        ~deadline:(effective_deadline st env)
        (reschedule_job ~job_id ~base:(src base) ~edited:(src edited) ~deltas
           ~cs)
  | P.Explore { spec_text } ->
      let job_id = Batch.Jobs.digest ("explore-request|" ^ spec_text) in
      enqueue st conn ~id ~cache_as:No_cache
        ~deadline:(effective_deadline st env)
        (explore_job ~job_id ~spec_text ~cache_path:st.cfg.cache_path
           ~deadline:st.cfg.deadline)

(* --- Completions -------------------------------------------------------- *)

let journal_completion st (c : Pool.completion) =
  Option.iter
    (fun w ->
      let r =
        {
          Journal.id = c.Pool.c_job.Pool.id;
          seed = c.Pool.c_job.Pool.seed;
          descr = c.Pool.c_job.Pool.descr;
          attempt = c.Pool.c_attempt;
          final = true;
          verdict = c.Pool.c_verdict;
          seconds = c.Pool.c_seconds;
        }
      in
      match Journal.append w r with
      | Ok () -> ()
      | Error d -> st.cfg.log (Diag.to_string d))
    st.journal

let cache_completion st ~key ~cache_as verdict =
  match cache_as with
  | No_cache -> ()
  | Cache_point descr -> (
      let record entry =
        Cache.insert st.cache entry;
        Option.iter
          (fun w ->
            match Cache.append w entry with
            | Ok () -> ()
            | Error d -> st.cfg.log (Diag.to_string d))
          st.cache_writer
      in
      match verdict with
      | Batch.Verdict.Done payload -> (
          match
            Result.bind (Jsonl.parse payload) Lattice.metrics_of_json
          with
          | Ok m ->
              record { Cache.key; descr; outcome = Cache.Metrics m }
          | Error _ -> ())
      | Batch.Verdict.Rejected d
        when d.Diag.category = Diag.Infeasible
             || d.Diag.category = Diag.Input ->
          record
            { Cache.key; descr; outcome = Cache.Infeasible d.Diag.code }
      | _ -> ())

let complete st (c : Pool.completion) =
  let key = c.Pool.c_job.Pool.id in
  Stats.note_verdict st.stats c.Pool.c_verdict;
  Admission.note_service st.adm c.Pool.c_seconds;
  journal_completion st c;
  match Hashtbl.find_opt st.inflight key with
  | None -> ()  (* waiters already answered (drain) *)
  | Some infl ->
      Hashtbl.remove st.inflight key;
      cache_completion st ~key ~cache_as:infl.cache_as c.Pool.c_verdict;
      List.iter
        (fun w ->
          w.w_conn.c_outstanding <- w.w_conn.c_outstanding - 1;
          let resp = verdict_response ~id:w.w_id c.Pool.c_verdict in
          (match c.Pool.c_verdict with
          | Batch.Verdict.Done _ -> Stats.note_ok st.stats
          | _ -> Stats.note_error st.stats);
          respond st w.w_conn resp)
        (List.rev infl.waiters);
      Cache.unpin st.cache key

(* Answer every outstanding waiter with a typed diagnostic (drain
   timeout, shutdown) and forget the work. *)
let fail_all_inflight st d =
  Hashtbl.iter
    (fun key infl ->
      List.iter
        (fun w ->
          w.w_conn.c_outstanding <- w.w_conn.c_outstanding - 1;
          respond_error st w.w_conn (P.error_response ~id:w.w_id d))
        (List.rev infl.waiters);
      Cache.unpin st.cache key)
    st.inflight;
  Hashtbl.reset st.inflight;
  let rec drop () =
    match Admission.pop st.adm with Some _ -> drop () | None -> ()
  in
  drop ()

(* --- Listeners ---------------------------------------------------------- *)

let bind_error what err =
  Diag.input ~code:"serve.bind"
    (Printf.sprintf "cannot listen on %s: %s" what (Unix.error_message err))

let unix_listener path =
  match
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (err, _, _) -> Error (bind_error path err)

let tcp_listener port =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.set_nonblock fd;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    fd
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
      Error (bind_error (Printf.sprintf "127.0.0.1:%d" port) err)

(* --- Crash-only store loading ------------------------------------------- *)

let load_cache cfg =
  match cfg.cache_path with
  | None -> Cache.empty ?max_entries:cfg.cache_max ()
  | Some path -> (
      match Cache.load ?max_entries:cfg.cache_max path with
      | Ok c ->
          cfg.log
            (Printf.sprintf "cache: %d entr%s warm from %s" (Cache.size c)
               (if Cache.size c = 1 then "y" else "ies")
               path);
          c
      | Error d ->
          (* Crash-only: a corrupt store is moved aside, never fatal. *)
          let aside = path ^ ".corrupt" in
          (try Sys.rename path aside with Sys_error _ -> ());
          cfg.log (Diag.to_string d);
          cfg.log
            (Printf.sprintf "cache: corrupt store moved to %s; starting cold"
               aside);
          Cache.empty ?max_entries:cfg.cache_max ())

(* --- Main loop ----------------------------------------------------------- *)

let run ?(ready = fun () -> ()) cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  drain_requested := false;
  let handle = Sys.Signal_handle (fun _ -> drain_requested := true) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle;
  let ( let* ) = Result.bind in
  let* unix_fd = unix_listener cfg.socket in
  let* tcp_fd =
    match cfg.tcp_port with
    | None -> Ok None
    | Some port -> Result.map Option.some (tcp_listener port)
  in
  let st =
    {
      cfg;
      pool = Pool.create ~workers:cfg.workers ?heap_words:cfg.heap_words ();
      adm = Admission.create ~limit:cfg.queue_limit;
      cache = load_cache cfg;
      cache_writer = Option.map Cache.open_writer cfg.cache_path;
      journal = Option.map Journal.open_writer cfg.journal_path;
      stats = Stats.create ();
      conns = [];
      inflight = Hashtbl.create 32;
      graphs = Hashtbl.create 32;
      libs = Hashtbl.create 32;
      draining = false;
      drain_at = 0.;
    }
  in
  let listeners = ref (unix_fd :: Option.to_list tcp_fd) in
  cfg.log
    (Printf.sprintf "listening on %s%s (workers=%d deadline=%.0fs queue=%d)"
       cfg.socket
       (match cfg.tcp_port with
       | None -> ""
       | Some p -> Printf.sprintf " and 127.0.0.1:%d" p)
       cfg.workers cfg.deadline cfg.queue_limit);
  ready ();
  let chunk = Bytes.create 65536 in
  let overloaded_conn fd =
    (* Accepted over max_conns: one typed frame, then close, so the
       accept queue never silently starves. Best effort — the frame is
       small enough to fit the socket buffer. *)
    ignore
      (Frame.send fd
         (P.error_response ~id:""
            (Diag.unavailable ~code:"serve.overloaded"
               "connection limit reached; retry shortly")));
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let accept_ready ready_fds =
    List.iter
      (fun lfd ->
        if List.memq lfd ready_fds then begin
          let rec accept_loop () =
            match Unix.accept lfd with
            | fd, _ ->
                Unix.set_nonblock fd;
                if List.length st.conns >= cfg.max_conns then
                  overloaded_conn fd
                else
                  st.conns <-
                    {
                      c_fd = fd;
                      c_dec = Frame.decoder ~max_frame:cfg.max_frame ();
                      c_out = "";
                      c_last_read = Unix.gettimeofday ();
                      c_eof = false;
                      c_outstanding = 0;
                      c_alive = true;
                    }
                    :: st.conns;
                accept_loop ()
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
              ->
                ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          in
          accept_loop ()
        end)
      !listeners
  in
  let read_conn c =
    let rec go () =
      match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          (* Half-close: the peer is done sending but may still be
             reading. Keep the connection until owed responses and
             buffered bytes are out. *)
          c.c_eof <- true;
          if Frame.has_partial c.c_dec then close_conn c
          else if c.c_outstanding = 0 && c.c_out = "" then close_conn c
      | n -> (
          c.c_last_read <- Unix.gettimeofday ();
          match Frame.feed c.c_dec (Bytes.sub_string chunk 0 n) with
          | Error d ->
              (* Oversized frame: the stream cannot re-sync. One typed
                 response, flush, close. *)
              respond_error st c (P.error_response ~id:"" d);
              flush_conn c;
              close_conn c
          | Ok frames ->
              List.iter
                (fun payload ->
                  if c.c_alive then
                    match
                      P.parse_request ~max_bytes:cfg.max_frame payload
                    with
                    | Error d ->
                        respond_error st c (P.error_response ~id:"" d)
                    | Ok env -> handle_request st c env)
                frames;
              if c.c_alive then go ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> close_conn c
    in
    if c.c_alive && not c.c_eof then go ()
  in
  let dispatch () =
    let rec go () =
      if Pool.load st.pool < cfg.workers then
        match Admission.pop st.adm with
        | None -> ()
        | Some (job, deadline) ->
            Pool.submit st.pool ~deadline job;
            go ()
    in
    go ()
  in
  let enforce_read_timeouts now =
    List.iter
      (fun c ->
        if
          c.c_alive
          && (not c.c_eof)
          && Frame.has_partial c.c_dec
          && now -. c.c_last_read > cfg.read_timeout
        then begin
          respond_error st c
            (P.error_response ~id:""
               (Diag.input ~code:"serve.read-timeout"
                  (Printf.sprintf
                     "no progress on a partial frame for %.0fs" cfg.read_timeout)));
          flush_conn c;
          close_conn c
        end)
      st.conns
  in
  let prune_conns () =
    List.iter
      (fun c ->
        if c.c_alive && c.c_eof && c.c_outstanding = 0 && c.c_out = "" then
          close_conn c)
      st.conns;
    st.conns <- List.filter (fun c -> c.c_alive) st.conns
  in
  let rec loop () =
    if !drain_requested && not st.draining then begin
      st.draining <- true;
      st.drain_at <- Unix.gettimeofday () +. cfg.drain_timeout;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !listeners;
      listeners := [];
      cfg.log "drain: stopped accepting; finishing in-flight work"
    end;
    let finished =
      st.draining
      && Admission.depth st.adm = 0
      && Pool.load st.pool = 0
      && List.for_all (fun c -> c.c_out = "") st.conns
    in
    if not finished then begin
      let rfds =
        !listeners
        @ List.filter_map
            (fun c ->
              if c.c_alive && not c.c_eof then Some c.c_fd else None)
            st.conns
        @ Pool.worker_fds st.pool
      in
      let wfds =
        List.filter_map
          (fun c -> if c.c_alive && c.c_out <> "" then Some c.c_fd else None)
          st.conns
      in
      let ready_r, ready_w =
        match Unix.select rfds wfds [] 0.05 with
        | r, w, _ -> (r, w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      in
      accept_ready ready_r;
      List.iter
        (fun c -> if List.memq c.c_fd ready_r then read_conn c)
        st.conns;
      dispatch ();
      List.iter (complete st) (Pool.step st.pool);
      List.iter
        (fun c -> if List.memq c.c_fd ready_w then flush_conn c)
        st.conns;
      let now = Unix.gettimeofday () in
      enforce_read_timeouts now;
      if st.draining && now > st.drain_at && Pool.load st.pool > 0 then begin
        cfg.log "drain: timeout; killing in-flight work";
        List.iter (complete st) (Pool.kill_all st.pool);
        fail_all_inflight st
          (Diag.unavailable ~code:"serve.draining"
             "daemon shut down before this request completed")
      end;
      prune_conns ();
      loop ()
    end
  in
  loop ();
  (* Drained: flush what remains (bounded), then tear down. *)
  let flush_deadline = Unix.gettimeofday () +. 1.0 in
  let rec final_flush () =
    let pending =
      List.filter (fun c -> c.c_alive && c.c_out <> "") st.conns
    in
    if pending <> [] && Unix.gettimeofday () < flush_deadline then begin
      (match
         Unix.select [] (List.map (fun c -> c.c_fd) pending) [] 0.1
       with
      | _, ready, _ ->
          List.iter
            (fun c -> if List.memq c.c_fd ready then flush_conn c)
            pending
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      final_flush ()
    end
  in
  final_flush ();
  List.iter close_conn st.conns;
  Option.iter Cache.close st.cache_writer;
  Option.iter Journal.close st.journal;
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  cfg.log "drain: complete";
  Ok ()
