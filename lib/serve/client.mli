(** Blocking client for the synthesis daemon — the CLI's, the load
    generator's and the test suite's side of the wire. *)

type t

val connect :
  ?timeout:float -> ?backoff:Batch.Retry.policy -> string ->
  (t, Diag.t) result
(** Connect to a Unix-domain socket path, retrying under the shared
    decorrelated-jitter [backoff] policy (default {!Batch.Retry.backoff}:
    4 attempts, 50ms–2s delays) until the policy or [timeout] (default
    5s) is exhausted. The typed [serve.connect] failure reports how many
    attempts were made. *)

val connect_tcp :
  ?timeout:float -> ?backoff:Batch.Retry.policy -> port:int -> unit ->
  (t, Diag.t) result
(** Connect to 127.0.0.1:[port], same retry discipline as {!connect}. *)

val fd : t -> Unix.file_descr
(** For fault injection in tests (half-close via [Unix.shutdown], raw
    writes). *)

val close : t -> unit

val build : op:string -> id:string -> (string * Batch.Jsonl.t) list -> string
(** Request payload: [{"op":…,"id":…,FIELDS}]. *)

val send : t -> string -> (unit, Diag.t) result
(** Send one framed payload. *)

val recv :
  ?max_frame:int -> ?timeout:float -> t ->
  (Protocol.response option, Diag.t) result
(** Next response frame; [Ok None] on clean EOF. [timeout] defaults to
    30s. *)

val request :
  ?timeout:float -> t -> string -> (Protocol.response, Diag.t) result
(** [send] then [recv]; EOF before a response is a [serve.io] error. *)
