(** Bounded admission queue with load shedding.

    The daemon's only queue: pool slots are fed from here, and arrivals
    beyond [limit] are {e shed} — answered immediately with a typed
    [serve.overloaded] rejection carrying a retry-after hint — instead
    of buffered without bound. The hint is Little's-law arithmetic over
    an exponentially weighted service-time average: how long the work
    already in the system should take to clear at current throughput. *)

type 'a t

val create : limit:int -> 'a t
(** [limit] < 1 is clamped to 1. *)

val try_admit : 'a t -> in_flight:int -> workers:int -> 'a -> [ `Admitted | `Shed of float ]
(** Enqueue, or return the retry-after hint (seconds, clamped to
    [0.5, 60]) and bump the shed counter. *)

val pop : 'a t -> 'a option
val depth : 'a t -> int
val shed_count : 'a t -> int

val note_service : 'a t -> float -> unit
(** Feed one completed request's wall-clock into the EWMA. *)

val avg_service : 'a t -> float
