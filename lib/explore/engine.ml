type source = Evaluated | Cached

type status =
  | Solved of Lattice.metrics
  | Infeasible of string
  | Failed of string

type eval = {
  e_point : Lattice.point;
  e_key : string;
  e_status : status;
  e_source : source;
}

type outcome = {
  evals : eval list;
  seed_points : int;
  refined_points : int;
  cache_hits : int;
  fresh : int;
  resumed : int;
  interrupted : bool;
}

let solved o =
  List.filter_map
    (fun e ->
      match e.e_status with
      | Solved m -> Some (e.e_point, m)
      | Infeasible _ | Failed _ -> None)
    o.evals

let failures o =
  List.filter_map
    (fun e ->
      match e.e_status with
      | Failed why -> Some (e.e_point, why)
      | Solved _ | Infeasible _ -> None)
    o.evals

let pareto pairs =
  Pareto.of_list ~objectives:(fun (_, m) -> Lattice.objectives m) pairs

let front o = Pareto.members (pareto (solved o))

let front_indices o =
  let idx = Hashtbl.create 16 in
  List.iter
    (fun ((p : Lattice.point), _) -> Hashtbl.replace idx p.Lattice.index ())
    (front o);
  idx

(* --- Running ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let status_of_record (r : Batch.Journal.record) =
  match r.Batch.Journal.verdict with
  | Batch.Verdict.Done payload -> (
      match
        Result.bind (Batch.Jsonl.parse payload) Lattice.metrics_of_json
      with
      | Ok m -> Solved m
      | Error _ -> Failed "unparsable worker payload")
  | Batch.Verdict.Rejected d -> (
      match d.Diag.category with
      | Diag.Infeasible | Diag.Input -> Infeasible d.Diag.code
      | Diag.Usage | Diag.Internal | Diag.Partial | Diag.Unavailable ->
          Failed d.Diag.code)
  | Batch.Verdict.Timeout -> Failed "timeout"
  | Batch.Verdict.Oom -> Failed "oom"
  | Batch.Verdict.Crashed _ as v -> Failed (Batch.Verdict.describe v)

type runner =
  deadline:float ->
  (Batch.Pool.job * Batch.Jsonl.t) list ->
  (Batch.Pool.outcome, Diag.t) result

(* Evaluate one batch of points: cache hits short-circuit, the rest run
   through the runner — the local supervised pool by default, a cluster
   dispatcher when the caller injects one; completed verdicts (solved or
   infeasible — never failures) are appended to the cache. Miss keys are
   pinned in the cache for the duration of the run so a concurrent
   eviction scan (shared store, other hosts' results arriving) cannot
   drop an entry the batch is about to need. *)
let evaluate_batch ~graph ~store ~writer ~runner ~deadline ~log points =
  let keyed =
    List.map
      (fun p ->
        let k = Lattice.key ~graph p in
        (p, k, Cache.find store k))
      points
  in
  let hits, misses =
    List.partition (fun (_, _, hit) -> hit <> None) keyed
  in
  let misses = List.map (fun (p, k, _) -> (p, k)) misses in
  let hit_evals =
    List.map
      (fun (p, k, hit) ->
        let entry = Option.get hit in
        let status =
          match entry.Cache.outcome with
          | Cache.Metrics m -> Solved m
          | Cache.Infeasible code -> Infeasible code
        in
        { e_point = p; e_key = k; e_status = status; e_source = Cached })
      hits
  in
  let* miss_evals, fresh, resumed, interrupted =
    if misses = [] then Ok ([], 0, 0, false)
    else begin
      let jobs =
        List.map
          (fun (p, _) -> (Lattice.job ~graph p, Lattice.wire ~graph p))
          misses
      in
      List.iter (fun (_, k) -> Cache.pin store k) misses;
      let run = runner ~deadline jobs in
      List.iter (fun (_, k) -> Cache.unpin store k) misses;
      let* o = run in
      let by_id = Hashtbl.create 16 in
      List.iter
        (fun (r : Batch.Journal.record) ->
          Hashtbl.replace by_id r.Batch.Journal.id r)
        o.Batch.Pool.records;
      (* Keep memory and disk in step; a dead cache sink only costs cold
         lookups next run, so log and continue. *)
      let record_entry e =
        Cache.insert store e;
        Option.iter
          (fun w ->
            match Cache.append w e with
            | Ok () -> ()
            | Error d -> log (Diag.to_string d))
          writer
      in
      let evals =
        List.filter_map
          (fun (p, k) ->
            match Hashtbl.find_opt by_id k with
            | None -> None (* in flight at an interrupt *)
            | Some r ->
                let status = status_of_record r in
                (match status with
                | Solved m ->
                    record_entry
                      { Cache.key = k; descr = Lattice.descr p;
                        outcome = Cache.Metrics m }
                | Infeasible code ->
                    record_entry
                      { Cache.key = k; descr = Lattice.descr p;
                        outcome = Cache.Infeasible code }
                | Failed _ -> ());
                Some { e_point = p; e_key = k; e_status = status;
                       e_source = Evaluated })
          misses
      in
      Ok
        ( evals,
          List.length o.Batch.Pool.records - o.Batch.Pool.resumed,
          o.Batch.Pool.resumed,
          o.Batch.Pool.interrupted )
    end
  in
  Ok (hit_evals @ miss_evals, List.length hits, fresh, resumed, interrupted)

let run ?(workers = 1) ?cache ?journal ?(resume = false) ?(deadline = 60.)
    ?budget ?(log = ignore) ?runner (spec : Spec.t) =
  let runner =
    match runner with
    | Some r -> r
    | None ->
        fun ~deadline jobs ->
          Batch.Pool.run ~workers ~retry:Batch.Retry.none ?journal ~resume
            ~log ~deadline (List.map fst jobs)
  in
  let* g0 = Batch.Manifest.load_graph spec.Spec.graph in
  let* graph =
    if spec.Spec.cse then
      Result.map_error
        (Diag.of_msg Diag.Input ~code:"cse.invalid-graph")
        (Dfg.Cse.eliminate g0)
    else Ok g0
  in
  let seed_points = Lattice.expand spec in
  let* store =
    match cache with None -> Ok (Cache.empty ()) | Some p -> Cache.load p
  in
  let writer = Option.map Cache.open_writer cache in
  let finish r =
    Option.iter Cache.close writer;
    r
  in
  let batch points =
    evaluate_batch ~graph ~store ~writer ~runner ~deadline ~log points
  in
  match
    let* evals, hits, fresh, resumed, interrupted = batch seed_points in
    let acc =
      {
        evals;
        seed_points = List.length seed_points;
        refined_points = 0;
        cache_hits = hits;
        fresh;
        resumed;
        interrupted;
      }
    in
    (* Adaptive refinement: bisect the weight axes between adjacent front
       points until the budget is spent or a round proposes nothing new. *)
    let budget = Option.value budget ~default:spec.Spec.budget in
    let rec refine acc budget next_index =
      if budget <= 0 || acc.interrupted then Ok acc
      else begin
        let seen_keys = Hashtbl.create 64 in
        List.iter (fun e -> Hashtbl.replace seen_keys e.e_key ()) acc.evals;
        let front = Pareto.members (pareto (solved acc)) in
        let cands =
          Refine.bisect ~front
            ~seen:(Hashtbl.mem seen_keys)
            ~graph ~next_index ~budget
        in
        if cands = [] then Ok acc
        else begin
          log
            (Printf.sprintf "refine: %d candidate(s), budget %d"
               (List.length cands) budget);
          let* evals, hits, fresh, resumed, interrupted = batch cands in
          refine
            {
              acc with
              evals = acc.evals @ evals;
              refined_points = acc.refined_points + List.length cands;
              cache_hits = acc.cache_hits + hits;
              fresh = acc.fresh + fresh;
              resumed = acc.resumed + resumed;
              interrupted;
            }
            (budget - List.length cands)
            (next_index + List.length cands)
        end
      end
    in
    refine acc budget (List.length seed_points)
  with
  | r -> finish r
  | exception e ->
      ignore (finish (Ok ()));
      raise e
