type outcome = Metrics of Lattice.metrics | Infeasible of string

type entry = { key : string; descr : string; outcome : outcome }

let entry_to_json e =
  let outcome_fields =
    match e.outcome with
    | Metrics m -> [ ("metrics", Lattice.metrics_to_json m) ]
    | Infeasible code -> [ ("infeasible", Batch.Jsonl.String code) ]
  in
  Batch.Jsonl.to_string
    (Batch.Jsonl.Obj
       ([
          ("key", Batch.Jsonl.String e.key);
          ("descr", Batch.Jsonl.String e.descr);
        ]
       @ outcome_fields))

let entry_of_json doc =
  match (Batch.Jsonl.str "key" doc, Batch.Jsonl.str "descr" doc) with
  | Some key, Some descr -> (
      match
        (Batch.Jsonl.member "metrics" doc, Batch.Jsonl.str "infeasible" doc)
      with
      | Some m, None ->
          Result.map
            (fun m -> { key; descr; outcome = Metrics m })
            (Lattice.metrics_of_json m)
      | None, Some code -> Ok { key; descr; outcome = Infeasible code }
      | _ -> Error "cache entry needs exactly one of metrics/infeasible")
  | _ -> Error "cache entry missing key/descr"

type t = (string, entry) Hashtbl.t

let empty () : t = Hashtbl.create 16
let find (t : t) key = Hashtbl.find_opt t key
let size (t : t) = Hashtbl.length t

(* Same torn-tail discipline as the batch journal: a crash mid-append
   leaves at most one unterminated trailing line, which load drops; any
   other unparsable line means the store is corrupt. Later entries for a
   key win (an append-only store never rewrites). *)
let load path : (t, Diag.t) result =
  let t = empty () in
  if not (Sys.file_exists path) then Ok t
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    let lines = String.split_on_char '\n' body in
    let rec whole = function [] | [ _ ] -> [] | l :: rest -> l :: whole rest in
    let rec parse lineno = function
      | [] -> Ok t
      | l :: rest when String.trim l = "" -> parse (lineno + 1) rest
      | l :: rest -> (
          match Result.bind (Batch.Jsonl.parse l) entry_of_json with
          | Ok e ->
              Hashtbl.replace t e.key e;
              parse (lineno + 1) rest
          | Error msg ->
              Error
                (Diag.input ~file:path
                   ~span:(Diag.point ~line:lineno ~col:1)
                   ~code:"explore.cache"
                   ("corrupt cache entry: " ^ msg)))
    in
    parse 1 (whole lines)
  end

type writer = { fd : Unix.file_descr }

let open_writer path =
  { fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_APPEND ] 0o644 }

let append w e =
  let line = entry_to_json e ^ "\n" in
  let b = Bytes.of_string line in
  let rec write_all off =
    if off < Bytes.length b then
      let n = Unix.write w.fd b off (Bytes.length b - off) in
      write_all (off + n)
  in
  write_all 0;
  Unix.fsync w.fd

let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()
