type outcome = Metrics of Lattice.metrics | Infeasible of string

type entry = { key : string; descr : string; outcome : outcome }

let entry_to_json e =
  let outcome_fields =
    match e.outcome with
    | Metrics m -> [ ("metrics", Lattice.metrics_to_json m) ]
    | Infeasible code -> [ ("infeasible", Batch.Jsonl.String code) ]
  in
  Batch.Jsonl.to_string
    (Batch.Jsonl.Obj
       ([
          ("key", Batch.Jsonl.String e.key);
          ("descr", Batch.Jsonl.String e.descr);
        ]
       @ outcome_fields))

let entry_of_json doc =
  match (Batch.Jsonl.str "key" doc, Batch.Jsonl.str "descr" doc) with
  | Some key, Some descr -> (
      match
        (Batch.Jsonl.member "metrics" doc, Batch.Jsonl.str "infeasible" doc)
      with
      | Some m, None ->
          Result.map
            (fun m -> { key; descr; outcome = Metrics m })
            (Lattice.metrics_of_json m)
      | None, Some code -> Ok { key; descr; outcome = Infeasible code }
      | _ -> Error "cache entry needs exactly one of metrics/infeasible")
  | _ -> Error "cache entry missing key/descr"

(* LRU bookkeeping is lazy: every touch appends (key, tick) to the queue
   and stamps the node; eviction pops the queue head and acts only when
   the popped tick is still the node's current one, so a key touched N
   times costs N stale queue lines instead of a doubly-linked list. *)
type node = { entry : entry; mutable tick : int }

type t = {
  tbl : (string, node) Hashtbl.t;
  lru : (string * int) Queue.t;
  pins : (string, int) Hashtbl.t;  (* refcounted in-flight keys *)
  max_entries : int option;
  mutable next_tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let empty ?max_entries () =
  {
    tbl = Hashtbl.create 16;
    lru = Queue.create ();
    pins = Hashtbl.create 4;
    max_entries;
    next_tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let size t = Hashtbl.length t.tbl

let touch t node key =
  node.tick <- t.next_tick;
  Queue.add (key, t.next_tick) t.lru;
  t.next_tick <- t.next_tick + 1

let pin t key =
  Hashtbl.replace t.pins key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins key))

let unpin t key =
  match Hashtbl.find_opt t.pins key with
  | Some n when n <= 1 -> Hashtbl.remove t.pins key
  | Some n -> Hashtbl.replace t.pins key (n - 1)
  | None -> ()

let pinned t key = Hashtbl.mem t.pins key

(* The budget bounds the scan: if everything left is pinned, the cache
   stays over cap (soft cap) rather than spinning on re-queued keys. *)
let evict t =
  match t.max_entries with
  | None -> ()
  | Some cap ->
      let budget = ref (Queue.length t.lru) in
      while size t > cap && !budget > 0 do
        decr budget;
        match Queue.take_opt t.lru with
        | None -> budget := 0
        | Some (key, tick) -> (
            match Hashtbl.find_opt t.tbl key with
            | Some node when node.tick = tick ->
                if pinned t key then touch t node key
                else begin
                  Hashtbl.remove t.tbl key;
                  t.evictions <- t.evictions + 1
                end
            | _ -> ())
      done

let insert t e =
  let node = { entry = e; tick = 0 } in
  Hashtbl.replace t.tbl e.key node;
  touch t node e.key;
  evict t

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
      t.hits <- t.hits + 1;
      touch t node key;
      Some node.entry
  | None ->
      t.misses <- t.misses + 1;
      None

let peek t key =
  Option.map (fun n -> n.entry) (Hashtbl.find_opt t.tbl key)

type stats = {
  entries : int;
  max_entries : int option;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  {
    entries = size t;
    max_entries = t.max_entries;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

(* Same torn-tail discipline as the batch journal: a crash mid-append
   leaves at most one unterminated trailing line, which load drops; any
   other unparsable line means the store is corrupt. Later entries for a
   key win (an append-only store never rewrites). *)
let load ?max_entries path : (t, Diag.t) result =
  let t = empty ?max_entries () in
  if not (Sys.file_exists path) then Ok t
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    let lines = String.split_on_char '\n' body in
    let rec whole = function [] | [ _ ] -> [] | l :: rest -> l :: whole rest in
    let rec parse lineno = function
      | [] ->
          (* Replayed lines are history, not traffic. *)
          t.hits <- 0;
          t.misses <- 0;
          Ok t
      | l :: rest when String.trim l = "" -> parse (lineno + 1) rest
      | l :: rest -> (
          match Result.bind (Batch.Jsonl.parse l) entry_of_json with
          | Ok e ->
              insert t e;
              parse (lineno + 1) rest
          | Error msg ->
              Error
                (Diag.input ~file:path
                   ~span:(Diag.point ~line:lineno ~col:1)
                   ~code:"explore.cache"
                   ("corrupt cache entry: " ^ msg)))
    in
    parse 1 (whole lines)
  end

type writer = { fd : Unix.file_descr }

let open_writer path =
  { fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_APPEND ] 0o644 }

let append w e =
  let line = entry_to_json e ^ "\n" in
  let b = Bytes.of_string line in
  let rec write_all off =
    if off < Bytes.length b then
      match Unix.write w.fd b off (Bytes.length b - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
  in
  match
    write_all 0;
    Unix.fsync w.fd
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Diag.input ~code:"explore.cache-write"
           (Printf.sprintf "cache append failed: %s" (Unix.error_message err)))

let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()
