let area f = Printf.sprintf "%.0f" f

let source_name = function Engine.Evaluated -> "run" | Engine.Cached -> "cache"

let summary (o : Engine.outcome) =
  let infeasible, failed =
    List.fold_left
      (fun (i, f) (e : Engine.eval) ->
        match e.Engine.e_status with
        | Engine.Infeasible _ -> (i + 1, f)
        | Engine.Failed _ -> (i, f + 1)
        | Engine.Solved _ -> (i, f))
      (0, 0) o.Engine.evals
  in
  Printf.sprintf
    "sweep: %d seed point(s), %d refined, %d total\n\
     cache: %d hit(s); pool: %d fresh evaluation(s), %d resumed; %d \
     infeasible, %d failed\n"
    o.Engine.seed_points o.Engine.refined_points
    (o.Engine.seed_points + o.Engine.refined_points)
    o.Engine.cache_hits o.Engine.fresh o.Engine.resumed infeasible failed

let failure_lines (o : Engine.outcome) =
  List.map
    (fun ((p : Lattice.point), why) ->
      Printf.sprintf "failed: %s: %s" (Lattice.descr p) why)
    (Engine.failures o)

let table (o : Engine.outcome) =
  let rows =
    List.map
      (fun ((p : Lattice.point), (m : Lattice.metrics)) ->
        [
          string_of_int p.Lattice.index;
          Lattice.descr p;
          string_of_int m.Lattice.m_csteps;
          string_of_int m.Lattice.m_units;
          area m.Lattice.m_alu;
          area m.Lattice.m_mux;
          string_of_int m.Lattice.m_reg;
          area m.Lattice.m_total;
        ])
      (Engine.front o)
  in
  let solved = List.length (Engine.solved o) in
  Report.Table.render
    ~aligns:
      Report.Table.
        [ Right; Left; Right; Right; Right; Right; Right; Right ]
    ~header:
      [ "#"; "point"; "csteps"; "FUs"; "ALU um2"; "MUX um2"; "REG";
        "total um2" ]
    rows
  ^ Printf.sprintf "front: %d non-dominated of %d solved point(s)\n"
      (List.length rows) solved

let csv_header =
  [
    "index"; "key"; "engine"; "library"; "style"; "weights"; "constraint";
    "status"; "csteps"; "units"; "alu_um2"; "mux_um2"; "reg"; "total_um2";
    "front"; "source";
  ]

(* Every evaluated point, one row each — infeasible and failed points
   carry empty metric cells so the file stays joinable with cache entries
   and bench rows by [key]. *)
let csv (o : Engine.outcome) =
  let front = Engine.front_indices o in
  let rows =
    List.map
      (fun (e : Engine.eval) ->
        let p = e.Engine.e_point in
        let status, metric_cells =
          match e.Engine.e_status with
          | Engine.Solved m ->
              ( "ok",
                [
                  string_of_int m.Lattice.m_csteps;
                  string_of_int m.Lattice.m_units;
                  area m.Lattice.m_alu;
                  area m.Lattice.m_mux;
                  string_of_int m.Lattice.m_reg;
                  area m.Lattice.m_total;
                ] )
          | Engine.Infeasible code ->
              ("infeasible:" ^ code, [ ""; ""; ""; ""; ""; "" ])
          | Engine.Failed why -> ("failed:" ^ why, [ ""; ""; ""; ""; ""; "" ])
        in
        [
          string_of_int p.Lattice.index;
          e.Engine.e_key;
          Spec.engine_name p.Lattice.engine;
          Spec.library_name p.Lattice.library;
          Spec.style_name p.Lattice.style;
          Spec.weights_name p.Lattice.weights;
          Spec.constraint_name p.Lattice.constr;
          status;
        ]
        @ metric_cells
        @ [
            (if Hashtbl.mem front p.Lattice.index then "yes" else "no");
            source_name e.Engine.e_source;
          ])
      o.Engine.evals
  in
  Report.Table.to_csv ~header:csv_header rows

(* --- Dominance graph ----------------------------------------------------- *)

let dot_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* One node per solved point; front nodes filled. Each dominated point
   receives exactly one edge, from its first dominating front member in
   front order — a spanning overlay rather than the full O(n^2)
   dominance relation, which stays readable on dense sweeps. *)
let dot (o : Engine.outcome) =
  let front = Engine.front o in
  let front_idx = Engine.front_indices o in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph front {\n  rankdir=LR;\n  node [shape=box];\n";
  List.iter
    (fun ((p : Lattice.point), (m : Lattice.metrics)) ->
      let on_front = Hashtbl.mem front_idx p.Lattice.index in
      Buffer.add_string buf
        (Printf.sprintf
           "  p%d [label=\"%s\\ncs=%d alu=%s mux=%s reg=%d\"%s];\n"
           p.Lattice.index
           (dot_escape (Lattice.descr p))
           m.Lattice.m_csteps (area m.Lattice.m_alu) (area m.Lattice.m_mux)
           m.Lattice.m_reg
           (if on_front then " style=filled fillcolor=\"#cfe2f3\"" else ""))
    )
    (Engine.solved o);
  List.iter
    (fun ((p : Lattice.point), (m : Lattice.metrics)) ->
      if not (Hashtbl.mem front_idx p.Lattice.index) then
        match
          List.find_opt
            (fun (_, fm) ->
              Pareto.dominates ~objectives:Lattice.objectives fm m)
            front
        with
        | Some ((fp : Lattice.point), _) ->
            Buffer.add_string buf
              (Printf.sprintf "  p%d -> p%d [label=\"dominates\"];\n"
                 fp.Lattice.index p.Lattice.index)
        | None -> ())
    (Engine.solved o);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- JSON ----------------------------------------------------------------- *)

let json (o : Engine.outcome) =
  let front = Engine.front_indices o in
  let point_json (e : Engine.eval) =
    let p = e.Engine.e_point in
    let base =
      [
        ("index", Batch.Jsonl.Int p.Lattice.index);
        ("key", Batch.Jsonl.String e.Engine.e_key);
        ("descr", Batch.Jsonl.String (Lattice.descr p));
        ("engine", Batch.Jsonl.String (Spec.engine_name p.Lattice.engine));
        ("library", Batch.Jsonl.String (Spec.library_name p.Lattice.library));
        ("style", Batch.Jsonl.String (Spec.style_name p.Lattice.style));
        ("weights", Batch.Jsonl.String (Spec.weights_name p.Lattice.weights));
        ( "constraint",
          Batch.Jsonl.String (Spec.constraint_name p.Lattice.constr) );
        ( "front",
          Batch.Jsonl.Bool (Hashtbl.mem front p.Lattice.index) );
        ("source", Batch.Jsonl.String (source_name e.Engine.e_source));
      ]
    in
    let status =
      match e.Engine.e_status with
      | Engine.Solved m ->
          [ ("status", Batch.Jsonl.String "ok");
            ("metrics", Lattice.metrics_to_json m) ]
      | Engine.Infeasible code ->
          [ ("status", Batch.Jsonl.String "infeasible");
            ("code", Batch.Jsonl.String code) ]
      | Engine.Failed why ->
          [ ("status", Batch.Jsonl.String "failed");
            ("why", Batch.Jsonl.String why) ]
    in
    Batch.Jsonl.Obj (base @ status)
  in
  Batch.Jsonl.to_string
    (Batch.Jsonl.Obj
       [
         ("seed_points", Batch.Jsonl.Int o.Engine.seed_points);
         ("refined_points", Batch.Jsonl.Int o.Engine.refined_points);
         ("cache_hits", Batch.Jsonl.Int o.Engine.cache_hits);
         ("fresh", Batch.Jsonl.Int o.Engine.fresh);
         ("resumed", Batch.Jsonl.Int o.Engine.resumed);
         ("interrupted", Batch.Jsonl.Bool o.Engine.interrupted);
         ("points", Batch.Jsonl.List (List.map point_json o.Engine.evals));
       ])
