(** Content-addressed result cache for sweep evaluations.

    An fsynced JSONL store (one entry per line, {!Batch.Jsonl} documents,
    the batch journal's torn-tail discipline) keyed by {!Lattice.key} —
    the digest of the canonicalized DFG and the full canonical option
    vector. Repeated or refined sweeps look every point up here first and
    skip evaluation on a hit; {e infeasible} verdicts are cached too, so
    a warm re-run evaluates zero points even when parts of the lattice
    were rejected. Failures (timeout, OOM, crash) are deliberately never
    cached — they may be environmental and must re-run. *)

type outcome =
  | Metrics of Lattice.metrics
  | Infeasible of string  (** The rejecting diagnostic's code. *)

type entry = { key : string; descr : string; outcome : outcome }

val entry_to_json : entry -> string
val entry_of_json : Batch.Jsonl.t -> (entry, string) result

type t

val empty : unit -> t

val load : string -> (t, Diag.t) result
(** A missing file is an empty cache; an unterminated trailing line is
    dropped; any other unparsable line is an [explore.cache] input error.
    Later entries win on duplicate keys. *)

val find : t -> string -> entry option
val size : t -> int

type writer

val open_writer : string -> writer
(** Open (create) for append. *)

val append : writer -> entry -> unit
(** One line, one [write], then fsync. *)

val close : writer -> unit
