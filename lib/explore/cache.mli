(** Content-addressed result cache for sweep evaluations.

    An fsynced JSONL store (one entry per line, {!Batch.Jsonl} documents,
    the batch journal's torn-tail discipline) keyed by {!Lattice.key} —
    the digest of the canonicalized DFG and the full canonical option
    vector. Repeated or refined sweeps look every point up here first and
    skip evaluation on a hit; {e infeasible} verdicts are cached too, so
    a warm re-run evaluates zero points even when parts of the lattice
    were rejected. Failures (timeout, OOM, crash) are deliberately never
    cached — they may be environmental and must re-run.

    The in-memory side is admission-controlled: an optional [max_entries]
    cap evicts least-recently-touched entries so a long-lived daemon
    sharing one cache across thousands of requests holds bounded memory.
    {!pin}ned (in-flight) keys are never evicted, and hit/miss/eviction
    counters feed the daemon's [stats] endpoint. The JSONL file itself is
    append-only and uncapped — it is the durable store; the cap only
    bounds what stays resident. *)

type outcome =
  | Metrics of Lattice.metrics
  | Infeasible of string  (** The rejecting diagnostic's code. *)

type entry = { key : string; descr : string; outcome : outcome }

val entry_to_json : entry -> string
val entry_of_json : Batch.Jsonl.t -> (entry, string) result

type t

val empty : ?max_entries:int -> unit -> t
(** [max_entries] omitted means unbounded (the one-shot [synth explore]
    default). *)

val load : ?max_entries:int -> string -> (t, Diag.t) result
(** A missing file is an empty cache; an unterminated trailing line is
    dropped; any other unparsable line is an [explore.cache] input error.
    Later entries win on duplicate keys. With a cap, only the most
    recently appended [max_entries] survive the replay; counters start
    at zero either way. *)

val find : t -> string -> entry option
(** A hit bumps the hit counter and the entry's recency; a miss bumps
    the miss counter. *)

val peek : t -> string -> entry option
(** {!find} without the side effects — for introspection and tests. *)

val insert : t -> entry -> unit
(** Add (or overwrite) in memory, then evict down to the cap — never a
    {!pin}ned key. Durability is separate: callers that want the entry
    to survive a restart also {!append} it to the writer. *)

val pin : t -> string -> unit
(** Refcounted eviction shield for in-flight keys. Pin before starting
    work on a key (it need not be resident yet), {!unpin} after the
    response is sent. If every resident key is pinned the cap is soft —
    the cache runs over rather than evicting work in progress. *)

val unpin : t -> string -> unit
val pinned : t -> string -> bool
val size : t -> int

type stats = {
  entries : int;
  max_entries : int option;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : t -> stats

type writer

val open_writer : string -> writer
(** Open (create) for append. *)

val append : writer -> entry -> (unit, Diag.t) result
(** One line, one [write] (EINTR-restarted), then fsync. Failures are
    typed [explore.cache-write] errors, never uncaught [Unix_error]s. *)

val close : writer -> unit
