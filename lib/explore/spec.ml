type engine = Mfsa | Mfs | List_sched
type library_variant = Default | Two_cycle | Pipelined
type constraint_ = Time of int | Resource of (string * int) list

type t = {
  graph : string;
  engines : engine list;
  styles : Core.Mfsa.style list;
  weights : Core.Mfsa.weights list;
  constraints : constraint_ list;
  libraries : library_variant list;
  widths : bool list;
  ports : int option list;
  clock : float option;
  cse : bool;
  budget : int;
  inject : (int * Harness.Fault.t) list;
}

let default ~graph =
  {
    graph;
    engines = [ Mfsa ];
    styles = [ Core.Mfsa.Unrestricted ];
    weights = [ Core.Mfsa.equal_weights ];
    constraints = [ Time 0 ];
    libraries = [ Default ];
    widths = [ false ];
    ports = [ None ];
    clock = None;
    cse = false;
    budget = 0;
    inject = [];
  }

let engine_name = function
  | Mfsa -> "mfsa"
  | Mfs -> "mfs"
  | List_sched -> "list"

let engine_of_name = function
  | "mfsa" -> Some Mfsa
  | "mfs" -> Some Mfs
  | "list" -> Some List_sched
  | _ -> None

let library_name = function
  | Default -> "default"
  | Two_cycle -> "two-cycle"
  | Pipelined -> "pipelined"

let library_of_name = function
  | "default" -> Some Default
  | "two-cycle" -> Some Two_cycle
  | "pipelined" -> Some Pipelined
  | _ -> None

let style_name = function
  | Core.Mfsa.Unrestricted -> "1"
  | Core.Mfsa.No_self_loop -> "2"

let float_repr f = Printf.sprintf "%.12g" f

let weights_name (w : Core.Mfsa.weights) =
  Printf.sprintf "%s/%s/%s/%s" (float_repr w.Core.Mfsa.w_time)
    (float_repr w.Core.Mfsa.w_alu) (float_repr w.Core.Mfsa.w_mux)
    (float_repr w.Core.Mfsa.w_reg)

let weights_of_name s =
  match List.map float_of_string_opt (String.split_on_char '/' s) with
  | [ Some w_time; Some w_alu; Some w_mux; Some w_reg ]
    when List.for_all
           (fun v -> v >= 0.)
           [ w_time; w_alu; w_mux; w_reg ] ->
      Some { Core.Mfsa.w_time; w_alu; w_mux; w_reg }
  | _ -> None

let limits_of_name s =
  let parse_one part =
    match String.split_on_char '=' part with
    | [ c; n ] when c <> "" -> (
        match int_of_string_opt n with
        | Some k when k >= 0 -> Some (c, k)
        | _ -> None)
    | _ -> None
  in
  let parts = String.split_on_char ',' s in
  let parsed = List.map parse_one parts in
  if List.exists (( = ) None) parsed then None
  else Some (List.filter_map Fun.id parsed)

let constraint_name = function
  | Time cs -> Printf.sprintf "T=%d" cs
  | Resource limits ->
      "R{"
      ^ String.concat ","
          (List.map
             (fun (c, k) -> Printf.sprintf "%s=%d" c k)
             (List.sort compare limits))
      ^ "}"

(* --- Spec files --------------------------------------------------------- *)

let err ~file ~line code msg =
  Error (Diag.input ~file ~span:(Diag.point ~line ~col:1) ~code msg)

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

(* One directive per line; later lines of the same directive extend the
   axis. Unknown directives and malformed values are [explore.spec]
   input errors with a file:line span. *)
let parse_line ~file ~line acc text =
  let fail msg = err ~file ~line "explore.spec" msg in
  let map_values ~what parse values k =
    let parsed = List.map parse values in
    match List.find_opt (fun (_, p) -> p = None) (List.combine values parsed) with
    | Some (raw, _) -> fail (Printf.sprintf "%s: malformed %s" raw what)
    | None -> k (List.filter_map Fun.id parsed)
  in
  match tokens (strip_comment text) with
  | [] -> Ok acc
  | "graph" :: [ g ] -> Ok { acc with graph = g }
  | "graph" :: _ -> fail "graph: expected exactly one DFG file or builtin name"
  | "engine" :: (_ :: _ as vs) ->
      map_values ~what:"engine (mfsa, mfs, list)" engine_of_name vs (fun es ->
          Ok { acc with engines = acc.engines @ es })
  | "style" :: (_ :: _ as vs) ->
      map_values ~what:"style (1 or 2)"
        (function
          | "1" -> Some Core.Mfsa.Unrestricted
          | "2" -> Some Core.Mfsa.No_self_loop
          | _ -> None)
        vs
        (fun ss -> Ok { acc with styles = acc.styles @ ss })
  | "weights" :: (_ :: _ as vs) ->
      map_values ~what:"weight vector (T/ALU/MUX/REG, e.g. 1/1/1/20)"
        weights_of_name vs (fun ws ->
          Ok { acc with weights = acc.weights @ ws })
  | "cs" :: (_ :: _ as vs) ->
      map_values ~what:"control-step budget" int_of_string_opt vs (fun cs ->
          Ok
            { acc with
              constraints = acc.constraints @ List.map (fun c -> Time c) cs })
  | "limits" :: (_ :: _ as vs) ->
      map_values ~what:"resource limits (CLASS=COUNT[,CLASS=COUNT...])"
        limits_of_name vs (fun ls ->
          Ok
            { acc with
              constraints =
                acc.constraints @ List.map (fun l -> Resource l) ls })
  | "library" :: (_ :: _ as vs) ->
      map_values ~what:"library variant (default, two-cycle, pipelined)"
        library_of_name vs (fun ls ->
          Ok { acc with libraries = acc.libraries @ ls })
  | "widths" :: (_ :: _ as vs) ->
      map_values ~what:"widths switch (on or off)"
        (function "on" -> Some true | "off" -> Some false | _ -> None)
        vs
        (fun ws -> Ok { acc with widths = acc.widths @ ws })
  | "ports" :: (_ :: _ as vs) ->
      map_values ~what:"bank port count (positive int, or 'declared')"
        (function
          | "declared" -> Some None
          | v -> (
              match int_of_string_opt v with
              | Some p when p >= 1 -> Some (Some p)
              | _ -> None))
        vs
        (fun ps -> Ok { acc with ports = acc.ports @ ps })
  | [ "clock"; v ] -> (
      match float_of_string_opt v with
      | Some c when c > 0. -> Ok { acc with clock = Some c }
      | _ -> fail (v ^ ": malformed clock period (positive ns)"))
  | [ "cse" ] -> Ok { acc with cse = true }
  | [ "budget"; v ] -> (
      match int_of_string_opt v with
      | Some b when b >= 0 -> Ok { acc with budget = b }
      | _ -> fail (v ^ ": malformed refinement budget"))
  | [ "inject"; f; idx ] -> (
      match (Harness.Fault.of_string f, int_of_string_opt idx) with
      | Some fault, Some i when Harness.Fault.is_process fault && i >= 0 ->
          Ok { acc with inject = acc.inject @ [ (i, fault) ] }
      | Some fault, Some _ when not (Harness.Fault.is_process fault) ->
          fail
            (f
           ^ ": only process faults (hang, segv) make sense for a sweep \
              point — artifact corruptions belong to 'synth lint --inject'")
      | _ -> fail "inject: expected 'inject FAULT POINT-INDEX'")
  | d :: _ ->
      fail
        (d
       ^ ": unknown directive (graph, engine, style, weights, cs, limits, \
          library, widths, ports, clock, cse, budget, inject)")

let parse ~file text =
  let lines = String.split_on_char '\n' text in
  let empty =
    { (default ~graph:"") with
      engines = []; styles = []; weights = []; constraints = []; libraries = [];
      widths = []; ports = []
    }
  in
  let rec go acc line = function
    | [] -> Ok acc
    | l :: rest -> (
        match parse_line ~file ~line acc l with
        | Error _ as e -> e
        | Ok acc -> go acc (line + 1) rest)
  in
  match go empty 1 lines with
  | Error _ as e -> e
  | Ok acc ->
      if acc.graph = "" then
        err ~file ~line:1 "explore.spec" "spec names no graph (add 'graph NAME')"
      else
        (* Unset axes collapse to the default singleton. *)
        let or_default d = function [] -> d | l -> l in
        Ok
          {
            acc with
            engines = or_default [ Mfsa ] acc.engines;
            styles = or_default [ Core.Mfsa.Unrestricted ] acc.styles;
            weights = or_default [ Core.Mfsa.equal_weights ] acc.weights;
            constraints = or_default [ Time 0 ] acc.constraints;
            libraries = or_default [ Default ] acc.libraries;
            widths = or_default [ false ] acc.widths;
            ports = or_default [ None ] acc.ports;
          }

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    body
  with
  | body -> parse ~file:path body
  | exception Sys_error msg ->
      Error (Diag.input ~file:path ~code:"explore.spec" ("cannot read spec: " ^ msg))
