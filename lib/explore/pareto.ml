type 'a t = { objectives : 'a -> float array; members : 'a list }

let dominates ~objectives a b =
  let va = objectives a and vb = objectives b in
  if Array.length va <> Array.length vb then
    invalid_arg "Pareto.dominates: objective arity mismatch";
  let le = ref true and lt = ref false in
  Array.iteri
    (fun i x -> if x > vb.(i) then le := false else if x < vb.(i) then lt := true)
    va;
  !le && !lt

let empty ~objectives = { objectives; members = [] }

let insert t x =
  if List.exists (fun m -> dominates ~objectives:t.objectives m x) t.members
  then t
  else
    { t with
      members =
        x
        :: List.filter
             (fun m -> not (dominates ~objectives:t.objectives x m))
             t.members }

let of_list ~objectives xs = List.fold_left insert (empty ~objectives) xs
let size t = List.length t.members

let members t =
  List.sort (fun a b -> compare (t.objectives a) (t.objectives b)) t.members

let mem t x =
  let v = t.objectives x in
  List.exists (fun m -> t.objectives m = v) t.members
