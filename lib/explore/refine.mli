(** Adaptive frontier refinement: densify the Pareto front by bisecting
    the MFSA weight axes between adjacent front points.

    One round turns the current front into a batch of new sweep points;
    the {!Engine} evaluates them, folds survivors into the front, and
    asks for another round until the point budget is spent or a round
    comes back empty (every midpoint already evaluated — the axis is
    saturated at this resolution). *)

val mid_weights : Core.Mfsa.weights -> Core.Mfsa.weights -> Core.Mfsa.weights
(** Component-wise mean. *)

val bisect :
  front:(Lattice.point * Lattice.metrics) list ->
  seen:(string -> bool) ->
  graph:Dfg.Graph.t ->
  next_index:int ->
  budget:int ->
  Lattice.point list
(** At most [budget] fresh candidates: the MFSA members of [front] are
    sorted by (csteps, total area, descr); each adjacent pair yields the
    component-wise-mean weight vector under either endpoint's remaining
    axes. Candidates whose content key is already [seen] (evaluated, in
    the cache, or produced earlier in this round) are dropped. Indices
    count on from [next_index]; planted faults never propagate into
    refined points. *)
