(** Adaptive frontier refinement: densify the Pareto front by bisecting
    the MFSA weight axes between adjacent front points.

    One round turns the current front into a batch of new sweep points;
    the {!Engine} evaluates them, folds survivors into the front, and
    asks for another round until the point budget is spent or a round
    comes back empty (every midpoint already evaluated — the axis is
    saturated at this resolution). *)

val mid_weights : Core.Mfsa.weights -> Core.Mfsa.weights -> Core.Mfsa.weights
(** Component-wise mean. *)

(** Cost impact of deleting one output (sink) operation, measured by
    incrementally rescheduling the pruned graph against the already-computed
    base schedule. *)
type impact = {
  i_op : string;  (** The removed sink's name. *)
  i_makespan : int;  (** Makespan of the pruned graph's schedule. *)
  i_units : int;  (** Total FU instances across classes. *)
  i_replaced : int;  (** Operations the incremental path re-placed. *)
  i_fell_back : bool;  (** True when it fell back to a full reschedule. *)
}

val sensitivity :
  ?config:Core.Config.t -> ?limit:int -> graph:Dfg.Graph.t ->
  base:Core.Mfs.outcome -> cs:int -> unit -> impact list
(** One probe per sink of [graph] (at most [limit] when given, in sink
    order): drop the sink, {!Core.Mfs.reschedule} the pruned graph against
    [base] under the same time budget [cs], and report the resulting cost.
    Each probe re-places only the edit cone of its deletion — usually a
    handful of operations — so a full sensitivity sweep costs a fraction of
    one scheduling run.  Probes whose pruned graph fails to build or to
    schedule are dropped. [base] must come from a run of [graph] with the
    same [config]. *)

val bisect :
  front:(Lattice.point * Lattice.metrics) list ->
  seen:(string -> bool) ->
  graph:Dfg.Graph.t ->
  next_index:int ->
  budget:int ->
  Lattice.point list
(** At most [budget] fresh candidates: the MFSA members of [front] are
    sorted by (csteps, total area, descr); each adjacent pair yields the
    component-wise-mean weight vector under either endpoint's remaining
    axes. Candidates whose content key is already [seen] (evaluated, in
    the cache, or produced earlier in this round) are dropped. Indices
    count on from [next_index]; planted faults never propagate into
    refined points. *)
