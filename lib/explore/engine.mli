(** The design-space exploration engine.

    Expands a {!Spec.t} into its job lattice, evaluates every point not
    already in the content-addressed {!Cache} through {!Batch.Pool}
    (inheriting its watchdogs, verdict lattice, journal and resume), folds
    the results into a {!Pareto} front over (control steps, ALU area, MUX
    area, registers), then runs budgeted {!Refine} rounds to densify the
    frontier. Completed verdicts — solved metrics {e and} expected
    infeasibilities — are appended to the cache; failures never are. *)

type source = Evaluated | Cached

type status =
  | Solved of Lattice.metrics
  | Infeasible of string
      (** Expected rejection (budget below critical path, limits too
          tight); the rejecting diagnostic's code. Not a failure: such
          points simply contribute nothing to the front. *)
  | Failed of string
      (** Timeout / OOM / crash / internal error — makes the sweep
          partial (exit 6 at the CLI). *)

type eval = {
  e_point : Lattice.point;
  e_key : string;  (** Content key = cache key = journal id. *)
  e_status : status;
  e_source : source;
}

type outcome = {
  evals : eval list;  (** Lattice order, refined points appended. *)
  seed_points : int;
  refined_points : int;
  cache_hits : int;
  fresh : int;  (** Fresh worker evaluations this run. *)
  resumed : int;  (** Verdicts replayed from the journal. *)
  interrupted : bool;  (** SIGINT/SIGTERM; in-flight points have no eval. *)
}

val solved : outcome -> (Lattice.point * Lattice.metrics) list
val failures : outcome -> (Lattice.point * string) list

val front : outcome -> (Lattice.point * Lattice.metrics) list
(** Non-dominated solved points under {!Lattice.objectives}, sorted by
    objective vector. *)

val front_indices : outcome -> (int, unit) Hashtbl.t
(** Point indices of the front members, for report row marking. *)

type runner =
  deadline:float ->
  (Batch.Pool.job * Batch.Jsonl.t) list ->
  (Batch.Pool.outcome, Diag.t) result
(** How a batch of cache-miss points is executed: each element pairs the
    locally-runnable {!Batch.Pool.job} with its {!Lattice.wire} document
    for remote leasing. The default runner is {!Batch.Pool.run}; the CLI
    injects a cluster dispatcher when [--hosts] is given. *)

val run :
  ?workers:int ->
  ?cache:string ->
  ?journal:string ->
  ?resume:bool ->
  ?deadline:float ->
  ?budget:int ->
  ?log:(string -> unit) ->
  ?runner:runner ->
  Spec.t ->
  (outcome, Diag.t) result
(** Run the sweep. [cache] is the JSONL store path (loaded before, new
    completions appended); [journal]/[resume]/[deadline]/[workers] are
    passed through to {!Batch.Pool.run} (retry policy {!Batch.Retry.none}
    — sweep points are deterministic, a timeout is a verdict, not a
    straggler). [budget] overrides the spec's refinement budget. [Error]
    is reserved for environment problems (unloadable graph or spec,
    corrupt cache or journal); point failures are data — see
    {!failures}. *)
