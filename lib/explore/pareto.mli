(** N-dimensional Pareto fronts over sweep results.

    All objectives are minimized. A point [a] {e dominates} [b] when it
    is no worse in every objective and strictly better in at least one;
    the front holds exactly the non-dominated points seen so far. Points
    with {e equal} objective vectors neither dominate each other, so ties
    all survive — which is what makes the front independent of insertion
    order (see the property suite in [test/test_explore.ml]). *)

type 'a t

val dominates : objectives:('a -> float array) -> 'a -> 'a -> bool
(** [dominates a b]: [a] is [<=] component-wise and [<] somewhere.
    Irreflexive and antisymmetric.

    @raise Invalid_argument if the two vectors differ in length. *)

val empty : objectives:('a -> float array) -> 'a t

val insert : 'a t -> 'a -> 'a t
(** Drop [x] if a member dominates it; otherwise admit [x] and evict the
    members it dominates. *)

val of_list : objectives:('a -> float array) -> 'a list -> 'a t

val members : 'a t -> 'a list
(** Sorted lexicographically by objective vector (deterministic up to
    exact objective ties). *)

val size : 'a t -> int

val mem : 'a t -> 'a -> bool
(** Whether some member has [x]'s exact objective vector. *)
