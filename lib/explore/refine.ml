let mid a b = (a +. b) /. 2.

(* --- Output-sensitivity probes over the incremental scheduler ----------- *)

type impact = {
  i_op : string;
  i_makespan : int;
  i_units : int;
  i_replaced : int;
  i_fell_back : bool;
}

let total_units schedule =
  List.fold_left (fun acc (_, k) -> acc + k) 0 (Core.Schedule.fu_counts schedule)

(* Rebuild the graph without one sink operation.  Sinks have no consumers
   (guard producers always have successors), so dropping the row alone
   yields a well-formed graph. *)
let drop_sink g name =
  let rows =
    List.filter_map
      (fun (nd : Dfg.Graph.node) ->
        if nd.Dfg.Graph.name = name then None
        else
          Some
            ( nd.Dfg.Graph.name, nd.Dfg.Graph.kind, nd.Dfg.Graph.args,
              nd.Dfg.Graph.guards ))
      (Dfg.Graph.nodes g)
  in
  Result.map
    (Dfg.Graph.copy_annotations ~from:g)
    (Dfg.Graph.of_ops ~inputs:(Dfg.Graph.inputs g) rows)

let sensitivity ?(config = Core.Config.default) ?limit ~graph ~base ~cs () =
  let sinks =
    List.map (fun i -> (Dfg.Graph.node graph i).Dfg.Graph.name)
      (Dfg.Graph.sinks graph)
  in
  let sinks =
    match limit with
    | Some k when k >= 0 -> List.filteri (fun i _ -> i < k) sinks
    | _ -> sinks
  in
  List.filter_map
    (fun name ->
      match drop_sink graph name with
      | Error _ -> None
      | Ok g' -> (
          match
            Core.Mfs.reschedule ~config ~old:base g'
              [ Core.Mfs.Op_removed name ]
              (Core.Mfs.Time { cs })
          with
          | Error _ -> None
          | Ok (o, stats) ->
              Some
                {
                  i_op = name;
                  i_makespan = Core.Schedule.makespan o.Core.Mfs.schedule;
                  i_units = total_units o.Core.Mfs.schedule;
                  i_replaced = stats.Core.Mfs.replaced;
                  i_fell_back = stats.Core.Mfs.fell_back;
                }))
    sinks

let mid_weights (a : Core.Mfsa.weights) (b : Core.Mfsa.weights) =
  {
    Core.Mfsa.w_time = mid a.Core.Mfsa.w_time b.Core.Mfsa.w_time;
    w_alu = mid a.Core.Mfsa.w_alu b.Core.Mfsa.w_alu;
    w_mux = mid a.Core.Mfsa.w_mux b.Core.Mfsa.w_mux;
    w_reg = mid a.Core.Mfsa.w_reg b.Core.Mfsa.w_reg;
  }

(* Weights only steer MFSA, so refinement bisects between MFSA front
   points. Candidate order is deterministic: front points sorted by
   (csteps, total area, descr); each adjacent pair contributes up to two
   candidates — the midpoint weights under either endpoint's non-weight
   axes — deduplicated by content key against everything already
   evaluated (which kills the degenerate equal-weights midpoints for
   free). *)
let bisect ~front ~seen ~graph ~next_index ~budget =
  if budget <= 0 then []
  else begin
    let mfsa =
      List.filter
        (fun ((p : Lattice.point), _) -> p.Lattice.engine = Spec.Mfsa)
        front
    in
    let ordered =
      List.sort
        (fun ((pa : Lattice.point), (ma : Lattice.metrics)) (pb, mb) ->
          compare
            (ma.Lattice.m_csteps, ma.Lattice.m_total, Lattice.descr pa)
            (mb.Lattice.m_csteps, mb.Lattice.m_total, Lattice.descr pb))
        mfsa
    in
    let rec pairs = function
      | (a, _) :: ((b, _) :: _ as rest) -> (a, b) :: pairs rest
      | _ -> []
    in
    let fresh = Hashtbl.create 16 in
    let out = ref [] in
    let count = ref 0 in
    let consider base weights =
      if !count < budget then begin
        let candidate =
          { base with Lattice.weights; index = next_index + !count; fault = None }
        in
        let k = Lattice.key ~graph candidate in
        if not (seen k) && not (Hashtbl.mem fresh k) then begin
          Hashtbl.add fresh k ();
          out := candidate :: !out;
          incr count
        end
      end
    in
    List.iter
      (fun ((a : Lattice.point), (b : Lattice.point)) ->
        let w = mid_weights a.Lattice.weights b.Lattice.weights in
        consider a w;
        consider b w)
      (pairs ordered);
    List.rev !out
  end
