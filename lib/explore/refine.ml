let mid a b = (a +. b) /. 2.

let mid_weights (a : Core.Mfsa.weights) (b : Core.Mfsa.weights) =
  {
    Core.Mfsa.w_time = mid a.Core.Mfsa.w_time b.Core.Mfsa.w_time;
    w_alu = mid a.Core.Mfsa.w_alu b.Core.Mfsa.w_alu;
    w_mux = mid a.Core.Mfsa.w_mux b.Core.Mfsa.w_mux;
    w_reg = mid a.Core.Mfsa.w_reg b.Core.Mfsa.w_reg;
  }

(* Weights only steer MFSA, so refinement bisects between MFSA front
   points. Candidate order is deterministic: front points sorted by
   (csteps, total area, descr); each adjacent pair contributes up to two
   candidates — the midpoint weights under either endpoint's non-weight
   axes — deduplicated by content key against everything already
   evaluated (which kills the degenerate equal-weights midpoints for
   free). *)
let bisect ~front ~seen ~graph ~next_index ~budget =
  if budget <= 0 then []
  else begin
    let mfsa =
      List.filter
        (fun ((p : Lattice.point), _) -> p.Lattice.engine = Spec.Mfsa)
        front
    in
    let ordered =
      List.sort
        (fun ((pa : Lattice.point), (ma : Lattice.metrics)) (pb, mb) ->
          compare
            (ma.Lattice.m_csteps, ma.Lattice.m_total, Lattice.descr pa)
            (mb.Lattice.m_csteps, mb.Lattice.m_total, Lattice.descr pb))
        mfsa
    in
    let rec pairs = function
      | (a, _) :: ((b, _) :: _ as rest) -> (a, b) :: pairs rest
      | _ -> []
    in
    let fresh = Hashtbl.create 16 in
    let out = ref [] in
    let count = ref 0 in
    let consider base weights =
      if !count < budget then begin
        let candidate =
          { base with Lattice.weights; index = next_index + !count; fault = None }
        in
        let k = Lattice.key ~graph candidate in
        if not (seen k) && not (Hashtbl.mem fresh k) then begin
          Hashtbl.add fresh k ();
          out := candidate :: !out;
          incr count
        end
      end
    in
    List.iter
      (fun ((a : Lattice.point), (b : Lattice.point)) ->
        let w = mid_weights a.Lattice.weights b.Lattice.weights in
        consider a w;
        consider b w)
      (pairs ordered);
    List.rev !out
  end
