(** Declarative sweep specifications for design-space exploration.

    A spec is a set of {e axes}; their cross product (deduplicated by
    {!Lattice.expand}) is the job lattice one [synth explore] run
    evaluates. The file format is line-oriented:

    {v
    # sweep over the elliptic filter
    graph ewf
    engine mfsa mfs          # mfsa | mfs | list
    style 1 2
    weights 1/1/1/1 1/1/1/20 # w_TIME/w_ALU/w_MUX/w_REG
    cs 17 19 21              # time-constrained points (0 = critical path)
    limits *=1,+=1 *=2,+=2   # resource-constrained points
    library default two-cycle pipelined
    widths on off            # width-aware costing (range analysis) axis
    ports 1 2 declared       # memory bank port override axis
    clock 100                # enable chaining, period in ns
    cse
    budget 8                 # adaptive-refinement point budget
    inject hang 5            # plant a process fault at lattice index 5
    v}

    Repeated directive lines extend the axis; unset axes collapse to a
    singleton default (engine [mfsa], style 1, equal weights, [cs 0],
    library [default]). Malformed lines are [explore.spec] input errors
    with a file:line span. *)

type engine = Mfsa | Mfs | List_sched

type library_variant = Default | Two_cycle | Pipelined
(** {!Celllib.Ncr.for_graph} and its two-cycle / pipelined multiplier
    variants. *)

type constraint_ = Time of int | Resource of (string * int) list
(** One point of the merged time/resource axis: a control-step budget
    ([Time 0] = critical-path minimum) or per-class FU limits. *)

type t = {
  graph : string;  (** DFG file or builtin name ({!Batch.Manifest.load_graph}). *)
  engines : engine list;
  styles : Core.Mfsa.style list;
  weights : Core.Mfsa.weights list;
  constraints : constraint_ list;
  libraries : library_variant list;
  widths : bool list;
      (** Width-aware axis: points with [true] run [Analysis.Ranges] and
          price the datapath (and chaining delays) at inferred widths. *)
  ports : int option list;
      (** Memory-port axis: [Some n] overrides every bank's port count
          ({!Core.Config.mem_ports}); [None] keeps the graph's [mem]
          declarations. *)
  clock : float option;  (** Chaining clock period, applied to every point. *)
  cse : bool;  (** Run CSE on the graph before the sweep. *)
  budget : int;  (** Adaptive-refinement point budget (0 = seed lattice only). *)
  inject : (int * Harness.Fault.t) list;
      (** Process faults planted at lattice indices — the explore-smoke
          containment proof. Parse rejects artifact faults. *)
}

val default : graph:string -> t
(** Singleton axes: one MFSA style-1 equal-weights critical-path point. *)

val parse : file:string -> string -> (t, Diag.t) result
val load : string -> (t, Diag.t) result

(** Stable axis-value names, shared by parsing, point descriptions and
    the canonical option vector. *)

val engine_name : engine -> string
val engine_of_name : string -> engine option
val library_name : library_variant -> string
val library_of_name : string -> library_variant option
val style_name : Core.Mfsa.style -> string
val weights_name : Core.Mfsa.weights -> string
val weights_of_name : string -> Core.Mfsa.weights option
val constraint_name : constraint_ -> string
