type point = {
  index : int;
  engine : Spec.engine;
  style : Core.Mfsa.style;
  weights : Core.Mfsa.weights;
  constr : Spec.constraint_;
  library : Spec.library_variant;
  widths : bool;
  ports : int option;
  clock : float option;
  cse : bool;
  fault : Harness.Fault.t option;
}

(* Style and the Liapunov weights only steer MFSA; normalizing them for
   the other engines keeps the lattice free of points that would evaluate
   identically under different keys. *)
let normalize p =
  match p.engine with
  | Spec.Mfsa -> p
  | Spec.Mfs | Spec.List_sched ->
      { p with
        style = Core.Mfsa.Unrestricted;
        weights = Core.Mfsa.equal_weights }

let axes_name p =
  String.concat " "
    ([
       Spec.engine_name p.engine;
       "lib=" ^ Spec.library_name p.library;
       "s" ^ Spec.style_name p.style;
       "w=" ^ Spec.weights_name p.weights;
       Spec.constraint_name p.constr;
     ]
    @ (if p.widths then [ "widths" ] else [])
    @ (match p.ports with
      | None -> []
      | Some n -> [ Printf.sprintf "ports=%d" n ])
    @ (match p.clock with
      | None -> []
      | Some c -> [ Printf.sprintf "clock=%g" c ])
    @ (if p.cse then [ "cse" ] else []))

let descr p =
  axes_name p
  ^
  match p.fault with
  | None -> ""
  | Some f -> " +" ^ Harness.Fault.to_string f

let expand (spec : Spec.t) =
  let seen = Hashtbl.create 64 in
  let points = ref [] in
  let n = ref 0 in
  List.iter
    (fun engine ->
      List.iter
        (fun library ->
          List.iter
            (fun widths ->
              List.iter
                (fun ports ->
                  List.iter
                    (fun style ->
                      List.iter
                        (fun weights ->
                          List.iter
                            (fun constr ->
                              let p =
                                normalize
                                  {
                                    index = !n;
                                    engine;
                                    style;
                                    weights;
                                    constr;
                                    library;
                                    widths;
                                    ports;
                                    clock = spec.Spec.clock;
                                    cse = spec.Spec.cse;
                                    fault = None;
                                  }
                              in
                              let key = axes_name p in
                              if not (Hashtbl.mem seen key) then begin
                                Hashtbl.add seen key ();
                                points := { p with index = !n } :: !points;
                                incr n
                              end)
                            spec.Spec.constraints)
                        spec.Spec.weights)
                    spec.Spec.styles)
                spec.Spec.ports)
            spec.Spec.widths)
        spec.Spec.libraries)
    spec.Spec.engines;
  List.rev_map
    (fun p -> { p with fault = List.assoc_opt p.index spec.Spec.inject })
    !points

(* --- Derived configuration --------------------------------------------- *)

let library_for g = function
  | Spec.Default -> Celllib.Ncr.for_graph g
  | Spec.Two_cycle -> Celllib.Ncr.two_cycle_multiplier (Celllib.Ncr.for_graph g)
  | Spec.Pipelined -> Celllib.Ncr.pipelined_multiplier (Celllib.Ncr.for_graph g)

let config_for lib ~clock =
  let cfg = Core.Config.of_library lib in
  match clock with
  | None -> cfg
  | Some clk ->
      { cfg with
        Core.Config.chaining =
          Some
            { Core.Config.prop_delay = lib.Celllib.Library.prop_delay;
              clock = clk } }

(* Width-aware points run the range analysis up front: the facts feed the
   chaining probes (node_delay), the cost model and the cache key. *)
let facts_for ~graph p =
  if p.widths then Some (Analysis.Ranges.analyze graph) else None

let point_config ~graph lib ~facts ~clock ~ports =
  let cfg = { (config_for lib ~clock) with Core.Config.mem_ports = ports } in
  match facts with
  | None -> cfg
  | Some f ->
      { cfg with
        Core.Config.node_delay = Analysis.Ranges.node_delays lib graph f }

(* --- Content-addressed keys --------------------------------------------- *)

let options_canonical ~graph p =
  let facts = facts_for ~graph p in
  let config =
    point_config ~graph (library_for graph p.library) ~facts ~clock:p.clock
      ~ports:p.ports
  in
  String.concat ";"
    [
      "config=" ^ Core.Config.canonical config;
      "constraint=" ^ Spec.constraint_name p.constr;
      "cse=" ^ string_of_bool p.cse;
      "engine=" ^ Spec.engine_name p.engine;
      ( "fault="
      ^ match p.fault with
        | None -> "none"
        | Some f -> Harness.Fault.to_string f );
      "library=" ^ Spec.library_name p.library;
      "style=" ^ Spec.style_name p.style;
      "weights=" ^ Spec.weights_name p.weights;
      "widths=" ^ string_of_bool p.widths;
    ]

let key ~graph p =
  Batch.Jobs.digest
    (String.concat "|"
       [ "explore"; Dfg.Parser.to_source graph; options_canonical ~graph p ])

(* --- Metrics ------------------------------------------------------------ *)

type metrics = {
  m_csteps : int;
  m_units : int;
  m_alu : float;
  m_mux : float;
  m_reg : int;
  m_total : float;
  m_seconds : float;
}

(* Dominance objectives, all minimized. Wall time is deliberately last so
   callers wanting deterministic fronts can drop it (the default engine
   front uses [objectives]; [objectives_with_time] adds the fifth axis). *)
let objectives m =
  [| float_of_int m.m_csteps; m.m_alu; m.m_mux; float_of_int m.m_reg |]

let objectives_with_time m = Array.append (objectives m) [| m.m_seconds |]

let metrics_to_json m =
  Batch.Jsonl.Obj
    [
      ("status", Batch.Jsonl.String "ok");
      ("csteps", Batch.Jsonl.Int m.m_csteps);
      ("units", Batch.Jsonl.Int m.m_units);
      ("alu", Batch.Jsonl.Float m.m_alu);
      ("mux", Batch.Jsonl.Float m.m_mux);
      ("reg", Batch.Jsonl.Int m.m_reg);
      ("total", Batch.Jsonl.Float m.m_total);
      ("seconds", Batch.Jsonl.Float m.m_seconds);
    ]

let metrics_of_json doc =
  match
    ( Batch.Jsonl.int "csteps" doc,
      Batch.Jsonl.int "units" doc,
      Batch.Jsonl.float "alu" doc,
      Batch.Jsonl.float "mux" doc,
      Batch.Jsonl.int "reg" doc,
      Batch.Jsonl.float "total" doc,
      Batch.Jsonl.float "seconds" doc )
  with
  | Some m_csteps, Some m_units, Some m_alu, Some m_mux, Some m_reg,
    Some m_total, Some m_seconds ->
      Ok { m_csteps; m_units; m_alu; m_mux; m_reg; m_total; m_seconds }
  | _ -> Error "metrics record missing csteps/units/alu/mux/reg/total/seconds"

(* --- Evaluation --------------------------------------------------------- *)

let total_units s =
  List.fold_left (fun n (_, k) -> n + k) 0 (Core.Schedule.fu_counts s)

let effective_cs config g cs = if cs <= 0 then Core.Timeframe.min_cs config g else cs

(* MFS and the list baseline do not bind; cost them through the fallback
   column binding (one single-function ALU per schedule column), the same
   accounting the harness degradation chain uses. *)
let colbind_cost ?widths lib config g s =
  match Harness.Driver.colbind_datapath lib config g s with
  | Error e -> Error (Diag.of_msg Diag.Internal ~code:"explore.bind" e)
  | Ok dp -> Ok (s, Rtl.Cost.of_datapath ?widths lib dp)

let evaluate ~graph:g p =
  (match p.fault with
  | Some Harness.Fault.Hang -> Harness.Fault.hang ()
  | Some Harness.Fault.Segv -> Harness.Fault.segv ()
  | Some _ | None -> ());
  let t0 = Unix.gettimeofday () in
  let lib = library_for g p.library in
  let facts = facts_for ~graph:g p in
  let config = point_config ~graph:g lib ~facts ~clock:p.clock ~ports:p.ports in
  let widths =
    Option.map (fun f name -> Analysis.Ranges.width_of f name) facts
  in
  (* MFSA costs its own binding at the full word; width-aware points
     re-price the winning datapath at inferred widths. *)
  let recost (o : Core.Mfsa.outcome) =
    match widths with
    | None -> (o.Core.Mfsa.schedule, o.Core.Mfsa.cost)
    | Some _ ->
        ( o.Core.Mfsa.schedule,
          Rtl.Cost.of_datapath ?widths lib o.Core.Mfsa.datapath )
  in
  let outcome =
    match (p.engine, p.constr) with
    | Spec.Mfsa, Spec.Time cs ->
        let cs = effective_cs config g cs in
        Result.map recost
          (Core.Mfsa.run ~config ~style:p.style ~weights:p.weights ~library:lib
             ~cs g)
    | Spec.Mfsa, Spec.Resource limits ->
        Result.map recost
          (Core.Mfsa.run_resource ~config ~style:p.style ~weights:p.weights
             ~library:lib ~limits g)
    | Spec.Mfs, constr ->
        let spec_kind =
          match constr with
          | Spec.Time cs -> Core.Mfs.Time { cs = effective_cs config g cs }
          | Spec.Resource limits -> Core.Mfs.Resource { limits }
        in
        Result.bind
          (Core.Mfs.schedule ~config g spec_kind)
          (colbind_cost ?widths lib config g)
    | Spec.List_sched, constr ->
        let sched =
          match constr with
          | Spec.Time cs ->
              Baselines.List_sched.time ~config g ~cs:(effective_cs config g cs)
          | Spec.Resource limits ->
              Baselines.List_sched.resource ~config g ~limits
        in
        Result.bind
          (Result.map_error
             (Diag.of_msg Diag.Infeasible ~code:"explore.engine")
             sched)
          (colbind_cost ?widths lib config g)
  in
  Result.map
    (fun ((s : Core.Schedule.t), (cost : Rtl.Cost.breakdown)) ->
      {
        m_csteps = s.Core.Schedule.cs;
        m_units = total_units s;
        m_alu = cost.Rtl.Cost.alu_area;
        m_mux = cost.Rtl.Cost.mux_area;
        m_reg = cost.Rtl.Cost.n_regs;
        m_total = cost.Rtl.Cost.total;
        m_seconds = Unix.gettimeofday () -. t0;
      })
    outcome

let job ~graph p =
  Batch.Jobs.generic ~id:(key ~graph p) ~seed:p.index ~descr:(descr p)
    (fun () -> Result.map metrics_to_json (evaluate ~graph p))

(* --- Wire form ----------------------------------------------------------- *)

module J = Batch.Jsonl

let style_of_int = function
  | 1 -> Some Core.Mfsa.Unrestricted
  | 2 -> Some Core.Mfsa.No_self_loop
  | _ -> None

let style_to_int = function
  | Core.Mfsa.Unrestricted -> 1
  | Core.Mfsa.No_self_loop -> 2

let point_to_json p =
  J.Obj
    ([
       ("index", J.Int p.index);
       ("engine", J.String (Spec.engine_name p.engine));
       ("style", J.Int (style_to_int p.style));
       ("weights", J.String (Spec.weights_name p.weights));
       ("library", J.String (Spec.library_name p.library));
       ("widths", J.Bool p.widths);
       ("cse", J.Bool p.cse);
     ]
    @ (match p.ports with None -> [] | Some n -> [ ("ports", J.Int n) ])
    @ (match p.constr with
      | Spec.Time cs -> [ ("cs", J.Int cs) ]
      | Spec.Resource limits ->
          [
            ( "limits",
              J.Obj (List.map (fun (cls, n) -> (cls, J.Int n)) limits) );
          ])
    @ (match p.clock with None -> [] | Some c -> [ ("clock", J.Float c) ])
    @
    match p.fault with
    | None -> []
    | Some f -> [ ("fault", J.String (Harness.Fault.to_string f)) ])

let point_of_json doc =
  let ( let* ) = Result.bind in
  let req name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "point is missing %S" name)
  in
  let* index = req "index" (J.int "index" doc) in
  let* engine =
    let* name = req "engine" (J.str "engine" doc) in
    req "engine" (Spec.engine_of_name name)
  in
  let* style =
    let* n = req "style" (J.int "style" doc) in
    req "style" (style_of_int n)
  in
  let* weights =
    let* name = req "weights" (J.str "weights" doc) in
    req "weights" (Spec.weights_of_name name)
  in
  let* library =
    let* name = req "library" (J.str "library" doc) in
    req "library" (Spec.library_of_name name)
  in
  let* constr =
    match (J.int "cs" doc, J.member "limits" doc) with
    | Some cs, None -> Ok (Spec.Time cs)
    | None, Some (J.Obj fields) ->
        let rec go acc = function
          | [] -> Ok (Spec.Resource (List.rev acc))
          | (cls, J.Int n) :: rest when n > 0 -> go ((cls, n) :: acc) rest
          | (cls, _) :: _ ->
              Error (Printf.sprintf "bad limit for class %S" cls)
        in
        go [] fields
    | _ -> Error "point needs exactly one of cs / limits"
  in
  let widths =
    match J.member "widths" doc with Some (J.Bool b) -> b | _ -> false
  in
  let cse =
    match J.member "cse" doc with Some (J.Bool b) -> b | _ -> false
  in
  let ports = J.int "ports" doc in
  let clock = J.float "clock" doc in
  let* fault =
    match J.str "fault" doc with
    | None -> Ok None
    | Some name -> (
        match Harness.Fault.of_string name with
        | Some f -> Ok (Some f)
        | None -> Error (Printf.sprintf "unknown fault %S" name))
  in
  Ok
    {
      index;
      engine;
      style;
      weights;
      constr;
      library;
      widths;
      ports;
      clock;
      cse;
      fault;
    }

let wire ~graph p =
  J.Obj
    [
      ("family", J.String "explore");
      ("graph", J.String (Dfg.Parser.to_source graph));
      ("point", point_to_json p);
    ]

let job_of_wire doc =
  let ( let* ) = Result.bind in
  let* src =
    match J.str "graph" doc with
    | Some s -> Ok s
    | None -> Error "explore wire job is missing graph source"
  in
  let* point =
    match J.member "point" doc with
    | Some p -> point_of_json p
    | None -> Error "explore wire job is missing its point"
  in
  let* graph = Result.map_error Diag.to_string (Dfg.Parser.parse src) in
  Ok (job ~graph point)
