(** Job lattices: a {!Spec.t} expanded into concrete sweep points, their
    content-addressed keys, and their evaluation as {!Batch.Pool} jobs. *)

type point = {
  index : int;  (** Lattice position — the pool seed / [inject] anchor. *)
  engine : Spec.engine;
  style : Core.Mfsa.style;
  weights : Core.Mfsa.weights;
  constr : Spec.constraint_;
  library : Spec.library_variant;
  widths : bool;  (** Width-aware costing via [Analysis.Ranges]. *)
  ports : int option;
      (** Bank-port override ({!Core.Config.mem_ports}); [None] keeps the
          graph's [mem] declarations. *)
  clock : float option;
  cse : bool;
  fault : Harness.Fault.t option;
}

val expand : Spec.t -> point list
(** Cross product of the spec's axes in fixed nesting order (engine,
    library, style, weights, constraint — innermost fastest), with
    points that would evaluate identically deduplicated: style and
    weights are normalized for the non-MFSA engines before comparison,
    so [engine mfs] crossed with three weight vectors yields one point
    per constraint. Indices are assigned after deduplication; [inject]
    faults attach by index. *)

val descr : point -> string
(** Human label, e.g. ["mfsa lib=default s2 w=1/1/1/20 T=17"]. *)

val options_canonical : graph:Dfg.Graph.t -> point -> string
(** Canonical full option vector: the derived {!Core.Config.canonical}
    plus every explore-level axis value as [name=value] in sorted-by-name
    order. *)

val key : graph:Dfg.Graph.t -> point -> string
(** Content-addressed identity — the stable hex digest of the
    canonicalized DFG ({!Dfg.Parser.to_source}) and
    {!options_canonical}. Used as the {!Cache} key {e and} the pool/job
    journal id, so a resumed or repeated sweep recognizes completed
    points under either store. *)

(** {2 Metrics} *)

type metrics = {
  m_csteps : int;  (** Achieved schedule horizon. *)
  m_units : int;  (** Total FU count over all classes. *)
  m_alu : float;  (** ALU area, um^2. *)
  m_mux : float;  (** Multiplexer area, um^2. *)
  m_reg : int;  (** Register count. *)
  m_total : float;  (** Total datapath area, um^2. *)
  m_seconds : float;  (** Wall-clock of the evaluation. *)
}

val objectives : metrics -> float array
(** The deterministic dominance vector (csteps, ALU area, MUX area,
    registers), all minimized — the default front. *)

val objectives_with_time : metrics -> float array
(** {!objectives} extended with wall time as a fifth axis (front contents
    then depend on machine load; reporting only). *)

val metrics_to_json : metrics -> Batch.Jsonl.t
val metrics_of_json : Batch.Jsonl.t -> (metrics, string) result

(** {2 Evaluation} *)

val evaluate : graph:Dfg.Graph.t -> point -> (metrics, Diag.t) result
(** Run the point's engine on the graph and cost the result: MFSA costs
    its own binding; MFS and the list baseline are costed through the
    fallback column binding ({!Harness.Driver.colbind_datapath}).
    Planted process faults hang or kill the calling process — evaluate
    such points only under the supervised pool. *)

val job : graph:Dfg.Graph.t -> point -> Batch.Pool.job
(** The point as a supervised pool job: id = {!key}, seed = [index],
    payload = {!metrics_to_json}. *)

(** {2 Wire form}

    Serialization for remote evaluation: a pool job's closure cannot
    cross a socket, so the cluster ships the graph source plus the point
    and the worker rebuilds the job — arriving at the {e same}
    content-addressed {!key} (the key digests the canonicalized source,
    which round-trips through {!Dfg.Parser.to_source}). *)

val point_to_json : point -> Batch.Jsonl.t
val point_of_json : Batch.Jsonl.t -> (point, string) result

val wire : graph:Dfg.Graph.t -> point -> Batch.Jsonl.t
(** [{"family":"explore","graph":SOURCE,"point":{…}}] — the lease
    payload a [synth worker] turns back into a pool job. *)

val job_of_wire : Batch.Jsonl.t -> (Batch.Pool.job, string) result
(** Rebuild {!job} from a {!wire} document. *)
