(** Rendering for sweep outcomes: frontier table, CSV export, dominance
    DOT overlay and machine-readable JSON.

    All renderings are deterministic — wall-clock seconds are recorded in
    the cache and JSON metrics but never appear in the table, CSV front
    column or DOT, so cram tests can lock the output byte-for-byte. *)

val summary : Engine.outcome -> string
(** Two-line sweep accounting: points seeded/refined/total, then cache
    hits, fresh pool evaluations, journal-resumed verdicts, infeasible
    and failed counts. Ends with a newline. *)

val failure_lines : Engine.outcome -> string list
(** One ["failed: <point>: <why>"] line per failed point, lattice order. *)

val table : Engine.outcome -> string
(** Frontier table (front members only, objective order) followed by a
    ["front: N non-dominated of M solved point(s)"] line. *)

val csv : Engine.outcome -> string
(** Every evaluated point, one row each, via {!Report.Table.to_csv}:
    axes, content key, status, metrics (empty for infeasible/failed
    rows), front membership and source. *)

val dot : Engine.outcome -> string
(** Graphviz dominance overlay: a node per solved point (front members
    filled), one edge from a dominating front member to each dominated
    point. *)

val json : Engine.outcome -> string
(** Full outcome as a single JSON object (counts + per-point records). *)
