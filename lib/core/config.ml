type chaining = {
  prop_delay : Dfg.Op.kind -> float;
  clock : float;
}

type t = {
  delays : Dfg.Op.kind -> int;
  pipelined : Dfg.Op.kind -> bool;
  chaining : chaining option;
  node_delay : (string * float) list;
  functional_latency : int option;
  share_mutex : bool;
  mem_ports : int option;
}

let default =
  {
    delays = (fun _ -> 1);
    pipelined = (fun _ -> false);
    chaining = None;
    node_delay = [];
    functional_latency = None;
    share_mutex = true;
    mem_ports = None;
  }

let of_library lib =
  {
    default with
    delays = lib.Celllib.Library.cycles;
    pipelined =
      (fun kind ->
        match Celllib.Library.candidates lib kind with
        | [] -> false
        | cands -> List.for_all (fun a -> a.Celllib.Library.stages > 1) cands);
  }

let delay t kind = max 1 (t.delays kind)
let span t kind = if t.pipelined kind then 1 else delay t kind

(* Ports a bank offers per control step: the configuration override (the
   explore/CLI axis) wins over the graph's own [mem] declaration. *)
let bank_ports t g bank =
  match t.mem_ports with
  | Some p -> p
  | None -> Dfg.Graph.bank_ports g bank

(* Hard per-class capacity limits induced by memory banks: every access
   class "mem:BANK" is capped at the bank's port count. *)
let mem_limits t g =
  List.map (fun b -> (Dfg.Graph.mem_class b, bank_ports t g b))
    (Dfg.Graph.bank_names g)

let node_prop_override t (nd : Dfg.Graph.node) =
  match t.node_delay with
  | [] -> None
  | l -> List.assoc_opt nd.Dfg.Graph.name l

let node_prop t prop_delay (nd : Dfg.Graph.node) =
  match node_prop_override t nd with
  | Some d -> d
  | None -> prop_delay nd.Dfg.Graph.kind

(* Canonical form: the functional fields are sampled over the closed kind
   alphabet, every field is rendered as "name=value", and the fields are
   sorted by name — so the string depends only on the configuration's
   observable behaviour, not on record field order, on whether a value was
   spelled out or defaulted, or on what the defaults happen to be. *)

let float_repr f = Printf.sprintf "%.12g" f

let per_kind render f =
  String.concat ","
    (List.map (fun k -> Dfg.Op.to_string k ^ ":" ^ render (f k)) Dfg.Op.all)

let canonical t =
  let fields =
    [
      ( "chaining",
        match t.chaining with
        | None -> "none"
        | Some c ->
            Printf.sprintf "{clock=%s;prop=%s}" (float_repr c.clock)
              (per_kind float_repr c.prop_delay) );
      (* Effective (clamped) delays: a raw delay of 0 behaves as 1. *)
      ("delays", per_kind string_of_int (delay t));
      ( "node_delay",
        match t.node_delay with
        | [] -> "none"
        | l ->
            "{"
            ^ String.concat ","
                (List.map
                   (fun (n, d) -> n ^ ":" ^ float_repr d)
                   (List.sort
                      (fun (a, _) (b, _) -> String.compare a b)
                      l))
            ^ "}" );
      ( "functional_latency",
        match t.functional_latency with
        | None -> "none"
        | Some l -> string_of_int l );
      ("pipelined", per_kind string_of_bool t.pipelined);
      ("share_mutex", string_of_bool t.share_mutex);
      ( "mem_ports",
        match t.mem_ports with
        | None -> "declared"
        | Some p -> string_of_int p );
    ]
  in
  String.concat ";"
    (List.map
       (fun (k, v) -> k ^ "=" ^ v)
       (List.sort (fun (a, _) (b, _) -> String.compare a b) fields))

let hash t = Digest.to_hex (Digest.string (canonical t))
