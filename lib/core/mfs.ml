type spec =
  | Time of { cs : int }
  | Resource of { limits : (string * int) list }

type outcome = {
  schedule : Schedule.t;
  objective : Liapunov.objective;
  trace : Liapunov.Trace.t;
  restarts : int;
  widenings : int;
}

exception Need_more_units of string
exception Unit_limit of string

let lookup assoc key = List.assoc_opt key assoc

let effective_bounds = Timeframe.bounds
let min_cs = Timeframe.min_cs

let step_admissible = Timeframe.step_admissible

type state = {
  grids : (string, Grid.t) Hashtbl.t;
  start : int array;
  col : int array;
  offset : float array;
}

let attempt cfg g bounds order ~objective ~max_j ~current ~trace =
  let n = Dfg.Graph.num_nodes g in
  let cs = bounds.Dfg.Bounds.cs in
  let st =
    {
      grids = Hashtbl.create 8;
      start = Array.make n 0;
      col = Array.make n 0;
      offset = Array.make n 0.0;
    }
  in
  List.iter
    (fun c ->
      Hashtbl.replace st.grids c
        (Grid.create ~steps:cs ~cols:(Hashtbl.find max_j c)))
    (Dfg.Graph.classes g);
  let exclusive i j =
    cfg.Config.share_mutex && Dfg.Graph.mutually_exclusive g i j
  in
  let latency = cfg.Config.functional_latency in
  List.iter
    (fun i ->
      let nd = Dfg.Graph.node g i in
      let c = Dfg.Op.fu_class nd.Dfg.Graph.kind in
      let grid = Hashtbl.find st.grids c in
      let sp = Config.span cfg nd.Dfg.Graph.kind in
      (* Chaining probe, memoized per (op, step): the forward (best) and
         reverse (ALFAP corner) frame scans share admissibility results. *)
      let probe = Hashtbl.create 8 in
      let admissible s =
        match Hashtbl.find_opt probe s with
        | Some r -> r
        | None ->
            let r =
              step_admissible cfg g ~start:st.start ~offset:st.offset i s
            in
            Hashtbl.replace probe s r;
            r
      in
      let forbidden s = admissible s = None in
      let pf =
        Frames.primary ~step_lo:bounds.Dfg.Bounds.asap.(i)
          ~step_hi:bounds.Dfg.Bounds.alap.(i) ~max_cols:(Hashtbl.find max_j c)
      in
      let rf =
        Frames.redundant ~current:(Hashtbl.find current c)
          ~max_cols:(Hashtbl.find max_j c) ~step_lo:bounds.Dfg.Bounds.asap.(i)
          ~step_hi:bounds.Dfg.Bounds.alap.(i)
      in
      let free = Grid.free grid ~exclusive ~latency ~op:i ~span:sp in
      match Liapunov.best_lazy objective ~pf ~rf ~forbidden ~free with
      | None -> raise (Need_more_units c)
      | Some pos ->
          (* The ALFAP corner: the worst (max-energy) admissible position,
             from which the operation "moves" to the chosen one. *)
          let from_pos =
            match Liapunov.worst_lazy objective ~pf ~rf ~forbidden ~free with
            | Some p -> p
            | None -> pos
          in
          Liapunov.Trace.record trace objective ~op:i ~from_pos ~to_pos:pos;
          Grid.place grid ~op:i ~col:pos.Frames.col ~step:pos.Frames.step
            ~span:sp;
          st.start.(i) <- pos.Frames.step;
          st.col.(i) <- pos.Frames.col;
          st.offset.(i) <-
            (match admissible pos.Frames.step with
            | Some off -> off
            | None -> 0.0))
    order;
  st

let initial_counts cfg g bounds ~user_limits ~cs =
  let classes = Dfg.Graph.classes g in
  let counts = Dfg.Graph.count_by_class g in
  let conc_of start =
    Dfg.Bounds.concurrency ~delays:(Config.delay cfg) g ~start ~cs
  in
  let asap_conc = conc_of bounds.Dfg.Bounds.asap in
  let alap_conc = conc_of bounds.Dfg.Bounds.alap in
  let cs_effective =
    match cfg.Config.functional_latency with
    | Some l -> min l cs
    | None -> cs
  in
  let current = Hashtbl.create 8 in
  let max_j = Hashtbl.create 8 in
  let user_limited = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let n_c = Option.value ~default:0 (lookup counts c) in
      let init = max 1 ((n_c + cs_effective - 1) / cs_effective) in
      let upper =
        match lookup user_limits c with
        | Some u ->
            Hashtbl.replace user_limited c true;
            u
        | None ->
            Hashtbl.replace user_limited c false;
            max init
              (max
                 (Option.value ~default:1 (lookup asap_conc c))
                 (Option.value ~default:1 (lookup alap_conc c)))
      in
      Hashtbl.replace current c (min init upper);
      Hashtbl.replace max_j c (max 1 upper))
    classes;
  (current, max_j, user_limited)

let total_ops g = Dfg.Graph.num_nodes g

let run_time cfg g ~cs ~user_limits =
  match effective_bounds cfg g ~cs with
  | Error msg -> Error (Diag.infeasible ~code:"mfs.infeasible-budget" msg)
  | Ok bounds ->
      let order = Priority.order cfg g bounds in
      let current, max_j, user_limited =
        initial_counts cfg g bounds ~user_limits ~cs
      in
      let trace = Liapunov.Trace.create () in
      let restarts = ref 0 in
      let widenings = ref 0 in
      let budget = ref ((2 * total_ops g) + 8) in
      let rec loop () =
        let n_energy =
          Hashtbl.fold (fun _ v acc -> max v acc) max_j 1
        in
        let objective = Liapunov.Time_constrained { n = n_energy } in
        match attempt cfg g bounds order ~objective ~max_j ~current ~trace with
        | st ->
            let schedule =
              Schedule.make ~col:st.col ~offset:st.offset ~config:cfg ~cs g
                st.start
            in
            Ok
              {
                schedule;
                objective;
                trace;
                restarts = !restarts;
                widenings = !widenings;
              }
        | exception Need_more_units c ->
            decr budget;
            if !budget <= 0 then
              Error
                (Diag.internal ~code:"mfs.budget-exhausted"
                   "MFS: rescheduling budget exhausted (internal)")
            else begin
              incr restarts;
              let cur = Hashtbl.find current c in
              if cur < Hashtbl.find max_j c then
                Hashtbl.replace current c (cur + 1)
              else if Hashtbl.find user_limited c then raise (Unit_limit c)
              else begin
                incr widenings;
                Hashtbl.replace max_j c (Hashtbl.find max_j c + 1);
                Hashtbl.replace current c (cur + 1)
              end;
              loop ()
            end
      in
      (try loop () with
      | Unit_limit c ->
          Error
            (Diag.infeasible ~code:"mfs.unit-limit"
               (Printf.sprintf
                  "MFS: cannot meet time budget %d with the given limit on \
                   %s units"
                  cs c)))

let run_resource cfg g ~limits =
  let lo = min_cs cfg g in
  let hi =
    List.fold_left
      (fun acc nd -> acc + Config.delay cfg nd.Dfg.Graph.kind)
      1 (Dfg.Graph.nodes g)
  in
  (* [restarts] counts placements abandoned on an empty move frame (true
     local reschedulings); the control-step widenings of the outer search
     are reported separately — the seed conflated the two. *)
  let restarts = ref 0 in
  let rec search cs =
    if cs > hi then
      Error
        (Diag.infeasible ~code:"mfs.horizon"
           "MFS: resource-constrained search exceeded the serial horizon")
    else
      match effective_bounds cfg g ~cs with
      | Error _ -> search (cs + 1)
      | Ok bounds -> (
          let order = Priority.order cfg g bounds in
          let current = Hashtbl.create 8 in
          let max_j = Hashtbl.create 8 in
          List.iter
            (fun c ->
              let u = Option.value ~default:max_int (lookup limits c) in
              let u =
                if u = max_int then
                  (* Unconstrained class: allow one unit per operation. *)
                  Option.value ~default:1
                    (lookup (Dfg.Graph.count_by_class g) c)
                else u
              in
              Hashtbl.replace current c (max 1 u);
              Hashtbl.replace max_j c (max 1 u))
            (Dfg.Graph.classes g);
          let trace = Liapunov.Trace.create () in
          let objective = Liapunov.Resource_constrained { cs } in
          match
            attempt cfg g bounds order ~objective ~max_j ~current ~trace
          with
          | st ->
              let schedule =
                Schedule.make ~col:st.col ~offset:st.offset ~config:cfg ~cs g
                  st.start
              in
              let makespan = Schedule.makespan schedule in
              let schedule = { schedule with Schedule.cs = makespan } in
              Ok
                {
                  schedule;
                  objective;
                  trace;
                  restarts = !restarts;
                  widenings = cs - lo;
                }
          | exception Need_more_units _ ->
              incr restarts;
              search (cs + 1))
  in
  search lo

let run ?(config = Config.default) ?(max_units = []) g spec =
  if Dfg.Graph.num_nodes g = 0 then
    Error (Diag.input ~code:"mfs.empty-graph" "MFS: empty graph")
  else
    match spec with
    | Time { cs } -> run_time config g ~cs ~user_limits:max_units
    | Resource { limits } -> run_resource config g ~limits

let schedule ?config ?max_units g spec =
  Result.map (fun o -> o.schedule) (run ?config ?max_units g spec)
