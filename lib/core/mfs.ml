type spec =
  | Time of { cs : int }
  | Resource of { limits : (string * int) list }

type outcome = {
  schedule : Schedule.t;
  objective : Liapunov.objective;
  trace : Liapunov.Trace.t;
  restarts : int;
  widenings : int;
  energy : int;
}

exception Need_more_units of string
exception Unit_limit of string

let lookup assoc key = List.assoc_opt key assoc

let effective_bounds = Timeframe.bounds
let min_cs = Timeframe.min_cs

let step_admissible = Timeframe.step_admissible

type state = {
  grids : (string, Grid.t) Hashtbl.t;
  start : int array;
  col : int array;
  offset : float array;
  probe : (int, float option) Hashtbl.t;
      (* per-op step-admissibility memo, cleared between ops *)
  mutable energy : int; (* Liapunov total of the last completed attempt *)
}

(* The arena: allocated once per run and reset between local-rescheduling
   restarts, so a restart costs O(state) instead of re-allocating grids and
   per-op scratch tables. *)
let make_state n =
  {
    grids = Hashtbl.create 8;
    start = Array.make (max 1 n) 0;
    col = Array.make (max 1 n) 0;
    offset = Array.make (max 1 n) 0.0;
    probe = Hashtbl.create 64;
    energy = 0;
  }

(* Columns beyond [current c] are exactly the redundant frame: no position
   there ever survives the RF filter, so each class's grid only needs
   [current c] columns.  [prepare_state] grows (never shrinks) a reused grid
   and clears it; a horizon change (resource-mode outer search) forces a
   fresh grid. *)
let prepare_state st ~cs ~current g =
  List.iter
    (fun c ->
      let cols = Hashtbl.find current c in
      match Hashtbl.find_opt st.grids c with
      | Some grid when Grid.steps grid = cs ->
          Grid.ensure_cols grid cols;
          Grid.clear grid
      | _ -> Hashtbl.replace st.grids c (Grid.create ~steps:cs ~cols))
    (Dfg.Graph.classes g);
  Array.fill st.start 0 (Array.length st.start) 0;
  Array.fill st.col 0 (Array.length st.col) 0;
  Array.fill st.offset 0 (Array.length st.offset) 0.0;
  st.energy <- 0

(* [seed] pre-places operations at known positions (incremental
   rescheduling: the kept complement of the edit cone) before the ordered
   placement loop runs; seeded ops contribute to the running Liapunov total
   but record no trace entry — they did not move. *)
let attempt ?(seed = []) cfg g bounds order ~objective ~current ~trace ~st =
  let cs = bounds.Dfg.Bounds.cs in
  prepare_state st ~cs ~current g;
  let acc = Liapunov.Acc.create objective in
  List.iter
    (fun (i, (pos : Frames.pos), off) ->
      let nd = Dfg.Graph.node g i in
      let c = Dfg.Graph.node_class g nd in
      let grid = Hashtbl.find st.grids c in
      Grid.place grid ~op:i ~col:pos.Frames.col ~step:pos.Frames.step
        ~span:(Config.span cfg nd.Dfg.Graph.kind);
      Liapunov.Acc.add acc pos;
      st.start.(i) <- pos.Frames.step;
      st.col.(i) <- pos.Frames.col;
      st.offset.(i) <- off)
    seed;
  let exclusive i j =
    cfg.Config.share_mutex && Dfg.Graph.mutually_exclusive g i j
  in
  let latency = cfg.Config.functional_latency in
  List.iter
    (fun i ->
      let nd = Dfg.Graph.node g i in
      let c = Dfg.Graph.node_class g nd in
      let grid = Hashtbl.find st.grids c in
      let sp = Config.span cfg nd.Dfg.Graph.kind in
      (* Chaining probe, memoized per (op, step): the forward (best) and
         reverse (ALFAP corner) frame scans share admissibility results. *)
      Hashtbl.clear st.probe;
      let admissible s =
        match Hashtbl.find_opt st.probe s with
        | Some r -> r
        | None ->
            let r =
              step_admissible cfg g ~start:st.start ~offset:st.offset i s
            in
            Hashtbl.replace st.probe s r;
            r
      in
      let forbidden s = admissible s = None in
      (* PF clamped to the provisioned unit count: columns current+1..max_j
         are all of RF, which the move-frame filter removes before the
         occupancy test, so never enumerating them visits exactly the same
         candidate set. RF is then empty by construction. *)
      let cols = Hashtbl.find current c in
      let pf =
        Frames.primary ~step_lo:bounds.Dfg.Bounds.asap.(i)
          ~step_hi:bounds.Dfg.Bounds.alap.(i) ~max_cols:cols
      in
      let rf =
        Frames.redundant ~current:cols ~max_cols:cols
          ~step_lo:bounds.Dfg.Bounds.asap.(i)
          ~step_hi:bounds.Dfg.Bounds.alap.(i)
      in
      let free = Grid.free_at grid ~exclusive ~latency ~op:i ~span:sp in
      match Liapunov.best_find objective ~pf ~rf ~forbidden ~free with
      | None -> raise (Need_more_units c)
      | Some pos ->
          (* The ALFAP corner: the worst (max-energy) admissible position,
             from which the operation "moves" to the chosen one. *)
          let from_pos =
            match Liapunov.worst_find objective ~pf ~rf ~forbidden ~free with
            | Some p -> p
            | None -> pos
          in
          Liapunov.Trace.record trace objective ~op:i ~from_pos ~to_pos:pos;
          Grid.place grid ~op:i ~col:pos.Frames.col ~step:pos.Frames.step
            ~span:sp;
          Liapunov.Acc.add acc pos;
          st.start.(i) <- pos.Frames.step;
          st.col.(i) <- pos.Frames.col;
          st.offset.(i) <-
            (match admissible pos.Frames.step with
            | Some off -> off
            | None -> 0.0))
    order;
  st.energy <- Liapunov.Acc.total acc;
  st

let initial_counts cfg g bounds ~user_limits ~cs =
  let classes = Dfg.Graph.classes g in
  let counts = Dfg.Graph.count_by_class g in
  let conc_of start =
    Dfg.Bounds.concurrency ~delays:(Config.delay cfg) g ~start ~cs
  in
  let asap_conc = conc_of bounds.Dfg.Bounds.asap in
  let alap_conc = conc_of bounds.Dfg.Bounds.alap in
  let cs_effective =
    match cfg.Config.functional_latency with
    | Some l -> min l cs
    | None -> cs
  in
  let current = Hashtbl.create 8 in
  let max_j = Hashtbl.create 8 in
  let user_limited = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let n_c = Option.value ~default:0 (lookup counts c) in
      let init = max 1 ((n_c + cs_effective - 1) / cs_effective) in
      let upper =
        match lookup user_limits c with
        | Some u ->
            Hashtbl.replace user_limited c true;
            u
        | None ->
            Hashtbl.replace user_limited c false;
            max init
              (max
                 (Option.value ~default:1 (lookup asap_conc c))
                 (Option.value ~default:1 (lookup alap_conc c)))
      in
      Hashtbl.replace current c (min init upper);
      Hashtbl.replace max_j c (max 1 upper))
    classes;
  (current, max_j, user_limited)

let total_ops g = Dfg.Graph.num_nodes g

let run_time cfg g ~cs ~user_limits =
  match effective_bounds cfg g ~cs with
  | Error msg -> Error (Diag.infeasible ~code:"mfs.infeasible-budget" msg)
  | Ok bounds ->
      let order = Priority.order cfg g bounds in
      let current, max_j, user_limited =
        initial_counts cfg g bounds ~user_limits ~cs
      in
      let trace = Liapunov.Trace.create () in
      let st = make_state (total_ops g) in
      let restarts = ref 0 in
      let widenings = ref 0 in
      let budget = ref ((2 * total_ops g) + 8) in
      let rec loop () =
        let n_energy =
          Hashtbl.fold (fun _ v acc -> max v acc) max_j 1
        in
        let objective = Liapunov.Time_constrained { n = n_energy } in
        match attempt cfg g bounds order ~objective ~current ~trace ~st with
        | st ->
            let schedule =
              Schedule.make ~col:st.col ~offset:st.offset ~config:cfg ~cs g
                st.start
            in
            Ok
              {
                schedule;
                objective;
                trace;
                restarts = !restarts;
                widenings = !widenings;
                energy = st.energy;
              }
        | exception Need_more_units c ->
            decr budget;
            if !budget <= 0 then
              Error
                (Diag.internal ~code:"mfs.budget-exhausted"
                   "MFS: rescheduling budget exhausted (internal)")
            else begin
              incr restarts;
              let cur = Hashtbl.find current c in
              if cur < Hashtbl.find max_j c then
                Hashtbl.replace current c (cur + 1)
              else if Hashtbl.find user_limited c then raise (Unit_limit c)
              else begin
                incr widenings;
                Hashtbl.replace max_j c (Hashtbl.find max_j c + 1);
                Hashtbl.replace current c (cur + 1)
              end;
              loop ()
            end
      in
      (try loop () with
      | Unit_limit c ->
          Error
            (Diag.infeasible ~code:"mfs.unit-limit"
               (Printf.sprintf
                  "MFS: cannot meet time budget %d with the given limit on \
                   %s units"
                  cs c)))

let run_resource cfg g ~limits =
  let lo = min_cs cfg g in
  let hi =
    List.fold_left
      (fun acc nd -> acc + Config.delay cfg nd.Dfg.Graph.kind)
      1 (Dfg.Graph.nodes g)
  in
  (* [restarts] counts placements abandoned on an empty move frame (true
     local reschedulings); the control-step widenings of the outer search
     are reported separately — the seed conflated the two. *)
  let restarts = ref 0 in
  let st = make_state (total_ops g) in
  let rec search cs =
    if cs > hi then
      Error
        (Diag.infeasible ~code:"mfs.horizon"
           "MFS: resource-constrained search exceeded the serial horizon")
    else
      match effective_bounds cfg g ~cs with
      | Error _ -> search (cs + 1)
      | Ok bounds -> (
          let order = Priority.order cfg g bounds in
          let current = Hashtbl.create 8 in
          List.iter
            (fun c ->
              let u = Option.value ~default:max_int (lookup limits c) in
              let u =
                if u = max_int then
                  (* Unconstrained class: allow one unit per operation. *)
                  Option.value ~default:1
                    (lookup (Dfg.Graph.count_by_class g) c)
                else u
              in
              Hashtbl.replace current c (max 1 u))
            (Dfg.Graph.classes g);
          let trace = Liapunov.Trace.create () in
          let objective = Liapunov.Resource_constrained { cs } in
          match attempt cfg g bounds order ~objective ~current ~trace ~st with
          | st ->
              let schedule =
                Schedule.make ~col:st.col ~offset:st.offset ~config:cfg ~cs g
                  st.start
              in
              let makespan = Schedule.makespan schedule in
              let schedule = { schedule with Schedule.cs = makespan } in
              Ok
                {
                  schedule;
                  objective;
                  trace;
                  restarts = !restarts;
                  widenings = cs - lo;
                  energy = st.energy;
                }
          | exception Need_more_units _ ->
              incr restarts;
              search (cs + 1))
  in
  search lo

let run ?(config = Config.default) ?(max_units = []) g spec =
  if Dfg.Graph.num_nodes g = 0 then
    Error (Diag.input ~code:"mfs.empty-graph" "MFS: empty graph")
  else
    (* Bank ports are hard per-class caps: they join the user limits (user
       entries first, so an explicit cap still wins) and are never widened —
       exceeding them is an infeasibility, not a unit-allocation choice. *)
    let mem = Config.mem_limits config g in
    match spec with
    | Time { cs } -> run_time config g ~cs ~user_limits:(max_units @ mem)
    | Resource { limits } -> run_resource config g ~limits:(limits @ mem)

let schedule ?config ?max_units g spec =
  Result.map (fun o -> o.schedule) (run ?config ?max_units g spec)

(* --- Incremental rescheduling ------------------------------------------- *)

type delta =
  | Op_added of string
  | Op_removed of string
  | Op_changed of string

type reschedule_stats = {
  replaced : int;
  kept : int;
  fell_back : bool;
}

(* The edit cone: the set of operations that must be re-placed after a graph
   delta.  Seeded from the declared deltas, then widened by structural
   comparison against the old graph (new name, changed kind/args/guards) and
   by a bounds sweep (a kept position that violates the new static
   ASAP/ALAP), and finally closed forward: placement only constrains
   descendants — an operation's frames depend on its predecessors' actual
   start steps — so everything downstream of a moved op must move too, and
   nothing upstream has to. *)
let edit_cone og ~old_of ~bounds ~old_of_start g deltas =
  let n = Dfg.Graph.num_nodes g in
  let in_cone = Array.make n false in
  let seed_name nm =
    match Dfg.Graph.find g nm with
    | Some nd -> in_cone.(nd.Dfg.Graph.id) <- true
    | None -> ()
  in
  List.iter
    (function
      | Op_added nm | Op_changed nm -> seed_name nm
      | Op_removed nm -> (
          (* The removed op has no id here; its old consumers do. *)
          match Dfg.Graph.find og nm with
          | None -> ()
          | Some ond ->
              List.iter
                (fun s -> seed_name (Dfg.Graph.node og s).Dfg.Graph.name)
                (Dfg.Graph.succs og ond.Dfg.Graph.id)))
    deltas;
  Array.iteri
    (fun i prev ->
      let nd = Dfg.Graph.node g i in
      match prev with
      | None -> in_cone.(i) <- true
      | Some (ond : Dfg.Graph.node) ->
          if
            ond.Dfg.Graph.kind <> nd.Dfg.Graph.kind
            || ond.Dfg.Graph.args <> nd.Dfg.Graph.args
            || ond.Dfg.Graph.guards <> nd.Dfg.Graph.guards
          then in_cone.(i) <- true)
    old_of;
  Array.iteri
    (fun i prev ->
      match prev with
      | Some (ond : Dfg.Graph.node) when not in_cone.(i) ->
          let s = old_of_start ond in
          if s < bounds.Dfg.Bounds.asap.(i) || s > bounds.Dfg.Bounds.alap.(i)
          then in_cone.(i) <- true
      | _ -> ())
    old_of;
  (* Forward closure. *)
  let pending = Queue.create () in
  Array.iteri (fun i c -> if c then Queue.add i pending) in_cone;
  while not (Queue.is_empty pending) do
    let i = Queue.pop pending in
    List.iter
      (fun s ->
        if not in_cone.(s) then begin
          in_cone.(s) <- true;
          Queue.add s pending
        end)
      (Dfg.Graph.succs g i)
  done;
  in_cone

let reschedule ?(config = Config.default) ?(max_units = []) ~old g deltas
    spec =
  let fallback () =
    Result.map
      (fun o ->
        (o, { replaced = total_ops g; kept = 0; fell_back = true }))
      (run ~config ~max_units g spec)
  in
  if Dfg.Graph.num_nodes g = 0 then
    Error (Diag.input ~code:"mfs.empty-graph" "MFS: empty graph")
  else
    match (spec, old.schedule.Schedule.col) with
    (* The resource-mode outer control-step search revisits the bounds per
       candidate horizon — there is no single frame context to patch — and
       an unbound schedule has no columns to keep.  Both fall back. *)
    | Resource _, _ | _, None -> fallback ()
    | Time { cs }, Some ocol -> (
        match effective_bounds config g ~cs with
        | Error msg ->
            Error (Diag.infeasible ~code:"mfs.infeasible-budget" msg)
        | Ok bounds -> (
            let og = old.schedule.Schedule.graph in
            let ostart = old.schedule.Schedule.start in
            let ooffset = old.schedule.Schedule.offset in
            let old_of =
              Array.of_list
                (List.map
                   (fun nd -> Dfg.Graph.find og nd.Dfg.Graph.name)
                   (Dfg.Graph.nodes g))
            in
            let in_cone =
              edit_cone og ~old_of ~bounds g deltas
                ~old_of_start:(fun (ond : Dfg.Graph.node) ->
                  ostart.(ond.Dfg.Graph.id))
            in
            let current, max_j, user_limited =
              initial_counts config g bounds
                ~user_limits:(max_units @ Config.mem_limits config g)
                ~cs
            in
            (* Provision every column a kept placement occupies; a kept
               column above a user-given cap means the old schedule is
               inconsistent with the limits — re-place everything. *)
            let exception Limit_conflict in
            match
              Array.iteri
                (fun i prev ->
                  match prev with
                  | Some (ond : Dfg.Graph.node) when not in_cone.(i) ->
                      let c = Dfg.Graph.node_class g (Dfg.Graph.node g i) in
                      let col = ocol.(ond.Dfg.Graph.id) in
                      if col > Hashtbl.find max_j c then begin
                        if Hashtbl.find user_limited c then
                          raise Limit_conflict;
                        Hashtbl.replace max_j c col
                      end;
                      if col > Hashtbl.find current c then
                        Hashtbl.replace current c col
                  | _ -> ())
                old_of
            with
            | exception Limit_conflict -> fallback ()
            | () -> (
                let seed = ref [] in
                Array.iteri
                  (fun i prev ->
                    match prev with
                    | Some (ond : Dfg.Graph.node) when not in_cone.(i) ->
                        let oid = ond.Dfg.Graph.id in
                        seed :=
                          ( i,
                            { Frames.col = ocol.(oid); step = ostart.(oid) },
                            ooffset.(oid) )
                          :: !seed
                    | _ -> ())
                  old_of;
                let seed = List.rev !seed in
                let kept = List.length seed in
                let order = Priority.order config g bounds in
                let cone_order = List.filter (fun i -> in_cone.(i)) order in
                let replaced = List.length cone_order in
                let trace = Liapunov.Trace.create () in
                let st = make_state (total_ops g) in
                let restarts = ref 0 in
                let widenings = ref 0 in
                let budget = ref ((2 * replaced) + 8) in
                let rec loop () =
                  let n_energy =
                    Hashtbl.fold (fun _ v acc -> max v acc) max_j 1
                  in
                  let objective = Liapunov.Time_constrained { n = n_energy } in
                  match
                    attempt ~seed config g bounds cone_order ~objective
                      ~current ~trace ~st
                  with
                  | st ->
                      let schedule =
                        Schedule.make ~col:st.col ~offset:st.offset
                          ~config ~cs g st.start
                      in
                      Ok
                        {
                          schedule;
                          objective;
                          trace;
                          restarts = !restarts;
                          widenings = !widenings;
                          energy = st.energy;
                        }
                  | exception Need_more_units c ->
                      decr budget;
                      if !budget <= 0 then raise Exit
                      else begin
                        incr restarts;
                        let cur = Hashtbl.find current c in
                        if cur < Hashtbl.find max_j c then
                          Hashtbl.replace current c (cur + 1)
                        else if Hashtbl.find user_limited c then raise Exit
                        else begin
                          incr widenings;
                          Hashtbl.replace max_j c (Hashtbl.find max_j c + 1);
                          Hashtbl.replace current c (cur + 1)
                        end;
                        loop ()
                      end
                in
                match loop () with
                | exception Exit -> fallback ()
                | exception Invalid_argument _ ->
                    (* A kept position does not fit the fresh grid (e.g. a
                       horizon or span inconsistency the cone sweep could
                       not see) — the old schedule cannot be patched. *)
                    fallback ()
                | Ok o ->
                    (* Belt and braces: the cone construction is the
                       correctness argument, the checker is the proof. *)
                    if Schedule.check_diags o.schedule <> [] then fallback ()
                    else Ok (o, { replaced; kept; fell_back = false })
                | Error _ as e -> e)))
