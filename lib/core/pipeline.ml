let add_instance b g suffix =
  let rename v = v ^ suffix in
  List.iter (fun v -> Dfg.Graph.Builder.add_input b (rename v)) (Dfg.Graph.inputs g);
  List.iter
    (fun nd ->
      Dfg.Graph.Builder.add_op b
        ~guards:(List.map (fun (c, a) -> (rename c, a)) nd.Dfg.Graph.guards)
        ~name:(rename nd.Dfg.Graph.name)
        nd.Dfg.Graph.kind
        (List.map rename nd.Dfg.Graph.args))
    (Dfg.Graph.nodes g);
  List.iter
    (fun (v, r) -> Dfg.Graph.Builder.declare_range b (rename v) r)
    (Dfg.Graph.ranges g);
  List.iter
    (fun (v, w) -> Dfg.Graph.Builder.declare_width b (rename v) w)
    (Dfg.Graph.declared_widths g)

let replicate ~copies g =
  if copies < 1 then
    Error
      (Diag.input ~code:"pipeline.bad-copies"
         "Pipeline.replicate: copies must be >= 1")
  else begin
    let b = Dfg.Graph.Builder.create () in
    for k = 1 to copies do
      add_instance b g (Printf.sprintf "_i%d" k)
    done;
    match Dfg.Graph.Builder.build b with
    | Ok gk -> Ok gk
    | Error msg ->
        Error
          (Diag.internal ~code:"pipeline.rename"
             ("Pipeline.replicate: renaming broke the graph: " ^ msg))
  end

let double ?(suffixes = ("_i1", "_i2")) g =
  let s1, s2 = suffixes in
  let b = Dfg.Graph.Builder.create () in
  add_instance b g s1;
  add_instance b g s2;
  match Dfg.Graph.Builder.build b with
  | Ok g2 -> Ok g2
  | Error msg ->
      Error
        (Diag.internal ~code:"pipeline.rename"
           ("Pipeline.double: renaming broke the graph: " ^ msg))

let unfold sched ~latency ?instances () =
  let g = sched.Schedule.graph in
  let cs = sched.Schedule.cs in
  let copies =
    match instances with
    | Some k -> max 1 k
    | None -> ((cs + latency - 1) / latency) + 1
  in
  match sched.Schedule.col with
  | None ->
      Error
        (Diag.input ~code:"pipeline.unbound"
           "Pipeline.unfold: needs a column-bound schedule")
  | Some col -> (
      match replicate ~copies g with
      | Error _ as e -> e
      | Ok gk ->
      let n = Dfg.Graph.num_nodes g in
      let nk = Dfg.Graph.num_nodes gk in
      let start' = Array.make nk 0 in
      let col' = Array.make nk 0 in
      let offset' = Array.make nk 0.0 in
      List.iter
        (fun nd ->
          (* Instance k of node [i] lands at index (k-1)*n + i because
             replicate emits whole instances in order. *)
          let i = nd.Dfg.Graph.id mod n in
          let k = nd.Dfg.Graph.id / n in
          start'.(nd.Dfg.Graph.id) <-
            sched.Schedule.start.(i) + (k * latency);
          col'.(nd.Dfg.Graph.id) <- col.(i);
          offset'.(nd.Dfg.Graph.id) <- sched.Schedule.offset.(i))
        (Dfg.Graph.nodes gk);
      let config =
        { (sched.Schedule.config) with Config.functional_latency = None }
      in
      Ok
        (Schedule.make ~col:col' ~offset:offset' ~config
           ~cs:(cs + ((copies - 1) * latency))
           gk start'))

let slot ~latency step = (step - 1) mod latency

let folded_profile sched ~latency =
  let g = sched.Schedule.graph in
  let classes = Dfg.Graph.classes g in
  let profile =
    List.map (fun c -> (c, Array.make latency 0)) classes
  in
  List.iter
    (fun nd ->
      let i = nd.Dfg.Graph.id in
      let c = Dfg.Graph.node_class g nd in
      let arr = List.assoc c profile in
      let sp =
        Config.span sched.Schedule.config nd.Dfg.Graph.kind
      in
      for k = 0 to min (sp - 1) (latency - 1) do
        let s = slot ~latency (sched.Schedule.start.(i) + k) in
        arr.(s) <- arr.(s) + 1
      done)
    (Dfg.Graph.nodes g);
  profile

let speedup ~cs ~latency = float_of_int cs /. float_of_int latency

let min_latency g cfg ~limits =
  List.fold_left
    (fun acc (c, n_c) ->
      let units = Option.value ~default:1 (List.assoc_opt c limits) in
      let d =
        (* All kinds in one single-function class share a symbol, hence a
           delay; find a representative node. *)
        match
          List.find_opt
            (fun nd -> String.equal (Dfg.Graph.node_class g nd) c)
            (Dfg.Graph.nodes g)
        with
        | Some nd -> Config.span cfg nd.Dfg.Graph.kind
        | None -> 1
      in
      max acc (((n_c * d) + units - 1) / units))
    1 (Dfg.Graph.count_by_class g)
