(** Liapunov (energy) functions and stability diagnostics (paper §2, §3.1).

    The synthesis state is the vector of all operation positions; a move is
    accepted only if it decreases the Liapunov value, which by Liapunov's
    second theorem drives the trajectory towards the equilibrium point.
    MFS uses two static energies over a single position [(x, y)] =
    (FU column, control step):

    - time-constrained: [V = x + n*y] with [n >= max_j] for every type, so a
      position in step [t] always beats any position in step [t+1];
    - resource-constrained: [V = cs*x + y], so reusing an existing unit in a
      later step beats provisioning a new unit. *)

type objective =
  | Time_constrained of { n : int }
      (** [n] must be at least the largest unit count of any FU type. *)
  | Resource_constrained of { cs : int }
      (** [cs] must be at least the schedule horizon. *)

val value : objective -> Frames.pos -> int
(** The energy contribution of one operation at one position. *)

val best : objective -> Frames.pos list -> Frames.pos option
(** Position of minimal energy; ties broken towards smaller step, then
    smaller column, making the scheduler deterministic. [None] on []. *)

val scan : objective -> Frames.scan
(** The rectangle scan order along which this objective's energy is
    nondecreasing: row-major for time-constrained, column-major for
    resource-constrained. *)

val best_lazy :
  objective -> pf:Frames.rect -> rf:Frames.rect ->
  forbidden:(int -> bool) -> free:(Frames.pos -> bool) -> Frames.pos option
(** Minimum-energy free position of the move frame
    [MF = PF - (RF + FF)], enumerating lazily in {!scan} order and stopping
    at the first admissible free cell. Distinct positions never tie under
    either objective (the time-constrained [n] bounds the column range, the
    resource-constrained [cs] bounds the step range), so this equals
    [best obj (Frames.move_frame ...)] without materialising the frame. *)

val worst_lazy :
  objective -> pf:Frames.rect -> rf:Frames.rect ->
  forbidden:(int -> bool) -> free:(Frames.pos -> bool) -> Frames.pos option
(** Maximum-energy free position of the move frame — the ALFAP corner a
    recorded move starts from — found by walking the {!scan} order
    backwards, so it usually stops after a handful of probes. *)

val best_find :
  objective -> pf:Frames.rect -> rf:Frames.rect ->
  forbidden:(int -> bool) -> free:(col:int -> step:int -> bool) ->
  Frames.pos option
(** {!best_lazy} with the occupancy probe unboxed, backed by {!Frames.find}:
    the scheduler's inner-loop search, allocating nothing until the hit. *)

val worst_find :
  objective -> pf:Frames.rect -> rf:Frames.rect ->
  forbidden:(int -> bool) -> free:(col:int -> step:int -> bool) ->
  Frames.pos option
(** {!worst_lazy}, likewise unboxed. *)

val total : objective -> Frames.pos list -> int
(** Eager Liapunov value of a whole configuration: the sum of {!value} over
    every placed operation — the re-fold that {!Acc} tracks incrementally. *)

(** Running Liapunov value of the placement configuration, maintained by
    place/unplace deltas in O(1) instead of a re-fold over all placements.
    [Acc.total] after any sequence of {!Acc.add}/{!Acc.remove} equals
    {!total} over the live positions (each add contributes [value obj p],
    each remove subtracts it). *)
module Acc : sig
  type t

  val create : ?total:int -> objective -> t
  (** Fresh accumulator; [total] seeds it (e.g. from a schedule's known
      energy when rescheduling incrementally). *)

  val objective : t -> objective
  val total : t -> int

  val add : t -> Frames.pos -> unit
  (** A placement at this position. *)

  val remove : t -> Frames.pos -> unit
  (** An unplacement. *)
end

(** {1 Stability diagnostics}

    Each placement is recorded as a move from the operation's ALFAP corner
    (its "as late and far as possible" position, the worst point of its move
    frame) to the chosen position. The trace lets tests assert the Liapunov
    properties: positivity, and monotone decrease along the trajectory. *)

module Trace : sig
  type entry = {
    op : int;  (** Node id. *)
    from_pos : Frames.pos;  (** ALFAP corner of the move frame. *)
    to_pos : Frames.pos;  (** Chosen position. *)
    from_value : int;
    to_value : int;
  }

  type t

  val create : unit -> t
  val record : t -> objective -> op:int -> from_pos:Frames.pos -> to_pos:Frames.pos -> unit
  val entries : t -> entry list
  (** In recording order. *)

  val of_entries : entry list -> t
  (** Rebuild a trace from entries (in recording order) — lets the fault
      injector present a corrupted trace to the same diagnostics the
      scheduler's own traces go through. *)

  val non_increasing : t -> bool
  (** Every recorded move satisfies [to_value <= from_value] — Liapunov
      property (2) with equality permitted only for pinned operations whose
      frame is a single position. *)

  val positive : t -> bool
  (** Every recorded energy is strictly positive — property (1): the
      equilibrium (0,0) is never an actual placement. *)

  val contraction : entry -> float * float
  (** The diagonal of the state matrix [A(k)] mapping [X(k)] to [X(k+1)]:
      [(x'/x, y'/y)]. Both factors are positive and at most 1 for an
      energy-decreasing move in either coordinate. *)
end
