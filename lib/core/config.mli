(** Scheduling options shared by MFS, MFSA, the schedule checker and the
    baseline schedulers. *)

type chaining = {
  prop_delay : Dfg.Op.kind -> float;  (** Combinational delay, ns. *)
  clock : float;  (** Control-step clock period T, ns (paper §5.4). *)
}

type t = {
  delays : Dfg.Op.kind -> int;
      (** Execution time in control steps (multi-cycle operations, §5.3). *)
  pipelined : Dfg.Op.kind -> bool;
      (** Kinds executed on pipelined FUs: a unit is busy only during the
          issue step; the result still takes [delays] steps (structural
          pipelining, §5.5.1). *)
  chaining : chaining option;
      (** When set, data-dependent operations may share a control step if
          their accumulated propagation delay fits in the clock period. *)
  node_delay : (string * float) list;
      (** Per-node propagation-delay overrides (ns), keyed by node name.
          Takes precedence over [chaining.prop_delay] for chaining
          probes; typically width-scaled delays from [Analysis.Ranges]
          ([node_delays]). Empty = per-kind delays everywhere. *)
  functional_latency : int option;
      (** Loop-folding latency L: positions [t] and [t + k*L] run
          concurrently, so they conflict on the same FU instance (§5.5.2). *)
  share_mutex : bool;
      (** Allow mutually-exclusive operations to share an FU instance and a
          control step (§5.1). *)
  mem_ports : int option;
      (** Override of every memory bank's port count. [None] honours the
          graph's own [mem BANK ports N] declarations (1 when
          undeclared); [Some p] forces [p] ports on every bank — the
          bank/port axis the CLI and the design-space explorer sweep. *)
}

val default : t
(** Unit delays, nothing pipelined, no chaining, no folding, mutex sharing
    enabled. *)

val of_library : Celllib.Library.t -> t
(** Delays and pipelining flags taken from a cell library: a kind is
    pipelined when every library unit implementing it is multi-stage. *)

val delay : t -> Dfg.Op.kind -> int
(** [max 1 (delays kind)]. *)

val span : t -> Dfg.Op.kind -> int
(** Steps during which the op {e occupies} its FU: 1 for pipelined kinds,
    [delay] otherwise. *)

val bank_ports : t -> Dfg.Graph.t -> string -> int
(** Effective port count of a bank under this configuration:
    [mem_ports] when set, else the graph's declaration (default 1). *)

val mem_limits : t -> Dfg.Graph.t -> (string * int) list
(** Hard capacity limits induced by the graph's memory banks: one
    [("mem:BANK", ports)] pair per bank in use. Schedulers fold these
    into their per-class unit limits so port conflicts land in the
    Forbidden Frame instead of producing invalid schedules. *)

val node_prop_override : t -> Dfg.Graph.node -> float option
(** The node's [node_delay] entry, if any. *)

val node_prop : t -> (Dfg.Op.kind -> float) -> Dfg.Graph.node -> float
(** The node's effective propagation delay: its [node_delay] override or
    the given per-kind fallback. *)

val canonical : t -> string
(** Canonical one-line rendering of the full option vector. The
    functional fields ([delays], [pipelined], chaining propagation
    delays) are sampled over the closed {!Dfg.Op.all} alphabet and every
    field is emitted as [name=value] in sorted-by-name order, so the
    string is stable across record field reordering and across default
    changes: two configurations observably equal over the kind alphabet
    canonicalize identically. Used as the option half of the
    design-space-exploration cache key ([Explore.Lattice.key]). *)

val hash : t -> string
(** Stable hex digest of {!canonical}. *)
