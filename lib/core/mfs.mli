(** Move Frame Scheduling (paper §3).

    MFS schedules a DFG by moving each operation, in priority order, to the
    minimum-Liapunov-energy position of its move frame
    [MF = PF - (RF + FF)]. Under a time constraint it produces a balanced
    schedule (minimum concurrency per FU type) within [cs] control steps;
    under resource constraints it minimises the number of control steps for
    the given unit counts. When a move frame comes up empty the current unit
    count grows by one and a local rescheduling restarts placement
    (§3.2 step 4). *)

type spec =
  | Time of { cs : int }
      (** Balanced schedule within [cs] steps, [V = x + n*y]. *)
  | Resource of { limits : (string * int) list }
      (** Minimum steps with at most [limits] units per FU class
          ({!Dfg.Op.fu_class} keys), [V = cs*x + y]. Classes absent from the
          list are unconstrained. *)

type outcome = {
  schedule : Schedule.t;
  objective : Liapunov.objective;
  trace : Liapunov.Trace.t;
      (** One entry per placed operation: ALFAP corner → chosen position. *)
  restarts : int;
      (** Local reschedulings: placements abandoned on an empty move frame
          and restarted (§3.2 step 4), in either mode. *)
  widenings : int;
      (** Outer-search widenings, counted separately from [restarts]: unit
          upper bounds grown beyond the concurrency estimate (time mode), or
          control-step increments above the minimum budget (resource
          mode). *)
}

val run :
  ?config:Config.t -> ?max_units:(string * int) list -> Dfg.Graph.t ->
  spec -> (outcome, Diag.t) result
(** Schedule the graph. [max_units] optionally caps unit counts in [Time]
    mode (the paper's user-given hardware constraint); when absent the upper
    bound comes from the ASAP/ALAP concurrency and may grow on demand.
    Error diagnostics: [Infeasible] for a time budget below the critical
    path, unit caps too tight or an exceeded resource-search horizon;
    [Input] for an empty graph; [Internal] when the rescheduling budget is
    exhausted (a bug). *)

val schedule :
  ?config:Config.t -> ?max_units:(string * int) list -> Dfg.Graph.t ->
  spec -> (Schedule.t, Diag.t) result
(** {!run} projected on the schedule. *)
