(** Move Frame Scheduling (paper §3).

    MFS schedules a DFG by moving each operation, in priority order, to the
    minimum-Liapunov-energy position of its move frame
    [MF = PF - (RF + FF)]. Under a time constraint it produces a balanced
    schedule (minimum concurrency per FU type) within [cs] control steps;
    under resource constraints it minimises the number of control steps for
    the given unit counts. When a move frame comes up empty the current unit
    count grows by one and a local rescheduling restarts placement
    (§3.2 step 4). *)

type spec =
  | Time of { cs : int }
      (** Balanced schedule within [cs] steps, [V = x + n*y]. *)
  | Resource of { limits : (string * int) list }
      (** Minimum steps with at most [limits] units per FU class
          ({!Dfg.Op.fu_class} keys), [V = cs*x + y]. Classes absent from the
          list are unconstrained. *)

type outcome = {
  schedule : Schedule.t;
  objective : Liapunov.objective;
  trace : Liapunov.Trace.t;
      (** One entry per placed operation: ALFAP corner → chosen position. *)
  restarts : int;
      (** Local reschedulings: placements abandoned on an empty move frame
          and restarted (§3.2 step 4), in either mode. *)
  widenings : int;
      (** Outer-search widenings, counted separately from [restarts]: unit
          upper bounds grown beyond the concurrency estimate (time mode), or
          control-step increments above the minimum budget (resource
          mode). *)
  energy : int;
      (** Liapunov value of the final configuration — the sum of
          {!Liapunov.value} over every placed operation, maintained
          incrementally by place/unplace deltas ({!Liapunov.Acc}) rather
          than a re-fold. *)
}

val run :
  ?config:Config.t -> ?max_units:(string * int) list -> Dfg.Graph.t ->
  spec -> (outcome, Diag.t) result
(** Schedule the graph. [max_units] optionally caps unit counts in [Time]
    mode (the paper's user-given hardware constraint); when absent the upper
    bound comes from the ASAP/ALAP concurrency and may grow on demand.
    Error diagnostics: [Infeasible] for a time budget below the critical
    path, unit caps too tight or an exceeded resource-search horizon;
    [Input] for an empty graph; [Internal] when the rescheduling budget is
    exhausted (a bug). *)

val schedule :
  ?config:Config.t -> ?max_units:(string * int) list -> Dfg.Graph.t ->
  spec -> (Schedule.t, Diag.t) result
(** {!run} projected on the schedule. *)

(** {1 Incremental rescheduling}

    After a small graph edit, most of an existing schedule is still valid:
    placement only constrains descendants, so only the edit's forward cone
    has to move.  {!reschedule} keeps the complement of the cone at its old
    positions and re-runs move-frame placement on the cone alone. *)

(** One graph edit, identified by node {e name} — node ids are dense and
    shift between graph versions, names persist. *)
type delta =
  | Op_added of string  (** The named op exists only in the new graph. *)
  | Op_removed of string  (** The named op existed only in the old graph. *)
  | Op_changed of string
      (** The named op's kind, operands or guards changed. *)

type reschedule_stats = {
  replaced : int;  (** Operations re-placed — the size of the edit cone. *)
  kept : int;  (** Operations seeded at their old positions. *)
  fell_back : bool;
      (** The incremental path could not patch the schedule and the whole
          graph was rescheduled from scratch. *)
}

val reschedule :
  ?config:Config.t -> ?max_units:(string * int) list -> old:outcome ->
  Dfg.Graph.t -> delta list -> spec ->
  (outcome * reschedule_stats, Diag.t) result
(** [reschedule ~old g deltas spec] schedules the edited graph [g]
    incrementally against [old] (an outcome for the pre-edit graph, with
    the same [config]).  The cone is seeded from [deltas], widened by a
    structural diff against the old graph (so an understated delta list
    degrades to a larger cone, never to a wrong schedule) and by a sweep
    for kept positions violating the new ASAP/ALAP bounds, then closed over
    forward data dependencies.  The result always satisfies
    {!Schedule.check_diags}: if the patched placement does not, the
    function transparently falls back to a full {!run} (also for
    [Resource] specs, whose outer control-step search has no single frame
    context to patch).  [restarts]/[widenings] in the outcome count only
    the incremental attempt's work. *)
