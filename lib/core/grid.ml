type placement = { op : int; col : int; step : int; span : int; seq : int }

exception Invariant of Diag.t

let invariant fmt =
  Printf.ksprintf
    (fun s -> raise (Invariant (Diag.internal ~code:"grid.invariant" s)))
    fmt

(* Word-packed occupancy, column-major.  Each column owns [wpc] machine words
   whose bits mirror its steps: bit [s-1] of the column's word row is set iff
   cell (col, s) holds at least one op.  A span-fit probe ANDs at most
   [span/word_bits + 2] words against a range mask instead of walking cells,
   and per-column fill comes from popcounts over the same words, so it cannot
   drift out of sync with the cells the way a maintained counter can.

   Occupant identity (needed for mutual-exclusion sharing and [conflicts])
   lives in a parallel [owner] array: -1 = empty, op id = sole occupant, -2 =
   several mutually-exclusive occupants, spilled to the small [shared]
   table.  Multi-occupancy only arises from guard-disjoint ops, so the spill
   table stays tiny. *)

let word_bits = Sys.int_size (* 63 on 64-bit: bits per occupancy word *)

let no_owner = -1
let shared_owner = -2

type t = {
  horizon : int;
  wpc : int; (* occupancy words per column *)
  mutable ncols : int;
  mutable occ : int array; (* ncols * wpc packed rows *)
  mutable owner : int array; (* ncols * horizon cell occupants *)
  shared : (int, int list) Hashtbl.t; (* cell -> occupants, newest first *)
  by_op : (int, placement) Hashtbl.t;
  mutable next_seq : int;
}

let create ~steps ~cols =
  let ncols = max 0 cols in
  let wpc = max 1 ((steps + word_bits - 1) / word_bits) in
  {
    horizon = steps;
    wpc;
    ncols;
    occ = Array.make (ncols * wpc) 0;
    owner = Array.make (ncols * steps) no_owner;
    shared = Hashtbl.create 8;
    by_op = Hashtbl.create 16;
    next_seq = 0;
  }

let steps t = t.horizon
let cols t = t.ncols

let cell_index t ~col ~step = ((col - 1) * t.horizon) + (step - 1)

(* All-ones over bits [lo..hi] (inclusive) of one word; [hi - lo + 1] may be
   the full word width, where [lsl] would be unspecified. *)
let range_mask lo hi =
  let width = hi - lo + 1 in
  if width >= word_bits then -1 lsl lo else ((1 lsl width) - 1) lsl lo

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let set_bit t ~col ~step =
  let s = step - 1 in
  let w = ((col - 1) * t.wpc) + (s / word_bits) in
  t.occ.(w) <- t.occ.(w) lor (1 lsl (s mod word_bits))

let clear_bit t ~col ~step =
  let s = step - 1 in
  let w = ((col - 1) * t.wpc) + (s / word_bits) in
  t.occ.(w) <- t.occ.(w) land lnot (1 lsl (s mod word_bits))

(* True when every cell of [col] over steps [lo..hi] (1-based, clamped by the
   caller) is empty: the packed-row fit probe, O(span / word_bits). *)
let span_clear t ~col ~lo ~hi =
  let base = (col - 1) * t.wpc in
  let b0 = lo - 1 and b1 = hi - 1 in
  let w0 = b0 / word_bits and w1 = b1 / word_bits in
  if w0 = w1 then
    t.occ.(base + w0) land range_mask (b0 mod word_bits) (b1 mod word_bits) = 0
  else begin
    let ok = ref (t.occ.(base + w0) land range_mask (b0 mod word_bits) (word_bits - 1) = 0) in
    for w = w0 + 1 to w1 - 1 do
      if t.occ.(base + w) <> 0 then ok := false
    done;
    !ok && t.occ.(base + w1) land range_mask 0 (b1 mod word_bits) = 0
  end

let fill t ~col =
  if col < 1 || col > t.ncols then 0
  else begin
    let base = (col - 1) * t.wpc in
    let n = ref 0 in
    for w = 0 to t.wpc - 1 do
      n := !n + popcount t.occ.(base + w)
    done;
    !n
  end

let ensure_cols t n =
  if n > t.ncols then begin
    let occ = Array.make (n * t.wpc) 0 in
    Array.blit t.occ 0 occ 0 (t.ncols * t.wpc);
    let owner = Array.make (n * t.horizon) no_owner in
    Array.blit t.owner 0 owner 0 (t.ncols * t.horizon);
    t.occ <- occ;
    t.owner <- owner;
    t.ncols <- n
  end

(* Occupants of one cell, newest first. *)
let occupants_of_cell t idx =
  match t.owner.(idx) with
  | o when o = no_owner -> []
  | o when o = shared_owner -> (
      match Hashtbl.find_opt t.shared idx with
      | Some ops -> ops
      | None -> invariant "Grid: shared cell %d lost its occupant list" idx)
  | o -> [ o ]

let add_occupant t idx op =
  match t.owner.(idx) with
  | o when o = no_owner -> t.owner.(idx) <- op
  | o when o = shared_owner ->
      Hashtbl.replace t.shared idx (op :: Hashtbl.find t.shared idx)
  | o ->
      t.owner.(idx) <- shared_owner;
      Hashtbl.replace t.shared idx [ op; o ]

(* Remove [op] from a cell; true when the cell became empty. *)
let remove_occupant t idx op =
  match t.owner.(idx) with
  | o when o = op ->
      t.owner.(idx) <- no_owner;
      true
  | o when o = shared_owner -> (
      let ops = List.filter (fun o -> o <> op) (Hashtbl.find t.shared idx) in
      match ops with
      | [ last ] ->
          Hashtbl.remove t.shared idx;
          t.owner.(idx) <- last;
          false
      | _ :: _ ->
          Hashtbl.replace t.shared idx ops;
          false
      | [] -> invariant "Grid: shared cell %d held fewer than two ops" idx)
  | _ ->
      invariant "Grid: op %d missing from cell %d it was recorded to occupy"
        op idx

let place t ~op ~col ~step ~span =
  if col < 1 || col > t.ncols then
    invalid_arg (Printf.sprintf "Grid.place: column %d outside 1..%d" col t.ncols);
  if step < 1 || step + span - 1 > t.horizon then
    invalid_arg
      (Printf.sprintf "Grid.place: steps %d..%d outside 1..%d" step
         (step + span - 1) t.horizon);
  if Hashtbl.mem t.by_op op then
    invalid_arg (Printf.sprintf "Grid.place: op %d already placed" op);
  for s = step to step + span - 1 do
    add_occupant t (cell_index t ~col ~step:s) op;
    set_bit t ~col ~step:s
  done;
  Hashtbl.replace t.by_op op { op; col; step; span; seq = t.next_seq };
  t.next_seq <- t.next_seq + 1

(* Unplacing an op that is not placed — or whose [by_op] record disagrees
   with the cells — is a corrupted-bookkeeping bug that previously could
   decrement fill counters for cells never freed; both now raise a typed
   [Invariant] carrying a [Diag.t] instead of silently corrupting state. *)
let unplace t ~op =
  match Hashtbl.find_opt t.by_op op with
  | None ->
      raise
        (Invariant
           (Diag.internal ~code:"grid.unplace-unplaced"
              (Printf.sprintf
                 "Grid.unplace: op %d is not placed (double unplace or \
                  never placed)"
                 op)))
  | Some p ->
      for s = p.step to p.step + p.span - 1 do
        let idx = cell_index t ~col:p.col ~step:s in
        if remove_occupant t idx op then clear_bit t ~col:p.col ~step:s
      done;
      Hashtbl.remove t.by_op op

let clear t =
  Array.fill t.occ 0 (Array.length t.occ) 0;
  Array.fill t.owner 0 (Array.length t.owner) no_owner;
  Hashtbl.reset t.shared;
  Hashtbl.reset t.by_op;
  t.next_seq <- 0

(* Do step ranges [a, a+sa-1] and [b, b+sb-1] share a cell, folding steps
   modulo [latency] when functional pipelining is active?  Spans are small
   (operation cycle counts), so direct enumeration is fine. *)
let steps_overlap ~latency a sa b sb =
  match latency with
  | None -> a < b + sb && b < a + sa
  | Some l ->
      let norm x = ((x - 1) mod l + l) mod l in
      let cells_a = List.init sa (fun i -> norm (a + i)) in
      let cells_b = List.init sb (fun i -> norm (b + i)) in
      List.exists (fun c -> List.mem c cells_b) cells_a

(* Fold [f] over the occupant lists of every cell the candidate placement
   [col/step/span] touches. Under functional pipelining a candidate step
   collides with every grid step congruent to it modulo the latency, so the
   scan walks each congruence class once. *)
let fold_covered t ~latency ~col ~step ~span f acc =
  if col < 1 || col > t.ncols then acc
  else
    match latency with
    | None ->
        let lo = max 1 step and hi = min t.horizon (step + span - 1) in
        let acc = ref acc in
        for s = lo to hi do
          let idx = cell_index t ~col ~step:s in
          if t.owner.(idx) <> no_owner then
            acc := f !acc (occupants_of_cell t idx)
        done;
        !acc
    | Some l ->
        let seen = Array.make l false in
        let acc = ref acc in
        for k = 0 to span - 1 do
          let r = ((step + k - 1) mod l + l) mod l in
          if not seen.(r) then begin
            seen.(r) <- true;
            let s = ref (r + 1) in
            while !s <= t.horizon do
              let idx = cell_index t ~col ~step:!s in
              if t.owner.(idx) <> no_owner then
                acc := f !acc (occupants_of_cell t idx);
              s := !s + l
            done
          end
        done;
        !acc

let seq_of t op = (Hashtbl.find t.by_op op).seq

let conflicts t ~latency ~col ~step ~span =
  fold_covered t ~latency ~col ~step ~span
    (fun acc occupants ->
      List.fold_left
        (fun acc o -> if List.mem o acc then acc else o :: acc)
        acc occupants)
    []
  |> List.sort (fun a b -> compare (seq_of t b) (seq_of t a))

exception Blocked

(* Closure-free candidate probe, the kernel's hot path.  Without functional
   pipelining the packed rows answer the common all-empty case in O(span /
   word_bits); only candidates overlapping occupied cells walk their
   occupants to test mutual exclusion. *)
let free_at t ~exclusive ~latency ~op ~span ~col ~step =
  if col < 1 || col > t.ncols then true
  else
    match latency with
    | None -> (
        let lo = max 1 step and hi = min t.horizon (step + span - 1) in
        hi < lo
        || span_clear t ~col ~lo ~hi
        ||
        try
          for s = lo to hi do
            let idx = cell_index t ~col ~step:s in
            if t.owner.(idx) <> no_owner then
              if
                not
                  (List.for_all
                     (fun other -> exclusive op other)
                     (occupants_of_cell t idx))
              then raise Blocked
          done;
          true
        with Blocked -> false)
    | Some _ -> (
        match
          fold_covered t ~latency ~col ~step ~span
            (fun () occupants ->
              if List.for_all (fun other -> exclusive op other) occupants then
                ()
              else raise Blocked)
            ()
        with
        | () -> true
        | exception Blocked -> false)

let free t ~exclusive ~latency ~op ~span (pos : Frames.pos) =
  free_at t ~exclusive ~latency ~op ~span ~col:pos.Frames.col
    ~step:pos.Frames.step

let occupants t ~col ~step =
  if col < 1 || col > t.ncols || step < 1 || step > t.horizon then []
  else occupants_of_cell t (cell_index t ~col ~step)

let used_cols t =
  let col_empty c =
    let base = (c - 1) * t.wpc in
    let rec go w = w >= t.wpc || (t.occ.(base + w) = 0 && go (w + 1)) in
    go 0
  in
  let rec go c = if c < 1 then 0 else if col_empty c then go (c - 1) else c in
  go t.ncols

let placements t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.by_op []
  |> List.sort (fun a b -> compare a.seq b.seq)
  |> List.map (fun p -> (p.op, p.col, p.step, p.span))
