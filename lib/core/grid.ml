type placement = { op : int; col : int; step : int; span : int; seq : int }

(* Occupancy matrix, column-major: cell (col, step) lives at
   [(col-1) * horizon + (step-1)] and holds its occupant ops, most recent
   first. [fill] counts occupied op-cells per column so [used_cols] needs no
   scan over placements, and [by_op] indexes placements for O(span)
   [unplace]. *)
type t = {
  horizon : int;
  mutable ncols : int;
  mutable cells : int list array;
  mutable fill : int array;
  by_op : (int, placement) Hashtbl.t;
  mutable next_seq : int;
}

let create ~steps ~cols =
  let ncols = max 0 cols in
  {
    horizon = steps;
    ncols;
    cells = Array.make (ncols * steps) [];
    fill = Array.make ncols 0;
    by_op = Hashtbl.create 16;
    next_seq = 0;
  }

let steps t = t.horizon
let cols t = t.ncols

let cell_index t ~col ~step = ((col - 1) * t.horizon) + (step - 1)

let ensure_cols t n =
  if n > t.ncols then begin
    let cells = Array.make (n * t.horizon) [] in
    Array.blit t.cells 0 cells 0 (t.ncols * t.horizon);
    let fill = Array.make n 0 in
    Array.blit t.fill 0 fill 0 t.ncols;
    t.cells <- cells;
    t.fill <- fill;
    t.ncols <- n
  end

let place t ~op ~col ~step ~span =
  if col < 1 || col > t.ncols then
    invalid_arg (Printf.sprintf "Grid.place: column %d outside 1..%d" col t.ncols);
  if step < 1 || step + span - 1 > t.horizon then
    invalid_arg
      (Printf.sprintf "Grid.place: steps %d..%d outside 1..%d" step
         (step + span - 1) t.horizon);
  if Hashtbl.mem t.by_op op then
    invalid_arg (Printf.sprintf "Grid.place: op %d already placed" op);
  for s = step to step + span - 1 do
    let idx = cell_index t ~col ~step:s in
    t.cells.(idx) <- op :: t.cells.(idx)
  done;
  t.fill.(col - 1) <- t.fill.(col - 1) + span;
  Hashtbl.replace t.by_op op { op; col; step; span; seq = t.next_seq };
  t.next_seq <- t.next_seq + 1

let unplace t ~op =
  match Hashtbl.find_opt t.by_op op with
  | None -> invalid_arg (Printf.sprintf "Grid.unplace: op %d is not placed" op)
  | Some p ->
      for s = p.step to p.step + p.span - 1 do
        let idx = cell_index t ~col:p.col ~step:s in
        t.cells.(idx) <- List.filter (fun o -> o <> op) t.cells.(idx)
      done;
      t.fill.(p.col - 1) <- t.fill.(p.col - 1) - p.span;
      Hashtbl.remove t.by_op op

let clear t =
  Array.fill t.cells 0 (Array.length t.cells) [];
  Array.fill t.fill 0 (Array.length t.fill) 0;
  Hashtbl.reset t.by_op;
  t.next_seq <- 0

(* Do step ranges [a, a+sa-1] and [b, b+sb-1] share a cell, folding steps
   modulo [latency] when functional pipelining is active?  Spans are small
   (operation cycle counts), so direct enumeration is fine. *)
let steps_overlap ~latency a sa b sb =
  match latency with
  | None -> a < b + sb && b < a + sa
  | Some l ->
      let norm x = ((x - 1) mod l + l) mod l in
      let cells_a = List.init sa (fun i -> norm (a + i)) in
      let cells_b = List.init sb (fun i -> norm (b + i)) in
      List.exists (fun c -> List.mem c cells_b) cells_a

(* Fold [f] over the occupant lists of every cell the candidate placement
   [col/step/span] touches. Under functional pipelining a candidate step
   collides with every grid step congruent to it modulo the latency, so the
   scan walks each congruence class once. *)
let fold_covered t ~latency ~col ~step ~span f acc =
  if col < 1 || col > t.ncols then acc
  else
    match latency with
    | None ->
        let lo = max 1 step and hi = min t.horizon (step + span - 1) in
        let acc = ref acc in
        for s = lo to hi do
          acc := f !acc t.cells.(cell_index t ~col ~step:s)
        done;
        !acc
    | Some l ->
        let seen = Array.make l false in
        let acc = ref acc in
        for k = 0 to span - 1 do
          let r = ((step + k - 1) mod l + l) mod l in
          if not seen.(r) then begin
            seen.(r) <- true;
            let s = ref (r + 1) in
            while !s <= t.horizon do
              acc := f !acc t.cells.(cell_index t ~col ~step:!s);
              s := !s + l
            done
          end
        done;
        !acc

let seq_of t op = (Hashtbl.find t.by_op op).seq

let conflicts t ~latency ~col ~step ~span =
  fold_covered t ~latency ~col ~step ~span
    (fun acc occupants ->
      List.fold_left
        (fun acc o -> if List.mem o acc then acc else o :: acc)
        acc occupants)
    []
  |> List.sort (fun a b -> compare (seq_of t b) (seq_of t a))

exception Blocked

let free t ~exclusive ~latency ~op ~span (pos : Frames.pos) =
  match
    fold_covered t ~latency ~col:pos.Frames.col ~step:pos.Frames.step ~span
      (fun () occupants ->
        if List.for_all (fun other -> exclusive op other) occupants then ()
        else raise Blocked)
      ()
  with
  | () -> true
  | exception Blocked -> false

let occupants t ~col ~step =
  if col < 1 || col > t.ncols || step < 1 || step > t.horizon then []
  else t.cells.(cell_index t ~col ~step)

let used_cols t =
  let rec go c = if c < 1 then 0 else if t.fill.(c - 1) > 0 then c else go (c - 1) in
  go t.ncols

let placements t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.by_op []
  |> List.sort (fun a b -> compare a.seq b.seq)
  |> List.map (fun p -> (p.op, p.col, p.step, p.span))
