(** Move Frame Scheduling-Allocation (paper §4).

    MFSA extends the MFS move mechanism: the columns of the placement table
    become ALU instances drawn from a cell library, and the static energy is
    replaced by the dynamic composite Liapunov function

    [f = w_TIME*f_TIME + w_ALU*f_ALU + w_MUX*f_MUX + w_REG*f_REG]

    evaluated per candidate (step, ALU) pair on the partially constructed
    design: [f_TIME = C*step] with [C] large enough that an earlier step
    always wins; [f_ALU] is the incremental ALU area (zero for an existing
    instance, the area difference for widening an instance to a multifunction
    kind, the full area for a fresh instance); [f_MUX] the multiplexer-area
    delta after best input sharing (§5.6) with interconnect-aware source
    tags (§5.7); [f_REG] the register-count delta of the left-edge
    allocation over the partial lifetimes (§5.8).

    Note on multifunction units: the paper leaves open when a multifunction
    kind is ever instantiated under a purely greedy energy (a fresh
    single-function unit is always cheaper than a fresh multifunction one).
    We follow the incremental-cost reading: a candidate may {e widen} an
    existing instance to the cheapest library kind covering its current
    capability set plus the new operation, paying only the area difference —
    which is what makes the Table-2 style multifunction ALUs emerge. *)

type style =
  | Unrestricted  (** Design style 1: any RTL structure. *)
  | No_self_loop
      (** Design style 2: an operation never shares an ALU with a direct DFG
          predecessor or successor (self-testable structures, SYNTEST). *)

type weights = {
  w_time : float;
  w_alu : float;
  w_mux : float;
  w_reg : float;
}

val equal_weights : weights
(** All ones — the paper's "overall optimizer". *)

type iteration = {
  it_node : int;  (** Operation placed in this iteration. *)
  it_step : int;
  it_alu : int;  (** ALU instance id chosen. *)
  it_fresh : bool;  (** Whether a new instance was created. *)
  it_widened : bool;  (** Whether an existing instance was widened. *)
  it_energy : float;  (** Chosen candidate's energy. *)
  it_worst : float;  (** Worst admissible candidate's energy. *)
}

type outcome = {
  schedule : Schedule.t;
  datapath : Rtl.Datapath.t;
  cost : Rtl.Cost.breakdown;
  iterations : iteration list;  (** In placement order. *)
  style : style;
}

val run :
  ?config:Config.t -> ?style:style -> ?weights:weights ->
  library:Celllib.Library.t -> cs:int -> Dfg.Graph.t ->
  (outcome, Diag.t) result
(** Schedule and allocate within [cs] control steps. The configuration's
    delay/pipelining functions are normally {!Config.of_library}. Errors:
    infeasible budget, no capable ALU kind for some operation, or a style-2
    deadlock (an operation whose every admissible position violates the
    self-loop rule). *)

val run_resource :
  ?config:Config.t -> ?style:style -> ?weights:weights ->
  library:Celllib.Library.t -> limits:(string * int) list -> Dfg.Graph.t ->
  (outcome, Diag.t) result
(** Resource-constrained MFSA: at most [limits] ALU instances capable of
    each single-function class ({!Dfg.Op.fu_class} keys; absent classes are
    unconstrained), minimising control steps first and datapath cost second
    — the [V = cs*x + y] regime of §3.1 carried over to allocation: the
    energy's time term becomes a tie-break and the incremental-cost terms
    dominate. The returned schedule's [cs] is the achieved makespan. *)
