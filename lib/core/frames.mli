(** The frame calculus of paper §3.2, step 4.

    An operation moves inside a 2-D placement table whose horizontal
    coordinate is the FU-instance index (column) and whose vertical
    coordinate is the control step. Four frames restrict the move:

    - {b Primary Frame (PF)} — the ASAP/ALAP time range over all columns;
    - {b Redundant Frame (RF)} — columns beyond the currently provisioned
      number of units, excluded unless local rescheduling grows it;
    - {b Forbidden Frame (FF)} — steps violating data dependencies;
    - {b Move Frame} — [MF = PF - (RF + FF)], the valid positions. *)

type pos = { col : int; step : int }
(** A placement-table position; both coordinates are 1-based. *)

type rect = { col_lo : int; col_hi : int; step_lo : int; step_hi : int }
(** A rectangle of positions; empty when a low bound exceeds its high
    bound. *)

val empty_rect : rect

val rect_is_empty : rect -> bool
val rect_mem : rect -> pos -> bool

type scan = Row_major | Col_major
(** Enumeration order of a rectangle: [Row_major] = steps outer, columns
    inner; [Col_major] = columns outer, steps inner. Chosen so the Liapunov
    energy is nondecreasing along the scan: [Row_major] for the
    time-constrained energy [x + n*y] (any position in an earlier step beats
    any later one when [n] is at least the column count) and [Col_major] for
    the resource-constrained energy [cs*x + y]. *)

val rect_seq : ?scan:scan -> ?rev:bool -> rect -> pos Seq.t
(** Lazy enumeration of a rectangle's positions, [Row_major] by default;
    [rev] walks the same order backwards (used to find the ALFAP corner —
    the worst admissible position — without materialising the frame). *)

val rect_positions : rect -> pos list
(** Row-major enumeration (steps outer, columns inner), eager. *)

val primary : step_lo:int -> step_hi:int -> max_cols:int -> rect
(** PF for an operation: its time frame across every potential unit. *)

val redundant : current:int -> max_cols:int -> step_lo:int -> step_hi:int -> rect
(** RF: columns [current+1 .. max_cols] of the same time frame. *)

val find :
  ?scan:scan -> ?rev:bool -> pf:rect -> rf:rect -> forbidden:(int -> bool) ->
  free:(col:int -> step:int -> bool) -> unit -> pos option
(** First free position of [MF = PF - (RF + FF)] in the given scan order
    ([rev] walks it backwards) — semantically [Seq.find] over
    {!move_frame_seq} restricted to [free] positions, but implemented as
    nested integer loops with an unboxed occupancy probe so the kernel's
    inner search allocates nothing until the hit. *)

val move_frame_seq :
  ?scan:scan -> ?rev:bool -> pf:rect -> rf:rect -> forbidden:(int -> bool) ->
  unit -> pos Seq.t
(** Lazy [MF = PF - (RF + FF)] in the given scan order — the kernel's inner
    iterator: a consumer looking for the minimum-energy free position stops
    at its first hit instead of materialising the frame. [forbidden] is the
    FF membership test on steps. *)

val move_frame :
  pf:rect -> rf:rect -> forbidden:(int -> bool) -> free:(pos -> bool) ->
  pos list
(** [MF = PF - (RF + FF)], restricted to unoccupied positions. [forbidden]
    is the FF membership test on steps; [free] the occupancy test. Eager;
    the scheduler itself uses {!move_frame_seq}. *)

val move_frame_set : pf:rect -> rf:rect -> forbidden:(int -> bool) -> pos list
(** The pure set difference [PF - (RF + FF)] ignoring occupancy — exposed so
    property tests can verify the set identity directly. *)

val pp_pos : Format.formatter -> pos -> unit
val pp_rect : Format.formatter -> rect -> unit
