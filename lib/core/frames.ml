type pos = { col : int; step : int }

type rect = { col_lo : int; col_hi : int; step_lo : int; step_hi : int }

let empty_rect = { col_lo = 1; col_hi = 0; step_lo = 1; step_hi = 0 }

let rect_is_empty r = r.col_lo > r.col_hi || r.step_lo > r.step_hi

let rect_mem r p =
  p.col >= r.col_lo && p.col <= r.col_hi && p.step >= r.step_lo
  && p.step <= r.step_hi

type scan = Row_major | Col_major

let rect_seq ?(scan = Row_major) ?(rev = false) r =
  if rect_is_empty r then Seq.empty
  else
    let o_lo, o_hi, i_lo, i_hi, mk =
      match scan with
      | Row_major ->
          ( r.step_lo,
            r.step_hi,
            r.col_lo,
            r.col_hi,
            fun o i -> { col = i; step = o } )
      | Col_major ->
          ( r.col_lo,
            r.col_hi,
            r.step_lo,
            r.step_hi,
            fun o i -> { col = o; step = i } )
    in
    let o_first, o_last, i_first, i_last =
      if rev then (o_hi, o_lo, i_hi, i_lo) else (o_lo, o_hi, i_lo, i_hi)
    in
    let next x = if rev then x - 1 else x + 1 in
    let past ~last x = if rev then x < last else x > last in
    let rec go o i () =
      if past ~last:o_last o then Seq.Nil
      else if past ~last:i_last i then go (next o) i_first ()
      else Seq.Cons (mk o i, go o (next i))
    in
    go o_first i_first

let rect_positions r = List.of_seq (rect_seq r)

let primary ~step_lo ~step_hi ~max_cols =
  { col_lo = 1; col_hi = max_cols; step_lo; step_hi }

let redundant ~current ~max_cols ~step_lo ~step_hi =
  { col_lo = current + 1; col_hi = max_cols; step_lo; step_hi }

(* First free move-frame position in scan order, as nested integer loops:
   the kernel's inner search, equivalent to consuming {!move_frame_seq} but
   with no closure or cons cell per visited position — only the returned
   [pos] allocates. *)
let find ?(scan = Row_major) ?(rev = false) ~pf ~rf ~forbidden ~free () =
  if rect_is_empty pf then None
  else begin
    let in_rf col step =
      col >= rf.col_lo && col <= rf.col_hi && step >= rf.step_lo
      && step <= rf.step_hi
    in
    let o_lo, o_hi, i_lo, i_hi =
      match scan with
      | Row_major -> (pf.step_lo, pf.step_hi, pf.col_lo, pf.col_hi)
      | Col_major -> (pf.col_lo, pf.col_hi, pf.step_lo, pf.step_hi)
    in
    let o_first, o_last, i_first, i_last, dir =
      if rev then (o_hi, o_lo, i_hi, i_lo, -1) else (o_lo, o_hi, i_lo, i_hi, 1)
    in
    let found = ref None in
    let o = ref o_first in
    while !found = None && (if dir > 0 then !o <= o_last else !o >= o_last) do
      (* In row-major order the outer coordinate is the step: a forbidden
         step rejects its whole row without visiting any column. *)
      let skip_row = (match scan with Row_major -> forbidden !o | Col_major -> false) in
      if not skip_row then begin
        let i = ref i_first in
        while
          !found = None && (if dir > 0 then !i <= i_last else !i >= i_last)
        do
          let col, step =
            match scan with Row_major -> (!i, !o) | Col_major -> (!o, !i)
          in
          if (not (in_rf col step)) && (not (forbidden step)) && free ~col ~step
          then found := Some { col; step };
          i := !i + dir
        done
      end;
      o := !o + dir
    done;
    !found
  end

let move_frame_seq ?scan ?rev ~pf ~rf ~forbidden () =
  Seq.filter
    (fun p -> (not (rect_mem rf p)) && not (forbidden p.step))
    (rect_seq ?scan ?rev pf)

let move_frame_set ~pf ~rf ~forbidden =
  List.of_seq (move_frame_seq ~pf ~rf ~forbidden ())

let move_frame ~pf ~rf ~forbidden ~free =
  List.filter free (move_frame_set ~pf ~rf ~forbidden)

let pp_pos ppf p = Format.fprintf ppf "(fu%d,s%d)" p.col p.step

let pp_rect ppf r =
  if rect_is_empty r then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf "[fu%d..%d]x[s%d..%d]" r.col_lo r.col_hi r.step_lo
      r.step_hi
