let step_admissible cfg g ~start ~offset i s =
  let preds = Dfg.Graph.preds g i in
  let kind j = (Dfg.Graph.node g j).Dfg.Graph.kind in
  let d j = Config.delay cfg (kind j) in
  match cfg.Config.chaining with
  | None ->
      if List.for_all (fun p -> s >= start.(p) + d p) preds then Some 0.0
      else None
  | Some { Config.prop_delay; clock } ->
      let pd j = Config.node_prop cfg prop_delay (Dfg.Graph.node g j) in
      let eps = 1e-9 in
      let rec go off = function
        | [] ->
            (* A multi-cycle operation spans several periods by design and
               registers per stage: the single-period fit test applies to
               combinational (1-cycle) operations only. *)
            if d i > 1 then Some off
            else if off +. pd i <= clock +. eps then Some off
            else None
        | p :: rest ->
            if s >= start.(p) + d p then go off rest
            else if d p = 1 && d i = 1 && s = start.(p) then
              go (Float.max off (offset.(p) +. pd p)) rest
            else None
      in
      go 0.0 preds

let bounds cfg g ~cs =
  match cfg.Config.chaining with
  | None -> Dfg.Bounds.compute ~delays:(Config.delay cfg) g ~cs
  | Some { Config.prop_delay; clock } -> (
      match
        Dfg.Bounds.compute_chained ~delays:(Config.delay cfg)
          ~node_prop:(Config.node_prop_override cfg) ~prop_delay ~clock g ~cs
      with
      | Error _ as e -> e
      | Ok ch ->
          Ok
            {
              Dfg.Bounds.asap = Array.map fst ch.Dfg.Bounds.ch_asap;
              alap = Array.map fst ch.Dfg.Bounds.ch_alap;
              cs;
            })

let min_cs cfg g =
  match cfg.Config.chaining with
  | None -> max 1 (Dfg.Bounds.critical_path ~delays:(Config.delay cfg) g)
  | Some { Config.prop_delay; clock } -> (
      match
        Dfg.Bounds.chained_critical_path ~delays:(Config.delay cfg)
          ~node_prop:(Config.node_prop_override cfg) ~prop_delay ~clock g
      with
      | Ok v -> max 1 v
      | Error _ ->
          max 1 (Dfg.Bounds.critical_path ~delays:(Config.delay cfg) g))
