type objective =
  | Time_constrained of { n : int }
  | Resource_constrained of { cs : int }

let value obj (p : Frames.pos) =
  match obj with
  | Time_constrained { n } -> p.Frames.col + (n * p.Frames.step)
  | Resource_constrained { cs } -> (cs * p.Frames.col) + p.Frames.step

let scan = function
  | Time_constrained _ -> Frames.Row_major
  | Resource_constrained _ -> Frames.Col_major

let best_lazy obj ~pf ~rf ~forbidden ~free =
  Seq.find free (Frames.move_frame_seq ~scan:(scan obj) ~pf ~rf ~forbidden ())

let worst_lazy obj ~pf ~rf ~forbidden ~free =
  Seq.find free
    (Frames.move_frame_seq ~scan:(scan obj) ~rev:true ~pf ~rf ~forbidden ())

let best_find obj ~pf ~rf ~forbidden ~free =
  Frames.find ~scan:(scan obj) ~pf ~rf ~forbidden ~free ()

let worst_find obj ~pf ~rf ~forbidden ~free =
  Frames.find ~scan:(scan obj) ~rev:true ~pf ~rf ~forbidden ~free ()

let total obj positions =
  List.fold_left (fun acc p -> acc + value obj p) 0 positions

module Acc = struct
  type t = { objective : objective; mutable total : int }

  let create ?(total = 0) objective = { objective; total }
  let objective t = t.objective
  let total t = t.total
  let add t p = t.total <- t.total + value t.objective p
  let remove t p = t.total <- t.total - value t.objective p
end

let best obj positions =
  let better a b =
    let va = value obj a and vb = value obj b in
    va < vb
    || (va = vb
        && (a.Frames.step < b.Frames.step
            || (a.Frames.step = b.Frames.step && a.Frames.col < b.Frames.col)))
  in
  List.fold_left
    (fun acc p ->
      match acc with Some q when better q p -> acc | _ -> Some p)
    None positions

module Trace = struct
  type entry = {
    op : int;
    from_pos : Frames.pos;
    to_pos : Frames.pos;
    from_value : int;
    to_value : int;
  }

  type t = { mutable rev_entries : entry list }

  let create () = { rev_entries = [] }

  let record t obj ~op ~from_pos ~to_pos =
    t.rev_entries <-
      {
        op;
        from_pos;
        to_pos;
        from_value = value obj from_pos;
        to_value = value obj to_pos;
      }
      :: t.rev_entries

  let entries t = List.rev t.rev_entries
  let of_entries es = { rev_entries = List.rev es }

  let non_increasing t =
    List.for_all (fun e -> e.to_value <= e.from_value) t.rev_entries

  let positive t =
    List.for_all
      (fun e -> e.to_value > 0 && e.from_value > 0)
      t.rev_entries

  let contraction e =
    ( float_of_int e.to_pos.Frames.col /. float_of_int e.from_pos.Frames.col,
      float_of_int e.to_pos.Frames.step /. float_of_int e.from_pos.Frames.step )
end
