type t = {
  graph : Dfg.Graph.t;
  config : Config.t;
  start : int array;
  col : int array option;
  offset : float array;
  cs : int;
}

let make ?col ?offset ~config ~cs graph start =
  let offset =
    match offset with
    | Some o -> o
    | None -> Array.make (Dfg.Graph.num_nodes graph) 0.0
  in
  { graph; config; start; col; offset; cs }

let kind t i = (Dfg.Graph.node t.graph i).Dfg.Graph.kind
let delay t i = Config.delay t.config (kind t i)
let span t i = Config.span t.config (kind t i)
let finish t i = t.start.(i) + delay t i - 1

let makespan t =
  let n = Dfg.Graph.num_nodes t.graph in
  let rec go acc i = if i >= n then acc else go (max acc (finish t i)) (i + 1) in
  go 0 0

let exclusive t i j =
  t.config.Config.share_mutex && Dfg.Graph.mutually_exclusive t.graph i j

let latency t = t.config.Config.functional_latency

(* Occupied cells of node [i] on its class grid, folded modulo the
   functional-pipelining latency when active. *)
let cells t i =
  let s = t.start.(i) and sp = span t i in
  match latency t with
  | None -> List.init sp (fun k -> s + k)
  | Some l -> List.init sp (fun k -> ((s + k - 1) mod l + l) mod l)

let cells_overlap t i j =
  Grid.steps_overlap ~latency:(latency t) t.start.(i) (span t i) t.start.(j)
    (span t j)

let fu_counts t =
  let classes = Dfg.Graph.classes t.graph in
  match t.col with
  | Some col ->
      List.map
        (fun c ->
          let used =
            List.fold_left
              (fun acc nd ->
                if String.equal (Dfg.Graph.node_class t.graph nd) c then
                  max acc col.(nd.Dfg.Graph.id)
                else acc)
              0 (Dfg.Graph.nodes t.graph)
          in
          (c, used))
        classes
  | None ->
      (* Peak concurrency per class; mutually-exclusive ops stack on one
         unit, so count cliques of non-exclusive ops per cell greedily. *)
      List.map
        (fun c ->
          let members =
            List.filter
              (fun nd -> String.equal (Dfg.Graph.node_class t.graph nd) c)
              (Dfg.Graph.nodes t.graph)
            |> List.map (fun nd -> nd.Dfg.Graph.id)
          in
          let horizon =
            match latency t with Some l -> l | None -> t.cs + 1
          in
          let peak = ref 0 in
          for cell = 0 to horizon do
            let active =
              List.filter
                (fun i ->
                  List.mem
                    (match latency t with
                    | None -> cell
                    | Some _ -> cell)
                    (cells t i))
                members
            in
            (* Greedily pack mutually-exclusive ops onto shared units. *)
            let units = ref [] in
            List.iter
              (fun i ->
                let rec try_units = function
                  | [] -> units := [ i ] :: !units
                  | u :: rest ->
                      if List.for_all (fun j -> exclusive t i j) u then begin
                        units :=
                          (i :: u) :: List.filter (fun v -> v != u) !units;
                        ignore rest
                      end
                      else try_units rest
                in
                try_units !units)
              active;
            peak := max !peak (List.length !units)
          done;
          (c, !peak))
        classes

let chain_allowed t p i =
  match t.config.Config.chaining with
  | None -> false
  | Some { Config.prop_delay; clock } ->
      let pd j = Config.node_prop t.config prop_delay (Dfg.Graph.node t.graph j) in
      delay t p = 1 && delay t i = 1
      && t.start.(i) = t.start.(p)
      && t.offset.(i) +. 1e-9 >= t.offset.(p) +. pd p
      && t.offset.(i) +. pd i <= clock +. 1e-9

(* Violations are typed diagnostics so the CLI, the static analyzer and the
   harness all render through one code path; [check] below keeps the legacy
   string surface as a thin projection. *)
let check_diags t =
  let errs = ref [] in
  let add ~code fmt =
    Printf.ksprintf (fun s -> errs := Diag.internal ~code s :: !errs) fmt
  in
  let n = Dfg.Graph.num_nodes t.graph in
  for i = 0 to n - 1 do
    let name = (Dfg.Graph.node t.graph i).Dfg.Graph.name in
    if t.start.(i) < 1 then
      add ~code:"schedule.start-range" "op %s starts at step %d < 1" name
        t.start.(i);
    if finish t i > t.cs then
      add ~code:"schedule.horizon" "op %s finishes at step %d > horizon %d"
        name (finish t i) t.cs;
    List.iter
      (fun p ->
        let pname = (Dfg.Graph.node t.graph p).Dfg.Graph.name in
        let ok =
          t.start.(i) >= t.start.(p) + delay t p || chain_allowed t p i
        in
        if not ok then
          add ~code:"schedule.precedence"
            "precedence violated: %s (start %d) needs %s (finishes %d)" name
            t.start.(i) pname (finish t p))
      (Dfg.Graph.preds t.graph i)
  done;
  (match t.col with
  | None -> ()
  | Some col ->
      for i = 0 to n - 1 do
        if col.(i) < 1 then
          add ~code:"schedule.col-range" "op %s bound to column %d < 1"
            (Dfg.Graph.node t.graph i).Dfg.Graph.name col.(i);
        for j = i + 1 to n - 1 do
          let same_class =
            String.equal
              (Dfg.Graph.node_class t.graph (Dfg.Graph.node t.graph i))
              (Dfg.Graph.node_class t.graph (Dfg.Graph.node t.graph j))
          in
          if
            same_class && col.(i) = col.(j)
            && cells_overlap t i j
            && not (exclusive t i j)
          then
            add ~code:"schedule.fu-conflict"
              "FU conflict: %s and %s share %s unit %d"
              (Dfg.Graph.node t.graph i).Dfg.Graph.name
              (Dfg.Graph.node t.graph j).Dfg.Graph.name
              (Dfg.Graph.node_class t.graph (Dfg.Graph.node t.graph i))
              col.(i)
        done
      done);
  List.rev !errs

let check t =
  match check_diags t with
  | [] -> Ok ()
  | ds -> Error (List.map Diag.message ds)

let check_diag t =
  match check_diags t with
  | [] -> Ok ()
  | ds ->
      Error
        (Diag.internal ~code:"schedule.invalid"
           (String.concat "; " (List.map Diag.message ds)))

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule over %d steps:@," t.cs;
  for s = 1 to t.cs do
    let active =
      List.filter
        (fun nd ->
          let i = nd.Dfg.Graph.id in
          s >= t.start.(i) && s <= finish t i)
        (Dfg.Graph.nodes t.graph)
    in
    let cell nd =
      let i = nd.Dfg.Graph.id in
      match t.col with
      | Some col ->
          Printf.sprintf "%s@%s%d" nd.Dfg.Graph.name
            (Dfg.Graph.node_class t.graph nd)
            col.(i)
      | None -> nd.Dfg.Graph.name
    in
    Format.fprintf ppf "s%-2d: %s@," s (String.concat " " (List.map cell active))
  done;
  List.iter
    (fun (c, k) -> Format.fprintf ppf "units %s: %d@," c k)
    (fu_counts t);
  Format.fprintf ppf "@]"
