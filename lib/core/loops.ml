type tree = {
  body : Dfg.Graph.t;
  budget : int;
  children : (string * tree) list;
}

type scheduled = {
  loop_schedule : Schedule.t;
  loop_children : (string * scheduled) list;
}

let add_iteration_control g ~counter ~bound =
  let clash n = Dfg.Graph.find g n <> None in
  if clash counter || clash bound || clash "c1" then
    Error
      (Printf.sprintf
         "loop control: %S, %S or the unit constant \"c1\" names an existing \
          operation"
         counter bound)
  else begin
    let b = Dfg.Graph.Builder.create () in
    List.iter (Dfg.Graph.Builder.add_input b) (Dfg.Graph.inputs g);
    List.iter (Dfg.Graph.Builder.add_input b) [ counter; bound; "c1" ];
    List.iter
      (fun nd ->
        Dfg.Graph.Builder.add_op b ~guards:nd.Dfg.Graph.guards
          ~name:nd.Dfg.Graph.name nd.Dfg.Graph.kind nd.Dfg.Graph.args)
      (Dfg.Graph.nodes g);
    Dfg.Graph.Builder.add_op b ~name:(counter ^ "__next") Dfg.Op.Add
      [ counter; "c1" ];
    Dfg.Graph.Builder.add_op b ~name:(counter ^ "__continue") Dfg.Op.Lt
      [ counter ^ "__next"; bound ];
    (* The unit constant is exact; loop-carried widening in the range
       analysis keys off the [counter]/[counter ^ "__next"] pairing. *)
    Dfg.Graph.Builder.declare_range b "c1" (1, 1);
    Result.map
      (Dfg.Graph.copy_annotations ~from:g)
      (Dfg.Graph.Builder.build b)
  end

let expand_placeholder g ~name ~cycles =
  if cycles < 1 then Error (Printf.sprintf "loop %S: budget %d < 1" name cycles)
  else
    match Dfg.Graph.find g name with
    | None -> Error (Printf.sprintf "placeholder node %S not found" name)
    | Some target ->
        let b = Dfg.Graph.Builder.create () in
        List.iter (Dfg.Graph.Builder.add_input b) (Dfg.Graph.inputs g);
        List.iter
          (fun nd ->
            if nd.Dfg.Graph.id = target.Dfg.Graph.id then begin
              (* name__1 <- args; name__k <- name__(k-1); last keeps [name]. *)
              let link k = Printf.sprintf "%s__%d" name k in
              for k = 1 to cycles do
                let this = if k = cycles then name else link k in
                (* The chain head keeps the placeholder's own kind and
                   operands, so every dependency into the loop survives;
                   the tail links are unit-delay movs. *)
                let kind, args =
                  if k = 1 then (nd.Dfg.Graph.kind, nd.Dfg.Graph.args)
                  else (Dfg.Op.Mov, [ link (k - 1) ])
                in
                Dfg.Graph.Builder.add_op b ~guards:nd.Dfg.Graph.guards
                  ~name:this kind args
              done
            end
            else
              Dfg.Graph.Builder.add_op b ~guards:nd.Dfg.Graph.guards
                ~name:nd.Dfg.Graph.name nd.Dfg.Graph.kind nd.Dfg.Graph.args)
          (Dfg.Graph.nodes g);
        Result.map
          (Dfg.Graph.copy_annotations ~from:g)
          (Dfg.Graph.Builder.build b)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let prefix_error path r =
  Result.map_error (fun e -> Printf.sprintf "loop %s: %s" path e) r

let rec schedule_tree ?config path t =
  (* Children first (innermost loops), then expand and schedule this body. *)
  let rec do_children acc = function
    | [] -> Ok (List.rev acc)
    | (name, child) :: rest ->
        let* sub = schedule_tree ?config (path ^ "/" ^ name) child in
        do_children ((name, sub) :: acc) rest
  in
  let* loop_children = do_children [] t.children in
  let* body =
    List.fold_left
      (fun acc (name, child) ->
        let* g = acc in
        prefix_error path
          (expand_placeholder g ~name ~cycles:child.budget))
      (Ok t.body) t.children
  in
  let* loop_schedule =
    prefix_error path
      (Result.map_error Diag.message
         (Mfs.schedule ?config body (Mfs.Time { cs = t.budget })))
  in
  Ok { loop_schedule; loop_children }

let schedule_nested ?config t = schedule_tree ?config "top" t

type allocated = {
  alloc_outcome : Mfsa.outcome;
  alloc_children : (string * allocated) list;
}

let rec allocate_tree ?config ?style ~library path t =
  let rec do_children acc = function
    | [] -> Ok (List.rev acc)
    | (name, child) :: rest ->
        let* sub =
          allocate_tree ?config ?style ~library (path ^ "/" ^ name) child
        in
        do_children ((name, sub) :: acc) rest
  in
  let* alloc_children = do_children [] t.children in
  let* body =
    List.fold_left
      (fun acc (name, child) ->
        let* g = acc in
        prefix_error path (expand_placeholder g ~name ~cycles:child.budget))
      (Ok t.body) t.children
  in
  let* alloc_outcome =
    prefix_error path
      (Result.map_error Diag.message
         (Mfsa.run ?config ?style ~library ~cs:t.budget body))
  in
  Ok { alloc_outcome; alloc_children }

let allocate_nested ?config ?style ~library t =
  allocate_tree ?config ?style ~library "top" t

let rec total_cost a =
  a.alloc_outcome.Mfsa.cost.Rtl.Cost.total
  +. List.fold_left (fun acc (_, c) -> acc +. total_cost c) 0. a.alloc_children

let total_steps s = s.loop_schedule.Schedule.cs
