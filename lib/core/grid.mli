(** Occupancy of the 2-D placement table for one FU type (paper Fig. 1).

    Backed by an occupancy matrix: one cell per (column, step) with its
    occupant ops plus per-column fill counts, so [free]/[conflicts]/
    [occupants] cost O(span of the candidate) instead of O(placements).

    A placement occupies [span] consecutive steps of one column (one step for
    operations running on pipelined units, which only block their issue
    slot). Two placements may share cells when the operations are mutually
    exclusive (§5.1). Under functional pipelining with latency [L], steps
    congruent modulo [L] conflict because successive loop instances overlap
    (§5.5.2). *)

type t

val create : steps:int -> cols:int -> t

val steps : t -> int
val cols : t -> int

val ensure_cols : t -> int -> unit
(** Grow the table to at least the given number of columns. *)

val place : t -> op:int -> col:int -> step:int -> span:int -> unit
(** Record a placement. Steps beyond the horizon are an error.
    @raise Invalid_argument on out-of-range coordinates or when [op] is
    already placed (use {!unplace} first). *)

val unplace : t -> op:int -> unit
(** Remove one placement, freeing its cells — used by local rescheduling to
    undo a single move without rebuilding the whole grid.
    @raise Invalid_argument when [op] is not placed. *)

val clear : t -> unit
(** Remove every placement (used by local rescheduling restarts); keeps the
    allocated matrix. *)

val steps_overlap : latency:int option -> int -> int -> int -> int -> bool
(** [steps_overlap ~latency a sa b sb]: do step ranges [a, a+sa-1] and
    [b, b+sb-1] share a cell, folding steps modulo [latency] when functional
    pipelining is active? The single source of the occupancy-overlap
    semantics, shared by MFS, MFSA, schedule validation and the baselines. *)

val conflicts :
  t -> latency:int option -> col:int -> step:int -> span:int -> int list
(** Ops already occupying any cell the candidate placement would use, with
    cells compared modulo [latency] when given; most recent first. *)

val free :
  t -> exclusive:(int -> int -> bool) -> latency:int option ->
  op:int -> span:int -> Frames.pos -> bool
(** Whether the candidate placement at [pos] causes no conflict (any
    occupant must be mutually exclusive with [op]). *)

val occupants : t -> col:int -> step:int -> int list
(** Ops occupying a cell (without modulo folding), most recent first. *)

val used_cols : t -> int
(** Highest column index holding at least one placement; 0 when empty. *)

val placements : t -> (int * int * int * int) list
(** All placements as [(op, col, step, span)], in placement order. *)
