(** Occupancy of the 2-D placement table for one FU type (paper Fig. 1).

    Backed by word-packed bitset rows: each column carries a bit per control
    step (set iff the cell holds at least one op), so an empty-span fit probe
    costs O(span / word size) word operations and per-column fill counts are
    popcounts over the same words. Occupant identity — needed for
    mutual-exclusion sharing and [conflicts] — lives in a parallel cell
    array, so [free]/[conflicts]/[occupants] stay O(span of the candidate)
    instead of O(placements).

    A placement occupies [span] consecutive steps of one column (one step for
    operations running on pipelined units, which only block their issue
    slot). Two placements may share cells when the operations are mutually
    exclusive (§5.1). Under functional pipelining with latency [L], steps
    congruent modulo [L] conflict because successive loop instances overlap
    (§5.5.2). *)

type t

exception Invariant of Diag.t
(** Raised when grid bookkeeping is caught out of sync — e.g. unplacing an op
    that is not placed (double unplace), or a cell record disagreeing with the
    placement table. Carries a typed internal diagnostic instead of silently
    corrupting occupancy state. *)

val create : steps:int -> cols:int -> t

val steps : t -> int
val cols : t -> int

val ensure_cols : t -> int -> unit
(** Grow the table to at least the given number of columns. *)

val place : t -> op:int -> col:int -> step:int -> span:int -> unit
(** Record a placement. Steps beyond the horizon are an error.
    @raise Invalid_argument on out-of-range coordinates or when [op] is
    already placed (use {!unplace} first). *)

val unplace : t -> op:int -> unit
(** Remove one placement, freeing its cells — used by local rescheduling to
    undo a single move without rebuilding the whole grid.
    @raise Invariant when [op] is not placed (double unplace or never
    placed); the grid is left unchanged. *)

val clear : t -> unit
(** Remove every placement (used by local rescheduling restarts); keeps the
    allocated matrix. *)

val steps_overlap : latency:int option -> int -> int -> int -> int -> bool
(** [steps_overlap ~latency a sa b sb]: do step ranges [a, a+sa-1] and
    [b, b+sb-1] share a cell, folding steps modulo [latency] when functional
    pipelining is active? The single source of the occupancy-overlap
    semantics, shared by MFS, MFSA, schedule validation and the baselines. *)

val conflicts :
  t -> latency:int option -> col:int -> step:int -> span:int -> int list
(** Ops already occupying any cell the candidate placement would use, with
    cells compared modulo [latency] when given; most recent first. *)

val free :
  t -> exclusive:(int -> int -> bool) -> latency:int option ->
  op:int -> span:int -> Frames.pos -> bool
(** Whether the candidate placement at [pos] causes no conflict (any
    occupant must be mutually exclusive with [op]). *)

val free_at :
  t -> exclusive:(int -> int -> bool) -> latency:int option ->
  op:int -> span:int -> col:int -> step:int -> bool
(** [free] taking the position unboxed — the scheduler's inner-loop probe,
    avoiding a {!Frames.pos} allocation per candidate. *)

val fill : t -> col:int -> int
(** Number of occupied cells in a column (popcount over its packed rows);
    0 for out-of-range columns. *)

val occupants : t -> col:int -> step:int -> int list
(** Ops occupying a cell (without modulo folding), most recent first. *)

val used_cols : t -> int
(** Highest column index holding at least one placement; 0 when empty. *)

val placements : t -> (int * int * int * int) list
(** All placements as [(op, col, step, span)], in placement order. *)
