let mobility = Dfg.Bounds.mobility

(* Earliest point at which the operands can be ready, used as the final
   tie-breaker: "the operation with earlier predecessors (in terms of
   control steps) will get higher priority". *)
let readiness cfg g bounds i =
  List.fold_left
    (fun acc p ->
      let pd = Config.delay cfg (Dfg.Graph.node g p).Dfg.Graph.kind in
      max acc (bounds.Dfg.Bounds.asap.(p) + pd))
    1 (Dfg.Graph.preds g i)

(* Ready-queue as a binary min-heap over the precomputed priority key
   (alap, mobility, readiness, id).  Only usable when that key induces a
   total order — see [order] for why multi-cycle configurations do not. *)
module Heap = struct
  type t = {
    key : int -> int -> int; (* strict total order as a comparison *)
    mutable heap : int array;
    mutable size : int;
  }

  let create ~capacity key =
    { key; heap = Array.make (max 1 capacity) 0; size = 0 }

  let swap t a b =
    let x = t.heap.(a) in
    t.heap.(a) <- t.heap.(b);
    t.heap.(b) <- x

  let rec sift_up t k =
    if k > 0 then begin
      let parent = (k - 1) / 2 in
      if t.key t.heap.(k) t.heap.(parent) < 0 then begin
        swap t k parent;
        sift_up t parent
      end
    end

  let rec sift_down t k =
    let l = (2 * k) + 1 and r = (2 * k) + 2 in
    let smallest = ref k in
    if l < t.size && t.key t.heap.(l) t.heap.(!smallest) < 0 then smallest := l;
    if r < t.size && t.key t.heap.(r) t.heap.(!smallest) < 0 then smallest := r;
    if !smallest <> k then begin
      swap t k !smallest;
      sift_down t !smallest
    end

  let push t x =
    if t.size = Array.length t.heap then begin
      let grown = Array.make (2 * t.size) 0 in
      Array.blit t.heap 0 grown 0 t.size;
      t.heap <- grown
    end;
    t.heap.(t.size) <- x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let pop t =
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    if t.size > 0 then sift_down t 0;
    top
end

let order cfg g bounds =
  let n = Dfg.Graph.num_nodes g in
  let delay i = Config.delay cfg (Dfg.Graph.node g i).Dfg.Graph.kind in
  (* Readiness is O(|preds|); precomputing it makes each comparison O(1)
     instead of re-walking predecessor lists. *)
  let ready = Array.init n (readiness cfg g bounds) in
  let alap = bounds.Dfg.Bounds.alap in
  let mob = Array.init n (mobility bounds) in
  let compare_mobility i j =
    let mi = mob.(i) and mj = mob.(j) in
    let di = delay i and dj = delay j in
    (* §5.3: between two multi-cycle operations whose mobilities differ by
       less than their cycle count, the more mobile one goes first. *)
    if di > 1 && dj > 1 && abs (mi - mj) < min di dj then compare mj mi
    else compare mi mj
  in
  let compare_ops i j =
    let c = compare alap.(i) alap.(j) in
    if c <> 0 then c
    else
      let c = compare_mobility i j in
      if c <> 0 then c
      else
        let c = compare ready.(i) ready.(j) in
        if c <> 0 then c else compare i j
  in
  (* Emit the highest-priority READY node each round. Plain sorting is not
     enough: under chaining a predecessor can share its successor's ALAP
     step, so (alap, mobility) alone is not a linear extension. *)
  let pending = Array.init n (fun i -> List.length (Dfg.Graph.preds g i)) in
  let uniform_delay =
    let rec go i = i >= n || (delay i = 1 && go (i + 1)) in
    go 0
  in
  if uniform_delay then begin
    (* With every delay = 1 the §5.3 multi-cycle inversion never fires, so
       [compare_ops] is plain lexicographic comparison on the precomputed
       key — a total order — and a ready-heap emits exactly the node the
       argmin scan would, in O((V+E) log V) instead of O(V²).  With any
       multi-cycle operation the inversion makes the comparator intransitive
       (e.g. delays 3/3/3 and mobilities 5/3/1 order a<b, b<c, c<a), so an
       argmin over the ready set is the semantics and a heap does not apply. *)
    let heap = Heap.create ~capacity:n compare_ops in
    for i = 0 to n - 1 do
      if pending.(i) = 0 then Heap.push heap i
    done;
    let acc = ref [] in
    for _ = 1 to n do
      let i = Heap.pop heap in
      List.iter
        (fun s ->
          pending.(s) <- pending.(s) - 1;
          if pending.(s) = 0 then Heap.push heap s)
        (Dfg.Graph.succs g i);
      acc := i :: !acc
    done;
    List.rev !acc
  end
  else begin
    let emitted = Array.make n false in
    let rec emit acc remaining =
      if remaining = 0 then List.rev acc
      else begin
        let best = ref (-1) in
        for i = 0 to n - 1 do
          if (not emitted.(i)) && pending.(i) = 0 then
            if !best < 0 || compare_ops i !best < 0 then best := i
        done;
        let i = !best in
        emitted.(i) <- true;
        List.iter
          (fun s -> pending.(s) <- pending.(s) - 1)
          (Dfg.Graph.succs g i);
        emit (i :: acc) (remaining - 1)
      end
    in
    emit [] n
  end
