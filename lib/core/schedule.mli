(** Scheduling results and their validity rules.

    A schedule assigns every DFG operation a start control step and (when the
    producer performs binding) an FU-instance column within its
    single-function class. {!check} is the single source of truth for
    validity used by unit tests, property tests, and integration tests — for
    MFS, MFSA projections and every baseline scheduler alike. *)

type t = {
  graph : Dfg.Graph.t;
  config : Config.t;
  start : int array;  (** Start control step per node id, 1-based. *)
  col : int array option;
      (** FU instance within the node's class (1-based); [None] for
          schedulers that do not bind instances (e.g. force-directed). *)
  offset : float array;
      (** Intra-step start offset in ns when chaining is enabled; all zero
          otherwise. *)
  cs : int;  (** Schedule horizon in control steps. *)
}

val make :
  ?col:int array -> ?offset:float array -> config:Config.t -> cs:int ->
  Dfg.Graph.t -> int array -> t

val delay : t -> int -> int
(** Execution cycles of a node. *)

val finish : t -> int -> int
(** Last control step the node is executing: [start + delay - 1]. *)

val fu_counts : t -> (string * int) list
(** Units needed per class: the highest bound column when instances are
    bound, otherwise the peak concurrency (with mutually-exclusive
    operations and modulo-latency folding taken into account). *)

val makespan : t -> int
(** Last finish step over all operations. *)

val chain_allowed : t -> int -> int -> bool
(** [chain_allowed t p i]: consumer [i] may read producer [p] through a
    direct wire in the same step — both single-cycle, same start step, and
    the accumulated propagation delays fit the clock period. Always false
    without chaining. *)

val check_diags : t -> Diag.t list
(** All violations found, as typed internal diagnostics with stable
    [schedule.*] codes: precedence (with chaining rules), horizon bounds,
    and — when columns are bound — FU-instance conflicts, including the
    modulo-latency conflicts of functional pipelining. Mutually-exclusive
    operations may overlap when the configuration allows sharing. *)

val check : t -> (unit, string list) result
(** Thin string projection of {!check_diags} for legacy callers. *)

val check_diag : t -> (unit, Diag.t) result
(** {!check_diags} folded into a single [schedule.invalid] internal
    diagnostic — a produced-then-invalid schedule is always a bug, never bad
    input. *)

val pp : Format.formatter -> t -> unit
(** Placement-table listing: one line per step per class. *)
