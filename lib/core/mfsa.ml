type style = Unrestricted | No_self_loop

type weights = {
  w_time : float;
  w_alu : float;
  w_mux : float;
  w_reg : float;
}

let equal_weights = { w_time = 1.; w_alu = 1.; w_mux = 1.; w_reg = 1. }

type iteration = {
  it_node : int;
  it_step : int;
  it_alu : int;
  it_fresh : bool;
  it_widened : bool;
  it_energy : float;
  it_worst : float;
}

type outcome = {
  schedule : Schedule.t;
  datapath : Rtl.Datapath.t;
  cost : Rtl.Cost.breakdown;
  iterations : iteration list;
  style : style;
}

type alu_state = {
  ai_id : int;
  mutable ai_kind : Celllib.Library.alu_kind;
  mutable ai_ops : int list;
}

type target =
  | Existing of alu_state
  | Widen of alu_state * Celllib.Library.alu_kind
  | Fresh of Celllib.Library.alu_kind

(* The MFSA redundant frame: providing more units of some class than
   currently provisioned requires a local rescheduling (paper §3.2 step 4,
   reused by §4.2). *)
exception Grow of string

(* Cheapest library kind covering [need]. *)
let covering_kind lib need =
  List.filter
    (fun a -> Celllib.Op_set.subset need a.Celllib.Library.ops)
    lib.Celllib.Library.alus
  |> List.sort (fun a b -> compare a.Celllib.Library.area b.Celllib.Library.area)
  |> function
  | [] -> None
  | a :: _ -> Some a

exception Infeasible_at_cs

let run_at ?(config = Config.default) ?(style = Unrestricted)
    ?(weights = equal_weights) ?unit_caps ~library ~cs g =
  if Dfg.Graph.num_nodes g = 0 then
    Error (Diag.input ~code:"mfsa.empty-graph" "MFSA: empty graph")
  else
    match Timeframe.bounds config g ~cs with
    | Error msg -> Error (Diag.infeasible ~code:"mfsa.infeasible-budget" msg)
    | Ok bounds -> (
        let n = Dfg.Graph.num_nodes g in
        let kind_of i = (Dfg.Graph.node g i).Dfg.Graph.kind in
        let node_delay i = Config.delay config (kind_of i) in
        let missing =
          List.find_opt
            (fun nd ->
              (* Memory accesses run on bank ports, not library ALUs. *)
              (not (Dfg.Op.is_mem nd.Dfg.Graph.kind))
              && covering_kind library
                   (Celllib.Op_set.singleton nd.Dfg.Graph.kind)
                 = None)
            (Dfg.Graph.nodes g)
        in
        match missing with
        | Some nd ->
            Error
              (Diag.inputf ~code:"mfsa.missing-kind"
                 "MFSA: no ALU kind in the library executes %s (%s)"
                 nd.Dfg.Graph.name
                 (Dfg.Op.to_string nd.Dfg.Graph.kind))
        | None ->
            let order = Priority.order config g bounds in
            let start = Array.make n 0 in
            let offset = Array.make n 0.0 in
            let alu_of = Array.make n (-1) in
            let placed = Array.make n false in
            let alus = ref [] (* newest first *) in
            let next_id = ref 0 in
            let latency = config.Config.functional_latency in
            (* Redundant-frame unit budget per single-function class,
               initialised to ceil(N_c / cs) as in MFS and grown by local
               rescheduling when a move frame comes up empty. *)
            let cs_eff = match latency with Some l -> min l cs | None -> cs in
            let mem_caps = Config.mem_limits config g in
            let current = Hashtbl.create 8 in
            List.iter
              (fun (c, n_c) ->
                let budget =
                  match List.assoc_opt c mem_caps with
                  | Some ports ->
                      (* Bank ports are a hard physical capacity: never
                         grown by rescheduling, and a tighter explicit cap
                         only narrows it. *)
                      let explicit =
                        Option.bind unit_caps (List.assoc_opt c)
                      in
                      max 1 (min ports (Option.value ~default:ports explicit))
                  | None -> (
                      match unit_caps with
                      | None -> max 1 ((n_c + cs_eff - 1) / cs_eff)
                      | Some caps ->
                          (* Resource-constrained: the caps are hard; a class
                             without a cap may use one unit per operation. *)
                          max 1
                            (Option.value ~default:n_c (List.assoc_opt c caps))
                      )
                in
                Hashtbl.replace current c budget)
              (Dfg.Graph.count_by_class g);
            let capable_count ki =
              List.length
                (List.filter
                   (fun a -> Celllib.Op_set.mem ki a.ai_kind.Celllib.Library.ops)
                   !alus)
            in
            let may_provision ki =
              capable_count ki < Hashtbl.find current (Dfg.Op.fu_class ki)
            in
            (* Classes whose existing capacity must not be diverted: when a
               class runs out of positions, the first repair is to stop
               widening its units towards other operations; only if that is
               not enough does the unit count grow. *)
            let no_widen = Hashtbl.create 4 in
            let widen_allowed a =
              not
                (Celllib.Op_set.exists
                   (fun k -> Hashtbl.mem no_widen (Dfg.Op.fu_class k))
                   a.ai_kind.Celllib.Library.ops)
            in
            let exclusive i j =
              config.Config.share_mutex && Dfg.Graph.mutually_exclusive g i j
            in
            (* Span an op occupies on an instance of the given kind. *)
            let pipelined kind = kind.Celllib.Library.stages > 1 in
            let span_on kind i = if pipelined kind then 1 else node_delay i in
            (* One shared occupancy grid over every ALU instance (column =
               instance id + 1), so a candidate probe costs O(span) instead
               of a walk over the instance's operation list. *)
            let grid = Grid.create ~steps:cs ~cols:0 in
            let occupancy_ok a kind i s =
              if pipelined kind = pipelined a.ai_kind then
                Grid.free grid ~exclusive ~latency ~op:i
                  ~span:(span_on kind i)
                  { Frames.col = a.ai_id + 1; step = s }
              else
                (* Widening to a kind of different pipelined-ness changes the
                   occupants' spans too, so the grid cells don't apply; fall
                   back to the pairwise overlap check. *)
                List.for_all
                  (fun j ->
                    exclusive i j
                    || not
                         (Grid.steps_overlap ~latency s (span_on kind i)
                            start.(j) (span_on kind j)))
                  a.ai_ops
            in
            let style_ok a i =
              match style with
              | Unrestricted -> true
              | No_self_loop ->
                  let preds = Dfg.Graph.preds g i
                  and succs = Dfg.Graph.succs g i in
                  List.for_all
                    (fun j -> not (List.mem j preds || List.mem j succs))
                    a.ai_ops
            in
            (* Interconnect-aware source tag of operand [arg] for a consumer
               starting at step [s] (§5.7): chained operands arrive on the
               producing ALU's output line, latched values on a per-value
               line (register sharing refines this at elaboration). *)
            let operand_tag ~s arg =
              match Dfg.Graph.find g arg with
              | None -> "in:" ^ arg
              | Some p ->
                  let pid = p.Dfg.Graph.id in
                  if
                    placed.(pid)
                    && start.(pid) + node_delay pid - 1 >= s
                  then Printf.sprintf "alu%d" alu_of.(pid)
                  else "val:" ^ arg
            in
            let mux_row i s =
              let nd = Dfg.Graph.node g i in
              match List.map (operand_tag ~s) nd.Dfg.Graph.args with
              | [ x ] ->
                  { Rtl.Mux_share.left = x; right = None; commutative = false }
              | [ x; y ] ->
                  {
                    Rtl.Mux_share.left = x;
                    right = Some y;
                    commutative = Dfg.Op.is_commutative nd.Dfg.Graph.kind;
                  }
              | _ -> assert false
            in
            (* Candidate evaluation runs this inside a triple loop; a small
               exhaustive limit keeps it cheap while the final elaboration
               still optimises exactly. *)
            let mux_cost_of_rows rows =
              Rtl.Mux_share.cost ~mux_cost:library.Celllib.Library.mux_cost
                (Rtl.Mux_share.assign ~exhaustive_limit:6 rows)
            in
            let alu_rows a =
              let ops =
                List.sort (fun i j -> compare start.(i) start.(j)) a.ai_ops
              in
              List.map (fun j -> mux_row j start.(j)) ops
            in
            (* Register count of the partially constructed design, optionally
               pretending candidate [cand = (i, s)] were placed (§5.8). *)
            let partial_reg_count cand =
              let consumer_start j =
                if placed.(j) then Some start.(j)
                else
                  match cand with
                  | Some (i, s) when i = j -> Some s
                  | _ -> None
              in
              let death_of ~birth value =
                let uses =
                  List.filter_map
                    (fun nd ->
                      if
                        List.mem value nd.Dfg.Graph.args
                        || List.exists
                             (fun (c, _) -> String.equal c value)
                             nd.Dfg.Graph.guards
                      then consumer_start nd.Dfg.Graph.id
                      else None)
                    (Dfg.Graph.nodes g)
                in
                List.fold_left (fun acc s -> max acc (s - 1)) (birth - 1) uses
              in
              let input_ivs =
                List.map
                  (fun v ->
                    { Rtl.Lifetime.value = v; birth = 0;
                      death = death_of ~birth:0 v })
                  (Dfg.Graph.inputs g)
              in
              let node_ivs =
                List.filter_map
                  (fun nd ->
                    let j = nd.Dfg.Graph.id in
                    let born =
                      if placed.(j) then Some start.(j)
                      else
                        match cand with
                        | Some (i, s) when i = j -> Some s
                        | _ -> None
                    in
                    Option.map
                      (fun s0 ->
                        let birth = s0 + node_delay j - 1 in
                        {
                          Rtl.Lifetime.value = nd.Dfg.Graph.name;
                          birth;
                          death = death_of ~birth nd.Dfg.Graph.name;
                        })
                      born)
                  (Dfg.Graph.nodes g)
              in
              Rtl.Lifetime.max_overlap (input_ivs @ node_ivs)
            in
            let max_marginal = Celllib.Library.max_mux_marginal library in
            (* Time-constrained: C makes an earlier step always win (§4.1).
               Resource-constrained: the cost terms dominate instead and the
               time term only breaks ties towards earlier steps — the
               analogue of switching from V = x + n*y to V = cs*x + y. *)
            let c_const =
              match unit_caps with
              | Some _ -> 1.
              | None ->
                  (weights.w_alu *. Celllib.Library.max_alu_area library)
                  +. (weights.w_mux *. 2. *. max_marginal)
                  +. (weights.w_reg *. 2. *. library.Celllib.Library.reg_cost)
                  +. 1.
            in
            let iterations = ref [] in
            (* Memory accesses are placed on bank ports rather than ALUs:
               the candidate set is admissible steps x lowest free port, and
               a port-pressure term steers accesses away from steps whose
               lower ports are already busy — the memory analogue of the
               ALU-area term. *)
            let mem_grids : (string, Grid.t) Hashtbl.t = Hashtbl.create 4 in
            let place_mem i c =
              let bank = Dfg.Graph.bank_of_class c in
              let ports = Hashtbl.find current c in
              let mgrid =
                match Hashtbl.find_opt mem_grids bank with
                | Some gr -> gr
                | None ->
                    let gr = Grid.create ~steps:cs ~cols:ports in
                    Hashtbl.replace mem_grids bank gr;
                    gr
              in
              let span = node_delay i in
              let regs_before = partial_reg_count None in
              let free_port s =
                let rec find p =
                  if p > ports then None
                  else if
                    Grid.free_at mgrid ~exclusive ~latency ~op:i ~span ~col:p
                      ~step:s
                  then Some p
                  else find (p + 1)
                in
                find 1
              in
              let candidates =
                let lo = bounds.Dfg.Bounds.asap.(i)
                and hi = bounds.Dfg.Bounds.alap.(i) in
                List.init (hi - lo + 1) (fun k -> lo + k)
                |> List.filter_map (fun s ->
                       match
                         Timeframe.step_admissible config g ~start ~offset i s
                       with
                       | None -> None
                       | Some off ->
                           Option.map (fun p -> (s, off, p)) (free_port s))
                |> List.map (fun (s, off, p) ->
                       let f_time =
                         weights.w_time *. c_const *. float_of_int s
                       in
                       let f_reg =
                         weights.w_reg
                         *. float_of_int
                              (partial_reg_count (Some (i, s)) - regs_before)
                         *. library.Celllib.Library.reg_cost
                       in
                       let f_port =
                         weights.w_alu
                         *. float_of_int (p - 1)
                         /. float_of_int ports
                       in
                       (f_time +. f_reg +. f_port, s, off, p))
              in
              match List.sort compare candidates with
              | [] -> raise (Grow c)
              | ((energy, s, off, p) :: _) as all ->
                  let worst =
                    List.fold_left
                      (fun acc (e, _, _, _) -> Float.max acc e)
                      energy all
                  in
                  Grid.place mgrid ~op:i ~col:p ~step:s ~span;
                  start.(i) <- s;
                  offset.(i) <- off;
                  placed.(i) <- true;
                  iterations :=
                    {
                      it_node = i;
                      it_step = s;
                      it_alu = -1;
                      it_fresh = false;
                      it_widened = false;
                      it_energy = energy;
                      it_worst = worst;
                    }
                    :: !iterations
            in
            let place_all () =
              List.iter
                (fun i ->
                  let ki = kind_of i in
                  if Dfg.Op.is_mem ki then
                    place_mem i (Dfg.Graph.node_class g (Dfg.Graph.node g i))
                  else begin
                  let regs_before = partial_reg_count None in
                  (* Per-iteration cache: the "before" mux cost of an ALU
                     does not depend on the candidate step. *)
                  let before_cache = Hashtbl.create 8 in
                  let before_cost a =
                    match Hashtbl.find_opt before_cache a.ai_id with
                    | Some v -> v
                    | None ->
                        let v = mux_cost_of_rows (alu_rows a) in
                        Hashtbl.replace before_cache a.ai_id v;
                        v
                  in
                  let steps =
                    let lo = bounds.Dfg.Bounds.asap.(i)
                    and hi = bounds.Dfg.Bounds.alap.(i) in
                    List.init (hi - lo + 1) (fun k -> lo + k)
                    |> List.filter_map (fun s ->
                           Option.map
                             (fun off -> (s, off))
                             (Timeframe.step_admissible config g ~start
                                ~offset i s))
                  in
                  let candidates = ref [] in
                  List.iter
                    (fun (s, off) ->
                      let f_time = weights.w_time *. c_const *. float_of_int s in
                      let reg_delta =
                        float_of_int (partial_reg_count (Some (i, s)) - regs_before)
                      in
                      let f_reg =
                        weights.w_reg *. reg_delta
                        *. library.Celllib.Library.reg_cost
                      in
                      let consider target =
                        let kind, f_alu, a_opt =
                          match target with
                          | Existing a -> (a.ai_kind, 0., Some a)
                          | Widen (a, k) ->
                              ( k,
                                Float.max 0.
                                  (k.Celllib.Library.area
                                  -. a.ai_kind.Celllib.Library.area),
                                Some a )
                          | Fresh k -> (k, k.Celllib.Library.area, None)
                        in
                        let ok =
                          match a_opt with
                          | Some a ->
                              occupancy_ok a kind i s && style_ok a i
                          | None -> true
                        in
                        if ok then begin
                          let f_mux =
                            match a_opt with
                            | Some a ->
                                weights.w_mux
                                *. (mux_cost_of_rows
                                      (alu_rows a @ [ mux_row i s ])
                                   -. before_cost a)
                            | None ->
                                weights.w_mux
                                *. mux_cost_of_rows [ mux_row i s ]
                          in
                          let energy =
                            f_time +. (weights.w_alu *. f_alu) +. f_mux
                            +. f_reg
                          in
                          candidates :=
                            (energy, s, off, target) :: !candidates
                        end
                      in
                      List.iter
                        (fun a ->
                          if Celllib.Op_set.mem ki a.ai_kind.Celllib.Library.ops
                          then consider (Existing a)
                          else if may_provision ki && widen_allowed a then
                            match
                              covering_kind library
                                (Celllib.Op_set.add ki
                                   a.ai_kind.Celllib.Library.ops)
                            with
                            | Some k -> consider (Widen (a, k))
                            | None -> ())
                        (List.rev !alus);
                      if may_provision ki then
                        match
                          covering_kind library (Celllib.Op_set.singleton ki)
                        with
                        | Some k -> consider (Fresh k)
                        | None -> ())
                    steps;
                  let rank (e, s, _, target) =
                    let t =
                      match target with
                      | Existing a -> (0, a.ai_id)
                      | Widen (a, _) -> (1, a.ai_id)
                      | Fresh _ -> (2, max_int)
                    in
                    (e, s, t)
                  in
                  match
                    List.sort (fun x y -> compare (rank x) (rank y)) !candidates
                  with
                  | [] -> raise (Grow (Dfg.Op.fu_class ki))
                  | ((energy, s, off, target) :: _) as all ->
                      let worst =
                        List.fold_left
                          (fun acc (e, _, _, _) -> Float.max acc e)
                          energy all
                      in
                      let a, fresh, widened =
                        match target with
                        | Existing a -> (a, false, false)
                        | Widen (a, k) ->
                            if pipelined k <> pipelined a.ai_kind then
                              (* The new kind changes the occupants' spans:
                                 re-place them instead of rebuilding the
                                 whole grid. *)
                              List.iter
                                (fun j ->
                                  Grid.unplace grid ~op:j;
                                  Grid.place grid ~op:j ~col:(a.ai_id + 1)
                                    ~step:start.(j) ~span:(span_on k j))
                                a.ai_ops;
                            a.ai_kind <- k;
                            (a, false, true)
                        | Fresh k ->
                            let a =
                              { ai_id = !next_id; ai_kind = k; ai_ops = [] }
                            in
                            incr next_id;
                            alus := a :: !alus;
                            Grid.ensure_cols grid !next_id;
                            (a, true, false)
                      in
                      a.ai_ops <- i :: a.ai_ops;
                      Grid.place grid ~op:i ~col:(a.ai_id + 1) ~step:s
                        ~span:(span_on a.ai_kind i);
                      start.(i) <- s;
                      offset.(i) <- off;
                      alu_of.(i) <- a.ai_id;
                      placed.(i) <- true;
                      iterations :=
                        {
                          it_node = i;
                          it_step = s;
                          it_alu = a.ai_id;
                          it_fresh = fresh;
                          it_widened = widened;
                          it_energy = energy;
                          it_worst = worst;
                        }
                        :: !iterations
                  end)
                order
            in
            let reset_state () =
              Array.fill start 0 n 0;
              Array.fill offset 0 n 0.0;
              Array.fill alu_of 0 n (-1);
              Array.fill placed 0 n false;
              alus := [];
              next_id := 0;
              iterations := [];
              (* Keep the grid's allocation (and grown columns) across
                 local-rescheduling restarts. *)
              Grid.clear grid;
              Hashtbl.iter (fun _ gr -> Grid.clear gr) mem_grids
            in
            let budget = ref ((2 * n) + 8) in
            let rec attempt () =
              reset_state ();
              match place_all () with
              | () -> (
                  let assignments =
                    List.rev_map
                      (fun a -> (a.ai_kind, List.rev a.ai_ops))
                      !alus
                  in
                  match
                    Rtl.Datapath.elaborate g ~start ~delay:node_delay ~cs
                      ~assignments
                  with
                  | Error e ->
                      Error
                        (Diag.internal ~code:"mfsa.elaborate"
                           ("MFSA: elaboration failed: " ^ e))
                  | Ok datapath ->
                      let schedule = Schedule.make ~offset ~config ~cs g start in
                      let cost = Rtl.Cost.of_datapath library datapath in
                      Ok
                        {
                          schedule;
                          datapath;
                          cost;
                          iterations = List.rev !iterations;
                          style;
                        })
              | exception Grow c when Dfg.Graph.is_mem_class c ->
                  (* A bank's port count is physical: there is no unit to
                     add and the placement is deterministic, so retrying
                     cannot help. Under hard caps the outer search widens
                     the time budget instead. *)
                  if unit_caps <> None then raise Infeasible_at_cs
                  else
                    Error
                      (Diag.infeasible ~code:"mfsa.port-limit"
                         (Printf.sprintf
                            "MFSA: bank %s cannot serve its accesses in %d \
                             steps with %d port(s)"
                            (Dfg.Graph.bank_of_class c) cs
                            (Hashtbl.find current c)))
              | exception Grow c ->
                  decr budget;
                  if !budget <= 0 then
                    if style = No_self_loop then
                      (* Style 2 can genuinely deadlock: every admissible
                         position of some operation would create a self
                         loop. Blowing the restart budget under the extra
                         constraint is an expected infeasibility, not a
                         scheduler defect. *)
                      Error
                        (Diag.infeasible ~code:"mfsa.style2-deadlock"
                           "MFSA: no style-2 placement within the \
                            rescheduling budget")
                    else
                      Error
                        (Diag.internal ~code:"mfsa.budget-exhausted"
                           "MFSA: rescheduling budget exhausted (internal)")
                  else if Hashtbl.mem no_widen c then
                    if unit_caps <> None then
                      (* Hard caps: this time budget does not work. *)
                      raise Infeasible_at_cs
                    else begin
                      Hashtbl.replace current c (Hashtbl.find current c + 1);
                      attempt ()
                    end
                  else begin
                    Hashtbl.replace no_widen c ();
                    attempt ()
                  end
            in
            attempt ())

let run ?config ?style ?weights ~library ~cs g =
  run_at ?config ?style ?weights ~library ~cs g

let run_resource ?(config = Config.default) ?style ?weights ~library ~limits g
    =
  if Dfg.Graph.num_nodes g = 0 then
    Error (Diag.input ~code:"mfsa.empty-graph" "MFSA: empty graph")
  else begin
    let lo = Timeframe.min_cs config g in
    let hi =
      List.fold_left
        (fun acc nd -> acc + Config.delay config nd.Dfg.Graph.kind)
        1 (Dfg.Graph.nodes g)
    in
    let rec search cs =
      if cs > hi then
        Error
          (Diag.infeasible ~code:"mfsa.horizon"
             "MFSA: resource-constrained search exceeded the serial horizon")
      else
        match
          run_at ~config ?style ?weights ~unit_caps:limits ~library ~cs g
        with
        | Ok o ->
            let makespan = Schedule.makespan o.schedule in
            Ok { o with schedule = { o.schedule with Schedule.cs = makespan } }
        | Error _ as e -> e (* permanent: empty graph, missing kind, ... *)
        | exception Infeasible_at_cs -> search (cs + 1)
    in
    search lo
  end
