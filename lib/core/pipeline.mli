(** Functional pipelining / loop folding support (paper §5.5.2).

    The scheduler handles folding through the configuration's
    [functional_latency]: with latency [L], positions [t] and [t + k*L] run
    concurrently (successive loop initiations overlap), so they conflict on
    the same unit. This module adds the paper's DFG-doubling construction
    (used there to derive identical instance schedules) and the derived
    throughput metrics reported in benches. *)

val replicate : copies:int -> Dfg.Graph.t -> (Dfg.Graph.t, Diag.t) result
(** [copies] renamed instances of the graph side by side (suffix [_i<k>]),
    reading disjoint primary inputs — the generalisation of §5.5.2's "new
    DFG consisting of two instances". The instances share no values; the
    overlap in time comes from scheduling, not from dataflow.

    Errors: an [Input] diagnostic when [copies < 1]; an [Internal] one if
    renaming broke an otherwise valid graph (cannot happen for graphs built
    through {!Dfg.Graph.Builder}). *)

val double :
  ?suffixes:string * string -> Dfg.Graph.t -> (Dfg.Graph.t, Diag.t) result
(** {!replicate}[ ~copies:2], with custom instance suffixes. *)

val unfold :
  Schedule.t -> latency:int -> ?instances:int -> unit ->
  (Schedule.t, Diag.t) result
(** Materialise a folded schedule as overlapped loop initiations: instance
    [k] of the body starts [k*latency] steps after instance 0, on the same
    unit columns. The result is an ordinary (unfolded) schedule over
    [cs + (instances-1)*latency] steps whose {!Schedule.check} certifies
    that the modulo-latency folding really is realisable as concurrent
    instances — the property §5.5.2's doubling construction establishes.
    [instances] defaults to enough copies to cover the steady state
    ([ceil(cs/latency) + 1]). Requires a column-bound input schedule. *)

val slot : latency:int -> int -> int
(** Folded resource slot of a control step: [(step-1) mod latency]. *)

val folded_profile : Schedule.t -> latency:int -> (string * int array) list
(** Per FU class, the number of operations active in each of the [latency]
    folded slots — the "balance the distribution of operations across all
    individual control steps" view. *)

val speedup : cs:int -> latency:int -> float
(** Asymptotic throughput gain of folding: one result every [latency] steps
    instead of every [cs]. *)

val min_latency : Dfg.Graph.t -> Config.t -> limits:(string * int) list -> int
(** Resource-bound lower limit on the initiation interval:
    [max_c ceil(N_c * delay_c / units_c)] — no folding can beat it. *)
