type mismatch = {
  node : string;
  expected : int;
  got : int option;
}

let mismatches dp ctrl ~env =
  let g = dp.Rtl.Datapath.graph in
  match Eval.run g env with
  | Error e -> Error (Diag.input ~code:"sim.golden" ("golden model: " ^ e))
  | Ok golden -> (
      match Machine.run dp ctrl ~env with
      | Error e ->
          Error (Diag.internal ~code:"sim.machine" ("machine: " ^ e))
      | Ok r ->
          let bad =
            List.filter_map
              (fun nd ->
                let name = nd.Dfg.Graph.name in
                if Eval.active g ~values:golden nd.Dfg.Graph.id then
                  let expected = Option.get (Eval.value golden name) in
                  match List.assoc_opt name r.Machine.values with
                  | Some got when got = expected -> None
                  | got -> Some { node = name; expected; got }
                else None)
              (Dfg.Graph.nodes g)
          in
          Ok bad)

let describe m =
  Printf.sprintf "%s: expected %d, got %s" m.node m.expected
    (match m.got with Some v -> string_of_int v | None -> "nothing")

let check dp ctrl ~env =
  match mismatches dp ctrl ~env with
  | Error _ as e -> e
  | Ok [] -> Ok ()
  | Ok bad ->
      let shown = List.filteri (fun i _ -> i < 5) bad in
      Error
        (Diag.internal ~code:"sim.mismatch"
           (Printf.sprintf "%d mismatching node(s): %s" (List.length bad)
              (String.concat "; " (List.map describe shown))))

(* Local splitmix-style generator; kept here so the simulator substrate does
   not depend on the workloads library. *)
let mix state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let x = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  (z, to_int (shift_right_logical x 3))

let check_random ?(runs = 20) ?(seed = 42) dp ctrl =
  let g = dp.Rtl.Datapath.graph in
  let state = ref (Int64.of_int seed) in
  let draw () =
    let s, v = mix !state in
    state := s;
    (v mod 201) - 100
  in
  let rec go k =
    if k >= runs then Ok ()
    else
      let env = List.map (fun v -> (v, draw ())) (Dfg.Graph.inputs g) in
      match check dp ctrl ~env with
      | Ok () -> go (k + 1)
      | Error e ->
          Error { e with Diag.message = Printf.sprintf "run %d: %s" k e.Diag.message }
  in
  go 0
