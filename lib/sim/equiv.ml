type mismatch = {
  node : string;
  expected : int;
  got : int option;
}

let mismatches ?widths dp ctrl ~env =
  let g = dp.Rtl.Datapath.graph in
  match Eval.run g env with
  | Error e -> Error (Diag.input ~code:"sim.golden" ("golden model: " ^ e))
  | Ok golden -> (
      match Machine.run ?widths dp ctrl ~env with
      | Error e ->
          Error (Diag.internal ~code:"sim.machine" ("machine: " ^ e))
      | Ok r ->
          let bad =
            List.filter_map
              (fun nd ->
                let name = nd.Dfg.Graph.name in
                if Eval.active g ~values:golden nd.Dfg.Graph.id then
                  let expected = Option.get (Eval.value golden name) in
                  match List.assoc_opt name r.Machine.values with
                  | Some got when got = expected -> None
                  | got -> Some { node = name; expected; got }
                else None)
              (Dfg.Graph.nodes g)
          in
          Ok bad)

let describe m =
  Printf.sprintf "%s: expected %d, got %s" m.node m.expected
    (match m.got with Some v -> string_of_int v | None -> "nothing")

let check ?widths dp ctrl ~env =
  match mismatches ?widths dp ctrl ~env with
  | Error _ as e -> e
  | Ok [] -> Ok ()
  | Ok bad ->
      let shown = List.filteri (fun i _ -> i < 5) bad in
      Error
        (Diag.internal ~code:"sim.mismatch"
           (Printf.sprintf "%d mismatching node(s): %s" (List.length bad)
              (String.concat "; " (List.map describe shown))))

(* Local splitmix-style generator; kept here so the simulator substrate does
   not depend on the workloads library. *)
let mix state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let x = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  (z, to_int (shift_right_logical x 3))

let check_random ?(runs = 20) ?(seed = 42) dp ctrl =
  let g = dp.Rtl.Datapath.graph in
  let state = ref (Int64.of_int seed) in
  let draw () =
    let s, v = mix !state in
    state := s;
    (v mod 201) - 100
  in
  let rec go k =
    if k >= runs then Ok ()
    else
      let env = List.map (fun v -> (v, draw ())) (Dfg.Graph.inputs g) in
      match check dp ctrl ~env with
      | Ok () -> go (k + 1)
      | Error e ->
          Error { e with Diag.message = Printf.sprintf "run %d: %s" k e.Diag.message }
  in
  go 0

(* Narrowing safety: the machine with every bus cut down to its inferred
   width must agree with the full-width golden model on every vector drawn
   from the declared input ranges. Directed vectors hit the corners the
   interval analysis reasons about (range endpoints, zero, plus/minus one);
   randomized vectors sample the interior. *)
let check_narrowing ?(runs = 20) ?(seed = 7) ~widths dp ctrl =
  let g = dp.Rtl.Datapath.graph in
  let inputs = Dfg.Graph.inputs g in
  let range v =
    match Dfg.Graph.range_of g v with Some r -> r | None -> (-100, 100)
  in
  let clamp (lo, hi) v = if v < lo then lo else if v > hi then hi else v in
  let directed =
    List.map
      (fun pick -> List.map (fun v -> (v, pick (range v))) inputs)
      [
        fst;
        snd;
        (fun r -> clamp r 0);
        (fun r -> clamp r 1);
        (fun r -> clamp r (-1));
      ]
  in
  let state = ref (Int64.of_int seed) in
  let draw (lo, hi) =
    let s, v = mix !state in
    state := s;
    (* [v] is nonnegative (61 significant bits); [span <= 0] means the
       declared range covers more than the positive int range — sample
       raw. *)
    let span = hi - lo + 1 in
    if span <= 0 then v else lo + (v mod span)
  in
  let rec randoms k acc =
    if k >= runs then List.rev acc
    else randoms (k + 1) (List.map (fun v -> (v, draw (range v))) inputs :: acc)
  in
  let rec go k = function
    | [] -> Ok ()
    | env :: rest -> (
        match check ~widths dp ctrl ~env with
        | Ok () -> go (k + 1) rest
        | Error e ->
            Error
              {
                e with
                Diag.message =
                  Printf.sprintf "narrowing vector %d: %s" k e.Diag.message;
              })
  in
  go 0 (directed @ randoms 0 [])
