(** Cycle-accurate execution of an elaborated datapath under its FSM
    controller — the substrate standing in for the authors' silicon: it
    checks end-to-end that a synthesised design computes what the behaviour
    says (register sharing, multiplexing, chaining, multi-cycle latching and
    guarded execution included).

    Semantics per control step: operand reads see the registers as of the
    step's opening edge (or same-step ALU outputs for chained operands);
    results latch at the closing edge of their finish step. Micro-orders
    whose guards are unsatisfied are skipped and write nothing. *)

type run_result = {
  values : (string * int) list;
      (** Value computed per executed node (inactive guarded nodes absent). *)
  final_regs : int option array;  (** Register file after the last step. *)
  trace : step_snapshot list;
      (** One snapshot per control step, in step order. *)
}

and step_snapshot = {
  snap_step : int;
  snap_regs : int option array;  (** Register file {e after} the step's edge. *)
  snap_wires : (int * int) list;  (** Live ALU outputs during the step. *)
}

val truncate : width:int -> int -> int
(** Two's-complement truncation to [width] bits; identity at 63 or more. *)

val run :
  ?widths:(string -> int) -> Rtl.Datapath.t -> Rtl.Controller.t ->
  env:Eval.env -> (run_result, string) result
(** Execute one iteration. Errors on reads of never-written registers or
    wires — which is how binding bugs (register clashes, broken chaining)
    surface in tests.

    [widths] maps a value name to its inferred bit width; when given, the
    machine models a width-annotated datapath: inputs and every ALU output
    are truncated ({!truncate}) to their inferred widths, exactly as buses
    of that size would behave. If the widths are sound, no truncation ever
    changes a value. *)
