type run_result = {
  values : (string * int) list;
  final_regs : int option array;
  trace : step_snapshot list;
}

and step_snapshot = {
  snap_step : int;
  snap_regs : int option array;
  snap_wires : (int * int) list;
}

exception Stuck of string

(* Two's-complement truncation to [w] bits. Identity at [w >= 63]: the
   abstract machine is an OCaml [int] machine, so 63 bits means "the full
   word" and there is nothing to drop. *)
let truncate ~width:w v =
  if w >= 63 then v
  else
    let m = 1 lsl w in
    let r = ((v mod m) + m) mod m in
    if r >= 1 lsl (w - 1) then r - m else r

let run ?widths dp ctrl ~env =
  let g = dp.Rtl.Datapath.graph in
  (* Under [widths], every bus and register is as narrow as the range
     analysis proved sufficient: values are truncated wherever the real
     hardware would physically drop bits — at input latching, on input
     wires, and on every ALU output. If the analysis is sound the
     truncations are identities; if not, the golden comparison in
     [Equiv.check_narrowing] sees the damage. *)
  let trunc name v =
    match widths with
    | None -> v
    | Some w -> truncate ~width:(w name) v
  in
  let regs = Array.make (max 1 dp.Rtl.Datapath.regs.Rtl.Left_edge.count) None in
  (* Banked memories, zero-initialised like the golden model. A store's
     write commits on its latch edge (with the register latches below), so
     a same-step WAR load still reads the old value. *)
  let mems : (string, int array) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (a : Dfg.Graph.array_decl) ->
      Hashtbl.replace mems a.Dfg.Graph.a_name (Array.make a.Dfg.Graph.a_size 0))
    (Dfg.Graph.arrays g);
  let computed : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let lookup_value name =
    match Hashtbl.find_opt computed name with
    | Some v -> Some v
    | None -> List.assoc_opt name env
  in
  try
    List.iter
      (fun (v, r) ->
        match List.assoc_opt v env with
        | Some x -> regs.(r) <- Some (trunc v x)
        | None -> raise (Stuck (Printf.sprintf "input %S missing" v)))
      ctrl.Rtl.Controller.input_loads;
    let pending = ref [] (* (latch_step, reg, value) *) in
    let mem_pending = ref [] (* (latch_step, array, index, value) *) in
    let rev_trace = ref [] in
    for s = 1 to ctrl.Rtl.Controller.steps do
      let wires = Hashtbl.create 8 in
      List.iter
        (fun m ->
          if m.Rtl.Controller.m_step = s then begin
            let nd = Dfg.Graph.node g m.Rtl.Controller.m_node in
            let enabled =
              List.for_all
                (fun (c, arm) ->
                  match lookup_value c with
                  | Some v -> (v <> 0) = arm
                  | None ->
                      raise
                        (Stuck
                           (Printf.sprintf "guard %S of %s not computed" c
                              nd.Dfg.Graph.name)))
                m.Rtl.Controller.m_guards
            in
            if enabled then begin
              let read = function
                | Rtl.Datapath.From_reg r -> (
                    match regs.(r) with
                    | Some v -> v
                    | None ->
                        raise
                          (Stuck
                             (Printf.sprintf
                                "%s reads undefined reg%d at step %d"
                                nd.Dfg.Graph.name r s)))
                | Rtl.Datapath.From_alu a -> (
                    match Hashtbl.find_opt wires a with
                    | Some v -> v
                    | None ->
                        raise
                          (Stuck
                             (Printf.sprintf
                                "%s reads dead wire alu%d at step %d"
                                nd.Dfg.Graph.name a s)))
                | Rtl.Datapath.From_input v -> (
                    match List.assoc_opt v env with
                    | Some x -> trunc v x
                    | None ->
                        raise (Stuck (Printf.sprintf "input %S missing" v)))
                | Rtl.Datapath.From_mem a ->
                    raise
                      (Stuck
                         (Printf.sprintf
                            "%s routes bank interface mem:%s as a data operand"
                            nd.Dfg.Graph.name a))
              in
              let v =
                match (nd.Dfg.Graph.kind, m.Rtl.Controller.m_sources) with
                | Dfg.Op.Load, [ Rtl.Datapath.From_mem a; idx ] ->
                    let mem = Hashtbl.find mems a in
                    let idx = read idx in
                    if idx >= 0 && idx < Array.length mem then mem.(idx) else 0
                | Dfg.Op.Store, [ Rtl.Datapath.From_mem a; idx; data ] ->
                    let idx = read idx and data = read data in
                    mem_pending :=
                      (m.Rtl.Controller.m_latch_step, a, idx, data)
                      :: !mem_pending;
                    data
                | k, _ when Dfg.Op.is_mem k ->
                    raise
                      (Stuck
                         (Printf.sprintf "%s has malformed memory sources"
                            nd.Dfg.Graph.name))
                | k, srcs -> Dfg.Op.eval k (List.map read srcs)
              in
              let v = trunc nd.Dfg.Graph.name v in
              Hashtbl.replace computed nd.Dfg.Graph.name v;
              Hashtbl.replace wires m.Rtl.Controller.m_alu v;
              match m.Rtl.Controller.m_dest with
              | Some r ->
                  pending := (m.Rtl.Controller.m_latch_step, r, v) :: !pending
              | None -> ()
            end
          end)
        ctrl.Rtl.Controller.micros;
      (* Closing edge: latch every result whose finish step is [s]. *)
      let now, later =
        List.partition (fun (latch, _, _) -> latch = s) !pending
      in
      List.iter (fun (_, r, v) -> regs.(r) <- Some v) now;
      pending := later;
      let mem_now, mem_later =
        List.partition (fun (latch, _, _, _) -> latch = s) !mem_pending
      in
      (* Same-edge writes commit in issue order; out-of-bounds are dropped. *)
      List.iter
        (fun (_, a, idx, v) ->
          let mem = Hashtbl.find mems a in
          if idx >= 0 && idx < Array.length mem then mem.(idx) <- v)
        (List.rev mem_now);
      mem_pending := mem_later;
      rev_trace :=
        {
          snap_step = s;
          snap_regs = Array.copy regs;
          snap_wires =
            List.sort compare
              (Hashtbl.fold (fun a v acc -> (a, v) :: acc) wires []);
        }
        :: !rev_trace
    done;
    Ok
      {
        values =
          List.filter_map
            (fun nd ->
              Option.map
                (fun v -> (nd.Dfg.Graph.name, v))
                (Hashtbl.find_opt computed nd.Dfg.Graph.name))
            (Dfg.Graph.nodes g);
        final_regs = regs;
        trace = List.rev !rev_trace;
      }
  with Stuck msg -> Error msg
