type env = (string * int) list

let run g env =
  let values = Hashtbl.create 64 in
  let missing = ref None in
  List.iter
    (fun v ->
      match List.assoc_opt v env with
      | Some x -> Hashtbl.replace values v x
      | None -> if !missing = None then missing := Some v)
    (Dfg.Graph.inputs g);
  match !missing with
  | Some v -> Error (Printf.sprintf "input %S missing from environment" v)
  | None ->
      (* Arrays start zeroed; loads outside the bounds read 0 and stores
         outside are dropped, so every run is total. Guard conditions are
         data predecessors, hence already computed when a store commits. *)
      let mems = Hashtbl.create 4 in
      List.iter
        (fun (a : Dfg.Graph.array_decl) ->
          Hashtbl.replace mems a.Dfg.Graph.a_name
            (Array.make a.Dfg.Graph.a_size 0))
        (Dfg.Graph.arrays g);
      let active_now nd =
        List.for_all
          (fun (c, arm) ->
            match Hashtbl.find_opt values c with
            | Some v -> (v <> 0) = arm
            | None -> false)
          nd.Dfg.Graph.guards
      in
      List.iter
        (fun i ->
          let nd = Dfg.Graph.node g i in
          let v =
            match (nd.Dfg.Graph.kind, nd.Dfg.Graph.args) with
            | Dfg.Op.Load, [ arr; idx ] ->
                let m = Hashtbl.find mems arr in
                let idx = Hashtbl.find values idx in
                if idx >= 0 && idx < Array.length m then m.(idx) else 0
            | Dfg.Op.Store, [ arr; idx; data ] ->
                let m = Hashtbl.find mems arr in
                let idx = Hashtbl.find values idx in
                let data = Hashtbl.find values data in
                if active_now nd && idx >= 0 && idx < Array.length m then
                  m.(idx) <- data;
                data
            | kind, args ->
                Dfg.Op.eval kind
                  (List.map (fun a -> Hashtbl.find values a) args)
          in
          Hashtbl.replace values nd.Dfg.Graph.name v)
        (Dfg.Graph.topological g);
      Ok
        (List.map
           (fun nd -> (nd.Dfg.Graph.name, Hashtbl.find values nd.Dfg.Graph.name))
           (Dfg.Graph.nodes g)
        @ env)

let value values name = List.assoc_opt name values

let active g ~values i =
  List.for_all
    (fun (c, arm) ->
      match List.assoc_opt c values with
      | None -> false
      | Some v -> (v <> 0) = arm)
    (Dfg.Graph.node g i).Dfg.Graph.guards
