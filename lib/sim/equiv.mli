(** Functional equivalence: does the synthesised RTL compute the behaviour?

    The golden model is {!Eval.run}; the design-under-test is
    {!Machine.run}. A node is compared when its guards are satisfied by the
    environment; nodes on untaken branches are exempt (their units are free
    to be shared). *)

type mismatch = {
  node : string;
  expected : int;
  got : int option;  (** [None] when the machine never executed the node. *)
}

val check :
  ?widths:(string -> int) -> Rtl.Datapath.t -> Rtl.Controller.t ->
  env:Eval.env -> (unit, Diag.t) result
(** [Ok] when every active node matches; the [Error] diagnostic carries the
    first few mismatches ([sim.mismatch], internal), the machine's failure
    ([sim.machine], internal) or the golden model's ([sim.golden], input —
    e.g. an environment missing an input). *)

val check_random :
  ?runs:int -> ?seed:int -> Rtl.Datapath.t -> Rtl.Controller.t ->
  (unit, Diag.t) result
(** {!check} over randomly drawn input environments (default 20 runs,
    deterministic seed). *)

val check_narrowing :
  ?runs:int -> ?seed:int -> widths:(string -> int) ->
  Rtl.Datapath.t -> Rtl.Controller.t -> (unit, Diag.t) result
(** Narrowing safety: {!Machine.run} with buses truncated to their
    inferred [widths] must be bit-exact against the full-width golden
    model. Vectors are drawn from each input's declared range (default
    [[-100, 100]] when unannotated): five directed profiles (all-low,
    all-high, and zero / one / minus-one clamped into range) plus [runs]
    randomized draws. A failure means the width inference was unsound for
    this design and is reported as [sim.mismatch]. *)
