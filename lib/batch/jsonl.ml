type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f ->
      (* %h or %g could drop precision or print "inf"; journals only carry
         timings, so a fixed decimal rendering is enough and stays valid
         JSON (no "nan"/"inf" tokens escape: clamp them). *)
      if Float.is_finite f then Printf.sprintf "%.6f" f else "0.0"
  | String s -> Diag.json_string s
  | List vs -> "[" ^ String.concat "," (List.map to_string vs) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Diag.json_string k ^ ":" ^ to_string v)
             fields)
      ^ "}"

(* --- Parsing ----------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape"
                   else begin
                     let hex = String.sub s (!pos + 1) 4 in
                     (match int_of_string_opt ("0x" ^ hex) with
                     | None -> fail "bad \\u escape"
                     | Some code when code < 0x80 ->
                         Buffer.add_char buf (Char.chr code)
                     | Some code ->
                         (* Our own emitter only \u-escapes control chars;
                            render anything else as UTF-8. *)
                         if code < 0x800 then begin
                           Buffer.add_char buf
                             (Char.chr (0xC0 lor (code lsr 6)));
                           Buffer.add_char buf
                             (Char.chr (0x80 lor (code land 0x3F)))
                         end
                         else begin
                           Buffer.add_char buf
                             (Char.chr (0xE0 lor (code lsr 12)));
                           Buffer.add_char buf
                             (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                           Buffer.add_char buf
                             (Char.chr (0x80 lor (code land 0x3F)))
                         end);
                     pos := !pos + 4
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let default_max_document_bytes = 1 lsl 20

let parse_bounded ?(max_bytes = default_max_document_bytes) s =
  if String.length s > max_bytes then
    Error
      (Diag.input ~code:"batch.frame-too-large"
         (Printf.sprintf "document is %d bytes; the limit is %d"
            (String.length s) max_bytes))
  else
    Result.map_error
      (fun msg -> Diag.input ~code:"batch.jsonl" ("malformed JSON: " ^ msg))
      (parse s)

(* --- Accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let str key v = Option.bind (member key v) to_str
let int key v = Option.bind (member key v) to_int
let float key v = Option.bind (member key v) to_float
