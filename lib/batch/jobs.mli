(** Pool jobs for synthesis workloads: the bridge between
    {!Harness.Driver} / {!Harness.Fuzz} and the generic {!Pool}.

    Two job families share the journal format:

    - {b manifest jobs} ([of_entry]) — one {!Harness.Driver} run per
      manifest line, payload summarising the outcome;
    - {b fuzz jobs} ([fuzz_jobs]) — one fuzz case per job, payload a
      serialized {!Harness.Fuzz.classified}, re-aggregated by seed order
      into the familiar campaign report ([fuzz_report]) so [--jobs 1]
      and [--jobs 8] print identical summaries.

    Every job carries a [degraded] closure for the {!Retry} policy:
    halved [stage_seconds] and [baseline_only] engines. *)

val digest : string -> string
(** Stable hex digest used for job ids (inputs + options + fault). *)

val payload_failed : string -> bool
(** [true] when a [Done] payload reports defects ([status] is
    ["violations"] or ["failed"]); unparsable payloads count as failed. *)

val record_failed : Journal.record -> bool
(** Failure for exit-code purposes: {!Verdict.is_failure} or a [Done]
    with {!payload_failed}. Expected [Rejected] stops are not failures. *)

(** {2 Generic jobs} *)

val generic :
  ?degraded:(unit -> (Jsonl.t, Diag.t) result) ->
  id:string -> seed:int -> descr:string ->
  (unit -> (Jsonl.t, Diag.t) result) -> Pool.job
(** Structured-payload job: the closure's {!Jsonl.t} document is
    serialized as the worker payload, so new job families (e.g.
    {!Explore}) reuse the pool without inventing a string protocol.
    Include a ["status"] field if the records will be summarized through
    {!payload_failed} (payloads without one count as failed). *)

(** {2 Manifest jobs} *)

val of_entry :
  budgets:Harness.Driver.budgets -> seed:int -> Manifest.entry -> Pool.job
(** The graph is loaded {e inside the worker}, so a malformed DFG file
    rejects only its own job. [seed] is the submission index. *)

val summarize : Journal.record list -> string
(** Multi-line batch summary in submission order: one line per job plus
    a totals line; deterministic (no timings). *)

(** {2 Fuzz jobs} *)

val fuzz_jobs :
  ?fault:Harness.Fault.t -> ?budgets:Harness.Driver.budgets ->
  ?corpus_dir:string -> campaign_seed:int -> Harness.Fuzz.generated list ->
  Pool.job list

val fuzz_report : Journal.record list -> Harness.Fuzz.report
(** Aggregate final records by seed order. Worker-level verdicts map to
    campaign failures: [Timeout] → kind ["timeout"], [Oom] → ["oom"],
    [Crashed s] → ["crash:<s>"]. *)
