(** Retry policies: verdict-level re-runs and transport-level backoff.

    One [policy] record serves two consumers. The {e verdict} side
    ({!should_retry} / {!deadline}) re-runs a job that hit the
    wall-clock watchdog ([Timeout]) or the heap ceiling ([Oom]) — a
    possible straggler rather than a defect — once with degraded options
    (the job's [degraded] closure, typically lower [stage_seconds] and
    forced baseline engines) under a scaled deadline before classifying
    it as failed. [Rejected], [Crashed] and [Done] verdicts are never
    retried: they are deterministic outcomes, not resource exhaustion.

    The {e transport} side ({!next_delay} / {!exhausted}) paces
    reconnects and cluster re-leases with decorrelated-jitter
    exponential backoff between [base_delay] and [max_delay]; it is
    shared by the cluster dispatcher's re-leases and the serve client's
    reconnects so every retry loop in the system spreads out the same
    way. *)

type policy = {
  max_attempts : int;  (** Total attempts, retries included. *)
  deadline_scale : float;
      (** Deadline multiplier per extra attempt; degraded engines should
          need {e less} time, so the default shrinks the window. *)
  base_delay : float;
      (** Backoff floor (seconds) between transport attempts. *)
  max_delay : float;  (** Backoff ceiling (seconds). *)
}

val default : policy
(** Two attempts, deadline halved on the retry; 50ms–2s backoff. *)

val none : policy
(** Single attempt — every [Timeout]/[Oom] is immediately final. *)

val of_retries : int -> policy
(** [of_retries n] allows [n] re-runs after the first attempt. *)

val backoff :
  ?max_attempts:int -> ?base_delay:float -> ?max_delay:float -> unit -> policy
(** Transport-flavoured policy: [max_attempts] (default 4) connect or
    lease tries with unscaled deadlines, jittered delays in
    [[base_delay], max_delay]] (defaults 50ms, 2s). *)

val forever : ?base_delay:float -> ?max_delay:float -> unit -> policy
(** {!backoff} with an unbounded attempt budget — for a worker that must
    outlive dispatcher restarts. *)

val exhausted : policy -> attempt:int -> bool
(** [attempt >= max_attempts] — no further tries allowed. *)

val should_retry : policy -> attempt:int -> Verdict.t -> bool

val deadline : policy -> attempt:int -> float -> float
(** Deadline for the given 1-based [attempt]. *)

val next_delay : policy -> rng:Random.State.t -> prev:float -> float
(** Next decorrelated-jitter delay: uniform in
    [[base_delay], min (max_delay, 3 * prev)]. Pass the previous delay
    (or [0.] before the first); keep [rng] per retry loop so tests can
    seed it deterministically. *)
