(** Retry policy for resource-limited verdicts.

    A job that hits the wall-clock watchdog ([Timeout]) or the heap
    ceiling ([Oom]) may be a straggler rather than a defect; the policy
    re-runs it once with degraded options — the job's [degraded] closure
    (typically lower [stage_seconds] and forced baseline engines, see
    {!Jobs}) under a scaled deadline — before classifying it as failed.
    [Rejected], [Crashed] and [Done] verdicts are never retried: they are
    deterministic outcomes, not resource exhaustion. *)

type policy = {
  max_attempts : int;  (** Total attempts, retries included. *)
  deadline_scale : float;
      (** Deadline multiplier per extra attempt; degraded engines should
          need {e less} time, so the default shrinks the window. *)
}

val default : policy
(** Two attempts, deadline halved on the retry. *)

val none : policy
(** Single attempt — every [Timeout]/[Oom] is immediately final. *)

val of_retries : int -> policy
(** [of_retries n] allows [n] re-runs after the first attempt. *)

val should_retry : policy -> attempt:int -> Verdict.t -> bool

val deadline : policy -> attempt:int -> float -> float
(** Deadline for the given 1-based [attempt]. *)
